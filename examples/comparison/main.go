// Comparison-mode example (the paper's Figure 4 scenario): benchmark
// several method combinations over a varying parameter (k), tabulate the
// utility indicators, render the comparison chart, and export the series to
// CSV and SVG — exactly the workflow of the Methods Comparison screen.
package main

import (
	"fmt"
	"log"
	"time"

	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/gen"
	"secreta/internal/plot"
	"secreta/internal/query"
	"secreta/internal/rt"
)

func main() {
	ds := gen.Census(gen.Config{Records: 500, Items: 20, Seed: 19})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	w, err := query.Generate(ds, query.GenOptions{Queries: 50, Dims: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}

	base := engine.Config{
		Mode: engine.RT, M: 2, Delta: 0.2,
		Hierarchies: hs, ItemHierarchy: ih, Workload: w,
	}
	mk := func(rel, tra string, fl rt.Flavor) engine.Config {
		c := base
		c.RelAlgo, c.TransAlgo, c.Flavor = rel, tra, fl
		c.Label = rel + "+" + tra + "/" + fl.String()
		return c
	}
	configs := []engine.Config{
		mk("cluster", "apriori", rt.RMerge),
		mk("cluster", "coat", rt.TMerge),
		mk("incognito", "apriori", rt.RMerge),
	}

	series, err := experiment.Compare(ds, configs,
		experiment.Sweep{Param: "k", Start: 4, End: 20, Step: 4}, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %4s %10s %10s %10s\n", "configuration", "k", "ARE", "GCP", "time")
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				fmt.Printf("%-28s %4.0f error: %v\n", s.Label, p.X, p.Err)
				continue
			}
			fmt.Printf("%-28s %4.0f %10.4f %10.4f %9.1fms\n",
				s.Label, p.X, p.Indicators.ARE, p.Indicators.GCP,
				float64(p.Runtime)/float64(time.Millisecond))
		}
	}

	var ps []plot.Series
	for _, s := range series {
		ps = append(ps, plot.Series{
			Label: s.Label,
			Xs:    s.Xs(),
			Ys:    s.Ys(func(i engine.Indicators) float64 { return i.ARE }),
		})
	}
	chart := plot.NewLine("ARE vs k (m=2, delta=0.2)", "k", "ARE", ps...)
	fmt.Print(chart.ASCII(76, 16))

	if err := export.SeriesCSVFile("comparison.csv", series); err != nil {
		log.Fatal(err)
	}
	if err := export.ChartSVG("comparison.svg", chart, 640, 420); err != nil {
		log.Fatal(err)
	}
	fmt.Println("exported comparison.csv and comparison.svg")
}
