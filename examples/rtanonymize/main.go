// Healthcare scenario: an RT-dataset of patient demographics (relational)
// plus diagnosis codes (transaction) must be published so that an attacker
// who knows a patient's demographics and up to two diagnoses cannot
// re-identify them — the (k, k^m)-anonymity model of Poulis et al. The
// example builds the dataset from raw CSV (as a hospital export would be),
// compares the three bounding methods, and shows how each trades relational
// against transaction utility.
package main

import (
	"fmt"
	"log"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/gen"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
	"secreta/internal/rt"
)

// patientCSV is a miniature hospital export: demographics + ICD-ish codes.
// The generator extends it to a realistic size below.
const patientCSV = `Age:numeric,Gender:categorical,Zip:categorical,Diagnoses:transaction
34,F,30011,C50 E11
41,M,30012,I10
29,F,30013,E11 I10
56,M,30011,C50
34,F,30012,E11
`

func main() {
	// Parse the raw export to show the CSV path, then switch to a larger
	// generated cohort for the actual experiment.
	small, err := dataset.ReadCSV(strings.NewReader(patientCSV), dataset.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("raw export: %d patients, attributes %v + %s\n\n",
		small.Len(), small.AttrNames(), small.TransName)

	ds := gen.Census(gen.Config{Records: 800, Items: 30, MaxBasket: 4, Seed: 23})
	if err := ds.RenameAttribute("Items", "Diagnoses"); err != nil {
		log.Fatal(err)
	}
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		log.Fatal(err)
	}

	const k, m = 10, 2
	fmt.Printf("cohort: %d patients; target: (%d, %d^%d)-anonymity\n", ds.Len(), k, k, m)
	fmt.Printf("%-10s %10s %10s %10s %8s %8s\n", "bounding", "GCP", "tGCP", "classes", "merges", "ok")
	for _, flavor := range []rt.Flavor{rt.RMerge, rt.TMerge, rt.RTMerge} {
		res := engine.Run(ds, engine.Config{
			Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: flavor,
			K: k, M: m, Delta: 0.2,
			Hierarchies: hs, ItemHierarchy: ih,
		})
		if res.Err != nil {
			log.Fatal(res.Err)
		}
		rep := privacy.CheckRT(res.Anonymized, qis, k, m)
		fmt.Printf("%-10s %10.4f %10.4f %10d %8s %8v\n",
			flavor, res.Indicators.GCP, res.Indicators.TransactionGCP,
			res.Indicators.Classes, "-", rep.Holds())
	}

	// Show the per-diagnosis distortion the epidemiologist would care
	// about, for the Rmerger output.
	res := engine.Run(ds, engine.Config{
		Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: k, M: m, Delta: 0.2,
		Hierarchies: hs, ItemHierarchy: ih,
	})
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	ves := metrics.ItemFrequencyError(ds, res.Anonymized, ih)
	mean := 0.0
	for _, ve := range ves {
		mean += ve.RelError
	}
	mean /= float64(len(ves))
	fmt.Printf("\nper-diagnosis frequency distortion (Rmerger): mean relative error %.4f over %d codes\n",
		mean, len(ves))
}
