// Marketing scenario: a retailer publishes market-basket data for product-
// affinity studies. Certain item combinations are sensitive (they reveal
// health conditions), so they become privacy constraints; the retailer's
// analysts also require that products from different departments are never
// merged, which becomes a utility policy. COAT enforces both; the example
// contrasts permissive vs strict utility policies and shows the
// suppression/generalization trade-off, plus PCTA as the hierarchy-free
// alternative.
package main

import (
	"fmt"
	"log"

	"secreta/internal/gen"
	"secreta/internal/policy"
	"secreta/internal/transaction"
)

func main() {
	ds := gen.Census(gen.Config{Records: 600, Items: 24, Seed: 29})
	fmt.Printf("baskets: %d records, %d distinct products\n\n",
		ds.Len(), ds.SummarizeTransactions().DistinctItems)

	// Privacy: protect every product pair an attacker might know
	// (frequent pairs), plus every single product.
	priv := policy.PrivacyFrequent(ds, 2, 2)
	fmt.Printf("privacy policy: %d constraints (frequent itemsets up to size 2)\n", len(priv))

	// Utility policy A: departments from the item hierarchy (strict).
	ih, err := gen.ItemHierarchy(ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	departments := policy.UtilityFromHierarchy(ih, 1)
	// Utility policy B: anything may merge (permissive).
	anything := policy.UtilityTop(ds)

	const k = 10
	for _, tc := range []struct {
		name string
		util []policy.UtilityConstraint
	}{
		{"departments (strict)", departments},
		{"top (permissive)", anything},
	} {
		pol := &policy.Policy{Privacy: priv, Utility: tc.util}
		if err := pol.Validate(); err != nil {
			log.Fatal(err)
		}
		res, err := transaction.COAT(ds, transaction.Options{K: k, Policy: pol})
		if err != nil {
			log.Fatal(err)
		}
		ok, msg := transaction.PolicySatisfied(ds, res.Mapping, priv, k)
		merged := 0
		for _, label := range res.Mapping {
			if label != "" && len(label) > 6 { // grouped labels are "(a,b,...)"
				merged++
			}
		}
		fmt.Printf("COAT / %-22s: protected=%v  generalized items=%d  suppressed=%d\n",
			tc.name, ok, merged, len(res.Suppressed))
		if !ok {
			fmt.Println("  violation:", msg)
		}
	}

	// PCTA needs no utility policy: it clusters items freely.
	res, err := transaction.PCTA(ds, transaction.Options{K: k, Policy: &policy.Policy{Privacy: priv}})
	if err != nil {
		log.Fatal(err)
	}
	ok, _ := transaction.PolicySatisfied(ds, res.Mapping, priv, k)
	fmt.Printf("PCTA (no utility bounds)      : protected=%v  merges=%d  suppressed=%d\n",
		ok, res.Generalizations, len(res.Suppressed))

	fmt.Println("\nexpected: the strict policy protects privacy with more suppression;")
	fmt.Println("the permissive policy and PCTA protect it mostly by merging.")
}
