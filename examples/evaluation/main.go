// Evaluation-mode example (the paper's Figure 3 scenario): configure one
// method for an RT-dataset, run it with fixed parameters, inspect the
// summary, then run a varying-parameter execution (ARE vs delta) and render
// the plot the Evaluation mode's plotting area would show.
package main

import (
	"fmt"
	"log"
	"time"

	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/gen"
	"secreta/internal/metrics"
	"secreta/internal/plot"
	"secreta/internal/query"
	"secreta/internal/rt"
)

func main() {
	ds := gen.Census(gen.Config{Records: 600, Items: 24, Seed: 11})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		log.Fatal(err)
	}
	// Workload over the transaction attribute, the side delta trades.
	w, err := query.Generate(ds, query.GenOptions{Queries: 60, Dims: -1, Items: 1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}

	cfg := engine.Config{
		Mode:    engine.RT,
		RelAlgo: "topdown", TransAlgo: "apriori", Flavor: rt.RTMerge,
		K: 8, M: 2, Delta: 0.25,
		Hierarchies: hs, ItemHierarchy: ih, Workload: w,
	}

	// --- Single-parameter execution: the "message box" summary.
	res := engine.Run(ds, cfg)
	if res.Err != nil {
		log.Fatal(res.Err)
	}
	fmt.Printf("configuration: %s\n", cfg.DisplayLabel())
	fmt.Printf("runtime %v, phases:\n", res.Runtime.Round(time.Microsecond))
	for _, p := range res.Phases {
		fmt.Printf("  %-12s %v\n", p.Name, p.Duration.Round(time.Microsecond))
	}
	fmt.Printf("GCP=%.4f  tGCP=%.4f  ARE=%.4f  classes=%d\n\n",
		res.Indicators.GCP, res.Indicators.TransactionGCP,
		res.Indicators.ARE, res.Indicators.Classes)

	// Plot (c): frequencies of generalized values in Age.
	ai := ds.AttrIndex("Age")
	freqs := metrics.GeneralizedFrequencies(res.Anonymized, ai)
	if len(freqs) > 8 {
		freqs = freqs[:8]
	}
	labels := make([]string, len(freqs))
	values := make([]float64, len(freqs))
	for i, f := range freqs {
		labels[i], values[i] = f.Value, float64(f.Count)
	}
	fmt.Print(plot.NewBar("generalized Age frequencies", "Age", "count", labels, values).ASCII(76, 12))

	// --- Varying-parameter execution: ARE vs delta (Fig. 3 plot (a)).
	series, err := experiment.VaryingRun(ds, cfg,
		experiment.Sweep{Param: "delta", Start: 0, End: 0.5, Step: 0.1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	chart := plot.NewLine("ARE vs delta (k=8, m=2)", "delta", "ARE", plot.Series{
		Label: series.Label,
		Xs:    series.Xs(),
		Ys:    series.Ys(func(i engine.Indicators) float64 { return i.ARE }),
	})
	fmt.Print(chart.ASCII(76, 14))
}
