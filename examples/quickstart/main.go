// Quickstart: generate a small RT-dataset, anonymize it with the default
// combination (Cluster for the relational attributes, Apriori for the
// transaction attribute, Rmerger bounding), and verify + summarize the
// result. This is the minimal end-to-end use of the library.
package main

import (
	"fmt"
	"log"

	"secreta/internal/engine"
	"secreta/internal/gen"
	"secreta/internal/privacy"
	"secreta/internal/rt"
)

func main() {
	// 1. Data: 500 census-like records with a purchased-items attribute.
	ds := gen.Census(gen.Config{Records: 500, Items: 25, Seed: 7})
	fmt.Printf("dataset: %d records, %d relational attributes, %d distinct items\n",
		ds.Len(), len(ds.Attrs), ds.SummarizeTransactions().DistinctItems)

	// 2. Hierarchies: derived from the data (Configuration Editor's
	// automatic path).
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		log.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Anonymize: (k, k^m)-anonymity with k=10, m=2.
	res := engine.Run(ds, engine.Config{
		Mode:    engine.RT,
		RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 10, M: 2, Delta: 0.2,
		Hierarchies: hs, ItemHierarchy: ih,
	})
	if res.Err != nil {
		log.Fatal(res.Err)
	}

	// 4. Verify and report.
	qis, err := ds.QIIndices(nil)
	if err != nil {
		log.Fatal(err)
	}
	rep := privacy.CheckRT(res.Anonymized, qis, 10, 2)
	fmt.Printf("anonymized in %v: (k,k^m)-anonymous=%v, classes=%d (min size %d)\n",
		res.Runtime, rep.Holds(), res.Indicators.Classes, res.Indicators.MinClassSize)
	fmt.Printf("relational loss (GCP) = %.4f, transaction loss = %.4f\n",
		res.Indicators.GCP, res.Indicators.TransactionGCP)

	fmt.Println("\nfirst three records, before -> after:")
	for r := 0; r < 3; r++ {
		fmt.Printf("  %v %v\n    -> %v %v\n",
			ds.Records[r].Values, ds.Records[r].Items,
			res.Anonymized.Records[r].Values, res.Anonymized.Records[r].Items)
	}
}
