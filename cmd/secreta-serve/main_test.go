package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"secreta/internal/server"
	"secreta/internal/store"
)

// TestRunServesAndShutsDown boots the real server loop on an ephemeral
// port, checks liveness, and verifies context cancellation shuts it down.
func TestRunServesAndShutsDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, nil, server.Options{Workers: 2}, "", store.Options{}) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}

// bootRun starts run() with a data dir on an ephemeral port and waits for
// readiness. It returns the base URL and a shutdown func that mimics
// SIGTERM (context cancellation) and waits for run to return.
func bootRun(t *testing.T, dataDir string) (string, func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, nil, server.Options{Workers: 2}, dataDir, store.Options{}) }()
	base := "http://" + ln.Addr().String()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, code := getBody(t, base+"/healthz")
		if code == http.StatusOK && bytes.Contains(body, []byte(`"ready": true`)) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	stop := func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v after shutdown", err)
			}
		case <-time.After(15 * time.Second):
			t.Fatal("server did not shut down within 15s")
		}
	}
	return base, stop
}

func getBody(t *testing.T, url string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		return nil, 0
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data, resp.StatusCode
}

// TestRestartAcrossRuns is the process-level restart e2e: upload a
// dataset, complete a job, SIGTERM the serve loop, boot a fresh one on
// the same -data-dir, and expect the dataset and the result to be served
// from disk.
func TestRestartAcrossRuns(t *testing.T) {
	dataDir := filepath.Join(t.TempDir(), "state")
	base, stop := bootRun(t, dataDir)

	dsJSON, err := os.ReadFile(filepath.Join("testdata", "dataset.json"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/datasets", "application/json", bytes.NewReader(dsJSON))
	if err != nil {
		t.Fatal(err)
	}
	var up struct {
		Ref string `json:"dataset_ref"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&up); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || up.Ref == "" {
		t.Fatalf("upload: %d ref=%q", resp.StatusCode, up.Ref)
	}

	reqBody, err := json.Marshal(map[string]any{
		"dataset_ref": up.Ref,
		"config":      map[string]any{"algo": "cluster", "k": 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(base+"/anonymize", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var sub struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Job == "" {
		t.Fatalf("submit: %d job=%q", resp.StatusCode, sub.Job)
	}
	var before []byte
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, code := getBody(t, base+"/jobs/"+sub.Job+"/result")
		if code == http.StatusOK {
			before = body
			break
		}
		if code == http.StatusUnprocessableEntity || code == http.StatusGone {
			t.Fatalf("job failed: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if before == nil {
		t.Fatal("job never finished")
	}

	stop() // SIGTERM

	base2, stop2 := bootRun(t, dataDir)
	defer stop2()
	if body, code := getBody(t, base2+"/datasets/"+up.Ref); code != http.StatusOK {
		t.Fatalf("dataset after restart: %d %s", code, body)
	}
	after, code := getBody(t, base2+"/jobs/"+sub.Job+"/result")
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d %s", code, after)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("result changed across process restart")
	}
	// Identical resubmission: answered from the persisted cache.
	resp, err = http.Post(base2+"/anonymize", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	var sub2 struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub2); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline = time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		body, code := getBody(t, base2+"/jobs/"+sub2.Job+"/result")
		if code == http.StatusOK {
			if !bytes.Contains(body, []byte(`"cache_hit": true`)) {
				t.Fatalf("resubmission recomputed: %s", body)
			}
			return
		}
		if code == http.StatusUnprocessableEntity || code == http.StatusGone {
			t.Fatalf("resubmitted job failed: %s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("resubmitted job never finished")
}
