package main

import (
	"context"
	"net"
	"net/http"
	"testing"
	"time"

	"secreta/internal/server"
)

// TestRunServesAndShutsDown boots the real server loop on an ephemeral
// port, checks liveness, and verifies context cancellation shuts it down.
func TestRunServesAndShutsDown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- run(ctx, ln, server.Options{Workers: 2}) }()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; i < 50; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("healthz never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down within 10s")
	}
}
