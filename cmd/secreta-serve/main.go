// Command secreta-serve runs SECRETA as a long-lived anonymization
// service: an HTTP API over the engine's streaming scheduler with async
// job submission, status polling, JSON result retrieval, and a
// content-addressed dataset registry so large datasets are uploaded once
// and referenced by ID instead of resubmitted with every job.
//
//	secreta-serve -addr :8080 -workers 8
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /datasets         upload a dataset, get a dataset_ref
//	GET    /datasets         list registered datasets
//	GET    /datasets/{id}    dataset metadata (size, pins)
//	DELETE /datasets/{id}    evict a dataset (409 while a job uses it)
//	POST   /anonymize        submit an anonymization job
//	POST   /evaluate         submit an evaluation job (optional sweep)
//	POST   /compare          submit a comparison job
//	GET    /jobs             list jobs
//	GET    /jobs/{id}        poll job status
//	GET    /jobs/{id}/result fetch the JSON result of a done job
//	DELETE /jobs/{id}        cancel a job (stops mid-algorithm)
//	GET    /healthz          liveness probe
//	GET    /stats            cache/registry occupancy + eviction counters
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secreta/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scheduler workers per job (0: engine default)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body bytes")
	maxConcurrent := flag.Int("max-concurrent", 4, "jobs running at once; excess submissions queue")
	maxPending := flag.Int("max-pending", 100, "queued+running jobs before submissions get 429")
	cacheEntries := flag.Int("cache-entries", 0, "result cache entry cap (0: default 1024, -1: unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte cap (0: default 256 MiB, -1: unbounded)")
	registryDatasets := flag.Int("registry-datasets", 0, "dataset registry entry cap (0: default 64, -1: unbounded)")
	registryBytes := flag.Int64("registry-bytes", 0, "dataset registry byte cap (0: default 1 GiB, -1: unbounded)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("secreta-serve listening on %s (workers=%d)", ln.Addr(), *workers)
	opts := server.Options{
		Workers:             *workers,
		MaxBodyBytes:        *maxBody,
		MaxConcurrentJobs:   *maxConcurrent,
		MaxPendingJobs:      *maxPending,
		CacheMaxEntries:     *cacheEntries,
		CacheMaxBytes:       *cacheBytes,
		RegistryMaxDatasets: *registryDatasets,
		RegistryMaxBytes:    *registryBytes,
	}
	if err := run(ctx, ln, opts); err != nil {
		log.Fatal(err)
	}
}

// run serves the API on ln until ctx is cancelled, then drains in-flight
// requests for up to 5s. Split from main so tests can drive it on an
// ephemeral listener.
func run(ctx context.Context, ln net.Listener, opts server.Options) error {
	srv := &http.Server{
		Handler:     server.New(ctx, opts).Handler(),
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return fmt.Errorf("secreta-serve: %w", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
