// Command secreta-serve runs SECRETA as a long-lived anonymization
// service: an HTTP API over the engine's streaming scheduler with async
// job submission, status polling, JSON result retrieval, and a
// content-addressed dataset registry so large datasets are uploaded once
// and referenced by ID instead of resubmitted with every job.
//
//	secreta-serve -addr :8080 -workers 8 -data-dir /var/lib/secreta
//
// With -data-dir set, the server is durable: datasets, job history,
// terminal results and the anonymize result cache live on disk (blob
// store + WAL-backed job journal), a restart replays them, and jobs that
// were in flight when the process died are re-queued. Without it,
// everything is in memory and a restart starts from scratch.
//
// With -tenants-file set, the server is multi-tenant: every data route
// requires one of the configured API keys (Authorization: Bearer or
// X-API-Key), datasets and jobs are scoped to their owning tenant,
// per-tenant rate limits and quotas gate admission, and job slots are
// shared by weighted round-robin so no tenant can starve another. With
// -data-max-bytes set (and -data-dir), a background sweeper keeps the
// data directory under the cap, evicting the disk cache, the oldest
// terminal results, and unreferenced dataset blobs — never in-flight
// state. See docs/OPERATIONS.md ("Multi-tenancy & retention").
//
// Logs are structured (log/slog): -log-format picks text (default) or
// json. With -debug-addr set, a second listener serves net/http/pprof
// profiles — bind it to localhost only; it must never be exposed
// publicly.
//
// Endpoints (see docs/API.md for the full reference):
//
//	POST   /datasets         upload a dataset, get a dataset_ref
//	GET    /datasets         list registered datasets
//	GET    /datasets/{id}    dataset metadata (size, pins, residency)
//	DELETE /datasets/{id}    evict a dataset (409 while a job uses it)
//	POST   /anonymize        submit an anonymization job
//	POST   /evaluate         submit an evaluation job (optional sweep)
//	POST   /compare          submit a comparison job
//	GET    /jobs                    list jobs (state=, limit=, after= params)
//	GET    /jobs/{id}               poll job status
//	GET    /jobs/{id}/result        fetch the JSON result of a done job
//	GET    /jobs/{id}/result/stream stream an anonymize result as NDJSON
//	GET    /jobs/{id}/trace         job lifecycle trace (JSON span tree)
//	DELETE /jobs/{id}               cancel a job (stops mid-algorithm)
//	GET    /healthz                 liveness + readiness (false during replay)
//	GET    /stats                   cache/registry/store/streaming counters
//	GET    /metrics                 Prometheus text exposition
//	GET    /dashboard               embedded live operator dashboard
//	GET    /dashboard/data          dashboard JSON aggregate + SVG charts
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"secreta/internal/faultfs"
	"secreta/internal/server"
	"secreta/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "scheduler workers per job (0: engine default)")
	maxBody := flag.Int64("max-body", 32<<20, "maximum request body bytes")
	maxConcurrent := flag.Int("max-concurrent", 4, "jobs running at once; excess submissions queue")
	maxPending := flag.Int("max-pending", 100, "queued+running jobs before submissions get 429")
	cacheEntries := flag.Int("cache-entries", 0, "result cache entry cap (0: default 1024, -1: unbounded)")
	cacheBytes := flag.Int64("cache-bytes", 0, "result cache byte cap (0: default 256 MiB, -1: unbounded)")
	registryDatasets := flag.Int("registry-datasets", 0, "dataset registry entry cap (0: default 64, -1: unbounded)")
	registryBytes := flag.Int64("registry-bytes", 0, "dataset registry byte cap (0: default 1 GiB, -1: unbounded)")
	jobTimeout := flag.Duration("job-timeout", 0, "default job execution deadline, also caps per-request timeout_ms (0: none)")
	dataDir := flag.String("data-dir", "", "durable state directory; empty keeps everything in memory")
	snapshotEvery := flag.Int("snapshot-every", 0, "journal appends between snapshots (0: default 256)")
	diskCacheEntries := flag.Int("disk-cache-entries", 0, "disk result cache entry cap (0: default 4096); needs -data-dir")
	diskCacheBytes := flag.Int64("disk-cache-bytes", 0, "disk result cache byte cap (0: default 2 GiB); needs -data-dir")
	storeRetries := flag.Int("store-retries", 0, "store I/O attempts on transient errors, first try included (0: default 3, 1: no retries); needs -data-dir")
	degradedProbe := flag.Duration("degraded-probe-interval", 0, "how often a degraded server probes storage to re-arm writes (0: default 5s); needs -data-dir")
	tenantsFile := flag.String("tenants-file", "", "JSON tenant table (API keys, quotas, rates, weights); empty runs single-tenant with no auth")
	dataMaxBytes := flag.Int64("data-max-bytes", 0, "data directory byte cap enforced by the retention sweeper (0: no GC); needs -data-dir")
	gcInterval := flag.Duration("gc-interval", 0, "retention sweep cadence (0: default 30s); needs -data-max-bytes")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof profiling; keep it on localhost, never public (empty: disabled)")
	flag.Parse()

	logger, err := newLogger(*logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	var debugLn net.Listener
	if *debugAddr != "" {
		debugLn, err = net.Listen("tcp", *debugAddr)
		if err != nil {
			logger.Error("debug listen failed", "addr", *debugAddr, "err", err)
			os.Exit(1)
		}
		logger.Warn("pprof debug listener enabled — do not expose publicly", "addr", debugLn.Addr().String())
	}
	tenants, err := server.LoadTenantsFile(*tenantsFile)
	if err != nil {
		logger.Error("loading tenants file failed", "err", err)
		os.Exit(2)
	}
	if len(tenants) > 0 {
		logger.Info("multi-tenant mode enabled", "tenants", len(tenants), "file", *tenantsFile)
	}
	logger.Info("secreta-serve listening",
		"addr", ln.Addr().String(), "workers", *workers, "data_dir", *dataDir)
	opts := server.Options{
		Workers:               *workers,
		MaxBodyBytes:          *maxBody,
		MaxConcurrentJobs:     *maxConcurrent,
		MaxPendingJobs:        *maxPending,
		CacheMaxEntries:       *cacheEntries,
		CacheMaxBytes:         *cacheBytes,
		RegistryMaxDatasets:   *registryDatasets,
		RegistryMaxBytes:      *registryBytes,
		JobTimeout:            *jobTimeout,
		DegradedProbeInterval: *degradedProbe,
		Tenants:               tenants,
		DataMaxBytes:          *dataMaxBytes,
		GCInterval:            *gcInterval,
		Logger:                logger,
	}
	stOpts := store.Options{
		SnapshotEvery:   *snapshotEvery,
		CacheMaxEntries: *diskCacheEntries,
		CacheMaxBytes:   *diskCacheBytes,
		FS:              faultfs.WithRetry(faultfs.OS, faultfs.RetryPolicy{Attempts: *storeRetries}),
		Logger:          logger,
	}
	if err := run(ctx, ln, debugLn, opts, *dataDir, stOpts); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// newLogger builds the process logger for the chosen -log-format.
func newLogger(format string) (*slog.Logger, error) {
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), nil
	}
	return nil, fmt.Errorf("secreta-serve: unknown -log-format %q (want text or json)", format)
}

// run serves the API on ln until ctx is cancelled, then drains in-flight
// requests for up to 5s and closes the store (final journal snapshot).
// debugLn, when non-nil, serves net/http/pprof (http.DefaultServeMux) on
// a separate listener for the life of the process — profiling traffic
// never shares a port with the API. Split from main so tests can drive it
// on ephemeral listeners and a temp data dir.
func run(ctx context.Context, ln, debugLn net.Listener, opts server.Options, dataDir string, stOpts store.Options) error {
	if dataDir != "" {
		st, err := store.Open(dataDir, stOpts)
		if err != nil {
			return fmt.Errorf("secreta-serve: %w", err)
		}
		defer st.Close()
		opts.Store = st
	}
	api, err := server.New(ctx, opts)
	if err != nil {
		return fmt.Errorf("secreta-serve: %w", err)
	}
	srv := &http.Server{
		Handler:     api.Handler(),
		ReadTimeout: 30 * time.Second,
		BaseContext: func(net.Listener) context.Context { return ctx },
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	var debugSrv *http.Server
	if debugLn != nil {
		// The pprof handlers register themselves on http.DefaultServeMux at
		// import time; serving that mux here (and only here) keeps them off
		// the API listener.
		debugSrv = &http.Server{
			Handler:     http.DefaultServeMux,
			ReadTimeout: 30 * time.Second,
		}
		go func() {
			if err := debugSrv.Serve(debugLn); err != nil && err != http.ErrServerClosed {
				slog.Error("debug listener failed", "err", err)
			}
		}()
	}
	select {
	case err := <-errc:
		return fmt.Errorf("secreta-serve: %w", err)
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if debugSrv != nil {
			debugSrv.Shutdown(shutdownCtx)
		}
		return srv.Shutdown(shutdownCtx)
	}
}
