package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/rt"
)

// loadDataset reads a dataset CSV, detecting kinds when the header carries
// no annotations and honoring an explicit transaction column name.
func loadDataset(path, transAttr string) (*dataset.Dataset, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -data flag")
	}
	return dataset.LoadFile(path, dataset.Options{TransAttr: transAttr, DetectKinds: true})
}

// loadHierarchies resolves relational hierarchies: from a directory of
// per-attribute path CSVs ("<attr>.csv") when hierDir is set, otherwise
// auto-generated from the data with the given fanout.
func loadHierarchies(ds *dataset.Dataset, hierDir string, fanout int) (generalize.Set, error) {
	if hierDir == "" {
		return gen.Hierarchies(ds, fanout)
	}
	out := make(generalize.Set, len(ds.Attrs))
	for _, a := range ds.Attrs {
		path := filepath.Join(hierDir, a.Name+".csv")
		h, err := hierarchy.LoadFile(a.Name, path)
		if err != nil {
			return nil, fmt.Errorf("loading hierarchy for %q: %w", a.Name, err)
		}
		out[a.Name] = h
	}
	return out, nil
}

// loadItemHierarchy resolves the transaction item hierarchy analogously
// ("<transattr>.csv" inside hierDir, or auto-generated).
func loadItemHierarchy(ds *dataset.Dataset, hierDir string, fanout int) (*hierarchy.Hierarchy, error) {
	if !ds.HasTransaction() {
		return nil, nil
	}
	if hierDir == "" {
		return gen.ItemHierarchy(ds, fanout)
	}
	path := filepath.Join(hierDir, ds.TransName+".csv")
	if _, err := os.Stat(path); err != nil {
		return gen.ItemHierarchy(ds, fanout)
	}
	return hierarchy.LoadFile(ds.TransName, path)
}

// parseCombo parses "rel+trans/flavor" (RT mode), "trans" or "rel" single-
// algorithm strings into configuration pieces.
func parseCombo(s string) (mode string, rel, trans string, flavor rt.Flavor, err error) {
	s = strings.TrimSpace(s)
	flavor = rt.RMerge
	if body, fl, found := cutLast(s, "/"); found {
		flavor, err = rt.ParseFlavor(fl)
		if err != nil {
			return "", "", "", 0, err
		}
		s = body
	}
	if r, t, found := strings.Cut(s, "+"); found {
		return "rt", strings.TrimSpace(r), strings.TrimSpace(t), flavor, nil
	}
	lower := strings.ToLower(s)
	for _, name := range rt.RelationalAlgos {
		if lower == name {
			return "relational", lower, "", flavor, nil
		}
	}
	for _, name := range rt.TransactionAlgos {
		if lower == name {
			return "transaction", "", lower, flavor, nil
		}
	}
	for _, name := range engine.ExtensionAlgos {
		if lower == name {
			return "transaction", "", lower, flavor, nil
		}
	}
	return "", "", "", 0, fmt.Errorf("unknown algorithm %q (relational: %v; transaction: %v; extensions: %v; RT: rel+trans[/flavor])",
		s, rt.RelationalAlgos, rt.TransactionAlgos, engine.ExtensionAlgos)
}

func cutLast(s, sep string) (before, after string, found bool) {
	i := strings.LastIndex(s, sep)
	if i < 0 {
		return s, "", false
	}
	return s[:i], s[i+len(sep):], true
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
