package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

// signalContext returns a context cancelled by the first Ctrl-C. The
// context is plumbed through the scheduler into the algorithms' hot loops
// (engine.RunCtx), so one Ctrl-C stops an anonymization mid-run — not at
// the next configuration boundary. Releasing the handler on cancellation
// (AfterFunc) restores default delivery: a second Ctrl-C force-quits if
// shutdown ever stalls anyway.
func signalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}

// loadDataset reads a dataset CSV, detecting kinds when the header carries
// no annotations and honoring an explicit transaction column name.
func loadDataset(path, transAttr string) (*dataset.Dataset, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -data flag")
	}
	return dataset.LoadFile(path, dataset.Options{TransAttr: transAttr, DetectKinds: true})
}

// loadHierarchies resolves relational hierarchies: from a directory of
// per-attribute path CSVs ("<attr>.csv") when hierDir is set, otherwise
// auto-generated from the data with the given fanout.
func loadHierarchies(ds *dataset.Dataset, hierDir string, fanout int) (generalize.Set, error) {
	if hierDir == "" {
		return gen.Hierarchies(ds, fanout)
	}
	out := make(generalize.Set, len(ds.Attrs))
	for _, a := range ds.Attrs {
		path := filepath.Join(hierDir, a.Name+".csv")
		h, err := hierarchy.LoadFile(a.Name, path)
		if err != nil {
			return nil, fmt.Errorf("loading hierarchy for %q: %w", a.Name, err)
		}
		out[a.Name] = h
	}
	return out, nil
}

// loadItemHierarchy resolves the transaction item hierarchy analogously
// ("<transattr>.csv" inside hierDir, or auto-generated).
func loadItemHierarchy(ds *dataset.Dataset, hierDir string, fanout int) (*hierarchy.Hierarchy, error) {
	if !ds.HasTransaction() {
		return nil, nil
	}
	if hierDir == "" {
		return gen.ItemHierarchy(ds, fanout)
	}
	path := filepath.Join(hierDir, ds.TransName+".csv")
	if _, err := os.Stat(path); err != nil {
		return gen.ItemHierarchy(ds, fanout)
	}
	return hierarchy.LoadFile(ds.TransName, path)
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
