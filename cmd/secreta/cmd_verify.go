package main

import (
	"flag"
	"fmt"

	"secreta/internal/privacy"
)

// cmdVerify checks the privacy guarantees of an (anonymized) dataset:
// k-anonymity of the relational projection, k^m-anonymity of the
// transaction attribute, and their (k,k^m) combination for RT-datasets.
// Exit status is non-zero when the requested guarantee fails, so the verb
// composes with shell pipelines.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	k := fs.Int("k", 5, "k-anonymity parameter")
	m := fs.Int("m", 2, "k^m-anonymity itemset size")
	qis := fs.String("qis", "", "comma-separated QI attributes (default: all relational)")
	model := fs.String("model", "auto", "guarantee to check: k | km | rt | auto")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	qiIdx, err := ds.QIIndices(splitList(*qis))
	if err != nil {
		return err
	}
	mode := *model
	if mode == "auto" {
		if ds.HasTransaction() {
			mode = "rt"
		} else {
			mode = "k"
		}
	}
	switch mode {
	case "k":
		min := privacy.MinClassSize(ds, qiIdx)
		ok := privacy.IsKAnonymous(ds, qiIdx, *k)
		fmt.Printf("k-anonymity (k=%d): %v (min class size %d, %d classes)\n",
			*k, ok, min, len(privacy.Partition(ds, qiIdx)))
		if !ok {
			return fmt.Errorf("dataset is not %d-anonymous", *k)
		}
	case "km":
		trs := privacy.Transactions(ds, nil)
		vs := privacy.KMViolations(trs, *k, *m, 3)
		fmt.Printf("k^m-anonymity (k=%d, m=%d): %v\n", *k, *m, len(vs) == 0)
		for _, v := range vs {
			fmt.Printf("  violation: %s\n", v)
		}
		if len(vs) > 0 {
			return fmt.Errorf("dataset is not %d^%d-anonymous", *k, *m)
		}
	case "rt":
		rep := privacy.CheckRT(ds, qiIdx, *k, *m)
		fmt.Printf("(k,k^m)-anonymity (k=%d, m=%d): %v\n", *k, *m, rep.Holds())
		fmt.Printf("  relational k-anonymous: %v (min class %d)\n", rep.KAnonymous, rep.MinClass)
		fmt.Printf("  classes violating k^m : %d\n", rep.BadClasses)
		if rep.FirstKMFail != nil {
			fmt.Printf("  first violation       : %s\n", rep.FirstKMFail)
		}
		if !rep.Holds() {
			return fmt.Errorf("dataset is not (%d,%d^%d)-anonymous", *k, *k, *m)
		}
	default:
		return fmt.Errorf("unknown model %q (want k, km, rt or auto)", mode)
	}
	return nil
}
