package main

import (
	"flag"
	"fmt"
	"os"

	"secreta/internal/store"
)

// cmdWalDump pretty-prints a secreta-serve job journal — snapshot, WAL
// records, and a tail verdict — for debugging a durable deployment. It is
// read-only and safe against a live server's data directory: unlike the
// server's own boot path it neither repairs the tail nor claims
// ownership.
func cmdWalDump(args []string) error {
	fs := flag.NewFlagSet("wal-dump", flag.ContinueOnError)
	dir := fs.String("data-dir", "", "secreta-serve data directory (or its journal/ subdirectory)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Accept the directory positionally too: `secreta wal-dump /var/lib/secreta`.
	if *dir == "" && fs.NArg() == 1 {
		*dir = fs.Arg(0)
	}
	if *dir == "" || fs.NArg() > 1 {
		return fmt.Errorf("usage: secreta wal-dump [-data-dir] <dir>")
	}
	return store.DumpJournal(os.Stdout, *dir)
}
