package main

import (
	"flag"
	"fmt"

	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/plot"
)

// cmdCompare is the Comparison mode: several configurations run over the
// same parameter sweep; the results are tabulated, plotted and exportable.
func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	configs := fs.String("configs", "cluster+apriori/rmerger,cluster+coat/tmerger",
		"comma-separated algorithm specs (rel | trans | rel+trans[/flavor])")
	k := fs.Int("k", 5, "fixed k (when not swept)")
	m := fs.Int("m", 2, "fixed m (when not swept)")
	delta := fs.Float64("delta", 0.3, "fixed delta (when not swept)")
	qis := fs.String("qis", "", "comma-separated QI attributes")
	hierDir := fs.String("hierarchies", "", "directory of hierarchy CSVs (default: auto-generate)")
	fanout := fs.Int("fanout", 4, "auto-generated hierarchy fanout")
	workloadPath := fs.String("workload", "", "query workload path (enables ARE)")
	privPath := fs.String("privacy", "", "privacy policy path (COAT/PCTA)")
	utilPath := fs.String("utility", "", "utility policy path (COAT)")
	vary := fs.String("vary", "k", "sweep parameter: k, m or delta")
	start := fs.Float64("start", 2, "sweep start")
	end := fs.Float64("end", 25, "sweep end")
	step := fs.Float64("step", 5, "sweep step")
	metric := fs.String("metric", "are", "plotted indicator: are | gcp | tgcp | runtime")
	csvOut := fs.String("csv", "", "write sweep results CSV here")
	svgOut := fs.String("svg", "", "write the comparison chart SVG here")
	workers := fs.Int("workers", 0, "parallel anonymization workers (0: auto)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	var bases []engine.Config
	for _, spec := range splitList(*configs) {
		cfg, err := buildConfig(ds, spec, *k, *m, *delta, *qis, *hierDir, *fanout, *workloadPath, *privPath, *utilPath)
		if err != nil {
			return fmt.Errorf("config %q: %w", spec, err)
		}
		cfg.Label = spec
		bases = append(bases, cfg)
	}
	ctx, stop := signalContext()
	defer stop()
	sweep := experiment.Sweep{Param: *vary, Start: *start, End: *end, Step: *step}
	// Uncached: the runtime metric must reflect real executions.
	series, err := experiment.CompareCtx(ctx, ds, bases, sweep,
		engine.NewScheduler(*workers, nil))
	if err != nil {
		return err
	}
	printSeriesTable(series)

	sel, ylabel, err := metricSelector(*metric)
	if err != nil {
		return err
	}
	var chart = seriesChart(series, *vary, ylabel, sel)
	if *metric == "runtime" {
		chart = runtimeChart(series, *vary)
	}
	fmt.Print(chart.ASCII(78, 16))
	if *csvOut != "" {
		if err := export.SeriesCSVFile(*csvOut, series); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *csvOut)
	}
	if *svgOut != "" {
		if err := export.ChartSVG(*svgOut, chart, 640, 420); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *svgOut)
	}
	return nil
}

func metricSelector(name string) (func(engine.Indicators) float64, string, error) {
	switch name {
	case "are":
		return func(i engine.Indicators) float64 { return i.ARE }, "ARE", nil
	case "gcp":
		return func(i engine.Indicators) float64 { return i.GCP }, "GCP", nil
	case "tgcp":
		return func(i engine.Indicators) float64 { return i.TransactionGCP }, "transaction GCP", nil
	case "runtime":
		return func(engine.Indicators) float64 { return 0 }, "runtime (s)", nil
	}
	return nil, "", fmt.Errorf("unknown metric %q (want are, gcp, tgcp or runtime)", name)
}

func runtimeChart(series []*experiment.Series, xlabel string) *plot.Chart {
	var ps []plot.Series
	for _, s := range series {
		var xs, ys []float64
		for _, p := range s.Points {
			if p.Err != nil {
				continue
			}
			xs = append(xs, p.X)
			ys = append(ys, p.Runtime.Seconds())
		}
		ps = append(ps, plot.Series{Label: s.Label, Xs: xs, Ys: ys})
	}
	return plot.NewLine("runtime vs "+xlabel, xlabel, "seconds", ps...)
}
