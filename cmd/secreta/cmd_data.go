package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/plot"
	"secreta/internal/policy"
	"secreta/internal/query"
)

// cmdGenerate synthesizes the demo RT-dataset.
func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	out := fs.String("out", "data.csv", "output CSV path")
	records := fs.Int("records", 1000, "number of records")
	items := fs.Int("items", 50, "transaction item domain size (0: relational only)")
	basket := fs.Int("basket", 6, "maximum basket size")
	zipf := fs.Float64("zipf", 1.2, "Zipf skew of item popularity (>1)")
	seed := fs.Int64("seed", 1, "random seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds := gen.Census(gen.Config{
		Records: *records, Items: *items, MaxBasket: *basket, ZipfS: *zipf, Seed: *seed,
	})
	if err := ds.SaveFile(*out, dataset.Options{}); err != nil {
		return err
	}
	fmt.Printf("wrote %d records (%d relational attributes", ds.Len(), len(ds.Attrs))
	if ds.HasTransaction() {
		st := ds.SummarizeTransactions()
		fmt.Printf(", %d distinct items, avg basket %.1f", st.DistinctItems, st.AvgSize)
	}
	fmt.Printf(") to %s\n", *out)
	return nil
}

// cmdConvert round-trips a dataset between the CSV and JSON formats — the
// JSON side is what secreta-serve requests embed.
func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	data := fs.String("data", "", "input dataset path (.csv or .json)")
	trans := fs.String("trans", "", "transaction column name (when not annotated, CSV input)")
	out := fs.String("out", "", "output dataset path (.csv or .json, by extension)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *data == "" {
		return fmt.Errorf("missing -data flag")
	}
	if *out == "" {
		return fmt.Errorf("missing -out flag")
	}
	// Dispatch strictly on extension: silently writing CSV into a
	// ".jsonl"/typo path would only surface when a consumer rejects it.
	isJSON := func(path string) (bool, error) {
		switch ext := strings.ToLower(filepath.Ext(path)); ext {
		case ".json":
			return true, nil
		case ".csv":
			return false, nil
		default:
			return false, fmt.Errorf("unsupported extension %q in %q (want .csv or .json)", ext, path)
		}
	}
	inJSON, err := isJSON(*data)
	if err != nil {
		return err
	}
	outJSON, err := isJSON(*out)
	if err != nil {
		return err
	}
	var ds *dataset.Dataset
	if inJSON {
		ds, err = dataset.LoadJSONFile(*data)
	} else {
		ds, err = loadDataset(*data, *trans)
	}
	if err != nil {
		return err
	}
	if outJSON {
		err = ds.SaveJSONFile(*out)
	} else {
		err = ds.SaveFile(*out, dataset.Options{})
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d records to %s\n", ds.Len(), *out)
	return nil
}

// cmdStats is the Dataset Editor's analysis pane: schema, numeric
// summaries, histograms.
func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	attr := fs.String("attr", "", "plot a histogram of this attribute (or the transaction attribute)")
	top := fs.Int("top", 15, "histogram bars to show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d records\n", *data, ds.Len())
	for i, a := range ds.Attrs {
		fmt.Printf("  %-12s %-12s %d distinct", a.Name, a.Kind, len(ds.Domain(i)))
		if a.Kind == dataset.Numeric {
			if s, err := ds.Summarize(i); err == nil {
				fmt.Printf("  min=%g max=%g mean=%.2f median=%g", s.Min, s.Max, s.Mean, s.Median)
			}
		}
		fmt.Println()
	}
	if ds.HasTransaction() {
		st := ds.SummarizeTransactions()
		fmt.Printf("  %-12s %-12s %d distinct items, %d occurrences, basket %d..%d (avg %.1f)\n",
			ds.TransName, "transaction", st.DistinctItems, st.Occurrences, st.MinSize, st.MaxSize, st.AvgSize)
	}
	if *attr == "" {
		return nil
	}
	var freqs []dataset.Frequency
	if *attr == ds.TransName {
		freqs = ds.ItemHistogram()
	} else {
		i := ds.AttrIndex(*attr)
		if i < 0 {
			return fmt.Errorf("no attribute named %q", *attr)
		}
		freqs = ds.Histogram(i)
	}
	if len(freqs) > *top {
		freqs = freqs[:*top]
	}
	labels := make([]string, len(freqs))
	values := make([]float64, len(freqs))
	for i, f := range freqs {
		labels[i], values[i] = f.Value, float64(f.Count)
	}
	chart := plot.NewBar("frequency of "+*attr, *attr, "count", labels, values)
	fmt.Print(chart.ASCII(78, 14))
	return nil
}

// cmdHierarchy derives hierarchies from the data and stores them as
// path-style CSVs.
func cmdHierarchy(args []string) error {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	outDir := fs.String("out", "hierarchies", "output directory")
	fanout := fs.Int("fanout", 4, "tree fanout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	hs, err := gen.Hierarchies(ds, *fanout)
	if err != nil {
		return err
	}
	for name, h := range hs {
		path := *outDir + "/" + name + ".csv"
		if err := h.SaveFile(path); err != nil {
			return err
		}
		fmt.Printf("%-12s height %d, %d nodes -> %s\n", name, h.Height(), h.Size(), path)
	}
	if ds.HasTransaction() {
		ih, err := gen.ItemHierarchy(ds, *fanout)
		if err != nil {
			return err
		}
		path := *outDir + "/" + ds.TransName + ".csv"
		if err := ih.SaveFile(path); err != nil {
			return err
		}
		fmt.Printf("%-12s height %d, %d nodes -> %s\n", ds.TransName, ih.Height(), ih.Size(), path)
	}
	return nil
}

// cmdQueries generates a workload file, or with -eval answers an existing
// workload against the dataset (the Queries Editor's preview).
func cmdQueries(args []string) error {
	fs := flag.NewFlagSet("queries", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	out := fs.String("out", "workload.txt", "output workload path")
	n := fs.Int("n", 100, "number of queries")
	dims := fs.Int("dims", 2, "relational predicates per query (-1: item-only queries)")
	items := fs.Int("items", 1, "transaction items per query")
	frac := fs.Float64("range", 0.2, "numeric range width as a domain fraction")
	seed := fs.Int64("seed", 1, "random seed")
	eval := fs.String("eval", "", "evaluate this workload file against the dataset instead of generating")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	if *eval != "" {
		w, err := query.LoadFile(*eval)
		if err != nil {
			return err
		}
		fmt.Printf("%6s  %-50s %8s\n", "#", "query", "count")
		for i := range w.Queries {
			c, err := w.Queries[i].CountExact(ds)
			if err != nil {
				return err
			}
			fmt.Printf("%6d  %-50s %8.0f\n", i+1, w.Queries[i].String(), c)
		}
		return nil
	}
	w, err := query.Generate(ds, query.GenOptions{
		Queries: *n, Dims: *dims, Items: *items, RangeFrac: *frac, Seed: *seed,
	})
	if err != nil {
		return err
	}
	if err := w.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d queries to %s\n", w.Len(), *out)
	return nil
}

// cmdPolicy generates privacy/utility policies (Policy Specification
// Module strategies).
func cmdPolicy(args []string) error {
	fs := flag.NewFlagSet("policy", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	privStrategy := fs.String("privacy", "all", "privacy strategy: all | frequent")
	minsup := fs.Int("minsup", 2, "frequent: minimum support")
	maxsize := fs.Int("maxsize", 2, "frequent: maximum itemset size")
	utilStrategy := fs.String("utility", "top", "utility strategy: top | hierarchy | singletons")
	depth := fs.Int("depth", 1, "hierarchy: constraint depth")
	fanout := fs.Int("fanout", 4, "hierarchy: tree fanout")
	privOut := fs.String("privacy-out", "privacy.txt", "privacy policy output path")
	utilOut := fs.String("utility-out", "utility.txt", "utility policy output path")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	if !ds.HasTransaction() {
		return fmt.Errorf("dataset has no transaction attribute")
	}
	var priv []policy.PrivacyConstraint
	switch *privStrategy {
	case "all":
		priv = policy.PrivacyAllItems(ds)
	case "frequent":
		priv = policy.PrivacyFrequent(ds, *minsup, *maxsize)
	default:
		return fmt.Errorf("unknown privacy strategy %q", *privStrategy)
	}
	var util []policy.UtilityConstraint
	switch *utilStrategy {
	case "top":
		util = policy.UtilityTop(ds)
	case "singletons":
		util = policy.UtilitySingletons(ds)
	case "hierarchy":
		ih, err := gen.ItemHierarchy(ds, *fanout)
		if err != nil {
			return err
		}
		util = policy.UtilityFromHierarchy(ih, *depth)
	default:
		return fmt.Errorf("unknown utility strategy %q", *utilStrategy)
	}
	pol := &policy.Policy{Privacy: priv, Utility: util}
	if err := pol.Validate(); err != nil {
		return err
	}
	pf, err := os.Create(*privOut)
	if err != nil {
		return err
	}
	if err := policy.WritePrivacy(pf, priv); err != nil {
		pf.Close()
		return err
	}
	if err := pf.Close(); err != nil {
		return err
	}
	uf, err := os.Create(*utilOut)
	if err != nil {
		return err
	}
	if err := policy.WriteUtility(uf, util); err != nil {
		uf.Close()
		return err
	}
	if err := uf.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d privacy constraints to %s and %d utility constraints to %s\n",
		len(priv), *privOut, len(util), *utilOut)
	return nil
}
