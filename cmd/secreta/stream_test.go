package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected into a buffer.
func captureStdout(t *testing.T, fn func() error) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	ferr := fn()
	os.Stdout = old
	w.Close()
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}

// TestEvaluateStream pins the CLI half of streaming delivery: -stream
// ndjson puts a parseable header + one record line per anonymized record
// on stdout, and -stream csv reproduces exactly the bytes -out writes.
func TestEvaluateStream(t *testing.T) {
	withDir(t, func(dir string) {
		base := []string{
			"-data", "data.csv", "-algo", "cluster+apriori/rmerger",
			"-k", "4", "-m", "2", "-delta", "0.2", "-out", "anon.csv",
		}
		ndjson := captureStdout(t, func() error {
			return cmdEvaluate(append([]string{"-stream", "ndjson"}, base...))
		})
		lines := strings.Split(strings.TrimRight(string(ndjson), "\n"), "\n")
		var hdr struct {
			Records int `json:"records"`
		}
		if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
			t.Fatalf("stream header is not JSON: %v\n%s", err, lines[0])
		}
		if hdr.Records == 0 || len(lines)-1 != hdr.Records {
			t.Fatalf("stream: %d record lines, header says %d", len(lines)-1, hdr.Records)
		}
		for i, line := range lines[1:] {
			var rec struct {
				Values []string `json:"values"`
			}
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("record line %d is not JSON: %v", i, err)
			}
		}

		csvOut := captureStdout(t, func() error {
			return cmdEvaluate(append([]string{"-stream", "csv"}, base...))
		})
		want, err := os.ReadFile("anon.csv")
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(csvOut, want) {
			t.Fatal("-stream csv diverges from the -out CSV file")
		}

		if err := cmdEvaluate(append([]string{"-stream", "tsv"}, base...)); err == nil {
			t.Fatal("unknown stream format accepted")
		}
	})
}
