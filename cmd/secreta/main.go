// Command secreta is the frontend of the SECRETA reproduction: a CLI whose
// subcommands mirror the panes and modes of the paper's GUI (Figures 2-4).
//
//	generate    synthesize a census-like RT-dataset          (demo data)
//	stats       inspect a dataset: schema, histograms        (Dataset Editor)
//	hierarchy   derive and store generalization hierarchies  (Configuration Editor)
//	queries     generate a COUNT-query workload              (Queries Editor)
//	policy      generate privacy/utility policies            (Policy Specification)
//	evaluate    run and evaluate one configuration           (Evaluation mode)
//	compare     benchmark configurations over a sweep        (Comparison mode)
//
// Run "secreta <command> -h" for per-command flags.
package main

import (
	"fmt"
	"os"
)

type command struct {
	name  string
	brief string
	run   func(args []string) error
}

var commands = []command{
	{"generate", "synthesize a census-like RT-dataset (CSV)", cmdGenerate},
	{"stats", "inspect a dataset: schema, summaries, histograms", cmdStats},
	{"convert", "convert a dataset between CSV and JSON (secreta-serve payloads)", cmdConvert},
	{"hierarchy", "derive generalization hierarchies from data", cmdHierarchy},
	{"queries", "generate a COUNT-query workload", cmdQueries},
	{"policy", "generate privacy and utility policies", cmdPolicy},
	{"evaluate", "run one anonymization configuration (Evaluation mode)", cmdEvaluate},
	{"compare", "benchmark configurations over a parameter sweep (Comparison mode)", cmdCompare},
	{"verify", "check k / k^m / (k,k^m) anonymity of a dataset", cmdVerify},
	{"wal-dump", "pretty-print a secreta-serve job journal (snapshot + WAL)", cmdWalDump},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	for _, c := range commands {
		if c.name == name {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "secreta %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "secreta: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: secreta <command> [flags]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", c.name, c.brief)
	}
}
