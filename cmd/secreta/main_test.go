package main

import (
	"os"
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/rt"
)

// withDir runs fn inside a temp directory holding a generated dataset.
func withDir(t *testing.T, fn func(dir string)) {
	t.Helper()
	dir := t.TempDir()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(old)
	if err := cmdGenerate([]string{"-out", "data.csv", "-records", "160", "-items", "16", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	fn(dir)
}

func TestGenerateAndStats(t *testing.T) {
	withDir(t, func(dir string) {
		if err := cmdStats([]string{"-data", "data.csv", "-attr", "Gender"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdStats([]string{"-data", "data.csv", "-attr", "Items"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdStats([]string{"-data", "data.csv", "-attr", "Nope"}); err == nil {
			t.Error("unknown attribute accepted")
		}
		if err := cmdStats([]string{"-data", "missing.csv"}); err == nil {
			t.Error("missing file accepted")
		}
	})
}

func TestHierarchyCommandRoundTrip(t *testing.T) {
	withDir(t, func(dir string) {
		if err := cmdHierarchy([]string{"-data", "data.csv", "-out", "h", "-fanout", "3"}); err != nil {
			t.Fatal(err)
		}
		// One file per relational attribute plus the item hierarchy.
		entries, err := os.ReadDir("h")
		if err != nil {
			t.Fatal(err)
		}
		if len(entries) != 6 {
			t.Errorf("hierarchy files = %d, want 6", len(entries))
		}
		// evaluate must accept the stored hierarchies.
		err = cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "cluster", "-k", "4",
			"-hierarchies", "h",
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

func TestQueriesAndPolicyCommands(t *testing.T) {
	withDir(t, func(dir string) {
		if err := cmdQueries([]string{"-data", "data.csv", "-n", "20", "-out", "w.txt"}); err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile("w.txt")
		if err != nil || len(strings.Split(strings.TrimSpace(string(b)), "\n")) != 20 {
			t.Errorf("workload file: %v", err)
		}
		if err := cmdPolicy([]string{"-data", "data.csv", "-privacy", "frequent", "-minsup", "3", "-utility", "hierarchy"}); err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat("privacy.txt"); err != nil {
			t.Error("privacy.txt not written")
		}
		if _, err := os.Stat("utility.txt"); err != nil {
			t.Error("utility.txt not written")
		}
		if err := cmdPolicy([]string{"-data", "data.csv", "-privacy", "bogus"}); err == nil {
			t.Error("bogus strategy accepted")
		}
	})
}

func TestEvaluateModes(t *testing.T) {
	withDir(t, func(dir string) {
		// RT mode with all outputs.
		err := cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "cluster+apriori/rmerger",
			"-k", "4", "-m", "2", "-delta", "0.2",
			"-out", "anon.csv", "-results", "res.json",
			"-plot-attr", "Age", "-plot-items", "-plot-phases",
			"-svg", "chart.svg",
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range []string{"anon.csv", "res.json", "chart.svg"} {
			if _, err := os.Stat(f); err != nil {
				t.Errorf("%s not written", f)
			}
		}
		// Transaction-only mode with a policy.
		if err := cmdPolicy([]string{"-data", "data.csv"}); err != nil {
			t.Fatal(err)
		}
		err = cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "coat", "-k", "3",
			"-privacy", "privacy.txt", "-utility", "utility.txt",
		})
		if err != nil {
			t.Fatal(err)
		}
		// Varying-parameter execution.
		if err := cmdQueries([]string{"-data", "data.csv", "-n", "10", "-out", "w.txt"}); err != nil {
			t.Fatal(err)
		}
		err = cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "cluster", "-workload", "w.txt",
			"-vary", "k", "-start", "2", "-end", "6", "-step", "2",
		})
		if err != nil {
			t.Fatal(err)
		}
		// Bad algorithm spec.
		if err := cmdEvaluate([]string{"-data", "data.csv", "-algo", "bogus"}); err == nil {
			t.Error("bogus algorithm accepted")
		}
	})
}

func TestCompareCommand(t *testing.T) {
	withDir(t, func(dir string) {
		err := cmdCompare([]string{
			"-data", "data.csv",
			"-configs", "cluster,incognito",
			"-vary", "k", "-start", "2", "-end", "6", "-step", "2",
			"-metric", "gcp", "-csv", "cmp.csv", "-svg", "cmp.svg",
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile("cmp.csv")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(b), "cluster") || !strings.Contains(string(b), "incognito") {
			t.Error("comparison CSV missing series")
		}
		if _, err := os.Stat("cmp.svg"); err != nil {
			t.Error("cmp.svg not written")
		}
		if err := cmdCompare([]string{"-data", "data.csv", "-metric", "bogus"}); err == nil {
			t.Error("bogus metric accepted")
		}
	})
}

func TestConfigFromSpec(t *testing.T) {
	cfg, err := engine.ConfigFromSpec("cluster+coat/tmerger")
	if err != nil || cfg.Mode != engine.RT || cfg.RelAlgo != "cluster" || cfg.TransAlgo != "coat" || cfg.Flavor != rt.TMerge {
		t.Errorf("ConfigFromSpec rt = %+v, %v", cfg, err)
	}
	cfg, err = engine.ConfigFromSpec("incognito")
	if err != nil || cfg.Mode != engine.Relational || cfg.Algorithm != "incognito" {
		t.Errorf("ConfigFromSpec relational = %+v, %v", cfg, err)
	}
	cfg, err = engine.ConfigFromSpec("pcta")
	if err != nil || cfg.Mode != engine.Transactional || cfg.Algorithm != "pcta" {
		t.Errorf("ConfigFromSpec transaction = %+v, %v", cfg, err)
	}
	if _, err := engine.ConfigFromSpec("nope"); err == nil {
		t.Error("bad combo accepted")
	}
	if _, err := engine.ConfigFromSpec("cluster+apriori/bogus"); err == nil {
		t.Error("bad flavor accepted")
	}
	if _, err := engine.ConfigFromSpec("cluser+apriori"); err == nil {
		t.Error("typoed RT relational algorithm accepted")
	}
}

func TestConvertRoundTrip(t *testing.T) {
	withDir(t, func(dir string) {
		if err := cmdConvert([]string{"-data", "data.csv", "-out", "data.json"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdConvert([]string{"-data", "data.json", "-out", "back.csv"}); err != nil {
			t.Fatal(err)
		}
		orig, err := dataset.LoadFile("data.csv", dataset.Options{})
		if err != nil {
			t.Fatal(err)
		}
		back, err := dataset.LoadFile("back.csv", dataset.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// The round-trip must preserve the data exactly, including the
		// transaction-column annotation secreta-serve payloads rely on.
		if back.TransName != orig.TransName {
			t.Errorf("transaction attribute %q, want %q", back.TransName, orig.TransName)
		}
		if back.Fingerprint() != orig.Fingerprint() {
			t.Error("CSV -> JSON -> CSV round-trip changed the dataset")
		}
		if err := cmdConvert([]string{"-out", "x.json"}); err == nil {
			t.Error("missing -data accepted")
		}
		if err := cmdConvert([]string{"-data", "data.csv"}); err == nil {
			t.Error("missing -out accepted")
		}
		if err := cmdConvert([]string{"-data", "data.csv", "-out", "x.jsonl"}); err == nil {
			t.Error("unknown output extension accepted")
		}
	})
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[2] != "c" {
		t.Errorf("splitList = %v", got)
	}
	if splitList("  ") != nil {
		t.Error("blank list not nil")
	}
}

func TestQueriesEval(t *testing.T) {
	withDir(t, func(dir string) {
		if err := cmdQueries([]string{"-data", "data.csv", "-n", "5", "-out", "w.txt"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdQueries([]string{"-data", "data.csv", "-eval", "w.txt"}); err != nil {
			t.Fatal(err)
		}
		if err := cmdQueries([]string{"-data", "data.csv", "-eval", "missing.txt"}); err == nil {
			t.Error("missing workload accepted")
		}
	})
}

func TestVerifyCommand(t *testing.T) {
	withDir(t, func(dir string) {
		// Raw data is not 5-anonymous: verify must fail.
		if err := cmdVerify([]string{"-data", "data.csv", "-k", "5", "-m", "2"}); err == nil {
			t.Error("raw data passed (k,k^m) verification")
		}
		// Anonymize, then verification must pass.
		err := cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "cluster+apriori/rmerger",
			"-k", "4", "-m", "2", "-delta", "0.3", "-out", "anon.csv",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cmdVerify([]string{"-data", "anon.csv", "-k", "4", "-m", "2"}); err != nil {
			t.Errorf("anonymized data failed verification: %v", err)
		}
		// Explicit models.
		if err := cmdVerify([]string{"-data", "anon.csv", "-k", "4", "-model", "k"}); err != nil {
			t.Errorf("k model: %v", err)
		}
		if err := cmdVerify([]string{"-data", "anon.csv", "-k", "4", "-m", "2", "-model", "km"}); err != nil {
			t.Errorf("km model: %v", err)
		}
		if err := cmdVerify([]string{"-data", "anon.csv", "-model", "bogus"}); err == nil {
			t.Error("bogus model accepted")
		}
	})
}

func TestEvaluateRhoExtension(t *testing.T) {
	withDir(t, func(dir string) {
		err := cmdEvaluate([]string{
			"-data", "data.csv", "-algo", "rho",
			"-rho", "0.4", "-sensitive", "i0000,i0001",
			"-out", "rho.csv",
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := os.Stat("rho.csv"); err != nil {
			t.Error("rho.csv not written")
		}
	})
}
