package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/metrics"
	"secreta/internal/plot"
	"secreta/internal/policy"
	"secreta/internal/query"
)

// cmdEvaluate is the Evaluation mode: configure one method, run it, show
// the result summary and the four plot families of Figure 3, and export.
func cmdEvaluate(args []string) error {
	fs := flag.NewFlagSet("evaluate", flag.ContinueOnError)
	data := fs.String("data", "", "dataset CSV path")
	trans := fs.String("trans", "", "transaction column name (when not annotated)")
	algo := fs.String("algo", "cluster+apriori/rmerger", "algorithm: rel | trans | rel+trans[/flavor]")
	k := fs.Int("k", 5, "k-anonymity parameter")
	m := fs.Int("m", 2, "k^m-anonymity itemset size")
	delta := fs.Float64("delta", 0.3, "RT merge slack")
	qis := fs.String("qis", "", "comma-separated QI attributes (default: all relational)")
	hierDir := fs.String("hierarchies", "", "directory of per-attribute hierarchy CSVs (default: auto-generate)")
	fanout := fs.Int("fanout", 4, "auto-generated hierarchy fanout")
	workloadPath := fs.String("workload", "", "query workload path (enables ARE)")
	privPath := fs.String("privacy", "", "privacy policy path (COAT/PCTA)")
	utilPath := fs.String("utility", "", "utility policy path (COAT)")
	rho := fs.Float64("rho", 0.5, "confidence bound for the rho extension algorithm")
	sensitive := fs.String("sensitive", "", "comma-separated sensitive items (rho extension)")
	outData := fs.String("out", "", "write the anonymized dataset CSV here")
	outJSON := fs.String("results", "", "write the run result JSON here")
	stream := fs.String("stream", "", "stream anonymized records to stdout as they are encoded: ndjson | csv (summary moves to stderr)")
	plotAttr := fs.String("plot-attr", "", "plot generalized value frequencies of this attribute")
	plotItems := fs.Bool("plot-items", false, "plot per-item relative frequency error")
	plotPhases := fs.Bool("plot-phases", false, "plot the phase runtime breakdown")
	varyParam := fs.String("vary", "", "varying-parameter execution: k, m or delta")
	varyStart := fs.Float64("start", 0, "sweep start")
	varyEnd := fs.Float64("end", 0, "sweep end")
	varyStep := fs.Float64("step", 1, "sweep step")
	svgOut := fs.String("svg", "", "write the sweep/frequency chart as SVG here")
	workers := fs.Int("workers", 0, "parallel anonymization workers (0: auto)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ds, err := loadDataset(*data, *trans)
	if err != nil {
		return err
	}
	cfg, err := buildConfig(ds, *algo, *k, *m, *delta, *qis, *hierDir, *fanout, *workloadPath, *privPath, *utilPath)
	if err != nil {
		return err
	}
	cfg.Rho = *rho
	cfg.Sensitive = splitList(*sensitive)

	if *stream != "" && *stream != "ndjson" && *stream != "csv" {
		return fmt.Errorf("unknown -stream format %q (want ndjson or csv)", *stream)
	}
	if *stream != "" && *varyParam != "" {
		return fmt.Errorf("-stream applies to single runs; a -vary sweep has no single anonymized dataset to stream")
	}

	ctx, stop := signalContext()
	defer stop()
	// No result cache here: sweep points must be independently executed
	// so reported runtimes are measured, never copied from a cache hit.
	sched := engine.NewScheduler(*workers, nil)

	if *varyParam != "" {
		sweep := experiment.Sweep{Param: *varyParam, Start: *varyStart, End: *varyEnd, Step: *varyStep}
		series, err := experiment.VaryingRunCtx(ctx, ds, cfg, sweep, sched)
		if err != nil {
			return err
		}
		printSeriesTable([]*experiment.Series{series})
		chart := seriesChart([]*experiment.Series{series}, *varyParam, "ARE",
			func(i engine.Indicators) float64 { return i.ARE })
		fmt.Print(chart.ASCII(78, 16))
		if *svgOut != "" {
			if err := export.ChartSVG(*svgOut, chart, 640, 420); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", *svgOut)
		}
		return nil
	}

	results, err := sched.RunAll(ctx, ds, []engine.Config{cfg})
	if err != nil {
		return err
	}
	res := results[0]
	if res.Err != nil {
		return res.Err
	}
	// With -stream, stdout belongs to the record stream (pipeable into
	// files or other tools); the human-facing summary moves to stderr.
	summary := os.Stdout
	if *stream != "" {
		summary = os.Stderr
	}
	printSummary(summary, res)

	if *stream != "" {
		var err error
		switch *stream {
		case "ndjson":
			err = export.RecordsNDJSON(os.Stdout, res.Records)
		case "csv":
			err = export.RecordsCSV(os.Stdout, res.Records, dataset.Options{})
		}
		if err != nil {
			return fmt.Errorf("streaming anonymized records: %w", err)
		}
	}

	if *outData != "" {
		if err := res.Anonymized.SaveFile(*outData, dataset.Options{}); err != nil {
			return err
		}
		fmt.Fprintf(summary, "anonymized dataset -> %s\n", *outData)
	}
	if *outJSON != "" {
		if err := export.ResultsJSONFile(*outJSON, []*engine.Result{res}); err != nil {
			return err
		}
		fmt.Fprintf(summary, "results -> %s\n", *outJSON)
	}
	if *plotAttr != "" {
		i := ds.AttrIndex(*plotAttr)
		if i < 0 {
			return fmt.Errorf("no attribute named %q", *plotAttr)
		}
		freqs := metrics.GeneralizedFrequencies(res.Anonymized, i)
		if len(freqs) > 15 {
			freqs = freqs[:15]
		}
		labels := make([]string, len(freqs))
		values := make([]float64, len(freqs))
		for j, f := range freqs {
			labels[j], values[j] = f.Value, float64(f.Count)
		}
		chart := plot.NewBar("generalized frequencies of "+*plotAttr, *plotAttr, "count", labels, values)
		fmt.Fprint(summary, chart.ASCII(78, 14))
		if *svgOut != "" {
			if err := export.ChartSVG(*svgOut, chart, 640, 420); err != nil {
				return err
			}
		}
	}
	if *plotItems && cfg.ItemHierarchy != nil {
		ves := metrics.ItemFrequencyError(ds, res.Anonymized, cfg.ItemHierarchy)
		if len(ves) > 20 {
			ves = ves[:20]
		}
		labels := make([]string, len(ves))
		values := make([]float64, len(ves))
		for j, ve := range ves {
			labels[j], values[j] = ve.Value, ve.RelError
		}
		chart := plot.NewBar("item frequency relative error", "item", "rel. error", labels, values)
		fmt.Fprint(summary, chart.ASCII(78, 14))
	}
	if *plotPhases {
		labels := make([]string, len(res.Phases))
		values := make([]float64, len(res.Phases))
		for j, p := range res.Phases {
			labels[j] = p.Name
			values[j] = float64(p.Duration) / float64(time.Millisecond)
		}
		chart := plot.NewBar("phase runtime", "phase", "ms", labels, values)
		fmt.Fprint(summary, chart.ASCII(78, 12))
	}
	return nil
}

// buildConfig assembles an engine.Config from CLI flags.
func buildConfig(ds *dataset.Dataset, algo string, k, m int, delta float64, qis, hierDir string, fanout int, workloadPath, privPath, utilPath string) (engine.Config, error) {
	cfg, err := engine.ConfigFromSpec(algo)
	if err != nil {
		return engine.Config{}, err
	}
	cfg.K, cfg.M, cfg.Delta, cfg.QIs = k, m, delta, splitList(qis)
	if cfg.Mode != engine.Transactional {
		cfg.Hierarchies, err = loadHierarchies(ds, hierDir, fanout)
		if err != nil {
			return engine.Config{}, err
		}
	}
	if cfg.Mode != engine.Relational && ds.HasTransaction() {
		cfg.ItemHierarchy, err = loadItemHierarchy(ds, hierDir, fanout)
		if err != nil {
			return engine.Config{}, err
		}
	}
	if workloadPath != "" {
		cfg.Workload, err = query.LoadFile(workloadPath)
		if err != nil {
			return engine.Config{}, err
		}
	}
	if privPath != "" || utilPath != "" {
		pol := &policy.Policy{}
		if privPath != "" {
			if pol.Privacy, err = policy.LoadPrivacyFile(privPath); err != nil {
				return engine.Config{}, err
			}
		}
		if utilPath != "" {
			if pol.Utility, err = policy.LoadUtilityFile(utilPath); err != nil {
				return engine.Config{}, err
			}
		}
		cfg.Policy = pol
	}
	return cfg, nil
}

// printSummary renders the Evaluation mode's "message box with a summary of
// results" to w (stdout normally, stderr when -stream owns stdout).
func printSummary(w io.Writer, res *engine.Result) {
	ind := res.Indicators
	fmt.Fprintf(w, "configuration : %s\n", res.Config.DisplayLabel())
	fmt.Fprintf(w, "runtime       : %v\n", res.Runtime.Round(time.Microsecond))
	for _, p := range res.Phases {
		fmt.Fprintf(w, "  phase %-12s %v\n", p.Name, p.Duration.Round(time.Microsecond))
	}
	if res.Config.Mode != engine.Transactional {
		fmt.Fprintf(w, "GCP           : %.4f\n", ind.GCP)
		fmt.Fprintf(w, "discernibility: %.0f\n", ind.Discernibility)
		fmt.Fprintf(w, "CAVG          : %.3f\n", ind.CAVG)
		fmt.Fprintf(w, "suppression   : %.2f%%\n", 100*ind.SuppressionRatio)
		fmt.Fprintf(w, "classes       : %d (min size %d)\n", ind.Classes, ind.MinClassSize)
		fmt.Fprintf(w, "k-anonymous   : %v\n", ind.KAnonymous)
	}
	if res.Config.Mode != engine.Relational {
		fmt.Fprintf(w, "trans. GCP    : %.4f\n", ind.TransactionGCP)
		fmt.Fprintf(w, "k^m-anonymous : %v\n", ind.KMAnonymous)
	}
	if res.Config.Workload != nil {
		fmt.Fprintf(w, "ARE           : %.4f\n", ind.ARE)
	}
}

// printSeriesTable prints sweep results row by row.
func printSeriesTable(series []*experiment.Series) {
	fmt.Printf("%-28s %8s %10s %10s %10s %10s\n", "series", "x", "ARE", "GCP", "tGCP", "time")
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				fmt.Printf("%-28s %8.3g %s\n", s.Label, p.X, "error: "+p.Err.Error())
				continue
			}
			fmt.Printf("%-28s %8.3g %10.4f %10.4f %10.4f %9.1fms\n",
				s.Label, p.X, p.Indicators.ARE, p.Indicators.GCP,
				p.Indicators.TransactionGCP, float64(p.Runtime)/float64(time.Millisecond))
		}
	}
}

// seriesChart builds a line chart of one indicator across series.
func seriesChart(series []*experiment.Series, xlabel, ylabel string, sel func(engine.Indicators) float64) *plot.Chart {
	var ps []plot.Series
	for _, s := range series {
		var xs, ys []float64
		for _, p := range s.Points {
			if p.Err != nil {
				continue
			}
			xs = append(xs, p.X)
			ys = append(ys, sel(p.Indicators))
		}
		ps = append(ps, plot.Series{Label: s.Label, Xs: xs, Ys: ys})
	}
	return plot.NewLine(ylabel+" vs "+xlabel, xlabel, ylabel, ps...)
}
