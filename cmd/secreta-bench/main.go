// Command secreta-bench is the experiment harness of this reproduction: it
// regenerates, as printed tables and series, the analytical outputs behind
// every figure of the SECRETA demo paper (see DESIGN.md section 3 for the
// experiment index E1-E10 and EXPERIMENTS.md for recorded results).
//
//	secreta-bench -exp all            # run everything
//	secreta-bench -exp E2 -records 800
//
// It is also the perf-tracking workhorse (harness.go): `secreta-bench
// run` executes the scripts/paper/experiments.json grid into a
// timestamped paper_runs/ folder, `secreta-bench compare` gates a fresh
// measurement against a tracked baseline, and `secreta-bench parse`
// turns raw `go test -bench` output into the flat BENCH_n.json format.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/metrics"
	"secreta/internal/policy"
	"secreta/internal/query"
	"secreta/internal/rt"
)

type bench struct {
	id    string
	brief string
	run   func(env *environment) error
}

type environment struct {
	ds       *dataset.Dataset
	hs       generalize.Set
	ih       *hierarchy.Hierarchy
	workload *query.Workload
	qis      []int
	records  int
	seed     int64
}

var benches = []bench{
	{"E1", "attribute histograms (Fig. 2, Dataset Editor)", runE1},
	{"E2", "ARE vs delta, fixed k,m (Fig. 3a)", runE2},
	{"E3", "runtime phase breakdown (Fig. 3b)", runE3},
	{"E4", "generalized value frequencies (Fig. 3c)", runE4},
	{"E5", "item frequency relative error (Fig. 3d)", runE5},
	{"E6", "comparison mode: ARE & runtime vs k (Fig. 4)", runE6},
	{"E7", "20-combination matrix (Sec. 1)", runE7},
	{"E8", "evaluator scalability vs workers (Sec. 2.2)", runE8},
	{"E9", "relational algorithms: GCP & ARE vs k", runE9},
	{"E10", "transaction algorithms: loss & runtime vs k", runE10},
}

func main() {
	if runHarnessCommand(os.Args) {
		return
	}
	expFlag := flag.String("exp", "all", "experiment id (E1..E10) or 'all'")
	records := flag.Int("records", 600, "dataset size")
	items := flag.Int("items", 24, "item domain size")
	seed := flag.Int64("seed", 42, "random seed")
	flag.Parse()

	ds := gen.Census(gen.Config{Records: *records, Items: *items, Seed: *seed})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		fatal(err)
	}
	w, err := query.Generate(ds, query.GenOptions{Queries: 80, Dims: 2, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		fatal(err)
	}
	env := &environment{ds: ds, hs: hs, ih: ih, workload: w, qis: qis, records: *records, seed: *seed}

	want := strings.ToUpper(*expFlag)
	ran := 0
	for _, b := range benches {
		if want != "ALL" && b.id != want {
			continue
		}
		fmt.Printf("=== %s: %s (n=%d, seed=%d)\n", b.id, b.brief, *records, *seed)
		start := time.Now()
		if err := b.run(env); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", b.id, err)
			os.Exit(1)
		}
		fmt.Printf("--- %s done in %v\n\n", b.id, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func baseRT(env *environment) engine.Config {
	return engine.Config{
		Mode: engine.RT, RelAlgo: "cluster", TransAlgo: "apriori", Flavor: rt.RMerge,
		K: 10, M: 2, Delta: 0.2,
		Hierarchies: env.hs, ItemHierarchy: env.ih, Workload: env.workload,
	}
}

// E1: per-attribute histograms of the original dataset.
func runE1(env *environment) error {
	for i, a := range env.ds.Attrs {
		h := env.ds.Histogram(i)
		top := h
		if len(top) > 5 {
			top = top[:5]
		}
		fmt.Printf("%-10s %2d distinct; top:", a.Name, len(h))
		for _, f := range top {
			fmt.Printf(" %s=%d", f.Value, f.Count)
		}
		fmt.Println()
	}
	ih := env.ds.ItemHistogram()
	fmt.Printf("%-10s %2d distinct items; top item %s=%d, median item %s=%d (Zipf skew)\n",
		env.ds.TransName, len(ih), ih[0].Value, ih[0].Count,
		ih[len(ih)/2].Value, ih[len(ih)/2].Count)
	return nil
}

// E2: ARE vs delta at fixed k, m (Fig. 3a). The paper's plot tracks how the
// merge slack trades transaction utility against relational utility, so we
// report ARE over the mixed workload and over an item-only workload (the
// transaction side the plot is about).
func runE2(env *environment) error {
	sweep := experiment.Sweep{Param: "delta", Start: 0, End: 0.5, Step: 0.1}
	mixed, err := experiment.VaryingRun(env.ds, baseRT(env), sweep, 0)
	if err != nil {
		return err
	}
	itemW, err := query.Generate(env.ds, query.GenOptions{Queries: 80, Dims: -1, Items: 1, Seed: env.seed})
	if err != nil {
		return err
	}
	itemCfg := baseRT(env)
	itemCfg.Workload = itemW
	itemsOnly, err := experiment.VaryingRun(env.ds, itemCfg, sweep, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%8s %10s %10s %10s %10s\n", "delta", "ARE", "itemARE", "GCP", "tGCP")
	for i, p := range mixed.Points {
		if p.Err != nil {
			fmt.Printf("%8.2f error: %v\n", p.X, p.Err)
			continue
		}
		fmt.Printf("%8.2f %10.4f %10.4f %10.4f %10.4f\n", p.X,
			p.Indicators.ARE, itemsOnly.Points[i].Indicators.ARE,
			p.Indicators.GCP, p.Indicators.TransactionGCP)
	}
	fmt.Println("expected shape: item-query ARE and transaction loss fall as delta rises (more")
	fmt.Println("merging freedom); relational GCP rises in exchange.")
	return nil
}

// E3: phase breakdown of a single RT run (Fig. 3b).
func runE3(env *environment) error {
	res := engine.Run(env.ds, baseRT(env))
	if res.Err != nil {
		return res.Err
	}
	fmt.Printf("total runtime: %v\n", res.Runtime.Round(time.Microsecond))
	for _, p := range res.Phases {
		pct := 100 * float64(p.Duration) / float64(res.Runtime)
		fmt.Printf("  %-12s %10v  %5.1f%%\n", p.Name, p.Duration.Round(time.Microsecond), pct)
	}
	return nil
}

// E4: frequencies of generalized values in a relational attribute (Fig.
// 3c). delta=0 keeps clusters unmerged so the local recoding granularity
// stays visible in the histogram.
func runE4(env *environment) error {
	cfg := baseRT(env)
	cfg.Delta = 0
	res := engine.Run(env.ds, cfg)
	if res.Err != nil {
		return res.Err
	}
	ai := env.ds.AttrIndex("Age")
	freqs := metrics.GeneralizedFrequencies(res.Anonymized, ai)
	if len(freqs) > 10 {
		freqs = freqs[:10]
	}
	fmt.Printf("top generalized Age values (of %d):\n", len(metrics.GeneralizedFrequencies(res.Anonymized, ai)))
	for _, f := range freqs {
		fmt.Printf("  %-20s %d\n", f.Value, f.Count)
	}
	return nil
}

// E5: relative error of item frequencies, original vs anonymized (Fig. 3d).
func runE5(env *environment) error {
	res := engine.Run(env.ds, baseRT(env))
	if res.Err != nil {
		return res.Err
	}
	ves := metrics.ItemFrequencyError(env.ds, res.Anonymized, env.ih)
	sum, max := 0.0, 0.0
	for _, ve := range ves {
		sum += ve.RelError
		if ve.RelError > max {
			max = ve.RelError
		}
	}
	fmt.Printf("items: %d, mean relative error: %.4f, max: %.4f\n", len(ves), sum/float64(len(ves)), max)
	sort.Slice(ves, func(i, j int) bool { return ves[i].RelError > ves[j].RelError })
	fmt.Println("worst five items:")
	for _, ve := range ves[:min(5, len(ves))] {
		fmt.Printf("  %-8s orig %5.0f est %7.2f relerr %.3f\n", ve.Value, ve.Original, ve.Estimate, ve.RelError)
	}
	return nil
}

// E6: comparison mode — multiple configurations, ARE and runtime vs k.
func runE6(env *environment) error {
	mk := func(rel, tra string, fl rt.Flavor) engine.Config {
		c := baseRT(env)
		c.RelAlgo, c.TransAlgo, c.Flavor = rel, tra, fl
		c.Label = rel + "+" + tra + "/" + fl.String()
		return c
	}
	bases := []engine.Config{
		mk("cluster", "apriori", rt.RMerge),
		mk("cluster", "apriori", rt.TMerge),
		mk("topdown", "apriori", rt.RMerge),
	}
	series, err := experiment.Compare(env.ds, bases,
		experiment.Sweep{Param: "k", Start: 5, End: 25, Step: 5}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-30s %6s %10s %10s %10s\n", "configuration", "k", "ARE", "GCP", "time")
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				fmt.Printf("%-30s %6.0f error: %v\n", s.Label, p.X, p.Err)
				continue
			}
			fmt.Printf("%-30s %6.0f %10.4f %10.4f %9.1fms\n",
				s.Label, p.X, p.Indicators.ARE, p.Indicators.GCP,
				float64(p.Runtime)/float64(time.Millisecond))
		}
	}
	fmt.Println("expected shape: ARE/GCP grow with k for every configuration.")
	return nil
}

// E7: the paper's 20 combinations under one bounding method.
func runE7(env *environment) error {
	fmt.Printf("%-22s %10s %10s %10s %6s\n", "combination", "GCP", "tGCP", "ARE", "ok")
	for _, rel := range rt.RelationalAlgos {
		for _, tra := range rt.TransactionAlgos {
			cfg := baseRT(env)
			cfg.RelAlgo, cfg.TransAlgo = rel, tra
			cfg.K = 5
			res := engine.Run(env.ds, cfg)
			if res.Err != nil {
				fmt.Printf("%-22s error: %v\n", rel+"+"+tra, res.Err)
				continue
			}
			ok := res.Indicators.KAnonymous && res.Indicators.KMAnonymous
			fmt.Printf("%-22s %10.4f %10.4f %10.4f %6v\n",
				rel+"+"+tra, res.Indicators.GCP, res.Indicators.TransactionGCP, res.Indicators.ARE, ok)
		}
	}
	return nil
}

// E8: Method Evaluator/Comparator scalability with worker count.
func runE8(env *environment) error {
	var cfgs []engine.Config
	for k := 2; k <= 16; k += 2 {
		c := baseRT(env)
		c.K = k
		c.Workload = nil
		cfgs = append(cfgs, c)
	}
	fmt.Printf("%8s %12s (8 configurations, %d CPUs)\n", "workers", "wall time", runtime.NumCPU())
	base := time.Duration(0)
	for _, workers := range []int{1, 2, 4, 8} {
		if p := runtime.GOMAXPROCS(0); p < workers {
			fmt.Printf("%8d %12s  skipped: GOMAXPROCS=%d < workers=%d, scaling not measurable\n",
				workers, "—", p, workers)
			continue
		}
		start := time.Now()
		results := engine.RunAll(env.ds, cfgs, workers)
		wall := time.Since(start)
		for _, r := range results {
			if r.Err != nil {
				return r.Err
			}
		}
		if workers == 1 {
			base = wall
		}
		fmt.Printf("%8d %12v  speedup %.2fx\n", workers, wall.Round(time.Millisecond),
			float64(base)/float64(wall))
	}
	fmt.Println("expected shape: near-linear speedup until configurations are exhausted.")
	return nil
}

// E9: the four relational algorithms alone, GCP & ARE vs k.
func runE9(env *environment) error {
	var bases []engine.Config
	for _, algo := range rt.RelationalAlgos {
		bases = append(bases, engine.Config{
			Label: algo, Mode: engine.Relational, Algorithm: algo,
			Hierarchies: env.hs, Workload: env.workload,
		})
	}
	series, err := experiment.Compare(env.ds, bases,
		experiment.Sweep{Param: "k", Start: 2, End: 50, Step: 16}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %10s %10s %10s\n", "algorithm", "k", "GCP", "ARE", "time")
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				fmt.Printf("%-12s %6.0f error: %v\n", s.Label, p.X, p.Err)
				continue
			}
			fmt.Printf("%-12s %6.0f %10.4f %10.4f %9.1fms\n",
				s.Label, p.X, p.Indicators.GCP, p.Indicators.ARE,
				float64(p.Runtime)/float64(time.Millisecond))
		}
	}
	fmt.Println("expected shape: cluster (local recoding) <= topdown/bottomup <= incognito (full-domain) in GCP.")
	return nil
}

// E10: the five transaction algorithms alone, loss & runtime vs k.
func runE10(env *environment) error {
	pol := &policy.Policy{
		Privacy: policy.PrivacyAllItems(env.ds),
		Utility: policy.UtilityTop(env.ds),
	}
	var bases []engine.Config
	for _, algo := range rt.TransactionAlgos {
		bases = append(bases, engine.Config{
			Label: algo, Mode: engine.Transactional, Algorithm: algo, M: 2,
			ItemHierarchy: env.ih, Policy: pol,
		})
	}
	series, err := experiment.Compare(env.ds, bases,
		experiment.Sweep{Param: "k", Start: 2, End: 26, Step: 8}, 0)
	if err != nil {
		return err
	}
	fmt.Printf("%-12s %6s %12s %10s\n", "algorithm", "k", "trans. GCP", "time")
	for _, s := range series {
		for _, p := range s.Points {
			if p.Err != nil {
				fmt.Printf("%-12s %6.0f error: %v\n", s.Label, p.X, p.Err)
				continue
			}
			fmt.Printf("%-12s %6.0f %12.4f %9.1fms\n",
				s.Label, p.X, p.Indicators.TransactionGCP,
				float64(p.Runtime)/float64(time.Millisecond))
		}
	}
	fmt.Println("expected shape: loss grows with k for the hierarchy-based algorithms (apriori, lra,")
	fmt.Println("vpa); COAT/PCTA labels are arbitrary groups outside the hierarchy, so their tGCP is an")
	fmt.Println("upper bound — compare their runtimes and the policy-protection checks instead.")
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
