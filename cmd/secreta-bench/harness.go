package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"secreta/internal/harness"
)

// The harness subcommands wrap internal/harness into the reproducible
// experiment workflow (see docs/PERFORMANCE.md):
//
//	secreta-bench run      # execute the grid into paper_runs/<ts>/
//	secreta-bench compare  # fresh gated measurement vs tracked baseline
//	secreta-bench parse    # go test -bench output -> flat BENCH json
//
// Invoked without a subcommand, secreta-bench keeps its historical role:
// the printed E1-E10 experiment reproductions (main.go).

const defaultGridPath = "scripts/paper/experiments.json"

// runHarnessCommand dispatches argv[1]; ok is false when argv names no
// harness subcommand and the legacy experiment CLI should run instead.
func runHarnessCommand(args []string) (ok bool) {
	if len(args) < 2 {
		return false
	}
	switch args[1] {
	case "run":
		cmdRun(args[2:])
	case "compare":
		cmdCompare(args[2:])
	case "parse":
		cmdParse(args[2:])
	default:
		return false
	}
	return true
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("secreta-bench run", flag.ExitOnError)
	grid := fs.String("grid", defaultGridPath, "experiment grid (experiments.json)")
	out := fs.String("out", "paper_runs", "parent directory for timestamped run folders")
	label := fs.String("label", "", "label recorded in the emitted baseline")
	repeats := fs.Int("repeats", 0, "override the grid's repeats")
	warmup := fs.Int("warmup", 0, "override the grid's warmup runs")
	benchtime := fs.String("benchtime", "", "override the grid's -benchtime")
	gateOnly := fs.Bool("gate-only", false, "run only gated (hot-path) experiments")
	fs.Parse(args)

	g, err := harness.LoadGrid(*grid)
	if err != nil {
		fatal(err)
	}
	r := &harness.Runner{
		Grid: g, RootDir: gridRoot(*grid), OutDir: *out, Label: *label,
		Repeats: *repeats, Warmup: *warmup, Benchtime: *benchtime, GateOnly: *gateOnly,
	}
	res, err := r.Run()
	if err != nil {
		fatal(err)
	}
	if err := harness.WriteSummaryMarkdown(os.Stdout, res.Baseline); err != nil {
		fatal(err)
	}
	fmt.Printf("\nrun folder: %s\n", res.Dir)
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("secreta-bench compare", flag.ExitOnError)
	grid := fs.String("grid", defaultGridPath, "experiment grid (experiments.json)")
	baselinePath := fs.String("baseline", "", "tracked baseline: a BENCH_n.json or a run's analysis/baseline.json (required)")
	from := fs.String("from", "", "compare a recorded measurement file instead of running benchmarks")
	repeats := fs.Int("repeats", 0, "override the grid's repeats for the fresh measurement")
	benchtime := fs.String("benchtime", "", "override the grid's -benchtime")
	nsTol := fs.Float64("ns-tolerance", 0, "default ns/op regression threshold (fraction; 0 = 0.20)")
	allocTol := fs.Float64("alloc-tolerance", 0, "default allocs/op regression threshold (fraction; 0 = 0.10)")
	selftest := fs.Bool("selftest", false, "verify the gate itself: must fail on baseline*1.25 and pass on baseline vs itself")
	fs.Parse(args)

	if *baselinePath == "" {
		fatal(fmt.Errorf("compare: -baseline is required"))
	}
	base, err := harness.LoadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	opts := harness.CompareOptions{NsTolerance: *nsTol, AllocTolerance: *allocTol}

	if *selftest {
		runSelftest(base, opts)
		return
	}

	var current *harness.Baseline
	if *from != "" {
		if current, err = harness.LoadBaseline(*from); err != nil {
			fatal(err)
		}
	} else {
		g, err := harness.LoadGrid(*grid)
		if err != nil {
			fatal(err)
		}
		r := &harness.Runner{
			Grid: g, RootDir: gridRoot(*grid), GateOnly: true,
			Repeats: *repeats, Benchtime: *benchtime,
		}
		res, err := r.Measure()
		if err != nil {
			fatal(err)
		}
		current = res.Baseline
		opts.Gate, opts.Overrides = harness.GateSpec(g, res.PerExperiment)
	}

	deltas := harness.Compare(base, current, opts)
	harness.WriteReport(os.Stdout, deltas)
	if fails := harness.Failures(deltas); len(fails) > 0 {
		fmt.Fprintf(os.Stderr, "\nFAIL: %d gated regression(s) against %s\n", len(fails), *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("\nPASS: no gated regressions against %s\n", *baselinePath)
}

// runSelftest proves the gate works before trusting it: an injected 25%
// slowdown of the tracked baseline must fail, and the baseline compared
// against itself must pass. MinGateRepeats drops to 1 because the
// fixture is synthetic, not a noisy measurement.
func runSelftest(base *harness.Baseline, opts harness.CompareOptions) {
	opts.MinGateRepeats = 1
	slow := harness.ScaleBaseline(base, 1.25, 1.25)
	if fails := harness.Failures(harness.Compare(base, slow, opts)); len(fails) == 0 {
		fatal(fmt.Errorf("selftest: gate did NOT fail on an injected 25%% slowdown"))
	}
	if fails := harness.Failures(harness.Compare(base, base, opts)); len(fails) > 0 {
		fatal(fmt.Errorf("selftest: gate failed the baseline against itself: %+v", fails))
	}
	fmt.Println("selftest PASS: gate fails on +25% injected, passes on identity")
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("secreta-bench parse", flag.ExitOnError)
	out := fs.String("o", "", "output file (default stdout)")
	fs.Parse(args)

	parsed, err := harness.ParseBench(os.Stdin)
	if err != nil {
		fatal(err)
	}
	for _, sk := range parsed.Skips {
		fmt.Fprintf(os.Stderr, "parse: skipped %s: %s\n", sk.Name, sk.Reason)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := harness.WriteFlatJSON(w, parsed.Results); err != nil {
		fatal(err)
	}
}

// gridRoot infers the repository root from the grid path: the grid lives
// at <root>/scripts/paper/experiments.json, so go test runs two levels
// up from its directory. A grid outside that layout runs from cwd.
func gridRoot(gridPath string) string {
	dir := filepath.Dir(gridPath)
	if filepath.Base(dir) == "paper" && filepath.Base(filepath.Dir(dir)) == "scripts" {
		return filepath.Dir(filepath.Dir(dir))
	}
	return ""
}
