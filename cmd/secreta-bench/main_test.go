package main

import (
	"testing"

	"secreta/internal/gen"
	"secreta/internal/query"
)

// smallEnv builds a fast experiment environment so every experiment's code
// path is exercised in tests.
func smallEnv(t *testing.T) *environment {
	t.Helper()
	ds := gen.Census(gen.Config{Records: 120, Items: 16, Seed: 42})
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		t.Fatal(err)
	}
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	w, err := query.Generate(ds, query.GenOptions{Queries: 20, Dims: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	return &environment{ds: ds, hs: hs, ih: ih, workload: w, qis: qis, records: 120, seed: 42}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	env := smallEnv(t)
	for _, b := range benches {
		b := b
		t.Run(b.id, func(t *testing.T) {
			if err := b.run(env); err != nil {
				t.Fatalf("%s: %v", b.id, err)
			}
		})
	}
}

func TestBenchListCoversE1ToE10(t *testing.T) {
	if len(benches) != 10 {
		t.Fatalf("benches = %d, want 10", len(benches))
	}
	for i, b := range benches {
		want := "E" + string(rune('1'+i))
		if i == 9 {
			want = "E10"
		}
		if b.id != want {
			t.Errorf("bench %d id = %s, want %s", i, b.id, want)
		}
	}
}
