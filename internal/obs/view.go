package obs

import (
	"sort"
	"time"
)

// EventView is one timeline entry in a trace snapshot.
type EventView struct {
	Name string `json:"name"`
	// AtMS is the event's offset from the trace start, in milliseconds.
	AtMS  float64           `json:"at_ms"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// SpanView is one node of the exported span tree.
type SpanView struct {
	Name string `json:"name"`
	// StartMS is the span's offset from the trace start; DurationMS its
	// length (up to the snapshot time for spans still open).
	StartMS    float64           `json:"start_ms"`
	DurationMS float64           `json:"duration_ms"`
	Open       bool              `json:"open,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Events     []EventView       `json:"events,omitempty"`
	Children   []*SpanView       `json:"children,omitempty"`
}

// TraceView is the JSON document GET /jobs/{id}/trace serves: the span
// tree plus the bookkeeping an operator needs to trust it (drop counters,
// completeness).
type TraceView struct {
	Job       string `json:"job"`
	StartedAt string `json:"started_at"`
	// DurationMS covers trace start to Finish — or to the snapshot time
	// for a live trace (Complete false).
	DurationMS float64 `json:"duration_ms"`
	Complete   bool    `json:"complete"`
	Spans      int     `json:"spans"`
	// Events counts timeline entries ever recorded; DroppedEvents is how
	// many of those the ring has already overwritten, and DroppedSpans
	// how many spans the cap refused.
	Events        uint64    `json:"events"`
	DroppedEvents uint64    `json:"dropped_events,omitempty"`
	DroppedSpans  uint64    `json:"dropped_spans,omitempty"`
	Trace         *SpanView `json:"trace"`
}

// View snapshots the trace as an exportable span tree. Valid at any
// point in the job's life: open spans report duration up to now and are
// flagged Open. Children are ordered by start time.
func (t *Trace) View() *TraceView {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.end
	complete := !end.IsZero()
	if !complete {
		end = now
	}
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	views := make([]*SpanView, len(t.spans))
	for i, sp := range t.spans {
		se := sp.end
		open := se.IsZero()
		if open {
			se = end
		}
		views[i] = &SpanView{
			Name:       sp.name,
			StartMS:    ms(sp.start.Sub(t.start)),
			DurationMS: ms(se.Sub(sp.start)),
			Open:       open && !complete,
			Attrs:      attrMap(sp.attrs),
		}
	}
	// The timeline ring in chronological order: once full, evNext is the
	// oldest entry.
	ordered := t.events
	if len(t.events) == t.maxEvents && t.evNext > 0 {
		ordered = make([]event, 0, len(t.events))
		ordered = append(ordered, t.events[t.evNext:]...)
		ordered = append(ordered, t.events[:t.evNext]...)
	}
	for _, ev := range ordered {
		idx := ev.span
		if int(idx) >= len(views) || idx < 0 {
			idx = 0
		}
		views[idx].Events = append(views[idx].Events, EventView{
			Name:  ev.name,
			AtMS:  ms(ev.at.Sub(t.start)),
			Attrs: attrMap(ev.attrs),
		})
	}
	for i := 1; i < len(t.spans); i++ {
		p := t.spans[i].parent
		if p < 0 || int(p) >= len(views) {
			p = 0
		}
		views[p].Children = append(views[p].Children, views[i])
	}
	// Spans are appended under one lock in Start order, but Interval
	// records historical phases after the fact — sort each sibling list
	// by start so the tree reads in time order.
	for _, v := range views {
		sort.SliceStable(v.Children, func(a, b int) bool {
			return v.Children[a].StartMS < v.Children[b].StartMS
		})
	}
	dropped := uint64(0)
	if t.evTotal > uint64(len(t.events)) {
		dropped = t.evTotal - uint64(len(t.events))
	}
	return &TraceView{
		Job:           t.id,
		StartedAt:     t.start.UTC().Format(time.RFC3339Nano),
		DurationMS:    ms(end.Sub(t.start)),
		Complete:      complete,
		Spans:         len(t.spans),
		Events:        t.evTotal,
		DroppedEvents: dropped,
		DroppedSpans:  t.dropped,
		Trace:         views[0],
	}
}

func attrMap(attrs []Attr) map[string]string {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]string, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value
	}
	return m
}
