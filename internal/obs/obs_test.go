package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestSpanTreeInvariants pins the structural contract of a View snapshot:
// parents precede children, children are sorted by start time, and every
// recorded span appears exactly once in the tree.
func TestSpanTreeInvariants(t *testing.T) {
	tr := New("job-1")
	root := tr.Root()
	if root.TraceID() != "job-1" {
		t.Fatalf("TraceID = %q, want job-1", root.TraceID())
	}

	queue := root.Start("queue_wait")
	queue.End()
	exec := root.Start("execute", String("kind", "anonymize"))
	load := exec.Start("dataset_load")
	load.End()
	run := exec.Start("run")
	// Interval records historical phases out of wall-clock order; the view
	// must still sort siblings by start.
	base := time.Now().Add(-50 * time.Millisecond)
	run.Interval("transaction", base.Add(10*time.Millisecond), base.Add(30*time.Millisecond))
	run.Interval("relational", base, base.Add(10*time.Millisecond))
	run.End()
	exec.End()
	tr.Finish()

	v := tr.View()
	if !v.Complete {
		t.Fatal("finished trace not marked complete")
	}
	if v.Trace == nil || v.Trace.Name != "job" {
		t.Fatalf("root span missing or misnamed: %+v", v.Trace)
	}
	if got := len(v.Trace.Children); got != 2 {
		t.Fatalf("root children = %d, want 2 (queue_wait, execute)", got)
	}
	if v.Trace.Children[0].Name != "queue_wait" || v.Trace.Children[1].Name != "execute" {
		t.Fatalf("root children order = %q, %q", v.Trace.Children[0].Name, v.Trace.Children[1].Name)
	}
	ex := v.Trace.Children[1]
	if ex.Attrs["kind"] != "anonymize" {
		t.Fatalf("execute attrs = %v", ex.Attrs)
	}
	if len(ex.Children) != 2 || ex.Children[0].Name != "dataset_load" || ex.Children[1].Name != "run" {
		t.Fatalf("execute children = %+v", ex.Children)
	}
	rn := ex.Children[1]
	if len(rn.Children) != 2 {
		t.Fatalf("run children = %d, want 2", len(rn.Children))
	}
	// Interval siblings sorted by start: relational (earlier) first.
	if rn.Children[0].Name != "relational" || rn.Children[1].Name != "transaction" {
		t.Fatalf("phase order = %q, %q", rn.Children[0].Name, rn.Children[1].Name)
	}
	if rn.Children[0].StartMS > rn.Children[1].StartMS {
		t.Fatal("children not sorted by start time")
	}
	var count func(s *SpanView) int
	count = func(s *SpanView) int {
		n := 1
		for _, c := range s.Children {
			n += count(c)
		}
		return n
	}
	if got := count(v.Trace); got != v.Spans || got != 7 {
		t.Fatalf("tree has %d spans, header says %d, want 7", got, v.Spans)
	}
	for _, c := range v.Trace.Children {
		if c.Open {
			t.Fatalf("span %q open after Finish", c.Name)
		}
	}
	if _, err := json.Marshal(v); err != nil {
		t.Fatalf("view not serializable: %v", err)
	}
}

// TestLiveSnapshot exercises View on an unfinished trace: open spans get a
// duration up to the snapshot and the Open flag.
func TestLiveSnapshot(t *testing.T) {
	tr := New("job-live")
	sp := tr.Root().Start("execute")
	time.Sleep(2 * time.Millisecond)
	v := tr.View()
	if v.Complete {
		t.Fatal("live trace marked complete")
	}
	if len(v.Trace.Children) != 1 {
		t.Fatalf("children = %d", len(v.Trace.Children))
	}
	c := v.Trace.Children[0]
	if !c.Open {
		t.Fatal("running span not marked open")
	}
	if c.DurationMS <= 0 {
		t.Fatalf("open span duration = %v, want > 0", c.DurationMS)
	}
	sp.End()
	tr.Finish()
	if v2 := tr.View(); v2.Trace.Children[0].Open {
		t.Fatal("span still open after Finish")
	}
}

// TestBoundedMemory is the O(1)-memory property: a synthetic job emitting
// 10k events and far more spans than the cap must hold exactly maxEvents
// timeline entries and maxSpans spans, with the overflow counted.
func TestBoundedMemory(t *testing.T) {
	const spanCap, eventCap = 64, 128
	tr := NewSized("job-bounded", spanCap, eventCap)
	sp := tr.Root().Start("execute")
	const total = 10000
	for i := 0; i < total; i++ {
		sp.Event("apriori_round", Int("round", i))
		if i%10 == 0 {
			child := sp.Start("scan")
			child.Event("km_scan", Int("i", i))
			child.End()
		}
	}
	sp.End()
	tr.Finish()

	tr.mu.Lock()
	spans, events := len(tr.spans), len(tr.events)
	tr.mu.Unlock()
	if spans > spanCap {
		t.Fatalf("spans grew to %d, cap %d", spans, spanCap)
	}
	if events > eventCap {
		t.Fatalf("events grew to %d, cap %d", events, eventCap)
	}

	v := tr.View()
	if v.Spans != spanCap {
		t.Fatalf("view spans = %d, want %d (cap reached)", v.Spans, spanCap)
	}
	if v.DroppedSpans == 0 {
		t.Fatal("span drops not counted")
	}
	wantEvents := uint64(total + (total+9)/10)
	if v.Events != wantEvents {
		t.Fatalf("event total = %d, want %d", v.Events, wantEvents)
	}
	if v.DroppedEvents != wantEvents-eventCap {
		t.Fatalf("dropped events = %d, want %d", v.DroppedEvents, wantEvents-eventCap)
	}
	// The ring keeps the newest events: the last recorded round must be
	// present, the first long gone.
	var all []EventView
	var walk func(s *SpanView)
	walk = func(s *SpanView) {
		all = append(all, s.Events...)
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(v.Trace)
	if len(all) != eventCap {
		t.Fatalf("view events = %d, want %d", len(all), eventCap)
	}
	last := false
	for _, ev := range all {
		if ev.Attrs["round"] == "9999" {
			last = true
		}
		if ev.Attrs["round"] == "0" && ev.Name == "apriori_round" {
			t.Fatal("oldest event survived a full ring")
		}
	}
	if !last {
		t.Fatal("newest event missing from ring")
	}
}

// TestZeroSpanNoop: every method on the zero Span must be callable from
// uninstrumented paths (CLI, tests) without effect or panic.
func TestZeroSpanNoop(t *testing.T) {
	var s Span
	s2 := s.Start("child", String("k", "v"))
	s2.Event("e")
	s2.SetAttr("a", "b")
	s2.Interval("p", time.Now(), time.Now())
	s2.End()
	s.End()
	if s.TraceID() != "" {
		t.Fatal("zero span has a trace ID")
	}
	if got := FromCtx(context.Background()); got.t != nil {
		t.Fatal("untraced context yielded a live span")
	}
	if got := FromCtx(nil); got.t != nil { //nolint:staticcheck // nil-safety is the point
		t.Fatal("nil context yielded a live span")
	}
}

// TestContextPlumbing round-trips a span through a context.
func TestContextPlumbing(t *testing.T) {
	tr := New("job-ctx")
	ctx := With(context.Background(), tr.Root())
	got := FromCtx(ctx)
	if got.TraceID() != "job-ctx" {
		t.Fatalf("FromCtx trace = %q", got.TraceID())
	}
	child := got.Start("nested")
	child.End()
	tr.Finish()
	if v := tr.View(); len(v.Trace.Children) != 1 || v.Trace.Children[0].Name != "nested" {
		t.Fatalf("nested span lost: %+v", v.Trace.Children)
	}
}

// TestFinishIdempotent: double Finish and nil-trace Finish are safe, and
// Finish pins the end so later Views agree.
func TestFinishIdempotent(t *testing.T) {
	var nilTrace *Trace
	nilTrace.Finish() // must not panic
	if nilTrace.View() != nil {
		t.Fatal("nil trace produced a view")
	}
	tr := New("job-fin")
	tr.Finish()
	d1 := tr.View().DurationMS
	time.Sleep(2 * time.Millisecond)
	tr.Finish()
	if d2 := tr.View().DurationMS; d2 != d1 {
		t.Fatalf("duration moved after second Finish: %v -> %v", d1, d2)
	}
}

// TestConcurrentRecording hammers one trace from many goroutines under
// -race; bounds must hold after the dust settles.
func TestConcurrentRecording(t *testing.T) {
	tr := NewSized("job-conc", 32, 64)
	root := tr.Root()
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				sp := root.Start("w")
				sp.Event("tick", Int("g", g), Int("i", i))
				sp.SetAttr("k", "v")
				sp.End()
				if i%100 == 0 {
					_ = tr.View()
				}
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	tr.Finish()
	v := tr.View()
	if v.Spans > 32 {
		t.Fatalf("span cap breached: %d", v.Spans)
	}
	if v.Events != 8*500 {
		t.Fatalf("event total = %d, want %d", v.Events, 8*500)
	}
}
