// Package obs is secreta-serve's job-lifecycle tracing subsystem: a
// lightweight, dependency-free span recorder that answers "what is job X
// doing right now and where did its time go". Each job owns one Trace — a
// bounded tree of spans (start/end, attributes, parent links) plus a
// ring-buffered event timeline — so per-job trace memory is O(1)
// regardless of how long the job runs or how chatty the algorithms are.
//
// The recorder is threaded through the engine alongside context
// cancellation: a Span travels in the context (With/FromCtx), layers
// start children on whatever span they find there, and algorithm hot
// loops append events (an Apriori repair round, a k^m support scan)
// without knowing who is listening. Every method is safe on the zero
// Span, so instrumented code needs no "is tracing on?" branches — CLI
// paths that never attach a trace pay a nil check and nothing else.
//
// A Trace can be snapshotted at any time (View), including mid-flight:
// open spans report their duration up to the snapshot and are marked
// open. Terminal jobs serialize the final snapshot to JSON and journal it
// beside the job record, so traces survive a restart.
package obs

import (
	"context"
	"strconv"
	"sync"
	"time"
)

// Default per-trace bounds. Spans beyond MaxSpans are counted and
// dropped; events beyond MaxEvents overwrite the oldest (the timeline is
// a ring): recent activity is what an operator debugging a live job
// needs, and the drop counters make the truncation visible.
const (
	DefaultMaxSpans  = 256
	DefaultMaxEvents = 512
	// maxAttrsPerSpan bounds per-span annotation growth so a loop calling
	// SetAttr cannot grow a span without bound.
	maxAttrsPerSpan = 32
)

// Attr is one key/value annotation on a span or event.
type Attr struct {
	Key   string
	Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: strconv.Itoa(v)} }

// Int64 builds a 64-bit integer attribute.
func Int64(k string, v int64) Attr { return Attr{Key: k, Value: strconv.FormatInt(v, 10)} }

// span is one recorded interval. Parent links are indices into the
// trace's span slice; the root is index 0 with parent -1.
type span struct {
	name   string
	parent int32
	start  time.Time
	end    time.Time // zero while open
	attrs  []Attr
}

// event is one timeline entry, attributed to the span that recorded it.
type event struct {
	span  int32
	name  string
	at    time.Time
	attrs []Attr
}

// Trace records one job's lifecycle. Safe for concurrent use: the server
// annotates from handler goroutines while engine workers record phases.
type Trace struct {
	mu        sync.Mutex
	id        string
	start     time.Time
	end       time.Time // zero until Finish
	maxSpans  int
	maxEvents int
	spans     []span
	events    []event // ring once len == maxEvents
	evNext    int     // ring write position (valid once full)
	evTotal   uint64  // events ever recorded
	dropped   uint64  // spans dropped at the cap
}

// New builds a trace for the given job ID with the default bounds and
// opens its root span (named "job").
func New(id string) *Trace { return NewSized(id, DefaultMaxSpans, DefaultMaxEvents) }

// NewSized is New with explicit span/event bounds (values < 2 are raised
// to 2 so the root span and at least one child always fit).
func NewSized(id string, maxSpans, maxEvents int) *Trace {
	if maxSpans < 2 {
		maxSpans = 2
	}
	if maxEvents < 2 {
		maxEvents = 2
	}
	t := &Trace{
		id:        id,
		start:     time.Now(),
		maxSpans:  maxSpans,
		maxEvents: maxEvents,
	}
	t.spans = append(t.spans, span{name: "job", parent: -1, start: t.start})
	return t
}

// ID returns the job ID the trace belongs to ("" on a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span handle (the zero no-op Span on a nil trace,
// so callers holding an optional *Trace need no guards).
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, idx: 0}
}

// Finish closes the trace: the root span and every still-open span end
// now. Idempotent.
func (t *Trace) Finish() {
	if t == nil {
		return
	}
	now := time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.end.IsZero() {
		return
	}
	t.end = now
	for i := range t.spans {
		if t.spans[i].end.IsZero() {
			t.spans[i].end = now
		}
	}
}

// Span is a handle onto one span of a trace. The zero Span is a valid
// no-op recorder: every method is safe to call and does nothing, so
// instrumented code paths need no tracing-enabled checks. A Span whose
// trace hit its span cap ("dropped" handle, idx < 0) likewise records
// nothing but still counts the drops.
type Span struct {
	t   *Trace
	idx int32
}

// TraceID returns the owning trace's job ID ("" on the zero Span).
func (s Span) TraceID() string {
	if s.t == nil {
		return ""
	}
	return s.t.id
}

// Start opens a child span. On the zero Span it returns another zero
// Span; past the trace's span cap it counts a drop and returns a
// non-recording handle (whose own children are also counted as drops).
func (s Span) Start(name string, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	now := time.Now()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans || s.idx < 0 {
		t.dropped++
		return Span{t: t, idx: -1}
	}
	t.spans = append(t.spans, span{name: name, parent: s.idx, start: now, attrs: clampAttrs(attrs)})
	return Span{t: t, idx: int32(len(t.spans) - 1)}
}

// Interval records an already-measured child span with explicit start and
// end times — how stopwatch-timed algorithm phases become spans after the
// fact, without re-timing the algorithm.
func (s Span) Interval(name string, start, end time.Time, attrs ...Attr) {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.maxSpans || s.idx < 0 {
		t.dropped++
		return
	}
	t.spans = append(t.spans, span{name: name, parent: s.idx, start: start, end: end, attrs: clampAttrs(attrs)})
}

// End closes the span (idempotent; no-op on the zero and dropped Span).
func (s Span) End() {
	if s.t == nil || s.idx < 0 {
		return
	}
	now := time.Now()
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	if sp := &t.spans[s.idx]; sp.end.IsZero() {
		sp.end = now
	}
}

// SetAttr annotates the span (bounded by maxAttrsPerSpan; extra
// annotations are dropped).
func (s Span) SetAttr(key, value string) {
	if s.t == nil || s.idx < 0 {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	sp := &t.spans[s.idx]
	if len(sp.attrs) < maxAttrsPerSpan {
		sp.attrs = append(sp.attrs, Attr{Key: key, Value: value})
	}
}

// Event appends to the trace's ring-buffered timeline, attributed to this
// span (to the root for a dropped span handle). O(1): past the event cap
// the oldest entry is overwritten.
func (s Span) Event(name string, attrs ...Attr) {
	if s.t == nil {
		return
	}
	now := time.Now()
	idx := s.idx
	if idx < 0 {
		idx = 0
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	ev := event{span: idx, name: name, at: now, attrs: clampAttrs(attrs)}
	t.evTotal++
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
		return
	}
	t.events[t.evNext] = ev
	t.evNext = (t.evNext + 1) % t.maxEvents
}

func clampAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	if len(attrs) > maxAttrsPerSpan {
		attrs = attrs[:maxAttrsPerSpan]
	}
	return append([]Attr(nil), attrs...)
}

// ---- context plumbing ----

type ctxKey struct{}

// With returns a context carrying the span; layers below start children
// on whatever span they find with FromCtx.
func With(ctx context.Context, s Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromCtx extracts the span from the context. A nil or untraced context
// yields the zero (no-op) Span.
func FromCtx(ctx context.Context) Span {
	if ctx == nil {
		return Span{}
	}
	if s, ok := ctx.Value(ctxKey{}).(Span); ok {
		return s
	}
	return Span{}
}
