package server

import (
	"context"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"secreta/internal/faultfs"
	"secreta/internal/store"
)

// faultServer boots a durable server whose store runs over fsys and
// returns the test server plus a crash func: cancel + close HTTP but do
// NOT close the store — the next Open must replay the journal exactly as
// after a process kill.
func faultServer(t *testing.T, dir string, fsys faultfs.FS, opts Options) (*httptest.Server, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	ctx, cancel := context.WithCancel(context.Background())
	srv := mustNew(t, ctx, opts)
	ts := httptest.NewServer(srv.Handler())
	waitReady(t, ts.URL)
	var crashed bool
	crash := func() {
		if crashed {
			return
		}
		crashed = true
		cancel()
		ts.Close()
	}
	t.Cleanup(crash)
	return ts, crash
}

// runFaultScenario drives the canonical lifecycle — upload, submit an
// anonymize job, wait for a terminal state — arming, when nth > 0, a
// one-shot EIO on the nth store operation after the upload. It returns
// the terminal status, the job ID, and how many store operations the
// lifecycle performed (the matrix size, measured on the fault-free
// baseline).
func runFaultScenario(t *testing.T, ts *httptest.Server, ffs *faultfs.FaultFS, nth int) (Status, string, int) {
	t.Helper()
	raw, _ := patientsJSON(t)
	code, body := uploadDataset(t, ts.URL, raw)
	// 200 = already registered: reboot convergence re-uploads the same
	// content-addressed dataset.
	if code != http.StatusCreated && code != http.StatusOK {
		t.Fatalf("upload: %d %v", code, body)
	}
	ref := body["dataset_ref"].(string)
	mark := len(ffs.Ledger())
	if nth > 0 {
		// Rule matches count from arming, so Nth is relative to here.
		// Count 0 = fire exactly once: one fault at one lifecycle point.
		ffs.Arm(faultfs.Rule{Op: faultfs.OpAny, Nth: nth, Err: syscall.EIO, Count: 0})
	}
	resp, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "cluster", "k": 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %v", resp.StatusCode, sub)
	}
	id := sub["job"].(string)
	status := pollDone(t, ts.URL, id)
	return status, id, len(ffs.Ledger()) - mark
}

// listTempFiles walks the data dir for ".tmp-*" files.
func listTempFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), ".tmp-") {
			out = append(out, path)
		}
		return nil
	})
	return out
}

// waitNoTempFiles polls until the data dir holds no ".tmp-*" file — the
// quiescent state once every atomic write has published or cleaned up.
func waitNoTempFiles(t *testing.T, dir string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var last []string
	for time.Now().Before(deadline) {
		if last = listTempFiles(t, dir); len(last) == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("temp files never settled: %v", last)
}

// waitAllTerminal polls until every job the server lists is terminal —
// re-queued crash recovery work included.
func waitAllTerminal(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := getJSON(t, base+"/jobs")
		settled := true
		if jobs, ok := body["jobs"].([]any); ok {
			for _, j := range jobs {
				jm, _ := j.(map[string]any)
				st, _ := jm["status"].(string)
				if !Status(st).Terminal() {
					settled = false
					break
				}
			}
		}
		if settled {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("jobs never settled after reboot")
}

// TestFaultMatrix injects one permanent I/O fault at every store
// operation of the submit → execute → persist → done lifecycle and
// asserts the tri-state invariant after each: the server is either
// degraded (writes 503, reads alive), or the job is done with a readable
// result, or the job failed cleanly. Then it crashes the process
// (journal NOT closed), reboots on a healthy disk, and asserts
// convergence: clean replay, no torn tail, no temp orphans, and an
// identical re-submission that completes with a readable result.
func TestFaultMatrix(t *testing.T) {
	// The probe loop is parked (tested separately): a probe racing the
	// crash would write into the data dir while the next boot replays it —
	// a window no real kill has, because a dead process stops writing.
	opts := Options{Workers: 2, DegradedProbeInterval: time.Hour}

	// Baseline: enumerate the lifecycle's store operations fault-free.
	baseFS := faultfs.NewFaultFS(faultfs.OS, 1)
	ts, _ := faultServer(t, t.TempDir(), baseFS, opts)
	status, _, total := runFaultScenario(t, ts, baseFS, 0)
	if status != StatusDone {
		t.Fatalf("baseline job ended %s", status)
	}
	if total == 0 {
		t.Fatal("baseline lifecycle performed no store operations; the seam is not wired")
	}
	t.Logf("fault matrix: %d injection points", total)

	for nth := 1; nth <= total; nth++ {
		t.Run("op"+strconv.Itoa(nth), func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.NewFaultFS(faultfs.OS, 1)
			ts, crash := faultServer(t, dir, ffs, opts)
			status, id, _ := runFaultScenario(t, ts, ffs, nth)

			_, health := getJSON(t, ts.URL+"/healthz")
			degraded := health["status"] == "degraded"
			switch {
			case degraded:
				// Degraded read-only: writes must 503 with Retry-After,
				// reads must keep answering.
				resp, _ := postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": "x"})
				if resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("degraded POST: %d, want 503", resp.StatusCode)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("degraded 503 without Retry-After")
				}
				if code, _ := getJSON(t, ts.URL+"/jobs"); code != http.StatusOK {
					t.Errorf("degraded GET /jobs: %d, want 200", code)
				}
				d, ok := health["degraded"].(map[string]any)
				if !ok || d["reason"] == "" {
					t.Errorf("degraded /healthz payload missing reason: %v", health)
				}
			case status == StatusDone:
				// Not degraded: a done job must answer its result. One
				// retry, in case the injected fault landed in this very
				// read path (the rule is one-shot).
				code, _ := getRaw(t, ts.URL+"/jobs/"+id+"/result")
				if code != http.StatusOK {
					if code, _ = getRaw(t, ts.URL+"/jobs/"+id+"/result"); code != http.StatusOK {
						t.Errorf("done job's result: %d, want 200", code)
					}
				}
			case !status.Terminal():
				t.Errorf("job ended in non-terminal %s", status)
			}
			// Any other terminal state (failed) is the clean-failure arm.

			// Crash without closing the store, reboot on a healthy disk.
			// Debris present at boot must be swept; temp files appearing
			// after are live writes of re-queued recovery work, so only
			// the pre-boot set is asserted gone.
			crash()
			debris := listTempFiles(t, dir)
			ts2, _ := faultServer(t, dir, faultfs.OS, opts)
			for _, p := range debris {
				if _, err := os.Stat(p); err == nil {
					t.Errorf("orphaned temp file survived the boot sweep: %s", p)
				}
			}
			waitAllTerminal(t, ts2.URL)
			code, stats := getJSON(t, ts2.URL+"/stats")
			if code != http.StatusOK {
				t.Fatalf("stats after reboot: %d", code)
			}
			if torn, _ := dig(stats, "store", "journal", "replay", "torn_tail").(bool); torn {
				t.Error("reboot replay found a torn WAL tail; the append rollback leaked a frame")
			}
			if deg, _ := dig(stats, "degraded", "active").(bool); deg {
				t.Error("fresh boot on a healthy disk must not be degraded")
			}

			// Convergence: the same submission completes and answers.
			st2, id2, _ := runFaultScenario(t, ts2, faultfs.NewFaultFS(faultfs.OS, 1), 0)
			if st2 != StatusDone {
				t.Fatalf("re-submission after reboot ended %s", st2)
			}
			if code, _ := getRaw(t, ts2.URL+"/jobs/"+id2+"/result"); code != http.StatusOK {
				t.Fatalf("re-submitted job's result: %d, want 200", code)
			}
			// Every atomic write settles: published or cleaned up, never
			// leaked.
			waitNoTempFiles(t, dir)
		})
	}
}

// dig walks nested JSON maps.
func dig(m map[string]any, keys ...string) any {
	var cur any = m
	for _, k := range keys {
		mm, ok := cur.(map[string]any)
		if !ok {
			return nil
		}
		cur = mm[k]
	}
	return cur
}
