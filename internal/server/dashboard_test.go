package server

import (
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestDashboardSelfContained pins the zero-dependency property: the
// dashboard page is one embedded HTML document with no external asset
// references — every style and script inline, charts arriving as SVG
// strings inside the data JSON.
func TestDashboardSelfContained(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /dashboard: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("content type = %q", ct)
	}
	_, raw := getRaw(t, ts.URL+"/dashboard")
	page := string(raw)
	if !strings.Contains(page, "/dashboard/data") {
		t.Error("page does not poll /dashboard/data")
	}
	for _, banned := range []string{"http://", "https://", "<link", "src=", "@import", "url("} {
		if strings.Contains(page, banned) {
			t.Errorf("page references an external asset (%q)", banned)
		}
	}
}

// TestDashboardDataAgreesWithStats is the CI cross-check: the dashboard
// aggregate and GET /stats read the same counter families, so with no
// traffic between the two requests the numbers must agree exactly.
func TestDashboardDataAgreesWithStats(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	req := AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluster", K: 4}}
	// Two identical jobs: the second is a cache hit, so both the hit and
	// miss counters are nonzero and a stale copy would show.
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/anonymize", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: %d %v", i, resp.StatusCode, body)
		}
		if st := pollDone(t, ts.URL, body["job"].(string)); st != StatusDone {
			t.Fatalf("job %d ended %s", i, st)
		}
	}

	_, stats := getJSON(t, ts.URL+"/stats")
	code, dash := getJSON(t, ts.URL+"/dashboard/data")
	if code != http.StatusOK {
		t.Fatalf("GET /dashboard/data: %d", code)
	}
	if dash["ready"] != true {
		t.Error("dashboard data says not ready on a ready server")
	}

	for _, fam := range []string{"jobs", "cache", "registry", "streaming"} {
		sv, dv := stats[fam].(map[string]any), dash[fam].(map[string]any)
		for k, want := range sv {
			if got := dv[k]; got != want {
				t.Errorf("%s.%s: dashboard %v, stats %v", fam, k, got, want)
			}
		}
	}
	// The counts map omits zero states, so queued may be absent entirely.
	jobs := dash["jobs"].(map[string]any)
	queued, _ := jobs["queued"].(float64)
	if qd := dash["queue_depth"].(float64); qd != queued {
		t.Errorf("queue_depth %v != jobs.queued %v", qd, queued)
	}
	if hits := dash["cache"].(map[string]any)["hits"].(float64); hits < 1 {
		t.Errorf("cache hits = %v, want >= 1 (second job was identical)", hits)
	}

	charts := dash["charts"].(map[string]any)
	for _, name := range []string{"jobs", "queue", "phases", "cache"} {
		svg, _ := charts[name].(string)
		if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "</svg>") {
			t.Errorf("chart %q is not an SVG document: %.60q", name, svg)
		}
	}
	if _, hasStore := dash["store"]; hasStore {
		t.Error("memory-only server reports a store section")
	}
}

// TestDashHistorySampling pins the history ring's bounds: samples closer
// than dashSampleMin collapse, and the ring never exceeds dashWindow.
func TestDashHistorySampling(t *testing.T) {
	d := newDashHistory()
	base := time.Now()
	d.observe(dashSample{at: base})
	d.observe(dashSample{at: base.Add(100 * time.Millisecond)}) // too soon: dropped
	if got := len(d.series()); got != 1 {
		t.Fatalf("series after sub-second sample: %d entries, want 1", got)
	}
	for i := 1; i <= dashWindow+10; i++ {
		d.observe(dashSample{at: base.Add(time.Duration(i) * time.Second), queued: i})
	}
	hist := d.series()
	if len(hist) != dashWindow {
		t.Fatalf("ring holds %d samples, want %d", len(hist), dashWindow)
	}
	// Chronological order, newest last.
	for i := 1; i < len(hist); i++ {
		if !hist[i].at.After(hist[i-1].at) {
			t.Fatalf("series out of order at %d", i)
		}
	}
	if hist[len(hist)-1].queued != dashWindow+10 {
		t.Fatalf("newest sample queued = %d, want %d", hist[len(hist)-1].queued, dashWindow+10)
	}
}
