package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued    Status = "queued"
	StatusRunning   Status = "running"
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// JobView is the JSON shape of a job's status report.
type JobView struct {
	ID          string  `json:"job"`
	Kind        string  `json:"kind"`
	Status      Status  `json:"status"`
	Error       string  `json:"error,omitempty"`
	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	DurationSec float64 `json:"duration_s,omitempty"`
}

// job is one asynchronous anonymization request being tracked by the
// store. The run goroutine owns result/err; everything else is guarded by
// mu.
type job struct {
	id     string
	seq    int // numeric submission order; IDs are for display, seq for eviction
	kind   string
	cancel context.CancelFunc

	mu        sync.Mutex
	status    Status
	err       string
	result    []byte // JSON payload, valid once status == StatusDone
	submitted time.Time
	started   time.Time
	finished  time.Time
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Kind:        j.kind,
		Status:      j.status,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		// A job cancelled while still queued finishes without starting.
		if !j.started.IsZero() {
			v.DurationSec = j.finished.Sub(j.started).Seconds()
		}
	}
	return v
}

func (j *job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusQueued {
		j.status = StatusRunning
		j.started = time.Now()
	}
}

// finish records the run outcome. A context error after cancellation maps
// to StatusCancelled so pollers can tell "stopped by request" from
// "failed".
func (j *job) finish(payload []byte, err error, cancelled bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.finished = time.Now()
	switch {
	case cancelled:
		j.status = StatusCancelled
		if err != nil {
			j.err = err.Error()
		}
	case err != nil:
		j.status = StatusFailed
		j.err = err.Error()
	default:
		j.status = StatusDone
		j.result = payload
	}
}

func (j *job) snapshot() (Status, []byte, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.err
}

// jobStore issues sequential job IDs and tracks jobs, evicting the oldest
// finished jobs (results included) once the population exceeds max — a
// long-lived server must not grow without bound.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	max  int
	jobs map[string]*job
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

// add registers a new job, atomically rejecting it (nil) when the number
// of non-terminal jobs has reached maxPending — the check happens under
// the store lock so concurrent submissions cannot overshoot the cap.
func (s *jobStore) add(kind string, cancel context.CancelFunc, maxPending int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if maxPending > 0 && s.pendingLocked() >= maxPending {
		return nil
	}
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		seq:       s.seq,
		kind:      kind,
		cancel:    cancel,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.evictLocked()
	return j
}

// evictLocked drops the oldest terminal jobs until the store fits max.
// Queued and running jobs are never evicted.
func (s *jobStore) evictLocked() {
	if s.max <= 0 || len(s.jobs) <= s.max {
		return
	}
	var terminal []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		done := j.status.Terminal()
		j.mu.Unlock()
		if done {
			terminal = append(terminal, j)
		}
	}
	// Oldest first by numeric submission order — IDs are zero-padded for
	// display and would misorder lexicographically past the padding width.
	sort.Slice(terminal, func(a, b int) bool { return terminal[a].seq < terminal[b].seq })
	for _, j := range terminal {
		if len(s.jobs) <= s.max {
			return
		}
		delete(s.jobs, j.id)
	}
}

// remove deletes a job record outright; it reports whether id existed.
func (s *jobStore) remove(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[id]; !ok {
		return false
	}
	delete(s.jobs, id)
	return true
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *jobStore) list() []JobView {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	out := make([]JobView, len(jobs))
	for i, j := range jobs {
		out[i] = j.view()
	}
	return out
}

// pendingLocked counts jobs that have not reached a terminal status; the
// caller holds s.mu.
func (s *jobStore) pendingLocked() int {
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.status.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func (s *jobStore) counts() map[Status]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Status]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		out[j.status]++
		j.mu.Unlock()
	}
	return out
}
