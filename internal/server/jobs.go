package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"secreta/internal/obs"
	"secreta/internal/store"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued Status = "queued"
	// StatusRunning is defined from the journal's constant: replaying a
	// "start" op moves the durable record to this exact string.
	StatusRunning   Status = store.StatusRunning
	StatusDone      Status = "done"
	StatusFailed    Status = "failed"
	StatusCancelled Status = "cancelled"
	// StatusTimedOut marks a job stopped by the server's or the request's
	// deadline — journaled like any other terminal state, and distinct
	// from StatusCancelled so "the operator's budget expired" is never
	// mistaken for "the client asked to stop".
	StatusTimedOut Status = "timed_out"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled || s == StatusTimedOut
}

// validListState reports whether s can appear in a GET /jobs state filter.
func validListState(s Status) bool {
	switch s {
	case StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled, StatusTimedOut:
		return true
	}
	return false
}

// JobView is the JSON shape of a job's status report.
type JobView struct {
	ID          string  `json:"job"`
	Kind        string  `json:"kind"`
	Status      Status  `json:"status"`
	Error       string  `json:"error,omitempty"`
	SubmittedAt string  `json:"submitted_at"`
	StartedAt   string  `json:"started_at,omitempty"`
	FinishedAt  string  `json:"finished_at,omitempty"`
	DurationSec float64 `json:"duration_s,omitempty"`
	// Recovered marks a job restored from the journal after a restart —
	// either rehydrated terminal state or a re-queued in-flight job.
	Recovered bool `json:"recovered,omitempty"`
	// Tenant is the owning tenant in multi-tenant mode (empty otherwise).
	// Listings are already scoped to the caller, so this is confirmation,
	// not disclosure.
	Tenant string `json:"tenant,omitempty"`
}

// job is one asynchronous anonymization request being tracked by the
// store. The run goroutine owns result/err; everything else is guarded by
// mu.
type job struct {
	id        string
	seq       int // numeric submission order; IDs are for display, seq for eviction
	kind      string
	cancel    context.CancelFunc
	js        *jobStore
	recovered bool
	// tenant owns the job in multi-tenant mode ("" single-tenant).
	// Immutable after creation; journaled so ownership survives restart.
	tenant string
	// trace records the job's lifecycle span tree. Set at submission (and
	// for re-queued recovered jobs); nil for terminal jobs rehydrated from
	// the journal, whose trace is served from the store's trace blobs.
	trace *obs.Trace

	mu        sync.Mutex
	status    Status
	err       string
	result    *jobResult // valid once status == StatusDone
	load      func() (*jobResult, error)
	submitted time.Time
	started   time.Time
	finished  time.Time
	// clientCancel marks a DELETE-initiated cancellation, so it is
	// journaled terminally even when it races process shutdown (a
	// shutdown-driven cancel is deliberately left un-finalized and
	// re-queued; an explicit client cancel must stay cancelled).
	clientCancel bool
}

// requestCancel marks the cancellation as client-initiated and fires it.
func (j *job) requestCancel() {
	j.mu.Lock()
	j.clientCancel = true
	j.mu.Unlock()
	j.cancel()
}

func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:          j.id,
		Kind:        j.kind,
		Status:      j.status,
		Error:       j.err,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		Recovered:   j.recovered,
		Tenant:      j.tenant,
	}
	if !j.started.IsZero() {
		v.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		v.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		// A job cancelled while still queued finishes without starting.
		if !j.started.IsZero() {
			v.DurationSec = j.finished.Sub(j.started).Seconds()
		}
	}
	return v
}

func (j *job) start() {
	j.mu.Lock()
	if j.status != StatusQueued {
		j.mu.Unlock()
		return
	}
	j.status = StatusRunning
	j.started = time.Now()
	j.mu.Unlock()
	j.js.journal(func(jl *store.Journal) error { return jl.Start(j.id) })
}

// finish records the run outcome. ctxErr is the job context's error at
// completion: deadline expiry maps to StatusTimedOut, any other context
// error to StatusCancelled, so pollers can tell "stopped by budget" from
// "stopped by request" from "failed". hasResult records that the payload
// was durably persisted before this transition became observable.
func (j *job) finish(payload *jobResult, err error, ctxErr error, hasResult bool) {
	j.mu.Lock()
	if j.status.Terminal() {
		j.mu.Unlock()
		return
	}
	j.finished = time.Now()
	switch {
	case err == nil && payload != nil:
		// A payload with no error is completed work, even if the context
		// expired in the instant between fn returning and this check — a
		// job that beat its deadline must not be reported timed_out.
		j.status = StatusDone
		j.result = payload
	case errors.Is(ctxErr, context.DeadlineExceeded):
		j.status = StatusTimedOut
		j.err = fmt.Sprintf("job exceeded its deadline: %v", ctxErr)
	case ctxErr != nil:
		j.status = StatusCancelled
		if err != nil {
			j.err = err.Error()
		}
	case err != nil:
		j.status = StatusFailed
		j.err = err.Error()
	default:
		j.status = StatusDone
		j.result = payload
	}
	status, errMsg, byClient := j.status, j.err, j.clientCancel
	j.mu.Unlock()
	// A cancellation caused by process shutdown is deliberately NOT
	// journaled: the durable record stays in-flight, so the next boot
	// re-queues the job — a graceful restart and a crash converge on the
	// same "interrupted work is re-run" outcome instead of racing the
	// journal's close to decide between "cancelled forever" and
	// "re-queued". Client cancellations (DELETE) journal normally, even
	// when they race shutdown — explicitly stopped work must stay
	// stopped. The trace follows the same rule: a re-queued job's next
	// run records a fresh trace, so nothing is persisted here.
	if status == StatusCancelled && !byClient && j.js.isShuttingDown() {
		j.trace.Finish()
		return
	}
	j.js.journal(func(jl *store.Journal) error {
		return jl.Finish(j.id, string(status), errMsg, hasResult)
	})
	// Close the trace with the terminal status and persist the final
	// snapshot beside the journal record, so GET /jobs/{id}/trace keeps
	// answering after a restart.
	if j.trace != nil {
		j.trace.Root().SetAttr("status", string(status))
		j.trace.Finish()
		j.js.persistTrace(j.id, j.trace)
	}
}

// snapshot returns the job's terminal view, lazily rehydrating a result
// that is still on disk after a restart (for a chunked anonymize result
// only the meta frame is loaded — the records stay on disk and stream per
// request). A load failure demotes the job to failed in memory — the
// status endpoints must agree with the result endpoint, not keep claiming
// done for a result that is gone. The durable record is left untouched:
// the next boot retries the load.
func (j *job) snapshot() (Status, *jobResult, string) {
	j.mu.Lock()
	if j.status != StatusDone || j.result != nil || j.load == nil {
		defer j.mu.Unlock()
		return j.status, j.result, j.err
	}
	load := j.load
	j.mu.Unlock()
	// The blob read happens off-lock so a slow disk cannot stall view()
	// (and with it every job listing). Concurrent snapshots may both
	// read the blob; the double read is benign and last-writer-wins on
	// identical bytes.
	payload, err := load()
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return j.status, j.result, j.err
	}
	if err != nil {
		j.status = StatusFailed
		j.err = fmt.Sprintf("result lost: %v", err)
		j.load = nil
		return j.status, nil, j.err
	}
	if j.result == nil {
		j.result = payload
	}
	return j.status, j.result, j.err
}

// jobStore issues sequential job IDs and tracks jobs, evicting the oldest
// finished jobs (results included) once the population exceeds max — a
// long-lived server must not grow without bound. With a journal attached,
// every transition is WAL-logged and evictions delete the durable record
// and result blob too.
type jobStore struct {
	mu   sync.Mutex
	seq  int
	max  int
	jobs map[string]*job

	jl      *store.Journal    // nil: memory-only
	results *store.BlobDir    // nil: memory-only
	chunks  *store.ChunkedDir // nil: memory-only
	traces  *store.BlobDir    // nil: traces are memory-only
	logger  *slog.Logger
	// shuttingDown reports whether the server's base context is done —
	// shutdown-driven cancellations are left un-finalized in the journal
	// so the next boot re-queues them (see job.finish).
	shuttingDown func() bool
	// onJournalError, when set, receives every failed journal append so
	// the server can classify it and latch degraded mode on a permanent
	// storage fault.
	onJournalError func(error)
}

// log returns the store's structured logger (the process default when
// none was attached — memory-only stores and tests).
func (s *jobStore) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// isShuttingDown is nil-safe for memory-only stores and tests.
func (s *jobStore) isShuttingDown() bool {
	return s.shuttingDown != nil && s.shuttingDown()
}

func newJobStore(max int) *jobStore {
	return &jobStore{max: max, jobs: make(map[string]*job)}
}

// attachStore wires the journal, result-blob and trace-blob directories
// in and aligns the ID sequence past everything the journal has seen, so
// recovered and new jobs never collide. Must be called before the store
// takes traffic.
func (s *jobStore) attachStore(jl *store.Journal, results *store.BlobDir, chunks *store.ChunkedDir, traces *store.BlobDir) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jl = jl
	s.results = results
	s.chunks = chunks
	s.traces = traces
	if seq := jl.Seq(); seq > s.seq {
		s.seq = seq
	}
}

// persistTrace serializes a finished job's trace snapshot into the trace
// blob dir. Failures degrade the trace to memory-only (lost on restart),
// never the job itself.
func (s *jobStore) persistTrace(id string, tr *obs.Trace) {
	if s.traces == nil || tr == nil {
		return
	}
	data, err := json.Marshal(tr.View())
	if err == nil {
		err = s.traces.Put(id, data)
	}
	if err != nil {
		s.log().Warn("persisting job trace failed", "job_id", id, "err", err)
	}
}

// journal runs fn against the attached journal. Journal failures are
// logged, not propagated: the in-memory state has already transitioned,
// and refusing service because the WAL hiccupped would turn a durability
// bug into an availability one. (The record is then simply absent on
// replay — the same outcome as crashing a moment earlier.)
func (s *jobStore) journal(fn func(*store.Journal) error) {
	if s.jl == nil {
		return
	}
	if err := fn(s.jl); err != nil {
		s.log().Error("journal append failed", "err", err)
		if s.onJournalError != nil {
			s.onJournalError(err)
		}
	}
}

// add registers a new job, atomically rejecting it when the number of
// non-terminal jobs has reached maxPending (reject == "server") or, in
// multi-tenant mode, when the owning tenant is at tenantPending
// (reject == "tenant") — both checks happen under the store lock so
// concurrent submissions cannot overshoot either cap. body and
// datasetRef are journaled, with the tenant, so a crash can re-queue the
// job with ownership intact.
func (s *jobStore) add(kind string, cancel context.CancelFunc, maxPending int, body []byte, datasetRef, tenant string, tenantPending int) (j *job, reject string) {
	s.mu.Lock()
	if maxPending > 0 && s.pendingLocked() >= maxPending {
		s.mu.Unlock()
		return nil, "server"
	}
	if tenant != "" && tenantPending > 0 && s.pendingTenantLocked(tenant) >= tenantPending {
		s.mu.Unlock()
		return nil, "tenant"
	}
	s.seq++
	j = &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		seq:       s.seq,
		kind:      kind,
		cancel:    cancel,
		js:        s,
		tenant:    tenant,
		status:    StatusQueued,
		submitted: time.Now(),
	}
	// The trace's root span opens at submission, so queue wait is visible
	// in the tree from the first snapshot.
	j.trace = obs.New(j.id)
	j.trace.Root().SetAttr("kind", kind)
	s.jobs[j.id] = j
	evicted := s.evictLocked()
	s.mu.Unlock()
	// The fsync'd appends happen outside the lock so job-API reads never
	// stall behind disk I/O. Per-job WAL ordering still holds: the Submit
	// record is durable before add returns, and the caller only starts
	// the job (Start/Finish records) after that.
	s.journal(func(jl *store.Journal) error {
		return jl.Submit(store.JobRecord{
			ID: j.id, Seq: j.seq, Kind: kind, Status: string(StatusQueued),
			DatasetRef: datasetRef, Body: body, SubmittedAt: j.submitted,
			Tenant: tenant,
		})
	})
	s.dropDurable(evicted)
	return j, ""
}

// restore re-inserts a job from its journal record during recovery: a
// terminal job keeps its status (and lazily loads its result through
// load); an in-flight one comes back as queued, to be re-run by the
// caller. Restore does not journal — the record already exists.
func (s *jobStore) restore(rec store.JobRecord, load func() (*jobResult, error), cancel context.CancelFunc) *job {
	status := Status(rec.Status)
	j := &job{
		id:        rec.ID,
		seq:       rec.Seq,
		kind:      rec.Kind,
		cancel:    cancel,
		js:        s,
		recovered: true,
		tenant:    rec.Tenant,
		status:    status,
		err:       rec.Error,
		load:      load,
		submitted: rec.SubmittedAt,
	}
	if status.Terminal() {
		// Terminal jobs keep their persisted trace snapshot (served from
		// the trace blob dir); no live trace is opened.
		j.started = rec.StartedAt
		j.finished = rec.FinishedAt
	} else {
		// A re-queued job records a fresh trace for its re-run.
		j.status = StatusQueued
		j.trace = obs.New(j.id)
		j.trace.Root().SetAttr("kind", rec.Kind)
		j.trace.Root().SetAttr("recovered", "true")
	}
	s.mu.Lock()
	if rec.Seq > s.seq {
		s.seq = rec.Seq
	}
	s.jobs[j.id] = j
	evicted := s.evictLocked()
	s.mu.Unlock()
	s.dropDurable(evicted)
	return j
}

// dropDurable erases journal records and persisted results. Callers
// invoke it outside s.mu — it fsyncs.
func (s *jobStore) dropDurable(ids []string) {
	for _, id := range ids {
		s.journal(func(jl *store.Journal) error { return jl.Delete(id) })
		if s.results != nil {
			if err := s.results.Delete(id); err != nil {
				s.log().Warn("deleting result blob failed", "job_id", id, "err", err)
			}
		}
		if s.chunks != nil {
			if err := s.chunks.Delete(id); err != nil {
				s.log().Warn("deleting result stream failed", "job_id", id, "err", err)
			}
		}
		if s.traces != nil {
			if err := s.traces.Delete(id); err != nil {
				s.log().Warn("deleting trace blob failed", "job_id", id, "err", err)
			}
		}
	}
}

// evictLocked drops the oldest terminal jobs until the store fits max and
// returns their IDs for durable cleanup (done by the caller, off-lock).
// Queued and running jobs are never evicted.
func (s *jobStore) evictLocked() []string {
	if s.max <= 0 || len(s.jobs) <= s.max {
		return nil
	}
	// Oldest first by numeric submission order — IDs are zero-padded for
	// display and would misorder lexicographically past the padding width.
	terminal := s.terminalOldestLocked()
	var evicted []string
	for _, j := range terminal {
		if len(s.jobs) <= s.max {
			break
		}
		delete(s.jobs, j.id)
		evicted = append(evicted, j.id)
	}
	return evicted
}

// remove deletes a job record outright; it reports whether id existed.
func (s *jobStore) remove(id string) bool {
	s.mu.Lock()
	if _, ok := s.jobs[id]; !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.jobs, id)
	s.mu.Unlock()
	s.dropDurable([]string{id})
	return true
}

func (s *jobStore) get(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// jobQuery filters and paginates a job listing.
type jobQuery struct {
	state    Status // "" matches every state
	afterSeq int    // only jobs submitted after this sequence number
	limit    int    // <= 0: unlimited
	// tenant scopes the listing to one tenant's jobs. Enforced before
	// pagination, so an `after=` cursor naming another tenant's job ID
	// cannot surface foreign jobs — the cursor is just a sequence
	// watermark and the tenant filter still applies to every row.
	tenant string
	// tenantScoped turns the tenant filter on even for tenant == "" (it
	// cannot be inferred from tenant alone: single-tenant mode matches
	// everything, multi-tenant mode must match nothing for an empty owner).
	tenantScoped bool
}

// list returns the matching jobs in submission order (paginated by the
// query) and the total number of matches before pagination.
func (s *jobStore) list(q jobQuery) (views []JobView, total int) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].seq < jobs[b].seq })
	views = []JobView{}
	for _, j := range jobs {
		if q.tenantScoped && j.tenant != q.tenant {
			continue
		}
		v := j.view()
		if q.state != "" && v.Status != q.state {
			continue
		}
		total++
		if j.seq <= q.afterSeq {
			continue
		}
		if q.limit > 0 && len(views) >= q.limit {
			continue
		}
		views = append(views, v)
	}
	return views, total
}

// parseJobSeq derives a job's sequence number from its ID ("j-%06d").
// The `after` list cursor uses this instead of a table lookup so a
// cursor job that has since been evicted or deleted keeps working —
// tail-polling must not wedge because the poller fell behind retention.
func parseJobSeq(id string) (int, error) {
	num, ok := strings.CutPrefix(id, "j-")
	if !ok {
		return 0, fmt.Errorf("malformed job ID %q", id)
	}
	seq, err := strconv.Atoi(num)
	if err != nil || seq < 0 {
		return 0, fmt.Errorf("malformed job ID %q", id)
	}
	return seq, nil
}

// pendingLocked counts jobs that have not reached a terminal status; the
// caller holds s.mu.
func (s *jobStore) pendingLocked() int {
	n := 0
	for _, j := range s.jobs {
		j.mu.Lock()
		if !j.status.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

// pendingTenantLocked counts one tenant's non-terminal jobs; the caller
// holds s.mu.
func (s *jobStore) pendingTenantLocked(tenant string) int {
	n := 0
	for _, j := range s.jobs {
		if j.tenant != tenant {
			continue
		}
		j.mu.Lock()
		if !j.status.Terminal() {
			n++
		}
		j.mu.Unlock()
	}
	return n
}

func (s *jobStore) counts() map[Status]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[Status]int)
	for _, j := range s.jobs {
		j.mu.Lock()
		out[j.status]++
		j.mu.Unlock()
	}
	return out
}

// countsByTenant reports per-tenant job-state counts — the figure behind
// the tenant-labelled job gauges on /metrics and the tenants block of
// /stats. Jobs with no owner (single-tenant era, or a tenant removed
// from the tenants file) land under "".
func (s *jobStore) countsByTenant() map[string]map[Status]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]map[Status]int)
	for _, j := range s.jobs {
		m := out[j.tenant]
		if m == nil {
			m = make(map[Status]int)
			out[j.tenant] = m
		}
		j.mu.Lock()
		m[j.status]++
		j.mu.Unlock()
	}
	return out
}

// terminalOldestLocked lists terminal jobs oldest-first (by submission
// sequence); the caller holds s.mu. The GC sweeper walks this order when
// -data-max-bytes forces result eviction.
func (s *jobStore) terminalOldestLocked() []*job {
	var terminal []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		done := j.status.Terminal()
		j.mu.Unlock()
		if done {
			terminal = append(terminal, j)
		}
	}
	sort.Slice(terminal, func(a, b int) bool { return terminal[a].seq < terminal[b].seq })
	return terminal
}

// evictOldestTerminal removes up to n of the oldest terminal jobs
// (journal record, result and trace blobs included) and returns their
// IDs. Queued and running jobs are never touched — the GC lever for
// reclaiming result bytes without risking in-flight state.
func (s *jobStore) evictOldestTerminal(n int) []string {
	if n <= 0 {
		return nil
	}
	s.mu.Lock()
	terminal := s.terminalOldestLocked()
	if len(terminal) > n {
		terminal = terminal[:n]
	}
	ids := make([]string, 0, len(terminal))
	for _, j := range terminal {
		delete(s.jobs, j.id)
		ids = append(ids, j.id)
	}
	s.mu.Unlock()
	s.dropDurable(ids)
	return ids
}
