package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseExposition validates Prometheus text-format 0.0.4 structure and
// returns every sample keyed by its full series name (`name{labels}`).
// It enforces: HELP/TYPE line grammar, TYPE declared before a family's
// first sample, parseable float values, and no duplicate series.
func parseExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	types := map[string]string{}
	samples := map[string]float64{}
	for ln, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 4 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				t.Fatalf("line %d: malformed comment %q", ln+1, line)
			}
			if fields[1] == "TYPE" {
				switch fields[3] {
				case "counter", "gauge", "summary", "histogram", "untyped":
				default:
					t.Fatalf("line %d: unknown metric type %q", ln+1, fields[3])
				}
				types[fields[2]] = fields[3]
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: sample without value %q", ln+1, line)
		}
		series, val := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("line %d: unparseable value %q: %v", ln+1, val, err)
		}
		name := series
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated label set %q", ln+1, series)
			}
			name = name[:i]
		}
		family := name
		if _, ok := types[family]; !ok {
			family = strings.TrimSuffix(strings.TrimSuffix(family, "_sum"), "_count")
		}
		typ, ok := types[family]
		if !ok {
			t.Fatalf("line %d: sample %q has no preceding # TYPE", ln+1, series)
		}
		if (strings.HasSuffix(name, "_sum") || strings.HasSuffix(name, "_count")) &&
			name != family && typ != "summary" && typ != "histogram" {
			t.Fatalf("line %d: %q suffix on non-summary family %q", ln+1, name, family)
		}
		if _, dup := samples[series]; dup {
			t.Fatalf("line %d: duplicate series %q", ln+1, series)
		}
		v, _ := strconv.ParseFloat(val, 64)
		samples[series] = v
	}
	return samples
}

func scrape(t *testing.T, base string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != promContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, promContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

// TestMetricsEndToEnd runs a job lifecycle and asserts the scrape is
// structurally valid and numerically agrees with GET /stats.
func TestMetricsEndToEnd(t *testing.T) {
	ts := newTestServer(t)

	// A fresh server: ready, zero-filled job states for every status.
	m := scrape(t, ts.URL)
	if m["secreta_ready"] != 1 {
		t.Fatalf("secreta_ready = %v, want 1", m["secreta_ready"])
	}
	for _, st := range jobStates {
		series := `secreta_jobs{state="` + string(st) + `"}`
		if v, ok := m[series]; !ok || v != 0 {
			t.Fatalf("%s = %v (present=%v), want 0 on a fresh server", series, v, ok)
		}
	}

	// Run one job to completion and stream its result so the job, phase,
	// cache, and streaming counters all move.
	dsJSON, _ := patientsJSON(t)
	resp, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
	sresp, err := http.Get(ts.URL + "/jobs/" + id + "/result/stream")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, sresp.Body)
	sresp.Body.Close()

	m = scrape(t, ts.URL)
	_, stats := getJSON(t, ts.URL+"/stats")

	jobs := stats["jobs"].(map[string]any)
	for _, st := range jobStates {
		want := 0.0
		if n, ok := jobs[string(st)]; ok {
			want = n.(float64)
		}
		series := `secreta_jobs{state="` + string(st) + `"}`
		if m[series] != want {
			t.Errorf("%s = %v, /stats says %v", series, m[series], want)
		}
	}
	if m[`secreta_jobs{state="done"}`] < 1 {
		t.Errorf("done gauge = %v, want >= 1", m[`secreta_jobs{state="done"}`])
	}

	cache := stats["cache"].(map[string]any)
	if m["secreta_cache_hits_total"] != cache["hits"].(float64) {
		t.Errorf("cache hits: metrics %v vs stats %v", m["secreta_cache_hits_total"], cache["hits"])
	}
	if m["secreta_cache_misses_total"] != cache["misses"].(float64) {
		t.Errorf("cache misses: metrics %v vs stats %v", m["secreta_cache_misses_total"], cache["misses"])
	}

	streaming := stats["streaming"].(map[string]any)
	if m["secreta_streaming_served_total"] != streaming["served"].(float64) {
		t.Errorf("streams served: metrics %v vs stats %v",
			m["secreta_streaming_served_total"], streaming["served"])
	}
	if m["secreta_streaming_served_total"] < 1 {
		t.Errorf("streams served = %v, want >= 1 after streaming a result",
			m["secreta_streaming_served_total"])
	}

	// The run recorded phase timings: every phase must expose the full
	// summary (two quantiles, _sum, _count) and agree with /stats counts.
	phases := stats["phases"].(map[string]any)
	if len(phases) == 0 {
		t.Fatal("/stats shows no phases after a completed job")
	}
	for name, v := range phases {
		pv := v.(map[string]any)
		base := `secreta_phase_latency_seconds`
		if _, ok := m[base+`{phase="`+name+`",quantile="0.5"}`]; !ok {
			t.Errorf("phase %s: missing 0.5 quantile", name)
		}
		if _, ok := m[base+`{phase="`+name+`",quantile="0.95"}`]; !ok {
			t.Errorf("phase %s: missing 0.95 quantile", name)
		}
		if got := m[base+`_count{phase="`+name+`"}`]; got != pv["count"].(float64) {
			t.Errorf("phase %s count: metrics %v vs stats %v", name, got, pv["count"])
		}
		if sum := m[base+`_sum{phase="`+name+`"}`]; sum <= 0 {
			t.Errorf("phase %s sum = %v, want > 0", name, sum)
		}
	}

	if m["secreta_job_slots"] <= 0 {
		t.Errorf("secreta_job_slots = %v, want > 0", m["secreta_job_slots"])
	}
}

// TestMetricsReadinessGate: while replay is pending the scrape answers
// 503 like every data route — a scraper must see the target as down, not
// as a healthy server with zero jobs.
func TestMetricsReadinessGate(t *testing.T) {
	s := mustNew(t, context.Background(), Options{Workers: 1})
	s.ready.Store(false)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("GET /metrics while not ready: status %d, want 503", rec.Code)
	}
}
