package server

import (
	"fmt"
	"math/rand"
	"testing"
)

// Deterministic property tests for the smooth weighted round-robin
// picker behind the tenant dispatcher. Everything is seeded, so a failure
// reproduces exactly; the seeds are fixed rather than time-derived on
// purpose.

// allEligible accepts every id.
func allEligible(string) bool { return true }

// TestWRRProportionalityAllEligible pins the picker's core guarantee:
// over any window where every entry stays eligible, each entry is picked
// in proportion to its weight — exactly at rotation boundaries (one
// rotation = total-weight picks) and within one slot at every prefix.
func TestWRRProportionalityAllEligible(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		n := 2 + rng.Intn(6)
		weights := make(map[string]int, n)
		total := 0
		for i := 0; i < n; i++ {
			w := 1 + rng.Intn(9)
			weights[fmt.Sprintf("t%02d", i)] = w
			total += w
		}
		p := newWRRPicker(weights)
		const rotations = 20
		counts := make(map[string]int, n)
		for pick := 1; pick <= rotations*total; pick++ {
			id := p.pick(allEligible)
			if id == "" {
				t.Fatalf("trial %d: pick %d returned no id with every entry eligible", trial, pick)
			}
			counts[id]++
			// Within-one-slot at every prefix: no tenant runs ahead of (or
			// behind) its proportional share by more than one pick.
			for tid, w := range weights {
				ideal := float64(pick) * float64(w) / float64(total)
				if diff := float64(counts[tid]) - ideal; diff > 1.000001 || diff < -1.000001 {
					t.Fatalf("trial %d: after %d picks tenant %s has %d picks, ideal %.2f (off by %.2f)",
						trial, pick, tid, counts[tid], ideal, diff)
				}
			}
			// Exact at rotation boundaries.
			if pick%total == 0 {
				rot := pick / total
				for tid, w := range weights {
					if counts[tid] != rot*w {
						t.Fatalf("trial %d: after %d rotations tenant %s (weight %d) has %d picks, want %d",
							trial, rot, tid, w, counts[tid], rot*w)
					}
				}
			}
		}
	}
}

// TestWRRDeterministicTieBreak pins that equal-weight entries rotate in
// sorted-id order, and that the sequence is a pure function of the
// weights (two pickers agree pick for pick).
func TestWRRDeterministicTieBreak(t *testing.T) {
	weights := map[string]int{"c": 1, "a": 1, "b": 1}
	p1, p2 := newWRRPicker(weights), newWRRPicker(weights)
	want := []string{"a", "b", "c", "a", "b", "c", "a", "b", "c"}
	for i, w := range want {
		g1, g2 := p1.pick(allEligible), p2.pick(allEligible)
		if g1 != w || g2 != w {
			t.Fatalf("pick %d: got %q/%q, want %q (sorted-id rotation)", i, g1, g2, w)
		}
	}
}

// TestWRRRandomEligibilityNeverSkipsOrStarves drives the picker with
// seeded random eligibility sets and pins three safety properties: the
// pick is always a member of the eligible set, an empty set yields "",
// and no entry that stays continuously eligible goes unpicked for more
// than two full rotations' worth of picks.
func TestWRRRandomEligibilityNeverSkipsOrStarves(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 5
	weights := make(map[string]int, n)
	total := 0
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("t%d", i)
		weights[ids[i]] = 1 + rng.Intn(4)
		total += weights[ids[i]]
	}
	p := newWRRPicker(weights)
	// unpickedWhileEligible counts consecutive steps an id was offered as
	// eligible but not chosen; any ineligible step resets it.
	unpickedWhileEligible := make(map[string]int, n)
	for step := 0; step < 5000; step++ {
		eligible := make(map[string]bool, n)
		for _, id := range ids {
			if rng.Intn(3) > 0 { // eligible ~2/3 of the time
				eligible[id] = true
			}
		}
		got := p.pick(func(id string) bool { return eligible[id] })
		if len(eligible) == 0 {
			if got != "" {
				t.Fatalf("step %d: picked %q from an empty eligible set", step, got)
			}
			continue
		}
		if !eligible[got] {
			t.Fatalf("step %d: picked %q which was not eligible (%v)", step, got, eligible)
		}
		for _, id := range ids {
			switch {
			case id == got:
				unpickedWhileEligible[id] = 0
			case eligible[id]:
				unpickedWhileEligible[id]++
				if unpickedWhileEligible[id] > 2*total {
					t.Fatalf("step %d: tenant %s eligible for %d consecutive picks without being chosen (total weight %d)",
						step, id, unpickedWhileEligible[id], total)
				}
			default:
				unpickedWhileEligible[id] = 0
			}
		}
	}
}

// TestWRRAddMidStream pins the dispatcher's recovered-tenant path: an id
// added after picks have happened (a journaled job whose tenant left the
// tenants file) joins the rotation at its weight and is not starved,
// while re-adding a known id is a no-op.
func TestWRRAddMidStream(t *testing.T) {
	p := newWRRPicker(map[string]int{"a": 2, "b": 1})
	for i := 0; i < 7; i++ {
		p.pick(allEligible)
	}
	p.add("a", 99) // known: must keep its configured weight
	p.add("z", 1)  // weight < 1 is lifted to 1 elsewhere; 1 stays 1
	counts := map[string]int{}
	const rotations = 12 // total weight is now 2+1+1 = 4
	for i := 0; i < rotations*4; i++ {
		counts[p.pick(allEligible)]++
	}
	// Mid-stream accumulator offsets can shift counts by at most one slot
	// from the exact per-rotation share.
	for id, w := range map[string]int{"a": 2, "b": 1, "z": 1} {
		want := rotations * w
		if counts[id] < want-1 || counts[id] > want+1 {
			t.Fatalf("tenant %s (weight %d): %d picks over %d rotations, want %d±1 (counts=%v)",
				id, w, counts[id], rotations, want, counts)
		}
	}
}
