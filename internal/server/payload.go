package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/store"
)

// Result payloads. Series jobs (evaluate/compare) keep a small, fully
// materialized JSON document. Anonymize jobs — whose payload is dominated
// by the anonymized records — are held as a small meta document plus a
// replayable record stream (the interned columnar form in RAM, or a
// framed chunk file on disk), and both the buffered and the NDJSON
// response are assembled from it incrementally: serving an N-record
// result never builds an O(N) buffer.

// chunkTarget is the record-chunk granularity: the size of the frames the
// server persists and of the write/flush batches it streams to clients.
const chunkTarget = 64 << 10

// anonMeta is the constant-size part of an anonymize result — everything
// except the records. Serialized compact, it is both the NDJSON stream's
// header line and frame 0 of the chunked result file.
type anonMeta struct {
	Attributes  []export.StreamAttr `json:"attributes"`
	Transaction string              `json:"transaction,omitempty"`
	Records     int                 `json:"records"`
	CacheHit    bool                `json:"cache_hit"`
	// Results is the compact `secreta evaluate -results`-style array, the
	// same bytes the buffered document carries under "results".
	Results json.RawMessage `json:"results"`
}

// resultRecords is a replayable source of compact record-JSON lines — the
// one abstraction both response shapes iterate, regardless of whether the
// records live in RAM or on disk. stream calls emit once per record, in
// record order, with the line excluding its trailing newline; emit's
// error aborts the scan and is returned.
type resultRecords interface {
	stream(emit func(line []byte) error) error
}

// memRecords streams from an in-memory record source — for retained
// terminal jobs this is the interned columnar form of the anonymized
// dataset, decoded one record at a time (never materialized whole).
type memRecords struct {
	src dataset.RecordSource
}

func (m memRecords) stream(emit func(line []byte) error) error {
	var line []byte
	var err error
	m.src.ScanRecords(func(i int, rec dataset.Record) bool {
		line, err = export.AppendRecordJSON(line[:0], rec)
		if err != nil {
			return false
		}
		err = emit(line)
		return err == nil
	})
	return err
}

// diskRecords streams from a framed chunk file, one frame in memory at a
// time — the serving path for durable and rehydrated jobs.
type diskRecords struct {
	chunks *store.ChunkedDir
	id     string
}

func (d diskRecords) stream(emit func(line []byte) error) error {
	r, err := d.chunks.Open(d.id)
	if err != nil {
		return err
	}
	defer r.Close()
	if _, err := r.Next(); err != nil { // frame 0: meta, already held
		return fmt.Errorf("reading result stream meta: %w", err)
	}
	for {
		frame, err := r.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		for len(frame) > 0 {
			nl := bytes.IndexByte(frame, '\n')
			if nl < 0 {
				return fmt.Errorf("result stream frame has an unterminated record line")
			}
			if err := emit(frame[:nl]); err != nil {
				return err
			}
			frame = frame[nl+1:]
		}
	}
}

// jobResult is what a finished job retains and serves. Exactly one shape
// is populated: full for series jobs, meta+recs for anonymize jobs.
type jobResult struct {
	full []byte
	meta *anonMeta
	recs resultRecords
}

// jobOutcome is what a job's runnable hands back on success; finishJob
// turns it into the retained jobResult (persisting as a side effect).
type jobOutcome struct {
	payload []byte    // complete JSON document (series jobs)
	meta    *anonMeta // anonymize jobs
	records dataset.RecordSource
}

// ---- payload builders (series jobs keep the legacy buffered form) ----

// resultsPayload wraps export.ResultsJSON: {"results": [...]}, byte-for-
// byte the same result objects `secreta evaluate -results` writes.
func resultsPayload(results []*engine.Result) (*jobOutcome, error) {
	var buf bytes.Buffer
	if err := export.ResultsJSON(&buf, results); err != nil {
		return nil, err
	}
	p, err := wrap("results", buf.Bytes())
	if err != nil {
		return nil, err
	}
	return &jobOutcome{payload: p}, nil
}

func seriesPayload(series []*experiment.Series) (*jobOutcome, error) {
	var buf bytes.Buffer
	if err := export.SeriesJSON(&buf, series); err != nil {
		return nil, err
	}
	p, err := wrap("series", buf.Bytes())
	if err != nil {
		return nil, err
	}
	return &jobOutcome{payload: p}, nil
}

// wrap assembles {"key": <raw>, ...} from alternating key, raw-JSON pairs.
func wrap(kv ...any) ([]byte, error) {
	out := make(map[string]json.RawMessage, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		out[kv[i].(string)] = json.RawMessage(bytes.TrimSpace(kv[i+1].([]byte)))
	}
	return json.MarshalIndent(out, "", "  ")
}

// anonymizeOutcome builds the streaming-ready outcome of an anonymize
// run: the constant-size meta plus the replayable record source the
// engine result carries. cacheHit flags cache-served results so their
// runtime_s is not read as a fresh measurement.
func anonymizeOutcome(res *engine.Result, cacheHit bool) (*jobOutcome, error) {
	var buf bytes.Buffer
	if err := export.ResultsJSON(&buf, []*engine.Result{res}); err != nil {
		return nil, err
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, buf.Bytes()); err != nil {
		return nil, err
	}
	src := res.Records
	if src == nil {
		return nil, fmt.Errorf("anonymize result carries no records")
	}
	hdr := export.HeaderFor(src)
	return &jobOutcome{
		meta: &anonMeta{
			Attributes:  hdr.Attributes,
			Transaction: hdr.Transaction,
			Records:     hdr.Records,
			CacheHit:    cacheHit,
			Results:     compact.Bytes(),
		},
		records: src,
	}, nil
}

// ---- buffered document assembly ----

// writeBufferedAnonymize streams the buffered-path JSON document —
// {"anonymized": {...}, "cache_hit": ..., "results": [...]} — in the
// exact bytes the legacy fully-materialized json.MarshalIndent
// construction produced (pinned by TestBufferedDocMatchesLegacyBytes),
// while holding only one record in memory at a time.
func writeBufferedAnonymize(w io.Writer, meta *anonMeta, recs resultRecords) error {
	bw := bufio.NewWriterSize(w, chunkTarget)
	bw.WriteString("{\n  \"anonymized\": {\n    \"attributes\": ")
	attrs, err := json.Marshal(meta.Attributes)
	if err != nil {
		return err
	}
	if err := indentInto(bw, attrs, "    "); err != nil {
		return err
	}
	if meta.Transaction != "" {
		tn, err := json.Marshal(meta.Transaction)
		if err != nil {
			return err
		}
		bw.WriteString(",\n    \"transaction\": ")
		bw.Write(tn)
	}
	bw.WriteString(",\n    \"records\": ")
	if meta.Records == 0 {
		// The legacy document marshaled a nil records slice as null;
		// byte-identity wins over prettier JSON here.
		bw.WriteString("null")
	} else {
		bw.WriteByte('[')
		first := true
		err = recs.stream(func(line []byte) error {
			if !first {
				bw.WriteByte(',')
			}
			first = false
			bw.WriteString("\n      ")
			return indentInto(bw, line, "      ")
		})
		if err != nil {
			return err
		}
		bw.WriteString("\n    ]")
	}
	bw.WriteString("\n  },\n  \"cache_hit\": ")
	bw.WriteString(strconv.FormatBool(meta.CacheHit))
	bw.WriteString(",\n  \"results\": ")
	if err := indentInto(bw, meta.Results, "  "); err != nil {
		return err
	}
	bw.WriteString("\n}")
	return bw.Flush()
}

// indentInto re-indents a compact JSON value for embedding at the line
// prefix the document has reached, mirroring what json.MarshalIndent did
// to the legacy document's RawMessage fields.
func indentInto(w *bufio.Writer, compact []byte, prefix string) error {
	var buf bytes.Buffer
	if err := json.Indent(&buf, compact, prefix, "  "); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}
