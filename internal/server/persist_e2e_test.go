package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"secreta/internal/store"
)

// durableServer boots a Server over dir's store and returns the test
// server plus a shutdown func that simulates process exit (cancel jobs,
// close HTTP, close store).
func durableServer(t *testing.T, dir string, opts Options) (*httptest.Server, func()) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Store = st
	ctx, cancel := context.WithCancel(context.Background())
	srv := mustNew(t, ctx, opts)
	ts := httptest.NewServer(srv.Handler())
	waitReady(t, ts.URL)
	var stopped bool
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		ts.Close()
		if err := st.Close(); err != nil {
			t.Errorf("closing store: %v", err)
		}
	}
	t.Cleanup(stop)
	return ts, stop
}

// waitReady polls /healthz until the readiness gate opens.
func waitReady(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getJSON(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz: %d", code)
		}
		if body["ready"] == true {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never became ready")
}

func getRaw(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestRestartRoundTrip is the acceptance e2e: upload + completed job +
// process restart with the same data dir; the dataset and the result are
// served from disk without recomputation, and an identical re-submission
// is a cache hit.
func TestRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	ts, stop := durableServer(t, dir, Options{Workers: 2})
	raw, _ := patientsJSON(t)

	code, body := uploadDataset(t, ts.URL, raw)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	ref := body["dataset_ref"].(string)
	cfg := map[string]any{"algo": "cluster", "k": 4}
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": ref, "config": cfg})
	jobID := sub["job"].(string)
	if st := pollDone(t, ts.URL, jobID); st != StatusDone {
		t.Fatalf("job ended %s", st)
	}
	code, before := getRaw(t, ts.URL+"/jobs/"+jobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result before restart: %d", code)
	}

	stop() // SIGTERM: drain, final snapshot, close

	ts2, _ := durableServer(t, dir, Options{Workers: 2})

	// The dataset index came back — on disk, not decoded into RAM.
	code, info := getJSON(t, ts2.URL+"/datasets/"+ref)
	if code != http.StatusOK {
		t.Fatalf("dataset after restart: %d %v", code, info)
	}
	if info["resident"] != false {
		t.Fatalf("dataset should be disk-only after restart: %v", info)
	}

	// The finished job came back with its result, byte-identical.
	code, view := getJSON(t, ts2.URL+"/jobs/"+jobID)
	if code != http.StatusOK || view["status"] != string(StatusDone) {
		t.Fatalf("job after restart: %d %v", code, view)
	}
	if view["recovered"] != true {
		t.Fatalf("restored job not flagged recovered: %v", view)
	}
	code, after := getRaw(t, ts2.URL+"/jobs/"+jobID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result after restart: %d", code)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("result changed across restart")
	}

	// Same submission again: served from the persisted result cache.
	_, sub = postJSON(t, ts2.URL+"/anonymize", map[string]any{"dataset_ref": ref, "config": cfg})
	again := sub["job"].(string)
	if st := pollDone(t, ts2.URL, again); st != StatusDone {
		t.Fatalf("re-submitted job ended %s", st)
	}
	code, res := getJSON(t, ts2.URL+"/jobs/"+again+"/result")
	if code != http.StatusOK || res["cache_hit"] != true {
		t.Fatalf("re-submission not a cache hit: %d %v", code, res)
	}

	// Store metrics are live on /stats.
	_, stats := getJSON(t, ts2.URL+"/stats")
	st, ok := stats["store"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing store block: %v", stats)
	}
	if st["datasets"].(map[string]any)["count"].(float64) != 1 {
		t.Fatalf("store stats: %v", st)
	}
	rec, ok := stats["recovery"].(map[string]any)
	if !ok || rec["done"] != true || rec["restored_jobs"].(float64) < 1 {
		t.Fatalf("recovery stats: %v", stats["recovery"])
	}
	if cstats := stats["cache"].(map[string]any); cstats["disk_hits"].(float64) != 1 {
		t.Fatalf("cache stats after disk hit: %v", cstats)
	}
}

// TestRecoveryRequeuesInflight crafts the journal a crash leaves behind —
// a submitted+started job with no terminal record — and expects the next
// boot to run it to completion, re-pinning its dataset from disk.
func TestRecoveryRequeuesInflight(t *testing.T) {
	dir := t.TempDir()
	_, ds := patientsJSON(t)
	ref := ds.Fingerprint()

	// Simulate the dead process's store: dataset saved, job journaled as
	// running, then the process "dies" without a finish record (Journal
	// is closed via its file to skip the clean-shutdown snapshot — the
	// state on disk is identical either way, this just mirrors a crash).
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Datasets.Save(ref, ds); err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "cluster", "k": 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Submit(store.JobRecord{
		ID: "j-000041", Seq: 41, Kind: "anonymize", Status: string(StatusQueued),
		DatasetRef: ref, Body: body, SubmittedAt: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Start("j-000041"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ts, _ := durableServer(t, dir, Options{Workers: 2})
	code, view := getJSON(t, ts.URL+"/jobs/j-000041")
	if code != http.StatusOK {
		t.Fatalf("requeued job missing: %d %v", code, view)
	}
	if view["recovered"] != true {
		t.Fatalf("requeued job not flagged recovered: %v", view)
	}
	if st := pollDone(t, ts.URL, "j-000041"); st != StatusDone {
		t.Fatalf("requeued job ended %s", st)
	}
	code, res := getJSON(t, ts.URL+"/jobs/j-000041/result")
	if code != http.StatusOK || res["cache_hit"] == nil {
		t.Fatalf("requeued job result: %d %v", code, res)
	}
	// New submissions number past the recovered job.
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": ref, "config": map[string]any{"algo": "cluster", "k": 2}})
	if sub["job"].(string) <= "j-000041" {
		t.Fatalf("new job %s collides with recovered sequence", sub["job"])
	}
}

// TestRecoveryFailsRequeueWhenDatasetGone: an in-flight job whose dataset
// blob vanished must come back failed — visible, not silently dropped.
func TestRecoveryFailsRequeueWhenDatasetGone(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := json.Marshal(map[string]any{
		"dataset_ref": "deadbeef",
		"config":      map[string]any{"algo": "cluster", "k": 4},
	})
	if err := st.Journal.Submit(store.JobRecord{
		ID: "j-000007", Seq: 7, Kind: "anonymize", Status: string(StatusQueued),
		DatasetRef: "deadbeef", Body: body, SubmittedAt: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ts, _ := durableServer(t, dir, Options{})
	code, view := getJSON(t, ts.URL+"/jobs/j-000007")
	if code != http.StatusOK || view["status"] != string(StatusFailed) {
		t.Fatalf("orphaned job: %d %v", code, view)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if rec := stats["recovery"].(map[string]any); rec["failed_requeues"].(float64) != 1 {
		t.Fatalf("recovery stats: %v", rec)
	}
}

// TestServerBootsFromTornWAL appends garbage to the WAL tail and expects
// the server to boot with everything up to the last valid record — the
// acceptance criterion that a torn final record recovers to the last
// complete state instead of failing to boot.
func TestServerBootsFromTornWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Submit(store.JobRecord{
		ID: "j-000001", Seq: 1, Kind: "evaluate", Status: string(StatusQueued), SubmittedAt: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Finish("j-000001", string(StatusFailed), "whatever", false); err != nil {
		t.Fatal(err)
	}
	// Crash-close, then tear the tail mid-record.
	walPath := filepath.Join(dir, "journal", "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x40, 0x00, 0x00, 0x00, 0x12, 0x34}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	ts, _ := durableServer(t, dir, Options{})
	code, view := getJSON(t, ts.URL+"/jobs/j-000001")
	if code != http.StatusOK || view["status"] != string(StatusFailed) {
		t.Fatalf("job from repaired WAL: %d %v", code, view)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	replay := stats["store"].(map[string]any)["journal"].(map[string]any)["replay"].(map[string]any)
	if replay["torn_tail"] != true {
		t.Fatalf("torn tail not reported: %v", replay)
	}
}

// TestJobTimeout pins the timed_out lifecycle: a compare sweep with a
// 1ms budget cannot finish and must land in StatusTimedOut (422 on the
// result endpoint), distinct from cancelled.
func TestJobTimeout(t *testing.T) {
	ts := newTestServer(t)
	raw, _ := patientsJSON(t)
	_, sub := postJSON(t, ts.URL+"/compare", map[string]any{
		"dataset": json.RawMessage(raw),
		"configs": []map[string]any{
			{"algo": "cluster", "k": 2}, {"algo": "topdown", "k": 2},
		},
		"sweep":      map[string]any{"param": "k", "start": 2, "end": 20, "step": 1},
		"timeout_ms": 1,
	})
	id, ok := sub["job"].(string)
	if !ok {
		t.Fatalf("submit: %v", sub)
	}
	if st := pollDone(t, ts.URL, id); st != StatusTimedOut {
		t.Fatalf("job ended %s, want %s", st, StatusTimedOut)
	}
	code, res := getJSON(t, ts.URL+"/jobs/"+id+"/result")
	if code != http.StatusUnprocessableEntity || res["status"] != string(StatusTimedOut) {
		t.Fatalf("result of timed-out job: %d %v", code, res)
	}
}

// TestServerTimeoutCapsRequestTimeout: the operator's -job-timeout is a
// ceiling the request cannot exceed.
func TestServerTimeoutCapsRequestTimeout(t *testing.T) {
	srv := mustNew(t, context.Background(), Options{JobTimeout: 50 * time.Millisecond})
	if got := srv.effectiveTimeout(0); got != 50*time.Millisecond {
		t.Fatalf("default: %v", got)
	}
	if got := srv.effectiveTimeout(10); got != 10*time.Millisecond {
		t.Fatalf("tighter request: %v", got)
	}
	if got := srv.effectiveTimeout(5000); got != 50*time.Millisecond {
		t.Fatalf("looser request not capped: %v", got)
	}
	open := mustNew(t, context.Background(), Options{})
	if got := open.effectiveTimeout(25); got != 25*time.Millisecond {
		t.Fatalf("no server default: %v", got)
	}
	if got := open.effectiveTimeout(0); got != 0 {
		t.Fatalf("no timeouts anywhere: %v", got)
	}
}

// TestJobListFilterAndPagination covers the GET /jobs satellite: state=,
// limit= and after= keep a long job table pollable.
func TestJobListFilterAndPagination(t *testing.T) {
	ts := newTestServer(t)
	raw, _ := patientsJSON(t)
	var ids []string
	for i := 0; i < 3; i++ {
		_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
			"dataset": json.RawMessage(raw),
			"config":  map[string]any{"algo": "cluster", "k": 2 + i},
		})
		id := sub["job"].(string)
		ids = append(ids, id)
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("job %d ended %s", i, st)
		}
	}

	code, list := getJSON(t, ts.URL+"/jobs?state=done")
	if code != http.StatusOK || list["total"].(float64) != 3 {
		t.Fatalf("state=done: %d %v", code, list)
	}
	code, list = getJSON(t, ts.URL+"/jobs?state=failed")
	if code != http.StatusOK || list["total"].(float64) != 0 || len(list["jobs"].([]any)) != 0 {
		t.Fatalf("state=failed: %d %v", code, list)
	}
	code, list = getJSON(t, ts.URL+"/jobs?limit=2")
	if code != http.StatusOK || len(list["jobs"].([]any)) != 2 || list["total"].(float64) != 3 {
		t.Fatalf("limit=2: %d %v", code, list)
	}
	first := list["jobs"].([]any)[0].(map[string]any)["job"].(string)
	if first != ids[0] {
		t.Fatalf("pagination order: first=%s want %s", first, ids[0])
	}
	code, list = getJSON(t, ts.URL+"/jobs?after="+ids[1])
	if code != http.StatusOK {
		t.Fatalf("after: %d", code)
	}
	jobs := list["jobs"].([]any)
	if len(jobs) != 1 || jobs[0].(map[string]any)["job"] != ids[2] {
		t.Fatalf("after=%s: %v", ids[1], jobs)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs?state=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus state: %d", code)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs?limit=x"); code != http.StatusBadRequest {
		t.Fatalf("bogus limit: %d", code)
	}
	// The cursor is derived from the ID, not looked up, so a cursor past
	// everything (or evicted) answers an empty page — a tailing poller
	// must never wedge on 404.
	code, list = getJSON(t, ts.URL+"/jobs?after=j-999999")
	if code != http.StatusOK || len(list["jobs"].([]any)) != 0 {
		t.Fatalf("future cursor: %d %v", code, list)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs?after=bogus"); code != http.StatusBadRequest {
		t.Fatalf("malformed cursor: %d", code)
	}
}

// TestDurableJobEvictionCleansDisk: retention eviction and client delete
// must erase the journal record and the result blob, not just RAM.
func TestDurableJobEvictionCleansDisk(t *testing.T) {
	dir := t.TempDir()
	ts, stop := durableServer(t, dir, Options{Workers: 2, MaxJobs: 2})
	raw, _ := patientsJSON(t)
	var ids []string
	for i := 0; i < 3; i++ {
		_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
			"dataset": json.RawMessage(raw),
			"config":  map[string]any{"algo": "cluster", "k": 2 + i},
		})
		id := sub["job"].(string)
		ids = append(ids, id)
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("job %d ended %s", i, st)
		}
	}
	// MaxJobs=2: the oldest job was evicted.
	if code, _ := getJSON(t, ts.URL+"/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job survived retention: %d", code)
	}
	stop()

	// The eviction is durable: a reboot does not resurrect the job, and
	// its result blob is gone from disk.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for _, rec := range st.Journal.Jobs() {
		if rec.ID == ids[0] {
			t.Fatal("evicted job still journaled")
		}
	}
	if st.Results.Has(ids[0]) || st.ResultChunks.Has(ids[0]) {
		t.Fatal("evicted job's result still on disk")
	}
	// Anonymize results persist as chunked record-stream files.
	if !st.ResultChunks.Has(ids[2]) {
		t.Fatal("retained job's result stream missing")
	}
}

// slowDatasetJSON synthesizes uniform random transaction baskets —
// data that resists generalization and keeps Apriori busy for seconds,
// long enough to guarantee a job is mid-run when we pull the plug.
func slowDatasetJSON(t *testing.T) json.RawMessage {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	items := make([]string, 120)
	for i := range items {
		items[i] = fmt.Sprintf("i%04d", i)
	}
	type rec struct {
		Values []string `json:"values"`
		Items  []string `json:"items"`
	}
	type ds struct {
		Attributes  []map[string]string `json:"attributes"`
		Transaction string              `json:"transaction"`
		Records     []rec               `json:"records"`
	}
	out := ds{
		Attributes:  []map[string]string{{"name": "grp", "kind": "categorical"}},
		Transaction: "items",
	}
	for n := 0; n < 2000; n++ {
		perm := rng.Perm(len(items))[:10]
		basket := make([]string, len(perm))
		for i, p := range perm {
			basket[i] = items[p]
		}
		sort.Strings(basket)
		out.Records = append(out.Records, rec{Values: []string{"x"}, Items: basket})
	}
	raw, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestGracefulShutdownRequeuesRunningJob pins the restart semantics the
// journal encodes: a job still running when the server shuts down is NOT
// journaled cancelled — the durable record stays in-flight and the next
// boot re-runs it to completion.
func TestGracefulShutdownRequeuesRunningJob(t *testing.T) {
	dir := t.TempDir()
	ts, stop := durableServer(t, dir, Options{Workers: 2})
	code, body := uploadDataset(t, ts.URL, slowDatasetJSON(t))
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	ref := body["dataset_ref"].(string)
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 40, "m": 2},
	})
	jobID := sub["job"].(string)
	// Wait until it is actually running, then pull the plug.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, v := getJSON(t, ts.URL+"/jobs/"+jobID)
		if v["status"] == string(StatusRunning) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	stop()

	// The journal must still hold the job as in-flight, body included.
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var rec *store.JobRecord
	for _, r := range st.Journal.Jobs() {
		if r.ID == jobID {
			cp := r
			rec = &cp
		}
	}
	if rec == nil {
		t.Fatal("job missing from journal after shutdown")
	}
	if Status(rec.Status).Terminal() {
		t.Fatalf("shutdown journaled the running job terminally as %q", rec.Status)
	}
	if len(rec.Body) == 0 {
		t.Fatal("in-flight job lost its body")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	ts2, _ := durableServer(t, dir, Options{Workers: 2})
	_, v := getJSON(t, ts2.URL+"/jobs/"+jobID)
	if v["recovered"] != true {
		t.Fatalf("job not re-queued after graceful restart: %v", v)
	}
	if st := pollDone(t, ts2.URL, jobID); st != StatusDone {
		t.Fatalf("re-queued job ended %s", st)
	}
}
