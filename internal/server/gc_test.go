package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"syscall"
	"testing"
	"time"

	"secreta/internal/faultfs"
	"secreta/internal/store"
)

// Retention-sweeper invariant tests, driven through the exposed
// sweepOnce seam (no timers) and the faultfs fault-injection seam (no
// real disk failures needed).

// gcSubmit submits one anonymize job over ref with a per-call (k, m) so
// each job is a distinct (dataset, config) pair, and waits for it to
// finish. Use only on servers without a capped sweeper — it requires the
// terminal status to stay observable.
func gcSubmit(t *testing.T, base, ref string, k, m int) string {
	t.Helper()
	id := gcSubmitAsync(t, base, ref, k, m)
	if st := pollDone(t, base, id); st != StatusDone {
		t.Fatalf("job %s ended %s, want done", id, st)
	}
	return id
}

func gcSubmitAsync(t *testing.T, base, ref string, k, m int) string {
	t.Helper()
	resp, sub := postJSON(t, base+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": k, "m": m},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit k=%d m=%d: code=%d body=%v", k, m, resp.StatusCode, sub)
	}
	return sub["job"].(string)
}

// gcAwait waits for a job on a capped server to leave the queue: either
// a terminal status, or a 404 — which, since queued and running jobs are
// never evicted, can only mean it finished and a background sweep
// already took it.
func gcAwait(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := getJSON(t, base+"/jobs/"+id)
		if code == http.StatusNotFound {
			return
		}
		if st, ok := body["status"].(string); ok && Status(st).Terminal() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s neither finished nor was swept in 30s", id)
}

// TestGCKeepsDataDirUnderCapAndSparesInFlight is the retention
// satellite's core invariant run: a capped data dir stays at or under
// the cap after every sweep while jobs keep landing, eviction takes the
// oldest terminal jobs first, and in-flight state — a queued job and the
// dataset it references — is never touched. The sweeper's clock is
// injected, so the last-sweep timestamp is asserted exactly.
func TestGCKeepsDataDirUnderCapAndSparesInFlight(t *testing.T) {
	dir := t.TempDir()

	// Phase 0, no GC: seed the data dir with a dataset and twelve
	// terminal jobs (more than one eviction batch), measuring the disk
	// cost of one finished job along the way.
	st, err := store.Open(dir, store.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	srv1 := mustNew(t, ctx1, Options{Workers: 1, MaxConcurrentJobs: 1, Store: st})
	ts1 := httptest.NewServer(srv1.Handler())
	waitReady(t, ts1.URL)
	code, body := uploadDataset(t, ts1.URL, smallDatasetJSON(t, "gc"))
	if code != http.StatusCreated {
		t.Fatalf("upload: code=%d", code)
	}
	ref := body["dataset_ref"].(string)
	var seeded []string
	for k := 2; k < 8; k++ {
		seeded = append(seeded, gcSubmit(t, ts1.URL, ref, k, 1))
	}
	usageHalf := st.DiskUsage()
	for k := 2; k < 8; k++ {
		seeded = append(seeded, gcSubmit(t, ts1.URL, ref, k, 2))
	}
	perJob := (st.DiskUsage() - usageHalf) / 6
	if perJob <= 0 {
		t.Fatalf("per-job disk cost measured as %d", perJob)
	}
	ts1.Close()
	cancel1()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the cap BELOW the current footprint, by about three
	// jobs' worth: the first sweep must evict exactly one batch (the 8
	// oldest jobs) to get back under, deterministically sparing the 4
	// newest. The disk cache is emptied up front so lever 1 can't absorb
	// the overshoot and hide the eviction path under test.
	st2, err := store.Open(dir, store.Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	st2.Cache.TrimTo(0, 0)
	capBytes := st2.DiskUsage() - 3*perJob
	if capBytes <= 0 {
		t.Fatalf("cap computed as %d", capBytes)
	}
	t0 := time.Unix(1_800_000_000, 0)
	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2 := mustNew(t, ctx2, Options{
		Workers: 1, MaxConcurrentJobs: 1, Store: st2,
		DataMaxBytes: capBytes, GCInterval: time.Hour,
		Now: func() time.Time { return t0 },
	})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		cancel2()
		st2.Close()
	})
	waitReady(t, ts2.URL)

	// One controlled sweep: exactly the oldest batch goes.
	if usage := srv2.sweepOnce(); usage > capBytes {
		t.Fatalf("sweep left usage %d over cap %d", usage, capBytes)
	}
	if got := srv2.gc.evictedJobs.Load(); got != 8 {
		t.Fatalf("evicted jobs: %d, want one batch of 8", got)
	}
	for _, id := range seeded[:8] {
		if code, _ := getJSON(t, ts2.URL+"/jobs/"+id); code != http.StatusNotFound {
			t.Fatalf("evicted job %s: code=%d, want 404", id, code)
		}
	}
	// The 4 newest survive with retrievable results.
	for _, id := range seeded[8:] {
		if code, _ := getJSON(t, ts2.URL+"/jobs/"+id+"/result"); code != http.StatusOK {
			t.Fatalf("surviving job %s result: code=%d, want 200", id, code)
		}
	}
	if got := srv2.gc.view().LastSweepUnix; got != t0.Unix() {
		t.Fatalf("last_sweep_unix=%d, want the injected clock's %d", got, t0.Unix())
	}
	// The /stats gc block mirrors the sweeper.
	if code, stats := getJSON(t, ts2.URL+"/stats"); code != http.StatusOK {
		t.Fatalf("stats: code=%d", code)
	} else if gcb, ok := stats["gc"].(map[string]any); !ok {
		t.Fatalf("/stats has no gc block: %v", stats)
	} else if int64(gcb["max_bytes"].(float64)) != capBytes {
		t.Fatalf("gc.max_bytes=%v, want %d", gcb["max_bytes"], capBytes)
	}

	// In-flight protection: hold the server's only slot so a fresh job
	// stays queued, then sweep. The job and its dataset must both
	// survive, with no errors counted.
	srv2.slots <- struct{}{}
	qresp, sub := postJSON(t, ts2.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 9, "m": 1},
	})
	if qresp.StatusCode != http.StatusAccepted {
		t.Fatalf("queued submit: code=%d body=%v", qresp.StatusCode, sub)
	}
	queuedID := sub["job"].(string)
	errsBefore := srv2.gc.errors.Load()
	if usage := srv2.sweepOnce(); usage > capBytes {
		t.Fatalf("sweep with queued job left usage %d over cap %d", usage, capBytes)
	}
	if code, jb := getJSON(t, ts2.URL+"/jobs/"+queuedID); code != http.StatusOK || jb["status"] != string(StatusQueued) {
		t.Fatalf("queued job after sweep: code=%d status=%v, want 200 queued", code, jb["status"])
	}
	if code, _ := getJSON(t, ts2.URL+"/datasets/"+ref); code != http.StatusOK {
		t.Fatalf("referenced dataset after sweep: code=%d, want 200", code)
	}
	if got := srv2.gc.errors.Load(); got != errsBefore {
		t.Fatalf("sweep around in-flight state counted errors: %d -> %d", errsBefore, got)
	}
	// Release the slot and let the job run. From here on, background
	// kick-triggered sweeps race the polls, so completion is observed
	// leniently (terminal, or already swept — never stuck in queue).
	<-srv2.slots
	gcAwait(t, ts2.URL, queuedID)

	// Sustained load: six more jobs against the capped dir, sweeping
	// after each. The continuous invariant — the sweep always lands at or
	// under the cap.
	for k := 2; k < 8; k++ {
		gcAwait(t, ts2.URL, gcSubmitAsync(t, ts2.URL, ref, k, 3))
		if usage := srv2.sweepOnce(); usage > capBytes {
			t.Fatalf("sustained phase k=%d: sweep left usage %d over cap %d", k, usage, capBytes)
		}
	}
}

// TestGCStuckDatasetSkippedNotWedged pins the stuck-file contract on the
// dataset lever: an ENOSPC on one blob's unlink increments gc errors and
// the store's trim_errors, leaves that dataset intact and indexed, and
// does NOT stop the sweep from clearing everything else; once the fault
// clears, the next sweep finishes the job.
func TestGCStuckDatasetSkippedNotWedged(t *testing.T) {
	fsys := faultfs.NewFaultFS(faultfs.OS, 1)
	st, err := store.Open(t.TempDir(), store.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	// Cap of one byte: everything on disk is permanently over budget, so
	// each sweep tries to remove every unclaimed, unpinned dataset.
	srv := mustNew(t, ctx, Options{Workers: 1, Store: st, DataMaxBytes: 1, GCInterval: time.Hour})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		st.Close()
	})
	waitReady(t, ts.URL)

	for _, tag := range []string{"s1", "s2", "s3"} {
		if code, _ := uploadDataset(t, ts.URL, smallDatasetJSON(t, tag)); code != http.StatusCreated {
			t.Fatalf("upload %s: code=%d", tag, code)
		}
	}
	countListed := func() int {
		code, body := getJSON(t, ts.URL+"/datasets")
		if code != http.StatusOK {
			t.Fatalf("dataset list: code=%d", code)
		}
		return len(body["datasets"].([]any))
	}

	// First removal the sweep attempts fails once with ENOSPC.
	fsys.Arm(faultfs.Rule{Op: faultfs.OpRemove, Path: "datasets/*", Nth: 1, Count: 0, Err: syscall.ENOSPC})
	srv.sweepOnce()
	if got := srv.gc.errors.Load(); got != 1 {
		t.Fatalf("gc errors after stuck sweep: %d, want 1", got)
	}
	if got := st.Stats().TrimErrors; got < 1 {
		t.Fatalf("store trim_errors after stuck sweep: %d, want >= 1", got)
	}
	if got := countListed(); got != 1 {
		t.Fatalf("datasets left after stuck sweep: %d, want exactly the stuck one", got)
	}
	if got := srv.gc.evictedDatasets.Load(); got != 2 {
		t.Fatalf("evicted datasets: %d, want 2 (sweep continued past the stuck file)", got)
	}

	// Fault gone: the next sweep removes the straggler. No wedge, no leak.
	fsys.Clear()
	srv.sweepOnce()
	if got := countListed(); got != 0 {
		t.Fatalf("datasets left after recovery sweep: %d, want 0", got)
	}
	if got := srv.gc.errors.Load(); got != 1 {
		t.Fatalf("gc errors after recovery sweep: %d, want still 1", got)
	}
	if got := srv.gc.evictedDatasets.Load(); got != 3 {
		t.Fatalf("evicted datasets after recovery sweep: %d, want 3", got)
	}
}

// TestGCCrashMidSweepRecoversClean pins crash consistency for the job
// lever: an eviction that commits its journal deletes but dies before
// the blob unlinks (simulated with persistent EIO on remove) leaves
// orphan result/trace blobs; the next boot's recovery sweeps exactly
// those orphans — no leak, no double-delete — and the server keeps
// working.
func TestGCCrashMidSweepRecoversClean(t *testing.T) {
	dir := t.TempDir()
	fsys := faultfs.NewFaultFS(faultfs.OS, 1)
	st, err := store.Open(dir, store.Options{FS: fsys})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	srv1 := mustNew(t, ctx1, Options{Workers: 1, MaxConcurrentJobs: 1, Store: st})
	ts1 := httptest.NewServer(srv1.Handler())
	waitReady(t, ts1.URL)
	code, body := uploadDataset(t, ts1.URL, smallDatasetJSON(t, "cr"))
	if code != http.StatusCreated {
		t.Fatalf("upload: code=%d", code)
	}
	ref := body["dataset_ref"].(string)
	id1 := gcSubmit(t, ts1.URL, ref, 2, 1)
	id2 := gcSubmit(t, ts1.URL, ref, 3, 1)

	countBlobs := func(s *store.Store) int {
		t.Helper()
		n := 0
		for _, dirNames := range []func() ([]string, error){s.Results.Names, s.ResultChunks.Names, s.Traces.Names} {
			names, err := dirNames()
			if err != nil {
				t.Fatal(err)
			}
			n += len(names)
		}
		return n
	}
	blobsBefore := countBlobs(st)
	if blobsBefore == 0 {
		t.Fatal("finished jobs left no persisted blobs to orphan")
	}

	// Every blob unlink now fails: the eviction's journal deletes land,
	// the blobs stay — the on-disk state of a sweep cut down mid-unlink.
	fsys.Arm(faultfs.Rule{Op: faultfs.OpRemove, Path: "results/*", Count: -1, Err: syscall.EIO})
	fsys.Arm(faultfs.Rule{Op: faultfs.OpRemove, Path: "traces/*", Count: -1, Err: syscall.EIO})
	if ids := srv1.jobs.evictOldestTerminal(2); len(ids) != 2 {
		t.Fatalf("evicted %v, want both jobs", ids)
	}
	for _, id := range []string{id1, id2} {
		if code, _ := getJSON(t, ts1.URL+"/jobs/"+id); code != http.StatusNotFound {
			t.Fatalf("evicted job %s: code=%d, want 404", id, code)
		}
	}
	if got := countBlobs(st); got != blobsBefore {
		t.Fatalf("blobs after failed unlinks: %d, want all %d still on disk", got, blobsBefore)
	}

	// Crash and reboot on a healthy filesystem.
	ts1.Close()
	cancel1()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2 := mustNew(t, ctx2, Options{Workers: 1, MaxConcurrentJobs: 1, Store: st2})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		cancel2()
		st2.Close()
	})
	waitReady(t, ts2.URL)

	// Recovery swept exactly the orphans, once.
	_, stats := getJSON(t, ts2.URL+"/stats")
	rec := stats["recovery"].(map[string]any)
	if got := int(rec["orphan_blobs_swept"].(float64)); got != blobsBefore {
		t.Fatalf("orphan_blobs_swept=%d, want %d", got, blobsBefore)
	}
	if got := countBlobs(st2); got != 0 {
		t.Fatalf("blobs after recovery: %d, want 0", got)
	}
	// The evicted jobs stay gone; the dataset and new work are unharmed.
	for _, id := range []string{id1, id2} {
		if code, _ := getJSON(t, ts2.URL+"/jobs/"+id); code != http.StatusNotFound {
			t.Fatalf("job %s resurrected by recovery: code=%d", id, code)
		}
	}
	if code, _ := getJSON(t, ts2.URL+"/datasets/"+ref); code != http.StatusOK {
		t.Fatalf("dataset after recovery: code=%d, want 200", code)
	}
	id3 := gcSubmit(t, ts2.URL, ref, 4, 1)
	if code, _ := getJSON(t, ts2.URL+"/jobs/"+id3+"/result"); code != http.StatusOK {
		t.Fatalf("post-recovery job result: code=%d, want 200", code)
	}

	// A third boot finds nothing to sweep — the recovery was idempotent.
	ts2.Close()
	cancel2()
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx3, cancel3 := context.WithCancel(context.Background())
	srv3 := mustNew(t, ctx3, Options{Workers: 1, Store: st3})
	ts3 := httptest.NewServer(srv3.Handler())
	t.Cleanup(func() {
		ts3.Close()
		cancel3()
		st3.Close()
	})
	waitReady(t, ts3.URL)
	_, stats3 := getJSON(t, ts3.URL+"/stats")
	if got := int(stats3["recovery"].(map[string]any)["orphan_blobs_swept"].(float64)); got != 0 {
		t.Fatalf("third boot swept %d orphans, want 0 (double-delete)", got)
	}
}
