package server

import (
	"net/http"
	"sync"
	"time"

	"secreta/internal/faultfs"
)

// Degraded read-only mode: when a durable write the server cannot work
// around fails with a permanent (non-transient) storage error — a journal
// append, a WAL frame, a result-blob persist — the server stops accepting
// new write work instead of quietly dropping durability. POST routes
// answer 503 with Retry-After; everything already on disk or in memory
// (job polls, results, streams, stats) keeps serving. A background probe
// performs a full atomic write+read+remove against the data directory and
// re-arms writes the moment the disk recovers, so an operator fixing a
// full volume never has to restart the process.
//
// Transient errors (EINTR/EAGAIN, see faultfs.IsTransient) never trip
// degraded mode — the store's retry layer absorbs them, and one that
// escapes is surfaced to the client of the failing request only.

// DefaultDegradedProbeInterval is the default cadence of the recovery
// probe while the server is degraded.
const DefaultDegradedProbeInterval = 5 * time.Second

// degradedState is the server's write-arming latch. Entered by the
// persist paths, cleared only by a successful probe.
type degradedState struct {
	mu      sync.Mutex
	active  bool
	reason  string
	since   time.Time
	entered uint64 // lifetime count of healthy->degraded transitions
	probes  uint64 // lifetime count of recovery probes run
}

// degradedView is the JSON shape /healthz, /stats and the dashboard share.
type degradedView struct {
	Active bool `json:"active"`
	// Reason is the triggering error; Since the transition time.
	Reason string `json:"reason,omitempty"`
	Since  string `json:"since,omitempty"`
	// Entered counts healthy->degraded transitions; Probes the recovery
	// probes run.
	Entered uint64 `json:"entered_total"`
	Probes  uint64 `json:"probes_total"`
}

func (d *degradedState) view() degradedView {
	d.mu.Lock()
	defer d.mu.Unlock()
	v := degradedView{Active: d.active, Entered: d.entered, Probes: d.probes}
	if d.active {
		v.Reason = d.reason
		v.Since = d.since.UTC().Format(time.RFC3339Nano)
	}
	return v
}

func (d *degradedState) isActive() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.active
}

// enter latches degraded mode; only the first caller of a healthy window
// records its reason. It reports whether this call made the transition.
func (d *degradedState) enter(reason string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.active {
		return false
	}
	d.active = true
	d.reason = reason
	d.since = time.Now()
	d.entered++
	return true
}

// clear re-arms writes. It reports whether the server was degraded.
func (d *degradedState) clear() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	was := d.active
	d.active = false
	d.reason = ""
	return was
}

// storeFault classifies one durable-write failure from a degraded-mode
// trigger point (journal append, WAL frame, result-blob persist): a
// transient error is the retry layer's business and never trips the
// latch; anything else flips the server read-only. where names the
// failing write in logs and /healthz.
func (s *Server) storeFault(where string, err error) {
	if err == nil || faultfs.IsTransient(err) {
		return
	}
	reason := where + ": " + err.Error()
	if s.degraded.enter(reason) {
		s.log().Error("permanent storage fault — entering degraded read-only mode",
			"where", where, "err", err)
	}
}

// gateWrite answers a write request while the server is degraded. It
// reports whether the request was consumed (the caller must return).
func (s *Server) gateWrite(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost || !s.degraded.isActive() {
		return false
	}
	v := s.degraded.view()
	w.Header().Set("Retry-After", "5")
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error":    "server is in degraded read-only mode: " + v.Reason,
		"degraded": true,
	})
	return true
}

// probeDurability runs one recovery probe: a full atomic sentinel
// write+read+remove through the store. On success the write path is
// re-armed. Returns true when the server is (now) healthy.
func (s *Server) probeDurability() bool {
	s.degraded.mu.Lock()
	s.degraded.probes++
	s.degraded.mu.Unlock()
	if err := s.st.ProbeWrite(); err != nil {
		s.log().Warn("degraded-mode probe failed; writes stay disabled", "err", err)
		return false
	}
	if s.degraded.clear() {
		s.log().Info("storage recovered — re-arming writes")
	}
	return true
}

// probeLoop drives recovery probes while the server is degraded, at the
// configured interval, until ctx ends. Healthy intervals cost one atomic
// load each.
func (s *Server) probeLoop() {
	interval := s.opts.DegradedProbeInterval
	if interval <= 0 {
		interval = DefaultDegradedProbeInterval
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.baseCtx.Done():
			return
		case <-t.C:
			if s.degraded.isActive() {
				s.probeDurability()
			}
		}
	}
}
