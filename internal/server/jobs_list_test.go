package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestJobListPaginationEdges covers the corners of GET /jobs pagination:
// a cursor naming a job that retention has already evicted, state= and
// after= combined, and the rejected limit=0 (the internal "unlimited"
// sentinel must not be reachable from the query string).
func TestJobListPaginationEdges(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 2, MaxJobs: 2}).Handler())
	t.Cleanup(ts.Close)
	dsJSON, _ := patientsJSON(t)
	var ids []string
	for i := 0; i < 4; i++ {
		_, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
			Dataset: dsJSON,
			Config:  ConfigRequest{Algo: "cluster", K: 2 + i},
		})
		id := body["job"].(string)
		ids = append(ids, id)
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("job %d finished as %s", i, st)
		}
	}
	// MaxJobs=2: the two oldest jobs are gone from the table.
	if code, _ := getJSON(t, ts.URL+"/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job survived retention: %d", code)
	}

	// A cursor pointing at an evicted job must keep working — the cursor
	// is decoded from the ID, not looked up — and return exactly the
	// retained jobs submitted after it.
	code, list := getJSON(t, ts.URL+"/jobs?after="+ids[1])
	if code != http.StatusOK {
		t.Fatalf("after=<evicted>: %d %v", code, list)
	}
	jobs := list["jobs"].([]any)
	if len(jobs) != 2 {
		t.Fatalf("after=<evicted>: %d jobs, want the 2 retained", len(jobs))
	}
	for i, j := range jobs {
		if got := j.(map[string]any)["job"].(string); got != ids[2+i] {
			t.Fatalf("after=<evicted>[%d] = %s, want %s", i, got, ids[2+i])
		}
	}

	// state= and after= combined: the filter applies first, the cursor
	// then pages within the matches; total counts matches before paging.
	code, list = getJSON(t, ts.URL+"/jobs?state=done&after="+ids[2])
	if code != http.StatusOK {
		t.Fatalf("state+after: %d %v", code, list)
	}
	jobs = list["jobs"].([]any)
	if len(jobs) != 1 || jobs[0].(map[string]any)["job"].(string) != ids[3] {
		t.Fatalf("state=done&after=%s: %v", ids[2], jobs)
	}
	if total := list["total"].(float64); total != 2 {
		t.Fatalf("state=done&after combined total = %v, want 2 (total ignores the cursor)", total)
	}
	// A state that matches nothing, combined with a cursor, is an empty
	// 200 — not an error.
	code, list = getJSON(t, ts.URL+"/jobs?state=failed&after="+ids[1])
	if code != http.StatusOK || len(list["jobs"].([]any)) != 0 || list["total"].(float64) != 0 {
		t.Fatalf("state=failed&after: %d %v", code, list)
	}

	// limit=0 is rejected outright.
	if code, _ := getJSON(t, ts.URL+"/jobs?limit=0"); code != http.StatusBadRequest {
		t.Fatalf("limit=0 answered %d, want 400", code)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs?limit=-1"); code != http.StatusBadRequest {
		t.Fatalf("limit=-1 answered %d, want 400", code)
	}
}
