package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/store"
)

// smallDatasetJSON builds a distinct tiny RT-dataset (tag varies the
// content fingerprint).
func smallDatasetJSON(t *testing.T, tag string) json.RawMessage {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{{Name: "grp", Kind: dataset.Categorical}}, "items")
	for r := 0; r < 40; r++ {
		rec := dataset.Record{
			Values: []string{fmt.Sprintf("%s%d", tag, r%4)},
			Items:  []string{"a", "b"},
		}
		if err := ds.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestLazyPinBoundsResidencyByConcurrency is the lazy-pin satellite's
// acceptance test: a deep queue of jobs referencing non-resident datasets
// must NOT pull every referenced dataset into pinned RAM at submission.
// With -max-concurrent=1 and a 1-entry RAM cache, the queue holds index
// reservations only (deletes still answer 409), residency stays bounded
// by the cache cap, and every job still completes because its bytes load
// from disk at job start.
func TestLazyPinBoundsResidencyByConcurrency(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv := mustNew(t, ctx, Options{
		Workers:             1,
		MaxConcurrentJobs:   1,
		RegistryMaxDatasets: 1,
		Store:               st,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		cancel()
		ts.Close()
		st.Close()
	})
	waitReady(t, ts.URL)

	const jobs = 6
	refs := make([]string, jobs)
	for i := range refs {
		code, body := uploadDataset(t, ts.URL, smallDatasetJSON(t, fmt.Sprintf("t%d", i)))
		if code != http.StatusCreated {
			t.Fatalf("upload %d: code=%d body=%v", i, code, body)
		}
		refs[i] = body["dataset_ref"].(string)
	}
	// The 1-entry RAM cache means at most the last upload is resident;
	// everything else is disk-only before any job runs.
	if got := residentCount(t, ts.URL); got > 1 {
		t.Fatalf("%d datasets resident before jobs, want <= 1", got)
	}

	// Occupy the single admission slot directly, so the six referencing
	// jobs below are deterministically still queued when the
	// delete-conflict and residency checks run — any wall-clock slot
	// holder (a "slow" job) races the checks on a fast machine.
	srv.slots <- struct{}{}

	ids := make([]string, jobs)
	for i := range ids {
		_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
			"dataset_ref": refs[i],
			"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
		})
		job, ok := sub["job"].(string)
		if !ok {
			t.Fatalf("submission %d rejected: %v", i, sub)
		}
		ids[i] = job
	}
	// Every referenced dataset is reserved — deletes conflict — even
	// though the queue's datasets are not resident. The slot is held by
	// the test, so every one of the six is still queued here.
	conflicts := 0
	for _, ref := range refs {
		if code, _ := httpDelete(t, ts.URL+"/datasets/"+ref); code == http.StatusConflict {
			conflicts++
		}
	}
	if conflicts != jobs {
		t.Fatalf("only %d/%d deletes conflicted; reservations not held", conflicts, jobs)
	}
	// Residency while the queue waits stays bounded by the RAM cap plus
	// the running job — never the whole queue.
	if got := residentCount(t, ts.URL); got > 2 {
		t.Fatalf("%d datasets resident mid-queue, want <= 2 (cache cap + running job)", got)
	}
	// Release the slot and let the queue drain.
	<-srv.slots
	for i, id := range ids {
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("job %d ended %s, want done", i, st)
		}
	}
}

// residentCount counts datasets with a decoded in-RAM copy.
func residentCount(t *testing.T, base string) int {
	t.Helper()
	code, body := getJSON(t, base+"/datasets")
	if code != http.StatusOK {
		t.Fatalf("list datasets: code=%d", code)
	}
	n := 0
	for _, v := range body["datasets"].([]any) {
		if v.(map[string]any)["resident"].(bool) {
			n++
		}
	}
	return n
}
