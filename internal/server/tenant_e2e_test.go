package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/store"
)

// fairnessDatasetJSON builds a dataset big enough that an evaluate sweep
// over it takes measurable wall time, so queueing delay dominates poll
// granularity in the fairness assertions.
func fairnessDatasetJSON(t *testing.T, tag string) []byte {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "grp", Kind: dataset.Categorical},
		{Name: "age", Kind: dataset.Categorical},
	}, "items")
	for r := 0; r < 4000; r++ {
		rec := dataset.Record{
			Values: []string{fmt.Sprintf("%s%d", tag, r%37), fmt.Sprintf("a%d", r%53)},
			Items:  []string{"a", "b", "c", fmt.Sprintf("i%d", r%11), fmt.Sprintf("j%d", r%7)},
		}
		if err := ds.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// sweepJobFor is an /evaluate body whose sweep keeps one worker busy for
// a measurable stretch. Evaluate runs uncached by design, so identical
// submissions cost the same every time.
func sweepJobFor(ref string) map[string]any {
	return map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
		"sweep":       map[string]any{"param": "k", "start": 2, "end": 14, "step": 1},
	}
}

// submitEvalAs submits an evaluate job under key and returns its job ID.
func submitEvalAs(t *testing.T, base, key string, req any) string {
	t.Helper()
	resp, body := authedJSON(t, http.MethodPost, base+"/evaluate", key, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("evaluate as %q: code=%d body=%v", key, resp.StatusCode, body)
	}
	return body["job"].(string)
}

// promValue scans a Prometheus text exposition for an exactly-labelled
// sample and returns its value.
func promValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestTenantStarvationFairness is the tentpole's acceptance e2e: tenant
// alpha floods the queue while tenant beta submits occasionally; the WRR
// dispatcher must keep serving beta at close to its idle latency instead
// of parking it behind alpha's backlog. It then cross-checks the
// per-tenant /metrics families against the /stats tenants block.
func TestTenantStarvationFairness(t *testing.T) {
	_, ts := newTenantServer(t, Options{Workers: 1, MaxConcurrentJobs: 1},
		TenantConfig{ID: "alpha", Key: "k-alpha"},
		TenantConfig{ID: "beta", Key: "k-beta"})

	_, refA, _ := authedUpload(t, ts.URL, "k-alpha", fairnessDatasetJSON(t, "fa"))
	_, refB, _ := authedUpload(t, ts.URL, "k-beta", fairnessDatasetJSON(t, "fb"))

	runOne := func(key, ref string) time.Duration {
		start := time.Now()
		id := submitEvalAs(t, ts.URL, key, sweepJobFor(ref))
		if st := pollDoneAs(t, ts.URL, key, id); st != StatusDone {
			t.Fatalf("job %s (%s) ended %s, want done", id, key, st)
		}
		return time.Since(start)
	}

	// Idle baseline: beta alone on the server, 4 sequential jobs. p95 of
	// 4 samples is the max.
	var idleP95 time.Duration
	for i := 0; i < 4; i++ {
		if d := runOne("k-beta", refB); d > idleP95 {
			idleP95 = d
		}
	}

	// Flood: alpha fires 40 jobs without waiting, then beta runs its 4
	// sequential jobs through the contended queue.
	const flood = 40
	for i := 0; i < flood; i++ {
		submitEvalAs(t, ts.URL, "k-alpha", sweepJobFor(refA))
	}
	var loadedP95 time.Duration
	for i := 0; i < 4; i++ {
		if d := runOne("k-beta", refB); d > loadedP95 {
			loadedP95 = d
		}
	}

	// Fairness, structurally: when beta's last job finishes, alpha must
	// still have backlog — under FIFO the flood would have drained first.
	resp, body := authedJSON(t, http.MethodGet, ts.URL+"/jobs?state=queued", "k-alpha", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha queued list: code=%d", resp.StatusCode)
	}
	if total := int(body["total"].(float64)); total == 0 {
		t.Fatal("alpha backlog already drained when beta finished — dispatch looks FIFO, not WRR")
	}

	// Fairness, by latency: within 3x the idle p95 plus a fixed allowance
	// for one in-flight alpha job (WRR is non-preemptive) and poll jitter.
	allowance := idleP95 + 250*time.Millisecond
	if loadedP95 > 3*idleP95+allowance {
		t.Fatalf("beta p95 under alpha flood: %v, idle %v — over the 3x fairness bound (+%v allowance)",
			loadedP95, idleP95, allowance)
	}

	// Let the remaining backlog drain so counters are stable, then check
	// /metrics against /stats: same tenants, same numbers.
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, body := authedJSON(t, http.MethodGet, ts.URL+"/jobs?state=done", "k-alpha", nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("alpha done list: code=%d", resp.StatusCode)
		}
		if int(body["total"].(float64)) == flood {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("alpha backlog did not drain: %v done of %d", body["total"], flood)
		}
		time.Sleep(20 * time.Millisecond)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, err := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	exposition := string(mbody)
	for _, id := range []string{"alpha", "beta"} {
		tv := statsTenant(t, ts.URL, id)
		checks := map[string]float64{
			fmt.Sprintf(`secreta_tenant_stored_bytes{tenant=%q}`, id):      tv["stored_bytes"].(float64),
			fmt.Sprintf(`secreta_tenant_dispatched_total{tenant=%q}`, id):  tv["dispatched_total"].(float64),
			fmt.Sprintf(`secreta_tenant_jobs{tenant=%q,state="done"}`, id): tv["jobs"].(map[string]any)["done"].(float64),
			fmt.Sprintf(`secreta_tenant_jobs{tenant=%q,state="queued"}`, id): func() float64 {
				if v, ok := tv["jobs"].(map[string]any)["queued"]; ok {
					return v.(float64)
				}
				return 0
			}(),
		}
		for name, want := range checks {
			if got := promValue(t, exposition, name); got != want {
				t.Errorf("%s = %v, but /stats says %v", name, got, want)
			}
		}
		if got := promValue(t, exposition, fmt.Sprintf(`secreta_tenant_dispatched_total{tenant=%q}`, id)); got == 0 {
			t.Errorf("tenant %s dispatched_total is zero after running jobs", id)
		}
	}
	// The dispatch split itself: alpha got its flood, beta its 8.
	if got := promValue(t, exposition, `secreta_tenant_dispatched_total{tenant="alpha"}`); got != flood {
		t.Errorf(`alpha dispatched_total=%v, want %d`, got, flood)
	}
	if got := promValue(t, exposition, `secreta_tenant_dispatched_total{tenant="beta"}`); got != 8 {
		t.Errorf(`beta dispatched_total=%v, want 8`, got)
	}
}

// TestTenantOwnershipSurvivesRestart pins that tenant stamps are durable:
// dataset claims and job ownership ride the journal, so after a
// kill-and-restart the same key sees its data and every other key still
// sees 404.
func TestTenantOwnershipSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	cfgs := []TenantConfig{
		{ID: "alpha", Key: "k-alpha"},
		{ID: "beta", Key: "k-beta"},
	}

	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	srv1 := mustNew(t, ctx1, Options{Workers: 1, Store: st, Tenants: cfgs})
	ts1 := httptest.NewServer(srv1.Handler())
	waitReady(t, ts1.URL)

	_, ref, _ := authedUpload(t, ts1.URL, "k-alpha", smallDatasetJSON(t, "dur"))
	id := submitAs(t, ts1.URL, "k-alpha", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
	})
	if got := pollDoneAs(t, ts1.URL, "k-alpha", id); got != StatusDone {
		t.Fatalf("job ended %s, want done", got)
	}

	// Kill: cancel the run context and close the store, as a crash+exit
	// would.
	ts1.Close()
	cancel1()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2 := mustNew(t, ctx2, Options{Workers: 1, Store: st2, Tenants: cfgs})
	ts2 := httptest.NewServer(srv2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		cancel2()
		st2.Close()
	})
	waitReady(t, ts2.URL)

	// Alpha still owns both; the job view carries the recovered stamp.
	if resp, _ := authedJSON(t, http.MethodGet, ts2.URL+"/datasets/"+ref, "k-alpha", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha dataset after restart: code=%d", resp.StatusCode)
	}
	resp, body := authedJSON(t, http.MethodGet, ts2.URL+"/jobs/"+id, "k-alpha", nil)
	if resp.StatusCode != http.StatusOK || body["tenant"] != "alpha" {
		t.Fatalf("alpha job after restart: code=%d tenant=%v", resp.StatusCode, body["tenant"])
	}
	if resp, _ := authedJSON(t, http.MethodGet, ts2.URL+"/jobs/"+id+"/result", "k-alpha", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha result after restart: code=%d", resp.StatusCode)
	}

	// Beta sees neither.
	for _, path := range []string{"/datasets/" + ref, "/jobs/" + id, "/jobs/" + id + "/result"} {
		if resp, _ := authedJSON(t, http.MethodGet, ts2.URL+path, "k-beta", nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("beta GET %s after restart: code=%d, want 404", path, resp.StatusCode)
		}
	}
	if n := srv2.tenants.claimCount(ref); n != 1 {
		t.Fatalf("claims on %s after restart: %d, want exactly 1 (no duplicates)", ref, n)
	}
	// And the recovered list is still scoped.
	resp, body = authedJSON(t, http.MethodGet, ts2.URL+"/jobs", "k-beta", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("beta job list after restart: code=%d", resp.StatusCode)
	}
	if total := int(body["total"].(float64)); total != 0 {
		t.Fatalf("beta sees %d recovered jobs, want 0", total)
	}
}
