package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/export"
	"secreta/internal/gen"
)

var update = flag.Bool("update", false, "rewrite golden files")

// mustNew builds a Server or fails the test (New only errors when a
// durable store's dataset index cannot be read).
func mustNew(t *testing.T, ctx context.Context, opts Options) *Server {
	t.Helper()
	s, err := New(ctx, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 4}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// patientsJSON loads the shared 20-patient sample and returns it in the
// dataset JSON format requests embed.
func patientsJSON(t *testing.T) (json.RawMessage, *dataset.Dataset) {
	t.Helper()
	ds, err := dataset.LoadFile(filepath.Join("..", "..", "testdata", "patients.csv"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), ds
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp, decodeMap(t, resp)
}

func decodeMap(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, decodeMap(t, resp)
}

// pollDone polls the job until it reaches a terminal status.
func pollDone(t *testing.T, base, id string) Status {
	return pollDoneWithin(t, base, id, 30*time.Second)
}

// pollDoneWithin is pollDone with an explicit budget, for jobs whose
// legitimate wall time approaches the default (the 260k-record stream
// job under -race on a loaded 1-CPU box crosses 30s).
func pollDoneWithin(t *testing.T, base, id string, budget time.Duration) Status {
	t.Helper()
	deadline := time.Now().Add(budget)
	for time.Now().Before(deadline) {
		_, body := getJSON(t, base+"/jobs/"+id)
		st := Status(body["status"].(string))
		if st.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in %v", id, budget)
	return ""
}

// normalize strips the wall-clock fields (runtimes, phase timings,
// timestamps) from a decoded JSON tree so results can be golden-compared.
func normalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		for _, k := range []string{"runtime_s", "duration_s", "phases", "submitted_at", "started_at", "finished_at"} {
			delete(x, k)
		}
		for k, val := range x {
			x[k] = normalize(val)
		}
	case []any:
		for i, val := range x {
			x[i] = normalize(val)
		}
	}
	return v
}

func canonical(t *testing.T, raw []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("canonicalizing: %v\n%s", err, raw)
	}
	out, err := json.MarshalIndent(normalize(v), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestAnonymizeJobGolden walks the happy path end to end: submit an
// anonymize job, poll to completion, fetch the result, and golden-compare
// the (time-normalized) JSON payload.
func TestAnonymizeJobGolden(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	resp, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)
	if st := Status(body["status"].(string)); st.Terminal() {
		t.Fatalf("freshly submitted job already %s", st)
	}
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}

	res, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("result: status %d", res.StatusCode)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	got := canonical(t, raw.Bytes())

	goldenPath := filepath.Join("testdata", "anonymize_patients.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/server -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("anonymize result diverges from golden file %s:\ngot:\n%s", goldenPath, got)
	}
}

// TestEvaluateMatchesDirectEngineRun pins the acceptance criterion: the
// service's /evaluate result is identical to what the equivalent
// `secreta evaluate -results` invocation produces (same engine run, same
// export encoding), modulo wall-clock fields.
func TestEvaluateMatchesDirectEngineRun(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, ds := patientsJSON(t)
	req := AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5, Fanout: 4},
	}
	resp, body := postJSON(t, ts.URL+"/evaluate", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
	res, err := http.Get(ts.URL + "/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var raw bytes.Buffer
	raw.ReadFrom(res.Body)
	res.Body.Close()

	// The CLI path: build the same config (auto-generated hierarchies,
	// fanout 4) and export through the same encoder.
	cfg, err := engine.ConfigFromSpec("cluster+apriori/rmerger")
	if err != nil {
		t.Fatal(err)
	}
	cfg.K, cfg.M, cfg.Delta = 4, 2, 0.5
	if cfg.Hierarchies, err = gen.Hierarchies(ds, 4); err != nil {
		t.Fatal(err)
	}
	if cfg.ItemHierarchy, err = gen.ItemHierarchy(ds, 4); err != nil {
		t.Fatal(err)
	}
	direct := engine.Run(ds, cfg)
	if direct.Err != nil {
		t.Fatal(direct.Err)
	}
	var directBuf bytes.Buffer
	if err := export.ResultsJSON(&directBuf, []*engine.Result{direct}); err != nil {
		t.Fatal(err)
	}
	want := canonical(t, []byte(fmt.Sprintf(`{"results": %s}`, directBuf.Bytes())))
	got := canonical(t, raw.Bytes())
	if !bytes.Equal(got, want) {
		t.Errorf("service result diverges from direct engine run:\nservice:\n%s\ndirect:\n%s", got, want)
	}
}

func TestCompareJob(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	resp, body := postJSON(t, ts.URL+"/compare", CompareRequest{
		Dataset: dsJSON,
		Configs: []ConfigRequest{
			{Algo: "cluster", K: 2},
			{Algo: "incognito", K: 2},
		},
		Sweep: SweepRequest{Param: "k", Start: 2, End: 4, Step: 2},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
	code, result := getJSON(t, ts.URL+"/jobs/"+id+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	series := result["series"].([]any)
	if len(series) != 2 {
		t.Fatalf("series = %d, want 2", len(series))
	}
	for _, s := range series {
		points := s.(map[string]any)["points"].([]any)
		if len(points) != 2 {
			t.Fatalf("points = %d, want 2 (k=2 and k=4)", len(points))
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	cases := []struct {
		name string
		url  string
		body any
	}{
		{"missing dataset", "/anonymize", AnonymizeRequest{Config: ConfigRequest{Algo: "cluster", K: 2}}},
		{"unknown algorithm", "/anonymize", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "does-not-exist", K: 2}}},
		{"typo in RT spec", "/anonymize", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluser+apriori", K: 2}}},
		{"non-positive k", "/anonymize", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluster"}}},
		{"bad sweep", "/evaluate", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluster", K: 2}, Sweep: &SweepRequest{Param: "bogus", Start: 1, End: 2, Step: 1}}},
		{"no configs", "/compare", CompareRequest{Dataset: dsJSON, Sweep: SweepRequest{Param: "k", Start: 2, End: 4, Step: 2}}},
		{"bad workload", "/anonymize", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluster", K: 2}, Workload: []string{"no equals sign"}}},
		{"sweep on anonymize", "/anonymize", AnonymizeRequest{Dataset: dsJSON, Config: ConfigRequest{Algo: "cluster", K: 2}, Sweep: &SweepRequest{Param: "k", Start: 2, End: 4, Step: 1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.url, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400 (%v)", resp.StatusCode, body)
			}
			if body["error"] == "" {
				t.Fatal("400 without error message")
			}
		})
	}

	// A present-but-invalid dataset is decoded inside the job (heavy work
	// stays behind admission control), so it surfaces as a failed job.
	t.Run("invalid dataset fails the job", func(t *testing.T) {
		resp, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
			Dataset: json.RawMessage(`{"bogus": true}`),
			Config:  ConfigRequest{Algo: "cluster", K: 2},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d, want 202 (%v)", resp.StatusCode, body)
		}
		id := body["job"].(string)
		if st := pollDone(t, ts.URL, id); st != StatusFailed {
			t.Fatalf("job finished as %s, want %s", st, StatusFailed)
		}
		code, res := getJSON(t, ts.URL+"/jobs/"+id+"/result")
		if code != http.StatusUnprocessableEntity || res["error"] == "" {
			t.Fatalf("failed job result: status %d body %v", code, res)
		}
	})

	t.Run("malformed JSON", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/anonymize", "application/json", strings.NewReader("{nope"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400", resp.StatusCode)
		}
	})
	t.Run("oversized body", func(t *testing.T) {
		small := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 1, MaxBodyBytes: 1024}).Handler())
		defer small.Close()
		resp, err := http.Post(small.URL+"/anonymize", "application/json",
			bytes.NewReader(append(dsJSON, bytes.Repeat([]byte(" "), 2048)...)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("status %d, want 413", resp.StatusCode)
		}
	})
	t.Run("unknown job", func(t *testing.T) {
		code, _ := getJSON(t, ts.URL+"/jobs/j-999999")
		if code != http.StatusNotFound {
			t.Fatalf("status %d, want 404", code)
		}
	})
}

// TestCancelJob submits a deliberately heavy comparison and cancels it:
// the job must reach StatusCancelled and its result endpoint must report
// 410 Gone.
func TestCancelJob(t *testing.T) {
	ts := newTestServer(t)
	ds := gen.Census(gen.Config{Records: 1500, Items: 12, Seed: 7})
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/compare", CompareRequest{
		Dataset: buf.Bytes(),
		Configs: []ConfigRequest{
			{Algo: "cluster+apriori/rmerger", M: 2, Delta: 0.3, K: 2},
			{Algo: "cluster+apriori/tmerger", M: 2, Delta: 0.3, K: 2},
		},
		Sweep: SweepRequest{Param: "k", Start: 2, End: 20, Step: 1},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close()
	if delResp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", delResp.StatusCode)
	}
	if st := pollDone(t, ts.URL, id); st != StatusCancelled {
		t.Fatalf("job finished as %s, want %s", st, StatusCancelled)
	}
	code, _ := getJSON(t, ts.URL+"/jobs/"+id+"/result")
	if code != http.StatusGone {
		t.Fatalf("result of cancelled job: status %d, want 410", code)
	}
}

// TestServerCacheHit submits the same anonymize request twice and asserts
// the second is served by the shared result cache.
func TestServerCacheHit(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	req := AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster", K: 3},
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/anonymize", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
		id := body["job"].(string)
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("submit %d finished as %s", i, st)
		}
		// The payload must disclose cache service, so a copied runtime_s
		// is never mistaken for a measurement.
		code, result := getJSON(t, ts.URL+"/jobs/"+id+"/result")
		if code != http.StatusOK {
			t.Fatalf("submit %d result: status %d", i, code)
		}
		if hit := result["cache_hit"].(bool); hit != (i == 1) {
			t.Fatalf("submit %d: cache_hit = %v, want %v", i, hit, i == 1)
		}
	}
	code, stats := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	cache := stats["cache"].(map[string]any)
	if hits := cache["hits"].(float64); hits < 1 {
		t.Fatalf("cache hits = %v after identical resubmission, want >= 1 (stats: %v)", hits, stats)
	}
	jobs := stats["jobs"].(map[string]any)
	if done := jobs[string(StatusDone)].(float64); done != 2 {
		t.Fatalf("done jobs = %v, want 2", done)
	}
}

// TestJobDeletionAndEviction covers retention: DELETE on a finished job
// removes its record, and the store evicts the oldest finished jobs past
// MaxJobs.
func TestJobDeletionAndEviction(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 2, MaxJobs: 2}).Handler())
	t.Cleanup(ts.Close)
	dsJSON, _ := patientsJSON(t)
	submit := func() string {
		t.Helper()
		resp, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
			Dataset: dsJSON,
			Config:  ConfigRequest{Algo: "cluster", K: 3},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		id := body["job"].(string)
		if st := pollDone(t, ts.URL, id); st != StatusDone {
			t.Fatalf("job %s finished as %s", id, st)
		}
		return id
	}

	first := submit()
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/jobs/"+first, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := decodeMap(t, resp)
	if resp.StatusCode != http.StatusOK || body["deleted"] != true {
		t.Fatalf("delete finished job: status %d body %v", resp.StatusCode, body)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs/"+first); code != http.StatusNotFound {
		t.Fatalf("deleted job still reachable: status %d", code)
	}

	// Three more finished jobs against MaxJobs=2: the oldest must be evicted.
	ids := []string{submit(), submit(), submit()}
	code, list := getJSON(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("job list: status %d", code)
	}
	kept := list["jobs"].([]any)
	if len(kept) > 2 {
		t.Fatalf("store retains %d jobs, want <= 2 (MaxJobs)", len(kept))
	}
	if code, _ := getJSON(t, ts.URL+"/jobs/"+ids[0]); code != http.StatusNotFound {
		t.Fatalf("oldest job %s survived eviction: status %d", ids[0], code)
	}
}

// TestJobListAndPendingResult covers the polling surface: list shows the
// job, and the result endpoint answers 202 while work is in flight.
func TestJobListAndPendingResult(t *testing.T) {
	ts := newTestServer(t)
	ds := gen.Census(gen.Config{Records: 800, Items: 10, Seed: 13})
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/evaluate", AnonymizeRequest{
		Dataset: buf.Bytes(),
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 3, M: 2, Delta: 0.3},
		Sweep:   &SweepRequest{Param: "k", Start: 2, End: 12, Step: 1},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	id := body["job"].(string)
	code, pending := getJSON(t, ts.URL+"/jobs/"+id+"/result")
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("pending result: status %d (%v)", code, pending)
	}
	code, list := getJSON(t, ts.URL+"/jobs")
	if code != http.StatusOK {
		t.Fatalf("job list: status %d", code)
	}
	found := false
	for _, j := range list["jobs"].([]any) {
		if j.(map[string]any)["job"] == id {
			found = true
		}
	}
	if !found {
		t.Fatalf("job %s missing from list %v", id, list)
	}
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
}
