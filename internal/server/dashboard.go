package server

import (
	"net/http"
	"sort"
	"sync"
	"time"

	_ "embed"

	"secreta/internal/plot"
)

// GET /dashboard is the embedded live operator dashboard: one self-
// contained HTML page (go:embed, zero external assets) that polls
// GET /dashboard/data — a JSON aggregate of the same counters /stats and
// /metrics serve, plus charts pre-rendered server-side as SVG via
// internal/plot. The page ships no chart library; its only script is a
// dozen lines of inline fetch-and-insert. Both routes sit behind the
// readiness gate like every other data route.

//go:embed dashboard.html
var dashboardHTML []byte

// dashWindow bounds the sparkline history: at the 1/s sampling floor,
// three minutes of trend — enough to see a queue building or a phase
// regressing, small enough to be O(1) per server.
const dashWindow = 180

// dashSampleMin is the minimum spacing between stored samples; faster
// polls reuse the last stored point so N dashboards don't multiply the
// history's time resolution.
const dashSampleMin = time.Second

// dashSample is one point of dashboard history.
type dashSample struct {
	at            time.Time
	queued        int
	running       int
	cacheHitRate  float64 // percent of cache-backed answers served without compute
	streamsActive int64
	phases        map[string]PhaseView
}

// dashHistory is a bounded ring of dashboard samples.
type dashHistory struct {
	mu      sync.Mutex
	samples []dashSample
	next    int
	lastAt  time.Time
}

func newDashHistory() *dashHistory {
	return &dashHistory{}
}

// observe stores the sample unless the last stored one is younger than
// dashSampleMin.
func (d *dashHistory) observe(s dashSample) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.lastAt.IsZero() && s.at.Sub(d.lastAt) < dashSampleMin {
		return
	}
	d.lastAt = s.at
	if len(d.samples) < dashWindow {
		d.samples = append(d.samples, s)
		return
	}
	d.samples[d.next] = s
	d.next = (d.next + 1) % dashWindow
}

// series returns the stored samples in chronological order.
func (d *dashHistory) series() []dashSample {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]dashSample, 0, len(d.samples))
	out = append(out, d.samples[d.next:]...)
	out = append(out, d.samples[:d.next]...)
	return out
}

func (s *Server) handleDashboard(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	w.Write(dashboardHTML)
}

// handleDashboardData aggregates the operator view. Every counter family
// is snapshotted exactly once per request — the numbers in the tables and
// the newest chart point come from the same reads, so the page is
// internally consistent with itself (and with a concurrently scraped
// /stats, modulo traffic in between).
func (s *Server) handleDashboardData(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	counts := s.jobs.counts()
	phaseViews, _ := s.phases.snapshotAll()
	cs := s.cache.Stats()
	rs := s.registry.Stats()
	streaming := map[string]any{
		"active":             s.streams.active.Load(),
		"served":             s.streams.served.Load(),
		"client_disconnects": s.streams.disconnects.Load(),
	}

	hitRate := 0.0
	if total := cs.Hits + cs.Misses; total > 0 {
		hitRate = float64(cs.Hits) / float64(total) * 100
	}
	s.dash.observe(dashSample{
		at:            now,
		queued:        counts[StatusQueued],
		running:       counts[StatusRunning],
		cacheHitRate:  hitRate,
		streamsActive: s.streams.active.Load(),
		phases:        phaseViews,
	})
	hist := s.dash.series()

	out := map[string]any{
		"generated_at": now.UTC().Format(time.RFC3339Nano),
		"ready":        s.ready.Load(),
		"jobs":         counts,
		"queue_depth":  counts[StatusQueued],
		"slots": map[string]any{
			"total":  cap(s.slots),
			"in_use": len(s.slots),
		},
		"phases":    phaseViews,
		"cache":     cs,
		"registry":  rs,
		"streaming": streaming,
		"charts": map[string]string{
			"jobs":   jobsChart(counts).SVG(440, 230),
			"queue":  queueChart(hist).SVG(440, 230),
			"phases": phasesChart(hist).SVG(440, 230),
			"cache":  cacheChart(hist).SVG(440, 230),
		},
	}
	if s.st != nil {
		out["store"] = s.st.Stats()
		out["degraded"] = s.degraded.view()
	}
	if s.tenants != nil {
		out["tenants"] = s.tenants.views(s.jobs.countsByTenant())
	}
	if s.gc != nil {
		out["gc"] = s.gc.view()
	}
	writeJSON(w, http.StatusOK, out)
}

// jobsChart renders the current job-table population by state.
func jobsChart(counts map[Status]int) *plot.Chart {
	labels := make([]string, len(jobStates))
	values := make([]float64, len(jobStates))
	for i, st := range jobStates {
		labels[i] = string(st)
		values[i] = float64(counts[st])
	}
	return plot.NewBar("Jobs by state", "", "jobs", labels, values)
}

// dashXs converts sample timestamps to "seconds ago" (<= 0, now at 0) so
// the trend charts share a time axis without absolute-clock tick labels.
func dashXs(hist []dashSample) []float64 {
	if len(hist) == 0 {
		return nil
	}
	last := hist[len(hist)-1].at
	xs := make([]float64, len(hist))
	for i, h := range hist {
		xs[i] = -last.Sub(h.at).Seconds()
	}
	return xs
}

// queueChart renders queue depth and running jobs over the history
// window.
func queueChart(hist []dashSample) *plot.Chart {
	xs := dashXs(hist)
	queued := make([]float64, len(hist))
	running := make([]float64, len(hist))
	for i, h := range hist {
		queued[i] = float64(h.queued)
		running[i] = float64(h.running)
	}
	return plot.NewLine("Queue depth", "seconds ago", "jobs",
		plot.Series{Label: "queued", Xs: xs, Ys: queued},
		plot.Series{Label: "running", Xs: xs, Ys: running},
	)
}

// dashMaxPhases caps the phase sparkline series count so a server that has
// seen many distinct phase names stays readable.
const dashMaxPhases = 6

// phasesChart renders per-phase p95 latency sparklines with a p50..p95
// band, one series per phase (alphabetical, capped at dashMaxPhases).
func phasesChart(hist []dashSample) *plot.Chart {
	nameSet := make(map[string]bool)
	for _, h := range hist {
		for n := range h.phases {
			nameSet[n] = true
		}
	}
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) > dashMaxPhases {
		names = names[:dashMaxPhases]
	}
	xs := dashXs(hist)
	series := make([]plot.Series, 0, len(names))
	for _, n := range names {
		ys := make([]float64, len(hist))
		lo := make([]float64, len(hist))
		for i, h := range hist {
			pv := h.phases[n]
			ys[i] = pv.P95ms
			lo[i] = pv.P50ms
		}
		series = append(series, plot.Series{Label: n, Xs: xs, Ys: ys, Lo: lo, Hi: ys})
	}
	return plot.NewLine("Phase latency p95 (band: p50..p95, ms)", "seconds ago", "ms", series...)
}

// cacheChart renders the result-cache hit rate over the history window.
func cacheChart(hist []dashSample) *plot.Chart {
	xs := dashXs(hist)
	rate := make([]float64, len(hist))
	streamsActive := make([]float64, len(hist))
	for i, h := range hist {
		rate[i] = h.cacheHitRate
		streamsActive[i] = float64(h.streamsActive)
	}
	return plot.NewLine("Cache hit rate (%) / active streams", "seconds ago", "",
		plot.Series{Label: "hit %", Xs: xs, Ys: rate},
		plot.Series{Label: "streams", Xs: xs, Ys: streamsActive},
	)
}
