package server

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/registry"
	"secreta/internal/store"
)

// datasetBacking adapts the store's dataset blob directory to the
// registry's Backing interface (the registry must not depend on the store
// package).
type datasetBacking struct{ ds *store.DatasetStore }

func (b datasetBacking) Save(id string, d *dataset.Dataset) error { return b.ds.Save(id, d) }
func (b datasetBacking) Load(id string) (*dataset.Dataset, error) { return b.ds.Load(id) }
func (b datasetBacking) Delete(id string) error                   { return b.ds.Delete(id) }
func (b datasetBacking) List() ([]registry.BackedDataset, error) {
	metas, err := b.ds.List()
	if err != nil {
		return nil, err
	}
	out := make([]registry.BackedDataset, len(metas))
	for i, m := range metas {
		out[i] = registry.BackedDataset{ID: m.ID, Attrs: m.Attrs, Records: m.Records, Bytes: m.Bytes}
	}
	return out, nil
}

// recoveryInfo summarizes the boot-time replay for GET /stats.
type recoveryInfo struct {
	// Done flips once the server went ready; the other fields are final
	// from then on.
	Done bool `json:"done"`
	// DurationSec is the job-table replay time (the dataset index and
	// journal repair happen before the server exists and are not
	// included).
	DurationSec float64 `json:"duration_s"`
	// RestoredJobs counts terminal jobs rehydrated with their status (and
	// lazily loadable results); RequeuedJobs counts jobs that were in
	// flight at crash time and run again; FailedRequeues counts in-flight
	// jobs whose journaled request no longer prepares (e.g. its dataset
	// was deleted) — those come back as failed, not lost.
	RestoredJobs   int `json:"restored_jobs"`
	RequeuedJobs   int `json:"requeued_jobs"`
	FailedRequeues int `json:"failed_requeues"`
	// OrphansSwept counts the ".tmp-*" files store.Open removed — the
	// debris of atomic writes interrupted by the previous crash.
	OrphansSwept int `json:"orphans_swept"`
	// OrphanBlobsSwept counts committed result/trace blobs whose job
	// record is gone — a crash between a deletion's journal append and
	// its blob removal leaves these behind; recovery finishes the job so
	// no sweep double-deletes and no blob leaks.
	OrphanBlobsSwept int `json:"orphan_blobs_swept"`
	// RestoredClaims counts journaled tenant dataset claims rebuilt into
	// the in-RAM ownership table (multi-tenant mode only).
	RestoredClaims int `json:"restored_claims,omitempty"`
}

// loadResult rehydrates a terminal job's result from disk: a chunked
// record-stream file answers with its meta frame plus a reopenable disk
// stream (the records are never loaded whole — every request streams them
// frame by frame), a plain .json blob answers fully loaded.
func (s *Server) loadResult(id string) (*jobResult, error) {
	if s.st.ResultChunks.Has(id) {
		r, err := s.st.ResultChunks.Open(id)
		if err != nil {
			return nil, err
		}
		frame, err := r.Next()
		r.Close()
		if err != nil {
			return nil, fmt.Errorf("reading result stream meta: %w", err)
		}
		var meta anonMeta
		if err := json.Unmarshal(frame, &meta); err != nil {
			return nil, fmt.Errorf("decoding result stream meta: %w", err)
		}
		return &jobResult{meta: &meta, recs: diskRecords{chunks: s.st.ResultChunks, id: id}}, nil
	}
	data, err := s.st.Results.Get(id)
	if err != nil {
		return nil, err
	}
	return &jobResult{full: data}, nil
}

// recover rebuilds the job table from the journal and re-queues work that
// was in flight when the last process died. It runs once, in the
// background, while the readiness gate holds traffic (only /healthz
// answers); jobs are restored in submission order so re-queued work
// re-enters the admission queue in its original sequence.
func (s *Server) recover() {
	start := time.Now()
	var info recoveryInfo
	info.RestoredClaims = s.restoreClaims()
	for _, rec := range s.st.Journal.Jobs() {
		if Status(rec.Status).Terminal() {
			var load func() (*jobResult, error)
			switch {
			case rec.HasResult:
				id := rec.ID
				load = func() (*jobResult, error) { return s.loadResult(id) }
			case Status(rec.Status) == StatusDone:
				// Journaled done but the result blob write failed before
				// the crash: the result endpoint must say so, not answer
				// an empty 200.
				load = func() (*jobResult, error) {
					return nil, fmt.Errorf("result blob was never persisted")
				}
			}
			s.jobs.restore(rec, load, nil)
			info.RestoredJobs++
			continue
		}
		// In flight at crash time: re-queue under a fresh context. The
		// journaled body goes through the same preparation as a live
		// submission — re-validating and, crucially, re-pinning its
		// dataset_ref (the dataset itself came back with the registry
		// index, so the pin loads it from disk on demand).
		ctx, cancel := context.WithCancel(s.baseCtx)
		j := s.jobs.restore(rec, nil, cancel)
		// Ownership was checked at original submission; recovery must not
		// re-check it (the claim table is already restored, and failing a
		// re-queue over a racing delete would lose work), so no owner is
		// passed.
		p, err := s.prepareJob(rec.Kind, rec.Body, "")
		if err != nil {
			cancel()
			j.finish(nil, fmt.Errorf("re-queueing after restart: %w", err), nil, false)
			info.FailedRequeues++
			continue
		}
		info.RequeuedJobs++
		go s.runJob(ctx, cancel, j, p)
	}
	info.OrphanBlobsSwept = s.sweepOrphanBlobs()
	info.DurationSec = time.Since(start).Seconds()
	info.OrphansSwept = s.st.OrphansSwept()
	info.Done = true
	s.recMu.Lock()
	s.recovery = info
	s.recMu.Unlock()
	s.ready.Store(true)
	js := s.st.Journal.Stats()
	s.log().Info("recovery complete",
		"orphan_blobs_swept", info.OrphanBlobsSwept,
		"restored_claims", info.RestoredClaims,
		"duration_s", info.DurationSec,
		"restored_jobs", info.RestoredJobs,
		"requeued_jobs", info.RequeuedJobs,
		"failed_requeues", info.FailedRequeues,
		"snapshot_jobs", js.Replay.SnapshotJobs,
		"wal_records", js.Replay.WALRecords,
		"torn_tail", js.Replay.TornTail,
	)
}

// restoreClaims rebuilds the tenant dataset-ownership table from the
// journal's claim records. A claim whose dataset blob no longer exists
// (crash between a blob's removal and its release records, or a removed
// tenant) is dropped — and its journal record released — rather than
// charging a tenant for bytes that are not on disk.
func (s *Server) restoreClaims() int {
	if s.tenants == nil {
		return 0
	}
	restored := 0
	for _, c := range s.st.Journal.DatasetClaims() {
		if _, err := s.registry.Describe(c.Ref); err != nil {
			if rerr := s.st.Journal.ReleaseDataset(c.Ref, c.Tenant); rerr != nil {
				s.log().Warn("releasing stale dataset claim failed",
					"dataset", c.Ref, "tenant", c.Tenant, "err", rerr)
			}
			continue
		}
		s.tenants.restoreClaim(c)
		restored++
	}
	return restored
}

// sweepOrphanBlobs removes committed result, stream and trace blobs
// whose job is absent from the restored job table — the leftovers of a
// deletion (GC eviction, explicit DELETE, retention) that crashed after
// its journal append but before the blob unlink. Running after the job
// table is rebuilt makes the sweep idempotent: a blob either has a live
// record (kept) or none (deleted once, here).
func (s *Server) sweepOrphanBlobs() int {
	swept := 0
	sweepNames := func(names []string, del func(string) error, kind string) {
		for _, id := range names {
			if s.jobs.get(id) != nil {
				continue
			}
			if err := del(id); err != nil {
				s.log().Warn("sweeping orphan blob failed", "kind", kind, "job_id", id, "err", err)
				continue
			}
			swept++
		}
	}
	if names, err := s.st.Results.Names(); err == nil {
		sweepNames(names, s.st.Results.Delete, "result")
	}
	if names, err := s.st.ResultChunks.Names(); err == nil {
		sweepNames(names, s.st.ResultChunks.Delete, "result_stream")
	}
	if names, err := s.st.Traces.Names(); err == nil {
		sweepNames(names, s.st.Traces.Delete, "trace")
	}
	return swept
}
