package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/export"
	"secreta/internal/gen"
	"secreta/internal/store"
)

// legacyAnonymizePayload is the historical fully-materialized payload
// construction, preserved here verbatim as the byte-identity reference
// for the streaming assembler.
func legacyAnonymizePayload(res *engine.Result, cacheHit bool) ([]byte, error) {
	var buf bytes.Buffer
	if err := export.ResultsJSON(&buf, []*engine.Result{res}); err != nil {
		return nil, err
	}
	var data bytes.Buffer
	if err := res.Anonymized.WriteJSON(&data); err != nil {
		return nil, err
	}
	hit, err := json.Marshal(cacheHit)
	if err != nil {
		return nil, err
	}
	return wrap("results", buf.Bytes(), "anonymized", data.Bytes(), "cache_hit", hit)
}

// anonResult runs one real anonymization to feed the payload tests.
func anonResult(t *testing.T) *engine.Result {
	t.Helper()
	ds, err := dataset.LoadFile(filepath.Join("..", "..", "testdata", "patients.csv"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := engine.ConfigFromSpec("cluster+apriori/rmerger")
	if err != nil {
		t.Fatal(err)
	}
	cfg.K, cfg.M, cfg.Delta = 4, 2, 0.5
	if cfg.Hierarchies, err = gen.Hierarchies(ds, 4); err != nil {
		t.Fatal(err)
	}
	if cfg.ItemHierarchy, err = gen.ItemHierarchy(ds, 4); err != nil {
		t.Fatal(err)
	}
	res := engine.Run(ds, cfg)
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestBufferedDocMatchesLegacyBytes pins the tentpole's byte-identity
// criterion at the assembler level: the incrementally written document
// equals the legacy fully-buffered construction byte for byte — from the
// in-RAM interned source and from the on-disk chunked file alike.
func TestBufferedDocMatchesLegacyBytes(t *testing.T) {
	res := anonResult(t)
	for _, cacheHit := range []bool{false, true} {
		legacy, err := legacyAnonymizePayload(res, cacheHit)
		if err != nil {
			t.Fatal(err)
		}
		outcome, err := anonymizeOutcome(res, cacheHit)
		if err != nil {
			t.Fatal(err)
		}

		var fromMem bytes.Buffer
		mem := memRecords{src: retainSource(outcome.records)}
		if err := writeBufferedAnonymize(&fromMem, outcome.meta, mem); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fromMem.Bytes(), legacy) {
			t.Fatalf("cacheHit=%v: streamed document diverges from legacy bytes:\n%s\n---- legacy ----\n%s",
				cacheHit, firstDiff(fromMem.Bytes(), legacy), legacy[:min(400, len(legacy))])
		}

		// Disk path: persist chunked, stream back from the file.
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		s := &Server{st: st}
		if err := s.writeChunkedResult("j-000001", outcome.meta, outcome.records); err != nil {
			t.Fatal(err)
		}
		var fromDisk bytes.Buffer
		disk := diskRecords{chunks: st.ResultChunks, id: "j-000001"}
		if err := writeBufferedAnonymize(&fromDisk, outcome.meta, disk); err != nil {
			t.Fatal(err)
		}
		st.Close()
		if !bytes.Equal(fromDisk.Bytes(), legacy) {
			t.Fatalf("cacheHit=%v: disk-streamed document diverges from legacy bytes:\n%s", cacheHit, firstDiff(fromDisk.Bytes(), legacy))
		}
	}
}

func firstDiff(got, want []byte) string {
	n := min(len(got), len(want))
	for i := 0; i < n; i++ {
		if got[i] != want[i] {
			lo := max(0, i-80)
			return "first divergence at byte " + strings.Repeat("", 0) +
				"\ngot:  ..." + string(got[lo:min(len(got), i+80)]) +
				"\nwant: ..." + string(want[lo:min(len(want), i+80)])
		}
	}
	return "lengths differ"
}

// TestStreamRouteByteIdentity walks the HTTP layer: the NDJSON stream's
// record lines are byte-identical to the compacted records of the
// buffered JSON document, the header carries the same results/cache_hit,
// and Accept negotiation on the buffered route yields the same stream.
func TestStreamRouteByteIdentity(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, ds := patientsJSON(t)
	_, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5},
	})
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}

	buffered := getBody(t, ts.URL+"/jobs/"+id+"/result", "")
	streamed := getBody(t, ts.URL+"/jobs/"+id+"/result/stream", "")
	negotiated := getBody(t, ts.URL+"/jobs/"+id+"/result", "application/x-ndjson")
	if !bytes.Equal(streamed, negotiated) {
		t.Fatal("Accept-negotiated stream diverges from /result/stream")
	}

	lines := strings.Split(strings.TrimRight(string(streamed), "\n"), "\n")
	var hdr struct {
		Records  int             `json:"records"`
		CacheHit bool            `json:"cache_hit"`
		Results  json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("decoding stream header: %v", err)
	}
	if hdr.Records != len(ds.Records) || len(lines)-1 != hdr.Records {
		t.Fatalf("stream has %d record lines, header says %d, dataset has %d", len(lines)-1, hdr.Records, len(ds.Records))
	}

	var doc struct {
		Anonymized struct {
			Records []json.RawMessage `json:"records"`
		} `json:"anonymized"`
		CacheHit bool            `json:"cache_hit"`
		Results  json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(buffered, &doc); err != nil {
		t.Fatalf("decoding buffered document: %v", err)
	}
	if len(doc.Anonymized.Records) != hdr.Records {
		t.Fatalf("buffered document has %d records, stream %d", len(doc.Anonymized.Records), hdr.Records)
	}
	for i, raw := range doc.Anonymized.Records {
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			t.Fatal(err)
		}
		if lines[1+i] != compact.String() {
			t.Fatalf("record %d: stream %q vs buffered-compact %q", i, lines[1+i], compact.String())
		}
	}
	var wantResults, gotResults bytes.Buffer
	if err := json.Compact(&wantResults, doc.Results); err != nil {
		t.Fatal(err)
	}
	if err := json.Compact(&gotResults, hdr.Results); err != nil {
		t.Fatal(err)
	}
	if wantResults.String() != gotResults.String() || doc.CacheHit != hdr.CacheHit {
		t.Fatal("stream header results/cache_hit diverge from the buffered document")
	}

	// A series job has no record stream: the route must refuse, not hang.
	_, evBody := postJSON(t, ts.URL+"/evaluate", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster", K: 3},
	})
	evID := evBody["job"].(string)
	if st := pollDone(t, ts.URL, evID); st != StatusDone {
		t.Fatalf("evaluate finished as %s", st)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs/"+evID+"/result/stream"); code != 406 {
		t.Fatalf("series stream request answered %d, want 406", code)
	}
}

// getBody fetches a URL (optionally with an Accept header) and returns
// the full body.
func getBody(t *testing.T, url, accept string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(bufio.NewReader(resp.Body)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestAcceptsNDJSON pins the negotiation rule: NDJSON must be named
// with a non-zero quality; JSON stays the default otherwise.
func TestAcceptsNDJSON(t *testing.T) {
	cases := []struct {
		accept string
		want   bool
	}{
		{"", false},
		{"application/json", false},
		{"application/x-ndjson", true},
		{"application/ndjson", true},
		{"application/json, application/x-ndjson", true},
		{"application/x-ndjson;q=0.8, application/json", true},
		{"application/json, application/x-ndjson;q=0", false},
		{"application/x-ndjson; q=0.0", false},
		{"Application/X-NDJSON", true},
		{"*/*", false},
	}
	for _, tc := range cases {
		req, err := http.NewRequest(http.MethodGet, "http://x/", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.accept != "" {
			req.Header.Set("Accept", tc.accept)
		}
		if got := acceptsNDJSON(req); got != tc.want {
			t.Errorf("acceptsNDJSON(%q) = %v, want %v", tc.accept, got, tc.want)
		}
	}
}

// TestStreamRouteUnfinishedJob mirrors the buffered route's non-done
// answers on the stream route.
func TestStreamRouteUnfinishedJob(t *testing.T) {
	ts := newTestServer(t)
	if code, _ := getJSON(t, ts.URL+"/jobs/j-999999/result/stream"); code != 404 {
		t.Fatalf("missing job: %d, want 404", code)
	}
}
