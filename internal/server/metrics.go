package server

import (
	"bufio"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// GET /metrics: the server's operational counters in Prometheus text
// exposition format 0.0.4, hand-rendered (the repo takes no dependencies)
// from the same aggregates GET /stats serves as JSON. Every family is
// emitted with # HELP / # TYPE headers, label values are escaped, and
// ordering is deterministic so diffs of two scrapes are meaningful.
//
// The handler sits behind the readiness gate like every data route: while
// journal replay runs the server answers 503, which scrapers surface as a
// down target — exactly right, the server is not serving.

// promContentType is the exposition format version Prometheus expects.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promWriter renders one exposition document. family() starts a metric
// family; sample() emits one sample line for the current family.
type promWriter struct {
	w      *bufio.Writer
	family string
}

func (p *promWriter) start(name, typ, help string) {
	p.family = name
	fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes `name{labels} value`. suffix extends the family name
// (summary _sum/_count); labels are emitted in the given order.
func (p *promWriter) sample(suffix string, labels [][2]string, v float64) {
	p.w.WriteString(p.family)
	p.w.WriteString(suffix)
	if len(labels) > 0 {
		p.w.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				p.w.WriteByte(',')
			}
			fmt.Fprintf(p.w, "%s=%q", kv[0], escapeLabel(kv[1]))
		}
		p.w.WriteByte('}')
	}
	p.w.WriteByte(' ')
	p.w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.w.WriteByte('\n')
}

// escapeLabel applies the exposition-format label escapes: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// jobStates fixes the order /metrics reports job-state gauges in; every
// state appears on every scrape (zero-filled) so dashboards never see a
// series blink in and out.
var jobStates = []Status{
	StatusQueued, StatusRunning, StatusDone, StatusFailed, StatusCancelled, StatusTimedOut,
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", promContentType)
	bw := bufio.NewWriterSize(w, 16<<10)
	p := &promWriter{w: bw}

	counts := s.jobs.counts()
	p.start("secreta_jobs", "gauge", "Jobs in the job table by state.")
	for _, st := range jobStates {
		p.sample("", [][2]string{{"state", string(st)}}, float64(counts[st]))
	}

	p.start("secreta_queue_depth", "gauge", "Jobs waiting for an admission slot.")
	p.sample("", nil, float64(counts[StatusQueued]))
	p.start("secreta_job_slots", "gauge", "Admission slots configured (max concurrent jobs).")
	p.sample("", nil, float64(cap(s.slots)))
	p.start("secreta_job_slots_in_use", "gauge", "Admission slots currently held by running jobs.")
	p.sample("", nil, float64(len(s.slots)))

	phases := s.phases.quantiles()
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	p.start("secreta_phase_latency_seconds", "summary",
		"Per-phase execution latency (rolling-window quantiles, lifetime sum/count).")
	for _, n := range names {
		q := phases[n]
		p.sample("", [][2]string{{"phase", n}, {"quantile", "0.5"}}, q.Q50)
		p.sample("", [][2]string{{"phase", n}, {"quantile", "0.95"}}, q.Q95)
		p.sample("_sum", [][2]string{{"phase", n}}, q.SumSec)
		p.sample("_count", [][2]string{{"phase", n}}, float64(q.Count))
	}

	cs := s.cache.Stats()
	p.start("secreta_cache_hits_total", "counter", "Result cache hits served from RAM.")
	p.sample("", nil, float64(cs.Hits))
	p.start("secreta_cache_misses_total", "counter", "Result cache misses (computed fresh).")
	p.sample("", nil, float64(cs.Misses))
	p.start("secreta_cache_disk_hits_total", "counter", "Cache hits rehydrated from the disk backing.")
	p.sample("", nil, float64(cs.DiskHits))
	p.start("secreta_cache_disk_errors_total", "counter", "Disk-backing failures (degraded to recompute).")
	p.sample("", nil, float64(cs.DiskErrors))
	p.start("secreta_cache_evictions_total", "counter", "Cache entries evicted by the size caps.")
	p.sample("", nil, float64(cs.Evictions))
	p.start("secreta_cache_rejected_total", "counter", "Cache puts refused for exceeding the byte cap.")
	p.sample("", nil, float64(cs.Rejected))
	p.start("secreta_cache_entries", "gauge", "Result cache entries resident in RAM.")
	p.sample("", nil, float64(cs.Entries))
	p.start("secreta_cache_bytes", "gauge", "Result cache bytes resident in RAM.")
	p.sample("", nil, float64(cs.Bytes))

	rs := s.registry.Stats()
	p.start("secreta_registry_datasets", "gauge", "Datasets resident in the upload registry.")
	p.sample("", nil, float64(rs.Entries))
	p.start("secreta_registry_bytes", "gauge", "Bytes resident in the upload registry.")
	p.sample("", nil, float64(rs.Bytes))
	p.start("secreta_registry_pinned", "gauge", "Registry entries pinned by in-flight jobs.")
	p.sample("", nil, float64(rs.Pinned))
	p.start("secreta_registry_hits_total", "counter", "Registry lookups that found their dataset.")
	p.sample("", nil, float64(rs.Hits))
	p.start("secreta_registry_misses_total", "counter", "Registry lookups that missed.")
	p.sample("", nil, float64(rs.Misses))
	p.start("secreta_registry_evictions_total", "counter", "Registry entries evicted by the caps.")
	p.sample("", nil, float64(rs.Evictions))

	p.start("secreta_streaming_active", "gauge", "NDJSON result streams being served right now.")
	p.sample("", nil, float64(s.streams.active.Load()))
	p.start("secreta_streaming_served_total", "counter", "NDJSON result streams served to completion.")
	p.sample("", nil, float64(s.streams.served.Load()))
	p.start("secreta_streaming_client_disconnects_total", "counter", "NDJSON streams cut short by the client.")
	p.sample("", nil, float64(s.streams.disconnects.Load()))

	if s.st != nil {
		ss := s.st.Stats()
		kinds := []struct {
			kind         string
			count, bytes float64
		}{
			{"datasets", float64(ss.Datasets.Count), float64(ss.Datasets.Bytes)},
			{"results", float64(ss.Results.Count), float64(ss.Results.Bytes)},
			{"result_streams", float64(ss.ResultStreams.Count), float64(ss.ResultStreams.Bytes)},
			{"traces", float64(ss.Traces.Count), float64(ss.Traces.Bytes)},
			{"result_cache", float64(ss.ResultCache.Count), float64(ss.ResultCache.Bytes)},
		}
		p.start("secreta_store_blob_count", "gauge", "Durable blobs on disk by kind.")
		for _, k := range kinds {
			p.sample("", [][2]string{{"kind", k.kind}}, k.count)
		}
		p.start("secreta_store_blob_bytes", "gauge", "Durable blob bytes on disk by kind.")
		for _, k := range kinds {
			p.sample("", [][2]string{{"kind", k.kind}}, k.bytes)
		}
		p.start("secreta_store_journal_jobs", "gauge", "Jobs tracked by the durable journal.")
		p.sample("", nil, float64(ss.Journal.Jobs))
		p.start("secreta_store_wal_records", "gauge", "WAL records appended since the last snapshot.")
		p.sample("", nil, float64(ss.Journal.WALRecords))
		p.start("secreta_store_wal_bytes", "gauge", "WAL bytes on disk since the last snapshot.")
		p.sample("", nil, float64(ss.Journal.WALBytes))
		p.start("secreta_store_trim_errors_total", "counter", "Failed deletions/listings across trim and GC passes.")
		p.sample("", nil, float64(ss.TrimErrors))
		p.start("secreta_store_io_retries_total", "counter", "Transient I/O errors absorbed by the store's retry layer.")
		p.sample("", nil, float64(ss.IORetries))

		d := s.degraded.view()
		p.start("secreta_degraded", "gauge", "1 while the server is in degraded read-only mode after a permanent storage fault.")
		degraded := 0.0
		if d.Active {
			degraded = 1
		}
		p.sample("", nil, degraded)
		p.start("secreta_degraded_entered_total", "counter", "Healthy-to-degraded transitions since boot.")
		p.sample("", nil, float64(d.Entered))
		p.start("secreta_degraded_probes_total", "counter", "Storage recovery probes run while degraded.")
		p.sample("", nil, float64(d.Probes))
	}

	if s.tenants != nil {
		views := s.tenants.views(s.jobs.countsByTenant())
		p.start("secreta_tenant_jobs", "gauge", "Jobs in the job table by tenant and state.")
		for _, tv := range views {
			for _, st := range jobStates {
				p.sample("", [][2]string{{"tenant", tv.ID}, {"state", string(st)}}, float64(tv.JobsByState[st]))
			}
		}
		p.start("secreta_tenant_stored_bytes", "gauge", "Dataset bytes claimed by each tenant (the stored-bytes quota unit).")
		for _, tv := range views {
			p.sample("", [][2]string{{"tenant", tv.ID}}, float64(tv.StoredBytes))
		}
		p.start("secreta_tenant_weight", "gauge", "Weighted round-robin dispatch weight per tenant.")
		for _, tv := range views {
			p.sample("", [][2]string{{"tenant", tv.ID}}, float64(tv.Weight))
		}
		p.start("secreta_tenant_rate_limited_total", "counter", "POSTs answered 429 by the tenant's token bucket.")
		for _, tv := range views {
			p.sample("", [][2]string{{"tenant", tv.ID}}, float64(tv.RateLimitedTotal))
		}
		p.start("secreta_tenant_quota_rejects_total", "counter", "Requests rejected by a tenant quota (stored bytes or pending jobs).")
		for _, tv := range views {
			p.sample("", [][2]string{{"tenant", tv.ID}}, float64(tv.QuotaRejectsTotal))
		}
		p.start("secreta_tenant_dispatched_total", "counter", "Job slots granted to each tenant by the round-robin dispatcher.")
		for _, tv := range views {
			p.sample("", [][2]string{{"tenant", tv.ID}}, float64(tv.DispatchedTotal))
		}
	}

	if s.gc != nil {
		g := s.gc.view()
		p.start("secreta_gc_max_bytes", "gauge", "Configured data-directory byte cap (-data-max-bytes).")
		p.sample("", nil, float64(g.MaxBytes))
		p.start("secreta_gc_usage_bytes", "gauge", "Data-directory bytes measured by the last retention sweep.")
		p.sample("", nil, float64(g.UsageBytes))
		p.start("secreta_gc_sweeps_total", "counter", "Retention sweeps run.")
		p.sample("", nil, float64(g.Sweeps))
		p.start("secreta_gc_evicted_jobs_total", "counter", "Terminal jobs evicted (with results and traces) by retention sweeps.")
		p.sample("", nil, float64(g.EvictedJobs))
		p.start("secreta_gc_evicted_datasets_total", "counter", "Unreferenced dataset blobs evicted by retention sweeps.")
		p.sample("", nil, float64(g.EvictedDatasets))
		p.start("secreta_gc_cache_trimmed_total", "counter", "Disk cache entries dropped by retention sweeps.")
		p.sample("", nil, float64(g.CacheTrimmed))
		p.start("secreta_gc_errors_total", "counter", "Evictions that failed (stuck files skipped, never wedging the sweep).")
		p.sample("", nil, float64(g.Errors))
	}

	p.start("secreta_ready", "gauge", "1 once journal replay has completed and traffic is admitted.")
	ready := 0.0
	if s.ready.Load() {
		ready = 1
	}
	p.sample("", nil, ready)

	bw.Flush()
}
