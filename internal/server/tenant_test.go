package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"secreta/internal/dataset"
)

// ---- multi-tenant test helpers ----

// newTenantServer builds a server in multi-tenant mode over opts (which
// must not set Tenants itself) and serves it.
func newTenantServer(t *testing.T, opts Options, cfgs ...TenantConfig) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	opts.Tenants = cfgs
	srv := mustNew(t, ctx, opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		cancel()
		ts.Close()
	})
	return srv, ts
}

// authedDo sends one request with the given API key (via X-API-Key; ""
// sends no key) and returns the raw response. The caller owns the body.
func authedDo(t *testing.T, method, url, key string, body []byte) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// authedJSON is authedDo + JSON body marshalling + map decoding.
func authedJSON(t *testing.T, method, url, key string, body any) (*http.Response, map[string]any) {
	t.Helper()
	var raw []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		raw = b
	}
	resp := authedDo(t, method, url, key, raw)
	return resp, decodeMap(t, resp)
}

// authedUpload posts raw dataset JSON under the given key and returns
// (code, dataset_ref, body).
func authedUpload(t *testing.T, base, key string, raw json.RawMessage) (int, string, map[string]any) {
	t.Helper()
	resp := authedDo(t, http.MethodPost, base+"/datasets", key, raw)
	body := decodeMap(t, resp)
	ref, _ := body["dataset_ref"].(string)
	return resp.StatusCode, ref, body
}

// submitAs submits an anonymize job under key and returns its job ID.
func submitAs(t *testing.T, base, key string, req any) string {
	t.Helper()
	resp, body := authedJSON(t, http.MethodPost, base+"/anonymize", key, req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit as %q: code=%d body=%v", key, resp.StatusCode, body)
	}
	return body["job"].(string)
}

// pollDoneAs is pollDone with an API key.
func pollDoneAs(t *testing.T, base, key, id string) Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := authedJSON(t, http.MethodGet, base+"/jobs/"+id, key, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("polling job %s: code=%d body=%v", id, resp.StatusCode, body)
		}
		if st := Status(body["status"].(string)); st.Terminal() {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in 30s", id)
	return ""
}

// statsTenant fetches /stats and returns the named tenant's view block.
func statsTenant(t *testing.T, base, id string) map[string]any {
	t.Helper()
	code, body := getJSON(t, base+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: code=%d", code)
	}
	for _, v := range body["tenants"].([]any) {
		tv := v.(map[string]any)
		if tv["id"] == id {
			return tv
		}
	}
	t.Fatalf("tenant %q missing from /stats tenants block: %v", id, body["tenants"])
	return nil
}

// ---- config validation ----

func TestValidateTenants(t *testing.T) {
	good := TenantConfig{ID: "acme", Key: "k-acme"}
	cases := []struct {
		name string
		cfgs []TenantConfig
		ok   bool
	}{
		{"empty set", nil, false},
		{"one tenant", []TenantConfig{good}, true},
		{"two tenants", []TenantConfig{good, {ID: "beta", Key: "k-beta", Weight: 3}}, true},
		{"empty id", []TenantConfig{{ID: "", Key: "k"}}, false},
		{"id with space", []TenantConfig{{ID: "a b", Key: "k"}}, false},
		{"id with quote", []TenantConfig{{ID: `a"b`, Key: "k"}}, false},
		{"id leading dash", []TenantConfig{{ID: "-a", Key: "k"}}, false},
		{"duplicate id", []TenantConfig{good, {ID: "acme", Key: "k2"}}, false},
		{"empty key", []TenantConfig{{ID: "acme", Key: ""}}, false},
		{"key with whitespace", []TenantConfig{{ID: "acme", Key: "k ey"}}, false},
		{"duplicate key", []TenantConfig{good, {ID: "beta", Key: "k-acme"}}, false},
		{"negative weight", []TenantConfig{{ID: "acme", Key: "k", Weight: -1}}, false},
		{"negative rate", []TenantConfig{{ID: "acme", Key: "k", RatePerSec: -1}}, false},
		{"negative quota", []TenantConfig{{ID: "acme", Key: "k", MaxStoredBytes: -1}}, false},
	}
	for _, tc := range cases {
		if err := ValidateTenants(tc.cfgs); (err == nil) != tc.ok {
			t.Errorf("%s: err=%v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestLoadTenantsFile(t *testing.T) {
	if cfgs, err := LoadTenantsFile(""); err != nil || cfgs != nil {
		t.Fatalf("empty path: got %v, %v; want nil, nil", cfgs, err)
	}
	if _, err := LoadTenantsFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file: want error")
	}

	dir := t.TempDir()
	want := []TenantConfig{
		{ID: "acme", Key: "k-acme", Weight: 3, RatePerSec: 2, Burst: 5, MaxStoredBytes: 1 << 20, MaxConcurrentJobs: 2, MaxPendingJobs: 10},
		{ID: "beta", Key: "k-beta"},
	}
	path := filepath.Join(dir, "tenants.json")
	if err := os.WriteFile(path, encodeTenantsFile(want), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTenantsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// Unknown fields are a config typo, not something to ignore silently.
	typo := filepath.Join(dir, "typo.json")
	if err := os.WriteFile(typo, []byte(`{"tenants":[{"id":"a","key":"k","max_stored_byte":1}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(typo); err == nil {
		t.Fatal("unknown field: want error")
	}

	invalid := filepath.Join(dir, "dup.json")
	if err := os.WriteFile(invalid, encodeTenantsFile([]TenantConfig{{ID: "a", Key: "k"}, {ID: "a", Key: "k2"}}), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTenantsFile(invalid); err == nil {
		t.Fatal("duplicate id: want validation error")
	}
}

// ---- auth gate ----

func TestTenantAuthGate(t *testing.T) {
	_, ts := newTenantServer(t, Options{Workers: 1},
		TenantConfig{ID: "acme", Key: "k-acme"})

	// No key and unknown key are both 401, indistinguishably.
	for _, key := range []string{"", "k-wrong"} {
		resp := authedDo(t, http.MethodGet, ts.URL+"/jobs", key, nil)
		body := decodeMap(t, resp)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("key %q: code=%d, want 401", key, resp.StatusCode)
		}
		if body["reason"] != "unauthorized" {
			t.Fatalf("key %q: reason=%v, want unauthorized", key, body["reason"])
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("key %q: missing WWW-Authenticate challenge", key)
		}
	}

	// Both header forms authenticate.
	if resp := authedDo(t, http.MethodGet, ts.URL+"/jobs", "k-acme", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("X-API-Key: code=%d, want 200", resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer k-acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("Bearer: code=%d, want 200", resp.StatusCode)
	}

	// Operator surfaces stay open: no key required even in tenant mode.
	for _, path := range []string{"/healthz", "/stats", "/metrics", "/dashboard", "/dashboard/data"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("open route %s: code=%d, want 200", path, r.StatusCode)
		}
	}
}

// TestSingleTenantModeUnchanged pins the auth-off contract: without a
// tenants file there is no key check, no rate-limit headers, and no
// tenant field on jobs — the single-tenant wire format is untouched.
func TestSingleTenantModeUnchanged(t *testing.T) {
	ts := newTestServer(t)
	resp := authedDo(t, http.MethodPost, ts.URL+"/datasets", "", smallDatasetJSON(t, "st"))
	body := decodeMap(t, resp)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: code=%d body=%v", resp.StatusCode, body)
	}
	for _, h := range []string{"X-RateLimit-Limit", "X-RateLimit-Remaining", "X-RateLimit-Reset", "WWW-Authenticate"} {
		if v := resp.Header.Get(h); v != "" {
			t.Fatalf("single-tenant response leaked %s=%q", h, v)
		}
	}
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": body["dataset_ref"],
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
	})
	if _, has := sub["tenant"]; has {
		t.Fatalf("single-tenant job view has a tenant field: %v", sub)
	}
	// /stats has no tenants or gc blocks in single-tenant, memory-only mode.
	_, stats := getJSON(t, ts.URL+"/stats")
	if _, has := stats["tenants"]; has {
		t.Fatal("single-tenant /stats has a tenants block")
	}
	if _, has := stats["gc"]; has {
		t.Fatal("GC-less /stats has a gc block")
	}
}

// ---- rate limiting ----

// TestTenantRateLimitHeaders drives the token bucket on an injected
// clock: allowed POSTs carry X-RateLimit-*, the 429 adds Retry-After and
// the machine-readable reason, and advancing the clock refills tokens.
func TestTenantRateLimitHeaders(t *testing.T) {
	var mu sync.Mutex
	now := time.Unix(1_700_000_000, 0)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	_, ts := newTenantServer(t, Options{Workers: 1, Now: clock},
		TenantConfig{ID: "acme", Key: "k-acme", RatePerSec: 1, Burst: 2},
		TenantConfig{ID: "free", Key: "k-free"})

	post := func() *http.Response {
		resp := authedDo(t, http.MethodPost, ts.URL+"/datasets", "k-acme", smallDatasetJSON(t, "rl"))
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	// Burst of 2: two POSTs pass at the same instant, remaining 1 then 0.
	for i, wantRemaining := range []string{"1", "0"} {
		resp := post()
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("POST %d rate limited inside burst", i)
		}
		if got := resp.Header.Get("X-RateLimit-Limit"); got != "2" {
			t.Fatalf("POST %d: X-RateLimit-Limit=%q, want 2", i, got)
		}
		if got := resp.Header.Get("X-RateLimit-Remaining"); got != wantRemaining {
			t.Fatalf("POST %d: X-RateLimit-Remaining=%q, want %q", i, got, wantRemaining)
		}
		if resp.Header.Get("X-RateLimit-Reset") == "" {
			t.Fatalf("POST %d: missing X-RateLimit-Reset", i)
		}
	}
	// Third POST at the same instant: 429 with the full header set.
	resp := authedDo(t, http.MethodPost, ts.URL+"/datasets", "k-acme", smallDatasetJSON(t, "rl"))
	body := decodeMap(t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate POST: code=%d, want 429", resp.StatusCode)
	}
	if body["reason"] != "rate_limited" {
		t.Fatalf("over-rate POST: reason=%v, want rate_limited", body["reason"])
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After=%q, want 1 (1 token at 1/s)", got)
	}
	if got := resp.Header.Get("X-RateLimit-Remaining"); got != "0" {
		t.Fatalf("429 X-RateLimit-Remaining=%q, want 0", got)
	}
	// Reset points at the unix second the bucket is full again: 2 tokens
	// to refill at 1/s from empty.
	if got := resp.Header.Get("X-RateLimit-Reset"); got != fmt.Sprint(clock().Unix()+2) {
		t.Fatalf("429 X-RateLimit-Reset=%q, want %d", got, clock().Unix()+2)
	}

	// One second later one token is back.
	advance(time.Second)
	if resp := post(); resp.StatusCode == http.StatusTooManyRequests {
		t.Fatal("POST after refill still rate limited")
	}

	// GETs never spend tokens: polling is free even for a drained bucket.
	for i := 0; i < 5; i++ {
		r := authedDo(t, http.MethodGet, ts.URL+"/jobs", "k-acme", nil)
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %d throttled: code=%d", i, r.StatusCode)
		}
	}

	// A tenant with no rate configured sees no rate headers at all.
	r := authedDo(t, http.MethodPost, ts.URL+"/datasets", "k-free", smallDatasetJSON(t, "fr"))
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusCreated {
		t.Fatalf("unlimited tenant POST: code=%d", r.StatusCode)
	}
	if v := r.Header.Get("X-RateLimit-Limit"); v != "" {
		t.Fatalf("unlimited tenant got X-RateLimit-Limit=%q", v)
	}

	// The counter is visible per tenant on /stats.
	if got := statsTenant(t, ts.URL, "acme")["rate_limited_total"].(float64); got != 1 {
		t.Fatalf("acme rate_limited_total=%v, want 1", got)
	}
}

// ---- quotas ----

func TestTenantStoredBytesQuota(t *testing.T) {
	raw1 := smallDatasetJSON(t, "q1")
	ds1, err := dataset.ReadJSON(bytes.NewReader(raw1))
	if err != nil {
		t.Fatal(err)
	}
	// Room for one copy of ds1 plus slack, but not for a second dataset.
	quota := ds1.ApproxBytes() + ds1.ApproxBytes()/2
	_, ts := newTenantServer(t, Options{Workers: 1},
		TenantConfig{ID: "acme", Key: "k-acme", MaxStoredBytes: quota})

	code, ref1, _ := authedUpload(t, ts.URL, "k-acme", raw1)
	if code != http.StatusCreated {
		t.Fatalf("first upload: code=%d", code)
	}
	// A second, distinct dataset would exceed the quota: 403 with reason.
	resp := authedDo(t, http.MethodPost, ts.URL+"/datasets", "k-acme", smallDatasetJSON(t, "q2"))
	body := decodeMap(t, resp)
	if resp.StatusCode != http.StatusForbidden || body["reason"] != "quota_stored_bytes" {
		t.Fatalf("over-quota upload: code=%d reason=%v, want 403 quota_stored_bytes", resp.StatusCode, body["reason"])
	}
	// Re-uploading content the tenant already claims costs nothing.
	if code, ref, _ := authedUpload(t, ts.URL, "k-acme", raw1); code != http.StatusOK || ref != ref1 {
		t.Fatalf("re-upload of claimed content: code=%d ref=%q, want 200 %q", code, ref, ref1)
	}
	tv := statsTenant(t, ts.URL, "acme")
	if got := tv["stored_bytes"].(float64); int64(got) != ds1.ApproxBytes() {
		t.Fatalf("stored_bytes=%v, want %d", got, ds1.ApproxBytes())
	}
	if got := tv["quota_rejects_total"].(float64); got != 1 {
		t.Fatalf("quota_rejects_total=%v, want 1", got)
	}
	// Deleting the claim frees the quota.
	if resp, _ := authedJSON(t, http.MethodDelete, ts.URL+"/datasets/"+ref1, "k-acme", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: code=%d", resp.StatusCode)
	}
	if code, _, b := authedUpload(t, ts.URL, "k-acme", smallDatasetJSON(t, "q2")); code != http.StatusCreated {
		t.Fatalf("upload after freeing quota: code=%d body=%v", code, b)
	}
}

func TestTenantPendingJobsQuota(t *testing.T) {
	srv, ts := newTenantServer(t, Options{Workers: 1, MaxConcurrentJobs: 1},
		TenantConfig{ID: "acme", Key: "k-acme", MaxConcurrentJobs: 1, MaxPendingJobs: 1})
	_, ref, _ := authedUpload(t, ts.URL, "k-acme", smallDatasetJSON(t, "pq"))
	req := map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
	}

	// Pretend the tenant is already running at its concurrency cap, so
	// the first submission stays deterministically queued.
	srv.dispatch.mu.Lock()
	srv.dispatch.running["acme"] = 1
	srv.dispatch.mu.Unlock()

	id1 := submitAs(t, ts.URL, "k-acme", req)
	resp, body := authedJSON(t, http.MethodPost, ts.URL+"/anonymize", "k-acme", req)
	if resp.StatusCode != http.StatusTooManyRequests || body["reason"] != "quota_pending_jobs" {
		t.Fatalf("over-quota submit: code=%d reason=%v, want 429 quota_pending_jobs", resp.StatusCode, body["reason"])
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 is missing Retry-After")
	}
	if got := statsTenant(t, ts.URL, "acme")["quota_rejects_total"].(float64); got != 1 {
		t.Fatalf("quota_rejects_total=%v, want 1", got)
	}

	// Drop the synthetic running credit; the queued job dispatches and
	// completes, and the quota admits submissions again.
	srv.dispatch.mu.Lock()
	delete(srv.dispatch.running, "acme")
	srv.dispatch.mu.Unlock()
	srv.dispatch.cond.Broadcast()
	if st := pollDoneAs(t, ts.URL, "k-acme", id1); st != StatusDone {
		t.Fatalf("queued job ended %s, want done", st)
	}
	id2 := submitAs(t, ts.URL, "k-acme", req)
	if st := pollDoneAs(t, ts.URL, "k-acme", id2); st != StatusDone {
		t.Fatalf("post-quota job ended %s, want done", st)
	}
}

// ---- scoping ----

// TestTenantJobScopingAndCursor pins that GET /jobs lists only the
// caller's tenant, that job detail routes answer 404 across tenants, and
// that the after= cursor is a pure sequence watermark — naming another
// tenant's job ID leaks nothing.
func TestTenantJobScopingAndCursor(t *testing.T) {
	_, ts := newTenantServer(t, Options{Workers: 1},
		TenantConfig{ID: "alpha", Key: "k-alpha"},
		TenantConfig{ID: "beta", Key: "k-beta"})

	_, refA, _ := authedUpload(t, ts.URL, "k-alpha", smallDatasetJSON(t, "ja"))
	_, refB, _ := authedUpload(t, ts.URL, "k-beta", smallDatasetJSON(t, "jb"))
	reqFor := func(ref string) map[string]any {
		return map[string]any{
			"dataset_ref": ref,
			"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
		}
	}
	a1 := submitAs(t, ts.URL, "k-alpha", reqFor(refA))
	a2 := submitAs(t, ts.URL, "k-alpha", reqFor(refA))
	b1 := submitAs(t, ts.URL, "k-beta", reqFor(refB))
	for _, j := range []struct{ key, id string }{{"k-alpha", a1}, {"k-alpha", a2}, {"k-beta", b1}} {
		if st := pollDoneAs(t, ts.URL, j.key, j.id); st != StatusDone {
			t.Fatalf("job %s ended %s, want done", j.id, st)
		}
	}

	listIDs := func(key, query string) ([]string, int) {
		resp, body := authedJSON(t, http.MethodGet, ts.URL+"/jobs"+query, key, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q as %s: code=%d", query, key, resp.StatusCode)
		}
		var ids []string
		for _, v := range body["jobs"].([]any) {
			jv := v.(map[string]any)
			ids = append(ids, jv["job"].(string))
		}
		return ids, int(body["total"].(float64))
	}
	if ids, total := listIDs("k-alpha", ""); total != 2 || len(ids) != 2 || ids[0] != a1 || ids[1] != a2 {
		t.Fatalf("alpha list: ids=%v total=%d, want [%s %s] 2", ids, total, a1, a2)
	}
	if ids, total := listIDs("k-beta", ""); total != 1 || len(ids) != 1 || ids[0] != b1 {
		t.Fatalf("beta list: ids=%v total=%d, want [%s] 1", ids, total, b1)
	}

	// The cursor cannot leak: beta paging "after alpha's first job" sees
	// only beta's own jobs; alpha paging "after beta's job" sees nothing
	// foreign (its own jobs are older than the watermark).
	if ids, total := listIDs("k-beta", "?after="+a1); total != 1 || len(ids) != 1 || ids[0] != b1 {
		t.Fatalf("beta ?after=%s: ids=%v total=%d, want only %s", a1, ids, total, b1)
	}
	if ids, total := listIDs("k-alpha", "?after="+b1); len(ids) != 0 || total != 2 {
		t.Fatalf("alpha ?after=%s: ids=%v total=%d, want no rows, total 2", b1, ids, total)
	}

	// Detail routes: another tenant's job is a 404, byte-identical in kind
	// to a job that never existed.
	for _, path := range []string{"/jobs/" + a1, "/jobs/" + a1 + "/result", "/jobs/" + a1 + "/trace"} {
		resp, _ := authedJSON(t, http.MethodGet, ts.URL+path, "k-beta", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s as beta: code=%d, want 404", path, resp.StatusCode)
		}
	}
	if resp, _ := authedJSON(t, http.MethodDelete, ts.URL+"/jobs/"+a1, "k-beta", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("DELETE foreign job: code=%d, want 404", resp.StatusCode)
	}
	// The owner still sees everything, with the tenant stamped.
	resp, body := authedJSON(t, http.MethodGet, ts.URL+"/jobs/"+a1, "k-alpha", nil)
	if resp.StatusCode != http.StatusOK || body["tenant"] != "alpha" {
		t.Fatalf("owner job view: code=%d tenant=%v", resp.StatusCode, body["tenant"])
	}
}

// TestTenantDatasetScopingAndSharedBlob pins dataset scoping (list, info,
// delete are all per-claim) and the content-addressed sharing contract:
// two tenants uploading identical bytes share one blob, and one tenant's
// delete only releases its own claim.
func TestTenantDatasetScopingAndSharedBlob(t *testing.T) {
	srv, ts := newTenantServer(t, Options{Workers: 1},
		TenantConfig{ID: "alpha", Key: "k-alpha"},
		TenantConfig{ID: "beta", Key: "k-beta"})

	shared := smallDatasetJSON(t, "sh")
	_, refShared, _ := authedUpload(t, ts.URL, "k-alpha", shared)
	codeB, refSharedB, _ := authedUpload(t, ts.URL, "k-beta", shared)
	if refSharedB != refShared {
		t.Fatalf("identical uploads got different refs: %q vs %q", refShared, refSharedB)
	}
	// The blob already existed; beta's upload is 200, not 201, but it
	// creates beta's own claim.
	if codeB != http.StatusOK {
		t.Fatalf("beta upload of shared content: code=%d, want 200", codeB)
	}
	_, refOwn, _ := authedUpload(t, ts.URL, "k-beta", smallDatasetJSON(t, "own"))

	// Listing is claim-scoped.
	listRefs := func(key string) []string {
		resp, body := authedJSON(t, http.MethodGet, ts.URL+"/datasets", key, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list datasets as %s: code=%d", key, resp.StatusCode)
		}
		var refs []string
		for _, v := range body["datasets"].([]any) {
			refs = append(refs, v.(map[string]any)["dataset_ref"].(string))
		}
		return refs
	}
	if got := listRefs("k-alpha"); len(got) != 1 || got[0] != refShared {
		t.Fatalf("alpha dataset list=%v, want [%s]", got, refShared)
	}
	if got := strings.Join(listRefs("k-beta"), ","); !strings.Contains(got, refShared) || !strings.Contains(got, refOwn) {
		t.Fatalf("beta dataset list=%v, want both %s and %s", got, refShared, refOwn)
	}

	// Cross-tenant info/delete on an unclaimed ref: 404, like any unknown.
	if resp, _ := authedJSON(t, http.MethodGet, ts.URL+"/datasets/"+refOwn, "k-alpha", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign dataset info: code=%d, want 404", resp.StatusCode)
	}
	if resp, _ := authedJSON(t, http.MethodDelete, ts.URL+"/datasets/"+refOwn, "k-alpha", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign dataset delete: code=%d, want 404", resp.StatusCode)
	}

	// Alpha's delete releases only alpha's claim: beta keeps the shared
	// dataset, and a job of beta's over it still runs.
	if resp, _ := authedJSON(t, http.MethodDelete, ts.URL+"/datasets/"+refShared, "k-alpha", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("alpha delete of shared ref: code=%d", resp.StatusCode)
	}
	if resp, _ := authedJSON(t, http.MethodGet, ts.URL+"/datasets/"+refShared, "k-alpha", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("alpha sees released ref: code=%d, want 404", resp.StatusCode)
	}
	if resp, _ := authedJSON(t, http.MethodGet, ts.URL+"/datasets/"+refShared, "k-beta", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta lost the shared ref after alpha's delete: code=%d", resp.StatusCode)
	}
	id := submitAs(t, ts.URL, "k-beta", map[string]any{
		"dataset_ref": refShared,
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
	})
	if st := pollDoneAs(t, ts.URL, "k-beta", id); st != StatusDone {
		t.Fatalf("beta job over shared ref ended %s, want done", st)
	}
	// A job submission naming a ref the tenant never claimed is a 404 too.
	resp, body := authedJSON(t, http.MethodPost, ts.URL+"/anonymize", "k-alpha", map[string]any{
		"dataset_ref": refOwn,
		"config":      map[string]any{"algo": "apriori", "k": 2, "m": 1},
	})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("submit over foreign ref: code=%d body=%v, want 404", resp.StatusCode, body)
	}
	// Beta's final delete removes the blob for real.
	if resp, _ := authedJSON(t, http.MethodDelete, ts.URL+"/datasets/"+refShared, "k-beta", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("beta delete: code=%d", resp.StatusCode)
	}
	if n := srv.tenants.claimCount(refShared); n != 0 {
		t.Fatalf("claims on released ref: %d, want 0", n)
	}
}
