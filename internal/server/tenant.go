package server

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secreta/internal/store"
)

// Multi-tenant scoping: with Options.Tenants configured (the
// -tenants-file), every data route requires an API key (Authorization:
// Bearer <key> or X-API-Key: <key>) and resolves to a tenant. Datasets
// and jobs are stamped with their owning tenant — cross-tenant reads and
// deletes answer 404, exactly as if the resource did not exist, so a
// tenant cannot even probe for another tenant's content-addressed refs.
// Ownership is journaled (job records carry the tenant; dataset claims
// are their own WAL ops), so scoping survives a restart. Admission is
// tenant-fair: per-tenant token buckets gate POSTs (429 + Retry-After +
// X-RateLimit-* headers), stored-bytes and pending-jobs quotas answer
// 403/429 with a machine-readable reason, and the dispatcher in
// dispatch.go shares the job slots by weighted round-robin instead of
// FIFO. Without a tenants file, none of this engages and the server
// behaves exactly as before.

// TenantConfig is one entry of the tenants file.
type TenantConfig struct {
	// ID names the tenant in job records, metrics labels and logs.
	ID string `json:"id"`
	// Key is the API key clients present. Keys are compared literally.
	Key string `json:"key"`
	// Weight is the tenant's share of the job slots under weighted
	// round-robin dispatch (default 1).
	Weight int `json:"weight,omitempty"`
	// RatePerSec caps the tenant's POST admission rate via a token
	// bucket; 0 disables rate limiting for the tenant.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	// Burst is the bucket capacity (default: ceil(RatePerSec), min 1).
	Burst int `json:"burst,omitempty"`
	// MaxStoredBytes caps the tenant's claimed dataset bytes (approximate
	// in-RAM size, the registry's cost unit); 0 is unlimited.
	MaxStoredBytes int64 `json:"max_stored_bytes,omitempty"`
	// MaxConcurrentJobs caps the tenant's simultaneously running jobs; 0
	// is unlimited (the server-wide slot count still applies).
	MaxConcurrentJobs int `json:"max_concurrent_jobs,omitempty"`
	// MaxPendingJobs caps the tenant's queued+running jobs; past it
	// submissions answer 429 with reason quota_pending_jobs. 0 is
	// unlimited (the server-wide -max-pending still applies).
	MaxPendingJobs int `json:"max_pending_jobs,omitempty"`
}

// tenantsFile is the JSON document -tenants-file points at.
type tenantsFile struct {
	Tenants []TenantConfig `json:"tenants"`
}

// tenantIDPattern keeps tenant IDs safe as metrics label values and log
// fields: no quotes, whitespace or escapes to smuggle.
var tenantIDPattern = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// LoadTenantsFile reads and validates a tenants file. An empty path
// returns nil (single-tenant mode).
func LoadTenantsFile(path string) ([]TenantConfig, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tenants file: %w", err)
	}
	var tf tenantsFile
	if err := decodeStrict(data, &tf); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	if err := ValidateTenants(tf.Tenants); err != nil {
		return nil, fmt.Errorf("tenants file %s: %w", path, err)
	}
	return tf.Tenants, nil
}

// ValidateTenants checks a tenant set for the invariants the server
// depends on: at least one tenant, label-safe unique IDs, unique
// non-empty keys, and non-negative tunables.
func ValidateTenants(cfgs []TenantConfig) error {
	if len(cfgs) == 0 {
		return fmt.Errorf("no tenants defined")
	}
	ids := make(map[string]bool, len(cfgs))
	keys := make(map[string]bool, len(cfgs))
	for i, c := range cfgs {
		if !tenantIDPattern.MatchString(c.ID) {
			return fmt.Errorf("tenant %d: invalid id %q (want %s)", i, c.ID, tenantIDPattern)
		}
		if ids[c.ID] {
			return fmt.Errorf("tenant %d: duplicate id %q", i, c.ID)
		}
		ids[c.ID] = true
		if c.Key == "" || strings.ContainsAny(c.Key, " \t\r\n") {
			return fmt.Errorf("tenant %q: key must be non-empty and contain no whitespace", c.ID)
		}
		if keys[c.Key] {
			return fmt.Errorf("tenant %q: key already assigned to another tenant", c.ID)
		}
		keys[c.Key] = true
		if c.Weight < 0 || c.RatePerSec < 0 || c.Burst < 0 ||
			c.MaxStoredBytes < 0 || c.MaxConcurrentJobs < 0 || c.MaxPendingJobs < 0 {
			return fmt.Errorf("tenant %q: negative limits are not allowed", c.ID)
		}
	}
	return nil
}

// tenantState is one tenant's runtime accounting: the token bucket, the
// stored-bytes figure the quota gates on, and lifetime counters.
type tenantState struct {
	cfg TenantConfig

	mu         sync.Mutex
	tokens     float64
	lastRefill time.Time

	storedBytes atomic.Int64 // claimed dataset bytes (quota unit)
	rateLimited atomic.Uint64
	rejected    atomic.Uint64 // quota rejections (403/429 with a reason)
	dispatched  atomic.Uint64 // jobs granted a slot by the dispatcher
}

// weight resolves the effective WRR weight (default 1).
func (t *tenantState) weight() int {
	if t.cfg.Weight <= 0 {
		return 1
	}
	return t.cfg.Weight
}

// burst resolves the effective bucket capacity.
func (t *tenantState) burst() float64 {
	if t.cfg.Burst > 0 {
		return float64(t.cfg.Burst)
	}
	b := math.Ceil(t.cfg.RatePerSec)
	if b < 1 {
		b = 1
	}
	return b
}

// rateDecision is one token-bucket verdict plus everything the rate
// headers need.
type rateDecision struct {
	ok bool
	// retryAfter is the wait (seconds, >= 1) until a token is available;
	// meaningful when !ok.
	retryAfter int
	// remaining is the whole tokens left after the decision.
	remaining int
	// reset is the unix second the bucket refills completely.
	reset int64
	// limited reports whether the tenant has rate limiting configured at
	// all (no headers are emitted otherwise).
	limited bool
}

// takeToken runs one token-bucket decision at time now.
func (t *tenantState) takeToken(now time.Time) rateDecision {
	rate := t.cfg.RatePerSec
	if rate <= 0 {
		return rateDecision{ok: true}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	burst := t.burst()
	if t.lastRefill.IsZero() {
		t.tokens = burst
	} else if dt := now.Sub(t.lastRefill).Seconds(); dt > 0 {
		t.tokens = math.Min(burst, t.tokens+dt*rate)
	}
	t.lastRefill = now
	d := rateDecision{limited: true}
	if t.tokens >= 1 {
		t.tokens--
		d.ok = true
	} else {
		d.retryAfter = int(math.Ceil((1 - t.tokens) / rate))
		if d.retryAfter < 1 {
			d.retryAfter = 1
		}
		t.rateLimited.Add(1)
	}
	d.remaining = int(t.tokens)
	d.reset = now.Unix() + int64(math.Ceil((burst-t.tokens)/rate))
	return d
}

// tenantSet is the server's tenant table plus the dataset-ownership view
// (claims) the quota accounting and scoping decisions read. Claims are
// mirrored to the journal when the server is durable; the RAM view here
// is authoritative for request handling either way.
type tenantSet struct {
	byKey map[string]*tenantState
	byID  map[string]*tenantState
	ids   []string // sorted, for deterministic metrics/stats ordering
	now   func() time.Time

	mu sync.Mutex
	// claims: dataset ref -> tenant id -> claimed bytes. A blob is
	// deletable only once no tenant claims it.
	claims map[string]map[string]int64
}

// newTenantSet indexes the validated configs. now is injectable for
// rate-limit tests.
func newTenantSet(cfgs []TenantConfig, now func() time.Time) *tenantSet {
	if now == nil {
		now = time.Now
	}
	ts := &tenantSet{
		byKey:  make(map[string]*tenantState, len(cfgs)),
		byID:   make(map[string]*tenantState, len(cfgs)),
		now:    now,
		claims: make(map[string]map[string]int64),
	}
	for _, c := range cfgs {
		st := &tenantState{cfg: c}
		ts.byKey[c.Key] = st
		ts.byID[c.ID] = st
		ts.ids = append(ts.ids, c.ID)
	}
	sort.Strings(ts.ids)
	return ts
}

// authenticate resolves the request's API key to a tenant; nil when the
// key is missing or unknown (the two are indistinguishable to a caller,
// deliberately).
func (ts *tenantSet) authenticate(r *http.Request) *tenantState {
	key := ""
	if h := r.Header.Get("Authorization"); h != "" {
		if rest, ok := strings.CutPrefix(h, "Bearer "); ok {
			key = strings.TrimSpace(rest)
		}
	}
	if key == "" {
		key = strings.TrimSpace(r.Header.Get("X-API-Key"))
	}
	if key == "" {
		return nil
	}
	return ts.byKey[key]
}

// restoreClaim folds one journaled claim into the RAM view at boot —
// bypassing the journal writethrough, since the record already exists.
func (ts *tenantSet) restoreClaim(c store.DatasetClaim) {
	st := ts.byID[c.Tenant]
	ts.mu.Lock()
	tenants, ok := ts.claims[c.Ref]
	if !ok {
		tenants = make(map[string]int64)
		ts.claims[c.Ref] = tenants
	}
	_, had := tenants[c.Tenant]
	tenants[c.Tenant] = c.Bytes
	ts.mu.Unlock()
	if st != nil && !had {
		st.storedBytes.Add(c.Bytes)
	}
}

// claim records tenant ownership of ref. It reports whether this call
// added a new claim (false: the tenant already owned the ref, bytes
// unchanged).
func (ts *tenantSet) claim(ref, tenant string, bytes int64) bool {
	ts.mu.Lock()
	tenants, ok := ts.claims[ref]
	if !ok {
		tenants = make(map[string]int64)
		ts.claims[ref] = tenants
	}
	if _, had := tenants[tenant]; had {
		ts.mu.Unlock()
		return false
	}
	tenants[tenant] = bytes
	ts.mu.Unlock()
	if st := ts.byID[tenant]; st != nil {
		st.storedBytes.Add(bytes)
	}
	return true
}

// release drops tenant's claim on ref. had reports whether the claim
// existed; last reports whether it was the final claim (the blob is now
// unreferenced by every tenant).
func (ts *tenantSet) release(ref, tenant string) (had, last bool) {
	var bytes int64
	ts.mu.Lock()
	tenants, ok := ts.claims[ref]
	if ok {
		bytes, had = tenants[tenant]
		if had {
			delete(tenants, tenant)
			if len(tenants) == 0 {
				delete(ts.claims, ref)
				last = true
			}
		}
	}
	ts.mu.Unlock()
	if had {
		if st := ts.byID[tenant]; st != nil {
			st.storedBytes.Add(-bytes)
		}
	}
	return had, last
}

// owns reports whether tenant claims ref.
func (ts *tenantSet) owns(ref, tenant string) bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	_, ok := ts.claims[ref][tenant]
	return ok
}

// claimCount reports how many tenants claim ref (0: unreferenced,
// eligible for GC once unpinned).
func (ts *tenantSet) claimCount(ref string) int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.claims[ref])
}

// claimants returns the tenants claiming ref, sorted.
func (ts *tenantSet) claimants(ref string) []string {
	ts.mu.Lock()
	out := make([]string, 0, len(ts.claims[ref]))
	for t := range ts.claims[ref] {
		out = append(out, t)
	}
	ts.mu.Unlock()
	sort.Strings(out)
	return out
}

// TenantView is the per-tenant block of GET /stats.
type TenantView struct {
	ID                string         `json:"id"`
	Weight            int            `json:"weight"`
	RatePerSec        float64        `json:"rate_per_sec,omitempty"`
	StoredBytes       int64          `json:"stored_bytes"`
	MaxStoredBytes    int64          `json:"max_stored_bytes,omitempty"`
	JobsByState       map[Status]int `json:"jobs"`
	RateLimitedTotal  uint64         `json:"rate_limited_total"`
	QuotaRejectsTotal uint64         `json:"quota_rejects_total"`
	DispatchedTotal   uint64         `json:"dispatched_total"`
}

// views snapshots every tenant (sorted by ID) with its job-state counts.
func (ts *tenantSet) views(countsByTenant map[string]map[Status]int) []TenantView {
	out := make([]TenantView, 0, len(ts.ids))
	for _, id := range ts.ids {
		st := ts.byID[id]
		counts := countsByTenant[id]
		if counts == nil {
			counts = map[Status]int{}
		}
		out = append(out, TenantView{
			ID:                id,
			Weight:            st.weight(),
			RatePerSec:        st.cfg.RatePerSec,
			StoredBytes:       st.storedBytes.Load(),
			MaxStoredBytes:    st.cfg.MaxStoredBytes,
			JobsByState:       counts,
			RateLimitedTotal:  st.rateLimited.Load(),
			QuotaRejectsTotal: st.rejected.Load(),
			DispatchedTotal:   st.dispatched.Load(),
		})
	}
	return out
}

// ---- request plumbing ----

// tenantCtxKey carries the authenticated tenant ID through the request
// context ("" in single-tenant mode).
type tenantCtxKey struct{}

// reqTenant extracts the authenticated tenant ID ("" when auth is off).
func reqTenant(r *http.Request) string {
	id, _ := r.Context().Value(tenantCtxKey{}).(string)
	return id
}

// tenantOpenRoute reports whether path is served without an API key even
// in multi-tenant mode: health, operator stats/metrics and the dashboard
// are deployment-internal surfaces, not tenant data.
func tenantOpenRoute(path string) bool {
	switch path {
	case "/healthz", "/stats", "/metrics", "/dashboard", "/dashboard/data":
		return true
	}
	return false
}

// authGate resolves the request's tenant and rewrites the context. It
// reports whether the request was consumed (401 written).
func (s *Server) authGate(w http.ResponseWriter, r *http.Request) (*http.Request, bool) {
	if s.tenants == nil || tenantOpenRoute(r.URL.Path) {
		return r, false
	}
	st := s.tenants.authenticate(r)
	if st == nil {
		w.Header().Set("WWW-Authenticate", `Bearer realm="secreta"`)
		writeJSON(w, http.StatusUnauthorized, map[string]any{
			"error":  "missing or unknown API key (Authorization: Bearer <key> or X-API-Key)",
			"reason": "unauthorized",
		})
		return r, true
	}
	return r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, st.cfg.ID)), false
}

// rateGate runs the tenant's token bucket for one POST and writes the
// X-RateLimit-* headers (on allow and deny alike). It reports whether
// the request was consumed (429 written). Single-tenant mode never
// gates.
func (s *Server) rateGate(w http.ResponseWriter, r *http.Request) bool {
	st := s.tenantState(r)
	if st == nil {
		return false
	}
	d := st.takeToken(s.tenants.now())
	if d.limited {
		w.Header().Set("X-RateLimit-Limit", strconv.Itoa(int(st.burst())))
		w.Header().Set("X-RateLimit-Remaining", strconv.Itoa(d.remaining))
		w.Header().Set("X-RateLimit-Reset", strconv.FormatInt(d.reset, 10))
	}
	if d.ok {
		return false
	}
	w.Header().Set("Retry-After", strconv.Itoa(d.retryAfter))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":  fmt.Sprintf("tenant %q exceeded its request rate (%g/s)", st.cfg.ID, st.cfg.RatePerSec),
		"reason": "rate_limited",
	})
	return true
}

// tenantState resolves the request's tenant to its runtime state (nil in
// single-tenant mode).
func (s *Server) tenantState(r *http.Request) *tenantState {
	if s.tenants == nil {
		return nil
	}
	return s.tenants.byID[reqTenant(r)]
}

// journalClaim mirrors a claim to the journal when durable. Failures are
// storage faults like any journal append.
func (s *Server) journalClaim(ref, tenant string, bytes int64) {
	if s.st == nil {
		return
	}
	if err := s.st.Journal.ClaimDataset(ref, tenant, bytes); err != nil {
		s.log().Error("journaling dataset claim failed", "dataset", ref, "tenant", tenant, "err", err)
		s.storeFault("dataset claim journal", err)
	}
}

// journalRelease mirrors a claim release to the journal when durable.
func (s *Server) journalRelease(ref, tenant string) {
	if s.st == nil {
		return
	}
	if err := s.st.Journal.ReleaseDataset(ref, tenant); err != nil {
		s.log().Error("journaling dataset release failed", "dataset", ref, "tenant", tenant, "err", err)
		s.storeFault("dataset release journal", err)
	}
}

// quotaReject answers one machine-readable quota rejection.
func quotaReject(w http.ResponseWriter, code int, reason, msg string) {
	writeJSON(w, code, map[string]any{"error": msg, "reason": reason})
}

// encodeTenantsFile renders cfgs in the -tenants-file format — test and
// tooling helper, the inverse of LoadTenantsFile.
func encodeTenantsFile(cfgs []TenantConfig) []byte {
	data, _ := json.MarshalIndent(tenantsFile{Tenants: cfgs}, "", "  ")
	return data
}
