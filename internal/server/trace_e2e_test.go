package server

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"secreta/internal/obs"
)

// fetchTrace GETs a job's trace and decodes the span tree.
func fetchTrace(t *testing.T, base, id string) *obs.TraceView {
	t.Helper()
	code, raw := getRaw(t, base+"/jobs/"+id+"/trace")
	if code != http.StatusOK {
		t.Fatalf("GET trace: %d\n%s", code, raw)
	}
	var tv obs.TraceView
	if err := json.Unmarshal(raw, &tv); err != nil {
		t.Fatalf("decoding trace: %v\n%s", err, raw)
	}
	return &tv
}

// childByName finds a direct child span.
func childByName(sp *obs.SpanView, name string) *obs.SpanView {
	for _, c := range sp.Children {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// TestJobTraceEndToEnd runs an anonymize job and checks the full
// lifecycle trace: the span tree shape (job → queue_wait/execute/persist,
// execute → dataset_load/run, run → algorithm phases + evaluate) and the
// timing invariant that run's children are contiguous phases summing to
// the run span — each phase duration came from the engine's stopwatch, so
// the sum must reconstruct the dispatch wall time, and dispatch plus
// evaluation must account for nearly all of run.
func TestJobTraceEndToEnd(t *testing.T) {
	ts := newTestServer(t)
	dsJSON, _ := patientsJSON(t)
	resp, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %v", resp.StatusCode, body)
	}
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job ended %s", st)
	}

	tv := fetchTrace(t, ts.URL, id)
	if tv.Job != id {
		t.Fatalf("trace job = %q, want %q", tv.Job, id)
	}
	if !tv.Complete {
		t.Fatal("terminal job's trace is not complete")
	}
	root := tv.Trace
	if root == nil || root.Name != "job" {
		t.Fatalf("root span = %+v, want name job", root)
	}
	if root.Attrs["status"] != string(StatusDone) {
		t.Fatalf("root status attr = %q, want done", root.Attrs["status"])
	}
	for _, name := range []string{"queue_wait", "execute", "persist"} {
		if childByName(root, name) == nil {
			t.Errorf("root has no %q child; children: %v", name, spanNames(root))
		}
	}
	exec := childByName(root, "execute")
	if exec == nil {
		t.Fatal("no execute span")
	}
	run := childByName(exec, "run")
	if run == nil {
		t.Fatalf("execute has no run child; children: %v", spanNames(exec))
	}
	if load := childByName(exec, "dataset_load"); load == nil {
		t.Errorf("execute has no dataset_load child; children: %v", spanNames(exec))
	} else if load.Attrs["fingerprint"] == "" {
		t.Errorf("dataset_load lacks fingerprint attr: %v", load.Attrs)
	}

	// The paper's RT-anonymization pipeline phases must appear under run,
	// in order, contiguous from the run start.
	if len(run.Children) < 2 {
		t.Fatalf("run has %d children, want phases + evaluate: %v", len(run.Children), spanNames(run))
	}
	var phaseSum, cursor float64
	sawEvaluate := false
	for i, c := range run.Children {
		if c.Open {
			t.Errorf("child %s still open in a complete trace", c.Name)
		}
		if c.Name == "evaluate" {
			sawEvaluate = true
			continue
		}
		// Phases are contiguous: each starts where the previous ended
		// (within float re-encoding noise).
		if i > 0 || cursor > 0 {
			if d := math.Abs(c.StartMS - (run.StartMS + cursor)); d > 0.01 {
				t.Errorf("phase %s starts at %.3fms, want contiguous at %.3fms", c.Name, c.StartMS, run.StartMS+cursor)
			}
		}
		cursor += c.DurationMS
		phaseSum += c.DurationMS
	}
	if !sawEvaluate {
		t.Errorf("run children lack evaluate: %v", spanNames(run))
	}
	if phaseSum <= 0 {
		t.Fatalf("phase durations sum to %v", phaseSum)
	}
	// Phases + evaluate must account for the run span within 5% (small
	// absolute floor so a microsecond-scale test job cannot flake on
	// scheduler noise).
	var accounted float64
	for _, c := range run.Children {
		accounted += c.DurationMS
	}
	slack := run.DurationMS * 0.05
	if slack < 0.5 {
		slack = 0.5
	}
	if diff := run.DurationMS - accounted; diff < 0 || diff > slack {
		t.Errorf("run = %.3fms but children account for %.3fms (slack %.3fms)", run.DurationMS, accounted, slack)
	}
	// And the root span must cover everything beneath it.
	if root.DurationMS < run.DurationMS {
		t.Errorf("root %.3fms shorter than run %.3fms", root.DurationMS, run.DurationMS)
	}
}

func spanNames(sp *obs.SpanView) []string {
	names := make([]string, len(sp.Children))
	for i, c := range sp.Children {
		names[i] = c.Name
	}
	return names
}

// TestTraceUnknownJob404s covers the no-trace path.
func TestTraceUnknownJob404s(t *testing.T) {
	ts := newTestServer(t)
	code, raw := getRaw(t, ts.URL+"/jobs/j-nope/trace")
	if code != http.StatusNotFound {
		t.Fatalf("GET trace for unknown job: %d\n%s", code, raw)
	}
}

// TestTraceSurvivesRestart is the durability acceptance: a terminal
// job's trace is journaled to the blob store and served unchanged after
// a process restart, when the in-memory recorder is gone.
func TestTraceSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, stop := durableServer(t, dir, Options{Workers: 2})
	raw, _ := patientsJSON(t)
	code, body := uploadDataset(t, ts.URL, raw)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	ref := body["dataset_ref"].(string)
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref, "config": map[string]any{"algo": "cluster", "k": 4},
	})
	id := sub["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job ended %s", st)
	}
	before := fetchTrace(t, ts.URL, id)

	stop()

	ts2, _ := durableServer(t, dir, Options{Workers: 2})
	after := fetchTrace(t, ts2.URL, id)
	if after.Job != id || !after.Complete {
		t.Fatalf("rehydrated trace: job=%q complete=%v", after.Job, after.Complete)
	}
	if after.Trace == nil || after.Trace.Name != "job" {
		t.Fatalf("rehydrated root = %+v", after.Trace)
	}
	if got, want := after.Spans, before.Spans; got != want {
		t.Errorf("rehydrated span count %d, want %d", got, want)
	}
	if math.Abs(after.DurationMS-before.DurationMS) > 0.001 {
		t.Errorf("rehydrated duration %.3f, want %.3f", after.DurationMS, before.DurationMS)
	}
	// The persisted bytes round-trip: the restarted server serves the
	// blob verbatim, so the tree shape is identical too.
	if got, want := spanNames(after.Trace), spanNames(before.Trace); strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("rehydrated children %v, want %v", got, want)
	}
}
