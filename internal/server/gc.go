package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"secreta/internal/registry"
)

// Disk GC / retention: with -data-max-bytes set on a durable server, a
// background sweeper keeps the data directory under the cap. Retention
// is pinned-and-recent-first — eviction takes, in order, (1) the disk
// result cache (always reconstructible), (2) the oldest unpinned
// terminal jobs' results and traces, (3) the oldest dataset blobs that
// no tenant claims and no job pins. In-flight state is never touched:
// queued/running jobs are not evictable, and a dataset referenced by any
// queued or running job holds a registry pin (or lazy reservation) that
// makes Remove fail. The journal directory is likewise never swept —
// the WAL's own snapshot cadence bounds it. A stuck file is counted
// (store trim_errors / gc errors) and skipped, never allowed to wedge
// the sweep.

// gcJobBatch is how many terminal jobs one eviction round drops before
// re-measuring disk usage — the re-walk is the expensive part.
const gcJobBatch = 8

// gcState is the sweeper's configuration and counters.
type gcState struct {
	maxBytes int64
	interval time.Duration
	now      func() time.Time
	// kick nudges the loop outside its ticker cadence (job completions
	// grow the results dir; waiting a full interval would let a burst
	// overshoot the cap for longer than necessary).
	kick chan struct{}

	sweeps          atomic.Uint64
	evictedJobs     atomic.Uint64
	evictedDatasets atomic.Uint64
	cacheTrimmed    atomic.Uint64
	errors          atomic.Uint64

	lastUsage atomic.Int64 // disk usage observed at the end of the last sweep
	lastSweep atomic.Int64 // unix seconds
}

// newGCState builds the sweeper state; now is injectable for tests.
func newGCState(maxBytes int64, interval time.Duration, now func() time.Time) *gcState {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &gcState{
		maxBytes: maxBytes,
		interval: interval,
		now:      now,
		kick:     make(chan struct{}, 1),
	}
}

// gcKick nudges the sweeper without blocking (no-op when GC is off or a
// nudge is already pending).
func (s *Server) gcKick() {
	if s.gc == nil {
		return
	}
	select {
	case s.gc.kick <- struct{}{}:
	default:
	}
}

// gcLoop runs the sweeper until ctx ends.
func (s *Server) gcLoop(ctx context.Context) {
	t := time.NewTicker(s.gc.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		case <-s.gc.kick:
		}
		s.sweepOnce()
	}
}

// sweepOnce measures the data directory and evicts until it fits the
// cap (or nothing evictable remains). Exposed to tests so invariants can
// be asserted per sweep without timing games; the loop calls it too.
// It returns the disk usage after the sweep.
func (s *Server) sweepOnce() int64 {
	gc := s.gc
	if !s.ready.Load() {
		// Journal replay is still re-pinning datasets for re-queued jobs;
		// sweeping now could evict a blob a recovering job is about to
		// reserve.
		return gc.lastUsage.Load()
	}
	gc.sweeps.Add(1)
	defer func() { gc.lastSweep.Store(gc.now().Unix()) }()
	usage := s.st.DiskUsage()
	if usage > gc.maxBytes {
		// Lever 1: the disk result cache. Every entry is a recomputable
		// cache hit, so under cap pressure it is the first thing to go.
		if removed := s.st.Cache.TrimTo(0, 0); removed > 0 {
			gc.cacheTrimmed.Add(uint64(removed))
			usage = s.st.DiskUsage()
		}
	}
	// Lever 2: oldest unpinned terminal jobs — journal record, result
	// blob, chunk file and trace go together, so no orphan can outlive
	// its record. Queued/running jobs are not terminal and stay.
	for usage > gc.maxBytes {
		ids := s.jobs.evictOldestTerminal(gcJobBatch)
		if len(ids) == 0 {
			break
		}
		gc.evictedJobs.Add(uint64(len(ids)))
		usage = s.st.DiskUsage()
	}
	// Lever 3: dataset blobs nobody is using — unclaimed by every tenant
	// and unpinned by every job — oldest (mtime) first. registry.Remove
	// owns the pin check, so a job racing this sweep keeps its input.
	if usage > gc.maxBytes {
		for _, id := range s.st.Datasets.IDsByAge() {
			if usage <= gc.maxBytes {
				break
			}
			if s.tenants != nil && s.tenants.claimCount(id) > 0 {
				continue
			}
			switch err := s.registry.Remove(id); {
			case err == nil:
				gc.evictedDatasets.Add(1)
				usage = s.st.DiskUsage()
			case errors.Is(err, registry.ErrPinned):
				// In use; later sweeps retry once the pin drops.
			case errors.Is(err, registry.ErrNotFound):
				// On disk but not in the index — already being removed by a
				// concurrent delete; leave it to finish.
			default:
				// Stuck file (EIO and friends): count, skip, keep sweeping.
				// The store's own diag counted the trim error where it
				// happened.
				gc.errors.Add(1)
				s.log().Warn("gc: removing dataset failed", "dataset", id, "err", err)
			}
		}
	}
	gc.lastUsage.Store(usage)
	if usage > gc.maxBytes {
		s.log().Warn("gc: data dir still over cap after sweep",
			"usage_bytes", usage, "max_bytes", gc.maxBytes)
	}
	return usage
}

// gcView is the /stats and dashboard block for the sweeper.
type gcView struct {
	MaxBytes        int64  `json:"max_bytes"`
	UsageBytes      int64  `json:"usage_bytes"`
	Sweeps          uint64 `json:"sweeps"`
	EvictedJobs     uint64 `json:"evicted_jobs"`
	EvictedDatasets uint64 `json:"evicted_datasets"`
	CacheTrimmed    uint64 `json:"cache_trimmed"`
	Errors          uint64 `json:"errors"`
	LastSweepUnix   int64  `json:"last_sweep_unix,omitempty"`
}

// view snapshots the sweeper counters.
func (g *gcState) view() gcView {
	return gcView{
		MaxBytes:        g.maxBytes,
		UsageBytes:      g.lastUsage.Load(),
		Sweeps:          g.sweeps.Load(),
		EvictedJobs:     g.evictedJobs.Load(),
		EvictedDatasets: g.evictedDatasets.Load(),
		CacheTrimmed:    g.cacheTrimmed.Load(),
		Errors:          g.errors.Load(),
		LastSweepUnix:   g.lastSweep.Load(),
	}
}
