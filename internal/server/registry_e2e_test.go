package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"secreta/internal/dataset"
)

// uploadDataset POSTs raw dataset JSON to /datasets and returns the
// response code and decoded body.
func uploadDataset(t *testing.T, base string, raw json.RawMessage) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/datasets", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, decodeMap(t, resp)
}

func httpDelete(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, decodeMap(t, resp)
}

// TestDatasetUploadThenReferenceRoundTrip is the tentpole e2e: upload
// once, submit by dataset_ref, and get the same result an inline
// submission computes — served from the same cache entry, since the cache
// keys on content, not on how the dataset travelled.
func TestDatasetUploadThenReferenceRoundTrip(t *testing.T) {
	ts := newTestServer(t)
	raw, _ := patientsJSON(t)

	code, body := uploadDataset(t, ts.URL, raw)
	if code != http.StatusCreated || body["created"] != true {
		t.Fatalf("first upload: code=%d body=%v", code, body)
	}
	ref := body["dataset_ref"].(string)
	if ref == "" {
		t.Fatal("upload returned empty dataset_ref")
	}
	// Content-addressing: identical bytes, same ref, nothing new created.
	code, body = uploadDataset(t, ts.URL, raw)
	if code != http.StatusOK || body["created"] != false || body["dataset_ref"] != ref {
		t.Fatalf("re-upload: code=%d body=%v", code, body)
	}

	cfg := map[string]any{"algo": "cluster", "k": 4}
	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": ref, "config": cfg})
	refJob := sub["job"].(string)
	if st := pollDone(t, ts.URL, refJob); st != StatusDone {
		t.Fatalf("dataset_ref job ended %s", st)
	}
	_, sub = postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset": json.RawMessage(raw), "config": cfg})
	inlineJob := sub["job"].(string)
	if st := pollDone(t, ts.URL, inlineJob); st != StatusDone {
		t.Fatalf("inline job ended %s", st)
	}

	_, refRes := getJSON(t, ts.URL+"/jobs/"+refJob+"/result")
	_, inlineRes := getJSON(t, ts.URL+"/jobs/"+inlineJob+"/result")
	if inlineRes["cache_hit"] != true {
		t.Error("inline submission after dataset_ref run should hit the shared cache (same content, same key)")
	}
	if !reflect.DeepEqual(normalize(refRes["results"]), normalize(inlineRes["results"])) {
		t.Error("dataset_ref and inline submissions produced different results")
	}

	// The registry shows up in /stats and in the dataset listing.
	_, stats := getJSON(t, ts.URL+"/stats")
	reg, ok := stats["registry"].(map[string]any)
	if !ok || reg["entries"].(float64) != 1 {
		t.Fatalf("stats registry = %v, want 1 entry", stats["registry"])
	}
	code, info := getJSON(t, ts.URL+"/datasets/"+ref)
	if code != http.StatusOK || info["records"].(float64) != 20 {
		t.Fatalf("dataset info: code=%d body=%v", code, info)
	}
}

func TestDatasetRefValidation(t *testing.T) {
	ts := newTestServer(t)
	raw, _ := patientsJSON(t)
	cfg := map[string]any{"algo": "cluster", "k": 4}

	resp, body := postJSON(t, ts.URL+"/anonymize", map[string]any{"config": cfg})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no dataset: code=%d body=%v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset": json.RawMessage(raw), "dataset_ref": "abc", "config": cfg,
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("both dataset and ref: code=%d body=%v", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": "no-such-ref", "config": cfg})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown ref: code=%d body=%v", resp.StatusCode, body)
	}
	if code, _ := getJSON(t, ts.URL+"/datasets/no-such-ref"); code != http.StatusNotFound {
		t.Errorf("info of unknown ref: code=%d", code)
	}
	if code, _ := httpDelete(t, ts.URL+"/datasets/no-such-ref"); code != http.StatusNotFound {
		t.Errorf("delete of unknown ref: code=%d", code)
	}
}

// slowBasketsJSON builds a transaction-only dataset whose Apriori run
// takes long enough to observe a job mid-flight (uniform random baskets
// resist generalization; see the transaction package's promptness test).
func slowBasketsJSON(t *testing.T) json.RawMessage {
	t.Helper()
	// One constant relational attribute: the JSON codec requires a schema,
	// and Apriori only looks at the transaction side anyway.
	ds := dataset.New([]dataset.Attribute{{Name: "grp", Kind: dataset.Categorical}}, "items")
	rng := rand.New(rand.NewSource(4))
	for r := 0; r < 4000; r++ {
		seen := make(map[int]bool, 12)
		var items []string
		for len(items) < 12 {
			it := rng.Intn(400)
			if !seen[it] {
				seen[it] = true
				items = append(items, fmt.Sprintf("i%04d", it))
			}
		}
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPinnedDatasetSurvivesJobLifecycle submits a long job by dataset_ref
// and checks the pinning contract end to end: while the job runs the
// dataset cannot be deleted (409); cancelling the job stops it
// mid-algorithm; and once the job is finished the pin is released, so the
// delete succeeds.
func TestPinnedDatasetSurvivesJobLifecycle(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 2, MaxConcurrentJobs: 1}).Handler())
	t.Cleanup(ts.Close)

	code, body := uploadDataset(t, ts.URL, slowBasketsJSON(t))
	if code != http.StatusCreated {
		t.Fatalf("upload: code=%d body=%v", code, body)
	}
	ref := body["dataset_ref"].(string)

	_, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "apriori", "k": 40, "m": 2},
	})
	job := sub["job"].(string)

	// The pin is taken at submission, before the 202 — so this delete
	// deterministically sees a pinned dataset, even if the job is queued.
	if code, body := httpDelete(t, ts.URL+"/datasets/"+ref); code != http.StatusConflict {
		t.Fatalf("delete of pinned dataset: code=%d body=%v (job may have finished too fast)", code, body)
	}

	// Cancel mid-run; the plumbed context must end the job promptly.
	cancelled := time.Now()
	httpDelete(t, ts.URL+"/jobs/"+job)
	if st := pollDone(t, ts.URL, job); st != StatusCancelled {
		t.Fatalf("job ended %s, want cancelled", st)
	}
	if d := time.Since(cancelled); d > 2*time.Second {
		t.Errorf("cancellation took %v end to end", d)
	}

	// The pin release races the job's terminal status by a hair (it runs
	// in a defer after finish); poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, _ := httpDelete(t, ts.URL+"/datasets/"+ref)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("dataset still undeletable after job finished (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code, _ := getJSON(t, ts.URL+"/datasets/"+ref); code != http.StatusNotFound {
		t.Error("dataset still resident after delete")
	}
}
