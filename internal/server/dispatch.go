package server

import (
	"context"
	"sort"
	"sync"
)

// Tenant-fair job admission. Single-tenant servers admit jobs straight
// off the shared slot semaphore (FIFO-ish, racing goroutines). With
// tenants configured, a saturating tenant would win that race almost
// every time, so admission instead goes through a dispatcher: each
// tenant gets its own FIFO queue, and a single dispatch loop hands the
// shared slots out by smooth weighted round-robin across the non-empty
// queues. One tenant's backlog then costs other tenants at most its
// weight share — the property the starvation e2e pins.

// wrrEntry is one tenant's smooth-WRR accumulator. current is touched
// only by the dispatch loop, so fairness bookkeeping is contention-free.
type wrrEntry struct {
	id      string
	weight  int
	current int
}

// wrrPicker implements smooth weighted round-robin (the nginx variant):
// each pick, every eligible entry gains its weight, the largest
// accumulator wins and pays back the total eligible weight. Over any
// window where a set of entries stays continuously eligible, each is
// picked in proportion to its weight, within one slot per rotation, and
// no eligible entry is skipped forever.
type wrrPicker struct {
	entries []*wrrEntry
	byID    map[string]*wrrEntry
}

// newWRRPicker builds a picker over the given weights (weights < 1 are
// lifted to 1). Entries iterate in sorted id order so ties are broken
// deterministically toward the smaller id.
func newWRRPicker(weights map[string]int) *wrrPicker {
	p := &wrrPicker{byID: make(map[string]*wrrEntry, len(weights))}
	ids := make([]string, 0, len(weights))
	for id := range weights {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		p.add(id, weights[id])
	}
	return p
}

// add registers a new entry, keeping the sorted iteration order. Known
// ids are left untouched.
func (p *wrrPicker) add(id string, weight int) {
	if _, ok := p.byID[id]; ok {
		return
	}
	if weight < 1 {
		weight = 1
	}
	e := &wrrEntry{id: id, weight: weight}
	p.byID[id] = e
	i := sort.Search(len(p.entries), func(i int) bool { return p.entries[i].id >= id })
	p.entries = append(p.entries, nil)
	copy(p.entries[i+1:], p.entries[i:])
	p.entries[i] = e
}

// pick selects the next tenant among those eligible (queue non-empty and
// under any per-tenant cap), or "" when none is. Strict > with sorted
// iteration breaks accumulator ties toward the smaller id.
func (p *wrrPicker) pick(eligible func(id string) bool) string {
	total := 0
	var best *wrrEntry
	for _, e := range p.entries {
		if !eligible(e.id) {
			continue
		}
		total += e.weight
		e.current += e.weight
		if best == nil || e.current > best.current {
			best = e
		}
	}
	if best == nil {
		return ""
	}
	best.current -= total
	return best.id
}

// waiter is one queued job waiting for a slot grant.
type waiter struct {
	tenant string
	// grant is buffered so the dispatch loop never blocks on a waiter
	// that is concurrently abandoning.
	grant   chan struct{}
	granted bool // guarded by dispatcher.mu
}

// dispatcher owns the per-tenant queues and the dispatch loop. It wraps
// the server's slot semaphore: the loop claims a slot, picks a tenant by
// WRR, and grants the head of that tenant's queue; the job releases the
// slot (and its tenant's running count) when it finishes.
type dispatcher struct {
	slots   chan struct{}
	tenants *tenantSet

	mu      sync.Mutex
	cond    *sync.Cond
	picker  *wrrPicker
	queues  map[string][]*waiter
	running map[string]int
	stopped bool
}

// newDispatcher builds the dispatcher over the server's slot semaphore
// and starts its loop; stop it by cancelling ctx.
func newDispatcher(ctx context.Context, slots chan struct{}, tenants *tenantSet) *dispatcher {
	weights := make(map[string]int, len(tenants.ids))
	for _, id := range tenants.ids {
		weights[id] = tenants.byID[id].weight()
	}
	d := &dispatcher{
		slots:   slots,
		tenants: tenants,
		picker:  newWRRPicker(weights),
		queues:  make(map[string][]*waiter),
		running: make(map[string]int),
	}
	d.cond = sync.NewCond(&d.mu)
	go d.loop(ctx)
	// Wake the loop out of its cond wait at shutdown.
	go func() {
		<-ctx.Done()
		d.mu.Lock()
		d.stopped = true
		d.mu.Unlock()
		d.cond.Broadcast()
	}()
	return d
}

// eligibleLocked reports whether tenant id can be granted a slot right
// now: a waiter is queued and the tenant is under its concurrency cap.
func (d *dispatcher) eligibleLocked(id string) bool {
	if len(d.queues[id]) == 0 {
		return false
	}
	if st := d.tenants.byID[id]; st != nil && st.cfg.MaxConcurrentJobs > 0 &&
		d.running[id] >= st.cfg.MaxConcurrentJobs {
		return false
	}
	return true
}

// loop is the dispatch goroutine: claim one slot, hand it to the next
// WRR-chosen waiter, repeat. Holding the claimed slot while no waiter is
// eligible is deliberate — nothing else consumes slots in tenant mode.
func (d *dispatcher) loop(ctx context.Context) {
	for {
		select {
		case d.slots <- struct{}{}:
		case <-ctx.Done():
			return
		}
		d.mu.Lock()
		var w *waiter
		for {
			if d.stopped {
				d.mu.Unlock()
				<-d.slots
				return
			}
			id := d.picker.pick(d.eligibleLocked)
			if id != "" {
				q := d.queues[id]
				w, d.queues[id] = q[0], q[1:]
				if len(d.queues[id]) == 0 {
					delete(d.queues, id)
				}
				d.running[id]++
				w.granted = true
				break
			}
			d.cond.Wait()
		}
		d.mu.Unlock()
		if st := d.tenants.byID[w.tenant]; st != nil {
			st.dispatched.Add(1)
		}
		w.grant <- struct{}{}
	}
}

// enqueue appends a waiter to its tenant's queue and nudges the loop.
func (d *dispatcher) enqueue(w *waiter) {
	d.mu.Lock()
	if _, ok := d.picker.byID[w.tenant]; !ok {
		// A recovered job whose tenant left the tenants file still has to
		// drain; give it the default weight.
		d.picker.add(w.tenant, 1)
	}
	d.queues[w.tenant] = append(d.queues[w.tenant], w)
	d.mu.Unlock()
	d.cond.Broadcast()
}

// abandon withdraws a cancelled waiter. If the grant raced in first, the
// waiter owns a slot it will never use — consume and release it here.
func (d *dispatcher) abandon(w *waiter) {
	d.mu.Lock()
	if w.granted {
		d.mu.Unlock()
		<-w.grant
		d.release(w.tenant)
		return
	}
	q := d.queues[w.tenant]
	for i, qw := range q {
		if qw == w {
			copy(q[i:], q[i+1:])
			q = q[:len(q)-1]
			break
		}
	}
	if len(q) == 0 {
		delete(d.queues, w.tenant)
	} else {
		d.queues[w.tenant] = q
	}
	d.mu.Unlock()
}

// release returns a granted slot and the tenant's running credit, waking
// the loop in case the tenant's cap was the blocker.
func (d *dispatcher) release(tenant string) {
	d.mu.Lock()
	if d.running[tenant] > 0 {
		d.running[tenant]--
		if d.running[tenant] == 0 {
			delete(d.running, tenant)
		}
	}
	d.mu.Unlock()
	<-d.slots
	d.cond.Broadcast()
}

// queueDepths snapshots per-tenant queued and running counts for /stats
// and the dashboard.
func (d *dispatcher) queueDepths() map[string][2]int {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string][2]int, len(d.queues)+len(d.running))
	for id, q := range d.queues {
		out[id] = [2]int{len(q), d.running[id]}
	}
	for id, r := range d.running {
		if _, ok := out[id]; !ok {
			out[id] = [2]int{0, r}
		}
	}
	return out
}

// admit blocks until the job may run, honoring cancellation. The caller
// must pair a nil return with releaseSlot. Single-tenant servers keep
// the original direct semaphore path, byte-for-byte.
func (s *Server) admit(ctx context.Context, tenant string) error {
	if s.dispatch == nil {
		select {
		case s.slots <- struct{}{}:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	w := &waiter{tenant: tenant, grant: make(chan struct{}, 1)}
	s.dispatch.enqueue(w)
	select {
	case <-w.grant:
		return nil
	case <-ctx.Done():
		s.dispatch.abandon(w)
		return ctx.Err()
	}
}

// releaseSlot returns the admission slot acquired by admit.
func (s *Server) releaseSlot(tenant string) {
	if s.dispatch == nil {
		<-s.slots
		return
	}
	s.dispatch.release(tenant)
}
