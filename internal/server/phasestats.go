package server

import (
	"sort"
	"sync"

	"secreta/internal/timing"
)

// phaseStats aggregates the per-phase timings job results carry
// (timing.Phases: "relational", "merge", "transaction", "recode", ...)
// into rolling p50/p95 per phase, surfaced on GET /stats so a phase-level
// regression in a running server is observable without scraping job
// payloads. Samples come from real executions only — cache hits replay a
// stored result and would drag the percentiles toward zero.
type phaseStats struct {
	mu      sync.Mutex
	samples map[string][]float64 // phase -> ring of durations (seconds)
	next    map[string]int       // phase -> ring write position
	total   map[string]int64     // phase -> samples ever recorded
	sumSec  map[string]float64   // phase -> cumulative seconds ever recorded
}

// phaseWindow bounds the per-phase sample ring: big enough for stable
// percentiles, small enough that a long-lived server's stats memory stays
// flat.
const phaseWindow = 512

func newPhaseStats() *phaseStats {
	return &phaseStats{
		samples: make(map[string][]float64),
		next:    make(map[string]int),
		total:   make(map[string]int64),
		sumSec:  make(map[string]float64),
	}
}

// record folds one run's phase breakdown into the rings.
func (p *phaseStats) record(phases []timing.Phase) {
	if len(phases) == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ph := range phases {
		sec := ph.Duration.Seconds()
		ring := p.samples[ph.Name]
		if len(ring) < phaseWindow {
			p.samples[ph.Name] = append(ring, sec)
		} else {
			ring[p.next[ph.Name]%phaseWindow] = sec
			p.next[ph.Name] = (p.next[ph.Name] + 1) % phaseWindow
		}
		p.total[ph.Name]++
		p.sumSec[ph.Name] += sec
	}
}

// PhaseView is the JSON shape of one phase's aggregate timing.
type PhaseView struct {
	Count int64   `json:"count"`
	P50ms float64 `json:"p50_ms"`
	P95ms float64 `json:"p95_ms"`
}

// snapshot computes nearest-rank percentiles over each phase's window.
func (p *phaseStats) snapshot() map[string]PhaseView {
	views, _ := p.snapshotAll()
	return views
}

// phaseQuantiles is the Prometheus-summary view of one phase: windowed
// quantiles in seconds plus lifetime sum/count for rate() math.
type phaseQuantiles struct {
	Q50, Q95 float64 // seconds, over the rolling window
	SumSec   float64 // cumulative seconds ever recorded
	Count    int64
}

// quantiles computes the GET /metrics summary per phase. Quantiles come
// from the same rolling window snapshot() uses; sum and count are
// lifetime counters so scrapers can derive rates across restarts of the
// window.
func (p *phaseStats) quantiles() map[string]phaseQuantiles {
	_, qs := p.snapshotAll()
	return qs
}

// snapshotAll computes both presentation views from one lock acquisition,
// so a /stats response or a /metrics scrape is internally consistent —
// two separate snapshots could straddle a record() and report a phase's
// count under one family and not the other.
func (p *phaseStats) snapshotAll() (map[string]PhaseView, map[string]phaseQuantiles) {
	p.mu.Lock()
	defer p.mu.Unlock()
	views := make(map[string]PhaseView, len(p.samples))
	qs := make(map[string]phaseQuantiles, len(p.samples))
	for name, ring := range p.samples {
		if len(ring) == 0 {
			continue
		}
		sorted := append([]float64(nil), ring...)
		sort.Float64s(sorted)
		q50, q95 := percentile(sorted, 50), percentile(sorted, 95)
		views[name] = PhaseView{
			Count: p.total[name],
			P50ms: q50 * 1000,
			P95ms: q95 * 1000,
		}
		qs[name] = phaseQuantiles{
			Q50:    q50,
			Q95:    q95,
			SumSec: p.sumSec[name],
			Count:  p.total[name],
		}
	}
	return views, qs
}

// percentile is the nearest-rank percentile of an ascending sample.
func percentile(sorted []float64, pct int) float64 {
	rank := (len(sorted)*pct + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
