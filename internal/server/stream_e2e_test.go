package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"secreta/internal/gen"
)

// bigCensusJSON synthesizes a large RT-dataset whose anonymize result
// stream is tens of megabytes — big enough that an O(N) serving buffer
// would be unmissable next to the test's heap ceiling.
func bigCensusJSON(t *testing.T, records int) json.RawMessage {
	t.Helper()
	ds := gen.Census(gen.Config{Records: records, Items: 40, MaxBasket: 8, Seed: 7})
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// submitBigAnonymize uploads the dataset inline and runs the cheapest
// real configuration over it (one tiny-lattice QI, k=2), so the test's
// cost is dominated by data volume, not anonymization work.
func submitBigAnonymize(t *testing.T, base string, raw json.RawMessage) string {
	t.Helper()
	_, body := postJSON(t, base+"/anonymize", map[string]any{
		"dataset": raw,
		"config":  map[string]any{"algo": "incognito", "k": 2, "qis": []string{"Gender"}},
	})
	id, _ := body["job"].(string)
	if id == "" {
		t.Fatalf("submit failed: %v", body)
	}
	if st := pollDoneWithin(t, base, id, 2*time.Minute); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
	return id
}

// TestStreamLargeResultBoundedHeap is the tentpole's acceptance test: a
// large generated result is served via GET /jobs/{id}/result/stream with
// peak heap growth bounded independently of the record count. The server
// is durable, so the terminal job holds only meta in RAM and every
// request streams the chunked file from disk; client and server live in
// this process, and both sides together must stay under the ceiling
// while a stream several times that size goes over the wire.
func TestStreamLargeResultBoundedHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("large-dataset streaming test")
	}
	ts, _ := durableServer(t, t.TempDir(), Options{
		Workers:      2,
		MaxBodyBytes: 256 << 20,
		// Keep the engine cache from retaining the big result: the test
		// measures serving growth over a quiesced baseline.
		CacheMaxBytes: 4096,
	})
	const records = 260_000
	raw := bigCensusJSON(t, records)
	id := submitBigAnonymize(t, ts.URL, raw)
	raw = nil

	// Quiesce, then bound further heap growth: if serving buffered O(N)
	// anywhere, the live set would have to cross the ceiling.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	const ceiling = 8 << 20
	limit := debug.SetMemoryLimit(int64(base.HeapAlloc) + ceiling)
	defer debug.SetMemoryLimit(limit)

	stop := make(chan struct{})
	var peak atomic.Uint64
	go func() {
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
			}
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak.Load() {
				peak.Store(ms.HeapAlloc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	resp, err := http.Get(ts.URL + "/jobs/" + id + "/result/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("stream: status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var streamed int64
	var lines int64
	buf := make([]byte, 64<<10)
	var tail byte
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			streamed += int64(n)
			lines += int64(bytes.Count(buf[:n], []byte{'\n'}))
			tail = buf[n-1]
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)

	if tail != '\n' {
		t.Fatal("stream did not end on a record-line boundary")
	}
	if lines != 1+records {
		t.Fatalf("stream carried %d lines, want %d", lines, 1+records)
	}
	growth := int64(peak.Load()) - int64(base.HeapAlloc)
	t.Logf("streamed %.1f MiB in %d lines; heap baseline %.1f MiB, peak growth %.1f MiB",
		float64(streamed)/(1<<20), lines, float64(base.HeapAlloc)/(1<<20), float64(growth)/(1<<20))
	// The stream must dwarf the allowed growth, or "bounded" proves
	// nothing: a fully buffered implementation could not fit the response
	// under the ceiling.
	if streamed < 5*ceiling/2 {
		t.Fatalf("streamed only %d bytes — not a meaningful test against a %d-byte ceiling", streamed, ceiling)
	}
	if growth > ceiling {
		t.Fatalf("peak heap grew %d bytes while serving (ceiling %d): serving is not O(chunk)", growth, ceiling)
	}
}

// TestStreamClientDisconnect pins the disconnect half of the acceptance
// criterion: a client that walks away mid-stream frees the connection
// promptly (streaming.active returns to 0, the disconnect is counted)
// and the job itself stays done and servable.
func TestStreamClientDisconnect(t *testing.T) {
	ts, _ := durableServer(t, t.TempDir(), Options{
		Workers:       2,
		MaxBodyBytes:  256 << 20,
		CacheMaxBytes: 4096,
	})
	// Big enough that the whole response cannot hide in socket buffers —
	// the server must still be mid-stream when the client hangs up.
	raw := bigCensusJSON(t, 80_000)
	id := submitBigAnonymize(t, ts.URL, raw)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/jobs/"+id+"/result/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one chunk to prove the stream started, then hang up.
	if _, err := resp.Body.Read(make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	// The handler must notice and exit promptly.
	deadline := time.Now().Add(3 * time.Second)
	for {
		_, stats := getJSON(t, ts.URL+"/stats")
		streaming := stats["streaming"].(map[string]any)
		if streaming["active"].(float64) == 0 && streaming["client_disconnects"].(float64) >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream handler still active 3s after client disconnect: %v", streaming)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// The job is unharmed: still done, still fully servable.
	code, body := getJSON(t, ts.URL+"/jobs/"+id)
	if code != 200 || body["status"].(string) != string(StatusDone) {
		t.Fatalf("job after disconnect: %d %v", code, body)
	}
	resp2, err := http.Get(ts.URL + "/jobs/" + id + "/result/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc := bufio.NewScanner(resp2.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		n++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 1+80_000 {
		t.Fatalf("re-served stream carried %d lines, want %d", n, 1+80_000)
	}
	_, stats := getJSON(t, ts.URL+"/stats")
	if served := stats["streaming"].(map[string]any)["served"].(float64); served < 1 {
		t.Fatalf("served counter = %v after a completed stream", served)
	}
}

// TestStreamSurvivesRestart: after a reboot the rehydrated terminal job
// streams straight from the chunked file on disk, and the buffered
// document still matches the pre-restart bytes.
func TestStreamSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ts, stop := durableServer(t, dir, Options{Workers: 2})
	dsJSON, _ := patientsJSON(t)
	_, body := postJSON(t, ts.URL+"/anonymize", AnonymizeRequest{
		Dataset: dsJSON,
		Config:  ConfigRequest{Algo: "cluster+apriori/rmerger", K: 4, M: 2, Delta: 0.5},
	})
	id := body["job"].(string)
	if st := pollDone(t, ts.URL, id); st != StatusDone {
		t.Fatalf("job finished as %s", st)
	}
	buffered := getBody(t, ts.URL+"/jobs/"+id+"/result", "")
	streamed := getBody(t, ts.URL+"/jobs/"+id+"/result/stream", "")
	stop()

	ts2, _ := durableServer(t, dir, Options{Workers: 2})
	code, view := getJSON(t, ts2.URL+"/jobs/"+id)
	if code != 200 || view["status"].(string) != string(StatusDone) {
		t.Fatalf("rehydrated job: %d %v", code, view)
	}
	if got := getBody(t, ts2.URL+"/jobs/"+id+"/result/stream", ""); !bytes.Equal(got, streamed) {
		t.Fatal("rehydrated stream diverges from pre-restart stream")
	}
	if got := getBody(t, ts2.URL+"/jobs/"+id+"/result", ""); !bytes.Equal(got, buffered) {
		t.Fatal("rehydrated buffered document diverges from pre-restart bytes")
	}
}
