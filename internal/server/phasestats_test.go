package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"secreta/internal/timing"
)

func TestPhaseStatsPercentiles(t *testing.T) {
	p := newPhaseStats()
	for i := 1; i <= 100; i++ {
		p.record([]timing.Phase{{Name: "relational", Duration: time.Duration(i) * time.Millisecond}})
	}
	view := p.snapshot()["relational"]
	if view.Count != 100 {
		t.Fatalf("count = %d, want 100", view.Count)
	}
	if view.P50ms != 50 {
		t.Errorf("p50 = %v ms, want 50", view.P50ms)
	}
	if view.P95ms != 95 {
		t.Errorf("p95 = %v ms, want 95", view.P95ms)
	}
}

func TestPhaseStatsWindowBounded(t *testing.T) {
	p := newPhaseStats()
	for i := 0; i < 3*phaseWindow; i++ {
		p.record([]timing.Phase{{Name: "merge", Duration: time.Millisecond}})
	}
	p.mu.Lock()
	n := len(p.samples["merge"])
	p.mu.Unlock()
	if n != phaseWindow {
		t.Fatalf("ring holds %d samples, want %d", n, phaseWindow)
	}
	if got := p.snapshot()["merge"].Count; got != int64(3*phaseWindow) {
		t.Fatalf("total count = %d, want %d", got, 3*phaseWindow)
	}
}

// TestStatsExposesPhaseTimings drives a real (uncached) job through the
// server and checks the end-to-end satellite: GET /stats carries per-phase
// p50/p95 aggregated from the run's timing.Phases.
func TestStatsExposesPhaseTimings(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, context.Background(), Options{Workers: 2}).Handler())
	t.Cleanup(ts.Close)

	raw, _ := patientsJSON(t)
	_, sub := postJSON(t, ts.URL+"/evaluate", map[string]any{
		"dataset": raw,
		"config":  map[string]any{"algo": "apriori", "k": 2, "m": 1},
	})
	job := sub["job"].(string)
	if st := pollDone(t, ts.URL, job); st != StatusDone {
		t.Fatalf("job ended %s, want done", st)
	}
	code, body := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: code=%d", code)
	}
	phases, ok := body["phases"].(map[string]any)
	if !ok || len(phases) == 0 {
		t.Fatalf("stats has no phase aggregates: %v", body["phases"])
	}
	for name, v := range phases {
		pv := v.(map[string]any)
		if pv["count"].(float64) < 1 {
			t.Errorf("phase %q count = %v, want >= 1", name, pv["count"])
		}
		if pv["p50_ms"].(float64) < 0 || pv["p95_ms"].(float64) < pv["p50_ms"].(float64) {
			t.Errorf("phase %q percentiles inconsistent: %v", name, pv)
		}
	}
}
