package server

import (
	"net/http"
	"strings"
	"syscall"
	"testing"
	"time"

	"secreta/internal/faultfs"
)

// TestDegradedModeProbeRearms is the degraded-mode round trip on one
// process, no restart: a permanent journal fault latches read-only mode
// (writes 503, reads and health alive, secreta_degraded=1), and once the
// disk recovers the background probe re-arms writes on its own.
func TestDegradedModeProbeRearms(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.NewFaultFS(faultfs.OS, 1)
	ts, _ := faultServer(t, dir, ffs, Options{Workers: 2, DegradedProbeInterval: 2 * time.Millisecond})

	raw, _ := patientsJSON(t)
	code, body := uploadDataset(t, ts.URL, raw)
	if code != http.StatusCreated {
		t.Fatalf("upload: %d %v", code, body)
	}
	ref := body["dataset_ref"].(string)

	// The disk breaks: every WAL append and every recovery probe fails.
	ffs.Arm(faultfs.Rule{Op: faultfs.OpWrite, Path: "wal.log", Err: syscall.EIO, Count: -1})
	ffs.Arm(faultfs.Rule{Op: faultfs.OpRename, Path: ".probe", Err: syscall.EIO, Count: -1})

	// This submission's journal append fails and latches degraded mode.
	resp, _ := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "cluster", "k": 4},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	waitDegraded(t, ts.URL, true)

	// Writes are rejected; reads and observability keep answering.
	resp, errBody := postJSON(t, ts.URL+"/anonymize", map[string]any{"dataset_ref": ref})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded POST: %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 without Retry-After")
	}
	if errBody["degraded"] != true {
		t.Fatalf("degraded 503 body: %v", errBody)
	}
	if code, _ := getJSON(t, ts.URL+"/jobs"); code != http.StatusOK {
		t.Fatalf("degraded GET /jobs: %d, want 200", code)
	}
	code, stats := getJSON(t, ts.URL+"/stats")
	if code != http.StatusOK {
		t.Fatalf("degraded GET /stats: %d", code)
	}
	if active, _ := dig(stats, "degraded", "active").(bool); !active {
		t.Fatalf("stats degraded block: %v", stats["degraded"])
	}
	if !scrapeContains(t, ts.URL, "secreta_degraded 1") {
		t.Fatal("metrics missing secreta_degraded 1 while degraded")
	}

	// The disk recovers; the probe loop must notice and re-arm writes
	// without a restart.
	ffs.Clear()
	waitDegraded(t, ts.URL, false)
	if !scrapeContains(t, ts.URL, "secreta_degraded 0") {
		t.Fatal("metrics still report secreta_degraded 1 after recovery")
	}

	// Full write path is live again: a fresh job runs to done.
	resp, sub := postJSON(t, ts.URL+"/anonymize", map[string]any{
		"dataset_ref": ref,
		"config":      map[string]any{"algo": "cluster", "k": 3},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after recovery: %d", resp.StatusCode)
	}
	if st := pollDone(t, ts.URL, sub["job"].(string)); st != StatusDone {
		t.Fatalf("job after recovery ended %s", st)
	}
}

// waitDegraded polls /healthz until the degraded flag matches want.
func waitDegraded(t *testing.T, base string, want bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, health := getJSON(t, base+"/healthz")
		if code != http.StatusOK {
			t.Fatalf("healthz: %d", code)
		}
		if (health["status"] == "degraded") == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("server never reached degraded=%v", want)
}

// scrapeContains greps one sample line out of /metrics.
func scrapeContains(t *testing.T, base, line string) bool {
	t.Helper()
	code, raw := getRaw(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	for _, l := range strings.Split(string(raw), "\n") {
		if l == line {
			return true
		}
	}
	return false
}
