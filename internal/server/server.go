// Package server implements secreta-serve: an HTTP facade over the
// engine's streaming scheduler. Anonymization, evaluation and comparison
// requests are submitted as asynchronous jobs, polled for status, and their
// JSON results retrieved when done — the "many concurrent users" deployment
// the paper's desktop frontend never had. Anonymize jobs share one result
// cache, so identical (dataset, configuration) submissions are served
// without recomputation; evaluate/compare jobs always execute so their
// runtime series are measured.
//
// Datasets travel either inline in the request body or, preferably, by
// reference: POST /datasets uploads a dataset once into a content-addressed
// registry and returns a dataset_ref, which subsequent jobs name instead of
// re-sending the rows. Referenced datasets are pinned for the lifetime of
// each job that uses them, so registry eviction (LRU under entry/byte caps)
// can never pull a dataset out from under a running job.
//
// With Options.Store set, the server is durable: datasets spill to a
// content-addressed blob store (the registry becomes a pin-aware RAM cache
// over disk), every job lifecycle transition is appended to a checksummed
// write-ahead log, terminal results and cache entries persist as blobs,
// and a restart replays snapshot+WAL — rehydrating the dataset index and
// finished jobs, and re-queueing jobs that were in flight when the process
// died. Until replay completes, /healthz reports ready:false and every
// other endpoint answers 503.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/export"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/obs"
	"secreta/internal/query"
	"secreta/internal/registry"
	"secreta/internal/store"
	"secreta/internal/timing"
)

// Options configures a Server.
type Options struct {
	// Workers bounds each job's scheduler pool (<= 0: engine default).
	Workers int
	// MaxBodyBytes caps request bodies (default 32 MiB).
	MaxBodyBytes int64
	// MaxJobs caps retained job records; the oldest finished jobs (and
	// their result payloads) are evicted beyond it (default 1000).
	MaxJobs int
	// MaxConcurrentJobs bounds jobs running at once across the server;
	// excess submissions wait in StatusQueued (default 4).
	MaxConcurrentJobs int
	// MaxPendingJobs bounds queued+running jobs; beyond it submissions
	// are rejected with 429 so a flood can't grow the store or the queue
	// without limit (default 100).
	MaxPendingJobs int
	// CacheMaxEntries and CacheMaxBytes bound the shared result cache
	// (0: engine defaults — 1024 entries / 256 MiB; negative: unbounded).
	CacheMaxEntries int
	CacheMaxBytes   int64
	// RegistryMaxDatasets and RegistryMaxBytes bound the dataset registry
	// (0: defaults — 64 datasets / 1 GiB; negative: unbounded). Pinned
	// datasets (in use by running jobs) are never evicted, so the caps can
	// be transiently exceeded while every resident dataset is in use.
	// With a Store, these bound only the RAM cache — the durable
	// population on disk is unbounded.
	RegistryMaxDatasets int
	RegistryMaxBytes    int64
	// JobTimeout is the default deadline for a job's execution (queue
	// wait excluded) and the ceiling for per-request timeout_ms; 0
	// disables both. Expired jobs end in StatusTimedOut.
	JobTimeout time.Duration
	// Store, when non-nil, makes the server durable (see the package
	// comment). The caller owns the store's lifecycle and must Close it
	// after the server's context is cancelled and jobs have drained.
	Store *store.Store
	// DegradedProbeInterval is the cadence of the storage-recovery probe
	// while the server is in degraded read-only mode (<= 0:
	// DefaultDegradedProbeInterval). See degraded.go.
	DegradedProbeInterval time.Duration
	// Tenants, when non-empty, turns on multi-tenant mode: every data
	// route requires one of the configured API keys, resources are scoped
	// to their owning tenant, per-tenant rate limits and quotas gate
	// admission, and job slots are shared by weighted round-robin (see
	// tenant.go / dispatch.go). Empty keeps today's single-tenant
	// behavior exactly.
	Tenants []TenantConfig
	// Now, when set, replaces time.Now for the tenant rate buckets and
	// the GC sweeper's clock — injectable so tests control time.
	Now func() time.Time
	// DataMaxBytes, with a Store, caps the data directory's total bytes:
	// a background sweeper evicts the disk cache, then the oldest
	// unpinned terminal jobs, then unreferenced dataset blobs until the
	// directory fits (see gc.go). 0 disables GC.
	DataMaxBytes int64
	// GCInterval is the sweeper's cadence (<= 0: 30s). Job completions
	// additionally nudge the sweeper out of cycle.
	GCInterval time.Duration
	// Logger receives the server's structured logs (nil: slog.Default()).
	Logger *slog.Logger
}

// Registry defaults: generous enough for interactive use, bounded enough
// that a long-lived server's dataset memory stays flat.
const (
	DefaultRegistryDatasets = 64
	DefaultRegistryBytes    = 1 << 30 // 1 GiB of approximate dataset memory
)

// Server routes the secreta-serve HTTP API and owns the job store, the
// schedulers and the shared result cache.
type Server struct {
	opts Options
	mux  *http.ServeMux
	jobs *jobStore
	// sched serves single-configuration jobs from the shared cache;
	// uncached runs sweep/compare jobs, whose per-point runtime series
	// are benchmarks and must be measured, never copied from a cache hit.
	sched    *engine.Scheduler
	uncached *engine.Scheduler
	cache    *engine.Cache
	registry *registry.Registry
	st       *store.Store // nil: memory-only
	phases   *phaseStats
	logger   *slog.Logger
	// dash holds the dashboard's short sparkline history (see dashboard.go).
	dash    *dashHistory
	baseCtx context.Context
	// ready gates traffic: false while WAL replay re-populates the job
	// table. Memory-only servers are born ready.
	ready    atomic.Bool
	recMu    sync.Mutex
	recovery recoveryInfo
	// degraded latches the server read-only after a permanent storage
	// fault on a durable write; see degraded.go.
	degraded degradedState
	// streams counts NDJSON result deliveries: in-flight, completed, and
	// cut short by a client disconnect. Surfaced on GET /stats so an
	// operator can see streaming health at a glance.
	streams struct {
		active      atomic.Int64
		served      atomic.Uint64
		disconnects atomic.Uint64
	}
	// tenants is the multi-tenant table (nil: single-tenant mode; see
	// tenant.go). dispatch shares the job slots across tenants by
	// weighted round-robin (nil exactly when tenants is nil). gc is the
	// disk retention sweeper (nil unless durable with DataMaxBytes set).
	tenants  *tenantSet
	dispatch *dispatcher
	gc       *gcState
	// slots is the admission semaphore: a job must hold a slot to run.
	slots chan struct{}
	// uploadSlots bounds concurrent POST /datasets decodes. Uploads don't
	// consume job slots, but decoding up to MaxBodyBytes of JSON is real
	// CPU/memory — without a bound, a flood of uploads could saturate the
	// machine while never tripping the job admission caps.
	uploadSlots chan struct{}
}

// capOrDefault resolves the Options cap convention: 0 picks the default,
// negative disables the bound (0 at the registry/cache layer).
func capOrDefault[T int | int64](v, def T) T {
	if v == 0 {
		return def
	}
	if v < 0 {
		return 0
	}
	return v
}

// New builds a server whose jobs are children of ctx: cancelling it (e.g.
// on process shutdown) cancels every in-flight job. With Options.Store
// set, New wires the durable layers and starts journal replay in the
// background; the server answers 503 (except /healthz) until it
// completes.
func New(ctx context.Context, opts Options) (*Server, error) {
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = 32 << 20
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = 1000
	}
	if opts.MaxConcurrentJobs <= 0 {
		opts.MaxConcurrentJobs = 4
	}
	if opts.MaxPendingJobs <= 0 {
		opts.MaxPendingJobs = 100
	}
	cache := engine.NewCacheSized(
		capOrDefault(opts.CacheMaxEntries, engine.DefaultCacheEntries),
		capOrDefault(opts.CacheMaxBytes, int64(engine.DefaultCacheBytes)),
	)
	regEntries := capOrDefault(opts.RegistryMaxDatasets, DefaultRegistryDatasets)
	regBytes := capOrDefault(opts.RegistryMaxBytes, int64(DefaultRegistryBytes))
	var reg *registry.Registry
	if opts.Store != nil {
		cache.SetBacking(opts.Store.Cache)
		var err error
		reg, err = registry.NewBacked(regEntries, regBytes, datasetBacking{opts.Store.Datasets})
		if err != nil {
			return nil, fmt.Errorf("server: rehydrating dataset registry: %w", err)
		}
	} else {
		reg = registry.New(regEntries, regBytes)
	}
	s := &Server{
		opts:        opts,
		mux:         http.NewServeMux(),
		jobs:        newJobStore(opts.MaxJobs),
		sched:       engine.NewScheduler(opts.Workers, cache),
		uncached:    engine.NewScheduler(opts.Workers, nil),
		cache:       cache,
		registry:    reg,
		st:          opts.Store,
		phases:      newPhaseStats(),
		logger:      opts.Logger,
		dash:        newDashHistory(),
		baseCtx:     ctx,
		slots:       make(chan struct{}, opts.MaxConcurrentJobs),
		uploadSlots: make(chan struct{}, opts.MaxConcurrentJobs),
	}
	s.mux.HandleFunc("POST /datasets", s.handleDatasetUpload)
	s.mux.HandleFunc("GET /datasets", s.handleDatasetList)
	s.mux.HandleFunc("GET /datasets/{id}", s.handleDatasetInfo)
	s.mux.HandleFunc("DELETE /datasets/{id}", s.handleDatasetDelete)
	s.mux.HandleFunc("POST /anonymize", s.handleAnonymize)
	s.mux.HandleFunc("POST /evaluate", s.handleEvaluate)
	s.mux.HandleFunc("POST /compare", s.handleCompare)
	s.mux.HandleFunc("GET /jobs", s.handleJobList)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /jobs/{id}/result/stream", s.handleJobResultStream)
	s.mux.HandleFunc("GET /jobs/{id}/trace", s.handleJobTrace)
	s.mux.HandleFunc("DELETE /jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /dashboard", s.handleDashboard)
	s.mux.HandleFunc("GET /dashboard/data", s.handleDashboardData)
	s.jobs.logger = opts.Logger
	if len(opts.Tenants) > 0 {
		if err := ValidateTenants(opts.Tenants); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		s.tenants = newTenantSet(opts.Tenants, opts.Now)
		s.dispatch = newDispatcher(ctx, s.slots, s.tenants)
	}
	if opts.DataMaxBytes > 0 && s.st != nil {
		s.gc = newGCState(opts.DataMaxBytes, opts.GCInterval, opts.Now)
		go s.gcLoop(ctx)
	}
	if s.st == nil {
		s.ready.Store(true)
	} else {
		s.jobs.attachStore(s.st.Journal, s.st.Results, s.st.ResultChunks, s.st.Traces)
		s.jobs.shuttingDown = func() bool { return ctx.Err() != nil }
		// A failed journal append is a durable-write fault like any other:
		// classify it and, when permanent, latch degraded mode.
		s.jobs.onJournalError = func(err error) { s.storeFault("journal append", err) }
		go s.recover()
		go s.probeLoop()
	}
	return s, nil
}

// log returns the server's structured logger, falling back to the process
// default.
func (s *Server) log() *slog.Logger {
	if s.logger != nil {
		return s.logger
	}
	return slog.Default()
}

// Handler returns the routed HTTP handler, wrapped in the readiness
// gate: while journal replay runs, only /healthz is served — admitting a
// job before its predecessors are re-queued would reorder history. In
// multi-tenant mode the API-key gate resolves the caller's tenant next
// (401 without a valid key) and the per-tenant token bucket meters POSTs
// (429 + Retry-After). A final gate holds POST routes while the server
// is in degraded read-only mode (see degraded.go); reads keep flowing.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !s.ready.Load() && r.URL.Path != "/healthz" {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"error": "server is replaying its journal; retry shortly",
				"ready": false,
			})
			return
		}
		r, done := s.authGate(w, r)
		if done {
			return
		}
		// Only POSTs spend tokens: pollers watching job status must not be
		// throttled into missing their own completions.
		if r.Method == http.MethodPost && s.rateGate(w, r) {
			return
		}
		if s.gateWrite(w, r) {
			return
		}
		s.mux.ServeHTTP(w, r)
	})
}

// ---- request payloads ----

// ConfigRequest describes one anonymization configuration. Hierarchies are
// auto-generated from the dataset with the given fanout, mirroring the CLI
// default when no hierarchy directory is supplied.
type ConfigRequest struct {
	Label     string   `json:"label,omitempty"`
	Algo      string   `json:"algo"`
	K         int      `json:"k"`
	M         int      `json:"m,omitempty"`
	Delta     float64  `json:"delta,omitempty"`
	Rho       float64  `json:"rho,omitempty"`
	Sensitive []string `json:"sensitive,omitempty"`
	QIs       []string `json:"qis,omitempty"`
	Fanout    int      `json:"fanout,omitempty"`
}

// SweepRequest describes a varying-parameter execution.
type SweepRequest struct {
	Param string  `json:"param"`
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	Step  float64 `json:"step"`
}

func (sr *SweepRequest) sweep() experiment.Sweep {
	return experiment.Sweep{Param: sr.Param, Start: sr.Start, End: sr.End, Step: sr.Step}
}

// AnonymizeRequest is the POST /anonymize and POST /evaluate body; Sweep is
// only honored by /evaluate. Exactly one of Dataset (inline rows) and
// DatasetRef (an ID returned by POST /datasets) must be set. TimeoutMS
// bounds the job's execution (capped by the server's -job-timeout).
type AnonymizeRequest struct {
	Dataset    json.RawMessage `json:"dataset,omitempty"`
	DatasetRef string          `json:"dataset_ref,omitempty"`
	Config     ConfigRequest   `json:"config"`
	Sweep      *SweepRequest   `json:"sweep,omitempty"`
	Workload   []string        `json:"workload,omitempty"`
	TimeoutMS  int64           `json:"timeout_ms,omitempty"`
}

// CompareRequest is the POST /compare body. Exactly one of Dataset and
// DatasetRef must be set.
type CompareRequest struct {
	Dataset    json.RawMessage `json:"dataset,omitempty"`
	DatasetRef string          `json:"dataset_ref,omitempty"`
	Configs    []ConfigRequest `json:"configs"`
	Sweep      SweepRequest    `json:"sweep"`
	Workload   []string        `json:"workload,omitempty"`
	TimeoutMS  int64           `json:"timeout_ms,omitempty"`
}

// hierSet memoizes per-fanout hierarchy derivation within one request, so
// a /compare with N configs sharing a fanout derives them once, not N
// times.
type hierSet struct {
	ds    *dataset.Dataset
	rel   map[int]generalize.Set
	items map[int]*hierarchy.Hierarchy
}

func newHierSet(ds *dataset.Dataset) *hierSet {
	return &hierSet{ds: ds, rel: make(map[int]generalize.Set), items: make(map[int]*hierarchy.Hierarchy)}
}

func (h *hierSet) relational(fanout int) (generalize.Set, error) {
	if hs, ok := h.rel[fanout]; ok {
		return hs, nil
	}
	hs, err := gen.Hierarchies(h.ds, fanout)
	if err != nil {
		return nil, err
	}
	h.rel[fanout] = hs
	return hs, nil
}

func (h *hierSet) item(fanout int) (*hierarchy.Hierarchy, error) {
	if ih, ok := h.items[fanout]; ok {
		return ih, nil
	}
	ih, err := gen.ItemHierarchy(h.ds, fanout)
	if err != nil {
		return nil, err
	}
	h.items[fanout] = ih
	return ih, nil
}

// validateConfig parses the algorithm spec and parameters — everything
// checkable without touching the dataset — so bad submissions fail fast
// with 400 while the heavy per-dataset work stays inside the admitted job.
// It returns the config skeleton and the hierarchy fanout.
func validateConfig(req ConfigRequest) (engine.Config, int, error) {
	if req.K <= 0 {
		return engine.Config{}, 0, fmt.Errorf("config: k must be positive, got %d", req.K)
	}
	cfg, err := engine.ConfigFromSpec(req.Algo)
	if err != nil {
		return engine.Config{}, 0, fmt.Errorf("config: %w", err)
	}
	cfg.Label = req.Label
	cfg.K = req.K
	cfg.M = req.M
	cfg.Delta = req.Delta
	cfg.Rho = req.Rho
	cfg.Sensitive = req.Sensitive
	cfg.QIs = req.QIs
	fanout := req.Fanout
	if fanout <= 0 {
		fanout = 4
	}
	return cfg, fanout, nil
}

// parseWorkload parses inline workload lines (nil when absent).
func parseWorkload(lines []string) (*query.Workload, error) {
	if len(lines) == 0 {
		return nil, nil
	}
	w, err := query.Read(strings.NewReader(strings.Join(lines, "\n")))
	if err != nil {
		return nil, fmt.Errorf("workload: %w", err)
	}
	return w, nil
}

// attachInputs derives the hierarchies the config's mode needs and sets
// the workload. It runs inside the job, under admission control — its cost
// is O(dataset) and must not be spendable by unadmitted requests.
func attachInputs(cfg *engine.Config, ds *dataset.Dataset, hiers *hierSet, fanout int, w *query.Workload) error {
	var err error
	if cfg.Mode != engine.Transactional {
		if cfg.Hierarchies, err = hiers.relational(fanout); err != nil {
			return fmt.Errorf("config: deriving hierarchies: %w", err)
		}
	}
	if cfg.Mode != engine.Relational && ds.HasTransaction() {
		if cfg.ItemHierarchy, err = hiers.item(fanout); err != nil {
			return fmt.Errorf("config: deriving item hierarchy: %w", err)
		}
	}
	cfg.Workload = w
	return nil
}

// hasDataset reports whether the request actually carries a dataset
// payload (absent and JSON null both count as missing).
func hasDataset(raw json.RawMessage) bool {
	trimmed := bytes.TrimSpace(raw)
	return len(trimmed) > 0 && string(trimmed) != "null"
}

func decodeDataset(raw json.RawMessage) (*dataset.Dataset, error) {
	return dataset.ReadJSON(bytes.NewReader(raw))
}

// resolveDataset turns a request's dataset fields into a loader. Exactly
// one of raw (inline rows) and ref (an ID from POST /datasets) must be
// set. A ref is reserved immediately — before the job is even admitted —
// so the dataset cannot be deleted between submission and execution, but
// its bytes are loaded (and RAM-pinned) only when the job starts: with a
// durable backing, a deep queue of submissions holds index entries, not
// dataset memory, so pinned RAM scales with -max-concurrent rather than
// queue depth. The returned release (idempotent, never nil) must be
// called when the job finishes or the submission is rejected. Inline
// payloads decode lazily inside the job, under admission control, so
// unadmitted requests cannot spend decode CPU.
//
// owner, when non-empty (multi-tenant submissions), requires the caller's
// tenant to have claimed the ref: another tenant's dataset — even one
// whose content fingerprint the caller guessed — answers the same
// not-found error as a ref that never existed.
func (s *Server) resolveDataset(raw json.RawMessage, ref, owner string) (load func() (*dataset.Dataset, error), release func(), err error) {
	inline := hasDataset(raw)
	switch {
	case inline && ref != "":
		return nil, nil, fmt.Errorf("request has both dataset and dataset_ref; provide exactly one")
	case !inline && ref == "":
		return nil, nil, fmt.Errorf("request has no dataset (inline dataset or dataset_ref required)")
	case inline:
		return func() (*dataset.Dataset, error) { return decodeDataset(raw) }, func() {}, nil
	}
	if owner != "" && !s.tenants.owns(ref, owner) {
		return nil, nil, fmt.Errorf("%w: %q", registry.ErrNotFound, ref)
	}
	return s.registry.PinLazy(ref)
}

// datasetError writes the right status for a dataset resolution failure:
// an unknown (or already evicted) dataset_ref is 404, a broken durable
// backing is 500, an oversized dataset 507, everything else a plain bad
// request.
func (s *Server) datasetError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, registry.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
	case errors.Is(err, registry.ErrStore):
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	case errors.Is(err, registry.ErrTooLarge):
		writeJSON(w, http.StatusInsufficientStorage, map[string]any{"error": err.Error()})
	default:
		s.badRequest(w, err)
	}
}

// ---- job preparation ----

// preparedJob is a validated submission, ready to run (and re-run: the
// recovery path rebuilds one from the journaled request body after a
// crash). release frees resources acquired at preparation time — the
// registry pin — and must be called exactly once on every exit path.
type preparedJob struct {
	fn         func(context.Context) (*jobOutcome, error)
	release    func()
	timeout    time.Duration
	datasetRef string
}

// effectiveTimeout combines the per-request budget with the server
// default: the request can only tighten the operator's bound, never
// loosen it.
func (s *Server) effectiveTimeout(ms int64) time.Duration {
	def := s.opts.JobTimeout
	if ms <= 0 {
		return def
	}
	t := time.Duration(ms) * time.Millisecond
	if def > 0 && t > def {
		return def
	}
	return t
}

// decodeStrict unmarshals a request body, rejecting unknown fields.
func decodeStrict(data []byte, dst any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// prepareJob validates a raw request body for the given kind and builds
// its runnable. Everything observable before admission happens here —
// parse errors, config validation, the dataset pin — which is exactly
// what makes journaled bodies re-queueable: recovery calls prepareJob
// again and gets a fresh pin and a fresh closure.
func (s *Server) prepareJob(kind string, body []byte, owner string) (*preparedJob, error) {
	switch kind {
	case "anonymize", "evaluate":
		var req AnonymizeRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, err
		}
		return s.prepareSingle(kind, &req, owner)
	case "compare":
		var req CompareRequest
		if err := decodeStrict(body, &req); err != nil {
			return nil, err
		}
		return s.prepareCompare(&req, owner)
	}
	return nil, fmt.Errorf("unknown job kind %q", kind)
}

// prepareSingle builds anonymize and evaluate jobs (the latter optionally
// a sweep).
func (s *Server) prepareSingle(kind string, req *AnonymizeRequest, owner string) (*preparedJob, error) {
	if kind == "anonymize" && req.Sweep != nil {
		// Reject rather than silently running the base config once.
		return nil, fmt.Errorf("sweep is not supported by /anonymize; use /evaluate")
	}
	cfg, fanout, err := validateConfig(req.Config)
	if err != nil {
		return nil, err
	}
	workload, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	if req.Sweep != nil {
		sweep := req.Sweep.sweep()
		if err := sweep.Validate(); err != nil {
			return nil, err
		}
		load, release, err := s.resolveDataset(req.Dataset, req.DatasetRef, owner)
		if err != nil {
			return nil, err
		}
		fn := func(ctx context.Context) (*jobOutcome, error) {
			ds, err := s.loadTraced(ctx, load)
			if err != nil {
				return nil, err
			}
			if err := attachInputs(&cfg, ds, newHierSet(ds), fanout, workload); err != nil {
				return nil, err
			}
			series, err := experiment.VaryingRunCtx(ctx, ds, cfg, sweep, s.uncached)
			if err != nil {
				return nil, err
			}
			return seriesPayload([]*experiment.Series{series})
		}
		return &preparedJob{fn: fn, release: release, timeout: s.effectiveTimeout(req.TimeoutMS), datasetRef: req.DatasetRef}, nil
	}
	load, release, err := s.resolveDataset(req.Dataset, req.DatasetRef, owner)
	if err != nil {
		return nil, err
	}
	var fn func(context.Context) (*jobOutcome, error)
	if kind == "anonymize" {
		fn = func(ctx context.Context) (*jobOutcome, error) {
			res, cacheHit, err := s.runSingle(ctx, s.sched, load, cfg, fanout, workload)
			if err != nil {
				return nil, err
			}
			return anonymizeOutcome(res, cacheHit)
		}
	} else {
		fn = func(ctx context.Context) (*jobOutcome, error) {
			// Uncached like the CLI: /evaluate is a measurement, so its
			// runtime must come from a real execution.
			res, _, err := s.runSingle(ctx, s.uncached, load, cfg, fanout, workload)
			if err != nil {
				return nil, err
			}
			return resultsPayload([]*engine.Result{res})
		}
	}
	return &preparedJob{fn: fn, release: release, timeout: s.effectiveTimeout(req.TimeoutMS), datasetRef: req.DatasetRef}, nil
}

func (s *Server) prepareCompare(req *CompareRequest, owner string) (*preparedJob, error) {
	if len(req.Configs) == 0 {
		return nil, fmt.Errorf("compare request has no configs")
	}
	bases := make([]engine.Config, len(req.Configs))
	fanouts := make([]int, len(req.Configs))
	for i, cr := range req.Configs {
		cfg, fanout, err := validateConfig(cr)
		if err != nil {
			return nil, fmt.Errorf("config %d: %w", i, err)
		}
		if cfg.Label == "" {
			cfg.Label = cr.Algo
		}
		bases[i], fanouts[i] = cfg, fanout
	}
	workload, err := parseWorkload(req.Workload)
	if err != nil {
		return nil, err
	}
	sweep := req.Sweep.sweep()
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	load, release, err := s.resolveDataset(req.Dataset, req.DatasetRef, owner)
	if err != nil {
		return nil, err
	}
	fn := func(ctx context.Context) (*jobOutcome, error) {
		ds, err := s.loadTraced(ctx, load)
		if err != nil {
			return nil, err
		}
		hiers := newHierSet(ds)
		for i := range bases {
			if err := attachInputs(&bases[i], ds, hiers, fanouts[i], workload); err != nil {
				return nil, err
			}
		}
		series, err := experiment.CompareCtx(ctx, ds, bases, sweep, s.uncached)
		if err != nil {
			return nil, err
		}
		return seriesPayload(series)
	}
	return &preparedJob{fn: fn, release: release, timeout: s.effectiveTimeout(req.TimeoutMS), datasetRef: req.DatasetRef}, nil
}

// runSingle is the shared single-configuration job body: load the dataset
// (decode inline rows, or hand back the pinned registry copy), attach
// hierarchies/workload, and execute through the given scheduler. It runs
// inside the job, behind admission control. The bool reports whether the
// result was served from the cache — payloads surface it so a copied
// runtime_s is never mistaken for a fresh measurement.
func (s *Server) runSingle(ctx context.Context, sched *engine.Scheduler, load func() (*dataset.Dataset, error), cfg engine.Config, fanout int, workload *query.Workload) (*engine.Result, bool, error) {
	ds, err := s.loadTraced(ctx, load)
	if err != nil {
		return nil, false, err
	}
	if err := attachInputs(&cfg, ds, newHierSet(ds), fanout, workload); err != nil {
		return nil, false, err
	}
	var item engine.Item
	got := false
	for it := range sched.Stream(ctx, ds, []engine.Config{cfg}) {
		item, got = it, true
	}
	if !got {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		return nil, false, fmt.Errorf("scheduler emitted no result")
	}
	if item.Result.Err != nil {
		return nil, false, item.Result.Err
	}
	if !item.CacheHit {
		// Fold the measured phase breakdown into the /stats aggregates; a
		// cache hit replays stored timings and would skew the percentiles.
		s.phases.record(item.Result.Phases)
		s.logPhases(ctx, ds, item.Result.Phases)
	}
	return item.Result, item.CacheHit, nil
}

// loadTraced wraps a job's dataset load in a trace span annotated with the
// dataset's content fingerprint and size.
func (s *Server) loadTraced(ctx context.Context, load func() (*dataset.Dataset, error)) (*dataset.Dataset, error) {
	sp := obs.FromCtx(ctx).Start("dataset_load")
	defer sp.End()
	ds, err := load()
	if err != nil {
		sp.SetAttr("err", err.Error())
		return nil, err
	}
	sp.SetAttr("fingerprint", ds.Fingerprint())
	sp.SetAttr("records", strconv.Itoa(len(ds.Records)))
	return ds, nil
}

// logPhases emits one structured log line per measured algorithm phase —
// job_id (the trace's job), dataset fingerprint, phase name, duration —
// the queryable form of the per-job phase breakdown.
func (s *Server) logPhases(ctx context.Context, ds *dataset.Dataset, phases []timing.Phase) {
	if len(phases) == 0 {
		return
	}
	lg := s.log()
	jobID := obs.FromCtx(ctx).TraceID()
	fp := ds.Fingerprint()
	for _, ph := range phases {
		lg.Info("phase complete",
			"job_id", jobID,
			"dataset", fp,
			"phase", ph.Name,
			"duration_s", ph.Duration.Seconds(),
		)
	}
}

// ---- handlers ----

func (s *Server) handleAnonymize(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "anonymize")
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "evaluate")
}

func (s *Server) handleCompare(w http.ResponseWriter, r *http.Request) {
	s.handleSubmit(w, r, "compare")
}

// handleSubmit is the shared submission path: read the (bounded) body,
// validate it into a preparedJob, and hand both to submit — the body
// rides along into the journal so a crash can re-queue the job.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, kind string) {
	body, ok := s.readBody(w, r)
	if !ok {
		return
	}
	tenant := reqTenant(r)
	p, err := s.prepareJob(kind, body, tenant)
	if err != nil {
		s.datasetError(w, err)
		return
	}
	s.submit(w, kind, body, p, tenant)
}

// handleDatasetUpload stores the posted dataset — the same JSON format the
// inline "dataset" field carries — in the content-addressed registry and
// returns its dataset_ref. The ref is the dataset's content fingerprint:
// re-uploading identical content yields the same ref (created=false, 200)
// and refreshes its recency; new content answers 201. With a durable
// store, the dataset is on disk (fsync'd) before the response is sent.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	select {
	case s.uploadSlots <- struct{}{}:
		defer func() { <-s.uploadSlots }()
	default:
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": fmt.Sprintf("server saturated: %d dataset uploads in flight", cap(s.uploadSlots)),
		})
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	ds, err := dataset.ReadJSON(body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return
		}
		s.badRequest(w, fmt.Errorf("decoding dataset: %w", err))
		return
	}
	if tst := s.tenantState(r); tst != nil {
		// Stored-bytes quota, checked before the write. A re-upload of a
		// ref the tenant already claims is free (content-addressed: same
		// bytes, same claim). The check-then-claim window means two racing
		// novel uploads can overshoot by one dataset — the quota is an
		// admission bound, not an accounting ledger.
		cost := ds.ApproxBytes()
		if tst.cfg.MaxStoredBytes > 0 && !s.tenants.owns(ds.Fingerprint(), tst.cfg.ID) &&
			tst.storedBytes.Load()+cost > tst.cfg.MaxStoredBytes {
			tst.rejected.Add(1)
			quotaReject(w, http.StatusForbidden, "quota_stored_bytes",
				fmt.Sprintf("tenant %q would exceed its stored-bytes quota (%d of %d bytes used, upload is %d)",
					tst.cfg.ID, tst.storedBytes.Load(), tst.cfg.MaxStoredBytes, cost))
			return
		}
	}
	id, created, err := s.registry.Add(ds)
	if err != nil {
		s.datasetError(w, err)
		return
	}
	if tenant := reqTenant(r); tenant != "" {
		// Ownership is a claim on the content-addressed blob: tenants
		// uploading identical bytes share one blob, each holding its own
		// journaled claim. The blob is GC-eligible only when unclaimed.
		if s.tenants.claim(id, tenant, ds.ApproxBytes()) {
			s.journalClaim(id, tenant, ds.ApproxBytes())
		}
	}
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, map[string]any{
		"dataset_ref": id,
		"created":     created,
		"attrs":       len(ds.Attrs),
		"records":     len(ds.Records),
		"bytes":       ds.ApproxBytes(),
	})
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	infos := s.registry.List()
	if s.tenants != nil {
		// Only refs the caller's tenant has claimed — sharing a blob with
		// another tenant is invisible from either side.
		tenant := reqTenant(r)
		scoped := infos[:0]
		for _, info := range infos {
			if s.tenants.owns(info.ID, tenant) {
				scoped = append(scoped, info)
			}
		}
		infos = scoped
	}
	if infos == nil {
		infos = []registry.Info{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": infos})
}

func (s *Server) handleDatasetInfo(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.tenants != nil && !s.tenants.owns(id, reqTenant(r)) {
		writeJSON(w, http.StatusNotFound, map[string]any{
			"error": fmt.Sprintf("%v: %q", registry.ErrNotFound, id),
		})
		return
	}
	info, err := s.registry.Describe(id)
	if err != nil {
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleDatasetDelete evicts a dataset explicitly (from disk too, when
// durable). A dataset pinned by a running job cannot be deleted; the
// client gets 409 and may retry after the job finishes. In multi-tenant
// mode the delete releases the caller's claim; the shared blob is only
// removed once no tenant claims it, and a ref the caller never claimed
// answers 404 exactly like one that never existed.
func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if s.tenants != nil {
		tenant := reqTenant(r)
		if !s.tenants.owns(id, tenant) {
			writeJSON(w, http.StatusNotFound, map[string]any{
				"error": fmt.Sprintf("%v: %q", registry.ErrNotFound, id),
			})
			return
		}
		_, last := s.tenants.release(id, tenant)
		if last {
			if err := s.registry.Remove(id); errors.Is(err, registry.ErrPinned) {
				// The caller's own running job holds the blob (no other
				// tenant claims it, and unclaimed refs are unusable in new
				// submissions). Undo the release and report the conflict.
				s.tenants.claim(id, tenant, datasetClaimBytes(s.registry, id))
				writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
				return
			} else if err != nil && !errors.Is(err, registry.ErrNotFound) {
				s.log().Warn("deleting dataset blob failed", "dataset", id, "err", err)
			}
		}
		s.journalRelease(id, tenant)
		writeJSON(w, http.StatusOK, map[string]any{"dataset_ref": id, "deleted": true})
		return
	}
	switch err := s.registry.Remove(id); {
	case errors.Is(err, registry.ErrNotFound):
		writeJSON(w, http.StatusNotFound, map[string]any{"error": err.Error()})
	case errors.Is(err, registry.ErrPinned):
		writeJSON(w, http.StatusConflict, map[string]any{"error": err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"dataset_ref": id, "deleted": true})
	}
}

// datasetClaimBytes recovers the claim size when a release has to be
// undone (Describe still answers for a pinned dataset).
func datasetClaimBytes(reg *registry.Registry, id string) int64 {
	if info, err := reg.Describe(id); err == nil {
		return info.Bytes
	}
	return 0
}

// handleJobList supports ?state= (one lifecycle state), ?limit= (max
// entries returned) and ?after= (a job ID cursor: only jobs submitted
// after it), so polling a long-lived durable job table doesn't dump
// thousands of entries. total counts every match before pagination.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	params := r.URL.Query()
	var q jobQuery
	if st := params.Get("state"); st != "" {
		q.state = Status(st)
		if !validListState(q.state) {
			s.badRequest(w, fmt.Errorf("unknown state %q", st))
			return
		}
	}
	if lim := params.Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		// 0 is rejected rather than silently meaning "unlimited" — the
		// internal sentinel must not be reachable from the query string.
		if err != nil || n < 1 {
			s.badRequest(w, fmt.Errorf("limit must be a positive integer, got %q", lim))
			return
		}
		q.limit = n
	}
	if after := params.Get("after"); after != "" {
		seq, err := parseJobSeq(after)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		q.afterSeq = seq
	}
	if s.tenants != nil {
		// The cursor is just a sequence watermark; the tenant filter still
		// applies to every row, so `after=` cannot leak foreign jobs.
		q.tenant = reqTenant(r)
		q.tenantScoped = true
	}
	views, total := s.jobs.list(q)
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views, "total": total})
}

// jobFor resolves a job ID to a job the request may see: in
// multi-tenant mode another tenant's job is indistinguishable from a
// missing one (nil here, 404 at the caller).
func (s *Server) jobFor(r *http.Request, id string) *job {
	j := s.jobs.get(id)
	if j == nil {
		return nil
	}
	if s.tenants != nil && j.tenant != reqTenant(r) {
		return nil
	}
	return j
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(r, r.PathValue("id"))
	if j == nil {
		s.notFound(w, r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleJobTrace serves a job's lifecycle span tree. A job with a live
// trace (queued, running, or finished this process lifetime) answers from
// the in-memory recorder — mid-flight snapshots show open spans with
// durations up to now. A terminal job recovered from the journal answers
// from its persisted trace snapshot, so traces survive restart.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j := s.jobFor(r, id)
	if j == nil {
		s.notFound(w, id)
		return
	}
	if j.trace != nil {
		writeJSON(w, http.StatusOK, j.trace.View())
		return
	}
	if s.st != nil {
		if data, err := s.st.Traces.Get(id); err == nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(data)
			return
		}
	}
	writeJSON(w, http.StatusNotFound, map[string]any{
		"error": fmt.Sprintf("no trace recorded for job %q", id),
	})
}

// handleJobResult serves a finished job's result as one JSON document,
// assembled incrementally from the retained record stream for anonymize
// jobs (the bytes are identical to the historical fully-buffered
// construction). With `Accept: application/x-ndjson` the response is the
// NDJSON stream instead — the same negotiation /result/stream offers
// unconditionally.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	if acceptsNDJSON(r) {
		s.handleJobResultStream(w, r)
		return
	}
	j := s.jobFor(r, r.PathValue("id"))
	if j == nil {
		s.notFound(w, r.PathValue("id"))
		return
	}
	status, result, errMsg := j.snapshot()
	if status != StatusDone {
		s.writeUnfinished(w, j, status, errMsg)
		return
	}
	if result == nil {
		// Unreachable by construction (a done job always retains a
		// result), but a nil here must not panic the handler.
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"job": j.id, "status": status, "error": "job finished without a result",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if result.full != nil {
		w.Write(result.full)
		return
	}
	if err := writeBufferedAnonymize(w, result.meta, result.recs); err != nil {
		// The 200 is already on the wire. Abort the connection so the
		// client sees a broken transfer (no terminating chunk), never a
		// transport-complete response with a silently truncated body.
		s.log().Error("assembling result failed mid-response", "job_id", j.id, "err", err)
		panic(http.ErrAbortHandler)
	}
}

// handleJobResultStream serves a finished anonymize job's result as
// NDJSON — one meta header line, then one record per line — writing and
// flushing in chunkTarget batches. The response streams straight from the
// retained record source (interned columns in RAM, or the chunked file on
// disk), so serving N records needs O(chunk) memory; a slow or gone
// client stalls only this handler's goroutine, never a job worker slot.
// Client disconnects are detected via the request context between
// batches, freeing the connection promptly without affecting the job.
func (s *Server) handleJobResultStream(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(r, r.PathValue("id"))
	if j == nil {
		s.notFound(w, r.PathValue("id"))
		return
	}
	status, result, errMsg := j.snapshot()
	if status != StatusDone {
		s.writeUnfinished(w, j, status, errMsg)
		return
	}
	if result == nil || result.meta == nil {
		// Series results (evaluate/compare) are small documents with no
		// record stream; only the buffered route can represent them.
		writeJSON(w, http.StatusNotAcceptable, map[string]any{
			"error": fmt.Sprintf("job %s (%s) has no record stream; GET /jobs/%s/result instead", j.id, j.kind, j.id),
		})
		return
	}
	meta, err := json.Marshal(result.meta)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]any{"error": err.Error()})
		return
	}
	s.streams.active.Add(1)
	defer s.streams.active.Add(-1)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	ctx := r.Context()
	rc := http.NewResponseController(w)
	buf := make([]byte, 0, chunkTarget+4096)
	buf = append(append(buf, meta...), '\n')
	flush := func() error {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
		buf = buf[:0]
		rc.Flush()
		return nil
	}
	err = result.recs.stream(func(line []byte) error {
		buf = append(append(buf, line...), '\n')
		if len(buf) >= chunkTarget {
			return flush()
		}
		return nil
	})
	if err == nil && len(buf) > 0 {
		err = flush()
	}
	if err != nil {
		if ctx.Err() != nil || errors.Is(err, context.Canceled) {
			s.streams.disconnects.Add(1)
			return
		}
		// A server-side failure (e.g. a corrupt result file) mid-stream:
		// abort the connection rather than ending the chunked body
		// cleanly, so the short stream cannot be mistaken for complete.
		s.log().Error("streaming result failed mid-response", "job_id", j.id, "err", err)
		panic(http.ErrAbortHandler)
	}
	s.streams.served.Add(1)
	// Visible in the live trace of a job still in memory; the persisted
	// snapshot (written at job finish) predates delivery by construction.
	j.trace.Root().Event("stream_served")
}

// writeUnfinished answers a result request for a job that is not done.
func (s *Server) writeUnfinished(w http.ResponseWriter, j *job, status Status, errMsg string) {
	switch status {
	case StatusFailed, StatusTimedOut:
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"job": j.id, "status": status, "error": errMsg,
		})
	case StatusCancelled:
		writeJSON(w, http.StatusGone, map[string]any{
			"job": j.id, "status": status,
		})
	default:
		// Not finished yet: tell the poller to come back.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusAccepted, j.view())
	}
}

// acceptsNDJSON reports whether the request negotiates the streaming
// representation on the buffered result route: an NDJSON media range
// listed in Accept with a non-zero quality. Full content-negotiation
// scoring is deliberately out of scope — JSON stays the default unless
// the client names NDJSON.
func acceptsNDJSON(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaRange, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		switch strings.ToLower(strings.TrimSpace(mediaRange)) {
		case "application/x-ndjson", "application/ndjson":
		default:
			continue
		}
		refused := false
		for _, p := range strings.Split(params, ";") {
			k, v, ok := strings.Cut(strings.TrimSpace(p), "=")
			if !ok || !strings.EqualFold(strings.TrimSpace(k), "q") {
				continue
			}
			if q, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err == nil && q == 0 {
				refused = true
			}
		}
		if !refused {
			return true
		}
	}
	return false
}

// handleJobCancel stops a queued/running job; on a job that already
// finished it deletes the record (and its retained result — durable copy
// included) instead.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobFor(r, r.PathValue("id"))
	if j == nil {
		s.notFound(w, r.PathValue("id"))
		return
	}
	if v := j.view(); v.Status.Terminal() {
		s.jobs.remove(j.id)
		writeJSON(w, http.StatusOK, map[string]any{"job": j.id, "status": v.Status, "deleted": true})
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusOK, j.view())
}

// handleHealth is the one endpoint that bypasses the readiness gate:
// ready=false tells orchestrators the process is alive but still
// replaying its journal. While the server is in degraded read-only mode
// the payload carries the triggering error, so "why are my POSTs 503"
// is answerable from the health check alone.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{"status": "ok", "ready": s.ready.Load()}
	if d := s.degraded.view(); d.Active {
		out["status"] = "degraded"
		out["degraded"] = d
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	out := map[string]any{
		"cache":    s.cache.Stats(),
		"registry": s.registry.Stats(),
		"jobs":     s.jobs.counts(),
		"phases":   s.phases.snapshot(),
		"streaming": map[string]any{
			"active":             s.streams.active.Load(),
			"served":             s.streams.served.Load(),
			"client_disconnects": s.streams.disconnects.Load(),
		},
	}
	if s.st != nil {
		out["store"] = s.st.Stats()
		out["degraded"] = s.degraded.view()
		s.recMu.Lock()
		out["recovery"] = s.recovery
		s.recMu.Unlock()
	}
	if s.tenants != nil {
		out["tenants"] = s.tenants.views(s.jobs.countsByTenant())
	}
	if s.gc != nil {
		out["gc"] = s.gc.view()
	}
	writeJSON(w, http.StatusOK, out)
}

// ---- plumbing ----

// submit registers a job, responds 202 with its ID, and runs it in the
// background. Jobs wait in StatusQueued for an admission slot, so at most
// MaxConcurrentJobs run at once regardless of the submission rate; past
// MaxPendingJobs the request is rejected outright with 429, as is a
// tenant past its own pending-jobs quota (reason quota_pending_jobs).
// body is journaled with the submission so a crash before completion can
// re-queue the job.
func (s *Server) submit(w http.ResponseWriter, kind string, body []byte, p *preparedJob, tenant string) {
	tenantPending := 0
	tst := (*tenantState)(nil)
	if s.tenants != nil {
		if tst = s.tenants.byID[tenant]; tst != nil {
			tenantPending = tst.cfg.MaxPendingJobs
		}
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j, reject := s.jobs.add(kind, cancel, s.opts.MaxPendingJobs, body, p.datasetRef, tenant, tenantPending)
	if j == nil {
		cancel()
		p.release()
		if reject == "tenant" {
			tst.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			quotaReject(w, http.StatusTooManyRequests, "quota_pending_jobs",
				fmt.Sprintf("tenant %q has %d jobs pending (its quota)", tenant, tenantPending))
			return
		}
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": fmt.Sprintf("server saturated: %d jobs pending", s.opts.MaxPendingJobs),
		})
		return
	}
	go s.runJob(ctx, cancel, j, p)
	writeJSON(w, http.StatusAccepted, j.view())
}

// runJob drives one job through admission, execution and completion.
// p.release (the registry pin) is guaranteed to run exactly once on every
// path: cancellation while queued, timeout, and normal completion. p.fn
// itself may never run (a job cancelled while queued), which is why
// release cannot live inside it.
func (s *Server) runJob(ctx context.Context, cancel context.CancelFunc, j *job, p *preparedJob) {
	defer p.release()
	defer cancel()
	queueSpan := j.trace.Root().Start("queue_wait")
	// Admission: the shared semaphore directly (single-tenant) or the
	// weighted round-robin dispatcher's per-tenant queue (multi-tenant).
	if err := s.admit(ctx, j.tenant); err != nil {
		queueSpan.End()
		j.finish(nil, err, err, false)
		return
	}
	defer s.releaseSlot(j.tenant)
	queueSpan.End()
	// The slot race can admit a job whose context was cancelled while
	// it queued; don't burn the slot on dataset decoding for it.
	if err := ctx.Err(); err != nil {
		j.finish(nil, err, err, false)
		return
	}
	// The execution deadline starts now — queue wait is the server's
	// fault, not the job's budget.
	runCtx, cancelRun := ctx, context.CancelFunc(func() {})
	if p.timeout > 0 {
		runCtx, cancelRun = context.WithTimeout(ctx, p.timeout)
	}
	defer cancelRun()
	j.start()
	// Everything the job does — dataset load, engine run with its phase
	// breakdown, algorithm events — nests under the execute span via the
	// context.
	execSpan := j.trace.Root().Start("execute")
	runCtx = obs.With(runCtx, execSpan)
	outcome, err := p.fn(runCtx)
	execSpan.End()
	s.finishJob(j, outcome, err, runCtx.Err())
}

// finishJob persists a successful outcome (durability first: the result
// bytes are on disk before the journal's terminal record points at them),
// decides what the job retains in memory, and records the outcome.
//
// Series jobs keep their small document in RAM (and as a .json blob when
// durable). Anonymize jobs are the streaming case: when durable, the
// records are written once as a framed chunk file and the job retains
// only the meta plus a reopenable disk stream — resident memory per
// terminal job is O(1), and every later request serves O(chunk); without
// a store, the job retains the records in interned columnar form, the
// most compact replayable in-RAM shape.
func (s *Server) finishJob(j *job, outcome *jobOutcome, err error, ctxErr error) {
	var res *jobResult
	hasResult := false
	// Persist whenever the work completed — matching finish()'s rule that
	// an outcome with no error is done even if the deadline fired as fn
	// returned.
	if err == nil && outcome != nil {
		persistSpan := j.trace.Root().Start("persist")
		switch {
		case outcome.payload != nil:
			res = &jobResult{full: outcome.payload}
			if s.st != nil {
				if werr := s.st.Results.Put(j.id, outcome.payload); werr != nil {
					// The job still answers from memory; only post-restart
					// retrieval is lost. A permanent error additionally
					// latches degraded mode — the next write would fail too.
					s.log().Warn("persisting result failed", "job_id", j.id, "err", werr)
					persistSpan.Event("fault: result blob: " + werr.Error())
					s.storeFault("result blob persist", werr)
				} else {
					hasResult = true
				}
			}
		case outcome.meta != nil:
			res = &jobResult{meta: outcome.meta}
			if s.st != nil {
				if werr := s.writeChunkedResult(j.id, outcome.meta, outcome.records); werr != nil {
					s.log().Warn("persisting result stream failed", "job_id", j.id, "err", werr)
					persistSpan.Event("fault: result stream: " + werr.Error())
					s.storeFault("result stream persist", werr)
				} else {
					hasResult = true
				}
			}
			if hasResult {
				res.recs = diskRecords{chunks: s.st.ResultChunks, id: j.id}
			} else {
				res.recs = memRecords{src: retainSource(outcome.records)}
			}
		}
		persistSpan.End()
	}
	j.finish(res, err, ctxErr, hasResult)
	// Results just landed on disk; let the retention sweeper re-check the
	// cap without waiting out its ticker.
	s.gcKick()
}

// retainSource picks the in-RAM shape a terminal job keeps for replay:
// a string dataset is interned into its columnar form (values dedup to
// one string per distinct value — for anonymized outputs, whose point is
// that values repeat, far smaller than the record-major original); any
// other source is already compact enough to keep as-is.
func retainSource(src dataset.RecordSource) dataset.RecordSource {
	if ds, ok := src.(*dataset.Dataset); ok {
		return dataset.Intern(ds)
	}
	return src
}

// writeChunkedResult persists an anonymize result as a framed chunk
// file: frame 0 the compact meta document, then record lines batched
// into chunkTarget-sized frames — written incrementally, fsync'd, and
// atomically published.
func (s *Server) writeChunkedResult(id string, meta *anonMeta, src dataset.RecordSource) error {
	metaLine, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	cw, err := s.st.ResultChunks.Create(id)
	if err != nil {
		return err
	}
	if err := cw.WriteFrame(metaLine); err != nil {
		cw.Abort()
		return err
	}
	buf := make([]byte, 0, chunkTarget+4096)
	var scanErr error
	src.ScanRecords(func(i int, rec dataset.Record) bool {
		buf, scanErr = export.AppendRecordJSON(buf, rec)
		if scanErr != nil {
			return false
		}
		buf = append(buf, '\n')
		if len(buf) >= chunkTarget {
			if scanErr = cw.WriteFrame(buf); scanErr != nil {
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if scanErr != nil {
		cw.Abort()
		return scanErr
	}
	if len(buf) > 0 {
		if err := cw.WriteFrame(buf); err != nil {
			cw.Abort()
			return err
		}
	}
	return cw.Commit()
}

// readBody reads the request body under the MaxBodyBytes cap.
func (s *Server) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
				"error": fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit),
			})
			return nil, false
		}
		s.badRequest(w, fmt.Errorf("reading request: %w", err))
		return nil, false
	}
	return body, true
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	writeJSON(w, http.StatusBadRequest, map[string]any{"error": err.Error()})
}

func (s *Server) notFound(w http.ResponseWriter, id string) {
	writeJSON(w, http.StatusNotFound, map[string]any{"error": fmt.Sprintf("no job %q", id)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// The result payload builders (series documents, anonymize meta + record
// streams, and the buffered-document assembler) live in payload.go.
