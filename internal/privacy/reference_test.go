package privacy

import (
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
)

// This file preserves the seed's string-keyed implementations of Partition
// and KMViolations verbatim. The production code now runs on the interned
// columnar core; the equivalence tests in equiv_test.go pin that the
// rewrite is observationally identical — same classes, same signatures,
// same violations in the same order.

// referencePartition is the seed Partition: signature keys built by
// string concatenation, groups collected in maps keyed by the joined
// string.
func referencePartition(ds *dataset.Dataset, qis []int) []Class {
	groups := make(map[string][]int)
	sigs := make(map[string][]string)
	var sb strings.Builder
	for r := range ds.Records {
		if generalize.IsSuppressed(ds, qis, r) {
			continue
		}
		sb.Reset()
		sig := make([]string, len(qis))
		for i, q := range qis {
			v := ds.Records[r].Values[q]
			sig[i] = v
			sb.WriteString(v)
			sb.WriteByte('\x00')
		}
		key := sb.String()
		groups[key] = append(groups[key], r)
		if _, ok := sigs[key]; !ok {
			sigs[key] = sig
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Class, len(keys))
	for i, k := range keys {
		out[i] = Class{Signature: sigs[k], Records: groups[k]}
	}
	return out
}

// referenceKMViolations is the seed KMViolations: per-size support maps
// keyed by \x00-joined item names, rebuilt from scratch per level.
func referenceKMViolations(transactions [][]string, k, m, limit int) []Violation {
	var out []Violation
	if k <= 1 || m <= 0 {
		return nil
	}
	for size := 1; size <= m; size++ {
		support := make(map[string]int)
		first := make(map[string][]string)
		for _, tr := range transactions {
			if len(tr) < size {
				continue
			}
			refForEachSubset(tr, size, func(sub []string) {
				key := strings.Join(sub, "\x00")
				support[key]++
				if _, ok := first[key]; !ok {
					first[key] = append([]string(nil), sub...)
				}
			})
		}
		keys := make([]string, 0, len(support))
		for key, s := range support {
			if s < k {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			out = append(out, Violation{Itemset: first[key], Support: support[key]})
			if limit > 0 && len(out) >= limit {
				return out
			}
		}
	}
	return out
}

// refForEachSubset enumerates all size-k subsets of the sorted slice in
// lexicographic order (the seed's forEachSubset).
func refForEachSubset(items []string, k int, fn func([]string)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]string, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}
