package privacy

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
)

func mk(t testing.TB, rows [][2]string, baskets [][]string) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{{Name: "A"}, {Name: "B"}}, "T")
	for i, r := range rows {
		var items []string
		if i < len(baskets) {
			items = baskets[i]
		}
		if err := ds.AddRecord(dataset.Record{Values: []string{r[0], r[1]}, Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestPartition(t *testing.T) {
	ds := mk(t, [][2]string{{"x", "1"}, {"x", "1"}, {"y", "1"}}, nil)
	classes := Partition(ds, []int{0, 1})
	if len(classes) != 2 {
		t.Fatalf("classes = %d", len(classes))
	}
	if !reflect.DeepEqual(classes[0].Signature, []string{"x", "1"}) {
		t.Errorf("first signature = %v", classes[0].Signature)
	}
	if !reflect.DeepEqual(classes[0].Records, []int{0, 1}) {
		t.Errorf("first class records = %v", classes[0].Records)
	}
}

func TestPartitionSkipsSuppressed(t *testing.T) {
	ds := mk(t, [][2]string{{"x", "1"}, {"y", "2"}}, nil)
	generalize.SuppressRecord(ds, []int{0, 1}, 1)
	classes := Partition(ds, []int{0, 1})
	if len(classes) != 1 {
		t.Fatalf("classes = %d, want 1 (suppressed skipped)", len(classes))
	}
}

func TestIsKAnonymous(t *testing.T) {
	ds := mk(t, [][2]string{{"x", "1"}, {"x", "1"}, {"y", "1"}, {"y", "1"}}, nil)
	if !IsKAnonymous(ds, []int{0, 1}, 2) {
		t.Error("2-anonymous dataset rejected")
	}
	if IsKAnonymous(ds, []int{0, 1}, 3) {
		t.Error("non-3-anonymous dataset accepted")
	}
	if !IsKAnonymous(ds, []int{0, 1}, 1) || !IsKAnonymous(ds, []int{0, 1}, 0) {
		t.Error("trivial k rejected")
	}
	if MinClassSize(ds, []int{0, 1}) != 2 {
		t.Errorf("MinClassSize = %d", MinClassSize(ds, []int{0, 1}))
	}
	empty := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if MinClassSize(empty, []int{0}) != 0 {
		t.Error("empty dataset MinClassSize != 0")
	}
}

func TestKMViolations(t *testing.T) {
	trs := [][]string{
		{"a", "b"},
		{"a", "b"},
		{"a", "c"},
	}
	// k=2, m=1: c appears once -> violation.
	vs := KMViolations(trs, 2, 1, 0)
	if len(vs) != 1 || vs[0].Itemset[0] != "c" || vs[0].Support != 1 {
		t.Errorf("m=1 violations = %v", vs)
	}
	// k=2, m=2: {a,c} support 1, {c} support 1.
	vs = KMViolations(trs, 2, 2, 0)
	if len(vs) != 2 {
		t.Errorf("m=2 violations = %v", vs)
	}
	// Size-1 violations come first.
	if len(vs[0].Itemset) != 1 {
		t.Errorf("violations not ordered by size: %v", vs)
	}
	// Limit caps output.
	vs = KMViolations(trs, 2, 2, 1)
	if len(vs) != 1 {
		t.Errorf("limit ignored: %v", vs)
	}
	if !IsKMAnonymous(trs, 2, 0) || !IsKMAnonymous(trs, 1, 3) {
		t.Error("trivial parameters rejected")
	}
	if IsKMAnonymous(trs, 2, 2) {
		t.Error("violating transactions accepted")
	}
	if !IsKMAnonymous([][]string{{"a"}, {"a"}}, 2, 2) {
		t.Error("2-anonymous singleton transactions rejected")
	}
}

func TestForEachSubset(t *testing.T) {
	var got [][]string
	refForEachSubset([]string{"a", "b", "c"}, 2, func(s []string) {
		got = append(got, append([]string(nil), s...))
	})
	want := [][]string{{"a", "b"}, {"a", "c"}, {"b", "c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("subsets = %v", got)
	}
	count := 0
	refForEachSubset([]string{"a"}, 2, func([]string) { count++ })
	if count != 0 {
		t.Error("oversize subset enumerated")
	}
	refForEachSubset([]string{"a", "b"}, 0, func([]string) { count++ })
	if count != 0 {
		t.Error("zero-size subset enumerated")
	}
}

// Exhaustive cross-check of subset enumeration counts against binomials.
func TestForEachSubsetCounts(t *testing.T) {
	binom := func(n, k int) int {
		if k < 0 || k > n {
			return 0
		}
		r := 1
		for i := 0; i < k; i++ {
			r = r * (n - i) / (i + 1)
		}
		return r
	}
	for n := 0; n <= 7; n++ {
		items := make([]string, n)
		for i := range items {
			items[i] = fmt.Sprintf("i%d", i)
		}
		for k := 1; k <= n; k++ {
			count := 0
			seen := make(map[string]bool)
			refForEachSubset(items, k, func(s []string) {
				count++
				key := fmt.Sprint(s)
				if seen[key] {
					t.Fatalf("duplicate subset %v", s)
				}
				seen[key] = true
				if !sort.StringsAreSorted(s) {
					t.Fatalf("unsorted subset %v", s)
				}
			})
			if count != binom(n, k) {
				t.Fatalf("n=%d k=%d: %d subsets, want %d", n, k, count, binom(n, k))
			}
		}
	}
}

func TestTransactions(t *testing.T) {
	ds := mk(t, [][2]string{{"x", "1"}, {"y", "2"}, {"z", "3"}},
		[][]string{{"a"}, nil, {"b", "c"}})
	all := Transactions(ds, nil)
	if len(all) != 2 {
		t.Errorf("all transactions = %v", all)
	}
	some := Transactions(ds, []int{0, 1})
	if len(some) != 1 || some[0][0] != "a" {
		t.Errorf("indexed transactions = %v", some)
	}
}

func TestCheckRT(t *testing.T) {
	// Two classes of size 2; items identical within class -> (2,2^2) holds.
	ds := mk(t, [][2]string{{"x", "1"}, {"x", "1"}, {"y", "2"}, {"y", "2"}},
		[][]string{{"a", "b"}, {"a", "b"}, {"c"}, {"c"}})
	rep := CheckRT(ds, []int{0, 1}, 2, 2)
	if !rep.Holds() || rep.MinClass != 2 || rep.BadClasses != 0 {
		t.Errorf("report = %+v", rep)
	}
	// Break the transaction side in one class.
	ds.Records[1].Items = []string{"a"}
	rep = CheckRT(ds, []int{0, 1}, 2, 2)
	if rep.Holds() || rep.BadClasses != 1 || rep.FirstKMFail == nil {
		t.Errorf("report = %+v", rep)
	}
	if !rep.KAnonymous {
		t.Error("relational side wrongly failed")
	}
	// Break the relational side.
	ds2 := mk(t, [][2]string{{"x", "1"}, {"y", "1"}}, [][]string{nil, nil})
	rep = CheckRT(ds2, []int{0, 1}, 2, 2)
	if rep.KAnonymous || rep.Holds() {
		t.Errorf("report = %+v", rep)
	}
}

func TestCheckRTEmpty(t *testing.T) {
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	rep := CheckRT(ds, []int{0}, 2, 2)
	if !rep.KAnonymous || rep.MinClass != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

// Property: KMViolations agrees with a brute-force support check on random
// small transaction sets.
func TestKMViolationsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	universe := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(8)
		trs := make([][]string, n)
		for i := range trs {
			var items []string
			for _, u := range universe {
				if rng.Intn(2) == 0 {
					items = append(items, u)
				}
			}
			trs[i] = items
		}
		k := 2 + rng.Intn(2)
		m := 1 + rng.Intn(2)
		got := len(KMViolations(trs, k, m, 0)) == 0
		// Brute force: every subset of universe with size<=m and support in (0,k).
		ok := true
		var check func(start int, cur []string)
		check = func(start int, cur []string) {
			if len(cur) > 0 && len(cur) <= m {
				sup := 0
				for _, tr := range trs {
					has := true
					set := make(map[string]bool)
					for _, it := range tr {
						set[it] = true
					}
					for _, c := range cur {
						if !set[c] {
							has = false
							break
						}
					}
					if has {
						sup++
					}
				}
				if sup > 0 && sup < k {
					ok = false
				}
			}
			if len(cur) >= m {
				return
			}
			for i := start; i < len(universe); i++ {
				check(i+1, append(cur, universe[i]))
			}
		}
		check(0, nil)
		if got != ok {
			t.Fatalf("trial %d: KMViolations=%v brute=%v (k=%d m=%d trs=%v)", trial, got, ok, k, m, trs)
		}
	}
}
