package privacy

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"secreta/internal/gen"
	"secreta/internal/generalize"
)

// Equivalence pins: the interned hot paths must be observationally
// identical to the seed string implementations preserved in
// reference_test.go — same classes in the same order, same violations in
// the same order — across generated datasets, generalized variants and
// suppressed records.

func TestPartitionMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		ds := gen.Census(gen.Config{Records: 400, Items: 12, Seed: seed})
		qis, err := ds.QIIndices(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Suppress a few records so the skip path is exercised too.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			generalize.SuppressRecord(ds, qis, rng.Intn(ds.Len()))
		}
		for _, cols := range [][]int{qis, {0, 2}, {1}, {}} {
			got := Partition(ds, cols)
			want := referencePartition(ds, cols)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d qis %v: Partition diverged from reference (got %d classes, want %d)",
					seed, cols, len(got), len(want))
			}
		}
	}
}

func TestKMViolationsMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		for _, m := range []int{1, 2, 3} {
			ds := gen.Census(gen.Config{Records: 300, Items: 30, MaxBasket: 7, Seed: seed})
			trs := Transactions(ds, nil)
			for _, k := range []int{2, 5} {
				for _, limit := range []int{0, 3} {
					got := KMViolations(trs, k, m, limit)
					want := referenceKMViolations(trs, k, m, limit)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed=%d k=%d m=%d limit=%d: %d violations, want %d (or order diverged)",
							seed, k, m, limit, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestKMViolationsParallelDeterministic pins that the sharded scan returns
// the same violations as the serial one: the transaction count is pushed
// past the parallel threshold and GOMAXPROCS is raised so shards really
// run, then compared against the reference.
func TestKMViolationsParallelDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ds := gen.Census(gen.Config{Records: 3000, Items: 40, MaxBasket: 6, Seed: 3})
	trs := Transactions(ds, nil)
	if len(trs) < kmParallelMin {
		t.Fatalf("fixture too small to engage sharding: %d transactions", len(trs))
	}
	got, err := KMViolationsCtx(context.Background(), trs, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceKMViolations(trs, 5, 2, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel scan diverged: %d violations, want %d", len(got), len(want))
	}
}

func TestKMViolationsCtxCancelled(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 40, Seed: 3})
	trs := Transactions(ds, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KMViolationsCtx(ctx, trs, 5, 3, 0); err == nil {
		t.Fatal("cancelled scan returned no error")
	}
}
