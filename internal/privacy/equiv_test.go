package privacy

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"secreta/internal/gen"
	"secreta/internal/generalize"
)

// Equivalence pins: the interned hot paths must be observationally
// identical to the seed string implementations preserved in
// reference_test.go — same classes in the same order, same violations in
// the same order — across generated datasets, generalized variants and
// suppressed records.

func TestPartitionMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		ds := gen.Census(gen.Config{Records: 400, Items: 12, Seed: seed})
		qis, err := ds.QIIndices(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Suppress a few records so the skip path is exercised too.
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 10; i++ {
			generalize.SuppressRecord(ds, qis, rng.Intn(ds.Len()))
		}
		for _, cols := range [][]int{qis, {0, 2}, {1}, {}} {
			got := Partition(ds, cols)
			want := referencePartition(ds, cols)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("seed %d qis %v: Partition diverged from reference (got %d classes, want %d)",
					seed, cols, len(got), len(want))
			}
		}
	}
}

func TestKMViolationsMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 9} {
		for _, m := range []int{1, 2, 3} {
			ds := gen.Census(gen.Config{Records: 300, Items: 30, MaxBasket: 7, Seed: seed})
			trs := Transactions(ds, nil)
			for _, k := range []int{2, 5} {
				for _, limit := range []int{0, 3} {
					got := KMViolations(trs, k, m, limit)
					want := referenceKMViolations(trs, k, m, limit)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("seed=%d k=%d m=%d limit=%d: %d violations, want %d (or order diverged)",
							seed, k, m, limit, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestKMViolationsParallelDeterministic pins that the sharded scan returns
// the same violations as the serial one: the transaction count is pushed
// past the parallel threshold and GOMAXPROCS is raised so shards really
// run, then compared against the reference.
func TestKMViolationsParallelDeterministic(t *testing.T) {
	old := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(old)
	ds := gen.Census(gen.Config{Records: 3000, Items: 40, MaxBasket: 6, Seed: 3})
	trs := Transactions(ds, nil)
	if len(trs) < kmParallelMin {
		t.Fatalf("fixture too small to engage sharding: %d transactions", len(trs))
	}
	got, err := KMViolationsCtx(context.Background(), trs, 5, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := referenceKMViolations(trs, 5, 2, 0)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parallel scan diverged: %d violations, want %d", len(got), len(want))
	}
}

// TestCountSupportsEveryWidth pins the deterministic-merge property at
// every shard width 1..8, not just the width kmWorkers picks on this
// machine: sharded counting plus merge must yield exactly the serial
// scan's violations at every size level.
func TestCountSupportsEveryWidth(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 1200, Items: 40, MaxBasket: 6, Seed: 11})
	trs := Transactions(ds, nil)
	vals, txs := internTransactions(trs)
	const k = 5
	for size := 1; size <= 3; size++ {
		serial, err := countSupportsWidth(context.Background(), txs, len(vals), size, 1)
		if err != nil {
			t.Fatal(err)
		}
		want := serial.violations(k, vals)
		for width := 2; width <= 8; width++ {
			sharded, err := countSupportsWidth(context.Background(), txs, len(vals), size, width)
			if err != nil {
				t.Fatal(err)
			}
			if got := sharded.violations(k, vals); !reflect.DeepEqual(got, want) {
				t.Fatalf("size=%d width=%d: sharded scan diverged (%d violations, want %d, or order differs)",
					size, width, len(got), len(want))
			}
		}
	}
}

// TestKMWorkersGating pins the shard-count derivation: serial below the
// work thresholds, >= 2 shards once 2*kmParallelMin transactions exist,
// and never more than GOMAXPROCS.
func TestKMWorkersGating(t *testing.T) {
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	tiny := make([][]uint32, 64)
	for i := range tiny {
		tiny[i] = []uint32{1, 2}
	}
	if w := kmWorkers(tiny); w != 1 {
		t.Fatalf("tiny input sharded: %d workers", w)
	}
	// 2*kmParallelMin sparse transactions: the transaction-count rule
	// guarantees at least two shards even when the occurrence count is low.
	sparse := make([][]uint32, 2*kmParallelMin)
	for i := range sparse {
		sparse[i] = []uint32{uint32(i % 7)}
	}
	if w := kmWorkers(sparse); w < 2 {
		t.Fatalf("2*kmParallelMin transactions not sharded: %d workers", w)
	}
	// Few but dense transactions: the occurrence rule engages shards where
	// the old transaction-count floor silently serialized.
	dense := make([][]uint32, 256)
	for i := range dense {
		tx := make([]uint32, 64)
		for j := range tx {
			tx[j] = uint32(j)
		}
		dense[i] = tx
	}
	if w := kmWorkers(dense); w < 2 {
		t.Fatalf("dense input not sharded: %d workers", w)
	}
	if w := kmWorkers(dense); w > 8 {
		t.Fatalf("worker count exceeds GOMAXPROCS: %d", w)
	}
}

func TestKMViolationsCtxCancelled(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 40, Seed: 3})
	trs := Transactions(ds, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := KMViolationsCtx(ctx, trs, 5, 3, 0); err == nil {
		t.Fatal("cancelled scan returned no error")
	}
}
