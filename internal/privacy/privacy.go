// Package privacy implements the privacy models SECRETA's algorithms
// enforce and its evaluator verifies: k-anonymity over relational
// quasi-identifiers, k^m-anonymity over the transaction attribute
// (Terrovitis et al.), and their combination (k,k^m)-anonymity for
// RT-datasets (Poulis et al.).
package privacy

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
)

// Class is one equivalence class: the indices of records sharing a QI
// signature.
type Class struct {
	Signature []string
	Records   []int
}

// Partition groups records by their QI signature, skipping suppressed
// records, and returns classes sorted by signature for determinism.
func Partition(ds *dataset.Dataset, qis []int) []Class {
	groups := make(map[string][]int)
	sigs := make(map[string][]string)
	var sb strings.Builder
	for r := range ds.Records {
		if generalize.IsSuppressed(ds, qis, r) {
			continue
		}
		sb.Reset()
		sig := make([]string, len(qis))
		for i, q := range qis {
			v := ds.Records[r].Values[q]
			sig[i] = v
			sb.WriteString(v)
			sb.WriteByte('\x00')
		}
		key := sb.String()
		groups[key] = append(groups[key], r)
		if _, ok := sigs[key]; !ok {
			sigs[key] = sig
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Class, len(keys))
	for i, k := range keys {
		out[i] = Class{Signature: sigs[k], Records: groups[k]}
	}
	return out
}

// MinClassSize returns the size of the smallest equivalence class, or 0
// when no unsuppressed records exist.
func MinClassSize(ds *dataset.Dataset, qis []int) int {
	classes := Partition(ds, qis)
	if len(classes) == 0 {
		return 0
	}
	min := len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < min {
			min = len(c.Records)
		}
	}
	return min
}

// IsKAnonymous reports whether every equivalence class (suppressed records
// excluded) has at least k members.
func IsKAnonymous(ds *dataset.Dataset, qis []int, k int) bool {
	if k <= 1 {
		return true
	}
	for _, c := range Partition(ds, qis) {
		if len(c.Records) < k {
			return false
		}
	}
	return true
}

// Violation describes a k^m-anonymity violation: an itemset of size <= m
// supported by fewer than k transactions.
type Violation struct {
	Itemset []string
	Support int
}

func (v Violation) String() string {
	return fmt.Sprintf("itemset {%s} support %d", strings.Join(v.Itemset, ","), v.Support)
}

// KMViolations returns every itemset of size 1..m whose support among the
// given transactions is in (0, k), i.e. the k^m-anonymity violations. The
// transactions are item slices (sorted, deduplicated). Violations are
// reported smallest-itemset first and are capped at limit (<=0: no cap);
// Apriori-style algorithms fix violations level by level, so the cap keeps
// incremental runs cheap.
func KMViolations(transactions [][]string, k, m, limit int) []Violation {
	out, _ := KMViolationsCtx(nil, transactions, k, m, limit)
	return out
}

// cancelCheckStride is how many transactions KMViolationsCtx scans between
// context polls. The subset enumeration per transaction is the expensive
// part (O(C(|t|, size))), so a small stride keeps the cancellation delay
// well under the service's promptness budget without measurable overhead.
const cancelCheckStride = 256

// KMViolationsCtx is KMViolations with cooperative cancellation: ctx (nil
// to disable) is polled every few hundred transactions during the support
// scan — the hot path of Apriori-style repair loops — so a cancelled run
// aborts mid-scan instead of finishing the level.
func KMViolationsCtx(ctx context.Context, transactions [][]string, k, m, limit int) ([]Violation, error) {
	var out []Violation
	if k <= 1 || m <= 0 {
		return nil, nil
	}
	for size := 1; size <= m; size++ {
		support := make(map[string]int)
		first := make(map[string][]string)
		for ti, tr := range transactions {
			if ctx != nil && ti%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			if len(tr) < size {
				continue
			}
			forEachSubset(tr, size, func(sub []string) {
				key := strings.Join(sub, "\x00")
				support[key]++
				if _, ok := first[key]; !ok {
					first[key] = append([]string(nil), sub...)
				}
			})
		}
		keys := make([]string, 0, len(support))
		for key, s := range support {
			if s < k {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			out = append(out, Violation{Itemset: first[key], Support: support[key]})
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// forEachSubset enumerates all size-k subsets of the sorted slice items in
// lexicographic order.
func forEachSubset(items []string, k int, fn func([]string)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]string, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// IsKMAnonymous reports whether the transactions satisfy k^m-anonymity.
func IsKMAnonymous(transactions [][]string, k, m int) bool {
	return len(KMViolations(transactions, k, m, 1)) == 0
}

// Transactions extracts the item sets of the records at the given indices
// (all records when idx is nil), skipping empty baskets.
func Transactions(ds *dataset.Dataset, idx []int) [][]string {
	var out [][]string
	add := func(items []string) {
		if len(items) > 0 {
			out = append(out, items)
		}
	}
	if idx == nil {
		for r := range ds.Records {
			add(ds.Records[r].Items)
		}
		return out
	}
	for _, r := range idx {
		add(ds.Records[r].Items)
	}
	return out
}

// RTReport summarizes an (k,k^m)-anonymity check over an RT-dataset.
type RTReport struct {
	KAnonymous  bool
	MinClass    int
	BadClasses  int // classes whose transaction part violates k^m
	FirstKMFail *Violation
}

// Holds reports whether the dataset satisfies (k,k^m)-anonymity.
func (r RTReport) Holds() bool { return r.KAnonymous && r.BadClasses == 0 }

// CheckRT verifies (k,k^m)-anonymity per Poulis et al.: the relational part
// is k-anonymous and each equivalence class's transaction multiset is
// k^m-anonymous.
func CheckRT(ds *dataset.Dataset, qis []int, k, m int) RTReport {
	rep := RTReport{KAnonymous: true, MinClass: 0}
	classes := Partition(ds, qis)
	if len(classes) == 0 {
		rep.MinClass = 0
		return rep
	}
	rep.MinClass = len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < rep.MinClass {
			rep.MinClass = len(c.Records)
		}
		if len(c.Records) < k {
			rep.KAnonymous = false
		}
		if ds.HasTransaction() {
			vs := KMViolations(Transactions(ds, c.Records), k, m, 1)
			if len(vs) > 0 {
				rep.BadClasses++
				if rep.FirstKMFail == nil {
					v := vs[0]
					rep.FirstKMFail = &v
				}
			}
		}
	}
	return rep
}
