// Package privacy implements the privacy models SECRETA's algorithms
// enforce and its evaluator verifies: k-anonymity over relational
// quasi-identifiers, k^m-anonymity over the transaction attribute
// (Terrovitis et al.), and their combination (k,k^m)-anonymity for
// RT-datasets (Poulis et al.).
//
// The hot paths run on the interned columnar core: Partition keys
// equivalence classes by packed big-endian uint32 signature tuples over
// rank-interned columns (so byte order equals value order), and the k^m
// support scan counts itemsets of dense item IDs — a counts array for
// single items, a uint64-keyed map for pairs, packed byte keys beyond —
// sharded across a bounded worker pool and merged additively, which keeps
// the output deterministic for any worker count.
package privacy

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/obs"
)

// Class is one equivalence class: the indices of records sharing a QI
// signature.
type Class struct {
	Signature []string
	Records   []int
}

// Partition groups records by their QI signature, skipping suppressed
// records, and returns classes sorted by signature for determinism. The
// columns are rank-interned once and the signature key is packed from the
// per-column value ranks — a single mixed-radix uint64 when the
// cardinality product fits (the overwhelmingly common case on the
// generalized candidates the algorithms partition in their loops), a
// big-endian byte tuple otherwise. Either way grouping allocates per
// class, not per record, and key order equals signature order.
func Partition(ds *dataset.Dataset, qis []int) []Class {
	n := len(ds.Records)
	if len(qis) == 0 {
		// No signature columns: nothing is suppressed and every record
		// shares the empty signature.
		if n == 0 {
			return []Class{}
		}
		recs := make([]int, n)
		for i := range recs {
			recs[i] = i
		}
		return []Class{{Signature: []string{}, Records: recs}}
	}
	cols, dicts := dataset.InternColumns(ds, qis)
	// Suppression becomes an ID comparison: a record is suppressed when
	// every QI cell carries the marker's rank. If any column never holds
	// the marker, no record is suppressed.
	supIDs := make([]uint32, len(qis))
	haveSup := true
	for i, d := range dicts {
		id, ok := d.ID(generalize.Suppressed)
		if !ok {
			haveSup = false
			break
		}
		supIDs[i] = id
	}
	suppressed := func(r int) bool {
		if !haveSup {
			return false
		}
		for i := range cols {
			if cols[i][r] != supIDs[i] {
				return false
			}
		}
		return true
	}
	// Mixed-radix packing: key = ((id0*card1)+id1)*card2 + ... preserves
	// tuple order, and tuple order over ranks is signature order.
	radix := uint64(1)
	packable := true
	for _, d := range dicts {
		card := uint64(d.Len())
		if card == 0 {
			card = 1
		}
		if radix > (1<<63)/card {
			packable = false
			break
		}
		radix *= card
	}
	var reps, order []int
	var recs [][]int
	if packable {
		cards := make([]uint64, len(dicts))
		for i, d := range dicts {
			cards[i] = uint64(d.Len())
		}
		index := make(map[uint64]int)
		var keys []uint64
		for r := 0; r < n; r++ {
			if suppressed(r) {
				continue
			}
			key := uint64(0)
			for i := range cols {
				key = key*cards[i] + uint64(cols[i][r])
			}
			gi, ok := index[key]
			if !ok {
				gi = len(recs)
				index[key] = gi
				keys = append(keys, key)
				recs = append(recs, nil)
				reps = append(reps, r)
			}
			recs[gi] = append(recs[gi], r)
		}
		order = make([]int, len(keys))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	} else {
		index := make(map[string]int)
		var keys []string
		buf := make([]byte, 4*len(qis))
		for r := 0; r < n; r++ {
			if suppressed(r) {
				continue
			}
			for i := range cols {
				putID(buf[4*i:], cols[i][r])
			}
			gi, ok := index[string(buf)]
			if !ok {
				gi = len(recs)
				index[string(buf)] = gi
				keys = append(keys, string(buf))
				recs = append(recs, nil)
				reps = append(reps, r)
			}
			recs[gi] = append(recs[gi], r)
		}
		order = make([]int, len(keys))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })
	}
	out := make([]Class, len(order))
	for oi, gi := range order {
		sig := make([]string, len(qis))
		for i := range sig {
			sig[i] = dicts[i].Value(cols[i][reps[gi]])
		}
		out[oi] = Class{Signature: sig, Records: recs[gi]}
	}
	return out
}

// putID writes a big-endian uint32 (big-endian so byte comparison of
// packed keys orders like numeric ID comparison).
func putID(b []byte, v uint32) {
	b[0] = byte(v >> 24)
	b[1] = byte(v >> 16)
	b[2] = byte(v >> 8)
	b[3] = byte(v)
}

// getID reads a big-endian uint32 from a packed key.
func getID(s string) uint32 {
	return uint32(s[0])<<24 | uint32(s[1])<<16 | uint32(s[2])<<8 | uint32(s[3])
}

// MinClassSize returns the size of the smallest equivalence class, or 0
// when no unsuppressed records exist.
func MinClassSize(ds *dataset.Dataset, qis []int) int {
	classes := Partition(ds, qis)
	if len(classes) == 0 {
		return 0
	}
	min := len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < min {
			min = len(c.Records)
		}
	}
	return min
}

// IsKAnonymous reports whether every equivalence class (suppressed records
// excluded) has at least k members.
func IsKAnonymous(ds *dataset.Dataset, qis []int, k int) bool {
	if k <= 1 {
		return true
	}
	for _, c := range Partition(ds, qis) {
		if len(c.Records) < k {
			return false
		}
	}
	return true
}

// Violation describes a k^m-anonymity violation: an itemset of size <= m
// supported by fewer than k transactions.
type Violation struct {
	Itemset []string
	Support int
}

func (v Violation) String() string {
	return fmt.Sprintf("itemset {%s} support %d", strings.Join(v.Itemset, ","), v.Support)
}

// KMViolations returns every itemset of size 1..m whose support among the
// given transactions is in (0, k), i.e. the k^m-anonymity violations. The
// transactions are item slices (sorted, deduplicated). Violations are
// reported smallest-itemset first and are capped at limit (<=0: no cap);
// Apriori-style algorithms fix violations level by level, so the cap keeps
// incremental runs cheap.
func KMViolations(transactions [][]string, k, m, limit int) []Violation {
	out, _ := KMViolationsCtx(nil, transactions, k, m, limit)
	return out
}

// cancelCheckStride is how many transactions a support scan processes
// between context polls. The subset enumeration per transaction is the
// expensive part (O(C(|t|, size))), so a small stride keeps the
// cancellation delay well under the service's promptness budget without
// measurable overhead.
const cancelCheckStride = 256

// kmParallelMin is the per-shard transaction count below which sharding
// costs more than it saves; kmParallelMinWork is the same floor expressed
// in item occurrences, so dense baskets (where the per-transaction subset
// enumeration is the real cost) shard even when the transaction count
// alone looks small. The pool width itself is bounded only by
// runtime.GOMAXPROCS — there is no fixed cap hiding cores.
const (
	kmParallelMin     = 1024
	kmParallelMinWork = 4096
)

// KMViolationsCtx is KMViolations with cooperative cancellation: ctx (nil
// to disable) is polled every few hundred transactions during the support
// scan — the hot path of Apriori-style repair loops — so a cancelled run
// aborts mid-scan instead of finishing the level. Large scans shard the
// transactions across a bounded worker pool; the merged counts (and
// therefore the reported violations and their order) are identical for
// every worker count.
func KMViolationsCtx(ctx context.Context, transactions [][]string, k, m, limit int) ([]Violation, error) {
	if k <= 1 || m <= 0 {
		return nil, nil
	}
	vals, txs := internTransactions(transactions)
	obs.FromCtx(ctx).Event("km_scan",
		obs.Int("transactions", len(txs)), obs.Int("m", m))
	var out []Violation
	for size := 1; size <= m; size++ {
		counts, err := countSupports(ctx, txs, len(vals), size)
		if err != nil {
			return nil, err
		}
		for _, v := range counts.violations(k, vals) {
			out = append(out, v)
			if limit > 0 && len(out) >= limit {
				return out, nil
			}
		}
	}
	return out, nil
}

// kmScratch is reusable support-count state for repeated small scans over
// one shared item domain — CheckRT threads a single instance through its
// per-class checks so verification allocates per dataset, not per class.
type kmScratch struct {
	single []int32
	pairs  map[uint64]int32
	packed map[string]int32
	buf    []byte
}

// firstKMViolation returns the first k^m violation among txs — smallest
// itemset size first, then item-rank (= item-name) order, exactly the
// first element KMViolations would report — or nil when the transactions
// are k^m-anonymous. vals is the rank-interned item domain the IDs in txs
// index; sc's buffers are cleared and reused across calls.
func firstKMViolation(vals []string, txs [][]uint32, k, m int, sc *kmScratch) *Violation {
	if k <= 1 || m <= 0 {
		return nil
	}
	for size := 1; size <= m; size++ {
		switch {
		case size == 1:
			if sc.single == nil {
				sc.single = make([]int32, len(vals))
			} else {
				clear(sc.single)
			}
			for _, tx := range txs {
				for _, id := range tx {
					sc.single[id]++
				}
			}
			for id, s := range sc.single {
				if s > 0 && s < int32(k) {
					return &Violation{Itemset: []string{vals[id]}, Support: int(s)}
				}
			}
		case size == 2:
			if sc.pairs == nil {
				sc.pairs = make(map[uint64]int32)
			} else {
				clear(sc.pairs)
			}
			for _, tx := range txs {
				for i := 0; i < len(tx); i++ {
					hi := uint64(tx[i]) << 32
					for j := i + 1; j < len(tx); j++ {
						sc.pairs[hi|uint64(tx[j])]++
					}
				}
			}
			best, bestSup, found := uint64(0), int32(0), false
			for key, s := range sc.pairs {
				if s < int32(k) && (!found || key < best) {
					best, bestSup, found = key, s, true
				}
			}
			if found {
				return &Violation{
					Itemset: []string{vals[uint32(best>>32)], vals[uint32(best)]},
					Support: int(bestSup),
				}
			}
		default:
			if sc.packed == nil {
				sc.packed = make(map[string]int32)
			} else {
				clear(sc.packed)
			}
			if len(sc.buf) < 4*size {
				sc.buf = make([]byte, 4*size)
			}
			key := sc.buf[:4*size]
			for _, tx := range txs {
				forEachSubsetIDs(tx, size, func(sub []uint32) {
					for i, id := range sub {
						putID(key[4*i:], id)
					}
					sc.packed[string(key)]++
				})
			}
			best, bestSup, found := "", int32(0), false
			for k2, s := range sc.packed {
				if s < int32(k) && (!found || k2 < best) {
					best, bestSup, found = k2, s, true
				}
			}
			if found {
				items := make([]string, size)
				for i := range items {
					items[i] = vals[getID(best[4*i:])]
				}
				return &Violation{Itemset: items, Support: int(bestSup)}
			}
		}
	}
	return nil
}

// internTransactions rank-interns the item domain (ID = rank among the
// sorted distinct items, so ID order == item order) and remaps every
// transaction to ascending item IDs. The distinct set is collected
// straight from the nested slices — no flattened copy of every
// occurrence. Because the input slices are sorted, the remap is
// elementwise.
func internTransactions(transactions [][]string) ([]string, [][]uint32) {
	seen := make(map[string]struct{})
	for _, tr := range transactions {
		for _, it := range tr {
			seen[it] = struct{}{}
		}
	}
	vals := make([]string, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	ids := make(map[string]uint32, len(vals))
	for i, v := range vals {
		ids[v] = uint32(i)
	}
	txs := make([][]uint32, len(transactions))
	for t, tr := range transactions {
		if len(tr) == 0 {
			continue
		}
		tx := make([]uint32, len(tr))
		for i, it := range tr {
			tx[i] = ids[it]
		}
		txs[t] = tx
	}
	return vals, txs
}

// supportCounts holds the per-itemset supports of one subset size in the
// densest representation the size allows.
type supportCounts struct {
	size   int
	single []int32           // size 1: support per item ID
	pairs  map[uint64]int32  // size 2: (hi<<32|lo) packed ID pairs
	packed map[string]*int32 // size >= 3: big-endian packed ID tuples
}

func newSupportCounts(size, numItems int) *supportCounts {
	c := &supportCounts{size: size}
	switch {
	case size == 1:
		c.single = make([]int32, numItems)
	case size == 2:
		c.pairs = make(map[uint64]int32)
	default:
		c.packed = make(map[string]*int32)
	}
	return c
}

// add counts every size-subset of one transaction. buf is a scratch key
// buffer of at least 4*size bytes (unused for sizes 1 and 2).
// internal/transaction's aprioriState.count is this structure's
// incremental twin (adjustable counts over node IDs); see the comment
// there before changing key packing or enumeration order.
func (c *supportCounts) add(tx []uint32, buf []byte) {
	if len(tx) < c.size {
		return
	}
	switch c.size {
	case 1:
		for _, id := range tx {
			c.single[id]++
		}
	case 2:
		for i := 0; i < len(tx); i++ {
			hi := uint64(tx[i]) << 32
			for j := i + 1; j < len(tx); j++ {
				c.pairs[hi|uint64(tx[j])]++
			}
		}
	default:
		forEachSubsetIDs(tx, c.size, func(sub []uint32) {
			for i, id := range sub {
				putID(buf[4*i:], id)
			}
			key := buf[:4*c.size]
			p := c.packed[string(key)] // read: no key allocation
			if p == nil {
				p = new(int32)
				c.packed[string(key)] = p
			}
			*p++
		})
	}
}

// merge folds other into c. Addition commutes, so the merged counts do not
// depend on shard boundaries or completion order.
func (c *supportCounts) merge(other *supportCounts) {
	switch c.size {
	case 1:
		for i, v := range other.single {
			c.single[i] += v
		}
	case 2:
		for k, v := range other.pairs {
			c.pairs[k] += v
		}
	default:
		for k, p := range other.packed {
			if q := c.packed[k]; q != nil {
				*q += *p
			} else {
				c.packed[k] = p
			}
		}
	}
}

// violations lists the itemsets with support in (0, k), sorted by packed
// key — which, by rank interning, is the item-name order the seed
// implementation reported.
func (c *supportCounts) violations(k int, vals []string) []Violation {
	var out []Violation
	switch c.size {
	case 1:
		for id, s := range c.single {
			if s > 0 && s < int32(k) {
				out = append(out, Violation{Itemset: []string{vals[id]}, Support: int(s)})
			}
		}
	case 2:
		var keys []uint64
		for key, s := range c.pairs {
			if s < int32(k) {
				keys = append(keys, key)
			}
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, key := range keys {
			out = append(out, Violation{
				Itemset: []string{vals[uint32(key>>32)], vals[uint32(key)]},
				Support: int(c.pairs[key]),
			})
		}
	default:
		var keys []string
		for key, p := range c.packed {
			if *p < int32(k) {
				keys = append(keys, key)
			}
		}
		sort.Strings(keys)
		for _, key := range keys {
			items := make([]string, c.size)
			for i := range items {
				items[i] = vals[getID(key[4*i:])]
			}
			out = append(out, Violation{Itemset: items, Support: int(*c.packed[key])})
		}
	}
	return out
}

// countSupports scans all transactions for one subset size. Scans big
// enough to amortize goroutine startup shard across up to GOMAXPROCS
// workers; each shard polls ctx on the usual stride, so cancellation stays
// as prompt as the serial scan.
func countSupports(ctx context.Context, txs [][]uint32, numItems, size int) (*supportCounts, error) {
	return countSupportsWidth(ctx, txs, numItems, size, kmWorkers(txs))
}

// countSupportsWidth is countSupports at an explicit shard width — split
// out so the deterministic-merge property can be tested at every width,
// not just the one kmWorkers happens to pick on the test machine.
func countSupportsWidth(ctx context.Context, txs [][]uint32, numItems, size, workers int) (*supportCounts, error) {
	if workers <= 1 {
		c := newSupportCounts(size, numItems)
		buf := make([]byte, 4*size)
		for ti, tx := range txs {
			if ctx != nil && ti%cancelCheckStride == 0 {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
			}
			c.add(tx, buf)
		}
		return c, nil
	}
	shards := make([]*supportCounts, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newSupportCounts(size, numItems)
			buf := make([]byte, 4*size)
			lo, hi := w*len(txs)/workers, (w+1)*len(txs)/workers
			for ti := lo; ti < hi; ti++ {
				if ctx != nil && (ti-lo)%cancelCheckStride == 0 {
					if err := ctx.Err(); err != nil {
						errs[w] = err
						return
					}
				}
				c.add(txs[ti], buf)
			}
			shards[w] = c
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	total := shards[0]
	for _, c := range shards[1:] {
		total.merge(c)
	}
	return total, nil
}

// kmWorkers derives the support-scan shard count from the total work on
// offer, not from the transaction count alone: a scan shards when either
// enough transactions (kmParallelMin per shard) or enough item
// occurrences (kmParallelMinWork per shard — dense baskets make the
// subset enumeration expensive even for few transactions) are available,
// and is capped by GOMAXPROCS. The old derivation floored
// len(txs)/kmParallelMin to 0–1 and silently serialized every dataset
// under ~2*kmParallelMin transactions regardless of how much work each
// transaction carried.
func kmWorkers(txs [][]uint32) int {
	workers := runtime.GOMAXPROCS(0)
	if workers <= 1 {
		return 1
	}
	work := 0
	for _, tx := range txs {
		work += len(tx)
	}
	shards := work / kmParallelMinWork
	if byTx := len(txs) / kmParallelMin; byTx > shards {
		shards = byTx
	}
	if shards < 2 {
		return 1
	}
	if workers > shards {
		workers = shards
	}
	return workers
}

// forEachSubsetIDs enumerates all size-k subsets of the ascending slice
// items in lexicographic order.
func forEachSubsetIDs(items []uint32, k int, fn func([]uint32)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]uint32, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		// Advance combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// IsKMAnonymous reports whether the transactions satisfy k^m-anonymity.
func IsKMAnonymous(transactions [][]string, k, m int) bool {
	return len(KMViolations(transactions, k, m, 1)) == 0
}

// Transactions extracts the item sets of the records at the given indices
// (all records when idx is nil), skipping empty baskets.
func Transactions(ds *dataset.Dataset, idx []int) [][]string {
	var out [][]string
	add := func(items []string) {
		if len(items) > 0 {
			out = append(out, items)
		}
	}
	if idx == nil {
		for r := range ds.Records {
			add(ds.Records[r].Items)
		}
		return out
	}
	for _, r := range idx {
		add(ds.Records[r].Items)
	}
	return out
}

// RTReport summarizes an (k,k^m)-anonymity check over an RT-dataset.
type RTReport struct {
	KAnonymous  bool
	MinClass    int
	BadClasses  int // classes whose transaction part violates k^m
	FirstKMFail *Violation
}

// Holds reports whether the dataset satisfies (k,k^m)-anonymity.
func (r RTReport) Holds() bool { return r.KAnonymous && r.BadClasses == 0 }

// CheckRT verifies (k,k^m)-anonymity per Poulis et al.: the relational part
// is k-anonymous and each equivalence class's transaction multiset is
// k^m-anonymous.
//
// The item domain is rank-interned once over the whole dataset and shared
// by every per-class support scan — re-interning each class's tiny
// transaction set was the dominant allocation cost of verification
// (wall-clock flat, allocs O(classes * class items); pinned by
// TestCheckRTSharedInternerAllocs). Rank IDs order like item names
// globally and therefore within every class, so the per-class violations
// and their order are identical to the per-class-interner ones.
func CheckRT(ds *dataset.Dataset, qis []int, k, m int) RTReport {
	return CheckRTClasses(ds, Partition(ds, qis), k, m)
}

// CheckRTClasses is CheckRT over a precomputed partition of ds (as
// returned by Partition(ds, qis)) — for callers that already hold the
// classes, like the engine evaluator, which derives every relational
// indicator and this check from a single partition.
func CheckRTClasses(ds *dataset.Dataset, classes []Class, k, m int) RTReport {
	rep := RTReport{KAnonymous: true, MinClass: 0}
	if len(classes) == 0 {
		rep.MinClass = 0
		return rep
	}
	var vals []string
	var txs [][]uint32
	if ds.HasTransaction() {
		items := make([][]string, len(ds.Records))
		for r := range ds.Records {
			items[r] = ds.Records[r].Items
		}
		vals, txs = internTransactions(items)
	}
	var classTx [][]uint32
	var sc kmScratch
	rep.MinClass = len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < rep.MinClass {
			rep.MinClass = len(c.Records)
		}
		if len(c.Records) < k {
			rep.KAnonymous = false
		}
		if ds.HasTransaction() {
			classTx = classTx[:0]
			for _, r := range c.Records {
				if len(txs[r]) > 0 {
					classTx = append(classTx, txs[r])
				}
			}
			if v := firstKMViolation(vals, classTx, k, m, &sc); v != nil {
				rep.BadClasses++
				if rep.FirstKMFail == nil {
					rep.FirstKMFail = v
				}
			}
		}
	}
	return rep
}
