package privacy

import (
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
)

// BenchmarkPartition measures the hot Partition workload: grouping a
// generalized candidate dataset, the scan IsKAnonymous runs at every
// lattice node / refinement step. The fixture is a mid-lattice
// generalization, so signatures repeat the way they do inside the
// relational algorithms' loops.
func BenchmarkPartition(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 5000, Items: 0, Seed: 1})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	levels := make([]int, len(qis))
	for i, q := range qis {
		if h := hs[ds.Attrs[q].Name]; h.Height() > 1 {
			levels[i] = h.Height() - 1
		}
	}
	cand, err := generalize.FullDomain(ds, hs, qis, levels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(cand, qis)
	}
}

func BenchmarkKMViolationsM2(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 40, Seed: 1})
	trs := Transactions(ds, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KMViolations(trs, 5, 2, 0)
	}
}

func BenchmarkCheckRT(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 30, Seed: 2})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CheckRT(ds, qis, 5, 2)
	}
}

// checkRTPerClassIntern is the pre-fix CheckRT verification loop — a
// fresh interner per equivalence class — kept as the before/after
// reference for the allocation assertion below.
func checkRTPerClassIntern(ds *dataset.Dataset, qis []int, k, m int) RTReport {
	rep := RTReport{KAnonymous: true, MinClass: 0}
	classes := Partition(ds, qis)
	if len(classes) == 0 {
		return rep
	}
	rep.MinClass = len(ds.Records)
	for _, c := range classes {
		if len(c.Records) < rep.MinClass {
			rep.MinClass = len(c.Records)
		}
		if len(c.Records) < k {
			rep.KAnonymous = false
		}
		if ds.HasTransaction() {
			vs := KMViolations(Transactions(ds, c.Records), k, m, 1)
			if len(vs) > 0 {
				rep.BadClasses++
				if rep.FirstKMFail == nil {
					v := vs[0]
					rep.FirstKMFail = &v
				}
			}
		}
	}
	return rep
}

// TestCheckRTSharedInternerAllocs pins the ROADMAP-noted alloc
// regression fix: verifying (k,k^m)-anonymity with one dataset-wide item
// interner and a reused per-class scratch must allocate a small fraction
// of what per-class re-interning costs (measured on this fixture: ~34.6k
// allocs/run before, ~10.1k after — the residue is Partition itself),
// while reporting the identical verdict.
func TestCheckRTSharedInternerAllocs(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 30, Seed: 2})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := checkRTPerClassIntern(ds, qis, 5, 2)
	got := CheckRT(ds, qis, 5, 2)
	if got.KAnonymous != want.KAnonymous || got.MinClass != want.MinClass || got.BadClasses != want.BadClasses {
		t.Fatalf("shared-interner CheckRT diverges: got %+v, want %+v", got, want)
	}
	if (got.FirstKMFail == nil) != (want.FirstKMFail == nil) {
		t.Fatalf("FirstKMFail presence diverges: got %v, want %v", got.FirstKMFail, want.FirstKMFail)
	}
	if got.FirstKMFail != nil && got.FirstKMFail.String() != want.FirstKMFail.String() {
		t.Fatalf("FirstKMFail diverges: got %v, want %v", got.FirstKMFail, want.FirstKMFail)
	}

	before := testing.AllocsPerRun(3, func() { _ = checkRTPerClassIntern(ds, qis, 5, 2) })
	after := testing.AllocsPerRun(3, func() { _ = CheckRT(ds, qis, 5, 2) })
	t.Logf("CheckRT allocs/run: per-class intern %.0f, shared interner %.0f", before, after)
	if after*2 >= before {
		t.Fatalf("shared-interner CheckRT allocates %.0f/run, not meaningfully below the per-class %.0f/run", after, before)
	}
}
