package privacy

import (
	"testing"

	"secreta/internal/gen"
)

func BenchmarkPartition(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 5000, Items: 0, Seed: 1})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(ds, qis)
	}
}

func BenchmarkKMViolationsM2(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 40, Seed: 1})
	trs := Transactions(ds, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KMViolations(trs, 5, 2, 0)
	}
}

func BenchmarkCheckRT(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 30, Seed: 2})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CheckRT(ds, qis, 5, 2)
	}
}
