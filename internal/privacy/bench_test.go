package privacy

import (
	"testing"

	"secreta/internal/gen"
	"secreta/internal/generalize"
)

// BenchmarkPartition measures the hot Partition workload: grouping a
// generalized candidate dataset, the scan IsKAnonymous runs at every
// lattice node / refinement step. The fixture is a mid-lattice
// generalization, so signatures repeat the way they do inside the
// relational algorithms' loops.
func BenchmarkPartition(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 5000, Items: 0, Seed: 1})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	hs, err := gen.Hierarchies(ds, 4)
	if err != nil {
		b.Fatal(err)
	}
	levels := make([]int, len(qis))
	for i, q := range qis {
		if h := hs[ds.Attrs[q].Name]; h.Height() > 1 {
			levels[i] = h.Height() - 1
		}
	}
	cand, err := generalize.FullDomain(ds, hs, qis, levels)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Partition(cand, qis)
	}
}

func BenchmarkKMViolationsM2(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 40, Seed: 1})
	trs := Transactions(ds, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KMViolations(trs, 5, 2, 0)
	}
}

func BenchmarkCheckRT(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 2000, Items: 30, Seed: 2})
	qis, err := ds.QIIndices(nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CheckRT(ds, qis, 5, 2)
	}
}
