package privacy

import (
	"secreta/internal/dataset"
)

// TxView is an immutable, rank-interned view of a record set's
// transactions: Vals is the sorted distinct item domain and Txs[r] is
// record r's basket as ascending item IDs into Vals (nil for an empty
// basket). A TxView is built once per dataset and shared freely across
// goroutines — the k^m gating loops of the RT bounding methods run
// hundreds of membership checks per run, and re-interning the item domain
// for each one was their dominant cost.
type TxView struct {
	Vals []string
	Txs  [][]uint32
}

// InternTxView rank-interns record-aligned item lists (items[r] is record
// r's basket, which must be sorted as dataset normalization guarantees).
func InternTxView(items [][]string) *TxView {
	vals, txs := internTransactions(items)
	return &TxView{Vals: vals, Txs: txs}
}

// TxViewOf wraps an interned dataset's transaction columns without
// copying: the item dictionary is rank-built and baskets are ascending ID
// lists, exactly the TxView invariants. The view aliases ix's storage and
// shares its immutability.
func TxViewOf(ix *dataset.Indexed) *TxView {
	if ix.ItemDict == nil {
		return &TxView{}
	}
	return &TxView{Vals: ix.ItemDict.Values(), Txs: ix.Items}
}

// KMCounter counts k^m-anonymity violations over ID-interned transaction
// groups without materializing them: no violation structs, no itemset
// strings, and the counting arenas are reused across calls. One counter
// serves one goroutine; concurrent runs each build their own over a
// shared TxView.
type KMCounter struct {
	numItems int
	sc       kmScratch
	touched  []uint32
}

// NewKMCounter builds a counter for transactions drawn from v's domain.
func NewKMCounter(v *TxView) *KMCounter {
	return &KMCounter{numItems: len(v.Vals)}
}

// Count returns the number of k^m-anonymity violations among the
// transactions of all groups taken together — exactly
// len(KMViolations(...)) over the concatenation, without building the
// list. limit > 0 stops early once that many violations exist (the
// callers' common cases are limit 1, "is there any violation", and limit
// 0, "how many"). Empty baskets contribute nothing, so callers pass their
// groups unfiltered.
func (c *KMCounter) Count(k, m, limit int, groups ...[][]uint32) int {
	if k <= 1 || m <= 0 {
		return 0
	}
	count := 0
	for size := 1; size <= m; size++ {
		count += c.countSize(size, k, groups)
		if limit > 0 && count >= limit {
			return limit
		}
	}
	return count
}

// Anonymous reports whether the groups' transactions, taken together, are
// k^m-anonymous.
func (c *KMCounter) Anonymous(k, m int, groups ...[][]uint32) bool {
	return c.Count(k, m, 1, groups...) == 0
}

// countSize counts the size-subsets with support in (0, k). The support
// structures mirror supportCounts (array / uint64 pairs / packed byte
// keys) so the counted entries are the same ones violations() would have
// listed; only the materialization is gone.
func (c *KMCounter) countSize(size, k int, groups [][][]uint32) int {
	sc := &c.sc
	switch {
	case size == 1:
		if sc.single == nil {
			sc.single = make([]int32, c.numItems)
		}
		// Reset by touched-ID list, not by clearing the whole domain
		// array: per-class groups are tiny against the global domain and
		// the counter runs O(classes^2) times inside merge scoring.
		for _, id := range c.touched {
			sc.single[id] = 0
		}
		c.touched = c.touched[:0]
		for _, txs := range groups {
			for _, tx := range txs {
				for _, id := range tx {
					if sc.single[id] == 0 {
						c.touched = append(c.touched, id)
					}
					sc.single[id]++
				}
			}
		}
		n := 0
		for _, id := range c.touched {
			if s := sc.single[id]; s > 0 && s < int32(k) {
				n++
			}
		}
		return n
	case size == 2:
		if sc.pairs == nil {
			sc.pairs = make(map[uint64]int32)
		} else {
			clear(sc.pairs)
		}
		for _, txs := range groups {
			for _, tx := range txs {
				for i := 0; i < len(tx); i++ {
					hi := uint64(tx[i]) << 32
					for j := i + 1; j < len(tx); j++ {
						sc.pairs[hi|uint64(tx[j])]++
					}
				}
			}
		}
		n := 0
		for _, s := range sc.pairs {
			if s < int32(k) {
				n++
			}
		}
		return n
	default:
		if sc.packed == nil {
			sc.packed = make(map[string]int32)
		} else {
			clear(sc.packed)
		}
		if len(sc.buf) < 4*size {
			sc.buf = make([]byte, 4*size)
		}
		key := sc.buf[:4*size]
		for _, txs := range groups {
			for _, tx := range txs {
				forEachSubsetIDs(tx, size, func(sub []uint32) {
					for i, id := range sub {
						putID(key[4*i:], id)
					}
					sc.packed[string(key)]++
				})
			}
		}
		n := 0
		for _, s := range sc.packed {
			if s < int32(k) {
				n++
			}
		}
		return n
	}
}
