// Package faultfs is the filesystem seam under internal/store: a narrow
// FS interface covering every operation the durable layer performs, a
// passthrough OS implementation, a deterministic fault injector (FaultFS)
// that can fail the N-th matching operation with EIO/ENOSPC or tear a
// write short, and a retry wrapper (RetryFS) that absorbs transient
// errors (EINTR/EAGAIN) with capped exponential backoff and jitter.
//
// The store takes an FS through store.Options.FS; production wires the
// passthrough (usually wrapped in WithRetry), tests wire a FaultFS armed
// with rules and assert against its operation ledger. Because every
// durable byte flows through the seam, a fault can be injected at any
// point of the persist path — WAL frame, blob temp file, fsync, rename —
// without touching the code under test.
package faultfs

import (
	"io"
	"io/fs"
	"os"
)

// File is the open-file surface the store needs: sequential reads and
// writes, fsync, truncation for WAL repair, and the name for temp-file
// rename. *os.File satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	io.Seeker
	// Name returns the path the file was opened under.
	Name() string
	// Sync flushes the file to stable storage (fsync).
	Sync() error
	// Truncate cuts the file to size bytes.
	Truncate(size int64) error
}

// FS is the filesystem operations the durable store performs. Every
// implementation must be safe for concurrent use.
type FS interface {
	// Open opens a file for reading.
	Open(name string) (File, error)
	// OpenFile is the generalized open (the WAL uses O_CREATE|O_RDWR).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// Create truncates-or-creates a file for writing.
	Create(name string) (File, error)
	// CreateTemp creates a new temp file in dir (pattern as os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm fs.FileMode) error
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// SyncDir fsyncs a directory so a just-renamed entry survives power
	// loss.
	SyncDir(dir string) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// WriteFile writes a whole file (non-atomic; the store's atomic path
	// goes through CreateTemp/Sync/Rename/SyncDir).
	WriteFile(name string, data []byte, perm fs.FileMode) error
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
}

// OS is the passthrough FS over the process's real filesystem.
var OS FS = osFS{}

// osFS delegates every operation to the os package.
type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}

func (osFS) Stat(name string) (fs.FileInfo, error) { return os.Stat(name) }

func (osFS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }
