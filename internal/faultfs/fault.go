package faultfs

import (
	"fmt"
	"io/fs"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
)

// Op names one filesystem operation class for rule matching and the
// ledger.
type Op string

// The operation classes FaultFS distinguishes. OpAny in a Rule matches
// every class.
const (
	OpAny       Op = ""
	OpOpen      Op = "open"
	OpCreate    Op = "create"
	OpWrite     Op = "write"
	OpRead      Op = "read"
	OpSync      Op = "sync"
	OpSyncDir   Op = "syncdir"
	OpRename    Op = "rename"
	OpRemove    Op = "remove"
	OpMkdir     Op = "mkdirall"
	OpReadFile  Op = "readfile"
	OpWriteFile Op = "writefile"
	OpStat      Op = "stat"
	OpReadDir   Op = "readdir"
	OpTruncate  Op = "truncate"
)

// Rule arms one injection. A rule matches an operation when Op is OpAny
// or equal to the operation's class, and Path is empty or globs the
// operation's path: against the base name, or — when the glob contains a
// separator — against the same number of trailing path segments (so
// "journal/*" pins the journal directory wherever the data dir lives).
// Matches are
// counted per rule; the rule fires at the Nth match (1-based; Nth <= 0
// fires from the first match) and Count bounds the total number of fires
// (0 fires once, Count < 0 fires on every match from Nth on — a disk
// that stays broken until the rule is cleared). With Prob in (0, 1], firing
// is instead decided per match by the FaultFS's seeded generator, so a
// fuzz-style run is reproducible from its seed.
type Rule struct {
	Op    Op
	Path  string
	Nth   int
	Count int
	Prob  float64
	// Err is the injected error (default syscall.EIO). Use
	// syscall.ENOSPC for disk-full, syscall.EINTR/EAGAIN for
	// transient-classed faults.
	Err error
	// Short, on write-class operations (OpWrite, OpWriteFile), first
	// passes Short bytes through to the inner FS and then fails — a torn
	// write, as a crash or a full disk mid-write leaves it.
	Short int
}

// matches reports whether the rule covers (op, path).
func (r *Rule) matches(op Op, path string) bool {
	if r.Op != OpAny && r.Op != op {
		return false
	}
	if r.Path == "" {
		return true
	}
	target := filepath.Base(path)
	if strings.ContainsRune(r.Path, '/') {
		segs := strings.Count(r.Path, "/") + 1
		parts := strings.Split(filepath.ToSlash(path), "/")
		if len(parts) > segs {
			parts = parts[len(parts)-segs:]
		}
		target = strings.Join(parts, "/")
	}
	ok, err := filepath.Match(r.Path, target)
	return err == nil && ok
}

// OpRecord is one ledger entry: the Seq-th operation the FaultFS saw,
// and whether a rule injected a fault into it.
type OpRecord struct {
	Seq      int
	Op       Op
	Path     string
	Injected bool
}

// armedRule tracks one rule's match/fire progress.
type armedRule struct {
	Rule
	seen  int
	fired int
}

// FaultFS wraps an inner FS and injects faults per its armed rules.
// Every operation — fault or passthrough — is appended to a ledger for
// test assertions. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []*armedRule
	ledger   []OpRecord
	rng      *rand.Rand
	injected int
}

// NewFaultFS wraps inner. seed drives probabilistic rules (Rule.Prob):
// the same seed and operation sequence reproduce the same faults.
func NewFaultFS(inner FS, seed int64) *FaultFS {
	if inner == nil {
		inner = OS
	}
	return &FaultFS{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// Arm adds a rule. Rules are checked in arming order; the first one that
// fires wins the operation.
func (f *FaultFS) Arm(r Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = append(f.rules, &armedRule{Rule: r})
}

// Clear disarms every rule — the injected disk "recovers". The ledger is
// kept.
func (f *FaultFS) Clear() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = nil
}

// Ledger returns a copy of every operation seen so far.
func (f *FaultFS) Ledger() []OpRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]OpRecord, len(f.ledger))
	copy(out, f.ledger)
	return out
}

// Injected reports how many operations had a fault injected.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// check records the operation and decides whether a rule fires on it.
// The returned rule is a snapshot — safe to read without the lock.
func (f *FaultFS) check(op Op, path string) (Rule, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	rec := OpRecord{Seq: len(f.ledger), Op: op, Path: path}
	for _, ar := range f.rules {
		if !ar.matches(op, path) {
			continue
		}
		ar.seen++
		fire := false
		switch {
		case ar.Prob > 0:
			fire = f.rng.Float64() < ar.Prob
		case ar.Nth <= 0 || ar.seen >= ar.Nth:
			fire = true
		}
		if fire && ar.Count >= 0 {
			limit := ar.Count
			if limit == 0 {
				limit = 1
			}
			if ar.fired >= limit {
				fire = false
			}
		}
		if !fire {
			continue
		}
		ar.fired++
		rec.Injected = true
		f.ledger = append(f.ledger, rec)
		f.injected++
		return ar.Rule, true
	}
	f.ledger = append(f.ledger, rec)
	return Rule{}, false
}

// injectedErr resolves a firing rule's error (EIO when unset).
func injectedErr(r Rule) error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// pathErr wraps an injected error the way the os package would, so
// errors.Is(err, fs.ErrNotExist)-style checks behave identically for
// injected and real failures.
func pathErr(op string, path string, err error) error {
	return &fs.PathError{Op: op, Path: path, Err: fmt.Errorf("faultfs injected: %w", err)}
}

// ---- FS implementation ----

func (f *FaultFS) Open(name string) (File, error) {
	if r, ok := f.check(OpOpen, name); ok {
		return nil, pathErr("open", name, injectedErr(r))
	}
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	if r, ok := f.check(OpOpen, name); ok {
		return nil, pathErr("open", name, injectedErr(r))
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) Create(name string) (File, error) {
	if r, ok := f.check(OpCreate, name); ok {
		return nil, pathErr("create", name, injectedErr(r))
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if r, ok := f.check(OpCreate, filepath.Join(dir, pattern)); ok {
		return nil, pathErr("createtemp", filepath.Join(dir, pattern), injectedErr(r))
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: file.Name()}, nil
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error {
	if r, ok := f.check(OpMkdir, path); ok {
		return pathErr("mkdirall", path, injectedErr(r))
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r, ok := f.check(OpRename, newpath); ok {
		return pathErr("rename", newpath, injectedErr(r))
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if r, ok := f.check(OpRemove, name); ok {
		return pathErr("remove", name, injectedErr(r))
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if r, ok := f.check(OpSyncDir, dir); ok {
		return pathErr("syncdir", dir, injectedErr(r))
	}
	return f.inner.SyncDir(dir)
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if r, ok := f.check(OpReadFile, name); ok {
		return nil, pathErr("readfile", name, injectedErr(r))
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	if r, ok := f.check(OpWriteFile, name); ok {
		err := pathErr("writefile", name, injectedErr(r))
		if r.Short > 0 && r.Short < len(data) {
			// A torn whole-file write: the prefix lands, the error is
			// reported — exactly what ENOSPC mid-write leaves behind.
			f.inner.WriteFile(name, data[:r.Short], perm)
		}
		return err
	}
	return f.inner.WriteFile(name, data, perm)
}

func (f *FaultFS) Stat(name string) (fs.FileInfo, error) {
	if r, ok := f.check(OpStat, name); ok {
		return nil, pathErr("stat", name, injectedErr(r))
	}
	return f.inner.Stat(name)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if r, ok := f.check(OpReadDir, name); ok {
		return nil, pathErr("readdir", name, injectedErr(r))
	}
	return f.inner.ReadDir(name)
}

// faultFile routes per-handle operations back through the injector.
// Close is deliberately not injectable — no store path treats Close as
// the durability point (Sync is), and failing it only muddies ledgers.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	if r, ok := f.fs.check(OpWrite, f.path); ok {
		n := 0
		if r.Short > 0 && r.Short < len(p) {
			// Torn write: the first Short bytes reach the file.
			n, _ = f.File.Write(p[:r.Short])
		}
		return n, pathErr("write", f.path, injectedErr(r))
	}
	return f.File.Write(p)
}

func (f *faultFile) Read(p []byte) (int, error) {
	if r, ok := f.fs.check(OpRead, f.path); ok {
		return 0, pathErr("read", f.path, injectedErr(r))
	}
	return f.File.Read(p)
}

func (f *faultFile) Sync() error {
	if r, ok := f.fs.check(OpSync, f.path); ok {
		return pathErr("sync", f.path, injectedErr(r))
	}
	return f.File.Sync()
}

func (f *faultFile) Truncate(size int64) error {
	if r, ok := f.fs.check(OpTruncate, f.path); ok {
		return pathErr("truncate", f.path, injectedErr(r))
	}
	return f.File.Truncate(size)
}
