package faultfs

import (
	"errors"
	"io/fs"
	"math/rand"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// IsTransient classifies an I/O error: EINTR and EAGAIN are interrupts
// of an otherwise healthy disk and safe to retry; everything else (EIO,
// ENOSPC, permissions, corruption) is treated as a real storage fault.
// The server uses the same classification to decide between "retry" and
// "enter degraded mode".
func IsTransient(err error) bool {
	return errors.Is(err, syscall.EINTR) || errors.Is(err, syscall.EAGAIN)
}

// RetryPolicy tunes a RetryFS: up to Attempts tries per operation with
// capped exponential backoff between them.
type RetryPolicy struct {
	// Attempts is the total number of tries per operation, first one
	// included (<= 1: no retries).
	Attempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it, capped at MaxDelay. Defaults: 1ms base, 100ms cap.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep is the wait function (nil: time.Sleep). Tests inject a
	// recording no-op so retry paths run instantly.
	Sleep func(time.Duration)
}

// DefaultRetryAttempts is the -store-retries default: the first try plus
// two retries absorbs the EINTR bursts seen under signal-heavy load
// without stretching a genuinely broken disk's failure latency.
const DefaultRetryAttempts = 3

// RetryFS wraps an inner FS and retries transient-classed failures
// (IsTransient) with capped exponential backoff plus jitter. Permanent
// errors return immediately. Retries are counted for /stats and
// /metrics.
type RetryFS struct {
	inner   FS
	policy  RetryPolicy
	retries atomic.Uint64
	giveups atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand
}

// WithRetry wraps inner in a RetryFS. Zero policy fields pick defaults
// (DefaultRetryAttempts tries, 1ms base, 100ms cap, real sleep).
func WithRetry(inner FS, p RetryPolicy) *RetryFS {
	if inner == nil {
		inner = OS
	}
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 100 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return &RetryFS{inner: inner, policy: p, rng: rand.New(rand.NewSource(1))}
}

// RetryStats is the wrapper's counter snapshot.
type RetryStats struct {
	// Retries counts sleep-then-retry events; GiveUps counts operations
	// that stayed transiently broken through every attempt.
	Retries uint64 `json:"retries"`
	GiveUps uint64 `json:"give_ups"`
}

// Stats snapshots the retry counters.
func (r *RetryFS) Stats() RetryStats {
	return RetryStats{Retries: r.retries.Load(), GiveUps: r.giveups.Load()}
}

// Retries reports the total sleep-then-retry events (the optional
// interface internal/store reads for its stats block).
func (r *RetryFS) Retries() uint64 { return r.retries.Load() }

// backoff returns the jittered wait before retry attempt i (0-based):
// base*2^i capped at MaxDelay, then uniformly jittered to [d/2, d) so
// concurrent retriers decorrelate.
func (r *RetryFS) backoff(i int) time.Duration {
	d := r.policy.BaseDelay << uint(i)
	if d <= 0 || d > r.policy.MaxDelay {
		d = r.policy.MaxDelay
	}
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(d)/2 + 1))
	r.mu.Unlock()
	return d/2 + j
}

// do runs fn up to Attempts times while its error classifies transient.
func (r *RetryFS) do(fn func() error) error {
	var err error
	for i := 0; i < r.policy.Attempts; i++ {
		if err = fn(); err == nil || !IsTransient(err) {
			return err
		}
		if i+1 < r.policy.Attempts {
			r.retries.Add(1)
			r.policy.Sleep(r.backoff(i))
		}
	}
	r.giveups.Add(1)
	return err
}

// retry1 is do for operations returning a value.
func retry1[T any](r *RetryFS, fn func() (T, error)) (T, error) {
	var v T
	err := r.do(func() error {
		var e error
		v, e = fn()
		return e
	})
	return v, err
}

// ---- FS implementation ----

func (r *RetryFS) Open(name string) (File, error) {
	f, err := retry1(r, func() (File, error) { return r.inner.Open(name) })
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, fs: r}, nil
}

func (r *RetryFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	f, err := retry1(r, func() (File, error) { return r.inner.OpenFile(name, flag, perm) })
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, fs: r}, nil
}

func (r *RetryFS) Create(name string) (File, error) {
	f, err := retry1(r, func() (File, error) { return r.inner.Create(name) })
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, fs: r}, nil
}

func (r *RetryFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := retry1(r, func() (File, error) { return r.inner.CreateTemp(dir, pattern) })
	if err != nil {
		return nil, err
	}
	return &retryFile{File: f, fs: r}, nil
}

func (r *RetryFS) MkdirAll(path string, perm fs.FileMode) error {
	return r.do(func() error { return r.inner.MkdirAll(path, perm) })
}

func (r *RetryFS) Rename(oldpath, newpath string) error {
	return r.do(func() error { return r.inner.Rename(oldpath, newpath) })
}

func (r *RetryFS) Remove(name string) error {
	return r.do(func() error { return r.inner.Remove(name) })
}

func (r *RetryFS) SyncDir(dir string) error {
	return r.do(func() error { return r.inner.SyncDir(dir) })
}

func (r *RetryFS) ReadFile(name string) ([]byte, error) {
	return retry1(r, func() ([]byte, error) { return r.inner.ReadFile(name) })
}

func (r *RetryFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return r.do(func() error { return r.inner.WriteFile(name, data, perm) })
}

func (r *RetryFS) Stat(name string) (fs.FileInfo, error) {
	return retry1(r, func() (fs.FileInfo, error) { return r.inner.Stat(name) })
}

func (r *RetryFS) ReadDir(name string) ([]fs.DirEntry, error) {
	return retry1(r, func() ([]fs.DirEntry, error) { return r.inner.ReadDir(name) })
}

// retryFile retries per-handle operations. A partially applied write is
// resumed, not repeated: only the unwritten suffix is retried, so a
// transient interrupt mid-write cannot duplicate bytes in an
// append-only log.
type retryFile struct {
	File
	fs *RetryFS
}

func (f *retryFile) Write(p []byte) (int, error) {
	total := 0
	err := f.fs.do(func() error {
		n, e := f.File.Write(p[total:])
		total += n
		if e == nil && total < len(p) {
			// A short write with no error is already a contract breach;
			// surface it rather than spinning.
			return fs.ErrInvalid
		}
		return e
	})
	return total, err
}

func (f *retryFile) Read(p []byte) (int, error) {
	// Reads are not resumed across retries — callers use io.ReadFull-style
	// loops already; only the immediate transient error is retried when no
	// bytes were consumed.
	var n int
	err := f.fs.do(func() error {
		var e error
		n, e = f.File.Read(p)
		if n > 0 {
			return nil
		}
		return e
	})
	if n > 0 {
		return n, nil
	}
	return n, err
}

func (f *retryFile) Sync() error {
	return f.fs.do(func() error { return f.File.Sync() })
}

func (f *retryFile) Truncate(size int64) error {
	return f.fs.do(func() error { return f.File.Truncate(size) })
}
