package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// TestPassthroughLedger verifies a rule-free FaultFS behaves exactly like
// the OS while recording every operation.
func TestPassthroughLedger(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	p := filepath.Join(dir, "a.txt")
	if err := ff.WriteFile(p, []byte("hello"), 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	data, err := ff.ReadFile(p)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile: %q, %v", data, err)
	}
	if err := ff.Remove(p); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	led := ff.Ledger()
	if len(led) != 3 {
		t.Fatalf("ledger has %d entries, want 3: %+v", len(led), led)
	}
	wantOps := []Op{OpWriteFile, OpReadFile, OpRemove}
	for i, rec := range led {
		if rec.Op != wantOps[i] || rec.Injected {
			t.Fatalf("ledger[%d] = %+v, want op %s uninjected", i, rec, wantOps[i])
		}
		if rec.Seq != i {
			t.Fatalf("ledger[%d].Seq = %d", i, rec.Seq)
		}
	}
	if ff.Injected() != 0 {
		t.Fatalf("Injected() = %d, want 0", ff.Injected())
	}
}

// TestNthMatchingOp verifies a rule fires at exactly the N-th matching
// operation, once, and that the injected error carries the armed errno.
func TestNthMatchingOp(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Path: "*.json", Nth: 2, Err: syscall.ENOSPC})

	if err := ff.WriteFile(filepath.Join(dir, "a.json"), []byte("1"), 0o644); err != nil {
		t.Fatalf("first matching write should pass: %v", err)
	}
	// A non-matching path must not advance the rule's match counter.
	if err := ff.WriteFile(filepath.Join(dir, "b.txt"), []byte("x"), 0o644); err != nil {
		t.Fatalf("non-matching write should pass: %v", err)
	}
	err := ff.WriteFile(filepath.Join(dir, "c.json"), []byte("2"), 0o644)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("second matching write: got %v, want ENOSPC", err)
	}
	// Count defaults to one fire; the rule is spent.
	if err := ff.WriteFile(filepath.Join(dir, "d.json"), []byte("3"), 0o644); err != nil {
		t.Fatalf("third matching write should pass (rule spent): %v", err)
	}
	if ff.Injected() != 1 {
		t.Fatalf("Injected() = %d, want 1", ff.Injected())
	}
}

// TestStickyRuleAndClear verifies Count < 0 keeps a disk broken until
// Clear heals it — the shape degraded-mode probing depends on.
func TestStickyRuleAndClear(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Count: -1, Err: syscall.EIO})
	p := filepath.Join(dir, "x")
	for i := 0; i < 3; i++ {
		if err := ff.WriteFile(p, []byte("x"), 0o644); !errors.Is(err, syscall.EIO) {
			t.Fatalf("write %d: got %v, want EIO", i, err)
		}
	}
	ff.Clear()
	if err := ff.WriteFile(p, []byte("x"), 0o644); err != nil {
		t.Fatalf("write after Clear: %v", err)
	}
}

// TestShortWrite verifies a torn write passes exactly Short bytes
// through before failing.
func TestShortWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWrite, Short: 3, Err: syscall.ENOSPC})
	f, err := ff.Create(filepath.Join(dir, "torn"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("Write: got %v, want ENOSPC", err)
	}
	if n != 3 {
		t.Fatalf("Write reported %d bytes, want 3", n)
	}
	f.Close()
	data, err := os.ReadFile(filepath.Join(dir, "torn"))
	if err != nil || string(data) != "abc" {
		t.Fatalf("file holds %q, want the 3-byte torn prefix", data)
	}
}

// TestSeededProbDeterministic verifies two FaultFS with the same seed and
// operation sequence inject at identical points.
func TestSeededProbDeterministic(t *testing.T) {
	run := func(seed int64) []bool {
		dir := t.TempDir()
		ff := NewFaultFS(OS, seed)
		ff.Arm(Rule{Op: OpWriteFile, Prob: 0.5, Count: -1, Err: syscall.EIO})
		out := make([]bool, 40)
		for i := range out {
			err := ff.WriteFile(filepath.Join(dir, "p"), []byte("x"), 0o644)
			out[i] = err != nil
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d", i)
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds produced identical injection patterns (suspicious)")
	}
}

// TestFullPathGlob verifies a glob containing a separator matches the
// whole path, not just the base name.
func TestFullPathGlob(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "journal")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Path: "journal/*", Count: -1, Err: syscall.EIO})
	if err := ff.WriteFile(filepath.Join(dir, "wal.log"), []byte("x"), 0o644); err != nil {
		t.Fatalf("outside-journal write should pass: %v", err)
	}
	if err := ff.WriteFile(filepath.Join(sub, "wal.log"), []byte("x"), 0o644); !errors.Is(err, syscall.EIO) {
		t.Fatalf("journal write: got %v, want EIO", err)
	}
}
