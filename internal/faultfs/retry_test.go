package faultfs

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestRetryAbsorbsTransient verifies EINTR-classed faults are retried to
// success without any real sleeping, and that the retry counter records
// each sleep-then-retry event.
func TestRetryAbsorbsTransient(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Count: 2, Err: syscall.EINTR}) // first 2 tries fail
	var slept []time.Duration
	rf := WithRetry(ff, RetryPolicy{
		Attempts:  4,
		BaseDelay: time.Millisecond,
		MaxDelay:  8 * time.Millisecond,
		Sleep:     func(d time.Duration) { slept = append(slept, d) },
	})
	p := filepath.Join(dir, "x")
	if err := rf.WriteFile(p, []byte("ok"), 0o644); err != nil {
		t.Fatalf("WriteFile should succeed on the third try: %v", err)
	}
	if got := rf.Stats(); got.Retries != 2 || got.GiveUps != 0 {
		t.Fatalf("stats = %+v, want 2 retries, 0 give-ups", got)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	// Exponential shape with jitter: each wait sits in [base*2^i/2, base*2^i).
	for i, d := range slept {
		lo := (time.Millisecond << uint(i)) / 2
		hi := time.Millisecond << uint(i)
		if d < lo || d > hi {
			t.Fatalf("backoff %d = %v, want in [%v, %v]", i, d, lo, hi)
		}
	}
}

// TestRetryGivesUpTransient verifies an op that stays transiently broken
// through every attempt returns the error and counts a give-up.
func TestRetryGivesUpTransient(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Count: -1, Err: syscall.EAGAIN})
	rf := WithRetry(ff, RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}})
	err := rf.WriteFile(filepath.Join(dir, "x"), []byte("x"), 0o644)
	if !errors.Is(err, syscall.EAGAIN) {
		t.Fatalf("got %v, want EAGAIN", err)
	}
	if got := rf.Stats(); got.Retries != 2 || got.GiveUps != 1 {
		t.Fatalf("stats = %+v, want 2 retries, 1 give-up", got)
	}
}

// TestNoRetryOnPermanent verifies EIO/ENOSPC return immediately — a
// broken disk must fail fast into degraded handling, not stall behind
// backoff.
func TestNoRetryOnPermanent(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWriteFile, Count: -1, Err: syscall.ENOSPC})
	slept := 0
	rf := WithRetry(ff, RetryPolicy{Attempts: 5, Sleep: func(time.Duration) { slept++ }})
	if err := rf.WriteFile(filepath.Join(dir, "x"), []byte("x"), 0o644); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("got %v, want ENOSPC", err)
	}
	if slept != 0 {
		t.Fatalf("slept %d times on a permanent error, want 0", slept)
	}
	if got := rf.Stats(); got.Retries != 0 {
		t.Fatalf("stats = %+v, want 0 retries", got)
	}
}

// TestRetryWriteResumes verifies a torn transient write is resumed from
// the torn offset, never repeated from the start — retrying a WAL frame
// append must not duplicate its prefix.
func TestRetryWriteResumes(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(OS, 1)
	ff.Arm(Rule{Op: OpWrite, Short: 3, Err: syscall.EINTR}) // tear the first write at 3 bytes
	rf := WithRetry(ff, RetryPolicy{Attempts: 3, Sleep: func(time.Duration) {}})
	f, err := rf.Create(filepath.Join(dir, "log"))
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if err != nil || n != 6 {
		t.Fatalf("Write = (%d, %v), want (6, nil)", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := OS.ReadFile(filepath.Join(dir, "log"))
	if err != nil || string(data) != "abcdef" {
		t.Fatalf("file holds %q, want %q (no duplicated prefix)", data, "abcdef")
	}
}

// TestClassify pins the transient classification.
func TestClassify(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{syscall.EINTR, true},
		{syscall.EAGAIN, true},
		{syscall.EIO, false},
		{syscall.ENOSPC, false},
		{errors.New("opaque"), false},
		{nil, false},
	} {
		if got := IsTransient(tc.err); got != tc.want {
			t.Fatalf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
