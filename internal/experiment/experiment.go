// Package experiment implements SECRETA's Experimentation Module: single-
// and varying-parameter execution. In varying-parameter execution the user
// picks one parameter (k, m or delta), its start/end values and step; the
// module runs the configuration once per value and assembles the utility
// indicators and runtimes into series ready for the Plotting Module. The
// Comparison mode runs several configurations over the same sweep.
package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/engine"
)

// Sweep describes a varying parameter: name, start/end values, and step.
type Sweep struct {
	Param string  // "k", "m" or "delta"
	Start float64 // first value (inclusive)
	End   float64 // last value (inclusive)
	Step  float64 // positive increment
}

// Validate checks the sweep definition.
func (s *Sweep) Validate() error {
	switch strings.ToLower(s.Param) {
	case "k", "m", "delta":
	default:
		return fmt.Errorf("experiment: unknown sweep parameter %q (want k, m or delta)", s.Param)
	}
	if s.Step <= 0 {
		return fmt.Errorf("experiment: sweep step must be positive, got %v", s.Step)
	}
	if s.End < s.Start {
		return fmt.Errorf("experiment: sweep end %v before start %v", s.End, s.Start)
	}
	if (s.End-s.Start)/s.Step > 10000 {
		return fmt.Errorf("experiment: sweep has more than 10000 points")
	}
	return nil
}

// Values enumerates the sweep points.
func (s *Sweep) Values() []float64 {
	var out []float64
	for v := s.Start; v <= s.End+1e-9; v += s.Step {
		out = append(out, v)
	}
	return out
}

// apply returns a copy of cfg with the sweep parameter set to v.
func (s *Sweep) apply(cfg engine.Config, v float64) engine.Config {
	switch strings.ToLower(s.Param) {
	case "k":
		cfg.K = int(v + 0.5)
	case "m":
		cfg.M = int(v + 0.5)
	case "delta":
		cfg.Delta = v
	}
	return cfg
}

// Point is one sweep measurement.
type Point struct {
	X          float64
	Indicators engine.Indicators
	Runtime    time.Duration
	Err        error
}

// Series is one configuration's measurements across the sweep.
type Series struct {
	Label  string
	Param  string
	Points []Point
}

// Failed counts the points that errored.
func (s *Series) Failed() int {
	n := 0
	for _, p := range s.Points {
		if p.Err != nil {
			n++
		}
	}
	return n
}

// Ys extracts one indicator across the series via the selector.
func (s *Series) Ys(sel func(engine.Indicators) float64) []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = sel(p.Indicators)
	}
	return out
}

// Xs returns the sweep values.
func (s *Series) Xs() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.X
	}
	return out
}

// Runtimes returns per-point runtimes in seconds.
func (s *Series) Runtimes() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Runtime.Seconds()
	}
	return out
}

// VaryingRun executes the configuration once per sweep value using the
// engine's parallel workers and returns the assembled series.
func VaryingRun(ds *dataset.Dataset, base engine.Config, sweep Sweep, workers int) (*Series, error) {
	return VaryingRunCtx(context.Background(), ds, base, sweep, engine.NewScheduler(workers, nil))
}

// VaryingRunCtx is VaryingRun on an explicit scheduler: the sweep points
// run through its worker pool (and cache, when it has one) and respect
// context cancellation.
func VaryingRunCtx(ctx context.Context, ds *dataset.Dataset, base engine.Config, sweep Sweep, sched *engine.Scheduler) (*Series, error) {
	out, err := CompareCtx(ctx, ds, []engine.Config{base}, sweep, sched)
	if err != nil {
		return nil, err
	}
	return out[0], nil
}

// Compare runs several configurations over the same sweep — the Comparison
// mode's benchmark execution. Configurations are independent; failures stay
// per-point.
func Compare(ds *dataset.Dataset, bases []engine.Config, sweep Sweep, workers int) ([]*Series, error) {
	return CompareCtx(context.Background(), ds, bases, sweep, engine.NewScheduler(workers, nil))
}

// CompareCtx fans every (configuration, sweep value) pair out as one batch
// through the scheduler, so a wide comparison saturates the worker pool
// instead of running series after series. Point order within each series is
// preserved regardless of completion order.
func CompareCtx(ctx context.Context, ds *dataset.Dataset, bases []engine.Config, sweep Sweep, sched *engine.Scheduler) ([]*Series, error) {
	if len(bases) == 0 {
		return nil, fmt.Errorf("experiment: no configurations to compare")
	}
	if err := sweep.Validate(); err != nil {
		return nil, err
	}
	values := sweep.Values()
	cfgs := make([]engine.Config, 0, len(bases)*len(values))
	for _, base := range bases {
		for _, v := range values {
			cfgs = append(cfgs, sweep.apply(base, v))
		}
	}
	results, err := sched.RunAll(ctx, ds, cfgs)
	if err != nil {
		return nil, err
	}
	out := make([]*Series, len(bases))
	for i, base := range bases {
		series := &Series{Label: base.DisplayLabel(), Param: sweep.Param}
		for j, v := range values {
			r := results[i*len(values)+j]
			p := Point{X: v, Runtime: r.Runtime, Err: r.Err}
			if r.Err == nil {
				p.Indicators = r.Indicators
			}
			series.Points = append(series.Points, p)
		}
		out[i] = series
	}
	return out, nil
}
