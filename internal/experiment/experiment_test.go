package experiment

import (
	"math"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/engine"
	"secreta/internal/gen"
	"secreta/internal/generalize"
)

func fixture(t testing.TB) (*dataset.Dataset, generalize.Set) {
	t.Helper()
	ds := gen.Census(gen.Config{Records: 100, Items: 0, Seed: 31})
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds, hs
}

func TestSweepValidate(t *testing.T) {
	good := Sweep{Param: "k", Start: 2, End: 10, Step: 2}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Sweep{
		{Param: "zzz", Start: 1, End: 2, Step: 1},
		{Param: "k", Start: 1, End: 2, Step: 0},
		{Param: "k", Start: 5, End: 2, Step: 1},
		{Param: "k", Start: 0, End: 1e9, Step: 1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("sweep %+v accepted", bad)
		}
	}
}

func TestSweepValues(t *testing.T) {
	s := Sweep{Param: "k", Start: 2, End: 10, Step: 2}
	vals := s.Values()
	if len(vals) != 5 || vals[0] != 2 || vals[4] != 10 {
		t.Errorf("values = %v", vals)
	}
	// Floating-point deltas include the endpoint.
	s = Sweep{Param: "delta", Start: 0, End: 0.3, Step: 0.1}
	vals = s.Values()
	if len(vals) != 4 || math.Abs(vals[3]-0.3) > 1e-9 {
		t.Errorf("delta values = %v", vals)
	}
}

func TestSweepApply(t *testing.T) {
	base := engine.Config{K: 1, M: 1, Delta: 0}
	s := Sweep{Param: "k"}
	if got := s.apply(base, 7); got.K != 7 {
		t.Errorf("k apply = %+v", got)
	}
	s = Sweep{Param: "m"}
	if got := s.apply(base, 3); got.M != 3 {
		t.Errorf("m apply = %+v", got)
	}
	s = Sweep{Param: "delta"}
	if got := s.apply(base, 0.25); got.Delta != 0.25 {
		t.Errorf("delta apply = %+v", got)
	}
	if base.K != 1 {
		t.Error("apply mutated base")
	}
}

func TestVaryingRunSeries(t *testing.T) {
	ds, hs := fixture(t)
	base := engine.Config{Mode: engine.Relational, Algorithm: "cluster", Hierarchies: hs}
	series, err := VaryingRun(ds, base, Sweep{Param: "k", Start: 2, End: 10, Step: 4}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 3 {
		t.Fatalf("points = %d", len(series.Points))
	}
	if series.Failed() != 0 {
		t.Fatalf("failures: %+v", series.Points)
	}
	// GCP must be non-decreasing in k for a fixed algorithm.
	ys := series.Ys(func(i engine.Indicators) float64 { return i.GCP })
	for i := 1; i < len(ys); i++ {
		if ys[i]+1e-9 < ys[i-1] {
			t.Errorf("GCP decreased along k sweep: %v", ys)
		}
	}
	xs := series.Xs()
	if xs[0] != 2 || xs[2] != 10 {
		t.Errorf("xs = %v", xs)
	}
	if rs := series.Runtimes(); len(rs) != 3 || rs[0] < 0 {
		t.Errorf("runtimes = %v", rs)
	}
}

func TestVaryingRunCapturesPointFailures(t *testing.T) {
	ds, hs := fixture(t)
	base := engine.Config{Mode: engine.Relational, Algorithm: "cluster", Hierarchies: hs}
	// k beyond n fails for the last point only.
	series, err := VaryingRun(ds, base, Sweep{Param: "k", Start: 50, End: 150, Step: 50}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if series.Failed() != 1 {
		t.Errorf("failed = %d, want 1", series.Failed())
	}
	if series.Points[0].Err != nil || series.Points[2].Err == nil {
		t.Error("wrong points failed")
	}
}

func TestCompare(t *testing.T) {
	ds, hs := fixture(t)
	bases := []engine.Config{
		{Mode: engine.Relational, Algorithm: "cluster", Hierarchies: hs},
		{Mode: engine.Relational, Algorithm: "incognito", Hierarchies: hs},
	}
	series, err := Compare(ds, bases, Sweep{Param: "k", Start: 2, End: 6, Step: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if len(s.Points) != 3 || s.Failed() != 0 {
			t.Errorf("series %q: %+v", s.Label, s.Points)
		}
	}
	if series[0].Label == series[1].Label {
		t.Error("series labels collide")
	}
	if _, err := Compare(ds, nil, Sweep{Param: "k", Start: 1, End: 2, Step: 1}, 1); err == nil {
		t.Error("empty comparison accepted")
	}
	if _, err := Compare(ds, bases, Sweep{Param: "bad", Start: 1, End: 2, Step: 1}, 1); err == nil {
		t.Error("bad sweep accepted")
	}
}
