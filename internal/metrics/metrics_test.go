package metrics

import (
	"math"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

func hset(t testing.TB) (generalize.Set, *hierarchy.Hierarchy) {
	t.Helper()
	age, err := hierarchy.NewBuilder("Age").
		Add("Any", "[20-29]").Add("Any", "[30-49]").
		Add("[20-29]", "25").Add("[20-29]", "27").
		Add("[30-49]", "31").Add("[30-49]", "47").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	items, err := hierarchy.NewBuilder("Items").
		Add("All", "ab").Add("All", "cd").
		Add("ab", "a").Add("ab", "b").
		Add("cd", "c").Add("cd", "d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return generalize.Set{"Age": age}, items
}

func data(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{{Name: "Age", Kind: dataset.Numeric}}, "T")
	for _, r := range []dataset.Record{
		{Values: []string{"25"}, Items: []string{"a", "c"}},
		{Values: []string{"27"}, Items: []string{"a"}},
		{Values: []string{"31"}, Items: []string{"b"}},
		{Values: []string{"47"}, Items: []string{"d"}},
	} {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestGCP(t *testing.T) {
	hs, _ := hset(t)
	ds := data(t)
	g, err := GCP(ds, hs, []int{0})
	if err != nil || g != 0 {
		t.Errorf("GCP(original) = %v, %v", g, err)
	}
	anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	g, err = GCP(anon, hs, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Every cell is a 2-leaf node out of 4 leaves: NCP = 1/3.
	if math.Abs(g-1.0/3) > 1e-9 {
		t.Errorf("GCP(level 1) = %v, want 1/3", g)
	}
	anon, err = generalize.FullDomain(ds, hs, []int{0}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	g, _ = GCP(anon, hs, []int{0})
	if g != 1 {
		t.Errorf("GCP(root) = %v, want 1", g)
	}
}

func TestGCPSuppressedAndUnknown(t *testing.T) {
	hs, _ := hset(t)
	ds := data(t)
	generalize.SuppressRecord(ds, []int{0}, 0)
	ds.Records[1].Values[0] = "weird-label"
	g, err := GCP(ds, hs, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Two full-loss cells + two zero-loss cells.
	if math.Abs(g-0.5) > 1e-9 {
		t.Errorf("GCP = %v, want 0.5", g)
	}
}

func TestGCPEmpty(t *testing.T) {
	hs, _ := hset(t)
	ds := dataset.New([]dataset.Attribute{{Name: "Age"}}, "")
	if g, err := GCP(ds, hs, []int{0}); err != nil || g != 0 {
		t.Errorf("GCP(empty) = %v, %v", g, err)
	}
}

func TestTransactionGCP(t *testing.T) {
	_, itemH := hset(t)
	ds := data(t)
	same, err := TransactionGCP(ds, ds, itemH)
	if err != nil || same != 0 {
		t.Errorf("TransactionGCP(identity) = %v, %v", same, err)
	}
	cut := hierarchy.NewCut(itemH)
	if err := cut.Specialize("All"); err != nil {
		t.Fatal(err)
	}
	anon, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		t.Fatal(err)
	}
	g, err := TransactionGCP(ds, anon, itemH)
	if err != nil {
		t.Fatal(err)
	}
	// Every occurrence maps to a 2-leaf node of a 4-leaf domain: NCP=1/3.
	if math.Abs(g-1.0/3) > 1e-9 {
		t.Errorf("TransactionGCP = %v, want 1/3", g)
	}
	// Suppression counts as total loss.
	anon2 := ds.Clone()
	anon2.Records[0].Items = nil
	g, err = TransactionGCP(ds, anon2, itemH)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g-0.4) > 1e-9 { // 2 of 5 occurrences lost
		t.Errorf("TransactionGCP(suppressed) = %v, want 0.4", g)
	}
	if _, err := TransactionGCP(ds, dataset.New(nil, "T"), itemH); err == nil {
		t.Error("misaligned datasets accepted")
	}
}

func TestUL(t *testing.T) {
	ds := data(t)
	// Identity mapping: no loss.
	anon := ds.Clone()
	ul, err := UL(ds, anon, map[string]string{"a": "a"}, nil)
	if err != nil || ul != 0 {
		t.Errorf("UL(identity) = %v, %v", ul, err)
	}
	// Merge a,b into g(ab): support of g(ab) in anon counts.
	mapping := map[string]string{"a": "(ab)", "b": "(ab)"}
	anon = generalize.ApplyItemMapping(ds, mapping)
	ul, err = UL(ds, anon, mapping, nil)
	if err != nil {
		t.Fatal(err)
	}
	// (2^2-1)*support(3) / ((2^4-1)*4) = 9/60
	if math.Abs(ul-9.0/60) > 1e-9 {
		t.Errorf("UL = %v, want %v", ul, 9.0/60)
	}
	// Suppression: item d dropped, charged its original support.
	mapping = map[string]string{"d": ""}
	anon = generalize.ApplyItemMapping(ds, mapping)
	ul, err = UL(ds, anon, mapping, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ul-1.0/60) > 1e-9 {
		t.Errorf("UL(suppress) = %v, want %v", ul, 1.0/60)
	}
	// Weights scale the loss.
	mapping = map[string]string{"a": "(ab)", "b": "(ab)"}
	anon = generalize.ApplyItemMapping(ds, mapping)
	ul2, err := UL(ds, anon, mapping, map[string]float64{"(ab)": 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ul2-2*9.0/60) > 1e-9 {
		t.Errorf("UL(weighted) = %v", ul2)
	}
}

func TestDiscernibilityAndCAVG(t *testing.T) {
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	for _, v := range []string{"x", "x", "y", "y", "y"} {
		if err := ds.AddRecord(dataset.Record{Values: []string{v}}); err != nil {
			t.Fatal(err)
		}
	}
	if d := Discernibility(ds, []int{0}); d != 4+9 {
		t.Errorf("Discernibility = %v, want 13", d)
	}
	if c := CAVG(ds, []int{0}, 2); math.Abs(c-5.0/2/2) > 1e-9 {
		t.Errorf("CAVG = %v, want 1.25", c)
	}
	generalize.SuppressRecord(ds, []int{0}, 0)
	// 1 suppressed record charged n=5; classes x(1), y(3).
	if d := Discernibility(ds, []int{0}); d != 1+9+5 {
		t.Errorf("Discernibility with suppression = %v, want 15", d)
	}
	if s := SuppressionRatio(ds, []int{0}); math.Abs(s-0.2) > 1e-9 {
		t.Errorf("SuppressionRatio = %v", s)
	}
	empty := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if Discernibility(empty, []int{0}) != 0 || CAVG(empty, []int{0}, 2) != 0 || SuppressionRatio(empty, []int{0}) != 0 {
		t.Error("empty dataset metrics non-zero")
	}
}

func TestItemFrequencyError(t *testing.T) {
	_, itemH := hset(t)
	ds := data(t)
	// Identity: zero error everywhere.
	for _, ve := range ItemFrequencyError(ds, ds, itemH) {
		if ve.RelError != 0 {
			t.Errorf("identity error for %q = %v", ve.Value, ve.RelError)
		}
	}
	cut := hierarchy.NewCut(itemH)
	if err := cut.Specialize("All"); err != nil {
		t.Fatal(err)
	}
	anon, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		t.Fatal(err)
	}
	ves := ItemFrequencyError(ds, anon, itemH)
	// Original: a=2, b=1, c=1, d=1. Anonymized: ab appears in 3 records,
	// cd in 2. Estimates: a=b=1.5, c=d=1.
	want := map[string]float64{"a": 1.5, "b": 1.5, "c": 1, "d": 1}
	for _, ve := range ves {
		if math.Abs(ve.Estimate-want[ve.Value]) > 1e-9 {
			t.Errorf("estimate[%q] = %v, want %v", ve.Value, ve.Estimate, want[ve.Value])
		}
	}
}

func TestAttributeFrequencyError(t *testing.T) {
	hs, _ := hset(t)
	ds := data(t)
	anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	ves := AttributeFrequencyError(ds, anon, hs["Age"], 0)
	// [20-29] has 2 records spread over leaves 25,27 -> 1 each; original
	// 25:1, 27:1 -> zero error. Same for [30-49].
	for _, ve := range ves {
		if ve.RelError != 0 {
			t.Errorf("error for %q = %v (est %v, orig %v)", ve.Value, ve.RelError, ve.Estimate, ve.Original)
		}
	}
	// Suppressed cells contribute no estimate.
	generalize.SuppressRecord(anon, []int{0}, 0)
	ves = AttributeFrequencyError(ds, anon, hs["Age"], 0)
	var est25 float64
	for _, ve := range ves {
		if ve.Value == "25" {
			est25 = ve.Estimate
		}
	}
	if math.Abs(est25-0.5) > 1e-9 {
		t.Errorf("est 25 after suppression = %v, want 0.5", est25)
	}
}

func TestGeneralizedFrequencies(t *testing.T) {
	hs, _ := hset(t)
	ds := data(t)
	anon, err := generalize.FullDomain(ds, hs, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	fr := GeneralizedFrequencies(anon, 0)
	if len(fr) != 2 || fr[0].Count != 2 || fr[1].Count != 2 {
		t.Errorf("frequencies = %v", fr)
	}
}
