package metrics

import (
	"fmt"
	"math/rand"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
)

// Property: GCP stays in [0,1] for arbitrary cut-generalized datasets, and
// coarsening a cut never decreases it.
func TestGCPBoundsAndMonotonicityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 25; trial++ {
		domainSize := 4 + rng.Intn(16)
		vals := make([]string, domainSize)
		for i := range vals {
			vals[i] = fmt.Sprintf("v%02d", i)
		}
		h, err := hierarchy.AutoCategorical("A", vals, 2+rng.Intn(3))
		if err != nil {
			t.Fatal(err)
		}
		hs := generalize.Set{"A": h}
		ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
		for i := 0; i < 10+rng.Intn(40); i++ {
			rec := dataset.Record{Values: []string{vals[rng.Intn(domainSize)]}}
			if err := ds.AddRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		cut := hierarchy.NewLeafCut(h)
		prev := -1.0
		for step := 0; step < 40; step++ {
			anon, err := generalize.ApplyCuts(ds, map[string]*hierarchy.Cut{"A": cut}, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			g, err := GCP(anon, hs, []int{0})
			if err != nil {
				t.Fatal(err)
			}
			if g < 0 || g > 1 {
				t.Fatalf("trial %d: GCP out of bounds: %v", trial, g)
			}
			if prev >= 0 && g < prev-1e-12 {
				t.Fatalf("trial %d: GCP dropped %v -> %v after coarsening", trial, prev, g)
			}
			prev = g
			var candidates []string
			for _, v := range cut.Values() {
				if nd := h.Node(v); nd != nil && nd.Parent != nil {
					candidates = append(candidates, v)
				}
			}
			if len(candidates) == 0 {
				break
			}
			if err := cut.Generalize(candidates[rng.Intn(len(candidates))]); err != nil {
				t.Fatal(err)
			}
		}
		if prev != 1 && ds.Len() > 0 && domainSize > 1 {
			t.Fatalf("trial %d: fully generalized GCP = %v, want 1", trial, prev)
		}
	}
}

// Property: TransactionGCP stays in [0,1] for random item cuts.
func TestTransactionGCPBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	vals := make([]string, 12)
	for i := range vals {
		vals[i] = fmt.Sprintf("i%02d", i)
	}
	h, err := hierarchy.AutoCategorical("T", vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
		for i := 0; i < 15+rng.Intn(25); i++ {
			var items []string
			for _, v := range vals {
				if rng.Intn(4) == 0 {
					items = append(items, v)
				}
			}
			if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: items}); err != nil {
				t.Fatal(err)
			}
		}
		cut := hierarchy.NewLeafCut(h)
		for step := 0; step < rng.Intn(8); step++ {
			var candidates []string
			for _, v := range cut.Values() {
				if nd := h.Node(v); nd != nil && nd.Parent != nil {
					candidates = append(candidates, v)
				}
			}
			if len(candidates) == 0 {
				break
			}
			if err := cut.Generalize(candidates[rng.Intn(len(candidates))]); err != nil {
				t.Fatal(err)
			}
		}
		anon, err := generalize.ApplyItemCut(ds, cut)
		if err != nil {
			t.Fatal(err)
		}
		g, err := TransactionGCP(ds, anon, h)
		if err != nil {
			t.Fatal(err)
		}
		if g < 0 || g > 1 {
			t.Fatalf("trial %d: TransactionGCP = %v", trial, g)
		}
	}
}
