// Package metrics implements the data utility indicators SECRETA reports:
// NCP/GCP information loss for relational attributes (Xu et al.), NCP and
// UL utility loss for transaction data (Terrovitis et al.; Loukides et al.
// COAT), discernibility, normalized average class size, suppression ratio,
// and the per-value frequency error plots of the Evaluation mode.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/privacy"
)

// GCP computes the Generalized Certainty Penalty of an anonymized dataset:
// the average NCP over all QI cells. Suppressed cells and values missing
// from the hierarchy (e.g. arbitrary group labels) count as total loss (1).
// The result is in [0,1]; 0 means the data is unchanged.
func GCP(anon *dataset.Dataset, hs generalize.Set, qis []int) (float64, error) {
	if len(anon.Records) == 0 || len(qis) == 0 {
		return 0, nil
	}
	hh, err := hs.ForQIs(anon, qis)
	if err != nil {
		return 0, err
	}
	total := 0.0
	memo := make([]map[string]float64, len(qis))
	for i := range memo {
		memo[i] = make(map[string]float64)
	}
	for r := range anon.Records {
		for i, q := range qis {
			v := anon.Records[r].Values[q]
			ncp, ok := memo[i][v]
			if !ok {
				if v == generalize.Suppressed || !hh[i].Contains(v) {
					ncp = 1
				} else {
					ncp, err = hh[i].NCP(v)
					if err != nil {
						return 0, err
					}
				}
				memo[i][v] = ncp
			}
			total += ncp
		}
	}
	return total / float64(len(anon.Records)*len(qis)), nil
}

// TransactionGCP computes the average information loss of the transaction
// attribute: for every item occurrence in the original dataset, the NCP of
// the generalized item covering it in the anonymized record, or 1 when the
// item disappeared (suppression). orig and anon must be record-aligned.
func TransactionGCP(orig, anon *dataset.Dataset, itemH *hierarchy.Hierarchy) (float64, error) {
	if len(orig.Records) != len(anon.Records) {
		return 0, fmt.Errorf("metrics: datasets not aligned (%d vs %d records)", len(orig.Records), len(anon.Records))
	}
	occurrences := 0
	loss := 0.0
	for r := range orig.Records {
		anonItems := anon.Records[r].Items
		for _, it := range orig.Records[r].Items {
			occurrences++
			covered := ""
			for _, g := range anonItems {
				if g == it || itemH.Covers(g, it) {
					covered = g
					break
				}
			}
			if covered == "" {
				loss++ // suppressed
				continue
			}
			ncp, err := itemH.NCP(covered)
			if err != nil {
				return 0, err
			}
			loss += ncp
		}
	}
	if occurrences == 0 {
		return 0, nil
	}
	return loss / float64(occurrences), nil
}

// ItemGroup describes a generalized item as the set of original items it
// stands for, used by mapping-based algorithms (COAT, PCTA).
type ItemGroup struct {
	Label string
	Items []string
}

// UL computes COAT's utility loss of a generalization mapping over the
// anonymized dataset: for each generalized item g standing for a group I of
// original items, UL(g) = (2^|I| - 1) * w(g) * support(g), summed and
// normalized by (2^|D| - 1) * N so datasets of different sizes compare.
// Suppressed items (mapped to the empty label) are charged their original
// support at full group weight. Weights default to 1; exponents are capped
// to keep the arithmetic finite.
func UL(orig, anon *dataset.Dataset, mapping map[string]string, weights map[string]float64) (float64, error) {
	if len(orig.Records) != len(anon.Records) {
		return 0, fmt.Errorf("metrics: datasets not aligned (%d vs %d records)", len(orig.Records), len(anon.Records))
	}
	n := len(orig.Records)
	if n == 0 {
		return 0, nil
	}
	domain := orig.ItemDomain()
	if len(domain) == 0 {
		return 0, nil
	}
	groups := make(map[string][]string) // label -> original items
	for item, label := range mapping {
		groups[label] = append(groups[label], item)
	}
	weight := func(label string) float64 {
		if weights == nil {
			return 1
		}
		if w, ok := weights[label]; ok {
			return w
		}
		return 1
	}
	pow2 := func(k int) float64 {
		if k > 60 {
			k = 60
		}
		return math.Pow(2, float64(k)) - 1
	}
	// Support of each generalized label in the anonymized data.
	support := make(map[string]int)
	for r := range anon.Records {
		for _, g := range anon.Records[r].Items {
			support[g]++
		}
	}
	// Support of suppressed items in the original data.
	suppressedSupport := 0.0
	loss := 0.0
	for label, items := range groups {
		if label == "" {
			origSupport := make(map[string]int)
			for r := range orig.Records {
				for _, it := range orig.Records[r].Items {
					origSupport[it]++
				}
			}
			for _, it := range items {
				suppressedSupport += pow2(1) * float64(origSupport[it])
			}
			continue
		}
		if len(items) <= 1 {
			continue // identity mapping loses nothing
		}
		loss += pow2(len(items)) * weight(label) * float64(support[label])
	}
	loss += suppressedSupport
	norm := pow2(len(domain)) * float64(n)
	if norm == 0 {
		return 0, nil
	}
	return loss / norm, nil
}

// Discernibility computes the discernibility metric: each record is charged
// the size of its equivalence class; suppressed records are charged the
// dataset size.
func Discernibility(ds *dataset.Dataset, qis []int) float64 {
	return DiscernibilityClasses(len(ds.Records), privacy.Partition(ds, qis))
}

// DiscernibilityClasses is Discernibility over a precomputed partition of
// n records — for callers (the engine evaluator) that derive several
// indicators from one privacy.Partition call.
func DiscernibilityClasses(n int, classes []privacy.Class) float64 {
	if n == 0 {
		return 0
	}
	covered := 0
	sum := 0.0
	for _, c := range classes {
		sum += float64(len(c.Records) * len(c.Records))
		covered += len(c.Records)
	}
	sum += float64((n - covered) * n) // suppressed records
	return sum
}

// CAVG computes the normalized average equivalence class size metric:
// (records / classes) / k. Values near 1 indicate classes close to the
// minimum size k.
func CAVG(ds *dataset.Dataset, qis []int, k int) float64 {
	return CAVGClasses(privacy.Partition(ds, qis), k)
}

// CAVGClasses is CAVG over a precomputed partition.
func CAVGClasses(classes []privacy.Class, k int) float64 {
	if k <= 0 || len(classes) == 0 {
		return 0
	}
	covered := 0
	for _, c := range classes {
		covered += len(c.Records)
	}
	return float64(covered) / float64(len(classes)) / float64(k)
}

// SuppressionRatio returns the fraction of records suppressed in anon.
func SuppressionRatio(anon *dataset.Dataset, qis []int) float64 {
	if len(anon.Records) == 0 {
		return 0
	}
	n := 0
	for r := range anon.Records {
		if generalize.IsSuppressed(anon, qis, r) {
			n++
		}
	}
	return float64(n) / float64(len(anon.Records))
}

// ValueError is one bar of the frequency-error plots (Evaluation mode,
// plots (c) and (d) of Figure 3): a value, its original frequency, the
// frequency estimated from the anonymized data, and the relative error.
type ValueError struct {
	Value    string
	Original float64
	Estimate float64
	RelError float64
}

// ItemFrequencyError compares original item frequencies against the
// frequencies reconstructed from the anonymized data, spreading each
// generalized item's support uniformly over the leaves it covers (items not
// in the hierarchy count only for themselves). Results are sorted by value.
func ItemFrequencyError(orig, anon *dataset.Dataset, itemH *hierarchy.Hierarchy) []ValueError {
	origCount := make(map[string]float64)
	for r := range orig.Records {
		for _, it := range orig.Records[r].Items {
			origCount[it]++
		}
	}
	est := make(map[string]float64)
	for r := range anon.Records {
		for _, g := range anon.Records[r].Items {
			n := itemH.Node(g)
			if n == nil || n.IsLeaf() {
				est[g]++
				continue
			}
			leaves := n.Leaves()
			share := 1.0 / float64(len(leaves))
			for _, leaf := range leaves {
				est[leaf] += share
			}
		}
	}
	return valueErrors(origCount, est)
}

// AttributeFrequencyError compares original value frequencies of relational
// attribute qi against frequencies reconstructed from the anonymized data,
// spreading generalized values uniformly over covered leaves.
func AttributeFrequencyError(orig, anon *dataset.Dataset, h *hierarchy.Hierarchy, qi int) []ValueError {
	origCount := make(map[string]float64)
	for r := range orig.Records {
		origCount[orig.Records[r].Values[qi]]++
	}
	est := make(map[string]float64)
	for r := range anon.Records {
		v := anon.Records[r].Values[qi]
		if v == generalize.Suppressed {
			continue
		}
		n := h.Node(v)
		if n == nil || n.IsLeaf() {
			est[v]++
			continue
		}
		leaves := n.Leaves()
		share := 1.0 / float64(len(leaves))
		for _, leaf := range leaves {
			est[leaf] += share
		}
	}
	return valueErrors(origCount, est)
}

func valueErrors(orig, est map[string]float64) []ValueError {
	vals := make([]string, 0, len(orig))
	for v := range orig {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	out := make([]ValueError, 0, len(vals))
	for _, v := range vals {
		o, e := orig[v], est[v]
		denom := o
		if denom < 1 {
			denom = 1
		}
		out = append(out, ValueError{
			Value:    v,
			Original: o,
			Estimate: e,
			RelError: math.Abs(e-o) / denom,
		})
	}
	return out
}

// GeneralizedFrequencies returns the frequency histogram of a relational
// attribute in the anonymized dataset — plot (c) of the Evaluation mode.
func GeneralizedFrequencies(anon *dataset.Dataset, qi int) []dataset.Frequency {
	return anon.Histogram(qi)
}
