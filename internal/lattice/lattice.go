// Package lattice implements the generalization lattice of full-domain
// recoding schemes: the product of per-attribute hierarchy levels, ordered
// componentwise. Incognito walks this lattice bottom-up, exploiting the
// roll-up property (generalizations of a k-anonymous node are k-anonymous)
// to prune checks.
package lattice

import (
	"context"
	"fmt"
	"sort"
)

// Lattice is the level-vector lattice for a set of attributes with the
// given hierarchy heights. Node i ranges over 0..heights[i].
type Lattice struct {
	heights []int
}

// New creates a lattice; every height must be non-negative.
func New(heights []int) (*Lattice, error) {
	if len(heights) == 0 {
		return nil, fmt.Errorf("lattice: no attributes")
	}
	for i, h := range heights {
		if h < 0 {
			return nil, fmt.Errorf("lattice: negative height %d at attribute %d", h, i)
		}
	}
	return &Lattice{heights: append([]int(nil), heights...)}, nil
}

// Dims returns the number of attributes.
func (l *Lattice) Dims() int { return len(l.heights) }

// Heights returns a copy of the per-attribute maximum levels.
func (l *Lattice) Heights() []int { return append([]int(nil), l.heights...) }

// Bottom returns the all-zero node (no generalization).
func (l *Lattice) Bottom() []int { return make([]int, len(l.heights)) }

// Top returns the fully generalized node.
func (l *Lattice) Top() []int { return append([]int(nil), l.heights...) }

// Size returns the total number of lattice nodes.
func (l *Lattice) Size() int {
	n := 1
	for _, h := range l.heights {
		n *= h + 1
	}
	return n
}

// Contains reports whether node is inside the lattice bounds.
func (l *Lattice) Contains(node []int) bool {
	if len(node) != len(l.heights) {
		return false
	}
	for i, v := range node {
		if v < 0 || v > l.heights[i] {
			return false
		}
	}
	return true
}

// Level returns the node's height (component sum), the BFS stratum
// Incognito processes together.
func (l *Lattice) Level(node []int) int {
	s := 0
	for _, v := range node {
		s += v
	}
	return s
}

// MaxLevel returns the top node's height.
func (l *Lattice) MaxLevel() int {
	s := 0
	for _, h := range l.heights {
		s += h
	}
	return s
}

// Successors returns the nodes reachable by generalizing exactly one
// attribute one level.
func (l *Lattice) Successors(node []int) [][]int {
	var out [][]int
	for i := range node {
		if node[i] < l.heights[i] {
			succ := append([]int(nil), node...)
			succ[i]++
			out = append(out, succ)
		}
	}
	return out
}

// Predecessors returns the nodes reachable by specializing exactly one
// attribute one level.
func (l *Lattice) Predecessors(node []int) [][]int {
	var out [][]int
	for i := range node {
		if node[i] > 0 {
			pred := append([]int(nil), node...)
			pred[i]--
			out = append(out, pred)
		}
	}
	return out
}

// Dominates reports whether a >= b componentwise (a is a generalization of
// b).
func Dominates(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] < b[i] {
			return false
		}
	}
	return true
}

// Key encodes a node as a map key.
func Key(node []int) string {
	b := make([]byte, 0, len(node)*3)
	for i, v := range node {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendInt(b, v)
	}
	return string(b)
}

func appendInt(b []byte, v int) []byte {
	if v == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for v > 0 {
		i--
		tmp[i] = byte('0' + v%10)
		v /= 10
	}
	return append(b, tmp[i:]...)
}

// NodesAtLevel enumerates all nodes whose component sum equals level, in
// lexicographic order. Incognito's BFS visits strata in increasing level.
func (l *Lattice) NodesAtLevel(level int) [][]int {
	var out [][]int
	node := make([]int, len(l.heights))
	var rec func(i, remaining int)
	rec = func(i, remaining int) {
		if i == len(node)-1 {
			if remaining <= l.heights[i] {
				node[i] = remaining
				out = append(out, append([]int(nil), node...))
			}
			return
		}
		max := remaining
		if max > l.heights[i] {
			max = l.heights[i]
		}
		for v := 0; v <= max; v++ {
			node[i] = v
			rec(i+1, remaining-v)
		}
	}
	if level >= 0 && level <= l.MaxLevel() {
		rec(0, level)
	}
	return out
}

// Walk visits every lattice node in BFS (level) order, stopping early when
// fn returns false.
func (l *Lattice) Walk(fn func(node []int) bool) {
	l.WalkCtx(nil, fn) //nolint:errcheck // nil ctx cannot produce an error
}

// WalkCtx is Walk with cooperative cancellation: ctx is polled before each
// node visit, and a cancelled context stops the expansion immediately,
// returning its error. A nil ctx never cancels, making WalkCtx(nil, fn)
// equivalent to Walk(fn).
func (l *Lattice) WalkCtx(ctx context.Context, fn func(node []int) bool) error {
	for lvl := 0; lvl <= l.MaxLevel(); lvl++ {
		for _, n := range l.NodesAtLevel(lvl) {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			if !fn(n) {
				return nil
			}
		}
	}
	return nil
}

// MinimalNodes filters a set of nodes down to its minimal elements under
// the dominance order (no kept node dominates another kept node). The
// result is sorted by level then lexicographically, for determinism.
func MinimalNodes(nodes [][]int) [][]int {
	var out [][]int
	for i, a := range nodes {
		minimal := true
		for j, b := range nodes {
			if i == j {
				continue
			}
			if Dominates(a, b) && !Dominates(b, a) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := 0, 0
		for _, v := range out[i] {
			si += v
		}
		for _, v := range out[j] {
			sj += v
		}
		if si != sj {
			return si < sj
		}
		return Key(out[i]) < Key(out[j])
	})
	// Deduplicate equal nodes.
	dedup := out[:0]
	for i, n := range out {
		if i > 0 && Key(out[i-1]) == Key(n) {
			continue
		}
		dedup = append(dedup, n)
	}
	return dedup
}
