package lattice

import (
	"reflect"
	"testing"
	"testing/quick"
)

func mustNew(t *testing.T, heights []int) *Lattice {
	t.Helper()
	l, err := New(heights)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewErrors(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("empty heights accepted")
	}
	if _, err := New([]int{1, -1}); err == nil {
		t.Error("negative height accepted")
	}
}

func TestBasics(t *testing.T) {
	l := mustNew(t, []int{2, 1, 3})
	if l.Dims() != 3 {
		t.Errorf("Dims = %d", l.Dims())
	}
	if got := l.Bottom(); !reflect.DeepEqual(got, []int{0, 0, 0}) {
		t.Errorf("Bottom = %v", got)
	}
	if got := l.Top(); !reflect.DeepEqual(got, []int{2, 1, 3}) {
		t.Errorf("Top = %v", got)
	}
	if l.Size() != 3*2*4 {
		t.Errorf("Size = %d", l.Size())
	}
	if l.MaxLevel() != 6 {
		t.Errorf("MaxLevel = %d", l.MaxLevel())
	}
	if !l.Contains([]int{2, 0, 3}) || l.Contains([]int{3, 0, 0}) || l.Contains([]int{0, 0}) {
		t.Error("Contains wrong")
	}
	if l.Level([]int{1, 1, 2}) != 4 {
		t.Error("Level wrong")
	}
}

func TestSuccessorsPredecessors(t *testing.T) {
	l := mustNew(t, []int{1, 1})
	succ := l.Successors([]int{0, 0})
	if len(succ) != 2 {
		t.Fatalf("successors of bottom = %v", succ)
	}
	if len(l.Successors([]int{1, 1})) != 0 {
		t.Error("top has successors")
	}
	pred := l.Predecessors([]int{1, 1})
	if len(pred) != 2 {
		t.Fatalf("predecessors of top = %v", pred)
	}
	if len(l.Predecessors([]int{0, 0})) != 0 {
		t.Error("bottom has predecessors")
	}
}

func TestDominates(t *testing.T) {
	if !Dominates([]int{2, 1}, []int{1, 1}) || !Dominates([]int{1, 1}, []int{1, 1}) {
		t.Error("Dominates misses")
	}
	if Dominates([]int{0, 2}, []int{1, 1}) || Dominates([]int{1}, []int{1, 1}) {
		t.Error("Dominates accepts wrongly")
	}
}

func TestKey(t *testing.T) {
	if Key([]int{0, 10, 3}) != "0,10,3" {
		t.Errorf("Key = %q", Key([]int{0, 10, 3}))
	}
}

func TestNodesAtLevelCoversLattice(t *testing.T) {
	l := mustNew(t, []int{2, 1, 3})
	total := 0
	seen := make(map[string]bool)
	for lvl := 0; lvl <= l.MaxLevel(); lvl++ {
		for _, n := range l.NodesAtLevel(lvl) {
			if l.Level(n) != lvl {
				t.Fatalf("node %v at wrong level", n)
			}
			k := Key(n)
			if seen[k] {
				t.Fatalf("duplicate node %v", n)
			}
			seen[k] = true
			total++
		}
	}
	if total != l.Size() {
		t.Errorf("enumerated %d nodes, want %d", total, l.Size())
	}
	if len(l.NodesAtLevel(-1)) != 0 || len(l.NodesAtLevel(99)) != 0 {
		t.Error("out-of-range levels yield nodes")
	}
}

func TestWalkOrderAndEarlyStop(t *testing.T) {
	l := mustNew(t, []int{1, 1})
	var order []string
	l.Walk(func(n []int) bool {
		order = append(order, Key(n))
		return true
	})
	want := []string{"0,0", "0,1", "1,0", "1,1"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("walk order = %v", order)
	}
	count := 0
	l.Walk(func(n []int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestMinimalNodes(t *testing.T) {
	nodes := [][]int{{2, 2}, {1, 0}, {0, 1}, {1, 1}, {0, 1}}
	min := MinimalNodes(nodes)
	want := [][]int{{0, 1}, {1, 0}}
	if !reflect.DeepEqual(min, want) {
		t.Errorf("MinimalNodes = %v, want %v", min, want)
	}
}

// Property: successors and predecessors are dual, and successors increase
// level by exactly one.
func TestSuccPredDualityProperty(t *testing.T) {
	l := mustNew(t, []int{2, 3, 1})
	f := func(a, b, c uint8) bool {
		n := []int{int(a) % 3, int(b) % 4, int(c) % 2}
		for _, s := range l.Successors(n) {
			if l.Level(s) != l.Level(n)+1 {
				return false
			}
			found := false
			for _, p := range l.Predecessors(s) {
				if Key(p) == Key(n) {
					found = true
				}
			}
			if !found {
				return false
			}
			if !Dominates(s, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
