package export

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"secreta/internal/dataset"
)

func streamFixture(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Sex", Kind: dataset.Categorical},
	}, "Items")
	rows := []dataset.Record{
		{Values: []string{"25", "M"}, Items: []string{"b", "a"}},
		{Values: []string{"30", "F"}},
		{Values: []string{"25", "F"}, Items: []string{"c"}},
	}
	for _, r := range rows {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestRecordsNDJSONMatchesBufferedJSON pins the byte-identity contract:
// every streamed record line is exactly the compact form of the same
// record in Dataset.WriteJSON's buffered output, and the Indexed source
// produces the same stream as the Dataset source.
func TestRecordsNDJSONMatchesBufferedJSON(t *testing.T) {
	ds := streamFixture(t)

	var fromDS, fromIX bytes.Buffer
	if err := RecordsNDJSON(&fromDS, ds); err != nil {
		t.Fatal(err)
	}
	if err := RecordsNDJSON(&fromIX, dataset.Intern(ds)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fromDS.Bytes(), fromIX.Bytes()) {
		t.Fatalf("Indexed stream diverges from Dataset stream:\n%s\nvs\n%s", &fromIX, &fromDS)
	}

	lines := strings.Split(strings.TrimRight(fromDS.String(), "\n"), "\n")
	if len(lines) != 1+len(ds.Records) {
		t.Fatalf("stream has %d lines, want %d", len(lines), 1+len(ds.Records))
	}
	var hdr StreamHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("decoding header: %v", err)
	}
	if hdr.Records != len(ds.Records) || hdr.Transaction != "Items" || len(hdr.Attributes) != 2 {
		t.Fatalf("bad header: %+v", hdr)
	}

	// The buffered path: WriteJSON, then compact each element of its
	// records array and compare byte-for-byte with the streamed lines.
	var buffered bytes.Buffer
	if err := ds.WriteJSON(&buffered); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Records []json.RawMessage `json:"records"`
	}
	if err := json.Unmarshal(buffered.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for i, raw := range doc.Records {
		var compact bytes.Buffer
		if err := json.Compact(&compact, raw); err != nil {
			t.Fatal(err)
		}
		if got := lines[1+i]; got != compact.String() {
			t.Fatalf("record %d: streamed %q, buffered-compact %q", i, got, compact.String())
		}
	}

	// Round-trip: rebuilding a dataset from the stream restores equality.
	rebuilt := dataset.New(ds.Attrs, ds.TransName)
	sc := bufio.NewScanner(bytes.NewReader(fromDS.Bytes()))
	sc.Scan() // header
	for sc.Scan() {
		var rec struct {
			Values []string `json:"values"`
			Items  []string `json:"items"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.AddRecord(dataset.Record{Values: rec.Values, Items: rec.Items}); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(rebuilt.Records, ds.Records) {
		t.Fatalf("stream round-trip diverges:\n%v\nvs\n%v", rebuilt.Records, ds.Records)
	}
}

// TestRecordsCSVMatchesWriteCSV pins the streaming CSV writer against the
// buffered Dataset.WriteCSV byte-for-byte, from both source shapes.
func TestRecordsCSVMatchesWriteCSV(t *testing.T) {
	ds := streamFixture(t)
	var want bytes.Buffer
	if err := ds.WriteCSV(&want, dataset.Options{}); err != nil {
		t.Fatal(err)
	}
	for name, src := range map[string]dataset.RecordSource{"dataset": ds, "indexed": dataset.Intern(ds)} {
		var got bytes.Buffer
		if err := RecordsCSV(&got, src, dataset.Options{}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s CSV stream diverges:\n%s\nvs\n%s", name, &got, &want)
		}
	}
}
