package export

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"secreta/internal/dataset"
)

// Streaming record serialization: NDJSON and CSV writers that consume a
// dataset.RecordSource one record at a time, so emitting an N-record
// anonymized dataset costs O(1) memory regardless of N. secreta-serve's
// chunked result delivery and `secreta evaluate -stream` are built on
// these; the record line format is shared with the framed result blobs in
// internal/store, so a stream served from RAM and one served from disk are
// byte-identical.

// StreamHeader is the first NDJSON line of a record stream: the schema a
// consumer needs to interpret the record lines that follow.
type StreamHeader struct {
	Attributes  []StreamAttr `json:"attributes"`
	Transaction string       `json:"transaction,omitempty"`
	Records     int          `json:"records"`
}

// StreamAttr mirrors the dataset JSON attribute shape.
type StreamAttr struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

// HeaderFor builds the stream header of a record source.
func HeaderFor(src dataset.RecordSource) StreamHeader {
	attrs, trans := src.SourceSchema()
	h := StreamHeader{
		Attributes:  make([]StreamAttr, len(attrs)),
		Transaction: trans,
		Records:     src.NumRecords(),
	}
	for i, a := range attrs {
		h.Attributes[i] = StreamAttr{Name: a.Name, Kind: a.Kind.String()}
	}
	return h
}

// recordJSON is the compact per-line record shape — field names and order
// identical to the dataset package's JSON record format, so a streamed
// record is byte-for-byte the compact form of a buffered one.
type recordJSON struct {
	Values []string `json:"values"`
	Items  []string `json:"items,omitempty"`
}

// AppendRecordJSON appends the compact JSON encoding of rec (no trailing
// newline) to dst and returns the extended slice. It is the single
// definition of the record line format: the NDJSON writer, the server's
// streamed responses and the store's chunked result frames all encode
// through it.
func AppendRecordJSON(dst []byte, rec dataset.Record) ([]byte, error) {
	b, err := json.Marshal(recordJSON{Values: rec.Values, Items: rec.Items})
	if err != nil {
		return dst, err
	}
	return append(dst, b...), nil
}

// RecordsNDJSON writes src as NDJSON: one schema header line (StreamHeader)
// followed by one compact record object per line. Records are encoded and
// written incrementally — peak memory is one record plus the writer's
// buffer, never the whole dataset.
func RecordsNDJSON(w io.Writer, src dataset.RecordSource) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	hdr, err := json.Marshal(HeaderFor(src))
	if err != nil {
		return fmt.Errorf("export: encoding stream header: %w", err)
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	var line []byte
	var scanErr error
	src.ScanRecords(func(i int, rec dataset.Record) bool {
		line, scanErr = AppendRecordJSON(line[:0], rec)
		if scanErr != nil {
			scanErr = fmt.Errorf("export: encoding record %d: %w", i, scanErr)
			return false
		}
		bw.Write(line)
		if scanErr = bw.WriteByte('\n'); scanErr != nil {
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	return bw.Flush()
}

// RecordsCSV writes src in the dataset package's CSV dialect (kind-
// annotated header, transaction items joined by opts.ItemSep), one record
// at a time. The output of a *Dataset source is byte-identical to
// Dataset.WriteCSV.
func RecordsCSV(w io.Writer, src dataset.RecordSource, opts dataset.Options) error {
	itemSep := opts.ItemSep
	if itemSep == "" {
		itemSep = " "
	}
	cw := csv.NewWriter(w)
	if opts.Comma != 0 {
		cw.Comma = opts.Comma
	}
	attrs, trans := src.SourceSchema()
	header := make([]string, 0, len(attrs)+1)
	for _, a := range attrs {
		header = append(header, a.Name+":"+a.Kind.String())
	}
	if trans != "" {
		header = append(header, trans+":transaction")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: writing CSV header: %w", err)
	}
	row := make([]string, 0, len(header))
	var scanErr error
	src.ScanRecords(func(i int, rec dataset.Record) bool {
		row = row[:0]
		row = append(row, rec.Values...)
		if trans != "" {
			row = append(row, strings.Join(rec.Items, itemSep))
		}
		if err := cw.Write(row); err != nil {
			scanErr = fmt.Errorf("export: writing CSV row %d: %w", i, err)
			return false
		}
		return true
	})
	if scanErr != nil {
		return scanErr
	}
	cw.Flush()
	return cw.Error()
}
