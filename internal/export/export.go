// Package export is SECRETA's Data Export Module: it serializes datasets,
// hierarchies, policies, workloads (all CSV/text, handled by their own
// packages), experiment series (CSV), run results (JSON) and charts (SVG)
// to disk, plus streaming record writers (NDJSON and CSV over a
// dataset.RecordSource) that emit one record at a time, so exporting an
// N-record anonymized dataset costs O(1) memory.
//
// Invariant: AppendRecordJSON is the single definition of the compact
// record-line format — the streamed record lines, secreta-serve's chunked
// result frames, and the compacted records of the buffered JSON payload
// are all byte-identical.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/plot"
	"secreta/internal/timing"
)

// SeriesCSV writes one or more experiment series as CSV: one row per sweep
// point per series, with every utility indicator as a column.
func SeriesCSV(w io.Writer, series []*experiment.Series) error {
	cw := csv.NewWriter(w)
	header := []string{
		"series", "param", "x", "runtime_s", "error",
		"gcp", "trans_gcp", "are", "discernibility", "cavg",
		"suppression", "min_class", "classes", "k_anonymous", "km_anonymous",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("export: writing series header: %w", err)
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }
	for _, s := range series {
		for _, p := range s.Points {
			errStr := ""
			if p.Err != nil {
				errStr = p.Err.Error()
			}
			ind := p.Indicators
			row := []string{
				s.Label, s.Param, f(p.X), f(p.Runtime.Seconds()), errStr,
				f(ind.GCP), f(ind.TransactionGCP), f(ind.ARE),
				f(ind.Discernibility), f(ind.CAVG), f(ind.SuppressionRatio),
				strconv.Itoa(ind.MinClassSize), strconv.Itoa(ind.Classes),
				strconv.FormatBool(ind.KAnonymous), strconv.FormatBool(ind.KMAnonymous),
			}
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("export: writing series row: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// resultJSON is the serializable view of an engine.Result.
type resultJSON struct {
	Label      string            `json:"label"`
	Mode       string            `json:"mode"`
	RuntimeSec float64           `json:"runtime_s"`
	Phases     []phaseJSON       `json:"phases"`
	Indicators engine.Indicators `json:"indicators"`
	Error      string            `json:"error,omitempty"`
}

type phaseJSON struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

func toJSON(r *engine.Result) resultJSON {
	out := resultJSON{
		Label:      r.Config.DisplayLabel(),
		Mode:       r.Config.Mode.String(),
		RuntimeSec: r.Runtime.Seconds(),
		Indicators: r.Indicators,
	}
	for _, p := range r.Phases {
		out.Phases = append(out.Phases, phaseJSON{
			Name:       p.Name,
			DurationMS: float64(p.Duration) / float64(time.Millisecond),
		})
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
	}
	return out
}

// ResultsJSON writes run results as an indented JSON array.
func ResultsJSON(w io.Writer, results []*engine.Result) error {
	arr := make([]resultJSON, len(results))
	for i, r := range results {
		arr[i] = toJSON(r)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// seriesJSON is the serializable view of an experiment.Series.
type seriesJSON struct {
	Label  string      `json:"label"`
	Param  string      `json:"param"`
	Points []pointJSON `json:"points"`
}

type pointJSON struct {
	X          float64           `json:"x"`
	RuntimeSec float64           `json:"runtime_s"`
	Indicators engine.Indicators `json:"indicators"`
	Error      string            `json:"error,omitempty"`
}

// SeriesJSON writes experiment series as an indented JSON array — the
// secreta-serve payload for evaluate sweeps and comparisons.
func SeriesJSON(w io.Writer, series []*experiment.Series) error {
	arr := make([]seriesJSON, len(series))
	for i, s := range series {
		out := seriesJSON{Label: s.Label, Param: s.Param, Points: make([]pointJSON, len(s.Points))}
		for j, p := range s.Points {
			pj := pointJSON{X: p.X, RuntimeSec: p.Runtime.Seconds(), Indicators: p.Indicators}
			if p.Err != nil {
				pj.Error = p.Err.Error()
			}
			out.Points[j] = pj
		}
		arr[i] = out
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(arr)
}

// ChartSVG writes a chart as an SVG file.
func ChartSVG(path string, c *plot.Chart, width, height int) error {
	return writeFile(path, c.SVG(width, height))
}

// PhasesCSV writes a phase breakdown as CSV.
func PhasesCSV(w io.Writer, phases []timing.Phase) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"phase", "duration_ms"}); err != nil {
		return err
	}
	for _, p := range phases {
		ms := strconv.FormatFloat(float64(p.Duration)/float64(time.Millisecond), 'g', 6, 64)
		if err := cw.Write([]string{p.Name, ms}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSVFile writes series to a CSV file path.
func SeriesCSVFile(path string, series []*experiment.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SeriesCSV(f, series); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ResultsJSONFile writes results to a JSON file path.
func ResultsJSONFile(path string, results []*engine.Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := ResultsJSON(f, results); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeFile(path, content string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := io.WriteString(f, content); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
