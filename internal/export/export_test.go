package export

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"secreta/internal/engine"
	"secreta/internal/experiment"
	"secreta/internal/plot"
	"secreta/internal/timing"
)

func sampleSeries() []*experiment.Series {
	return []*experiment.Series{
		{
			Label: "cluster k", Param: "k",
			Points: []experiment.Point{
				{X: 2, Runtime: 10 * time.Millisecond, Indicators: engine.Indicators{GCP: 0.1, KAnonymous: true}},
				{X: 4, Runtime: 20 * time.Millisecond, Err: errors.New("boom")},
			},
		},
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := SeriesCSV(&buf, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "series" || rows[0][5] != "gcp" {
		t.Errorf("header = %v", rows[0])
	}
	if rows[1][0] != "cluster k" || rows[1][2] != "2" {
		t.Errorf("row 1 = %v", rows[1])
	}
	if rows[2][4] != "boom" {
		t.Errorf("error column = %q", rows[2][4])
	}
}

func TestResultsJSON(t *testing.T) {
	results := []*engine.Result{
		{
			Config:  engine.Config{Label: "r1", Mode: engine.Relational},
			Runtime: 50 * time.Millisecond,
			Phases:  []timing.Phase{{Name: "setup", Duration: time.Millisecond}},
			Indicators: engine.Indicators{
				GCP: 0.25, KAnonymous: true,
			},
		},
		{
			Config: engine.Config{Label: "r2"},
			Err:    errors.New("failed"),
		},
	}
	var buf bytes.Buffer
	if err := ResultsJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	var back []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("decoded %d results", len(back))
	}
	if back[0]["label"] != "r1" {
		t.Errorf("label = %v", back[0]["label"])
	}
	if back[1]["error"] != "failed" {
		t.Errorf("error = %v", back[1]["error"])
	}
	phases, ok := back[0]["phases"].([]any)
	if !ok || len(phases) != 1 {
		t.Errorf("phases = %v", back[0]["phases"])
	}
}

func TestPhasesCSV(t *testing.T) {
	var buf bytes.Buffer
	err := PhasesCSV(&buf, []timing.Phase{
		{Name: "relational", Duration: 3 * time.Millisecond},
		{Name: "merge", Duration: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "relational,3") || !strings.Contains(out, "merge,1") {
		t.Errorf("output = %q", out)
	}
}

func TestFileWriters(t *testing.T) {
	dir := t.TempDir()

	seriesPath := filepath.Join(dir, "series.csv")
	if err := SeriesCSVFile(seriesPath, sampleSeries()); err != nil {
		t.Fatal(err)
	}
	if b, err := os.ReadFile(seriesPath); err != nil || len(b) == 0 {
		t.Errorf("series file: %v", err)
	}

	jsonPath := filepath.Join(dir, "results.json")
	if err := ResultsJSONFile(jsonPath, nil); err != nil {
		t.Fatal(err)
	}

	svgPath := filepath.Join(dir, "chart.svg")
	chart := plot.NewLine("t", "x", "y", plot.Series{Label: "s", Xs: []float64{0, 1}, Ys: []float64{0, 1}})
	if err := ChartSVG(svgPath, chart, 300, 200); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(svgPath)
	if err != nil || !strings.Contains(string(b), "<svg") {
		t.Errorf("svg file: %v", err)
	}

	// Unwritable path errors.
	if err := SeriesCSVFile(filepath.Join(dir, "nope", "x.csv"), nil); err == nil {
		t.Error("unwritable path accepted")
	}
}
