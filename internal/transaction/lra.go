package transaction

import (
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// LRA implements Local Recoding Anonymization (Terrovitis et al., VLDB J.
// 2011): transactions are partitioned horizontally into groups of similar
// baskets (here: sorted by basket content and chunked), and Apriori runs
// independently inside each partition with its own hierarchy cut. Each
// partition's output is k^m-anonymous, and because an itemset's global
// support is the sum of per-partition supports that are each zero or >= k,
// the union is k^m-anonymous too, while rare items in one partition no
// longer force generalization everywhere.
func LRA(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validateHierarchy(ds); err != nil {
		return nil, err
	}
	parts := opts.Partitions
	if parts <= 0 {
		parts = 4
	}
	// Each partition must hold at least k transactions or its own Apriori
	// run cannot succeed.
	n := len(ds.Records)
	if parts > n/max(opts.K, 1) {
		parts = n / max(opts.K, 1)
	}
	if parts < 1 {
		parts = 1
	}
	// Sort record indices by basket content so similar baskets co-locate.
	// The join keys are precomputed once — building them inside the
	// comparator would re-join O(n log n) times.
	idx := make([]int, n)
	keys := make([]string, n)
	for i := range idx {
		idx[i] = i
		keys[i] = strings.Join(ds.Records[i].Items, "\x00")
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	sw.Mark("partition")

	anon := ds.Clone()
	gens := 0
	for p := 0; p < parts; p++ {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		lo := p * n / parts
		hi := (p + 1) * n / parts
		if lo >= hi {
			continue
		}
		partIdx := idx[lo:hi]
		cut := hierarchy.NewLeafCut(opts.ItemHierarchy)
		g, err := aprioriOnCut(opts.Ctx, ds, partIdx, cut, opts.ItemHierarchy, opts.K, opts.M, nil)
		if err != nil {
			return nil, err
		}
		gens += g
		for _, r := range partIdx {
			mapped, err := generalize.MapItems(ds.Records[r].Items, cut)
			if err != nil {
				return nil, err
			}
			anon.Records[r].Items = mapped
		}
	}
	sw.Mark("anonymize parts")
	return &Result{Anonymized: anon, Phases: sw.Phases(), Generalizations: gens}, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
