package transaction

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/policy"
)

// randomBaskets builds an adversarial transaction-only dataset: uniform
// random baskets, so every size-2 itemset is rare and Apriori needs many
// repair rounds. Unlike the Zipf-skewed Census generator, this keeps the
// algorithm busy for seconds — long enough to cancel mid-run.
func randomBaskets(t testing.TB, records, domain, basket int, seed int64) *dataset.Dataset {
	t.Helper()
	ds := dataset.New(nil, "items")
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < records; r++ {
		seen := make(map[int]bool, basket)
		var items []string
		for len(items) < basket {
			it := rng.Intn(domain)
			if !seen[it] {
				seen[it] = true
				items = append(items, fmt.Sprintf("i%04d", it))
			}
		}
		if err := ds.AddRecord(dataset.Record{Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestAprioriCancellationPromptness pins the service's cancellation
// budget: cancelling a multi-second Apriori run mid-algorithm must return
// within 250ms (the checks sit in the repair loop and inside the k^m
// support scans). The fixture is sized for the incremental interned loop:
// a wide uniform domain at m=3 keeps even the incremental scan busy for
// seconds (the seed's from-scratch loop took ~8s on a far smaller set).
func TestAprioriCancellationPromptness(t *testing.T) {
	ds := randomBaskets(t, 3000, 200, 14, 11)
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	type outcome struct {
		err error
		at  time.Time
	}
	done := make(chan outcome, 1)
	go func() {
		_, err := Apriori(ds, Options{Ctx: ctx, K: 30, M: 3, ItemHierarchy: ih})
		done <- outcome{err: err, at: time.Now()}
	}()
	// Let the run get well into its repair rounds, then pull the plug.
	time.Sleep(150 * time.Millisecond)
	cancel()
	cancelledAt := time.Now()
	select {
	case o := <-done:
		if !errors.Is(o.err, context.Canceled) {
			t.Fatalf("Apriori returned %v, want context.Canceled (did the run finish before the cancel?)", o.err)
		}
		if d := o.at.Sub(cancelledAt); d > 250*time.Millisecond {
			t.Errorf("cancellation took %v, want <= 250ms", d)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Apriori did not return within 10s of cancellation")
	}
}

// TestCancelledContextAbortsEveryAlgorithm runs each transaction algorithm
// with an already-cancelled context on data that needs work, and expects
// the context error back instead of a completed result.
func TestCancelledContextAbortsEveryAlgorithm(t *testing.T) {
	ds, ih := transData(t, 300, 40, 9)
	pol := &policy.Policy{
		Privacy: policy.PrivacyFrequent(ds, 1, 2),
		Utility: policy.UtilityTop(ds),
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	runs := map[string]func() error{
		"apriori": func() error {
			_, err := Apriori(ds, Options{Ctx: ctx, K: 10, M: 2, ItemHierarchy: ih})
			return err
		},
		"lra": func() error {
			_, err := LRA(ds, Options{Ctx: ctx, K: 10, M: 2, ItemHierarchy: ih})
			return err
		},
		"vpa": func() error {
			_, err := VPA(ds, Options{Ctx: ctx, K: 10, M: 2, ItemHierarchy: ih})
			return err
		},
		"coat": func() error {
			_, err := COAT(ds, Options{Ctx: ctx, K: 10, Policy: pol})
			return err
		},
		"pcta": func() error {
			_, err := PCTA(ds, Options{Ctx: ctx, K: 10, Policy: pol})
			return err
		},
		"rho": func() error {
			_, err := RhoUncertainty(ds, Options{Ctx: ctx, Rho: 0.05, M: 1, Sensitive: []string{gen.ItemName(0)}})
			return err
		},
	}
	for name, run := range runs {
		if err := run(); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context returned %v, want context.Canceled", name, err)
		}
	}
}
