package transaction

import (
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/policy"
	"secreta/internal/timing"
)

// COAT implements COnstraint-based Anonymization of Transactions (Loukides
// et al., KAIS 2011). Each privacy constraint — an itemset an attacker may
// know — must end up with support >= k or become unqueryable. COAT
// processes violated constraints greedily: it picks the constraint item
// whose current group has the lowest support and merges its group with the
// cheapest partner group, where partners are restricted to the item's
// utility constraint (the maximal set of items the publisher allows to be
// indistinguishable). When a group has swallowed its whole utility
// constraint and the privacy constraint is still violated, the group is
// suppressed — utility constraints are never traded away for privacy.
func COAT(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validatePolicy(ds, true); err != nil {
		return nil, err
	}
	domain := ds.ItemDomain()
	groups := newGroupTable(domain)
	recRanks := recordRanks(ds, groups)
	uidx := opts.Policy.UtilityIndex()
	sw.Mark("setup")

	gens := 0
	for ci := range opts.Policy.Privacy {
		c := opts.Policy.Privacy[ci]
		for {
			// Each protection step rebuilds the published sets (O(dataset));
			// polling here bounds cancellation delay to one step.
			if err := opts.interrupted(); err != nil {
				return nil, err
			}
			published := publishedGroups(recRanks, groups)
			sup, protected := constraintSupport(published, groups, c)
			if protected || sup == 0 || sup >= opts.K {
				break
			}
			// Pick the constraint item whose group's published image has
			// the lowest support: the cheapest lever to raise the
			// constraint's support.
			victim := ""
			victimSup := -1
			for _, it := range c.Items {
				gi, ok := groups.gid(it)
				if !ok || groups.dead[gi] {
					continue
				}
				s := gidSupport(published, gi)
				if victim == "" || s < victimSup {
					victim, victimSup = it, s
				}
			}
			if victim == "" {
				break // everything suppressed already
			}
			// Candidate partners: items of the victim's utility
			// constraint not yet in the victim's group.
			ui, constrained := uidx[victim]
			if !constrained {
				// No utility constraint covers this item: COAT may only
				// suppress it.
				groups.suppress(victim)
				continue
			}
			partner := ""
			bestCost := 0.0
			vgid, _ := groups.gid(victim)
			vsize := groups.size(victim)
			for _, cand := range opts.Policy.Utility[ui].Items {
				cgid, ok := groups.gid(cand)
				if !ok || cgid == vgid || groups.dead[cgid] {
					continue
				}
				// UL-style cost: exponential in the merged group size,
				// weighted by the partner group's support (merging a
				// popular group dilutes more occurrences).
				msize := vsize + groups.size(cand)
				cost := pow2f(msize) * float64(gidSupport(published, cgid))
				if partner == "" || cost < bestCost {
					partner, bestCost = cand, cost
				}
			}
			if partner == "" {
				// Utility constraint exhausted: suppress.
				groups.suppress(victim)
				continue
			}
			groups.merge(victim, partner)
			gens++
		}
	}
	sw.Mark("protect")

	mapping := groups.mapping()
	anon := generalize.ApplyItemMapping(ds, mapping)
	sw.Mark("recode")
	return &Result{
		Anonymized:      anon,
		Phases:          sw.Phases(),
		Mapping:         mapping,
		Suppressed:      groups.suppressed(),
		Generalizations: gens,
	}, nil
}

func pow2f(k int) float64 {
	if k > 60 {
		k = 60
	}
	return float64(uint64(1)<<uint(k) - 1)
}

// PolicySatisfied verifies that every privacy constraint is protected under
// the mapping: its published image contains a suppressed item (unqueryable)
// or has support >= k or exactly 0 in the anonymized data. It returns the
// first violated constraint's rendering when the check fails.
func PolicySatisfied(orig *dataset.Dataset, mapping map[string]string, constraints []policy.PrivacyConstraint, k int) (bool, string) {
	published := make([]map[string]bool, len(orig.Records))
	for r := range orig.Records {
		set := make(map[string]bool)
		for _, it := range orig.Records[r].Items {
			l, ok := mapping[it]
			if !ok {
				l = it
			}
			if l != "" {
				set[l] = true
			}
		}
		published[r] = set
	}
	for _, c := range constraints {
		labels := make(map[string]bool, len(c.Items))
		suppressed := false
		for _, it := range c.Items {
			l, ok := mapping[it]
			if !ok {
				l = it
			}
			if l == "" {
				suppressed = true
				break
			}
			labels[l] = true
		}
		if suppressed {
			continue
		}
		sup := 0
		for _, tr := range published {
			all := true
			for l := range labels {
				if !tr[l] {
					all = false
					break
				}
			}
			if all {
				sup++
			}
		}
		if sup > 0 && sup < k {
			return false, fmt.Sprintf("constraint {%s} support %d < k=%d", c.String(), sup, k)
		}
	}
	return true, ""
}
