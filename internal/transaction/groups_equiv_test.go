package transaction

import (
	"fmt"
	"math/rand"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/policy"
)

// The dense group-ID published sets must agree with the seed's label-set
// model: distinct live groups have distinct labels, so group-ID support
// and label support are the same number. This drives the group table
// through random merge/suppress churn and cross-checks support queries
// against a straightforward string-label reimplementation at every step.
func TestPublishedGroupsMatchLabelModel(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	domain := make([]string, 20)
	for i := range domain {
		domain[i] = fmt.Sprintf("i%02d", i)
	}
	ds := dataset.New(nil, "items")
	for r := 0; r < 120; r++ {
		var items []string
		for _, it := range domain {
			if rng.Intn(3) == 0 {
				items = append(items, it)
			}
		}
		if err := ds.AddRecord(dataset.Record{Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	g := newGroupTable(domain)
	recRanks := recordRanks(ds, g)

	labelSupport := func(label string) int {
		n := 0
		for r := range ds.Records {
			for _, it := range ds.Records[r].Items {
				if g.label(it) == label {
					n++
					break
				}
			}
		}
		return n
	}
	check := func(step int) {
		published := publishedGroups(recRanks, g)
		for _, it := range domain {
			gi, ok := g.gid(it)
			if !ok {
				t.Fatalf("step %d: domain item %q lost its rank", step, it)
			}
			if g.dead[gi] {
				continue
			}
			if got, want := gidSupport(published, gi), labelSupport(g.label(it)); got != want {
				t.Fatalf("step %d: support of %q = %d, want %d", step, it, got, want)
			}
		}
		// Random constraints: support by group IDs == support by labels.
		for trial := 0; trial < 10; trial++ {
			items := []string{domain[rng.Intn(len(domain))], domain[rng.Intn(len(domain))]}
			c := policy.PrivacyConstraint{Items: items}
			sup, protected := constraintSupport(published, g, c)
			wantProtected := false
			for _, it := range items {
				if g.label(it) == "" {
					wantProtected = true
				}
			}
			if protected != wantProtected {
				t.Fatalf("step %d: constraint %v protected=%v, want %v", step, items, protected, wantProtected)
			}
			if protected {
				continue
			}
			want := 0
			for r := range ds.Records {
				all := true
				for _, it := range items {
					found := false
					for _, rec := range ds.Records[r].Items {
						if g.label(rec) == g.label(it) {
							found = true
							break
						}
					}
					if !found {
						all = false
						break
					}
				}
				if all {
					want++
				}
			}
			if sup != want {
				t.Fatalf("step %d: constraint %v support = %d, want %d", step, items, sup, want)
			}
		}
	}
	check(0)
	for step := 1; step <= 30; step++ {
		a, b := domain[rng.Intn(len(domain))], domain[rng.Intn(len(domain))]
		if step%7 == 0 {
			g.suppress(a)
		} else {
			g.merge(a, b)
		}
		check(step)
	}
}
