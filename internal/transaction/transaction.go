// Package transaction implements the five transaction (set-valued)
// anonymization algorithms SECRETA integrates: Apriori, LRA and VPA
// (Terrovitis et al., VLDB J. 2011), which enforce k^m-anonymity through an
// item generalization hierarchy, and COAT (Loukides et al., KAIS 2011) and
// PCTA (Gkoulalas-Divanis & Loukides, TDP 2012), which are hierarchy-free
// and enforce privacy policies under utility constraints via item merging
// and suppression.
package transaction

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/timing"
)

// Options configures a transaction algorithm run.
type Options struct {
	// Ctx, when non-nil, is polled inside the algorithm's repair loops
	// (Apriori rounds, COAT/PCTA merge steps, rho suppression rounds);
	// once cancelled the run aborts promptly with the context's error.
	// Nil means the run cannot be cancelled.
	Ctx context.Context
	// K is the anonymity parameter.
	K int
	// M is the maximum adversary itemset size for k^m-anonymity
	// (hierarchy-based algorithms).
	M int
	// ItemHierarchy drives Apriori, LRA and VPA.
	ItemHierarchy *hierarchy.Hierarchy
	// Policy drives COAT and PCTA. COAT requires utility constraints;
	// both require privacy constraints.
	Policy *policy.Policy
	// Partitions is the number of horizontal parts for LRA (default 4)
	// and the grouping factor for VPA's vertical parts (default: one part
	// per child of the hierarchy root).
	Partitions int
	// Rho is the confidence bound of RhoUncertainty, in (0,1).
	Rho float64
	// Sensitive lists the sensitive items of RhoUncertainty.
	Sensitive []string
}

// Result is the outcome of a transaction algorithm run.
type Result struct {
	// Anonymized holds the recoded dataset, record-aligned with the
	// input; relational attributes are untouched.
	Anonymized *dataset.Dataset
	// Phases is the timing breakdown.
	Phases []timing.Phase
	// Cut is the final hierarchy cut (hierarchy-based algorithms).
	Cut *hierarchy.Cut
	// Mapping is the item -> label translation (mapping-based
	// algorithms); the empty label means the item was suppressed.
	Mapping map[string]string
	// Suppressed lists suppressed items.
	Suppressed []string
	// Generalizations counts generalization operations performed.
	Generalizations int
}

func (o *Options) validateHierarchy(ds *dataset.Dataset) error {
	if o.K < 1 {
		return fmt.Errorf("transaction: k must be >= 1, got %d", o.K)
	}
	if o.M < 1 {
		return fmt.Errorf("transaction: m must be >= 1, got %d", o.M)
	}
	if !ds.HasTransaction() {
		return fmt.Errorf("transaction: dataset has no transaction attribute")
	}
	if o.ItemHierarchy == nil {
		return fmt.Errorf("transaction: item hierarchy required")
	}
	for _, it := range ds.ItemDomain() {
		if !o.ItemHierarchy.Contains(it) {
			return fmt.Errorf("transaction: item hierarchy misses item %q", it)
		}
	}
	return nil
}

func (o *Options) validatePolicy(ds *dataset.Dataset, needUtility bool) error {
	if o.K < 1 {
		return fmt.Errorf("transaction: k must be >= 1, got %d", o.K)
	}
	if !ds.HasTransaction() {
		return fmt.Errorf("transaction: dataset has no transaction attribute")
	}
	if o.Policy == nil || len(o.Policy.Privacy) == 0 {
		return fmt.Errorf("transaction: privacy policy required")
	}
	if needUtility && len(o.Policy.Utility) == 0 {
		return fmt.Errorf("transaction: utility policy required")
	}
	return o.Policy.Validate()
}

// interrupted returns the options context's error, nil when no context
// was supplied. Algorithms poll it at the top of their repair loops so
// cancellation takes effect mid-run with bounded delay.
func (o *Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// labelFor builds a deterministic label for a merged item group.
func labelFor(items []string) string {
	if len(items) == 1 {
		return items[0]
	}
	return "(" + strings.Join(items, ",") + ")"
}

// groupTable tracks the item -> group mapping of COAT/PCTA.
type groupTable struct {
	group map[string]int // item -> group index
	items [][]string     // group index -> sorted member items
	dead  map[int]bool   // suppressed groups
}

func newGroupTable(domain []string) *groupTable {
	g := &groupTable{group: make(map[string]int, len(domain)), dead: make(map[int]bool)}
	for i, it := range domain {
		g.group[it] = i
		g.items = append(g.items, []string{it})
	}
	return g
}

// merge joins the groups of items a and b, returning the surviving group
// index. Merging a group with itself is a no-op.
func (g *groupTable) merge(a, b string) int {
	ga, gb := g.group[a], g.group[b]
	if ga == gb {
		return ga
	}
	if len(g.items[gb]) > len(g.items[ga]) {
		ga, gb = gb, ga
	}
	merged := append(g.items[ga], g.items[gb]...)
	sort.Strings(merged)
	g.items[ga] = merged
	for _, it := range g.items[gb] {
		g.group[it] = ga
	}
	g.items[gb] = nil
	return ga
}

// suppress kills the group containing item.
func (g *groupTable) suppress(item string) {
	g.dead[g.group[item]] = true
}

// size returns the member count of item's group.
func (g *groupTable) size(item string) int { return len(g.items[g.group[item]]) }

// label returns the published label for an item ("" when suppressed).
func (g *groupTable) label(item string) string {
	gi, ok := g.group[item]
	if !ok {
		return item
	}
	if g.dead[gi] {
		return ""
	}
	return labelFor(g.items[gi])
}

// mapping materializes the item -> label table.
func (g *groupTable) mapping() map[string]string {
	out := make(map[string]string, len(g.group))
	for it := range g.group {
		out[it] = g.label(it)
	}
	return out
}

// suppressed lists all suppressed items, sorted.
func (g *groupTable) suppressed() []string {
	var out []string
	for it, gi := range g.group {
		if g.dead[gi] {
			out = append(out, it)
		}
	}
	sort.Strings(out)
	return out
}

// constraintSupport counts transactions whose published item set contains
// the published image of every item of the constraint. A constraint with a
// suppressed item has no queryable image: it is reported as satisfied
// (support 0 is allowed by the "support >= k or 0" semantics).
func constraintSupport(published [][]map[string]bool, g *groupTable, c policy.PrivacyConstraint) (int, bool) {
	labels := make(map[string]bool, len(c.Items))
	for _, it := range c.Items {
		l := g.label(it)
		if l == "" {
			return 0, true // suppressed: unqueryable, trivially protected
		}
		labels[l] = true
	}
	sup := 0
	for _, tr := range published {
		all := true
		for l := range labels {
			if !tr[0][l] {
				all = false
				break
			}
		}
		if all {
			sup++
		}
	}
	return sup, false
}

// publishedSets precomputes, per record, the set of published labels under
// the current grouping. The inner slice has one element to allow in-place
// refresh without reallocating the outer structure.
func publishedSets(ds *dataset.Dataset, g *groupTable) [][]map[string]bool {
	out := make([][]map[string]bool, 0, len(ds.Records))
	for r := range ds.Records {
		set := make(map[string]bool, len(ds.Records[r].Items))
		for _, it := range ds.Records[r].Items {
			if l := g.label(it); l != "" {
				set[l] = true
			}
		}
		out = append(out, []map[string]bool{set})
	}
	return out
}
