// Package transaction implements the five transaction (set-valued)
// anonymization algorithms SECRETA integrates: Apriori, LRA and VPA
// (Terrovitis et al., VLDB J. 2011), which enforce k^m-anonymity through an
// item generalization hierarchy, and COAT (Loukides et al., KAIS 2011) and
// PCTA (Gkoulalas-Divanis & Loukides, TDP 2012), which are hierarchy-free
// and enforce privacy policies under utility constraints via item merging
// and suppression.
package transaction

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/timing"
)

// Options configures a transaction algorithm run.
type Options struct {
	// Ctx, when non-nil, is polled inside the algorithm's repair loops
	// (Apriori rounds, COAT/PCTA merge steps, rho suppression rounds);
	// once cancelled the run aborts promptly with the context's error.
	// Nil means the run cannot be cancelled.
	Ctx context.Context
	// K is the anonymity parameter.
	K int
	// M is the maximum adversary itemset size for k^m-anonymity
	// (hierarchy-based algorithms).
	M int
	// ItemHierarchy drives Apriori, LRA and VPA.
	ItemHierarchy *hierarchy.Hierarchy
	// Policy drives COAT and PCTA. COAT requires utility constraints;
	// both require privacy constraints.
	Policy *policy.Policy
	// Partitions is the number of horizontal parts for LRA (default 4)
	// and the grouping factor for VPA's vertical parts (default: one part
	// per child of the hierarchy root).
	Partitions int
	// Rho is the confidence bound of RhoUncertainty, in (0,1).
	Rho float64
	// Sensitive lists the sensitive items of RhoUncertainty.
	Sensitive []string
}

// Result is the outcome of a transaction algorithm run.
type Result struct {
	// Anonymized holds the recoded dataset, record-aligned with the
	// input; relational attributes are untouched.
	Anonymized *dataset.Dataset
	// Phases is the timing breakdown.
	Phases []timing.Phase
	// Cut is the final hierarchy cut (hierarchy-based algorithms).
	Cut *hierarchy.Cut
	// Mapping is the item -> label translation (mapping-based
	// algorithms); the empty label means the item was suppressed.
	Mapping map[string]string
	// Suppressed lists suppressed items.
	Suppressed []string
	// Generalizations counts generalization operations performed.
	Generalizations int
}

func (o *Options) validateHierarchy(ds *dataset.Dataset) error {
	if o.K < 1 {
		return fmt.Errorf("transaction: k must be >= 1, got %d", o.K)
	}
	if o.M < 1 {
		return fmt.Errorf("transaction: m must be >= 1, got %d", o.M)
	}
	if !ds.HasTransaction() {
		return fmt.Errorf("transaction: dataset has no transaction attribute")
	}
	if o.ItemHierarchy == nil {
		return fmt.Errorf("transaction: item hierarchy required")
	}
	for _, it := range ds.ItemDomain() {
		if !o.ItemHierarchy.Contains(it) {
			return fmt.Errorf("transaction: item hierarchy misses item %q", it)
		}
	}
	return nil
}

func (o *Options) validatePolicy(ds *dataset.Dataset, needUtility bool) error {
	if o.K < 1 {
		return fmt.Errorf("transaction: k must be >= 1, got %d", o.K)
	}
	if !ds.HasTransaction() {
		return fmt.Errorf("transaction: dataset has no transaction attribute")
	}
	if o.Policy == nil || len(o.Policy.Privacy) == 0 {
		return fmt.Errorf("transaction: privacy policy required")
	}
	if needUtility && len(o.Policy.Utility) == 0 {
		return fmt.Errorf("transaction: utility policy required")
	}
	return o.Policy.Validate()
}

// interrupted returns the options context's error, nil when no context
// was supplied. Algorithms poll it at the top of their repair loops so
// cancellation takes effect mid-run with bounded delay.
func (o *Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// labelFor builds a deterministic label for a merged item group.
func labelFor(items []string) string {
	if len(items) == 1 {
		return items[0]
	}
	return "(" + strings.Join(items, ",") + ")"
}

// groupTable tracks the item -> group mapping of COAT/PCTA on dense IDs:
// every domain item gets a fixed rank, the rank -> group table is a flat
// array, and liveness is a bitmap — so the published-set rebuilds that
// dominate both algorithms do integer reads instead of map walks.
type groupTable struct {
	rank      map[string]int // item -> fixed domain rank
	itemGroup []int32        // rank -> current group index
	items     [][]string     // group index -> sorted member items
	dead      []bool         // suppressed groups
}

func newGroupTable(domain []string) *groupTable {
	g := &groupTable{
		rank:      make(map[string]int, len(domain)),
		itemGroup: make([]int32, len(domain)),
		dead:      make([]bool, len(domain)),
	}
	for i, it := range domain {
		g.rank[it] = i
		g.itemGroup[i] = int32(i)
		g.items = append(g.items, []string{it})
	}
	return g
}

// gid returns the current group of a domain item (false for items outside
// the domain, e.g. policy constraints referencing unseen items).
func (g *groupTable) gid(item string) (int32, bool) {
	r, ok := g.rank[item]
	if !ok {
		return 0, false
	}
	return g.itemGroup[r], true
}

// merge joins the groups of items a and b, returning the surviving group
// index. Merging a group with itself is a no-op.
func (g *groupTable) merge(a, b string) int32 {
	ga, _ := g.gid(a)
	gb, _ := g.gid(b)
	if ga == gb {
		return ga
	}
	if len(g.items[gb]) > len(g.items[ga]) {
		ga, gb = gb, ga
	}
	merged := append(g.items[ga], g.items[gb]...)
	sort.Strings(merged)
	g.items[ga] = merged
	for _, it := range g.items[gb] {
		g.itemGroup[g.rank[it]] = ga
	}
	g.items[gb] = nil
	return ga
}

// suppress kills the group containing item (no-op for unknown items).
func (g *groupTable) suppress(item string) {
	if gi, ok := g.gid(item); ok {
		g.dead[gi] = true
	}
}

// size returns the member count of item's group.
func (g *groupTable) size(item string) int {
	gi, _ := g.gid(item)
	return len(g.items[gi])
}

// label returns the published label for an item ("" when suppressed).
func (g *groupTable) label(item string) string {
	gi, ok := g.gid(item)
	if !ok {
		return item
	}
	if g.dead[gi] {
		return ""
	}
	return labelFor(g.items[gi])
}

// mapping materializes the item -> label table.
func (g *groupTable) mapping() map[string]string {
	out := make(map[string]string, len(g.rank))
	for it := range g.rank {
		out[it] = g.label(it)
	}
	return out
}

// suppressed lists all suppressed items, sorted.
func (g *groupTable) suppressed() []string {
	var out []string
	for it, r := range g.rank {
		if g.dead[g.itemGroup[r]] {
			out = append(out, it)
		}
	}
	sort.Strings(out)
	return out
}

// recordRanks resolves every record's items to domain ranks once; the
// per-step published rebuilds then never touch a map.
func recordRanks(ds *dataset.Dataset, g *groupTable) [][]int32 {
	out := make([][]int32, len(ds.Records))
	for r := range ds.Records {
		items := ds.Records[r].Items
		if len(items) == 0 {
			continue
		}
		ranks := make([]int32, len(items))
		for i, it := range items {
			ranks[i] = int32(g.rank[it])
		}
		out[r] = ranks
	}
	return out
}

// publishedGroups computes, per record, the sorted set of live group IDs
// its items publish under the current grouping — the dense counterpart of
// the old per-record label-set maps. Distinct live groups have distinct
// labels, so group-ID sets and label sets are interchangeable.
func publishedGroups(recRanks [][]int32, g *groupTable) [][]int32 {
	out := make([][]int32, len(recRanks))
	for r, ranks := range recRanks {
		if len(ranks) == 0 {
			continue
		}
		set := make([]int32, 0, len(ranks))
		for _, rank := range ranks {
			gi := g.itemGroup[rank]
			if !g.dead[gi] {
				set = append(set, gi)
			}
		}
		if len(set) == 0 {
			continue
		}
		sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
		out[r] = dedupIDs(set)
	}
	return out
}

// gidSupport counts transactions whose published set contains the group.
func gidSupport(published [][]int32, gid int32) int {
	n := 0
	for _, set := range published {
		for _, v := range set {
			if v == gid {
				n++
				break
			}
			if v > gid {
				break
			}
		}
	}
	return n
}

// constraintSupport counts transactions whose published item set contains
// the published image of every item of the constraint. A constraint with a
// suppressed item has no queryable image: it is reported as satisfied
// (support 0 is allowed by the "support >= k or 0" semantics). Items
// outside the domain publish nowhere, so their constraints have support 0.
func constraintSupport(published [][]int32, g *groupTable, c policy.PrivacyConstraint) (int, bool) {
	gids := make([]int32, 0, len(c.Items))
	for _, it := range c.Items {
		gi, ok := g.gid(it)
		if !ok {
			return 0, false
		}
		if g.dead[gi] {
			return 0, true // suppressed: unqueryable, trivially protected
		}
		gids = append(gids, gi)
	}
	sort.Slice(gids, func(a, b int) bool { return gids[a] < gids[b] })
	gids = dedupIDs(gids)
	sup := 0
	for _, set := range published {
		if containsAll(set, gids) {
			sup++
		}
	}
	return sup, false
}

// containsAll reports whether the ascending set contains every element of
// the ascending needle slice.
func containsAll(set, needles []int32) bool {
	i := 0
	for _, n := range needles {
		for i < len(set) && set[i] < n {
			i++
		}
		if i >= len(set) || set[i] != n {
			return false
		}
		i++
	}
	return true
}
