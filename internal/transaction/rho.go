package transaction

import (
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/timing"
)

// RhoUncertainty implements the suppression-based variant of
// rho-uncertainty (Cao et al., PVLDB 2010) — the algorithm the SECRETA
// paper names as its planned extension. The item domain is split into
// public and sensitive items (Options.Sensitive); the output guarantees
// that no sensitive association rule q -> s, where q is a set of up to
// Options.M public items (including the empty set) and s a sensitive item,
// holds with confidence above rho:
//
//	support(q union {s}) / support(q) <= rho   whenever support(q∪{s}) > 0
//
// The algorithm repeatedly finds the violating rule with the highest
// confidence and suppresses the globally cheapest participating item —
// the item involved in the most violations, with ties broken toward lower
// support — until no violation remains. Suppression is global (the item
// disappears from every transaction), which preserves truthfulness.
func RhoUncertainty(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if opts.Rho <= 0 || opts.Rho >= 1 {
		return nil, fmt.Errorf("transaction: rho must be in (0,1), got %v", opts.Rho)
	}
	if opts.M < 0 {
		return nil, fmt.Errorf("transaction: m must be >= 0, got %d", opts.M)
	}
	if !ds.HasTransaction() {
		return nil, fmt.Errorf("transaction: dataset has no transaction attribute")
	}
	if len(opts.Sensitive) == 0 {
		return nil, fmt.Errorf("transaction: rho-uncertainty needs at least one sensitive item")
	}
	sensitive := make(map[string]bool, len(opts.Sensitive))
	for _, s := range opts.Sensitive {
		sensitive[s] = true
	}
	suppressed := make(map[string]bool)
	sw.Mark("setup")

	for iter := 0; ; iter++ {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		if iter > 10*len(ds.ItemDomain())+10 {
			return nil, fmt.Errorf("transaction: rho-uncertainty did not converge")
		}
		viols := rhoViolations(ds, sensitive, suppressed, opts.Rho, opts.M)
		if len(viols) == 0 {
			break
		}
		// Count how many violations each live item participates in.
		count := make(map[string]int)
		for _, v := range viols {
			for _, it := range v.items {
				count[it]++
			}
		}
		support := itemSupport(ds, suppressed)
		victim := ""
		for it, c := range count {
			if victim == "" ||
				c > count[victim] ||
				(c == count[victim] && (support[it] < support[victim] ||
					(support[it] == support[victim] && it < victim))) {
				victim = it
			}
		}
		suppressed[victim] = true
	}
	sw.Mark("suppress")

	mapping := make(map[string]string)
	for it := range suppressed {
		mapping[it] = ""
	}
	anon := generalize.ApplyItemMapping(ds, mapping)
	sw.Mark("recode")
	supList := make([]string, 0, len(suppressed))
	for it := range suppressed {
		supList = append(supList, it)
	}
	sort.Strings(supList)
	return &Result{
		Anonymized: anon,
		Phases:     sw.Phases(),
		Mapping:    mapping,
		Suppressed: supList,
	}, nil
}

type rhoViolation struct {
	items      []string // antecedent + sensitive item
	confidence float64
}

// rhoViolations enumerates all violated sensitive rules with antecedents
// of size 0..m over the live (unsuppressed) items.
func rhoViolations(ds *dataset.Dataset, sensitive, suppressed map[string]bool, rho float64, m int) []rhoViolation {
	var out []rhoViolation
	live := func(items []string) []string {
		var kept []string
		for _, it := range items {
			if !suppressed[it] {
				kept = append(kept, it)
			}
		}
		return kept
	}
	n := 0
	supAll := make(map[string]int) // itemset-key (with sensitive) -> support
	supPub := make(map[string]int) // public antecedent key -> support
	for r := range ds.Records {
		items := live(ds.Records[r].Items)
		if len(items) == 0 {
			continue
		}
		n++
		var pub, sens []string
		for _, it := range items {
			if sensitive[it] {
				sens = append(sens, it)
			} else {
				pub = append(pub, it)
			}
		}
		// Antecedents of size 0..m.
		for size := 0; size <= m && size <= len(pub); size++ {
			if size == 0 {
				supPub[""]++
				for _, s := range sens {
					supAll[s]++
				}
				continue
			}
			forEachSubsetTr(pub, size, func(q []string) {
				key := strings.Join(q, "\x00")
				supPub[key]++
				for _, s := range sens {
					supAll[key+"\x01"+s]++
				}
			})
		}
	}
	if n == 0 {
		return nil
	}
	supPub[""] = n
	for key, supQS := range supAll {
		qKey, s, found := strings.Cut(key, "\x01")
		if !found {
			qKey, s = "", key
		}
		supQ := supPub[qKey]
		if supQ == 0 {
			continue
		}
		conf := float64(supQS) / float64(supQ)
		if conf > rho {
			var items []string
			if qKey != "" {
				items = strings.Split(qKey, "\x00")
			}
			items = append(items, s)
			out = append(out, rhoViolation{items: items, confidence: conf})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].confidence != out[j].confidence {
			return out[i].confidence > out[j].confidence
		}
		return strings.Join(out[i].items, ",") < strings.Join(out[j].items, ",")
	})
	return out
}

func itemSupport(ds *dataset.Dataset, suppressed map[string]bool) map[string]int {
	out := make(map[string]int)
	for r := range ds.Records {
		for _, it := range ds.Records[r].Items {
			if !suppressed[it] {
				out[it]++
			}
		}
	}
	return out
}

// forEachSubsetTr enumerates size-k subsets of a sorted slice.
func forEachSubsetTr(items []string, k int, fn func([]string)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]string, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// IsRhoUncertain verifies the rho-uncertainty guarantee on a dataset.
func IsRhoUncertain(ds *dataset.Dataset, sensitive []string, rho float64, m int) bool {
	sens := make(map[string]bool, len(sensitive))
	for _, s := range sensitive {
		sens[s] = true
	}
	return len(rhoViolations(ds, sens, map[string]bool{}, rho, m)) == 0
}
