package transaction

import (
	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// VPA implements Vertical Partitioning Anonymization (Terrovitis et al.,
// VLDB J. 2011): the item domain is split vertically along the subtrees of
// the hierarchy root (grouped into at most Partitions parts), Apriori runs
// on each part's projection of the transactions, and the per-part cuts are
// merged into one global cut. Because the parts are disjoint subtrees, the
// merged cuts form a valid global cut; a final verification pass repairs
// any cross-part violations with global Apriori steps, so the output is
// k^m-anonymous like the paper's VPA-with-verification variant.
func VPA(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validateHierarchy(ds); err != nil {
		return nil, err
	}
	h := opts.ItemHierarchy
	roots := h.Root.Children
	if len(roots) == 0 {
		// Single-node hierarchy: nothing to partition.
		return Apriori(ds, opts)
	}
	parts := opts.Partitions
	if parts <= 0 || parts > len(roots) {
		parts = len(roots)
	}
	// Group the root's subtrees into `parts` contiguous buckets.
	buckets := make([][]*hierarchy.Node, parts)
	for i, sub := range roots {
		b := i * parts / len(roots)
		buckets[b] = append(buckets[b], sub)
	}
	sw.Mark("partition")

	cut := hierarchy.NewLeafCut(h)
	gens := 0
	for _, bucket := range buckets {
		if len(bucket) == 0 {
			continue
		}
		allowed := make(map[string]bool)
		for _, sub := range bucket {
			for _, leaf := range sub.Leaves() {
				allowed[leaf] = true
			}
		}
		g, err := aprioriOnCut(opts.Ctx, ds, nil, cut, h, opts.K, opts.M, allowed)
		gens += g
		if err != nil {
			// Distinguish "cancelled" from "this part is infeasible": only
			// the latter may be deferred to the verification pass.
			if cerr := opts.interrupted(); cerr != nil {
				return nil, cerr
			}
			// The part cannot be repaired inside its own subtrees (e.g.
			// a whole subtree is rarer than k). Leave it to the global
			// verification pass, which may generalize across parts.
			continue
		}
	}
	sw.Mark("anonymize parts")

	// Verification: repair cross-part violations globally.
	g, err := aprioriOnCut(opts.Ctx, ds, nil, cut, h, opts.K, opts.M, nil)
	if err != nil {
		return nil, err
	}
	gens += g
	sw.Mark("verify")

	anon, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		return nil, err
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases(), Cut: cut, Generalizations: gens}, nil
}
