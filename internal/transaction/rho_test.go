package transaction

import (
	"math/rand"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
)

func sensitiveItems(ds *dataset.Dataset, n int) []string {
	dom := ds.ItemDomain()
	if n > len(dom) {
		n = len(dom)
	}
	// Mark the most popular items sensitive to force real work.
	h := ds.ItemHistogram()
	out := make([]string, 0, n)
	for _, f := range h[:n] {
		out = append(out, f.Value)
	}
	return out
}

func TestRhoUncertaintyEnforcesBound(t *testing.T) {
	ds, _ := transData(t, 300, 20, 41)
	sens := sensitiveItems(ds, 4)
	for _, rho := range []float64{0.3, 0.5, 0.7} {
		res, err := RhoUncertainty(ds, Options{Rho: rho, M: 2, Sensitive: sens})
		if err != nil {
			t.Fatalf("rho=%v: %v", rho, err)
		}
		if !IsRhoUncertain(res.Anonymized, sens, rho, 2) {
			t.Errorf("rho=%v: output violates rho-uncertainty", rho)
		}
	}
}

func TestRhoUncertaintyTighterBoundSuppressesMore(t *testing.T) {
	ds, _ := transData(t, 300, 20, 43)
	sens := sensitiveItems(ds, 4)
	loose, err := RhoUncertainty(ds, Options{Rho: 0.8, M: 1, Sensitive: sens})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := RhoUncertainty(ds, Options{Rho: 0.1, M: 1, Sensitive: sens})
	if err != nil {
		t.Fatal(err)
	}
	if len(tight.Suppressed) < len(loose.Suppressed) {
		t.Errorf("tight rho suppressed %d items, loose %d", len(tight.Suppressed), len(loose.Suppressed))
	}
}

func TestRhoUncertaintyNoViolationsNoChanges(t *testing.T) {
	// One sensitive item carried by a small fraction of transactions:
	// conf(empty -> s) is already below rho.
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
	for i := 0; i < 20; i++ {
		items := []string{"pub1", "pub2"}
		if i == 0 {
			items = append(items, "sens")
		}
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RhoUncertainty(ds, Options{Rho: 0.5, M: 0, Sensitive: []string{"sens"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 0 {
		t.Errorf("suppressed %v without violations", res.Suppressed)
	}
}

func TestRhoUncertaintyEmptyAntecedent(t *testing.T) {
	// Sensitive item in every transaction: conf(empty -> s) = 1 > rho, so
	// s itself must be suppressed.
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
	for i := 0; i < 10; i++ {
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: []string{"pub", "sens"}}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := RhoUncertainty(ds, Options{Rho: 0.5, M: 1, Sensitive: []string{"sens"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Suppressed) != 1 || res.Suppressed[0] != "sens" {
		t.Errorf("suppressed = %v, want [sens]", res.Suppressed)
	}
	if !IsRhoUncertain(res.Anonymized, []string{"sens"}, 0.5, 1) {
		t.Error("bound still violated")
	}
}

func TestRhoUncertaintyOptionErrors(t *testing.T) {
	ds, _ := transData(t, 40, 8, 47)
	sens := sensitiveItems(ds, 2)
	for _, bad := range []Options{
		{Rho: 0, M: 1, Sensitive: sens},
		{Rho: 1, M: 1, Sensitive: sens},
		{Rho: 0.5, M: -1, Sensitive: sens},
		{Rho: 0.5, M: 1},
	} {
		if _, err := RhoUncertainty(ds, bad); err == nil {
			t.Errorf("options %+v accepted", bad)
		}
	}
	rel := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if _, err := RhoUncertainty(rel, Options{Rho: 0.5, M: 1, Sensitive: []string{"s"}}); err == nil {
		t.Error("relational-only dataset accepted")
	}
}

// Property: on random small datasets the output always satisfies the bound
// and only ever removes items (truthfulness).
func TestRhoUncertaintyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	universe := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 40; trial++ {
		ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
		n := 5 + rng.Intn(25)
		for i := 0; i < n; i++ {
			var items []string
			for _, u := range universe {
				if rng.Intn(3) == 0 {
					items = append(items, u)
				}
			}
			if len(items) == 0 {
				items = []string{universe[rng.Intn(len(universe))]}
			}
			if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: items}); err != nil {
				t.Fatal(err)
			}
		}
		sens := []string{"a", "f"}
		rho := 0.2 + rng.Float64()*0.6
		m := 1 + rng.Intn(2)
		res, err := RhoUncertainty(ds, Options{Rho: rho, M: m, Sensitive: sens})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !IsRhoUncertain(res.Anonymized, sens, rho, m) {
			t.Fatalf("trial %d: bound violated (rho=%v m=%d)", trial, rho, m)
		}
		// Truthfulness: every published item existed in the original
		// record.
		for r := range ds.Records {
			orig := make(map[string]bool)
			for _, it := range ds.Records[r].Items {
				orig[it] = true
			}
			for _, it := range res.Anonymized.Records[r].Items {
				if !orig[it] {
					t.Fatalf("trial %d: invented item %q", trial, it)
				}
			}
		}
	}
}

func TestRhoViaEngineDataShapes(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 150, Items: 12, Seed: 59})
	sens := sensitiveItems(ds, 2)
	res, err := RhoUncertainty(ds, Options{Rho: 0.4, M: 2, Sensitive: sens})
	if err != nil {
		t.Fatal(err)
	}
	if res.Anonymized.Len() != ds.Len() {
		t.Error("record count changed")
	}
	if len(res.Phases) < 3 {
		t.Errorf("phases = %v", res.Phases)
	}
}
