package transaction_test

import (
	"testing"

	"secreta/internal/gen"
	"secreta/internal/transaction"
)

// BenchmarkApriori measures full Apriori repair runs — the level-wise
// violation scan plus the per-round cut updates — on a Zipf-skewed basket
// set, the workload scripts/bench.sh tracks as "Apriori round".
func BenchmarkApriori(b *testing.B) {
	ds := gen.Census(gen.Config{Records: 1500, Items: 48, MaxBasket: 6, Seed: 7})
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := transaction.Apriori(ds, transaction.Options{K: 5, M: 2, ItemHierarchy: ih})
		if err != nil {
			b.Fatal(err)
		}
		if res.Anonymized == nil {
			b.Fatal("no output")
		}
	}
}
