package transaction

import (
	"context"
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/privacy"
	"secreta/internal/timing"
)

// Apriori implements the Apriori anonymization algorithm (AA) of Terrovitis
// et al.: it enforces k^m-anonymity level-wise. For i = 1..m it finds
// itemsets of size i (over the current generalization) supported by fewer
// than k transactions and repairs each by generalizing one of its items up
// the hierarchy, picking the item whose full-subtree generalization costs
// the least NCP. Because generalization only merges supports, repairs at
// level i never reintroduce violations at levels < i.
func Apriori(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validateHierarchy(ds); err != nil {
		return nil, err
	}
	cut := hierarchy.NewLeafCut(opts.ItemHierarchy)
	sw.Mark("setup")
	gens, err := aprioriOnCut(opts.Ctx, ds, nil, cut, opts.ItemHierarchy, opts.K, opts.M, nil)
	if err != nil {
		return nil, err
	}
	sw.Mark("generalize")
	anon, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		return nil, err
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases(), Cut: cut, Generalizations: gens}, nil
}

// aprioriOnCut runs the AA repair loop over the records at indices idx (all
// when nil), mutating cut. When allowed is non-nil, only items whose cut
// node's leaves are all inside allowed may be generalized (VPA restricts
// repairs to one vertical part). ctx (nil-able) is polled each repair
// round and inside the violation scan, so a cancelled run stops within one
// round. Returns the number of generalizations.
func aprioriOnCut(ctx context.Context, ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, h *hierarchy.Hierarchy, k, m int, allowed map[string]bool) (int, error) {
	gens := 0
	for size := 1; size <= m; size++ {
		for {
			mapped, err := mappedTransactions(ds, idx, cut, allowed)
			if err != nil {
				return gens, err
			}
			viol, err := firstViolationOfSize(ctx, mapped, k, size)
			if err != nil {
				return gens, err
			}
			if viol == nil {
				break
			}
			// Pick the item of the violating set whose generalization
			// increases the cut NCP least, among items allowed to move.
			bestItem := ""
			bestCost := 0.0
			baseNCP := cut.NCP()
			for _, g := range viol.Itemset {
				n := h.Node(g)
				if n == nil || n.Parent == nil {
					continue
				}
				if allowed != nil && !subtreeAllowed(n.Parent, allowed) {
					continue
				}
				trial := cut.Clone()
				if err := trial.Generalize(g); err != nil {
					continue
				}
				cost := trial.NCP() - baseNCP
				if bestItem == "" || cost < bestCost {
					bestItem, bestCost = g, cost
				}
			}
			if bestItem == "" {
				return gens, fmt.Errorf("apriori: cannot repair violation %v (k=%d, m=%d): all items fully generalized", viol.Itemset, k, m)
			}
			if err := cut.Generalize(bestItem); err != nil {
				return gens, err
			}
			gens++
		}
	}
	return gens, nil
}

// subtreeAllowed reports whether every leaf under n is in the allowed set.
func subtreeAllowed(n *hierarchy.Node, allowed map[string]bool) bool {
	for _, leaf := range n.Leaves() {
		if !allowed[leaf] {
			return false
		}
	}
	return true
}

// mappedTransactions maps the item sets of the selected records through the
// cut; when allowed is non-nil only items in the allowed leaf set are kept
// (vertical projection).
func mappedTransactions(ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, allowed map[string]bool) ([][]string, error) {
	var out [][]string
	mapOne := func(r int) error {
		items := ds.Records[r].Items
		if allowed != nil {
			var kept []string
			for _, it := range items {
				if allowed[it] {
					kept = append(kept, it)
				}
			}
			items = kept
		}
		if len(items) == 0 {
			return nil
		}
		mapped, err := generalize.MapItems(items, cut)
		if err != nil {
			return err
		}
		if len(mapped) > 0 {
			out = append(out, mapped)
		}
		return nil
	}
	if idx == nil {
		for r := range ds.Records {
			if err := mapOne(r); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for _, r := range idx {
		if err := mapOne(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// firstViolationOfSize returns one k^m violation of exactly the given
// itemset size, or nil. The scan polls ctx, so a long violation search
// over a big transaction multiset aborts promptly when cancelled.
func firstViolationOfSize(ctx context.Context, transactions [][]string, k, size int) (*privacy.Violation, error) {
	vs, err := privacy.KMViolationsCtx(ctx, transactions, k, size, 0)
	if err != nil {
		return nil, err
	}
	for _, v := range vs {
		if len(v.Itemset) == size {
			v := v
			return &v, nil
		}
	}
	return nil, nil
}
