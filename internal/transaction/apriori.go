package transaction

import (
	"context"
	"fmt"
	"sort"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/obs"
	"secreta/internal/timing"
)

// Apriori implements the Apriori anonymization algorithm (AA) of Terrovitis
// et al.: it enforces k^m-anonymity level-wise. For i = 1..m it finds
// itemsets of size i (over the current generalization) supported by fewer
// than k transactions and repairs each by generalizing one of its items up
// the hierarchy, picking the item whose full-subtree generalization costs
// the least NCP. Because generalization only merges supports, repairs at
// level i never reintroduce violations at levels < i.
//
// The repair loop runs on the interned core: transactions are sorted
// dense-ID lists mapped through an IndexedCut, per-size support counts are
// maintained incrementally, and a repair re-maps and re-counts only the
// transactions that contain the generalized subtree (found through a
// postings index) instead of re-scanning the whole dataset per round.
func Apriori(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validateHierarchy(ds); err != nil {
		return nil, err
	}
	cut := hierarchy.NewLeafCut(opts.ItemHierarchy)
	sw.Mark("setup")
	gens, err := aprioriOnCut(opts.Ctx, ds, nil, cut, opts.ItemHierarchy, opts.K, opts.M, nil)
	if err != nil {
		return nil, err
	}
	sw.Mark("generalize")
	anon, err := generalize.ApplyItemCut(ds, cut)
	if err != nil {
		return nil, err
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases(), Cut: cut, Generalizations: gens}, nil
}

// aprioriOnCut runs the AA repair loop over the records at indices idx (all
// when nil), mutating cut. When allowed is non-nil, only items whose cut
// node's leaves are all inside allowed may be generalized (VPA restricts
// repairs to one vertical part). ctx (nil-able) is polled each repair
// round and inside the scans, so a cancelled run stops within one round.
// Returns the number of generalizations.
func aprioriOnCut(ctx context.Context, ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, h *hierarchy.Hierarchy, k, m int, allowed map[string]bool) (int, error) {
	st, err := newAprioriState(ds, idx, cut, h, allowed)
	if err != nil {
		return 0, err
	}
	// Write the indexed cut back on every exit path, success or not: the
	// seed mutated cut in place, so partial repairs survive an infeasible
	// part (VPA continues past those and must see them) and a cancelled
	// run leaves the same state behind.
	defer st.cut.ApplyTo(cut)
	gens := 0
	// NCP deltas are compared through the exact float operations of
	// Cut.NCP, so the repair choice (and with it the whole run) matches
	// the string path bit for bit.
	total := st.ix.NumLeaves()
	denom := float64(total-1) * float64(total)
	for size := 1; size <= m; size++ {
		if err := st.buildCounts(ctx, size); err != nil {
			return gens, err
		}
		obs.FromCtx(ctx).Event("apriori_round",
			obs.Int("size", size), obs.Int("generalizations", gens))
		for {
			if err := ctxErr(ctx); err != nil {
				return gens, err
			}
			viol := st.minViolation(k)
			if viol == nil {
				break
			}
			// Pick the item of the violating set whose generalization
			// increases the cut NCP least, among items allowed to move.
			// Candidates are tried in item-name order with a strict-less
			// comparison — the seed's tie-break.
			bestID := int32(-1)
			bestCost := 0.0
			base := st.cut.NCPNumerator()
			for _, id := range viol.ids {
				p := st.ix.Parent(id)
				if p < 0 {
					continue
				}
				if st.allowedPrefix != nil && !st.subtreeAllowed(p) {
					continue
				}
				delta, ok := st.cut.GeneralizeDeltaNum(id)
				if !ok {
					continue
				}
				cost := 0.0
				if total > 1 {
					cost = float64(base+delta)/denom - float64(base)/denom
				}
				if bestID < 0 || cost < bestCost {
					bestID, bestCost = id, cost
				}
			}
			if bestID < 0 {
				return gens, fmt.Errorf("apriori: cannot repair violation %v (k=%d, m=%d): all items fully generalized", viol.names, k, m)
			}
			if err := st.repair(ctx, bestID); err != nil {
				return gens, err
			}
			gens++
		}
	}
	return gens, nil
}

// aprioriState is the interned working set of one repair run: mapped
// transactions as sorted node-ID lists, a postings index from node ID to
// the transactions containing it, and the support counts of the current
// subset size.
type aprioriState struct {
	ix  *hierarchy.Index
	cut *hierarchy.IndexedCut
	txs [][]int32
	// postings[id] lists the indices of transactions whose mapped items
	// include id; kept exact across repairs so a repair visits only the
	// transactions that actually contain the generalized subtree.
	postings map[int32][]int
	// allowedPrefix, when non-nil, holds prefix sums of the allowed-leaf
	// indicator over leaf ordinals (VPA's vertical restriction):
	// a subtree is movable iff its leaf range is all-allowed.
	allowedPrefix []int32

	// Support counts of the current size, densest representation first:
	// an array over node IDs for single items, packed uint64 pairs, byte
	// tuples beyond. buf is the reusable packed-key scratch.
	size   int
	single []int32
	pairs  map[uint64]int32
	packed map[string]*int32
	buf    []byte

	// candIDs/bestIDs are minViolation's reusable comparison buffers: the
	// scan keeps only the name-wise smallest violating itemset, so per-
	// candidate name slices and sort.Sort boxing would be pure garbage.
	candIDs []int32
	bestIDs []int32
}

func newAprioriState(ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, h *hierarchy.Hierarchy, allowed map[string]bool) (*aprioriState, error) {
	ix := h.Index()
	st := &aprioriState{
		ix:       ix,
		cut:      hierarchy.NewIndexedCut(ix, cut),
		postings: make(map[int32][]int),
	}
	if allowed != nil {
		st.allowedPrefix = make([]int32, ix.NumLeaves()+1)
		for o := int32(0); o < int32(ix.NumLeaves()); o++ {
			st.allowedPrefix[o+1] = st.allowedPrefix[o]
			if allowed[ix.Value(ix.LeafID(o))] {
				st.allowedPrefix[o+1]++
			}
		}
	}
	mapOne := func(r int) error {
		items := ds.Records[r].Items
		var tx []int32
		for _, it := range items {
			if allowed != nil && !allowed[it] {
				continue
			}
			id, err := ix.MustID(it)
			if err != nil {
				return err
			}
			tx = append(tx, st.cut.Map(id))
		}
		if tx == nil {
			st.txs = append(st.txs, nil)
			return nil
		}
		sort.Slice(tx, func(a, b int) bool { return tx[a] < tx[b] })
		tx = dedupIDs(tx)
		st.txs = append(st.txs, tx)
		return nil
	}
	if idx == nil {
		for r := range ds.Records {
			if err := mapOne(r); err != nil {
				return nil, err
			}
		}
	} else {
		for _, r := range idx {
			if err := mapOne(r); err != nil {
				return nil, err
			}
		}
	}
	for t, tx := range st.txs {
		for _, id := range tx {
			st.postings[id] = append(st.postings[id], t)
		}
	}
	return st, nil
}

// dedupIDs removes adjacent duplicates from an ascending slice in place.
func dedupIDs(ids []int32) []int32 {
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// subtreeAllowed reports whether every leaf under id is in the allowed
// part — an O(1) prefix-sum check over the subtree's leaf-ordinal range.
func (st *aprioriState) subtreeAllowed(id int32) bool {
	lo, hi := st.ix.LeafRange(id)
	return st.allowedPrefix[hi]-st.allowedPrefix[lo] == hi-lo
}

// cancelStride matches the privacy package's scan-poll cadence.
const cancelStride = 256

// buildCounts scans every transaction once and counts its size-subsets —
// the only full scan a level needs; repairs afterwards adjust these counts
// incrementally.
func (st *aprioriState) buildCounts(ctx context.Context, size int) error {
	st.size = size
	st.single, st.pairs, st.packed = nil, nil, nil
	switch {
	case size == 1:
		st.single = make([]int32, st.ix.Len())
	case size == 2:
		st.pairs = make(map[uint64]int32)
	default:
		st.packed = make(map[string]*int32)
		st.buf = make([]byte, 4*size)
	}
	for t, tx := range st.txs {
		if t%cancelStride == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		st.count(tx, 1)
	}
	return nil
}

// count adds d (+1 or -1) to the support of every size-subset of tx.
//
// This mirrors internal/privacy's supportCounts.add, with two deliberate
// differences that keep them separate implementations: counts here are
// adjustable (removal must delete zeroed entries so violation scans stay
// tight) and IDs are hierarchy node IDs (int32), not item ranks. Both
// copies encode the same invariants — big-endian packing so byte order
// equals ID order, lexicographic subset enumeration over ascending IDs —
// and the equivalence tests in equiv_test.go / privacy's equiv_test.go
// pin each against the seed behavior, so drift in either is caught.
func (st *aprioriState) count(tx []int32, d int32) {
	if len(tx) < st.size {
		return
	}
	switch st.size {
	case 1:
		for _, id := range tx {
			st.single[id] += d
		}
	case 2:
		for i := 0; i < len(tx); i++ {
			hi := uint64(uint32(tx[i])) << 32
			for j := i + 1; j < len(tx); j++ {
				key := hi | uint64(uint32(tx[j]))
				if v := st.pairs[key] + d; v == 0 {
					delete(st.pairs, key)
				} else {
					st.pairs[key] = v
				}
			}
		}
	default:
		buf := st.buf
		forEachSubset32(tx, st.size, func(sub []int32) {
			for i, id := range sub {
				v := uint32(id)
				buf[4*i] = byte(v >> 24)
				buf[4*i+1] = byte(v >> 16)
				buf[4*i+2] = byte(v >> 8)
				buf[4*i+3] = byte(v)
			}
			p := st.packed[string(buf)]
			if p == nil {
				if d < 0 {
					return
				}
				p = new(int32)
				st.packed[string(buf)] = p
			}
			*p += d
			if *p == 0 {
				delete(st.packed, string(buf))
			}
		})
	}
}

// violation is one under-supported itemset: ids sorted by item name (the
// order the repair loop tries candidates in), names in the same order.
type violation struct {
	ids     []int32
	names   []string
	support int32
}

// minViolation returns the violating itemset that is smallest in
// item-name order — exactly the first violation the seed's sorted scan
// repaired — or nil when the level is clean. The scan itself is
// allocation-free: candidate IDs go through reusable buffers, names are
// resolved lazily for comparisons, and the violation struct (with its
// names) is built once for the winner.
func (st *aprioriState) minViolation(k int) *violation {
	if cap(st.candIDs) < st.size {
		st.candIDs = make([]int32, st.size)
		st.bestIDs = make([]int32, st.size)
	}
	cand := st.candIDs[:st.size]
	best := st.bestIDs[:st.size]
	haveBest := false
	var bestSupport int32
	// consider sorts cand by item name (hierarchy values are distinct, so
	// the order matches the seed's sort.Sort) and keeps it iff it is
	// strictly name-less than the running best — the seed's tie-break.
	consider := func(support int32) {
		for i := 1; i < len(cand); i++ {
			for j := i; j > 0 && st.ix.Value(cand[j]) < st.ix.Value(cand[j-1]); j-- {
				cand[j], cand[j-1] = cand[j-1], cand[j]
			}
		}
		if !haveBest || lessIDNames(st.ix, cand, best) {
			copy(best, cand)
			bestSupport = support
			haveBest = true
		}
	}
	switch st.size {
	case 1:
		for id, s := range st.single {
			if s > 0 && s < int32(k) {
				cand[0] = int32(id)
				consider(s)
			}
		}
	case 2:
		for key, s := range st.pairs {
			if s < int32(k) {
				cand[0], cand[1] = int32(uint32(key>>32)), int32(uint32(key))
				consider(s)
			}
		}
	default:
		for key, p := range st.packed {
			if *p < int32(k) {
				for i := range cand {
					cand[i] = int32(uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3]))
				}
				consider(*p)
			}
		}
	}
	if !haveBest {
		return nil
	}
	ids := append([]int32(nil), best...)
	names := make([]string, len(ids))
	for i, id := range ids {
		names[i] = st.ix.Value(id)
	}
	return &violation{ids: ids, names: names, support: bestSupport}
}

// lessIDNames compares equal-length, name-sorted ID tuples by their item
// names lexicographically.
func lessIDNames(ix *hierarchy.Index, a, b []int32) bool {
	for i := range a {
		av, bv := ix.Value(a[i]), ix.Value(b[i])
		if av != bv {
			return av < bv
		}
	}
	return false
}

// repair generalizes the cut node of id to its parent and refreshes the
// state incrementally: only the transactions whose mapped items intersect
// the parent's subtree (per the postings index) are re-counted (at the
// current st.size) and re-mapped; every other transaction's subsets are
// untouched.
func (st *aprioriState) repair(ctx context.Context, id int32) error {
	p := st.ix.Parent(id)
	end := p + st.ix.SubtreeSize(p)
	// Union the postings of every node in the subtree's ID range.
	var affected []int
	seen := make(map[int]bool)
	for j := p; j < end; j++ {
		for _, t := range st.postings[j] {
			if !seen[t] {
				seen[t] = true
				affected = append(affected, t)
			}
		}
	}
	sort.Ints(affected)
	if _, err := st.cut.Generalize(id); err != nil {
		return err
	}
	for n, t := range affected {
		if n%cancelStride == 0 {
			if err := ctxErr(ctx); err != nil {
				return err
			}
		}
		old := st.txs[t]
		st.count(old, -1)
		// In-range IDs form one contiguous run of the ascending list;
		// collapsing the run to p keeps the list sorted and deduplicated.
		tx := old[:0]
		placed := false
		for _, v := range old {
			if v >= p && v < end {
				if !placed {
					tx = append(tx, p)
					placed = true
				}
				continue
			}
			tx = append(tx, v)
		}
		st.txs[t] = tx
		st.count(tx, 1)
	}
	for j := p; j < end; j++ {
		delete(st.postings, j)
	}
	st.postings[p] = affected
	return nil
}

// forEachSubset32 enumerates all size-k subsets of the ascending slice in
// lexicographic order.
func forEachSubset32(items []int32, k int, fn func([]int32)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]int32, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// ctxErr returns ctx's error, treating nil as never cancelled.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
