package transaction

import (
	"context"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/privacy"
)

// This file preserves the seed's string-path Apriori repair loop verbatim
// and pins that the interned incremental loop is observationally
// identical: same cut, same generalization count, byte-identical
// anonymized output, identical NCP — across generated datasets, the
// hand-written testdata fixture, horizontal parts (LRA's idx subsets) and
// vertical parts (VPA's allowed sets).

// referenceAprioriOnCut is the seed aprioriOnCut: re-map every
// transaction through the cut and re-scan for violations from scratch,
// every repair round.
func referenceAprioriOnCut(ctx context.Context, ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, h *hierarchy.Hierarchy, k, m int, allowed map[string]bool) (int, error) {
	gens := 0
	for size := 1; size <= m; size++ {
		for {
			mapped, err := refMappedTransactions(ds, idx, cut, allowed)
			if err != nil {
				return gens, err
			}
			viol, err := refFirstViolationOfSize(ctx, mapped, k, size)
			if err != nil {
				return gens, err
			}
			if viol == nil {
				break
			}
			bestItem := ""
			bestCost := 0.0
			baseNCP := cut.NCP()
			for _, g := range viol.Itemset {
				n := h.Node(g)
				if n == nil || n.Parent == nil {
					continue
				}
				if allowed != nil && !refSubtreeAllowed(n.Parent, allowed) {
					continue
				}
				trial := cut.Clone()
				if err := trial.Generalize(g); err != nil {
					continue
				}
				cost := trial.NCP() - baseNCP
				if bestItem == "" || cost < bestCost {
					bestItem, bestCost = g, cost
				}
			}
			if bestItem == "" {
				return gens, fmt.Errorf("apriori: cannot repair violation %v (k=%d, m=%d): all items fully generalized", viol.Itemset, k, m)
			}
			if err := cut.Generalize(bestItem); err != nil {
				return gens, err
			}
			gens++
		}
	}
	return gens, nil
}

func refSubtreeAllowed(n *hierarchy.Node, allowed map[string]bool) bool {
	for _, leaf := range n.Leaves() {
		if !allowed[leaf] {
			return false
		}
	}
	return true
}

func refMappedTransactions(ds *dataset.Dataset, idx []int, cut *hierarchy.Cut, allowed map[string]bool) ([][]string, error) {
	var out [][]string
	mapOne := func(r int) error {
		items := ds.Records[r].Items
		if allowed != nil {
			var kept []string
			for _, it := range items {
				if allowed[it] {
					kept = append(kept, it)
				}
			}
			items = kept
		}
		if len(items) == 0 {
			return nil
		}
		mapped, err := generalize.MapItems(items, cut)
		if err != nil {
			return err
		}
		if len(mapped) > 0 {
			out = append(out, mapped)
		}
		return nil
	}
	if idx == nil {
		for r := range ds.Records {
			if err := mapOne(r); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	for _, r := range idx {
		if err := mapOne(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func refFirstViolationOfSize(ctx context.Context, transactions [][]string, k, size int) (*privacy.Violation, error) {
	vs, err := privacy.KMViolationsCtx(ctx, transactions, k, size, 0)
	if err != nil {
		return nil, err
	}
	for _, v := range vs {
		if len(v.Itemset) == size {
			v := v
			return &v, nil
		}
	}
	return nil, nil
}

// runBoth drives the production and reference repair loops from the same
// starting cut and compares everything observable.
func runBoth(t *testing.T, label string, ds *dataset.Dataset, idx []int, h *hierarchy.Hierarchy, k, m int, allowed map[string]bool) {
	t.Helper()
	got := hierarchy.NewLeafCut(h)
	want := hierarchy.NewLeafCut(h)
	gotGens, gotErr := aprioriOnCut(nil, ds, idx, got, h, k, m, allowed)
	wantGens, wantErr := referenceAprioriOnCut(nil, ds, idx, want, h, k, m, allowed)
	if (gotErr == nil) != (wantErr == nil) || (gotErr != nil && gotErr.Error() != wantErr.Error()) {
		t.Fatalf("%s: error diverged: got %v, want %v", label, gotErr, wantErr)
	}
	if gotGens != wantGens {
		t.Fatalf("%s: generalizations = %d, want %d", label, gotGens, wantGens)
	}
	if !reflect.DeepEqual(got.Values(), want.Values()) {
		t.Fatalf("%s: cut diverged:\n got %v\nwant %v", label, got.Values(), want.Values())
	}
	if got.NCP() != want.NCP() {
		t.Fatalf("%s: NCP = %v, want %v", label, got.NCP(), want.NCP())
	}
	if gotErr != nil {
		return
	}
	gotAnon, err := generalize.ApplyItemCut(ds, got)
	if err != nil {
		t.Fatal(err)
	}
	wantAnon, err := generalize.ApplyItemCut(ds, want)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotAnon, wantAnon) {
		t.Fatalf("%s: anonymized output diverged", label)
	}
}

func TestAprioriMatchesReference(t *testing.T) {
	for _, seed := range []int64{1, 5, 11} {
		for _, m := range []int{1, 2, 3} {
			ds := gen.Census(gen.Config{Records: 250, Items: 24, MaxBasket: 6, Seed: seed})
			ih, err := gen.ItemHierarchy(ds, 2)
			if err != nil {
				t.Fatal(err)
			}
			for _, k := range []int{2, 4, 8} {
				runBoth(t, fmt.Sprintf("seed=%d k=%d m=%d", seed, k, m), ds, nil, ih, k, m, nil)
			}
		}
	}
}

func TestAprioriMatchesReferenceOnParts(t *testing.T) {
	ds := gen.Census(gen.Config{Records: 300, Items: 30, MaxBasket: 6, Seed: 3})
	ih, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Horizontal subset (LRA's partIdx shape).
	idx := make([]int, 0, 150)
	for r := 0; r < 300; r += 2 {
		idx = append(idx, r)
	}
	runBoth(t, "horizontal part", ds, idx, ih, 3, 2, nil)
	// Vertical part (VPA's allowed shape): one subtree of the root.
	for i, sub := range ih.Root.Children {
		allowed := make(map[string]bool)
		for _, leaf := range sub.Leaves() {
			allowed[leaf] = true
		}
		runBoth(t, fmt.Sprintf("vertical part %d", i), ds, nil, ih, 3, 2, allowed)
	}
}

// TestAprioriInfeasiblePartKeepsPartialCut pins the in-place mutation
// contract on the error path: when a vertical part is infeasible, the
// generalizations applied before the failure must survive on the
// caller's cut (VPA continues past infeasible parts and the global
// verification pass starts from that partially-coarsened state).
func TestAprioriInfeasiblePartKeepsPartialCut(t *testing.T) {
	h, err := hierarchy.NewBuilder("items").
		Add("R", "A").Add("R", "B").
		Add("A", "a1").Add("A", "a2").
		Add("B", "b1").Add("B", "b2").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	ds := dataset.New(nil, "items")
	baskets := [][]string{{"a1", "b1"}, {"a2", "b1"}, {"b1", "b2"}, {"b1", "b2"}, {"b1", "b2"}}
	for _, items := range baskets {
		if err := ds.AddRecord(dataset.Record{Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	allowed := map[string]bool{"a1": true, "a2": true}
	runBoth(t, "infeasible part", ds, nil, h, 3, 1, allowed)
	// Sanity: the scenario really is the partial-repair-then-fail path.
	cut := hierarchy.NewLeafCut(h)
	gens, err := aprioriOnCut(nil, ds, nil, cut, h, 3, 1, allowed)
	if err == nil || gens != 1 {
		t.Fatalf("fixture drifted: gens=%d err=%v, want 1 generalization then failure", gens, err)
	}
	if !cut.Contains("A") {
		t.Fatalf("partial generalization lost on error: cut = %v", cut.Values())
	}
}

func TestAprioriMatchesReferenceOnTestdata(t *testing.T) {
	ds, err := dataset.LoadFile(filepath.Join("..", "..", "testdata", "patients.csv"), dataset.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ih, err := hierarchy.LoadFile("Diagnoses", filepath.Join("..", "..", "testdata", "hierarchies", "Diagnoses.csv"))
	if err != nil {
		t.Fatal(err)
	}
	for k := 2; k <= 4; k++ {
		for m := 1; m <= 3; m++ {
			runBoth(t, fmt.Sprintf("testdata k=%d m=%d", k, m), ds, nil, ih, k, m, nil)
		}
	}
}
