package transaction

import (
	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/timing"
)

// PCTA implements Privacy-Constrained Clustering-based Transaction
// Anonymization (Gkoulalas-Divanis & Loukides, TDP 2012). Like COAT it
// protects privacy constraints by merging items into indistinguishable
// groups, but it treats generalization as agglomerative clustering over the
// whole item domain: at each step it takes the most violated constraint
// (lowest positive support below k) and performs the globally cheapest
// merge between one of the constraint's groups and any other live group,
// where cost is the UL-style exponential penalty of the merged group
// weighted by its published support. When a utility policy is supplied it
// bounds the clustering exactly as in COAT; without one, any items may
// cluster together, and suppression is used only when a constraint cannot
// be protected otherwise.
func PCTA(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	if err := opts.validatePolicy(ds, false); err != nil {
		return nil, err
	}
	domain := ds.ItemDomain()
	groups := newGroupTable(domain)
	recRanks := recordRanks(ds, groups)
	uidx := opts.Policy.UtilityIndex()
	hasUtility := len(opts.Policy.Utility) > 0
	sw.Mark("setup")

	gens := 0
	for {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		published := publishedGroups(recRanks, groups)
		// Find the most violated constraint.
		worst := -1
		worstSup := 0
		for ci := range opts.Policy.Privacy {
			sup, protected := constraintSupport(published, groups, opts.Policy.Privacy[ci])
			if protected || sup == 0 || sup >= opts.K {
				continue
			}
			if worst < 0 || sup < worstSup {
				worst, worstSup = ci, sup
			}
		}
		if worst < 0 {
			break
		}
		c := opts.Policy.Privacy[worst]
		// Cheapest merge: any group of a constraint item with any other
		// live group (respecting utility bounds when present).
		bestA, bestB := "", ""
		bestCost := 0.0
		for _, it := range c.Items {
			igid, ok := groups.gid(it)
			if !ok || groups.dead[igid] {
				continue
			}
			var candidates []string
			if hasUtility {
				ui, ok := uidx[it]
				if !ok {
					continue
				}
				candidates = opts.Policy.Utility[ui].Items
			} else {
				candidates = domain
			}
			isize := groups.size(it)
			for _, cand := range candidates {
				cgid, ok := groups.gid(cand)
				if !ok || cgid == igid || groups.dead[cgid] {
					continue
				}
				msize := isize + groups.size(cand)
				cost := pow2f(msize) * float64(gidSupport(published, cgid))
				if bestA == "" || cost < bestCost {
					bestA, bestB, bestCost = it, cand, cost
				}
			}
		}
		if bestA == "" {
			// No merge can help: suppress the rarest queryable item of
			// the constraint.
			victim := ""
			victimSup := -1
			for _, it := range c.Items {
				gi, ok := groups.gid(it)
				if !ok || groups.dead[gi] {
					continue
				}
				s := gidSupport(published, gi)
				if victim == "" || s < victimSup {
					victim, victimSup = it, s
				}
			}
			if victim == "" {
				break
			}
			groups.suppress(victim)
			continue
		}
		groups.merge(bestA, bestB)
		gens++
	}
	sw.Mark("cluster")

	mapping := groups.mapping()
	anon := generalize.ApplyItemMapping(ds, mapping)
	sw.Mark("recode")
	return &Result{
		Anonymized:      anon,
		Phases:          sw.Phases(),
		Mapping:         mapping,
		Suppressed:      groups.suppressed(),
		Generalizations: gens,
	}, nil
}
