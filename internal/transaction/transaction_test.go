package transaction

import (
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/hierarchy"
	"secreta/internal/policy"
	"secreta/internal/privacy"
)

func transData(t testing.TB, n, items int, seed int64) (*dataset.Dataset, *hierarchy.Hierarchy) {
	t.Helper()
	ds := gen.Census(gen.Config{Records: n, Items: items, Seed: seed})
	h, err := gen.ItemHierarchy(ds, 2)
	if err != nil {
		t.Fatal(err)
	}
	return ds, h
}

func TestAprioriEnforcesKM(t *testing.T) {
	ds, h := transData(t, 200, 30, 3)
	for _, k := range []int{2, 5, 10} {
		for _, m := range []int{1, 2} {
			res, err := Apriori(ds, Options{K: k, M: m, ItemHierarchy: h})
			if err != nil {
				t.Fatalf("k=%d m=%d: %v", k, m, err)
			}
			trs := privacy.Transactions(res.Anonymized, nil)
			if !privacy.IsKMAnonymous(trs, k, m) {
				t.Errorf("k=%d m=%d: output violates k^m-anonymity", k, m)
			}
			if res.Cut == nil {
				t.Error("Apriori returned no cut")
			}
		}
	}
}

func TestAprioriGeneralizesOnlyWhenNeeded(t *testing.T) {
	// All transactions identical: already k^m-anonymous; nothing changes.
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
	for i := 0; i < 5; i++ {
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: []string{"a", "b"}}); err != nil {
			t.Fatal(err)
		}
	}
	h, err := hierarchy.NewBuilder("T").
		Add("All", "a").Add("All", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Apriori(ds, Options{K: 5, M: 2, ItemHierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	if res.Generalizations != 0 {
		t.Errorf("generalizations = %d, want 0", res.Generalizations)
	}
	if got := res.Anonymized.Records[0].Items; len(got) != 2 || got[0] != "a" {
		t.Errorf("items changed: %v", got)
	}
}

func TestAprioriInfeasible(t *testing.T) {
	// Two distinct singleton transactions, k=5 > n: even the root item has
	// support 2 < k, and no further generalization exists.
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
	for _, it := range []string{"a", "b"} {
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: []string{it}}); err != nil {
			t.Fatal(err)
		}
	}
	h, err := hierarchy.NewBuilder("T").Add("All", "a").Add("All", "b").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apriori(ds, Options{K: 5, M: 1, ItemHierarchy: h}); err == nil {
		t.Error("infeasible instance accepted")
	}
}

func TestLRAEnforcesKMGlobally(t *testing.T) {
	ds, h := transData(t, 240, 24, 5)
	for _, parts := range []int{1, 2, 4} {
		res, err := LRA(ds, Options{K: 4, M: 2, ItemHierarchy: h, Partitions: parts})
		if err != nil {
			t.Fatalf("parts=%d: %v", parts, err)
		}
		trs := privacy.Transactions(res.Anonymized, nil)
		if !privacy.IsKMAnonymous(trs, 4, 2) {
			t.Errorf("parts=%d: output violates k^m-anonymity", parts)
		}
	}
}

func TestVPAEnforcesKM(t *testing.T) {
	ds, h := transData(t, 240, 24, 7)
	res, err := VPA(ds, Options{K: 4, M: 2, ItemHierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	trs := privacy.Transactions(res.Anonymized, nil)
	if !privacy.IsKMAnonymous(trs, 4, 2) {
		t.Error("VPA output violates k^m-anonymity")
	}
	// Explicit small partition count also works.
	res, err = VPA(ds, Options{K: 4, M: 2, ItemHierarchy: h, Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !privacy.IsKMAnonymous(privacy.Transactions(res.Anonymized, nil), 4, 2) {
		t.Error("VPA (2 parts) output violates k^m-anonymity")
	}
}

func TestHierarchyAlgosPreserveRelationalPart(t *testing.T) {
	ds, h := transData(t, 100, 16, 11)
	for name, run := range map[string]func(*dataset.Dataset, Options) (*Result, error){
		"Apriori": Apriori, "LRA": LRA, "VPA": VPA,
	} {
		res, err := run(ds, Options{K: 3, M: 2, ItemHierarchy: h})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for r := range ds.Records {
			for i := range ds.Records[r].Values {
				if res.Anonymized.Records[r].Values[i] != ds.Records[r].Values[i] {
					t.Fatalf("%s: relational values changed", name)
				}
			}
		}
	}
}

func TestCOATProtectsPolicy(t *testing.T) {
	ds, h := transData(t, 200, 20, 13)
	pol := &policy.Policy{
		Privacy: policy.PrivacyAllItems(ds),
		Utility: policy.UtilityFromHierarchy(h, 1),
	}
	for _, k := range []int{2, 5, 10} {
		res, err := COAT(ds, Options{K: k, Policy: pol})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ok, msg := PolicySatisfied(ds, res.Mapping, pol.Privacy, k)
		if !ok {
			t.Errorf("k=%d: %s", k, msg)
		}
	}
}

func TestCOATRespectsUtilityConstraints(t *testing.T) {
	ds, h := transData(t, 150, 16, 17)
	pol := &policy.Policy{
		Privacy: policy.PrivacyAllItems(ds),
		Utility: policy.UtilityFromHierarchy(h, 2),
	}
	res, err := COAT(ds, Options{K: 8, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	// Every published group must be a subset of one utility constraint.
	uidx := pol.UtilityIndex()
	groupOf := make(map[string][]string)
	for item, label := range res.Mapping {
		if label != "" {
			groupOf[label] = append(groupOf[label], item)
		}
	}
	for label, items := range groupOf {
		if len(items) == 1 {
			continue
		}
		want := uidx[items[0]]
		for _, it := range items[1:] {
			if uidx[it] != want {
				t.Fatalf("group %q mixes utility constraints", label)
			}
		}
	}
}

func TestCOATSuppressionFallback(t *testing.T) {
	// Singleton utility constraints forbid all merging: COAT must protect
	// rare items by suppression alone.
	ds, _ := transData(t, 100, 12, 19)
	pol := &policy.Policy{
		Privacy: policy.PrivacyAllItems(ds),
		Utility: policy.UtilitySingletons(ds),
	}
	res, err := COAT(ds, Options{K: 20, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	ok, msg := PolicySatisfied(ds, res.Mapping, pol.Privacy, 20)
	if !ok {
		t.Error(msg)
	}
	if len(res.Suppressed) == 0 {
		t.Error("no suppression despite strict policy")
	}
}

func TestPCTAProtectsPolicy(t *testing.T) {
	ds, _ := transData(t, 200, 20, 23)
	pol := &policy.Policy{Privacy: policy.PrivacyAllItems(ds)}
	for _, k := range []int{2, 5, 10} {
		res, err := PCTA(ds, Options{K: k, Policy: pol})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		ok, msg := PolicySatisfied(ds, res.Mapping, pol.Privacy, k)
		if !ok {
			t.Errorf("k=%d: %s", k, msg)
		}
	}
}

func TestPCTAWithFrequentConstraints(t *testing.T) {
	ds, _ := transData(t, 300, 24, 29)
	pol := &policy.Policy{Privacy: policy.PrivacyFrequent(ds, 2, 2)}
	res, err := PCTA(ds, Options{K: 5, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	ok, msg := PolicySatisfied(ds, res.Mapping, pol.Privacy, 5)
	if !ok {
		t.Error(msg)
	}
}

func TestOptionValidation(t *testing.T) {
	ds, h := transData(t, 50, 10, 31)
	pol := &policy.Policy{Privacy: policy.PrivacyAllItems(ds), Utility: policy.UtilityTop(ds)}
	if _, err := Apriori(ds, Options{K: 0, M: 2, ItemHierarchy: h}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Apriori(ds, Options{K: 2, M: 0, ItemHierarchy: h}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Apriori(ds, Options{K: 2, M: 2}); err == nil {
		t.Error("missing hierarchy accepted")
	}
	rel := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if _, err := Apriori(rel, Options{K: 2, M: 2, ItemHierarchy: h}); err == nil {
		t.Error("relational-only dataset accepted")
	}
	if _, err := COAT(ds, Options{K: 2}); err == nil {
		t.Error("COAT without policy accepted")
	}
	if _, err := COAT(ds, Options{K: 2, Policy: &policy.Policy{Privacy: pol.Privacy}}); err == nil {
		t.Error("COAT without utility policy accepted")
	}
	if _, err := PCTA(ds, Options{K: 2, Policy: &policy.Policy{}}); err == nil {
		t.Error("PCTA without privacy constraints accepted")
	}
	// Hierarchy that misses items in the data.
	tiny, err := hierarchy.NewBuilder("T").Add("All", "i0000").Add("All", "zzz").Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apriori(ds, Options{K: 2, M: 1, ItemHierarchy: tiny}); err == nil {
		t.Error("incomplete hierarchy accepted")
	}
}

func TestGroupTable(t *testing.T) {
	g := newGroupTable([]string{"a", "b", "c"})
	if g.label("a") != "a" || g.size("a") != 1 {
		t.Error("initial state wrong")
	}
	g.merge("a", "b")
	if g.label("a") != "(a,b)" || g.label("b") != "(a,b)" || g.size("a") != 2 {
		t.Errorf("after merge: %q %q", g.label("a"), g.label("b"))
	}
	// Merging again is a no-op.
	g.merge("b", "a")
	if g.size("a") != 2 {
		t.Error("self-merge changed group")
	}
	g.suppress("c")
	if g.label("c") != "" {
		t.Error("suppressed label not empty")
	}
	if got := g.suppressed(); len(got) != 1 || got[0] != "c" {
		t.Errorf("suppressed = %v", got)
	}
	m := g.mapping()
	if m["a"] != "(a,b)" || m["c"] != "" {
		t.Errorf("mapping = %v", m)
	}
}

func TestUtilityOrderingCOATvsApriori(t *testing.T) {
	// With a permissive utility policy COAT should suppress little and
	// retain more per-item precision than full-domain-ish Apriori cuts at
	// the same k; we check the weaker, shape-level property that both
	// protect their targets while COAT keeps at least as many distinct
	// published labels.
	ds, h := transData(t, 300, 24, 37)
	ap, err := Apriori(ds, Options{K: 10, M: 1, ItemHierarchy: h})
	if err != nil {
		t.Fatal(err)
	}
	pol := &policy.Policy{Privacy: policy.PrivacyAllItems(ds), Utility: policy.UtilityTop(ds)}
	co, err := COAT(ds, Options{K: 10, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	distinct := func(d *dataset.Dataset) int {
		seen := make(map[string]bool)
		for r := range d.Records {
			for _, it := range d.Records[r].Items {
				seen[it] = true
			}
		}
		return len(seen)
	}
	if distinct(co.Anonymized) < distinct(ap.Anonymized) {
		t.Logf("note: COAT published %d labels, Apriori %d (allowed, but unusual)",
			distinct(co.Anonymized), distinct(ap.Anonymized))
	}
}
