package dataset

import (
	"reflect"
	"testing"
)

func sourceFixture(t *testing.T) *Dataset {
	t.Helper()
	ds := New([]Attribute{{Name: "Age", Kind: Numeric}, {Name: "Sex", Kind: Categorical}}, "Items")
	rows := []Record{
		{Values: []string{"25", "M"}, Items: []string{"b", "a"}},
		{Values: []string{"30", "F"}},
		{Values: []string{"25", "F"}, Items: []string{"c"}},
	}
	for _, r := range rows {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// collect deep-copies every record a source yields (the contract allows
// slice reuse between callbacks).
func collect(src RecordSource) []Record {
	var out []Record
	src.ScanRecords(func(i int, rec Record) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// TestRecordSourceIndexedMatchesDataset pins the streaming contract: the
// Indexed source yields exactly the records of the dataset it was interned
// from, in order, with an identical schema — and stays replayable.
func TestRecordSourceIndexedMatchesDataset(t *testing.T) {
	ds := sourceFixture(t)
	ix := Intern(ds)
	for _, src := range []RecordSource{ds, ix} {
		attrs, trans := src.SourceSchema()
		if !reflect.DeepEqual(attrs, ds.Attrs) || trans != ds.TransName {
			t.Fatalf("schema mismatch: %v/%q", attrs, trans)
		}
		if src.NumRecords() != len(ds.Records) {
			t.Fatalf("NumRecords = %d, want %d", src.NumRecords(), len(ds.Records))
		}
		// Two scans must agree (replayability).
		first, second := collect(src), collect(src)
		if !reflect.DeepEqual(first, ds.Records) {
			t.Fatalf("scan diverges from records:\ngot  %v\nwant %v", first, ds.Records)
		}
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("second scan diverges: %v vs %v", first, second)
		}
	}
}

// TestRecordSourceEarlyStop checks that returning false stops the scan.
func TestRecordSourceEarlyStop(t *testing.T) {
	ds := sourceFixture(t)
	for _, src := range []RecordSource{ds, Intern(ds)} {
		n := 0
		src.ScanRecords(func(i int, rec Record) bool {
			n++
			return false
		})
		if n != 1 {
			t.Fatalf("scan visited %d records after stop, want 1", n)
		}
	}
}

// TestIndexedScanAllocs pins that streaming from the interned form does
// not allocate per record (the whole point of skipping Materialize): the
// scratch slices are reused across the scan.
func TestIndexedScanAllocs(t *testing.T) {
	ds := sourceFixture(t)
	for i := 0; i < 200; i++ {
		ds.AddRecord(Record{Values: []string{"40", "M"}, Items: []string{"a", "c"}})
	}
	ix := Intern(ds)
	allocs := testing.AllocsPerRun(10, func() {
		ix.ScanRecords(func(i int, rec Record) bool { return true })
	})
	// Two scratch slices per scan; the loop body must not allocate.
	if allocs > 4 {
		t.Fatalf("ScanRecords allocates %.0f times per scan, want <= 4", allocs)
	}
}
