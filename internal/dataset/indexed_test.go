package dataset

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

func TestInternerRanked(t *testing.T) {
	in := Ranked([]string{"b", "a", "c", "b", "a"})
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	// Rank interning: ID order == string order.
	for i, want := range []string{"a", "b", "c"} {
		if got := in.Value(uint32(i)); got != want {
			t.Errorf("Value(%d) = %q, want %q", i, got, want)
		}
		id, ok := in.ID(want)
		if !ok || id != uint32(i) {
			t.Errorf("ID(%q) = %d,%v, want %d", want, id, ok, i)
		}
	}
	if _, ok := in.ID("zzz"); ok {
		t.Error("unknown value resolved")
	}
}

func TestInternerFirstSeen(t *testing.T) {
	in := NewInterner()
	if id := in.Intern("x"); id != 0 {
		t.Fatalf("first ID = %d", id)
	}
	if id := in.Intern("y"); id != 1 {
		t.Fatalf("second ID = %d", id)
	}
	if id := in.Intern("x"); id != 0 {
		t.Fatalf("re-intern changed ID: %d", id)
	}
}

// TestIndexedRoundTrip is the core equivalence property: Intern followed
// by Materialize reproduces the dataset exactly, for random mixes of
// relational values, baskets, empty baskets and duplicate values.
func TestIndexedRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nAttrs := 1 + rng.Intn(4)
		attrs := make([]Attribute, nAttrs)
		for a := range attrs {
			attrs[a] = Attribute{Name: fmt.Sprintf("A%d", a), Kind: Categorical}
		}
		trans := ""
		if seed%2 == 0 {
			trans = "Items"
		}
		ds := New(attrs, trans)
		for r := 0; r < 1+rng.Intn(60); r++ {
			rec := Record{Values: make([]string, nAttrs)}
			for a := range attrs {
				rec.Values[a] = fmt.Sprintf("v%d", rng.Intn(6))
			}
			if trans != "" {
				for i := rng.Intn(5); i > 0; i-- {
					rec.Items = append(rec.Items, fmt.Sprintf("i%d", rng.Intn(9)))
				}
			}
			if err := ds.AddRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		back := Intern(ds).Materialize()
		if !reflect.DeepEqual(ds, back) {
			t.Fatalf("seed %d: round trip diverged:\n got %+v\nwant %+v", seed, back, ds)
		}
	}
}

// TestIndexedRankOrder pins the ordering property the signature and
// violation hot paths rely on: within a column (and within the item
// dictionary), comparing IDs is comparing strings.
func TestIndexedRankOrder(t *testing.T) {
	ds := New([]Attribute{{Name: "A", Kind: Categorical}}, "T")
	vals := []string{"delta", "alpha", "bravo", "alpha", "charlie"}
	for i, v := range vals {
		if err := ds.AddRecord(Record{Values: []string{v}, Items: []string{vals[len(vals)-1-i]}}); err != nil {
			t.Fatal(err)
		}
	}
	ix := Intern(ds)
	for r1 := 0; r1 < ix.N; r1++ {
		for r2 := 0; r2 < ix.N; r2++ {
			idLess := ix.Cols[0][r1] < ix.Cols[0][r2]
			strLess := ds.Records[r1].Values[0] < ds.Records[r2].Values[0]
			if idLess != strLess {
				t.Fatalf("rank order broken: %q vs %q", ds.Records[r1].Values[0], ds.Records[r2].Values[0])
			}
		}
	}
	// Baskets come back as ascending IDs.
	for r := range ix.Items {
		ids := ix.Items[r]
		if !sort.SliceIsSorted(ids, func(a, b int) bool { return ids[a] < ids[b] }) {
			t.Fatalf("record %d items not ascending: %v", r, ids)
		}
	}
}

func TestInternColumnsSubset(t *testing.T) {
	ds := New([]Attribute{{Name: "A"}, {Name: "B"}, {Name: "C"}}, "")
	for i := 0; i < 5; i++ {
		if err := ds.AddRecord(Record{Values: []string{fmt.Sprint(i % 2), fmt.Sprint(i % 3), "x"}}); err != nil {
			t.Fatal(err)
		}
	}
	cols, dicts := InternColumns(ds, []int{2, 0})
	if len(cols) != 2 || len(dicts) != 2 {
		t.Fatalf("got %d cols, %d dicts", len(cols), len(dicts))
	}
	if dicts[0].Len() != 1 || dicts[1].Len() != 2 {
		t.Fatalf("dict sizes = %d, %d", dicts[0].Len(), dicts[1].Len())
	}
	for r := range cols[0] {
		if got := dicts[0].Value(cols[0][r]); got != "x" {
			t.Fatalf("col 0 rec %d = %q", r, got)
		}
		if got := dicts[1].Value(cols[1][r]); got != ds.Records[r].Values[0] {
			t.Fatalf("col 1 rec %d = %q, want %q", r, got, ds.Records[r].Values[0])
		}
	}
}
