package dataset

import "testing"

func fpDataset(t *testing.T, records []Record) *Dataset {
	t.Helper()
	ds := New([]Attribute{{Name: "A", Kind: Categorical}}, "T")
	for _, r := range records {
		if err := ds.AddRecord(r); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	a := fpDataset(t, []Record{{Values: []string{"x"}, Items: []string{"i"}}})
	b := fpDataset(t, []Record{{Values: []string{"x"}, Items: []string{"i"}}})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal datasets fingerprint differently")
	}
	c := fpDataset(t, []Record{{Values: []string{"y"}, Items: []string{"i"}}})
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("different values share a fingerprint")
	}
}

// TestFingerprintFramingInjective pins the encoding against framing
// collisions: values and items containing would-be separator strings must
// not let two different datasets serialize identically, since the engine
// cache would then serve one dataset's results for the other.
func TestFingerprintFramingInjective(t *testing.T) {
	a := fpDataset(t, []Record{
		{Values: []string{"v"}, Items: []string{"!", ";"}},
		{Values: []string{"|"}, Items: nil},
	})
	b := fpDataset(t, []Record{
		{Values: []string{"v"}, Items: []string{"!"}},
		{Values: []string{";"}, Items: []string{"|"}},
	})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("datasets with shifted value/item framing collide")
	}
	// Moving an item across a record boundary must also change the hash.
	c := fpDataset(t, []Record{
		{Values: []string{"v"}, Items: []string{"i", "j"}},
		{Values: []string{"w"}, Items: nil},
	})
	d := fpDataset(t, []Record{
		{Values: []string{"v"}, Items: []string{"i"}},
		{Values: []string{"w"}, Items: []string{"j"}},
	})
	if c.Fingerprint() == d.Fingerprint() {
		t.Fatal("item moved across records does not change the fingerprint")
	}
}
