package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON serialization: the Data Export Module's second dataset format.
// Schema and rows are explicit so the file is self-describing:
//
//	{
//	  "attributes": [{"name":"Age","kind":"numeric"}, ...],
//	  "transaction": "Items",
//	  "records": [{"values":["25","M"],"items":["a","b"]}, ...]
//	}

type jsonAttr struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
}

type jsonRecord struct {
	Values []string `json:"values"`
	Items  []string `json:"items,omitempty"`
}

type jsonDataset struct {
	Attributes  []jsonAttr   `json:"attributes"`
	Transaction string       `json:"transaction,omitempty"`
	Records     []jsonRecord `json:"records"`
}

// WriteJSON serializes the dataset as indented JSON.
func (d *Dataset) WriteJSON(w io.Writer) error {
	out := jsonDataset{Transaction: d.TransName}
	for _, a := range d.Attrs {
		out.Attributes = append(out.Attributes, jsonAttr{Name: a.Name, Kind: a.Kind.String()})
	}
	for i := range d.Records {
		out.Records = append(out.Records, jsonRecord{
			Values: d.Records[i].Values,
			Items:  d.Records[i].Items,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a dataset from the JSON format written by WriteJSON.
func ReadJSON(r io.Reader) (*Dataset, error) {
	var in jsonDataset
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("dataset: decoding JSON: %w", err)
	}
	if len(in.Attributes) == 0 {
		return nil, fmt.Errorf("dataset: JSON has no attributes")
	}
	attrs := make([]Attribute, len(in.Attributes))
	for i, a := range in.Attributes {
		kind, err := ParseKind(a.Kind)
		if err != nil {
			return nil, fmt.Errorf("dataset: attribute %q: %w", a.Name, err)
		}
		if kind == Transaction {
			return nil, fmt.Errorf("dataset: attribute %q: transaction kind belongs in the top-level field", a.Name)
		}
		attrs[i] = Attribute{Name: a.Name, Kind: kind}
	}
	ds := New(attrs, in.Transaction)
	for i, r := range in.Records {
		if err := ds.AddRecord(Record{Values: r.Values, Items: r.Items}); err != nil {
			return nil, fmt.Errorf("dataset: JSON record %d: %w", i, err)
		}
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

// SaveJSONFile writes the dataset to a JSON file path.
func (d *Dataset) SaveJSONFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONFile reads a dataset from a JSON file path.
func LoadJSONFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSON(f)
}
