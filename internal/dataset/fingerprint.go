package dataset

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
)

// Fingerprint returns a content hash of the dataset: schema, transaction
// attribute, and every record in order. Two datasets with the same
// fingerprint hold the same data, so the engine's result cache can key on
// it. Every string is length-prefixed and every list is count-prefixed,
// making the encoding injective — no two distinct datasets serialize to
// the same byte stream. The hash is recomputed on every call — datasets
// are editable, so callers that need stability across mutations must
// fingerprint again.
func (d *Dataset) Fingerprint() string {
	h := sha256.New()
	writeLen := func(n int) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], uint32(n))
		h.Write(b[:])
	}
	writeStr := func(s string) {
		writeLen(len(s))
		h.Write([]byte(s))
	}
	writeLen(len(d.Attrs))
	for _, a := range d.Attrs {
		writeStr(a.Name)
		writeStr(a.Kind.String())
	}
	writeStr(d.TransName)
	writeLen(len(d.Records))
	for i := range d.Records {
		writeLen(len(d.Records[i].Values))
		for _, v := range d.Records[i].Values {
			writeStr(v)
		}
		writeLen(len(d.Records[i].Items))
		for _, it := range d.Records[i].Items {
			writeStr(it)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
