package dataset

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Attrs, back.Attrs) || ds.TransName != back.TransName {
		t.Errorf("schema mismatch: %+v vs %+v", ds.Attrs, back.Attrs)
	}
	if !reflect.DeepEqual(ds.Records, back.Records) {
		t.Error("records mismatch after JSON round-trip")
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	ds := sample()
	path := filepath.Join(t.TempDir(), "ds.json")
	if err := ds.SaveJSONFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Errorf("Len = %d, want %d", back.Len(), ds.Len())
	}
	if _, err := LoadJSONFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":        "{",
		"no attributes":  `{"records":[]}`,
		"bad kind":       `{"attributes":[{"name":"A","kind":"bogus"}],"records":[]}`,
		"trans kind":     `{"attributes":[{"name":"A","kind":"transaction"}],"records":[]}`,
		"bad arity":      `{"attributes":[{"name":"A","kind":"categorical"}],"records":[{"values":["1","2"]}]}`,
		"unknown fields": `{"attributes":[{"name":"A","kind":"categorical"}],"bogus":1,"records":[]}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONItemsNormalized(t *testing.T) {
	in := `{"attributes":[{"name":"A","kind":"categorical"}],"transaction":"T",
	  "records":[{"values":["x"],"items":["b","a","b"]}]}`
	ds, err := ReadJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Records[0].Items, []string{"a", "b"}) {
		t.Errorf("items = %v", ds.Records[0].Items)
	}
}
