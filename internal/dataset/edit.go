package dataset

import "fmt"

// Editing operations backing the Dataset Editor pane: rename attributes,
// add/delete rows and columns, and rewrite individual cells.

// RenameAttribute changes the name of a relational attribute or of the
// transaction attribute.
func (d *Dataset) RenameAttribute(oldName, newName string) error {
	if newName == "" {
		return fmt.Errorf("dataset: new attribute name is empty")
	}
	if d.AttrIndex(newName) >= 0 || d.TransName == newName {
		return fmt.Errorf("dataset: attribute %q already exists", newName)
	}
	if d.TransName == oldName {
		d.TransName = newName
		return nil
	}
	i := d.AttrIndex(oldName)
	if i < 0 {
		return fmt.Errorf("dataset: no attribute named %q", oldName)
	}
	d.Attrs[i].Name = newName
	return nil
}

// AddAttribute appends a relational column, filling every existing record
// with defaultValue.
func (d *Dataset) AddAttribute(attr Attribute, defaultValue string) error {
	if attr.Kind == Transaction {
		return fmt.Errorf("dataset: cannot add a transaction attribute as a relational column")
	}
	if attr.Name == "" {
		return fmt.Errorf("dataset: attribute name is empty")
	}
	if d.AttrIndex(attr.Name) >= 0 || d.TransName == attr.Name {
		return fmt.Errorf("dataset: attribute %q already exists", attr.Name)
	}
	d.Attrs = append(d.Attrs, attr)
	for i := range d.Records {
		d.Records[i].Values = append(d.Records[i].Values, defaultValue)
	}
	return nil
}

// DeleteAttribute removes a relational column and its values from all
// records.
func (d *Dataset) DeleteAttribute(name string) error {
	i := d.AttrIndex(name)
	if i < 0 {
		return fmt.Errorf("dataset: no attribute named %q", name)
	}
	d.Attrs = append(d.Attrs[:i], d.Attrs[i+1:]...)
	for j := range d.Records {
		v := d.Records[j].Values
		d.Records[j].Values = append(v[:i], v[i+1:]...)
	}
	return nil
}

// DeleteRecord removes the record at index i.
func (d *Dataset) DeleteRecord(i int) error {
	if i < 0 || i >= len(d.Records) {
		return fmt.Errorf("dataset: record index %d out of range [0,%d)", i, len(d.Records))
	}
	d.Records = append(d.Records[:i], d.Records[i+1:]...)
	return nil
}

// SetValue rewrites the cell (record, attribute name).
func (d *Dataset) SetValue(rec int, attrName, value string) error {
	if rec < 0 || rec >= len(d.Records) {
		return fmt.Errorf("dataset: record index %d out of range [0,%d)", rec, len(d.Records))
	}
	i := d.AttrIndex(attrName)
	if i < 0 {
		return fmt.Errorf("dataset: no attribute named %q", attrName)
	}
	d.Records[rec].Values[i] = value
	return nil
}

// SetItems replaces the transaction item set of a record; the items are
// normalized (sorted, deduplicated).
func (d *Dataset) SetItems(rec int, items []string) error {
	if !d.HasTransaction() {
		return fmt.Errorf("dataset: dataset has no transaction attribute")
	}
	if rec < 0 || rec >= len(d.Records) {
		return fmt.Errorf("dataset: record index %d out of range [0,%d)", rec, len(d.Records))
	}
	d.Records[rec].Items = normalizeItems(items)
	return nil
}

// ReplaceValue substitutes every occurrence of old with new in the named
// relational attribute and returns the number of rewritten cells.
func (d *Dataset) ReplaceValue(attrName, old, new string) (int, error) {
	i := d.AttrIndex(attrName)
	if i < 0 {
		return 0, fmt.Errorf("dataset: no attribute named %q", attrName)
	}
	n := 0
	for j := range d.Records {
		if d.Records[j].Values[i] == old {
			d.Records[j].Values[i] = new
			n++
		}
	}
	return n, nil
}

// ReplaceItem substitutes every occurrence of item old with new across all
// transaction parts and returns the number of affected records.
func (d *Dataset) ReplaceItem(old, new string) (int, error) {
	if !d.HasTransaction() {
		return 0, fmt.Errorf("dataset: dataset has no transaction attribute")
	}
	n := 0
	for j := range d.Records {
		changed := false
		for k, it := range d.Records[j].Items {
			if it == old {
				d.Records[j].Items[k] = new
				changed = true
			}
		}
		if changed {
			d.Records[j].Items = normalizeItems(d.Records[j].Items)
			n++
		}
	}
	return n, nil
}
