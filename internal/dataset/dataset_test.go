package dataset

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sample() *Dataset {
	ds := New([]Attribute{
		{Name: "Age", Kind: Numeric},
		{Name: "Gender", Kind: Categorical},
	}, "Items")
	recs := []Record{
		{Values: []string{"25", "M"}, Items: []string{"b", "a"}},
		{Values: []string{"31", "F"}, Items: []string{"a"}},
		{Values: []string{"25", "F"}, Items: []string{"c", "a", "c"}},
		{Values: []string{"47", "M"}, Items: nil},
	}
	for _, r := range recs {
		if err := ds.AddRecord(r); err != nil {
			panic(err)
		}
	}
	return ds
}

func TestAddRecordNormalizesItems(t *testing.T) {
	ds := sample()
	if got := ds.Records[0].Items; !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("items not sorted: %v", got)
	}
	if got := ds.Records[2].Items; !reflect.DeepEqual(got, []string{"a", "c"}) {
		t.Errorf("items not deduplicated: %v", got)
	}
}

func TestAddRecordArityMismatch(t *testing.T) {
	ds := sample()
	if err := ds.AddRecord(Record{Values: []string{"1"}}); err == nil {
		t.Fatal("want arity error, got nil")
	}
}

func TestAddRecordItemsWithoutTransaction(t *testing.T) {
	ds := New([]Attribute{{Name: "A"}}, "")
	if err := ds.AddRecord(Record{Values: []string{"x"}, Items: []string{"i"}}); err == nil {
		t.Fatal("want error for items without transaction attribute")
	}
}

func TestAttrIndexAndNames(t *testing.T) {
	ds := sample()
	if got := ds.AttrIndex("Gender"); got != 1 {
		t.Errorf("AttrIndex(Gender) = %d, want 1", got)
	}
	if got := ds.AttrIndex("missing"); got != -1 {
		t.Errorf("AttrIndex(missing) = %d, want -1", got)
	}
	if got := ds.AttrNames(); !reflect.DeepEqual(got, []string{"Age", "Gender"}) {
		t.Errorf("AttrNames = %v", got)
	}
}

func TestQIIndices(t *testing.T) {
	ds := sample()
	all, err := ds.QIIndices(nil)
	if err != nil || !reflect.DeepEqual(all, []int{0, 1}) {
		t.Errorf("QIIndices(nil) = %v, %v", all, err)
	}
	one, err := ds.QIIndices([]string{"Gender"})
	if err != nil || !reflect.DeepEqual(one, []int{1}) {
		t.Errorf("QIIndices(Gender) = %v, %v", one, err)
	}
	if _, err := ds.QIIndices([]string{"nope"}); err == nil {
		t.Error("want error for unknown QI name")
	}
}

func TestDomainNumericSort(t *testing.T) {
	ds := sample()
	if got := ds.Domain(0); !reflect.DeepEqual(got, []string{"25", "31", "47"}) {
		t.Errorf("numeric domain = %v", got)
	}
	if got := ds.Domain(1); !reflect.DeepEqual(got, []string{"F", "M"}) {
		t.Errorf("categorical domain = %v", got)
	}
}

func TestItemDomain(t *testing.T) {
	ds := sample()
	if got := ds.ItemDomain(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("ItemDomain = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	ds := sample()
	cp := ds.Clone()
	cp.Records[0].Values[0] = "99"
	cp.Records[0].Items[0] = "z"
	if ds.Records[0].Values[0] != "25" || ds.Records[0].Items[0] != "a" {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	ds := sample()
	if err := ds.Validate(); err != nil {
		t.Fatalf("valid dataset rejected: %v", err)
	}
	ds.Records[0].Items = []string{"b", "a"}
	if err := ds.Validate(); err == nil {
		t.Error("unsorted items not caught")
	}
	ds = sample()
	ds.Records[1].Values = ds.Records[1].Values[:1]
	if err := ds.Validate(); err == nil {
		t.Error("arity corruption not caught")
	}
}

func TestValidateDuplicateAttr(t *testing.T) {
	ds := New([]Attribute{{Name: "A"}, {Name: "A"}}, "")
	if err := ds.Validate(); err == nil {
		t.Error("duplicate attribute names not caught")
	}
	ds = New([]Attribute{{Name: "A"}}, "A")
	if err := ds.Validate(); err == nil {
		t.Error("transaction/relational name collision not caught")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf, Options{}); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	back, err := ReadCSV(&buf, Options{})
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if !reflect.DeepEqual(ds.Attrs, back.Attrs) || ds.TransName != back.TransName {
		t.Errorf("schema mismatch after round-trip: %+v vs %+v", ds.Attrs, back.Attrs)
	}
	if !reflect.DeepEqual(ds.Records, back.Records) {
		t.Errorf("records mismatch after round-trip")
	}
}

func TestReadCSVDetectKinds(t *testing.T) {
	in := "Age,City\n25,Athens\n31,Patras\n"
	ds, err := ReadCSV(strings.NewReader(in), Options{DetectKinds: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attrs[0].Kind != Numeric || ds.Attrs[1].Kind != Categorical {
		t.Errorf("kinds = %v,%v", ds.Attrs[0].Kind, ds.Attrs[1].Kind)
	}
}

func TestReadCSVTransAttrOption(t *testing.T) {
	in := "Age,Basket\n25,a b c\n31,b\n"
	ds, err := ReadCSV(strings.NewReader(in), Options{TransAttr: "Basket"})
	if err != nil {
		t.Fatal(err)
	}
	if ds.TransName != "Basket" {
		t.Fatalf("TransName = %q", ds.TransName)
	}
	if !reflect.DeepEqual(ds.Records[0].Items, []string{"a", "b", "c"}) {
		t.Errorf("items = %v", ds.Records[0].Items)
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"ragged row":     "A,B\n1\n",
		"bad kind":       "A:bogus\n1\n",
		"two trans cols": "A:transaction,B:transaction\nx,y\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), Options{}); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
}

func TestHistogram(t *testing.T) {
	ds := sample()
	h := ds.Histogram(1)
	want := []Frequency{{"F", 2}, {"M", 2}}
	if !reflect.DeepEqual(h, want) {
		t.Errorf("Histogram = %v, want %v", h, want)
	}
	ih := ds.ItemHistogram()
	if ih[0].Value != "a" || ih[0].Count != 3 {
		t.Errorf("ItemHistogram[0] = %v", ih[0])
	}
}

func TestSummarize(t *testing.T) {
	ds := sample()
	s, err := ds.Summarize(0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Min != 25 || s.Max != 47 || s.Count != 4 {
		t.Errorf("summary = %+v", s)
	}
	if s.Median != 28 { // (25+31)/2
		t.Errorf("median = %v, want 28", s.Median)
	}
	if _, err := ds.Summarize(1); err == nil {
		t.Error("Summarize on categorical should fail")
	}
}

func TestSummarizeTransactions(t *testing.T) {
	ds := sample()
	st := ds.SummarizeTransactions()
	if st.DistinctItems != 3 || st.Occurrences != 5 || st.MinSize != 0 || st.MaxSize != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEditOperations(t *testing.T) {
	ds := sample()
	if err := ds.RenameAttribute("Age", "YearsOld"); err != nil {
		t.Fatal(err)
	}
	if ds.AttrIndex("YearsOld") != 0 {
		t.Error("rename did not apply")
	}
	if err := ds.RenameAttribute("Items", "Basket"); err != nil {
		t.Fatal(err)
	}
	if ds.TransName != "Basket" {
		t.Error("transaction rename did not apply")
	}
	if err := ds.RenameAttribute("Gender", "Basket"); err == nil {
		t.Error("rename collision not caught")
	}
	if err := ds.AddAttribute(Attribute{Name: "Zip"}, "00000"); err != nil {
		t.Fatal(err)
	}
	if ds.Records[0].Values[2] != "00000" {
		t.Error("AddAttribute default not applied")
	}
	if err := ds.DeleteAttribute("Zip"); err != nil {
		t.Fatal(err)
	}
	if len(ds.Records[0].Values) != 2 {
		t.Error("DeleteAttribute did not shrink records")
	}
	if err := ds.SetValue(0, "Gender", "F"); err != nil {
		t.Fatal(err)
	}
	if ds.Records[0].Values[1] != "F" {
		t.Error("SetValue did not apply")
	}
	if err := ds.SetItems(0, []string{"z", "y", "z"}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ds.Records[0].Items, []string{"y", "z"}) {
		t.Error("SetItems did not normalize")
	}
	n := ds.Len()
	if err := ds.DeleteRecord(0); err != nil || ds.Len() != n-1 {
		t.Error("DeleteRecord failed")
	}
	if err := ds.DeleteRecord(99); err == nil {
		t.Error("out-of-range DeleteRecord not caught")
	}
}

func TestReplaceValueAndItem(t *testing.T) {
	ds := sample()
	n, err := ds.ReplaceValue("Gender", "M", "Male")
	if err != nil || n != 2 {
		t.Fatalf("ReplaceValue = %d, %v", n, err)
	}
	n, err = ds.ReplaceItem("a", "alpha")
	if err != nil || n != 3 {
		t.Fatalf("ReplaceItem = %d, %v", n, err)
	}
	for _, r := range ds.Records {
		for _, it := range r.Items {
			if it == "a" {
				t.Fatal("item a survived ReplaceItem")
			}
		}
	}
}

func TestParseKind(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kind
	}{{"categorical", Categorical}, {"NUMERIC", Numeric}, {"t", Transaction}, {" set ", Transaction}} {
		got, err := ParseKind(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseKind(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseKind("whatever"); err == nil {
		t.Error("bad kind accepted")
	}
}

// Property: normalizeItems is idempotent and always yields a sorted,
// duplicate-free slice, for arbitrary inputs.
func TestNormalizeItemsProperty(t *testing.T) {
	f := func(items []string) bool {
		once := normalizeItems(append([]string(nil), items...))
		twice := normalizeItems(append([]string(nil), once...))
		if !reflect.DeepEqual(once, twice) {
			return false
		}
		for i := 1; i < len(once); i++ {
			if once[i] <= once[i-1] {
				return false
			}
		}
		for _, it := range once {
			if it == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round-trip preserves arbitrary datasets with restricted
// alphabets (values without separators).
func TestCSVRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	alpha := []string{"a", "b", "c", "dd", "ee", "f1", "g2"}
	for trial := 0; trial < 50; trial++ {
		ds := New([]Attribute{{Name: "X", Kind: Categorical}, {Name: "Y", Kind: Numeric}}, "T")
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			items := make([]string, rng.Intn(4))
			for j := range items {
				items[j] = alpha[rng.Intn(len(alpha))]
			}
			rec := Record{Values: []string{alpha[rng.Intn(len(alpha))], "42"}, Items: items}
			if err := ds.AddRecord(rec); err != nil {
				t.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := ds.WriteCSV(&buf, Options{}); err != nil {
			t.Fatal(err)
		}
		back, err := ReadCSV(&buf, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ds.Records, back.Records) {
			t.Fatalf("trial %d: round-trip mismatch", trial)
		}
	}
}
