package dataset

import "sort"

// Interner maps strings to dense uint32 IDs and back. The zero-alloc hot
// paths of the anonymization algorithms (partition signatures, k^m support
// counting, cut mapping) run on these IDs instead of the strings
// themselves: IDs pack into fixed-width keys, index straight into arrays,
// and compare in one instruction.
//
// An interner built by Ranked assigns IDs in ascending string order, so
// comparing IDs (or byte-packed ID tuples) orders exactly like comparing
// the underlying strings — the property the deterministic signature and
// violation orderings rely on.
type Interner struct {
	ids  map[string]uint32
	vals []string
}

// NewInterner returns an empty interner that assigns IDs in first-seen
// order.
func NewInterner() *Interner {
	return &Interner{ids: make(map[string]uint32)}
}

// Ranked builds an interner over the distinct strings of values with IDs
// assigned in ascending string order (rank interning). values may contain
// duplicates and need not be sorted.
func Ranked(values []string) *Interner {
	seen := make(map[string]struct{}, len(values))
	for _, v := range values {
		seen[v] = struct{}{}
	}
	distinct := make([]string, 0, len(seen))
	for v := range seen {
		distinct = append(distinct, v)
	}
	sort.Strings(distinct)
	in := &Interner{ids: make(map[string]uint32, len(distinct)), vals: distinct}
	for i, v := range distinct {
		in.ids[v] = uint32(i)
	}
	return in
}

// Intern returns the ID of v, assigning the next dense ID when v is new.
func (in *Interner) Intern(v string) uint32 {
	if id, ok := in.ids[v]; ok {
		return id
	}
	id := uint32(len(in.vals))
	in.ids[v] = id
	in.vals = append(in.vals, v)
	return id
}

// Rank returns a rank-ordered copy of the interner (IDs reassigned in
// ascending string order) and the old-ID -> new-ID permutation. Building
// first-seen and ranking afterwards costs one map operation per input
// value plus a sort of the distinct values — half the map traffic of
// interning twice.
func (in *Interner) Rank() (*Interner, []uint32) {
	order := make([]int, len(in.vals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return in.vals[order[a]] < in.vals[order[b]] })
	ranked := &Interner{ids: make(map[string]uint32, len(in.vals)), vals: make([]string, len(in.vals))}
	perm := make([]uint32, len(in.vals))
	for newID, oldID := range order {
		v := in.vals[oldID]
		ranked.vals[newID] = v
		ranked.ids[v] = uint32(newID)
		perm[oldID] = uint32(newID)
	}
	return ranked, perm
}

// ID returns the ID of v and whether v has been interned.
func (in *Interner) ID(v string) (uint32, bool) {
	id, ok := in.ids[v]
	return id, ok
}

// Value returns the string behind an ID; the ID must have been issued by
// this interner.
func (in *Interner) Value(id uint32) string { return in.vals[id] }

// Len returns the number of interned strings (== the smallest unissued ID).
func (in *Interner) Len() int { return len(in.vals) }

// Values returns the interned strings indexed by ID. The slice is the
// interner's backing storage — callers must not mutate it.
func (in *Interner) Values() []string { return in.vals }

// Indexed is the interned, column-major view of a Dataset: every QI value
// and transaction item is a dense uint32, records are columns of int
// slices, and baskets are sorted ID lists. Algorithms run their hot loops
// on this representation; strings survive only at the I/O edges
// (Materialize, the per-attribute Dicts).
type Indexed struct {
	// Attrs and TransName mirror the source dataset's schema.
	Attrs     []Attribute
	TransName string
	// N is the number of records.
	N int
	// Cols holds the relational values column-major: Cols[a][r] is the ID
	// of record r's value of attribute a, resolvable through Dicts[a].
	Cols [][]uint32
	// Dicts are the per-attribute rank interners: within one attribute,
	// ID order equals string order.
	Dicts []*Interner
	// Items holds each record's basket as ascending item IDs (nil for an
	// empty basket), resolvable through ItemDict. Because ItemDict is
	// rank-built, the ID order matches the sorted item strings.
	Items [][]uint32
	// ItemDict interns the transaction item domain.
	ItemDict *Interner
}

// Intern builds the columnar view of d. The dataset is not retained;
// Materialize reconstructs an equal dataset.
func Intern(d *Dataset) *Indexed {
	ix := &Indexed{
		Attrs:     append([]Attribute(nil), d.Attrs...),
		TransName: d.TransName,
		N:         len(d.Records),
	}
	cols, dicts := InternColumns(d, nil)
	ix.Cols, ix.Dicts = cols, dicts
	if d.HasTransaction() {
		dict := NewInterner()
		ix.Items = make([][]uint32, len(d.Records))
		for r := range d.Records {
			rec := d.Records[r].Items
			if len(rec) == 0 {
				continue
			}
			ids := make([]uint32, len(rec))
			for i, it := range rec {
				ids[i] = dict.Intern(it)
			}
			ix.Items[r] = ids
		}
		ranked, perm := dict.Rank()
		ix.ItemDict = ranked
		for r := range ix.Items {
			ids := ix.Items[r]
			for i := range ids {
				ids[i] = perm[ids[i]]
			}
			// Baskets are name-sorted, so rank remapping keeps them
			// ascending.
		}
	}
	return ix
}

// InternColumns rank-interns the given relational columns of d (all when
// cols is nil) and returns them column-major along with the per-column
// interners. This is the shared entry point for signature-keyed hot paths
// (privacy.Partition) that only need a few columns.
func InternColumns(d *Dataset, cols []int) ([][]uint32, []*Interner) {
	if cols == nil {
		cols = make([]int, len(d.Attrs))
		for i := range cols {
			cols[i] = i
		}
	}
	out := make([][]uint32, len(cols))
	dicts := make([]*Interner, len(cols))
	for i, a := range cols {
		ids, dict := internColumn(d, a)
		ranked, perm := dict.Rank()
		for r := range ids {
			ids[r] = perm[ids[r]]
		}
		out[i], dicts[i] = ids, ranked
	}
	return out, dicts
}

// linearScanMax is the domain size up to which column interning scans the
// seen-values list instead of hashing. Generalized candidates — the
// datasets the algorithms partition in their hot loops — have a handful
// of distinct values per column, and Go's string comparison short-cuts on
// length and shared backing (cut/full-domain recoding hands every record
// the same memoized string), so the scan beats a map lookup there. The
// first column value past the threshold swaps in a map for the rest.
const linearScanMax = 8

// internColumn first-seen-interns one column, touching every cell exactly
// once. This loop dominates signature-keyed partitioning.
func internColumn(d *Dataset, a int) ([]uint32, *Interner) {
	var m map[string]uint32
	var vals []string
	ids := make([]uint32, len(d.Records))
	for r := range d.Records {
		v := d.Records[r].Values[a]
		if m != nil {
			id, ok := m[v]
			if !ok {
				id = uint32(len(vals))
				m[v] = id
				vals = append(vals, v)
			}
			ids[r] = id
			continue
		}
		id, found := uint32(0), false
		for j := range vals {
			if vals[j] == v {
				id, found = uint32(j), true
				break
			}
		}
		if !found {
			id = uint32(len(vals))
			if len(vals) >= linearScanMax {
				m = make(map[string]uint32, 2*len(vals))
				for j, s := range vals {
					m[s] = uint32(j)
				}
				m[v] = id
			}
			vals = append(vals, v)
		}
		ids[r] = id
	}
	if m == nil {
		m = make(map[string]uint32, len(vals))
		for j, s := range vals {
			m[s] = uint32(j)
		}
	}
	return ids, &Interner{ids: m, vals: vals}
}

// Materialize reconstructs the string dataset: Intern followed by
// Materialize yields a dataset equal to the original (the round-trip
// property the equivalence tests pin).
func (ix *Indexed) Materialize() *Dataset {
	d := &Dataset{
		Attrs:     append([]Attribute(nil), ix.Attrs...),
		TransName: ix.TransName,
		Records:   make([]Record, ix.N),
	}
	for r := 0; r < ix.N; r++ {
		vals := make([]string, len(ix.Attrs))
		for a := range ix.Attrs {
			vals[a] = ix.Dicts[a].Value(ix.Cols[a][r])
		}
		d.Records[r].Values = vals
		if ix.ItemDict != nil && len(ix.Items[r]) > 0 {
			items := make([]string, len(ix.Items[r]))
			for i, id := range ix.Items[r] {
				items[i] = ix.ItemDict.Value(id)
			}
			d.Records[r].Items = items
		}
	}
	return d
}
