package dataset

import (
	"fmt"
	"math"
	"sort"
	"strconv"
)

// Frequency is one histogram bar: a value and how many records carry it.
type Frequency struct {
	Value string
	Count int
}

// Histogram returns the value frequencies of relational attribute i, sorted
// by descending count and then by value, which is the order the Dataset
// Editor plots them in.
func (d *Dataset) Histogram(i int) []Frequency {
	counts := make(map[string]int)
	for j := range d.Records {
		counts[d.Records[j].Values[i]]++
	}
	return sortFrequencies(counts)
}

// ItemHistogram returns the per-item support counts of the transaction
// attribute, sorted by descending count and then by item.
func (d *Dataset) ItemHistogram() []Frequency {
	counts := make(map[string]int)
	for j := range d.Records {
		for _, it := range d.Records[j].Items {
			counts[it]++
		}
	}
	return sortFrequencies(counts)
}

func sortFrequencies(counts map[string]int) []Frequency {
	out := make([]Frequency, 0, len(counts))
	for v, c := range counts {
		out = append(out, Frequency{Value: v, Count: c})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Count != out[b].Count {
			return out[a].Count > out[b].Count
		}
		return out[a].Value < out[b].Value
	})
	return out
}

// NumericSummary describes a numeric attribute's distribution.
type NumericSummary struct {
	Count  int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	Median float64
}

// Summarize computes a NumericSummary for relational attribute i. It
// returns an error when the attribute is not Numeric or a value fails to
// parse.
func (d *Dataset) Summarize(i int) (NumericSummary, error) {
	if i < 0 || i >= len(d.Attrs) {
		return NumericSummary{}, fmt.Errorf("dataset: attribute index %d out of range", i)
	}
	if d.Attrs[i].Kind != Numeric {
		return NumericSummary{}, fmt.Errorf("dataset: attribute %q is not numeric", d.Attrs[i].Name)
	}
	vals := make([]float64, 0, len(d.Records))
	for j := range d.Records {
		s := d.Records[j].Values[i]
		if s == "" {
			continue
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return NumericSummary{}, fmt.Errorf("dataset: attribute %q record %d: %w", d.Attrs[i].Name, j, err)
		}
		vals = append(vals, f)
	}
	if len(vals) == 0 {
		return NumericSummary{}, fmt.Errorf("dataset: attribute %q has no values", d.Attrs[i].Name)
	}
	sort.Float64s(vals)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	varsum := 0.0
	for _, v := range vals {
		dv := v - mean
		varsum += dv * dv
	}
	med := vals[len(vals)/2]
	if len(vals)%2 == 0 {
		med = (vals[len(vals)/2-1] + vals[len(vals)/2]) / 2
	}
	return NumericSummary{
		Count:  len(vals),
		Min:    vals[0],
		Max:    vals[len(vals)-1],
		Mean:   mean,
		Stddev: math.Sqrt(varsum / float64(len(vals))),
		Median: med,
	}, nil
}

// TransactionStats summarizes the transaction attribute: number of distinct
// items, total item occurrences, and min/avg/max record (basket) size.
type TransactionStats struct {
	DistinctItems int
	Occurrences   int
	MinSize       int
	AvgSize       float64
	MaxSize       int
}

// SummarizeTransactions computes TransactionStats; zero-valued when the
// dataset has no transaction attribute or no records.
func (d *Dataset) SummarizeTransactions() TransactionStats {
	var st TransactionStats
	if !d.HasTransaction() || len(d.Records) == 0 {
		return st
	}
	seen := make(map[string]struct{})
	st.MinSize = math.MaxInt
	for i := range d.Records {
		n := len(d.Records[i].Items)
		st.Occurrences += n
		if n < st.MinSize {
			st.MinSize = n
		}
		if n > st.MaxSize {
			st.MaxSize = n
		}
		for _, it := range d.Records[i].Items {
			seen[it] = struct{}{}
		}
	}
	st.DistinctItems = len(seen)
	st.AvgSize = float64(st.Occurrences) / float64(len(d.Records))
	if st.MinSize == math.MaxInt {
		st.MinSize = 0
	}
	return st
}
