package dataset

// RecordSource is a replayable, incrementally consumable view of a
// dataset's records — the contract streaming consumers (the export
// package's NDJSON/CSV writers, secreta-serve's chunked result delivery)
// iterate instead of holding a fully materialized *Dataset. Both *Dataset
// and *Indexed implement it; the Indexed implementation decodes one record
// at a time from the interned columns, so a consumer that streams N
// records never pays the O(N) Materialize round-trip.
//
// Invariants: ScanRecords visits records in stable record order, may be
// called any number of times (replayable), and may reuse the yielded
// Record's backing slices between calls — callers must copy anything they
// retain past the callback.
type RecordSource interface {
	// SourceSchema returns the relational attributes and the transaction
	// attribute name ("" for purely relational data).
	SourceSchema() ([]Attribute, string)
	// NumRecords returns the number of records ScanRecords will yield.
	NumRecords() int
	// ScanRecords calls fn for each record in order until fn returns false
	// or the records are exhausted.
	ScanRecords(fn func(i int, rec Record) bool)
}

// SourceSchema implements RecordSource.
func (d *Dataset) SourceSchema() ([]Attribute, string) { return d.Attrs, d.TransName }

// NumRecords implements RecordSource.
func (d *Dataset) NumRecords() int { return len(d.Records) }

// ScanRecords implements RecordSource. The yielded records alias the
// dataset's own storage; callers must not mutate them.
func (d *Dataset) ScanRecords(fn func(i int, rec Record) bool) {
	for i := range d.Records {
		if !fn(i, d.Records[i]) {
			return
		}
	}
}

// SourceSchema implements RecordSource.
func (ix *Indexed) SourceSchema() ([]Attribute, string) { return ix.Attrs, ix.TransName }

// NumRecords implements RecordSource.
func (ix *Indexed) NumRecords() int { return ix.N }

// ScanRecords implements RecordSource by decoding one record at a time
// from the interned columns. The Values/Items slices are scratch buffers
// reused across iterations (the strings themselves are the interners'
// shared storage), so a full scan allocates O(columns), not O(records) —
// this is the no-Materialize streaming path.
func (ix *Indexed) ScanRecords(fn func(i int, rec Record) bool) {
	vals := make([]string, len(ix.Attrs))
	var items []string
	for r := 0; r < ix.N; r++ {
		for a := range ix.Attrs {
			vals[a] = ix.Dicts[a].Value(ix.Cols[a][r])
		}
		items = items[:0]
		if ix.ItemDict != nil {
			for _, id := range ix.Items[r] {
				items = append(items, ix.ItemDict.Value(id))
			}
		}
		rec := Record{Values: vals}
		if len(items) > 0 {
			rec.Items = items
		}
		if !fn(r, rec) {
			return
		}
	}
}
