// Package dataset implements the data model behind SECRETA's Dataset Editor:
// tabular datasets whose attributes are relational (categorical or numeric)
// and, optionally, a single transaction (set-valued) attribute. It supports
// loading and storing CSV and JSON files, record- and attribute-level
// editing, and the per-attribute statistics the frontend visualizes. Two
// derived quantities serve the service layer: Fingerprint, an injective
// content hash that keys the result cache and addresses the dataset
// registry, and ApproxBytes, the size estimate those caches bound memory
// with.
package dataset

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies an attribute.
type Kind int

const (
	// Categorical attributes hold unordered string values.
	Categorical Kind = iota
	// Numeric attributes hold values parseable as floats; they support
	// range queries and numeric hierarchies.
	Numeric
	// Transaction marks the set-valued attribute (at most one per dataset).
	Transaction
)

// String returns the kind name used in CSV headers and CLI output.
func (k Kind) String() string {
	switch k {
	case Categorical:
		return "categorical"
	case Numeric:
		return "numeric"
	case Transaction:
		return "transaction"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a kind name back to a Kind.
func ParseKind(s string) (Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "categorical", "cat", "c":
		return Categorical, nil
	case "numeric", "num", "n":
		return Numeric, nil
	case "transaction", "trans", "t", "set":
		return Transaction, nil
	}
	return 0, fmt.Errorf("dataset: unknown attribute kind %q", s)
}

// Attribute describes one relational column.
type Attribute struct {
	Name string
	Kind Kind
}

// Record is one row: relational values aligned with Dataset.Attrs, plus the
// item set of the transaction attribute (nil when the dataset has none).
// Items are kept sorted and deduplicated by the Dataset mutators.
type Record struct {
	Values []string
	Items  []string
}

// Clone returns a deep copy of the record.
func (r Record) Clone() Record {
	out := Record{}
	if r.Values != nil {
		out.Values = append([]string(nil), r.Values...)
	}
	if r.Items != nil {
		out.Items = append([]string(nil), r.Items...)
	}
	return out
}

// HasItem reports whether the record's transaction part contains item.
// Items are sorted, so this is a binary search.
func (r Record) HasItem(item string) bool {
	i := sort.SearchStrings(r.Items, item)
	return i < len(r.Items) && r.Items[i] == item
}

// Dataset is an editable table of records. TransName is the display name of
// the transaction attribute and is empty for purely relational datasets.
type Dataset struct {
	Attrs     []Attribute
	TransName string
	Records   []Record
}

// New creates an empty dataset with the given relational attributes and
// optional transaction attribute name (empty for none).
func New(attrs []Attribute, transName string) *Dataset {
	return &Dataset{Attrs: append([]Attribute(nil), attrs...), TransName: transName}
}

// HasTransaction reports whether the dataset has a transaction attribute.
func (d *Dataset) HasTransaction() bool { return d.TransName != "" }

// Len returns the number of records.
func (d *Dataset) Len() int { return len(d.Records) }

// AttrIndex returns the index of the named relational attribute, or -1.
func (d *Dataset) AttrIndex(name string) int {
	for i, a := range d.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// AttrNames returns the relational attribute names in column order.
func (d *Dataset) AttrNames() []string {
	out := make([]string, len(d.Attrs))
	for i, a := range d.Attrs {
		out[i] = a.Name
	}
	return out
}

// QIIndices resolves a list of quasi-identifier attribute names to column
// indices, defaulting to all relational attributes when names is empty.
func (d *Dataset) QIIndices(names []string) ([]int, error) {
	if len(names) == 0 {
		out := make([]int, len(d.Attrs))
		for i := range out {
			out[i] = i
		}
		return out, nil
	}
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := d.AttrIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("dataset: no attribute named %q", n)
		}
		out = append(out, i)
	}
	return out, nil
}

// AddRecord validates and appends a record. The transaction items are
// sorted and deduplicated in place.
func (d *Dataset) AddRecord(rec Record) error {
	if len(rec.Values) != len(d.Attrs) {
		return fmt.Errorf("dataset: record has %d values, want %d", len(rec.Values), len(d.Attrs))
	}
	if !d.HasTransaction() && len(rec.Items) > 0 {
		return fmt.Errorf("dataset: record has items but dataset has no transaction attribute")
	}
	rec.Items = normalizeItems(rec.Items)
	d.Records = append(d.Records, rec)
	return nil
}

func normalizeItems(items []string) []string {
	if len(items) == 0 {
		return nil
	}
	sorted := append([]string(nil), items...)
	sort.Strings(sorted)
	out := sorted[:0]
	for i, it := range sorted {
		if it == "" {
			continue
		}
		if i > 0 && sorted[i-1] == it {
			continue
		}
		out = append(out, it)
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Clone returns a deep copy of the dataset. Anonymization algorithms clone
// their input so the original data is never mutated.
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Attrs:     append([]Attribute(nil), d.Attrs...),
		TransName: d.TransName,
		Records:   make([]Record, len(d.Records)),
	}
	for i := range d.Records {
		out.Records[i] = d.Records[i].Clone()
	}
	return out
}

// Column returns a copy of the values of relational attribute i.
func (d *Dataset) Column(i int) []string {
	out := make([]string, len(d.Records))
	for j := range d.Records {
		out[j] = d.Records[j].Values[i]
	}
	return out
}

// Domain returns the sorted distinct values of relational attribute i.
// Numeric attributes are sorted numerically.
func (d *Dataset) Domain(i int) []string {
	seen := make(map[string]struct{})
	for j := range d.Records {
		seen[d.Records[j].Values[i]] = struct{}{}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	if d.Attrs[i].Kind == Numeric {
		sort.Slice(out, func(a, b int) bool {
			fa, ea := strconv.ParseFloat(out[a], 64)
			fb, eb := strconv.ParseFloat(out[b], 64)
			if ea == nil && eb == nil {
				return fa < fb
			}
			return out[a] < out[b]
		})
	} else {
		sort.Strings(out)
	}
	return out
}

// ItemDomain returns the sorted distinct items of the transaction attribute.
func (d *Dataset) ItemDomain() []string {
	seen := make(map[string]struct{})
	for i := range d.Records {
		for _, it := range d.Records[i].Items {
			seen[it] = struct{}{}
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Validate checks structural consistency: value arity, item ordering, and
// transaction presence. It is cheap enough to run after batch edits.
func (d *Dataset) Validate() error {
	names := make(map[string]struct{}, len(d.Attrs))
	for _, a := range d.Attrs {
		if a.Name == "" {
			return fmt.Errorf("dataset: attribute with empty name")
		}
		if a.Kind == Transaction {
			return fmt.Errorf("dataset: attribute %q declared with Transaction kind; use TransName", a.Name)
		}
		if _, dup := names[a.Name]; dup {
			return fmt.Errorf("dataset: duplicate attribute name %q", a.Name)
		}
		names[a.Name] = struct{}{}
	}
	if d.TransName != "" {
		if _, dup := names[d.TransName]; dup {
			return fmt.Errorf("dataset: transaction attribute %q collides with a relational attribute", d.TransName)
		}
	}
	for i := range d.Records {
		r := &d.Records[i]
		if len(r.Values) != len(d.Attrs) {
			return fmt.Errorf("dataset: record %d has %d values, want %d", i, len(r.Values), len(d.Attrs))
		}
		if !d.HasTransaction() && len(r.Items) > 0 {
			return fmt.Errorf("dataset: record %d has items but dataset has no transaction attribute", i)
		}
		if !sort.StringsAreSorted(r.Items) {
			return fmt.Errorf("dataset: record %d items are not sorted", i)
		}
		for j := 1; j < len(r.Items); j++ {
			if r.Items[j] == r.Items[j-1] {
				return fmt.Errorf("dataset: record %d has duplicate item %q", i, r.Items[j])
			}
		}
	}
	return nil
}

// DetectKinds re-classifies every relational attribute as Numeric when all
// its non-empty values parse as floats, and Categorical otherwise. It is
// used after loading a CSV without kind annotations.
func (d *Dataset) DetectKinds() {
	for i := range d.Attrs {
		numeric := true
		seen := false
		for j := range d.Records {
			v := d.Records[j].Values[i]
			if v == "" {
				continue
			}
			seen = true
			if _, err := strconv.ParseFloat(v, 64); err != nil {
				numeric = false
				break
			}
		}
		if seen && numeric {
			d.Attrs[i].Kind = Numeric
		} else {
			d.Attrs[i].Kind = Categorical
		}
	}
}
