package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strings"
)

// Options controls CSV parsing and serialization.
type Options struct {
	// Comma is the CSV field separator (default ',').
	Comma rune
	// ItemSep separates items inside the transaction attribute cell
	// (default ' ').
	ItemSep string
	// TransAttr names the column treated as the transaction attribute.
	// Empty means the dataset is purely relational unless a header
	// annotation marks one (see below).
	TransAttr string
	// DetectKinds re-classifies attributes by value inspection after load
	// when the header carries no kind annotations.
	DetectKinds bool
}

func (o *Options) fill() {
	if o.Comma == 0 {
		o.Comma = ','
	}
	if o.ItemSep == "" {
		o.ItemSep = " "
	}
}

// ReadCSV parses a dataset. The first row is the header. A header cell may
// carry a kind annotation as "name:kind" (kind in categorical|numeric|
// transaction); otherwise kinds are detected from the data when
// opts.DetectKinds is set. At most one column may be the transaction
// attribute; its cells hold items separated by opts.ItemSep.
func ReadCSV(r io.Reader, opts Options) (*Dataset, error) {
	opts.fill()
	cr := csv.NewReader(r)
	cr.Comma = opts.Comma
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV input")
	}
	header := rows[0]
	if len(header) == 0 {
		return nil, fmt.Errorf("dataset: empty CSV header")
	}

	type col struct {
		name  string
		kind  Kind
		annot bool
	}
	cols := make([]col, len(header))
	transCol := -1
	for i, h := range header {
		name, kindStr, found := strings.Cut(strings.TrimSpace(h), ":")
		c := col{name: strings.TrimSpace(name), kind: Categorical}
		if found {
			k, err := ParseKind(kindStr)
			if err != nil {
				return nil, fmt.Errorf("dataset: header column %d: %w", i, err)
			}
			c.kind = k
			c.annot = true
		}
		if c.name == "" {
			return nil, fmt.Errorf("dataset: header column %d has empty name", i)
		}
		if c.name == opts.TransAttr || c.kind == Transaction {
			if transCol >= 0 {
				return nil, fmt.Errorf("dataset: multiple transaction columns (%d and %d)", transCol, i)
			}
			transCol = i
			c.kind = Transaction
		}
		cols[i] = c
	}

	var attrs []Attribute
	transName := ""
	for i, c := range cols {
		if i == transCol {
			transName = c.name
			continue
		}
		attrs = append(attrs, Attribute{Name: c.name, Kind: c.kind})
	}
	ds := New(attrs, transName)

	for rn, row := range rows[1:] {
		if len(row) == 1 && strings.TrimSpace(row[0]) == "" {
			continue
		}
		if len(row) != len(header) {
			return nil, fmt.Errorf("dataset: row %d has %d fields, want %d", rn+2, len(row), len(header))
		}
		rec := Record{Values: make([]string, 0, len(attrs))}
		for i, cell := range row {
			if i == transCol {
				rec.Items = splitItems(cell, opts.ItemSep)
				continue
			}
			rec.Values = append(rec.Values, strings.TrimSpace(cell))
		}
		if err := ds.AddRecord(rec); err != nil {
			return nil, fmt.Errorf("dataset: row %d: %w", rn+2, err)
		}
	}

	annotated := false
	for _, c := range cols {
		if c.annot {
			annotated = true
			break
		}
	}
	if opts.DetectKinds && !annotated {
		ds.DetectKinds()
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	return ds, nil
}

func splitItems(cell, sep string) []string {
	cell = strings.TrimSpace(cell)
	if cell == "" {
		return nil
	}
	parts := strings.Split(cell, sep)
	out := parts[:0]
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// WriteCSV serializes the dataset with kind-annotated headers, so a
// round-trip preserves attribute kinds and the transaction column.
func (d *Dataset) WriteCSV(w io.Writer, opts Options) error {
	opts.fill()
	cw := csv.NewWriter(w)
	cw.Comma = opts.Comma

	header := make([]string, 0, len(d.Attrs)+1)
	for _, a := range d.Attrs {
		header = append(header, a.Name+":"+a.Kind.String())
	}
	if d.HasTransaction() {
		header = append(header, d.TransName+":transaction")
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, 0, len(header))
	for i := range d.Records {
		row = row[:0]
		row = append(row, d.Records[i].Values...)
		if d.HasTransaction() {
			row = append(row, strings.Join(d.Records[i].Items, opts.ItemSep))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// LoadFile reads a dataset from a CSV file path.
func LoadFile(path string, opts Options) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f, opts)
}

// SaveFile writes the dataset to a CSV file path.
func (d *Dataset) SaveFile(path string, opts Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := d.WriteCSV(f, opts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
