package dataset

// sliceOverhead approximates the Go runtime cost of one slice header plus
// allocator slack; stringOverhead the header of one string. The estimates
// deliberately round up: memory-bounded caches built on ApproxBytes should
// err toward evicting early rather than overshooting their budget.
const (
	sliceOverhead  = 48
	stringOverhead = 16
)

// ApproxBytes estimates the in-memory size of the dataset: every string's
// bytes plus per-string and per-slice header overheads. It is an estimate
// for cache accounting (registry and result-cache byte caps), not an exact
// measurement; it scales linearly with records, values and items, which is
// what bounding resident memory needs.
func (d *Dataset) ApproxBytes() int64 {
	var n int64 = sliceOverhead // Attrs
	for _, a := range d.Attrs {
		n += stringOverhead + int64(len(a.Name)) + 8 // Kind
	}
	n += stringOverhead + int64(len(d.TransName))
	n += sliceOverhead // Records
	for i := range d.Records {
		r := &d.Records[i]
		n += 2 * sliceOverhead // Values, Items headers
		for _, v := range r.Values {
			n += stringOverhead + int64(len(v))
		}
		for _, it := range r.Items {
			n += stringOverhead + int64(len(it))
		}
	}
	return n
}
