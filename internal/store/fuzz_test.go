package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"testing"
)

// frame encodes one WAL/chunk frame ([u32 len][u32 CRC][payload]) — the
// shared framing discipline both formats pin.
func frame(payload []byte) []byte {
	out := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(payload))
	copy(out[8:], payload)
	return out
}

func walSeeds() [][]byte {
	good := append(frame([]byte("job queued")), frame([]byte(`{"id":"j1","state":"running"}`))...)
	badCRC := append([]byte(nil), good...)
	badCRC[len(badCRC)-1] ^= 0xff // flip a payload byte under an intact CRC
	return [][]byte{
		nil,
		good,
		good[:len(good)-3],                   // torn tail: truncated final payload
		good[:len(good)-32],                  // torn tail: truncated header
		badCRC,                               // bad CRC on the last record
		frame(nil),                           // empty payload is a valid record
		{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}, // length field past maxWALRecord
	}
}

// FuzzWALScan drives replay's salvage scan with arbitrary bytes. The
// invariants: it never panics, the valid offset stays inside the input,
// a clean scan consumes everything, re-framing the salvaged records
// reproduces exactly the bytes scanWAL declared valid, and a rescan of
// that prefix is clean and yields the same records.
func FuzzWALScan(f *testing.F) {
	for _, s := range walSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		records, valid, torn := scanWAL(data)
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid offset %d outside input of %d bytes", valid, len(data))
		}
		if !torn && valid != int64(len(data)) {
			t.Fatalf("clean scan stopped at %d of %d bytes", valid, len(data))
		}
		var rebuilt []byte
		for _, rec := range records {
			rebuilt = append(rebuilt, frame(rec)...)
		}
		if !bytes.Equal(rebuilt, data[:valid]) {
			t.Fatalf("re-framed records do not reproduce the valid prefix (%d vs %d bytes)",
				len(rebuilt), valid)
		}
		again, validAgain, tornAgain := scanWAL(data[:valid])
		if tornAgain || validAgain != valid || len(again) != len(records) {
			t.Fatalf("rescan of valid prefix: torn=%v valid=%d records=%d, want false/%d/%d",
				tornAgain, validAgain, len(again), valid, len(records))
		}
	})
}

func chunkSeeds() [][]byte {
	good := append(frame([]byte(`{"meta":1}`)), frame(bytes.Repeat([]byte("r"), 100))...)
	badCRC := append([]byte(nil), good...)
	badCRC[len(badCRC)-1] ^= 0xff
	return [][]byte{
		nil,
		good,
		good[:len(good)-7],   // torn tail: truncated final payload
		good[:len(good)-104], // torn tail: partial header
		badCRC,
		frame(nil),                           // zero-length frame is corrupt in the chunk format
		{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}, // length past maxChunkFrame
	}
}

// FuzzChunkFrames drives the .ndr frame decoder with arbitrary bytes.
// Invariants: Next never panics, always terminates in io.EOF or
// ErrCorruptChunk, and the frames it accepted re-encode to exactly the
// prefix of the input it consumed (accepted frames round-trip).
func FuzzChunkFrames(f *testing.F) {
	for _, s := range chunkSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := newChunkReader(bytes.NewReader(data))
		defer r.Close()
		var consumed []byte
		for {
			p, err := r.Next()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, ErrCorruptChunk) {
					t.Fatalf("terminal error is neither io.EOF nor ErrCorruptChunk: %v", err)
				}
				if errors.Is(err, io.EOF) && len(consumed) != len(data) {
					t.Fatalf("clean EOF after %d of %d bytes", len(consumed), len(data))
				}
				break
			}
			if len(p) == 0 {
				t.Fatal("decoder accepted a zero-length frame")
			}
			consumed = append(consumed, frame(p)...)
		}
		if !bytes.Equal(consumed, data[:len(consumed)]) {
			t.Fatalf("accepted frames do not re-encode to the consumed prefix")
		}
	})
}
