package store

import (
	"path/filepath"
	"sort"
	"strings"
)

// Disk-usage accounting and eviction-ordering helpers for the retention
// sweeper (the server's GC): the sweeper needs a fresh byte total for the
// whole data directory (the cached Stats walk is deliberately stale) and
// an oldest-first ordering over the evictable blob populations.

// DiskUsage walks the data directory and returns the total bytes of
// every regular file in it — blobs, sidecars, chunk files, the WAL and
// snapshot, and any atomic-write temp files still in flight. This is the
// figure -data-max-bytes caps. The walk is uncached (unlike Stats) so
// the GC sweeper always acts on current occupancy; unreadable entries
// are skipped, matching the advisory Stats convention.
func (s *Store) DiskUsage() int64 {
	var total int64
	for _, dir := range s.usageDirs() {
		entries, err := s.fsys.ReadDir(dir)
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			total += info.Size()
		}
	}
	return total
}

// usageDirs lists every directory DiskUsage sums — the root (probe and
// temp debris) plus each sub-store.
func (s *Store) usageDirs() []string {
	return []string{
		s.Dir,
		filepath.Join(s.Dir, "datasets"),
		filepath.Join(s.Dir, "results"),
		filepath.Join(s.Dir, "traces"),
		filepath.Join(s.Dir, "cache"),
		filepath.Join(s.Dir, "journal"),
	}
}

// IDsByAge lists the stored dataset IDs oldest-first by blob modification
// time — the eviction order the GC sweeper walks when unreferenced
// dataset blobs must go. Listing failures are counted as trim errors and
// answer an empty slice rather than wedging the sweep.
func (d *DatasetStore) IDsByAge() []string {
	entries, err := d.blobs.fsys.ReadDir(d.blobs.dir)
	if err != nil {
		d.blobs.diag.trimError(d.blobs.dir, err)
		return nil
	}
	type aged struct {
		id    string
		mtime int64
	}
	var files []aged
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), d.blobs.ext) || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, aged{strings.TrimSuffix(e.Name(), d.blobs.ext), info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool {
		if files[i].mtime != files[j].mtime {
			return files[i].mtime < files[j].mtime
		}
		return files[i].id < files[j].id
	})
	out := make([]string, len(files))
	for i, f := range files {
		out[i] = f.id
	}
	return out
}

// TrimTo shrinks the disk result cache under explicit caps now — the GC
// sweeper's first lever, since cache entries are always reconstructible.
// It reports how many entries were removed.
func (c *CacheStore) TrimTo(maxEntries int, maxBytes int64) int {
	removed, _ := c.blobs.Trim(maxEntries, maxBytes)
	return removed
}

// Names lists the committed chunk files' names (job IDs), sorted —
// recovery uses this to sweep orphaned result streams whose job record
// is gone.
func (c *ChunkedDir) Names() ([]string, error) {
	entries, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), c.ext) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), c.ext)
		if strings.HasPrefix(name, ".tmp-") || name == "" {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}
