package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"secreta/internal/dataset"
)

func TestBlobDirRoundTrip(t *testing.T) {
	b, err := NewBlobDir(filepath.Join(t.TempDir(), "blobs"), ".json")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Put("a", []byte("payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := b.Put("b", []byte("payload-b")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Get("a")
	if err != nil || string(got) != "payload-a" {
		t.Fatalf("Get a: %q, %v", got, err)
	}
	if _, err := b.Get("missing"); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("missing blob: %v", err)
	}
	names, err := b.Names()
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names: %v, %v", names, err)
	}
	st := b.Stats()
	if st.Count != 2 || st.Bytes != int64(len("payload-a")+len("payload-b")) {
		t.Fatalf("Stats: %+v", st)
	}
	if err := b.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Delete("a"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
	if b.Has("a") || !b.Has("b") {
		t.Fatal("Has after delete wrong")
	}
}

func TestBlobDirRejectsTraversal(t *testing.T) {
	b, err := NewBlobDir(t.TempDir(), ".json")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"", ".", "..", "a/b", `a\b`, "../escape"} {
		if err := b.Put(name, []byte("x")); err == nil {
			t.Fatalf("name %q accepted", name)
		}
	}
}

func TestBlobDirTrim(t *testing.T) {
	b, err := NewBlobDir(t.TempDir(), ".json")
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"old", "mid", "new"} {
		if err := b.Put(name, bytes.Repeat([]byte("x"), 10)); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes without sleeping.
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(b.Dir(), name+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := b.Trim(2, 0)
	if err != nil || removed != 1 {
		t.Fatalf("Trim entries: removed=%d err=%v", removed, err)
	}
	if b.Has("old") {
		t.Fatal("entry-cap trim removed the wrong blob")
	}
	removed, err = b.Trim(0, 10)
	if err != nil || removed != 1 {
		t.Fatalf("Trim bytes: removed=%d err=%v", removed, err)
	}
	if !b.Has("new") {
		t.Fatal("byte-cap trim removed the newest blob")
	}
}

func sampleDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Sex", Kind: dataset.Categorical},
	}, "Items")
	for _, rec := range []dataset.Record{
		{Values: []string{"25", "M"}, Items: []string{"a", "b"}},
		{Values: []string{"30", "F"}, Items: []string{"b", "c"}},
	} {
		if err := ds.AddRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestDatasetStoreRoundTripAndVerify(t *testing.T) {
	s, err := NewDatasetStore(filepath.Join(t.TempDir(), "datasets"))
	if err != nil {
		t.Fatal(err)
	}
	ds := sampleDataset(t)
	id := ds.Fingerprint()
	if err := s.Save(id, ds); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load(id)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != id {
		t.Fatal("loaded dataset has different fingerprint")
	}
	list, err := s.List()
	if err != nil || len(list) != 1 {
		t.Fatalf("List: %v, %v", list, err)
	}
	if list[0].ID != id || list[0].Records != 2 || list[0].Attrs != 2 || list[0].Bytes != ds.ApproxBytes() {
		t.Fatalf("meta: %+v", list[0])
	}

	// Meta sidecar lost (crash between blob and meta writes): List
	// regenerates it from the blob.
	if err := s.metas.Delete(id); err != nil {
		t.Fatal(err)
	}
	list, err = s.List()
	if err != nil || len(list) != 1 || list[0].Records != 2 {
		t.Fatalf("List after meta loss: %v, %v", list, err)
	}
	if !s.metas.Has(id) {
		t.Fatal("List did not regenerate the meta sidecar")
	}

	// A corrupted blob must fail fingerprint verification, and List must
	// skip it rather than fail.
	blobPath := filepath.Join(s.blobs.Dir(), id+".json")
	data, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"25"`), []byte(`"26"`), 1)
	if bytes.Equal(tampered, data) {
		t.Fatal("tamper patch missed")
	}
	if err := os.WriteFile(blobPath, tampered, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(id); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("tampered blob loaded: %v", err)
	}
	if err := s.metas.Delete(id); err != nil {
		t.Fatal(err)
	}
	list, err = s.List()
	if err != nil || len(list) != 0 {
		t.Fatalf("List with corrupt blob: %v, %v", list, err)
	}

	if err := s.Delete(id); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(id); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("Load after delete: %v", err)
	}
}

func TestCacheStoreRoundTrip(t *testing.T) {
	c, err := NewCacheStore(t.TempDir(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	key := "abc123/def456" // engine keys contain '/'
	if err := c.SaveResult(key, []byte("result")); err != nil {
		t.Fatal(err)
	}
	got, err := c.LoadResult(key)
	if err != nil || string(got) != "result" {
		t.Fatalf("LoadResult: %q, %v", got, err)
	}
	miss, err := c.LoadResult("nope")
	if err != nil || miss != nil {
		t.Fatalf("LoadResult miss: %q, %v", miss, err)
	}
}

func TestStoreOpenLayoutAndStats(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ds := sampleDataset(t)
	id := ds.Fingerprint()
	if err := st.Datasets.Save(id, ds); err != nil {
		t.Fatal(err)
	}
	if err := st.Results.Put("j-000001", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	stats := st.Stats()
	if stats.Datasets.Count != 1 || stats.Results.Count != 1 || stats.Journal.Jobs != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same dir: everything still there.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if _, err := st2.Datasets.Load(id); err != nil {
		t.Fatal(err)
	}
	if got, err := st2.Results.Get("j-000001"); err != nil || string(got) != `{"ok":true}` {
		t.Fatalf("result blob: %q, %v", got, err)
	}
	if jobs := st2.Journal.Jobs(); len(jobs) != 1 || jobs[0].ID != "j-000001" {
		t.Fatalf("journal: %+v", jobs)
	}
}

func TestDumpJournal(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Start("j-000001"); err != nil {
		t.Fatal(err)
	}
	if err := st.Journal.Finish("j-000001", "done", "", true); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := DumpJournal(&buf, dir); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"snapshot: seq=1", "j-000001", "start", "finish", "-> done", "tail: clean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	st.Close()
}
