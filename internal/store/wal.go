package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"secreta/internal/faultfs"
)

// WAL record framing. Each record is:
//
//	[4 bytes little-endian payload length]
//	[4 bytes little-endian CRC-32 (IEEE) of the payload]
//	[payload bytes]
//
// Replay walks records from the start and stops at the first frame that
// does not check out — a short header, an implausible length, a short
// payload, or a CRC mismatch. Everything before that point is valid by
// construction (appends are sequential and fsync'd), so a crash mid-append
// loses at most the record being written, never earlier history.
const walHeaderSize = 8

// maxWALRecord bounds a single record's payload. It exists purely as a
// corruption guard during replay: a frame whose length field exceeds it is
// treated as the torn tail, not as a 4 GiB allocation request. Real
// records (job transitions, request bodies) sit far below it.
const maxWALRecord = 256 << 20

// appendWALRecord frames payload and appends it to f, fsyncing before
// returning so the record is durable when the caller's state transition
// becomes observable.
func appendWALRecord(f faultfs.File, payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("store: WAL record of %d bytes exceeds the %d byte frame limit", len(payload), maxWALRecord)
	}
	frame := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderSize:], payload)
	if _, err := f.Write(frame); err != nil {
		return fmt.Errorf("store: appending WAL record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: syncing WAL: %w", err)
	}
	return nil
}

// scanWAL walks the framed records in data and returns the payloads of
// every valid record, the byte offset up to which the log is valid, and
// whether trailing bytes past that offset were dropped (a torn or corrupt
// tail). It never fails: an unreadable tail is data loss already — the
// job of replay is to salvage the prefix, not to veto the boot.
func scanWAL(data []byte) (records [][]byte, valid int64, torn bool) {
	off := 0
	for {
		if off == len(data) {
			return records, int64(off), false
		}
		if len(data)-off < walHeaderSize {
			return records, int64(off), true
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxWALRecord || len(data)-off-walHeaderSize < n {
			return records, int64(off), true
		}
		payload := data[off+walHeaderSize : off+walHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != sum {
			return records, int64(off), true
		}
		records = append(records, payload)
		off += walHeaderSize + n
	}
}
