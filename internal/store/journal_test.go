package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"secreta/internal/faultfs"
)

func submitRec(id string, seq int) JobRecord {
	return JobRecord{
		ID: id, Seq: seq, Kind: "anonymize", Status: "queued",
		Body: json.RawMessage(`{"x":1}`), SubmittedAt: time.Now(),
	}
}

func TestJournalLifecycleSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000002", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Start("j-000001"); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("j-000001", "done", "", true); err != nil {
		t.Fatal(err)
	}
	if err := j.Start("j-000002"); err != nil {
		t.Fatal(err)
	}
	// Close the WAL file directly — a crash, not a clean Close (which
	// would snapshot and truncate).
	j.mu.Lock()
	j.f.Close()
	j.closed = true
	j.mu.Unlock()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("replayed %d jobs, want 2", len(jobs))
	}
	if jobs[0].ID != "j-000001" || jobs[0].Status != "done" || !jobs[0].HasResult {
		t.Fatalf("job 1 replayed as %+v", jobs[0])
	}
	if jobs[0].Body != nil {
		t.Fatal("terminal job kept its request body")
	}
	if jobs[1].ID != "j-000002" || jobs[1].Status != "running" {
		t.Fatalf("job 2 replayed as %+v", jobs[1])
	}
	if len(jobs[1].Body) == 0 {
		t.Fatal("in-flight job lost its request body — cannot be re-queued")
	}
	if j2.Seq() != 2 {
		t.Fatalf("seq=%d want 2", j2.Seq())
	}
	if j2.Stats().Replay.TornTail {
		t.Fatal("clean crash replay reported a torn tail")
	}
}

func TestJournalSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 4) // snapshot every 4 appends
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	for i := 1; i <= 6; i++ {
		if err := j.Submit(submitRec(jobID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	// 6 appends: snapshot fired at 4, so the WAL holds only records 5-6.
	if st.WALRecords != 2 {
		t.Fatalf("wal_records=%d want 2 after snapshot truncation", st.WALRecords)
	}
	if st.Jobs != 6 {
		t.Fatalf("table jobs=%d want 6", st.Jobs)
	}
	snap, err := readSnapshotFile(faultfs.OS, filepath.Join(dir, snapshotFileName))
	if err != nil || snap == nil {
		t.Fatalf("snapshot missing after cadence: %v", err)
	}
	if len(snap.Jobs) != 4 {
		t.Fatalf("snapshot holds %d jobs, want 4", len(snap.Jobs))
	}

	// Reopen: snapshot + WAL replay must reassemble all 6.
	j.mu.Lock()
	j.f.Close()
	j.closed = true
	j.mu.Unlock()
	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.Jobs()); got != 6 {
		t.Fatalf("replayed %d jobs, want 6", got)
	}
	rs := j2.Stats().Replay
	if rs.SnapshotJobs != 4 || rs.WALRecords != 2 {
		t.Fatalf("replay stats %+v, want 4 snapshot jobs + 2 wal records", rs)
	}
}

// TestJournalReplayIdempotentOverSnapshot simulates the crash window
// between snapshot rename and WAL truncation: the WAL still holds ops the
// snapshot already absorbed, and replay must not double-apply them.
func TestJournalReplayIdempotentOverSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Finish("j-000001", "failed", "boom", false); err != nil {
		t.Fatal(err)
	}
	// Keep a copy of the WAL, snapshot (which truncates), then restore
	// the old WAL — exactly the state a crash between the two leaves.
	walPath := filepath.Join(dir, walFileName)
	walCopy, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.f.Close()
	j.closed = true
	j.mu.Unlock()
	if err := os.WriteFile(walPath, walCopy, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 1 {
		t.Fatalf("replayed %d jobs, want 1", len(jobs))
	}
	if jobs[0].Status != "failed" || jobs[0].Error != "boom" {
		t.Fatalf("double-applied replay produced %+v", jobs[0])
	}
}

func TestJournalTornTailRepairedAndAppendable(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000002", 2)); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.f.Close()
	j.closed = true
	j.mu.Unlock()

	// Tear the tail: append half a record's worth of garbage.
	walPath := filepath.Join(dir, walFileName)
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x07, 0x00, 0x00, 0x00, 0xaa}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatalf("torn tail must not fail the boot: %v", err)
	}
	rs := j2.Stats().Replay
	if !rs.TornTail || rs.TornBytes != 5 {
		t.Fatalf("replay stats %+v, want torn tail of 5 bytes", rs)
	}
	if got := len(j2.Jobs()); got != 2 {
		t.Fatalf("replayed %d jobs, want 2", got)
	}
	// The repaired log must accept appends and replay them next boot.
	if err := j2.Finish("j-000002", "done", "", false); err != nil {
		t.Fatal(err)
	}
	j2.mu.Lock()
	j2.f.Close()
	j2.closed = true
	j2.mu.Unlock()
	j3, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	jobs := j3.Jobs()
	if len(jobs) != 2 || jobs[1].Status != "done" {
		t.Fatalf("post-repair append lost: %+v", jobs)
	}
	if j3.Stats().Replay.TornTail {
		t.Fatal("repair did not stick: tail torn again on third boot")
	}
}

func TestJournalDeleteAndCloseSnapshot(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := j.Submit(submitRec(jobID(i), i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Delete("j-000002"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	jobs := j2.Jobs()
	if len(jobs) != 2 || jobs[0].ID != "j-000001" || jobs[1].ID != "j-000003" {
		t.Fatalf("post-delete replay: %+v", jobs)
	}
	// Clean close snapshots: nothing left in the WAL to replay.
	rs := j2.Stats().Replay
	if rs.WALRecords != 0 {
		t.Fatalf("clean close left %d WAL records", rs.WALRecords)
	}
	// Seq survives the delete of the highest job.
	if j2.Seq() != 3 {
		t.Fatalf("seq=%d want 3", j2.Seq())
	}
}

func jobID(i int) string {
	return []string{"", "j-000001", "j-000002", "j-000003", "j-000004", "j-000005", "j-000006"}[i]
}

// TestJournalUnparseableRecordTruncatedAtItsOffset: a CRC-valid record
// whose payload is not valid JSON must become the truncation point —
// truncating past it would keep it in the file and make every future
// boot re-stop there, orphaning all later appends.
func TestJournalUnparseableRecordTruncatedAtItsOffset(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submit(submitRec("j-000001", 1)); err != nil {
		t.Fatal(err)
	}
	// Append a perfectly framed (CRC-valid) but unparseable record, then
	// a valid one after it, directly through the framing layer.
	j.mu.Lock()
	if err := appendWALRecord(j.f, []byte("not json {")); err != nil {
		t.Fatal(err)
	}
	j.mu.Unlock()
	if err := j.Submit(submitRec("j-000002", 2)); err != nil {
		t.Fatal(err)
	}
	j.mu.Lock()
	j.f.Close()
	j.closed = true
	j.mu.Unlock()

	j2, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	rs := j2.Stats().Replay
	if !rs.TornTail {
		t.Fatal("unparseable record not reported as torn")
	}
	if got := len(j2.Jobs()); got != 1 {
		t.Fatalf("replayed %d jobs, want 1 (records after corruption are lost)", got)
	}
	// The repair removed the bad record: appends after it replay cleanly
	// on the next boot instead of being orphaned behind it forever.
	if err := j2.Submit(submitRec("j-000003", 3)); err != nil {
		t.Fatal(err)
	}
	j2.mu.Lock()
	j2.f.Close()
	j2.closed = true
	j2.mu.Unlock()
	j3, err := OpenJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if rs := j3.Stats().Replay; rs.TornTail {
		t.Fatalf("bad record survived the repair: %+v", rs)
	}
	jobs := j3.Jobs()
	if len(jobs) != 2 || jobs[1].ID != "j-000003" {
		t.Fatalf("post-repair appends lost: %+v", jobs)
	}
}
