package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// writeWAL builds a WAL file from whole records and returns its path.
func writeWAL(t *testing.T, payloads ...[]byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	for _, p := range payloads {
		if err := appendWALRecord(f, p); err != nil {
			t.Fatal(err)
		}
	}
	return path
}

func TestWALRoundTrip(t *testing.T) {
	payloads := [][]byte{[]byte("one"), []byte(""), bytes.Repeat([]byte("x"), 10_000)}
	path := writeWAL(t, payloads...)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	records, valid, torn := scanWAL(data)
	if torn {
		t.Fatal("clean WAL reported torn")
	}
	if valid != int64(len(data)) {
		t.Fatalf("valid=%d want %d", valid, len(data))
	}
	if len(records) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(records), len(payloads))
	}
	for i := range payloads {
		if !bytes.Equal(records[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestWALTornTail covers the kill-point matrix: a crash can leave a
// partial header, a partial payload, or a flipped bit; replay must stop
// cleanly at the last whole record every time.
func TestWALTornTail(t *testing.T) {
	full := func(t *testing.T) []byte {
		t.Helper()
		path := writeWAL(t, []byte("alpha"), []byte("beta"), []byte("gamma"))
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	base := full(t)
	lastStart := len(base) - (walHeaderSize + len("gamma"))

	cases := []struct {
		name    string
		mutate  func([]byte) []byte
		keep    int
		wantLen int64
	}{
		{"truncated mid-payload", func(d []byte) []byte { return d[:len(d)-2] }, 2, int64(lastStart)},
		{"truncated mid-header", func(d []byte) []byte { return d[:lastStart+3] }, 2, int64(lastStart)},
		{"corrupt payload byte", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[len(out)-1] ^= 0xff
			return out
		}, 2, int64(lastStart)},
		{"corrupt length field", func(d []byte) []byte {
			out := append([]byte(nil), d...)
			out[lastStart] = 0xff
			out[lastStart+3] = 0xff // implausible length >> maxWALRecord
			return out
		}, 2, int64(lastStart)},
		{"garbage appended", func(d []byte) []byte { return append(append([]byte(nil), d...), 0xde, 0xad, 0xbe) }, 3, int64(len(base))},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			records, valid, torn := scanWAL(tc.mutate(append([]byte(nil), base...)))
			if !torn {
				t.Fatal("mutated WAL not reported torn")
			}
			if len(records) != tc.keep {
				t.Fatalf("kept %d records, want %d", len(records), tc.keep)
			}
			if valid != tc.wantLen {
				t.Fatalf("valid offset %d, want %d", valid, tc.wantLen)
			}
		})
	}
}

func TestWALEmptyAndMissing(t *testing.T) {
	records, valid, torn := scanWAL(nil)
	if len(records) != 0 || valid != 0 || torn {
		t.Fatalf("empty WAL: records=%d valid=%d torn=%v", len(records), valid, torn)
	}
}
