package store

import (
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"

	"secreta/internal/faultfs"
)

// ErrNoBlob is returned by BlobDir.Get when no blob with the given name
// exists.
var ErrNoBlob = errors.New("store: no such blob")

// BlobDir is one flat directory of named blob files with atomic, fsync'd
// writes. Names are single-segment identifiers (fingerprints, job IDs);
// the BlobDir appends its extension. Safe for concurrent use — atomicity
// comes from the filesystem (temp file + rename), not a lock, so readers
// always see either the old or the new content of a blob, never a torn
// write.
type BlobDir struct {
	fsys faultfs.FS
	diag *diag
	dir  string
	ext  string
}

// NewBlobDir creates dir if needed and returns a BlobDir whose files all
// carry ext (e.g. ".json").
func NewBlobDir(dir, ext string) (*BlobDir, error) {
	return newBlobDir(faultfs.OS, newDiag(nil), dir, ext)
}

// newBlobDir is NewBlobDir over an explicit filesystem seam and shared
// diagnostics — the constructor Store.Open wires.
func newBlobDir(fsys faultfs.FS, d *diag, dir, ext string) (*BlobDir, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating blob dir: %w", err)
	}
	return &BlobDir{fsys: fsys, diag: d, dir: dir, ext: ext}, nil
}

// Dir returns the directory path.
func (b *BlobDir) Dir() string { return b.dir }

func (b *BlobDir) path(name string) (string, error) {
	if err := validBlobName(name); err != nil {
		return "", err
	}
	return filepath.Join(b.dir, name+b.ext), nil
}

// Put durably writes data under name, replacing any previous blob.
func (b *BlobDir) Put(name string, data []byte) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	return writeFileAtomic(b.fsys, p, data)
}

// Get reads the blob under name; a missing blob answers ErrNoBlob.
func (b *BlobDir) Get(name string) ([]byte, error) {
	p, err := b.path(name)
	if err != nil {
		return nil, err
	}
	data, err := b.fsys.ReadFile(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNoBlob, name)
	}
	return data, err
}

// Has reports whether a blob named name exists.
func (b *BlobDir) Has(name string) bool {
	p, err := b.path(name)
	if err != nil {
		return false
	}
	_, err = b.fsys.Stat(p)
	return err == nil
}

// Delete removes the blob under name. Deleting a missing blob is a no-op:
// the postcondition already holds.
func (b *BlobDir) Delete(name string) error {
	p, err := b.path(name)
	if err != nil {
		return err
	}
	if err := b.fsys.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Names lists the resident blob names, sorted.
func (b *BlobDir) Names() ([]string, error) {
	entries, err := b.fsys.ReadDir(b.dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), b.ext) {
			continue
		}
		name := strings.TrimSuffix(e.Name(), b.ext)
		if strings.HasPrefix(name, ".tmp-") || name == "" {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Stats walks the directory and sums blob count and bytes. Unreadable
// entries are skipped — stats are advisory, not transactional.
func (b *BlobDir) Stats() BlobStats {
	var s BlobStats
	entries, err := b.fsys.ReadDir(b.dir)
	if err != nil {
		return s
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), b.ext) || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.Count++
		s.Bytes += info.Size()
	}
	return s
}

// Trim deletes the oldest blobs (by modification time) until the
// directory fits maxEntries entries and maxBytes total size; a cap <= 0
// is unbounded. It reports how many blobs were removed. Trim is
// best-effort — concurrent writers may briefly overshoot the caps, and a
// blob that fails to delete is counted (trim_errors on /stats), logged at
// WARN, and skipped rather than aborting the pass: one undeletable file
// must not shield every younger entry from the caps.
func (b *BlobDir) Trim(maxEntries int, maxBytes int64) (removed int, err error) {
	if maxEntries <= 0 && maxBytes <= 0 {
		return 0, nil
	}
	entries, err := b.fsys.ReadDir(b.dir)
	if err != nil {
		b.diag.trimError(b.dir, err)
		return 0, err
	}
	type blobFile struct {
		path  string
		size  int64
		mtime int64
	}
	var files []blobFile
	var total int64
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), b.ext) || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		files = append(files, blobFile{filepath.Join(b.dir, e.Name()), info.Size(), info.ModTime().UnixNano()})
		total += info.Size()
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	kept := len(files)
	for _, f := range files {
		over := (maxEntries > 0 && kept > maxEntries) ||
			(maxBytes > 0 && total > maxBytes)
		if !over {
			break
		}
		if err := b.fsys.Remove(f.path); err != nil && !errors.Is(err, fs.ErrNotExist) {
			b.diag.trimError(b.dir, err)
			continue
		}
		removed++
		kept--
		total -= f.size
	}
	return removed, nil
}
