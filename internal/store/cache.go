package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"

	"secreta/internal/faultfs"
)

// CacheStore spills engine result-cache entries to disk so cached
// anonymizations survive a restart. Keys are the engine's content cache
// keys (dataset fingerprint + config digest, '/'-joined); file names are
// their SHA-256 so any key is a safe single-segment name. The directory
// is bounded by entry and byte caps (operator-tunable through
// secreta-serve's -disk-cache-entries / -disk-cache-bytes, defaulting to
// the package constants), trimmed oldest-first after each save.
type CacheStore struct {
	blobs      *BlobDir
	maxEntries int
	maxBytes   int64

	mu        sync.Mutex
	sinceTrim int
}

// trimEvery is the save cadence between Trim passes. Trim walks the whole
// directory (a stat per entry), which is far too expensive to pay on
// every write — the caps may transiently overshoot by up to trimEvery
// entries between passes.
const trimEvery = 64

// NewCacheStore creates dir if needed; caps <= 0 pick the package
// defaults.
func NewCacheStore(dir string, maxEntries int, maxBytes int64) (*CacheStore, error) {
	return newCacheStore(faultfs.OS, newDiag(nil), dir, maxEntries, maxBytes)
}

// newCacheStore is NewCacheStore over an explicit filesystem seam and
// shared diagnostics — the constructor Store.Open wires.
func newCacheStore(fsys faultfs.FS, d *diag, dir string, maxEntries int, maxBytes int64) (*CacheStore, error) {
	blobs, err := newBlobDir(fsys, d, dir, ".json")
	if err != nil {
		return nil, err
	}
	if maxEntries <= 0 {
		maxEntries = DefaultDiskCacheEntries
	}
	if maxBytes <= 0 {
		maxBytes = DefaultDiskCacheBytes
	}
	return &CacheStore{blobs: blobs, maxEntries: maxEntries, maxBytes: maxBytes}, nil
}

func cacheFileName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:])
}

// SaveResult durably writes one serialized cache entry, trimming the
// directory back under its caps every trimEvery saves. It satisfies
// engine.CacheBacking.
func (c *CacheStore) SaveResult(key string, data []byte) error {
	if err := c.blobs.Put(cacheFileName(key), data); err != nil {
		return err
	}
	c.mu.Lock()
	c.sinceTrim++
	due := c.sinceTrim >= trimEvery
	if due {
		c.sinceTrim = 0
	}
	c.mu.Unlock()
	if !due {
		return nil
	}
	// Best-effort: a failed trim only delays the bound, the entry itself
	// is durable. Trim counts and logs its own failures (trim_errors on
	// /stats), so they must not masquerade as a failed save — the engine
	// would misclassify the write as a disk error.
	_, _ = c.blobs.Trim(c.maxEntries, c.maxBytes)
	return nil
}

// LoadResult reads one serialized cache entry; (nil, nil) when absent.
func (c *CacheStore) LoadResult(key string) ([]byte, error) {
	data, err := c.blobs.Get(cacheFileName(key))
	if errors.Is(err, ErrNoBlob) {
		return nil, nil
	}
	return data, err
}

// Stats reports the cache directory's occupancy.
func (c *CacheStore) Stats() BlobStats { return c.blobs.Stats() }

// Caps reports the configured entry and byte bounds, for /stats.
func (c *CacheStore) Caps() (maxEntries int, maxBytes int64) {
	return c.maxEntries, c.maxBytes
}
