// Package store is the durable persistence layer of secreta-serve: a
// content-addressed blob store for registry datasets, an append-only
// checksummed write-ahead log (WAL) of job lifecycle transitions with
// periodic snapshot + truncation, and a disk-backed spill target for the
// engine's result cache. Everything the server must not lose across a
// restart lives under one data directory:
//
//	<data-dir>/
//	  datasets/<fingerprint>.json   dataset blobs (content-addressed)
//	  datasets/<fingerprint>.meta   cached {attrs, records, bytes} sidecar
//	  results/<job-id>.json         terminal job result payloads
//	  results/<job-id>.ndr          chunked record streams (framed, CRC'd)
//	  traces/<job-id>.json          terminal job trace snapshots (span trees)
//	  cache/<sha256(key)>.json      persisted result-cache entries
//	  journal/wal.log               append-only checksummed job journal
//	  journal/snapshot.json         job-table snapshot (WAL truncation point)
//
// Writes are crash-safe by construction: blobs and snapshots go through an
// fsync'd temp-file + rename in the same directory, and every WAL record
// is length-prefixed and CRC-checked so replay stops cleanly at a torn
// tail instead of refusing to boot. The package knows nothing about HTTP
// or the engine; internal/registry, internal/engine and internal/server
// consume it through narrow interfaces.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// Default disk result-cache bounds, used when the operator does not tune
// -disk-cache-entries / -disk-cache-bytes; they keep a long-lived data
// directory from growing without bound. Oldest entries (by modification
// time) are trimmed past either cap.
const (
	DefaultDiskCacheEntries = 4096
	DefaultDiskCacheBytes   = 2 << 30 // 2 GiB of serialized results
)

// DefaultSnapshotEvery is the journal's default snapshot cadence: after
// this many WAL appends the job table is snapshotted and the log
// truncated, bounding both replay time and WAL size.
const DefaultSnapshotEvery = 256

// Options tunes a Store.
type Options struct {
	// SnapshotEvery is the number of WAL appends between automatic
	// snapshots (<= 0: DefaultSnapshotEvery).
	SnapshotEvery int
	// CacheMaxEntries / CacheMaxBytes bound the on-disk result cache
	// (<= 0: package defaults).
	CacheMaxEntries int
	CacheMaxBytes   int64
}

// Store is one opened data directory. Fields are independent sub-stores;
// all of them are safe for concurrent use.
type Store struct {
	// Dir is the data directory root.
	Dir string
	// Datasets holds registry dataset blobs, fingerprint-named.
	Datasets *DatasetStore
	// Results holds terminal job result payloads, job-ID-named.
	Results *BlobDir
	// ResultChunks holds framed, chunked record streams of terminal
	// anonymize jobs (results/<job-id>.ndr, next to the .json payloads) —
	// the on-disk form streaming delivery serves without ever loading a
	// whole result into memory.
	ResultChunks *ChunkedDir
	// Traces holds the final trace snapshot (JSON span tree) of each
	// terminal job, job-ID-named — what GET /jobs/{id}/trace serves after
	// a restart.
	Traces *BlobDir
	// Cache spills engine result-cache entries to disk.
	Cache *CacheStore
	// Journal is the WAL-backed job table.
	Journal *Journal

	// Blob stats are directory walks (a stat per file); cache them
	// briefly so a monitoring poller doesn't rescan an aging data dir
	// on every probe.
	statsMu    sync.Mutex
	statsAt    time.Time
	statsBlobs [5]BlobStats // datasets, results, result chunks, traces, cache
}

// statsTTL bounds how stale the cached blob-walk numbers can be.
const statsTTL = 2 * time.Second

// Open creates (or reopens) the data directory layout and replays the
// journal: after Open returns, Journal.Jobs reflects the last durable
// state, with any torn WAL tail repaired. Concurrent Opens of the same
// directory are not supported — the store is a single-process owner.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	datasets, err := NewDatasetStore(filepath.Join(dir, "datasets"))
	if err != nil {
		return nil, err
	}
	results, err := NewBlobDir(filepath.Join(dir, "results"), ".json")
	if err != nil {
		return nil, err
	}
	chunks, err := NewChunkedDir(filepath.Join(dir, "results"), ".ndr")
	if err != nil {
		return nil, err
	}
	traces, err := NewBlobDir(filepath.Join(dir, "traces"), ".json")
	if err != nil {
		return nil, err
	}
	cache, err := NewCacheStore(filepath.Join(dir, "cache"), opts.CacheMaxEntries, opts.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	journal, err := OpenJournal(filepath.Join(dir, "journal"), opts.SnapshotEvery)
	if err != nil {
		return nil, err
	}
	return &Store{
		Dir:          dir,
		Datasets:     datasets,
		Results:      results,
		ResultChunks: chunks,
		Traces:       traces,
		Cache:        cache,
		Journal:      journal,
	}, nil
}

// Close snapshots the journal one last time (making the next boot replay
// nothing) and closes the WAL. The blob sub-stores are stateless and need
// no close.
func (s *Store) Close() error {
	return s.Journal.Close()
}

// BlobStats is the occupancy of one blob directory.
type BlobStats struct {
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
}

// Stats is a point-in-time snapshot of the store's disk occupancy and
// journal health, surfaced on GET /stats. The result-cache caps ride
// along so operators can see the configured -disk-cache-entries /
// -disk-cache-bytes bounds next to the occupancy they govern.
type Stats struct {
	Datasets BlobStats `json:"datasets"`
	Results  BlobStats `json:"results"`
	// ResultStreams counts the chunked record-stream files next to the
	// plain result payloads.
	ResultStreams BlobStats `json:"result_streams"`
	// Traces counts the persisted terminal-job trace snapshots.
	Traces              BlobStats    `json:"traces"`
	ResultCache         BlobStats    `json:"result_cache"`
	ResultCacheMaxCount int          `json:"result_cache_max_count"`
	ResultCacheMaxBytes int64        `json:"result_cache_max_bytes"`
	Journal             JournalStats `json:"journal"`
}

// Stats snapshots the journal counters and the blob-directory occupancy
// (the directory walks are cached for statsTTL; journal numbers are
// always live).
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	if time.Since(s.statsAt) >= statsTTL {
		s.statsBlobs = [5]BlobStats{s.Datasets.Stats(), s.Results.Stats(), s.ResultChunks.Stats(), s.Traces.Stats(), s.Cache.Stats()}
		s.statsAt = time.Now()
	}
	blobs := s.statsBlobs
	s.statsMu.Unlock()
	maxEntries, maxBytes := s.Cache.Caps()
	return Stats{
		Datasets:            blobs[0],
		Results:             blobs[1],
		ResultStreams:       blobs[2],
		Traces:              blobs[3],
		ResultCache:         blobs[4],
		ResultCacheMaxCount: maxEntries,
		ResultCacheMaxBytes: maxBytes,
		Journal:             s.Journal.Stats(),
	}
}
