// Package store is the durable persistence layer of secreta-serve: a
// content-addressed blob store for registry datasets, an append-only
// checksummed write-ahead log (WAL) of job lifecycle transitions with
// periodic snapshot + truncation, and a disk-backed spill target for the
// engine's result cache. Everything the server must not lose across a
// restart lives under one data directory:
//
//	<data-dir>/
//	  datasets/<fingerprint>.json   dataset blobs (content-addressed)
//	  datasets/<fingerprint>.meta   cached {attrs, records, bytes} sidecar
//	  results/<job-id>.json         terminal job result payloads
//	  results/<job-id>.ndr          chunked record streams (framed, CRC'd)
//	  traces/<job-id>.json          terminal job trace snapshots (span trees)
//	  cache/<sha256(key)>.json      persisted result-cache entries
//	  journal/wal.log               append-only checksummed job journal
//	  journal/snapshot.json         job-table snapshot (WAL truncation point)
//
// Writes are crash-safe by construction: blobs and snapshots go through an
// fsync'd temp-file + rename in the same directory, and every WAL record
// is length-prefixed and CRC-checked so replay stops cleanly at a torn
// tail instead of refusing to boot. The package knows nothing about HTTP
// or the engine; internal/registry, internal/engine and internal/server
// consume it through narrow interfaces.
package store

import (
	"bytes"
	"fmt"
	"log/slog"
	"path/filepath"
	"sync"
	"time"

	"secreta/internal/faultfs"
)

// Default disk result-cache bounds, used when the operator does not tune
// -disk-cache-entries / -disk-cache-bytes; they keep a long-lived data
// directory from growing without bound. Oldest entries (by modification
// time) are trimmed past either cap.
const (
	DefaultDiskCacheEntries = 4096
	DefaultDiskCacheBytes   = 2 << 30 // 2 GiB of serialized results
)

// DefaultSnapshotEvery is the journal's default snapshot cadence: after
// this many WAL appends the job table is snapshotted and the log
// truncated, bounding both replay time and WAL size.
const DefaultSnapshotEvery = 256

// Options tunes a Store.
type Options struct {
	// SnapshotEvery is the number of WAL appends between automatic
	// snapshots (<= 0: DefaultSnapshotEvery).
	SnapshotEvery int
	// CacheMaxEntries / CacheMaxBytes bound the on-disk result cache
	// (<= 0: package defaults).
	CacheMaxEntries int
	CacheMaxBytes   int64
	// FS is the filesystem seam every durable byte flows through (nil:
	// the real filesystem). Production wraps it in faultfs.WithRetry so
	// transient I/O errors are absorbed; tests wire a faultfs.FaultFS to
	// inject failures at any point of the persist path.
	FS faultfs.FS
	// Logger receives WARN-level I/O diagnostics — trim failures, orphan
	// sweeps (nil: slog.Default()).
	Logger *slog.Logger
}

// Store is one opened data directory. Fields are independent sub-stores;
// all of them are safe for concurrent use.
type Store struct {
	// Dir is the data directory root.
	Dir string
	// Datasets holds registry dataset blobs, fingerprint-named.
	Datasets *DatasetStore
	// Results holds terminal job result payloads, job-ID-named.
	Results *BlobDir
	// ResultChunks holds framed, chunked record streams of terminal
	// anonymize jobs (results/<job-id>.ndr, next to the .json payloads) —
	// the on-disk form streaming delivery serves without ever loading a
	// whole result into memory.
	ResultChunks *ChunkedDir
	// Traces holds the final trace snapshot (JSON span tree) of each
	// terminal job, job-ID-named — what GET /jobs/{id}/trace serves after
	// a restart.
	Traces *BlobDir
	// Cache spills engine result-cache entries to disk.
	Cache *CacheStore
	// Journal is the WAL-backed job table.
	Journal *Journal

	fsys         faultfs.FS
	diag         *diag
	orphansSwept int

	// Blob stats are directory walks (a stat per file); cache them
	// briefly so a monitoring poller doesn't rescan an aging data dir
	// on every probe.
	statsMu    sync.Mutex
	statsAt    time.Time
	statsBlobs [5]BlobStats // datasets, results, result chunks, traces, cache
}

// statsTTL bounds how stale the cached blob-walk numbers can be.
const statsTTL = 2 * time.Second

// Open creates (or reopens) the data directory layout and replays the
// journal: after Open returns, Journal.Jobs reflects the last durable
// state, with any torn WAL tail repaired. Concurrent Opens of the same
// directory are not supported — the store is a single-process owner.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty data directory")
	}
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS
	}
	d := newDiag(opts.Logger)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	datasets, err := newDatasetStore(fsys, d, filepath.Join(dir, "datasets"))
	if err != nil {
		return nil, err
	}
	results, err := newBlobDir(fsys, d, filepath.Join(dir, "results"), ".json")
	if err != nil {
		return nil, err
	}
	chunks, err := newChunkedDir(fsys, filepath.Join(dir, "results"), ".ndr")
	if err != nil {
		return nil, err
	}
	traces, err := newBlobDir(fsys, d, filepath.Join(dir, "traces"), ".json")
	if err != nil {
		return nil, err
	}
	cache, err := newCacheStore(fsys, d, filepath.Join(dir, "cache"), opts.CacheMaxEntries, opts.CacheMaxBytes)
	if err != nil {
		return nil, err
	}
	// Sweep orphaned temp files from every directory atomic writes land
	// in, before the journal starts appending — the debris of any crash
	// mid-writeFileAtomic. The journal dir is swept too (snapshots go
	// through the same temp-file dance).
	swept := 0
	for _, sub := range []string{dir, filepath.Join(dir, "datasets"), filepath.Join(dir, "results"), filepath.Join(dir, "traces"), filepath.Join(dir, "cache"), filepath.Join(dir, "journal")} {
		swept += sweepTempFiles(fsys, d.logger, sub)
	}
	journal, err := openJournal(fsys, filepath.Join(dir, "journal"), opts.SnapshotEvery)
	if err != nil {
		return nil, err
	}
	return &Store{
		Dir:          dir,
		Datasets:     datasets,
		Results:      results,
		ResultChunks: chunks,
		Traces:       traces,
		Cache:        cache,
		Journal:      journal,
		fsys:         fsys,
		diag:         d,
		orphansSwept: swept,
	}, nil
}

// OrphansSwept reports how many orphaned ".tmp-*" files Open removed —
// surfaced in the recovery block of GET /stats.
func (s *Store) OrphansSwept() int { return s.orphansSwept }

// ProbeWrite checks whether the data directory can take durable writes
// again: a full atomic write (temp file, fsync, rename, dir fsync) of a
// sentinel file, a read-back, and a removal. The degraded-mode probe
// loop calls this to decide when to re-arm writes after a storage fault.
func (s *Store) ProbeWrite() error {
	path := filepath.Join(s.Dir, ".probe")
	payload := []byte("secreta write probe\n")
	if err := writeFileAtomic(s.fsys, path, payload); err != nil {
		return fmt.Errorf("store: probe write: %w", err)
	}
	got, err := s.fsys.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: probe read-back: %w", err)
	}
	if !bytes.Equal(got, payload) {
		return fmt.Errorf("store: probe read back %d bytes, want %d", len(got), len(payload))
	}
	if err := s.fsys.Remove(path); err != nil {
		return fmt.Errorf("store: probe cleanup: %w", err)
	}
	return nil
}

// Close snapshots the journal one last time (making the next boot replay
// nothing) and closes the WAL. The blob sub-stores are stateless and need
// no close.
func (s *Store) Close() error {
	return s.Journal.Close()
}

// BlobStats is the occupancy of one blob directory.
type BlobStats struct {
	Count int   `json:"count"`
	Bytes int64 `json:"bytes"`
}

// Stats is a point-in-time snapshot of the store's disk occupancy and
// journal health, surfaced on GET /stats. The result-cache caps ride
// along so operators can see the configured -disk-cache-entries /
// -disk-cache-bytes bounds next to the occupancy they govern.
type Stats struct {
	Datasets BlobStats `json:"datasets"`
	Results  BlobStats `json:"results"`
	// ResultStreams counts the chunked record-stream files next to the
	// plain result payloads.
	ResultStreams BlobStats `json:"result_streams"`
	// Traces counts the persisted terminal-job trace snapshots.
	Traces              BlobStats    `json:"traces"`
	ResultCache         BlobStats    `json:"result_cache"`
	ResultCacheMaxCount int          `json:"result_cache_max_count"`
	ResultCacheMaxBytes int64        `json:"result_cache_max_bytes"`
	Journal             JournalStats `json:"journal"`
	// TrimErrors counts failed removals/listings across every trim and GC
	// pass since boot — a nonzero, growing value means the disk can no
	// longer delete and the caps are not being enforced.
	TrimErrors uint64 `json:"trim_errors"`
	// IORetries counts transient I/O errors absorbed by the retry layer
	// (zero when the store runs without a faultfs.RetryFS).
	IORetries uint64 `json:"io_retries"`
}

// Stats snapshots the journal counters and the blob-directory occupancy
// (the directory walks are cached for statsTTL; journal numbers are
// always live).
func (s *Store) Stats() Stats {
	s.statsMu.Lock()
	if time.Since(s.statsAt) >= statsTTL {
		s.statsBlobs = [5]BlobStats{s.Datasets.Stats(), s.Results.Stats(), s.ResultChunks.Stats(), s.Traces.Stats(), s.Cache.Stats()}
		s.statsAt = time.Now()
	}
	blobs := s.statsBlobs
	s.statsMu.Unlock()
	maxEntries, maxBytes := s.Cache.Caps()
	var retries uint64
	if r, ok := s.fsys.(interface{ Retries() uint64 }); ok {
		retries = r.Retries()
	}
	return Stats{
		Datasets:            blobs[0],
		Results:             blobs[1],
		ResultStreams:       blobs[2],
		Traces:              blobs[3],
		ResultCache:         blobs[4],
		ResultCacheMaxCount: maxEntries,
		ResultCacheMaxBytes: maxBytes,
		Journal:             s.Journal.Stats(),
		TrimErrors:          s.diag.trimErrors.Load(),
		IORetries:           retries,
	}
}
