package store

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func newTestChunkedDir(t *testing.T) *ChunkedDir {
	t.Helper()
	c, err := NewChunkedDir(t.TempDir(), ".ndr")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func writeChunks(t *testing.T, c *ChunkedDir, name string, frames [][]byte) {
	t.Helper()
	w, err := c.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frames {
		if err := w.WriteFrame(f); err != nil {
			w.Abort()
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
}

func readChunks(c *ChunkedDir, name string) ([][]byte, error) {
	r, err := c.Open(name)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var out [][]byte
	for {
		p, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, append([]byte(nil), p...))
	}
}

// TestChunkedRoundTrip pins the frame format: what was written comes back
// frame by frame, in order, on every independent Open (replayability).
func TestChunkedRoundTrip(t *testing.T) {
	c := newTestChunkedDir(t)
	frames := [][]byte{
		[]byte(`{"meta":true}`),
		bytes.Repeat([]byte("x"), 200_000), // bigger than the reader's buffer
		[]byte("tail\n"),
	}
	writeChunks(t, c, "job-1", frames)
	for pass := 0; pass < 2; pass++ {
		got, err := readChunks(c, "job-1")
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(frames) {
			t.Fatalf("pass %d: %d frames, want %d", pass, len(got), len(frames))
		}
		for i := range frames {
			if !bytes.Equal(got[i], frames[i]) {
				t.Fatalf("pass %d: frame %d diverges", pass, i)
			}
		}
	}
	if !c.Has("job-1") || c.Has("job-2") {
		t.Fatal("Has answers wrong")
	}
	s := c.Stats()
	if s.Count != 1 || s.Bytes == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

// TestChunkedAtomicVisibility: nothing is visible before Commit, Abort
// leaves no trace, and Commit replaces a previous version atomically.
func TestChunkedAtomicVisibility(t *testing.T) {
	c := newTestChunkedDir(t)
	w, err := c.Create("job-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteFrame([]byte("pending")); err != nil {
		t.Fatal(err)
	}
	if c.Has("job-1") {
		t.Fatal("uncommitted file is visible")
	}
	w.Abort()
	if c.Has("job-1") {
		t.Fatal("aborted file is visible")
	}
	writeChunks(t, c, "job-1", [][]byte{[]byte("v1")})
	writeChunks(t, c, "job-1", [][]byte{[]byte("v2")})
	got, err := readChunks(c, "job-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0]) != "v2" {
		t.Fatalf("got %q, want the replacing version", got)
	}
	if err := c.Delete("job-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Open("job-1"); !errors.Is(err, ErrNoBlob) {
		t.Fatalf("open after delete: %v, want ErrNoBlob", err)
	}
	if err := c.Delete("job-1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

// TestChunkedCorruptionDetected flips one payload byte and expects the
// reader to refuse the frame rather than hand back damaged records.
func TestChunkedCorruptionDetected(t *testing.T) {
	c := newTestChunkedDir(t)
	writeChunks(t, c, "job-1", [][]byte{[]byte("meta"), []byte("records-chunk")})
	path := filepath.Join(c.dir, "job-1.ndr")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"payload-bit-flip", func(b []byte) []byte {
			out := append([]byte(nil), b...)
			out[len(out)-1] ^= 0x40
			return out
		}},
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)-3] }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(path, tc.mutate(data), 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := readChunks(c, "job-1")
			if !errors.Is(err, ErrCorruptChunk) {
				t.Fatalf("got %v, want ErrCorruptChunk", err)
			}
		})
	}
}

// TestChunkedEmptyAndOversizedFrames pins writer-side validation.
func TestChunkedEmptyAndOversizedFrames(t *testing.T) {
	c := newTestChunkedDir(t)
	w, err := c.Create("job-1")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if err := w.WriteFrame(nil); err == nil {
		t.Fatal("empty frame accepted")
	}
	if err := w.WriteFrame([]byte("ok")); err != nil {
		t.Fatal(err)
	}
}

// TestChunkedStoreWiring checks the Store exposes and counts the chunk
// files alongside the plain result blobs.
func TestChunkedStoreWiring(t *testing.T) {
	st, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Results.Put("j-000001", []byte(`{"ok":true}`)); err != nil {
		t.Fatal(err)
	}
	writeChunks(t, st.ResultChunks, "j-000001", [][]byte{[]byte("meta"), []byte("chunk")})
	s := st.Stats()
	if s.Results.Count != 1 {
		t.Fatalf("results count = %d, want 1 (chunk files must not leak into the .json stats)", s.Results.Count)
	}
	if s.ResultStreams.Count != 1 || s.ResultStreams.Bytes == 0 {
		t.Fatalf("result_streams = %+v, want one counted stream", s.ResultStreams)
	}
	// One more frame check through the store handle, for the full path.
	got, err := readChunks(st.ResultChunks, "j-000001")
	if err != nil || len(got) != 2 {
		t.Fatalf("read through store: %v, %d frames", err, len(got))
	}
	_ = fmt.Sprintf("%v", got)
}
