package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"

	"secreta/internal/faultfs"
)

// DumpJournal pretty-prints a journal — snapshot, then every WAL record,
// then a tail verdict — for debugging (`secreta wal-dump`). It is
// strictly read-only: unlike OpenJournal it neither repairs a torn tail
// nor takes the single-process ownership of the directory, so it is safe
// to point at a live server's data dir. dir may be the data directory or
// the journal directory itself.
func DumpJournal(w io.Writer, dir string) error {
	journalDir := dir
	if _, err := os.Stat(filepath.Join(dir, "journal")); err == nil {
		journalDir = filepath.Join(dir, "journal")
	}
	snapPath := filepath.Join(journalDir, snapshotFileName)
	snap, err := readSnapshotFile(faultfs.OS, snapPath)
	if err != nil {
		return err
	}
	if snap == nil {
		fmt.Fprintf(w, "snapshot: none\n")
	} else {
		fmt.Fprintf(w, "snapshot: seq=%d taken=%s jobs=%d\n", snap.Seq, snap.TakenAt.Format("2006-01-02T15:04:05.000Z07:00"), len(snap.Jobs))
		for _, rec := range snap.Jobs {
			dumpJobLine(w, "  ", &rec)
		}
	}
	walPath := filepath.Join(journalDir, walFileName)
	data, err := os.ReadFile(walPath)
	if errors.Is(err, fs.ErrNotExist) {
		fmt.Fprintf(w, "wal: none\n")
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: reading WAL: %w", err)
	}
	records, valid, torn := scanWAL(data)
	fmt.Fprintf(w, "wal: %d records, %d bytes\n", len(records), valid)
	for i, payload := range records {
		var op walOp
		if err := json.Unmarshal(payload, &op); err != nil {
			fmt.Fprintf(w, "  [%d] unparseable record: %v\n", i, err)
			continue
		}
		switch op.Op {
		case "submit":
			if op.Job != nil {
				fmt.Fprintf(w, "  [%d] %s submit ", i, op.At.Format("15:04:05.000"))
				dumpJobLine(w, "", op.Job)
			}
		case "finish":
			msg := ""
			if op.Error != "" {
				msg = fmt.Sprintf(" error=%q", op.Error)
			}
			fmt.Fprintf(w, "  [%d] %s finish %s -> %s result=%v%s\n", i, op.At.Format("15:04:05.000"), op.ID, op.Status, op.HasResult, msg)
		default:
			fmt.Fprintf(w, "  [%d] %s %s %s\n", i, op.At.Format("15:04:05.000"), op.Op, op.ID)
		}
	}
	if torn {
		fmt.Fprintf(w, "tail: TORN — %d trailing bytes past offset %d will be dropped on the next boot\n", int64(len(data))-valid, valid)
	} else {
		fmt.Fprintf(w, "tail: clean\n")
	}
	return nil
}

func dumpJobLine(w io.Writer, indent string, rec *JobRecord) {
	ref := ""
	if rec.DatasetRef != "" {
		r := rec.DatasetRef
		if len(r) > 12 {
			r = r[:12] + "…"
		}
		ref = " ref=" + r
	}
	body := ""
	if len(rec.Body) > 0 {
		body = fmt.Sprintf(" body=%dB", len(rec.Body))
	}
	fmt.Fprintf(w, "%s%s seq=%d %s %s%s%s\n", indent, rec.ID, rec.Seq, rec.Kind, rec.Status, ref, body)
}
