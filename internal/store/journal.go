package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"secreta/internal/faultfs"
)

// JobRecord is the durable state of one job as the journal tracks it. The
// Status strings are owned by the server (queued, running, done, failed,
// cancelled, timed_out); the journal treats them as opaque except for the
// transition rules encoded in the record ops below. Body is the original
// request payload, kept only while the job is non-terminal so a crash can
// re-queue it; terminal transitions drop it to keep snapshots small.
type JobRecord struct {
	ID   string `json:"id"`
	Seq  int    `json:"seq"`
	Kind string `json:"kind"`
	// Tenant is the owning tenant's ID when the server runs with API-key
	// scoping; empty in single-tenant mode. Journaled so ownership (and
	// with it cross-tenant 404s) survives a restart.
	Tenant      string          `json:"tenant,omitempty"`
	Status      string          `json:"status"`
	Error       string          `json:"error,omitempty"`
	DatasetRef  string          `json:"dataset_ref,omitempty"`
	Body        json.RawMessage `json:"body,omitempty"`
	HasResult   bool            `json:"has_result,omitempty"`
	SubmittedAt time.Time       `json:"submitted_at"`
	StartedAt   time.Time       `json:"started_at,omitempty"`
	FinishedAt  time.Time       `json:"finished_at,omitempty"`
}

// DatasetClaim records one tenant's ownership of one dataset blob.
// Datasets are content-addressed, so two tenants uploading identical
// bytes share one blob under two claims; the blob is only eligible for
// deletion once every claim is released. Bytes is the dataset's
// approximate in-RAM size — the unit the per-tenant stored-bytes quota
// accounts with.
type DatasetClaim struct {
	Ref    string `json:"ref"`
	Tenant string `json:"tenant"`
	Bytes  int64  `json:"bytes"`
}

// walOp is one journal record: a typed transition applied to the job
// table. Ops are idempotent under replay — a snapshot that raced a crash
// before WAL truncation replays cleanly over its own history.
type walOp struct {
	// Op is "submit", "start", "finish", "delete", "dataset_claim" or
	// "dataset_release".
	Op string    `json:"op"`
	At time.Time `json:"at"`
	// Job carries the full record for "submit"; the other job ops name an
	// existing job by ID. The dataset ops reuse ID for the dataset ref.
	Job *JobRecord `json:"job,omitempty"`
	ID  string     `json:"id,omitempty"`
	// Status, Error and HasResult describe a "finish" transition.
	Status    string `json:"status,omitempty"`
	Error     string `json:"error,omitempty"`
	HasResult bool   `json:"has_result,omitempty"`
	// Tenant and Bytes describe a dataset claim/release.
	Tenant string `json:"tenant,omitempty"`
	Bytes  int64  `json:"bytes,omitempty"`
}

// StatusRunning is the one status string the journal itself writes: a
// "start" op moves a job here. Exported (untyped) so the server's Status
// constant is defined from it and the two can never drift.
const StatusRunning = "running"

// Journal is the WAL-backed job table: every lifecycle transition is
// appended (checksummed, fsync'd) before it becomes observable, the
// materialized table is snapshotted every snapshotEvery appends, and the
// WAL is truncated after each durable snapshot. Open replays
// snapshot+WAL, repairing a torn tail. Safe for concurrent use.
type Journal struct {
	mu     sync.Mutex
	fsys   faultfs.FS
	dir    string
	f      faultfs.File
	closed bool
	table  map[string]*JobRecord
	// claims is the durable dataset-ownership table: ref -> tenant ->
	// approximate bytes. Empty in single-tenant mode (nothing ever
	// claims), so the snapshot and WAL stay byte-compatible with
	// pre-tenancy journals.
	claims        map[string]map[string]int64
	seq           int
	appends       int // since the last snapshot
	walRecords    int
	walBytes      int64
	lastSnapshot  time.Time
	snapshotEvery int
	replay        ReplayStats
}

// ReplayStats describes what the last OpenJournal recovered.
type ReplayStats struct {
	// SnapshotJobs counts jobs restored from the snapshot file.
	SnapshotJobs int `json:"snapshot_jobs"`
	// WALRecords counts valid WAL records replayed on top.
	WALRecords int `json:"wal_records"`
	// TornTail reports whether trailing bytes were dropped; TornBytes is
	// how many.
	TornTail  bool  `json:"torn_tail"`
	TornBytes int64 `json:"torn_bytes,omitempty"`
}

// snapshotFile is the JSON shape of journal/snapshot.json. Datasets
// (tenant ownership claims) is omitted when empty so single-tenant
// snapshots keep their historical shape.
type snapshotFile struct {
	Seq      int            `json:"seq"`
	TakenAt  time.Time      `json:"taken_at"`
	Jobs     []JobRecord    `json:"jobs"`
	Datasets []DatasetClaim `json:"datasets,omitempty"`
}

const (
	walFileName      = "wal.log"
	snapshotFileName = "snapshot.json"
)

// OpenJournal opens (creating if needed) the journal directory, loads the
// snapshot, replays the WAL over it, truncates any torn tail in place,
// and reopens the WAL for appending. snapshotEvery <= 0 picks
// DefaultSnapshotEvery.
func OpenJournal(dir string, snapshotEvery int) (*Journal, error) {
	return openJournal(faultfs.OS, dir, snapshotEvery)
}

// openJournal is OpenJournal over an explicit filesystem seam — the
// constructor Store.Open wires.
func openJournal(fsys faultfs.FS, dir string, snapshotEvery int) (*Journal, error) {
	if snapshotEvery <= 0 {
		snapshotEvery = DefaultSnapshotEvery
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating journal dir: %w", err)
	}
	j := &Journal{
		fsys:          fsys,
		dir:           dir,
		table:         make(map[string]*JobRecord),
		claims:        make(map[string]map[string]int64),
		snapshotEvery: snapshotEvery,
		lastSnapshot:  time.Now(),
	}
	snap, err := readSnapshotFile(fsys, filepath.Join(dir, snapshotFileName))
	if err != nil {
		return nil, err
	}
	if snap != nil {
		j.seq = snap.Seq
		j.lastSnapshot = snap.TakenAt
		for i := range snap.Jobs {
			rec := snap.Jobs[i]
			j.table[rec.ID] = &rec
			j.replay.SnapshotJobs++
		}
		for _, c := range snap.Datasets {
			j.claimLocked(c)
		}
	}
	walPath := filepath.Join(dir, walFileName)
	data, err := fsys.ReadFile(walPath)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("store: reading WAL: %w", err)
	}
	records, valid, torn := scanWAL(data)
	applied := int64(0) // byte offset after the last record actually applied
	for _, payload := range records {
		var op walOp
		if err := json.Unmarshal(payload, &op); err != nil {
			// A framed record that fails to parse is corruption the CRC
			// did not catch; treat everything from here on as the tail.
			// Crucially the repair must truncate HERE, at this record's
			// own offset — truncating at scanWAL's CRC-valid boundary
			// would keep the bad record in the file and re-stop every
			// future replay at it, orphaning everything appended after.
			torn = true
			valid = applied
			break
		}
		j.apply(&op)
		j.replay.WALRecords++
		applied += int64(walHeaderSize + len(payload))
	}
	j.replay.TornTail = torn
	if torn {
		j.replay.TornBytes = int64(len(data)) - valid
	}
	f, err := fsys.OpenFile(walPath, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: opening WAL: %w", err)
	}
	// Repair the tail in place: truncate to the last valid record and
	// append from there. O_APPEND is deliberately not used — a repaired
	// file must not resurrect dropped bytes, and a single writer seeking
	// to the end is equivalent.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: repairing WAL tail: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("store: seeking WAL: %w", err)
	}
	if torn {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("store: syncing repaired WAL: %w", err)
		}
	}
	j.f = f
	j.walRecords = len(records)
	j.walBytes = valid
	return j, nil
}

func readSnapshotFile(fsys faultfs.FS, path string) (*snapshotFile, error) {
	data, err := fsys.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		// The snapshot is written atomically, so a parse failure means
		// real corruption; refusing to boot beats silently dropping the
		// whole job history (the WAL alone is not the full state).
		return nil, fmt.Errorf("store: corrupt snapshot %s: %w", path, err)
	}
	return &snap, nil
}

// apply folds one op into the table. Idempotent: replaying a WAL over a
// snapshot that already contains its effects is a no-op.
func (j *Journal) apply(op *walOp) {
	switch op.Op {
	case "submit":
		if op.Job == nil {
			return
		}
		if _, ok := j.table[op.Job.ID]; ok {
			return
		}
		rec := *op.Job
		j.table[rec.ID] = &rec
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
	case "start":
		rec, ok := j.table[op.ID]
		if !ok || rec.FinishedAt != (time.Time{}) {
			return
		}
		rec.Status = StatusRunning
		rec.StartedAt = op.At
	case "finish":
		rec, ok := j.table[op.ID]
		if !ok || rec.FinishedAt != (time.Time{}) {
			return
		}
		rec.Status = op.Status
		rec.Error = op.Error
		rec.HasResult = op.HasResult
		rec.FinishedAt = op.At
		rec.Body = nil
	case "delete":
		delete(j.table, op.ID)
	case "dataset_claim":
		j.claimLocked(DatasetClaim{Ref: op.ID, Tenant: op.Tenant, Bytes: op.Bytes})
	case "dataset_release":
		if tenants, ok := j.claims[op.ID]; ok {
			delete(tenants, op.Tenant)
			if len(tenants) == 0 {
				delete(j.claims, op.ID)
			}
		}
	}
}

// claimLocked folds one ownership claim into the claims table
// (idempotent: re-claiming refreshes the byte figure). Caller holds j.mu
// or is still single-threaded inside openJournal.
func (j *Journal) claimLocked(c DatasetClaim) {
	if c.Ref == "" || c.Tenant == "" {
		return
	}
	tenants, ok := j.claims[c.Ref]
	if !ok {
		tenants = make(map[string]int64)
		j.claims[c.Ref] = tenants
	}
	tenants[c.Tenant] = c.Bytes
}

// append journals one op: marshal, frame, fsync, fold into the table,
// and snapshot + truncate when the cadence is due.
func (j *Journal) append(op *walOp) error {
	payload, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("store: encoding journal record: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("store: journal is closed")
	}
	if err := appendWALRecord(j.f, payload); err != nil {
		// A short write leaves a torn frame mid-file; without rolling
		// back, every later append would land after it and be silently
		// dropped by replay. Truncate to the last durable frame so one
		// failed append costs one record, not the rest of the log.
		if terr := j.f.Truncate(j.walBytes); terr == nil {
			j.f.Seek(j.walBytes, 0)
		}
		return err
	}
	j.walRecords++
	j.walBytes += int64(walHeaderSize + len(payload))
	j.apply(op)
	j.appends++
	if j.appends >= j.snapshotEvery {
		if err := j.snapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// Submit journals a new job. rec.Status should be the server's queued
// state; rec.Body must carry everything needed to re-run the job after a
// crash.
func (j *Journal) Submit(rec JobRecord) error {
	return j.append(&walOp{Op: "submit", At: time.Now(), Job: &rec})
}

// Start journals the queued → running transition.
func (j *Journal) Start(id string) error {
	return j.append(&walOp{Op: "start", At: time.Now(), ID: id})
}

// Finish journals a terminal transition (done/failed/cancelled/timed_out
// in the server's vocabulary). hasResult records that a result blob was
// durably written before this call.
func (j *Journal) Finish(id, status, errMsg string, hasResult bool) error {
	return j.append(&walOp{Op: "finish", At: time.Now(), ID: id, Status: status, Error: errMsg, HasResult: hasResult})
}

// Delete journals the removal of a job record (client delete or retention
// eviction).
func (j *Journal) Delete(id string) error {
	return j.append(&walOp{Op: "delete", At: time.Now(), ID: id})
}

// ClaimDataset journals one tenant's ownership of a dataset blob.
// Idempotent per (ref, tenant).
func (j *Journal) ClaimDataset(ref, tenant string, bytes int64) error {
	return j.append(&walOp{Op: "dataset_claim", At: time.Now(), ID: ref, Tenant: tenant, Bytes: bytes})
}

// ReleaseDataset journals the removal of one tenant's claim (explicit
// DELETE or GC eviction). Releasing a claim that does not exist is a
// no-op under replay, like deleting a missing job.
func (j *Journal) ReleaseDataset(ref, tenant string) error {
	return j.append(&walOp{Op: "dataset_release", At: time.Now(), ID: ref, Tenant: tenant})
}

// DatasetClaims returns a copy of the ownership table, sorted by
// (ref, tenant) for determinism — the server rebuilds its per-tenant
// quota accounting from this at boot.
func (j *Journal) DatasetClaims() []DatasetClaim {
	j.mu.Lock()
	var out []DatasetClaim
	for ref, tenants := range j.claims {
		for tenant, bytes := range tenants {
			out = append(out, DatasetClaim{Ref: ref, Tenant: tenant, Bytes: bytes})
		}
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].Ref != out[b].Ref {
			return out[a].Ref < out[b].Ref
		}
		return out[a].Tenant < out[b].Tenant
	})
	return out
}

// Jobs returns a copy of the job table sorted by submission order.
func (j *Journal) Jobs() []JobRecord {
	j.mu.Lock()
	out := make([]JobRecord, 0, len(j.table))
	for _, rec := range j.table {
		out = append(out, *rec)
	}
	j.mu.Unlock()
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// Seq returns the highest job sequence number the journal has seen, so a
// recovering server can continue numbering without collisions.
func (j *Journal) Seq() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Snapshot forces a snapshot + WAL truncation now.
func (j *Journal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("store: journal is closed")
	}
	return j.snapshotLocked()
}

// snapshotLocked writes the job table atomically, then truncates the WAL.
// Crash windows are safe in both directions: before the rename the old
// snapshot + full WAL replay to the same state; between rename and
// truncation the new snapshot absorbs a replay of its own WAL because
// apply is idempotent. Caller holds j.mu.
func (j *Journal) snapshotLocked() error {
	snap := snapshotFile{Seq: j.seq, TakenAt: time.Now()}
	for _, rec := range j.table {
		snap.Jobs = append(snap.Jobs, *rec)
	}
	sort.Slice(snap.Jobs, func(a, b int) bool { return snap.Jobs[a].Seq < snap.Jobs[b].Seq })
	for ref, tenants := range j.claims {
		for tenant, bytes := range tenants {
			snap.Datasets = append(snap.Datasets, DatasetClaim{Ref: ref, Tenant: tenant, Bytes: bytes})
		}
	}
	sort.Slice(snap.Datasets, func(a, b int) bool {
		if snap.Datasets[a].Ref != snap.Datasets[b].Ref {
			return snap.Datasets[a].Ref < snap.Datasets[b].Ref
		}
		return snap.Datasets[a].Tenant < snap.Datasets[b].Tenant
	})
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	if err := writeFileAtomic(j.fsys, filepath.Join(j.dir, snapshotFileName), data); err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("store: truncating WAL: %w", err)
	}
	if _, err := j.f.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewinding WAL: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: syncing truncated WAL: %w", err)
	}
	j.appends = 0
	j.walRecords = 0
	j.walBytes = 0
	j.lastSnapshot = snap.TakenAt
	return nil
}

// Close snapshots one last time (so the next boot replays nothing) and
// closes the WAL file. Appends after Close fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	snapErr := j.snapshotLocked()
	j.closed = true
	closeErr := j.f.Close()
	if snapErr != nil {
		return snapErr
	}
	return closeErr
}

// JournalStats is the journal's health snapshot for GET /stats.
type JournalStats struct {
	// Jobs is the current job-table population.
	Jobs int `json:"jobs"`
	// WALRecords / WALBytes measure the log since the last truncation.
	WALRecords int   `json:"wal_records"`
	WALBytes   int64 `json:"wal_bytes"`
	// LastSnapshotAgeSec is how stale the snapshot is.
	LastSnapshotAgeSec float64 `json:"last_snapshot_age_s"`
	// Replay describes what the last boot recovered.
	Replay ReplayStats `json:"replay"`
}

// Stats snapshots the journal counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Jobs:               len(j.table),
		WALRecords:         j.walRecords,
		WALBytes:           j.walBytes,
		LastSnapshotAgeSec: time.Since(j.lastSnapshot).Seconds(),
		Replay:             j.replay,
	}
}
