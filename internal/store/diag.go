package store

import (
	"log/slog"
	"sync/atomic"
)

// diag is the store-wide fault accounting the sub-stores share: a logger
// for WARN-level I/O diagnostics and counters surfaced on GET /stats.
// Standalone sub-store constructors get a private diag; Store.Open hands
// one instance to every sub-store so the counters aggregate across the
// whole data directory.
type diag struct {
	logger     *slog.Logger
	trimErrors atomic.Uint64
}

func newDiag(logger *slog.Logger) *diag {
	if logger == nil {
		logger = slog.Default()
	}
	return &diag{logger: logger}
}

// trimError counts one failed removal or listing during a trim/GC pass
// and logs it at WARN. Trim failures used to be silently swallowed on the
// best-effort paths, which hid a disk that could no longer delete.
func (d *diag) trimError(dir string, err error) {
	d.trimErrors.Add(1)
	d.logger.Warn("store: trim error", "dir", dir, "error", err)
}
