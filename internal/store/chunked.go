package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"strings"

	"secreta/internal/faultfs"
)

// Chunked result blobs: the framed on-disk format streaming result
// delivery reads straight from disk, chunk by chunk, so serving an
// N-record result costs O(chunk) memory no matter how large N is.
//
// A chunk file is a sequence of frames, each:
//
//	[u32 length][u32 CRC32(payload)][payload]
//
// (little-endian, IEEE CRC — the same framing discipline as the WAL).
// Frame 0 is a caller-defined meta payload; every following frame is an
// opaque chunk of the record stream. Files are written through an fsync'd
// temp file + rename, so like every other blob a crash leaves either the
// whole file or nothing — there is no torn-tail repair to do, the frames
// exist purely so a *reader* never has to hold more than one in memory.

// ErrCorruptChunk reports a frame whose checksum or length does not match
// its payload — the file is damaged and the caller should treat the whole
// blob as lost.
var ErrCorruptChunk = errors.New("store: corrupt chunk frame")

// chunkHeaderSize is the per-frame overhead: u32 length + u32 CRC.
const chunkHeaderSize = 8

// maxChunkFrame caps a single frame so a corrupt length field cannot make
// a reader allocate gigabytes. Writers chunk well below this.
const maxChunkFrame = 16 << 20

// ChunkedDir stores framed chunk files in one directory, parallel to a
// BlobDir (same naming rules, its own extension).
type ChunkedDir struct {
	fsys faultfs.FS
	dir  string
	ext  string
}

// NewChunkedDir creates dir if needed and returns a ChunkedDir whose
// files all carry ext (e.g. ".ndr").
func NewChunkedDir(dir, ext string) (*ChunkedDir, error) {
	return newChunkedDir(faultfs.OS, dir, ext)
}

// newChunkedDir is NewChunkedDir over an explicit filesystem seam.
func newChunkedDir(fsys faultfs.FS, dir, ext string) (*ChunkedDir, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating chunk dir: %w", err)
	}
	return &ChunkedDir{fsys: fsys, dir: dir, ext: ext}, nil
}

func (c *ChunkedDir) path(name string) (string, error) {
	if err := validBlobName(name); err != nil {
		return "", err
	}
	return filepath.Join(c.dir, name+c.ext), nil
}

// Create opens a writer for the named chunk file. Nothing is visible
// under name until Commit; Abort (or a crash) leaves any previous file
// untouched.
func (c *ChunkedDir) Create(name string) (*ChunkWriter, error) {
	p, err := c.path(name)
	if err != nil {
		return nil, err
	}
	tmp, err := c.fsys.CreateTemp(c.dir, ".tmp-*")
	if err != nil {
		return nil, err
	}
	return &ChunkWriter{
		fsys: c.fsys,
		f:    tmp,
		bw:   bufio.NewWriterSize(tmp, 256<<10),
		dir:  c.dir,
		dest: p,
	}, nil
}

// ChunkWriter appends frames to a pending chunk file.
type ChunkWriter struct {
	fsys faultfs.FS
	f    faultfs.File
	bw   *bufio.Writer
	dir  string
	dest string
	hdr  [chunkHeaderSize]byte
	done bool
}

// WriteFrame appends one frame. Frames must be non-empty — a zero-length
// record chunk carries no information and is rejected to keep the format
// unambiguous.
func (w *ChunkWriter) WriteFrame(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("store: empty chunk frame")
	}
	if len(payload) > maxChunkFrame {
		return fmt.Errorf("store: chunk frame of %d bytes exceeds the %d cap", len(payload), maxChunkFrame)
	}
	binary.LittleEndian.PutUint32(w.hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(w.hdr[:]); err != nil {
		return err
	}
	_, err := w.bw.Write(payload)
	return err
}

// Commit flushes, fsyncs and atomically publishes the file under its
// destination name, replacing any previous version.
func (w *ChunkWriter) Commit() error {
	if w.done {
		return fmt.Errorf("store: chunk writer already finished")
	}
	w.done = true
	tmpName := w.f.Name()
	fail := func(err error) error {
		w.f.Close()
		w.fsys.Remove(tmpName)
		return err
	}
	if err := w.bw.Flush(); err != nil {
		return fail(err)
	}
	if err := w.f.Sync(); err != nil {
		return fail(err)
	}
	if err := w.f.Close(); err != nil {
		w.fsys.Remove(tmpName)
		return err
	}
	if err := w.fsys.Rename(tmpName, w.dest); err != nil {
		w.fsys.Remove(tmpName)
		return err
	}
	return w.fsys.SyncDir(w.dir)
}

// Abort discards the pending file. Safe to call after Commit (no-op).
func (w *ChunkWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	name := w.f.Name()
	w.f.Close()
	w.fsys.Remove(name)
}

// Open positions a reader at the named file's first frame; a missing file
// answers ErrNoBlob. Each Open is an independent pass over the frames, so
// a stream is replayed by simply opening again.
func (c *ChunkedDir) Open(name string) (*ChunkReader, error) {
	p, err := c.path(name)
	if err != nil {
		return nil, err
	}
	f, err := c.fsys.Open(p)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNoBlob, name)
	}
	if err != nil {
		return nil, err
	}
	return &ChunkReader{c: f, br: bufio.NewReaderSize(f, 256<<10)}, nil
}

// newChunkReader wraps an arbitrary byte stream in a ChunkReader. The
// on-disk Open path adds a file and a Close; this is the seam the frame
// decoder's tests and fuzzers use to feed it raw bytes.
func newChunkReader(r io.Reader) *ChunkReader {
	return &ChunkReader{br: bufio.NewReaderSize(r, 256<<10)}
}

// ChunkReader iterates a chunk file frame by frame.
type ChunkReader struct {
	c   io.Closer
	br  *bufio.Reader
	buf []byte
}

// Next returns the next frame's payload, io.EOF after the last frame, or
// ErrCorruptChunk when a frame fails its checksum. The returned slice is
// reused by the following Next call.
func (r *ChunkReader) Next() ([]byte, error) {
	var hdr [chunkHeaderSize]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		// A partial header cannot happen on a committed file; report it as
		// corruption, not a clean end.
		return nil, fmt.Errorf("%w: truncated frame header", ErrCorruptChunk)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n == 0 || n > maxChunkFrame {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrCorruptChunk, n)
	}
	if cap(r.buf) < int(n) {
		r.buf = make([]byte, n)
	}
	r.buf = r.buf[:n]
	if _, err := io.ReadFull(r.br, r.buf); err != nil {
		return nil, fmt.Errorf("%w: truncated frame payload", ErrCorruptChunk)
	}
	if crc32.ChecksumIEEE(r.buf) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptChunk)
	}
	return r.buf, nil
}

// Close releases the underlying file, if any.
func (r *ChunkReader) Close() error {
	if r.c == nil {
		return nil
	}
	return r.c.Close()
}

// Has reports whether a chunk file named name exists.
func (c *ChunkedDir) Has(name string) bool {
	p, err := c.path(name)
	if err != nil {
		return false
	}
	_, err = c.fsys.Stat(p)
	return err == nil
}

// Delete removes the chunk file under name; missing files are a no-op.
func (c *ChunkedDir) Delete(name string) error {
	p, err := c.path(name)
	if err != nil {
		return err
	}
	if err := c.fsys.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// Stats sums chunk file count and bytes (advisory, like BlobDir.Stats).
func (c *ChunkedDir) Stats() BlobStats {
	var s BlobStats
	entries, err := c.fsys.ReadDir(c.dir)
	if err != nil {
		return s
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), c.ext) || strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		s.Count++
		s.Bytes += info.Size()
	}
	return s
}
