package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// writeFileAtomic durably writes data to path: an fsync'd temp file in
// the same directory, renamed over the target, then the directory entry
// fsync'd. A crash at any point leaves either the old file or the new
// one, never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// validBlobName guards against path traversal and reserved names: blob
// names become file names verbatim (plus the store's extension), so they
// must be plain single-segment identifiers. Dataset fingerprints, job IDs
// and hashed cache keys all satisfy this.
func validBlobName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	if strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, os.PathSeparator) {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	return nil
}
