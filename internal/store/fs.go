package store

import (
	"errors"
	"fmt"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"strings"

	"secreta/internal/faultfs"
)

// writeFileAtomic durably writes data to path: an fsync'd temp file in
// the same directory, renamed over the target, then the directory entry
// fsync'd. A crash at any point leaves either the old file or the new
// one, never a torn mix. Every byte flows through fsys, so tests can
// inject a fault at any step.
func writeFileAtomic(fsys faultfs.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := fsys.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		fsys.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	if err := fsys.Rename(tmpName, path); err != nil {
		fsys.Remove(tmpName)
		return err
	}
	return fsys.SyncDir(dir)
}

// sweepTempFiles removes orphaned ".tmp-*" files from dir — the debris a
// crash between CreateTemp and Rename leaves behind. It reports how many
// were removed; listing or removal failures are logged and skipped, never
// fatal (an orphan costs disk space, not correctness).
func sweepTempFiles(fsys faultfs.FS, logger *slog.Logger, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		// A directory that does not exist yet (first boot) has no orphans.
		if !errors.Is(err, fs.ErrNotExist) {
			logger.Warn("store: orphan sweep: listing", "dir", dir, "error", err)
		}
		return 0
	}
	swept := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasPrefix(e.Name(), ".tmp-") {
			continue
		}
		p := filepath.Join(dir, e.Name())
		if err := fsys.Remove(p); err != nil {
			logger.Warn("store: orphan sweep: removing", "path", p, "error", err)
			continue
		}
		swept++
	}
	return swept
}

// validBlobName guards against path traversal and reserved names: blob
// names become file names verbatim (plus the store's extension), so they
// must be plain single-segment identifiers. Dataset fingerprints, job IDs
// and hashed cache keys all satisfy this.
func validBlobName(name string) error {
	if name == "" || name == "." || name == ".." {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	if strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, os.PathSeparator) {
		return fmt.Errorf("store: invalid blob name %q", name)
	}
	return nil
}
