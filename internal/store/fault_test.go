package store

import (
	"errors"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"secreta/internal/faultfs"
)

// TestWALAppendENOSPCRollsBack drives the one append path that guards
// the whole journal: a failed WAL append must roll the file back to the
// last durable frame, the journal must keep accepting appends once the
// disk recovers, and a reopen must replay exactly the successful records
// with a clean (not torn) tail. Three failure points: the frame header
// lands partially, the frame body lands partially, and the write lands
// fully but fsync fails.
func TestWALAppendENOSPCRollsBack(t *testing.T) {
	cases := []struct {
		name string
		rule faultfs.Rule
	}{
		// walHeaderSize is 8: Short < 8 tears mid-header.
		{"frame_header", faultfs.Rule{Op: faultfs.OpWrite, Path: walFileName, Err: syscall.ENOSPC, Short: 4}},
		// Short >= 8 leaves a full header and a torn payload.
		{"frame_body", faultfs.Rule{Op: faultfs.OpWrite, Path: walFileName, Err: syscall.ENOSPC, Short: 12}},
		// The write succeeds; durability fails.
		{"fsync", faultfs.Rule{Op: faultfs.OpSync, Path: walFileName, Err: syscall.ENOSPC}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := faultfs.NewFaultFS(faultfs.OS, 1)
			j, err := openJournal(ffs, dir, 1000)
			if err != nil {
				t.Fatal(err)
			}
			if err := j.Submit(submitRec("job-1", 1)); err != nil {
				t.Fatal(err)
			}
			durable := j.Stats().WALBytes

			ffs.Arm(tc.rule)
			err = j.Submit(submitRec("job-2", 2))
			if !errors.Is(err, syscall.ENOSPC) {
				t.Fatalf("append under %s fault: err=%v, want ENOSPC", tc.name, err)
			}
			if got := j.Stats().WALBytes; got != durable {
				t.Fatalf("walBytes=%d after failed append, want rollback to %d", got, durable)
			}

			// Disk recovers: the journal must append again without reopening.
			ffs.Clear()
			if err := j.Submit(submitRec("job-3", 3)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}

			// Crash (no Close, no snapshot): replay must see exactly the
			// two durable submits and a clean tail — the rollback already
			// removed the torn frame.
			j2, err := OpenJournal(dir, 1000)
			if err != nil {
				t.Fatal(err)
			}
			defer j2.Close()
			if rp := j2.Stats().Replay; rp.TornTail {
				t.Fatalf("reopen found a torn tail; rollback left debris: %+v", rp)
			}
			jobs := j2.Jobs()
			ids := make([]string, len(jobs))
			for i, rec := range jobs {
				ids[i] = rec.ID
			}
			if len(jobs) != 2 || jobs[0].ID != "job-1" || jobs[1].ID != "job-3" {
				t.Fatalf("replayed jobs %v, want [job-1 job-3]", ids)
			}
		})
	}
}

// TestTrimCountsRemoveErrorsAndContinues pins the trim contract: a file
// that cannot be removed is counted (trim_errors) and skipped, and the
// younger files past it are still trimmed so one undeletable file does
// not wedge the cap.
func TestTrimCountsRemoveErrorsAndContinues(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.NewFaultFS(faultfs.OS, 1)
	d := newDiag(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	b, err := newBlobDir(ffs, d, dir, ".json")
	if err != nil {
		t.Fatal(err)
	}
	base := time.Now().Add(-time.Hour)
	for i, key := range []string{"aa", "bb", "cc"} {
		if err := b.Put(key, []byte(`{"v":1}`)); err != nil {
			t.Fatal(err)
		}
		// Stamp ascending mtimes so trim order is deterministic: aa oldest.
		mt := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, key+".json"), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	ffs.Arm(faultfs.Rule{Op: faultfs.OpRemove, Path: "aa.json", Err: syscall.EIO, Count: -1})

	removed, err := b.Trim(1, 0)
	if err != nil {
		t.Fatalf("trim: %v (remove errors must not abort the pass)", err)
	}
	if removed != 2 {
		t.Fatalf("removed=%d, want 2 (bb and cc past the stuck aa)", removed)
	}
	if got := d.trimErrors.Load(); got != 1 {
		t.Fatalf("trim_errors=%d, want 1", got)
	}
	if !b.Has("aa") {
		t.Fatal("undeletable aa should survive")
	}
	if b.Has("bb") || b.Has("cc") {
		t.Fatal("younger entries should have been trimmed past the stuck one")
	}
}

// TestOpenSweepsOrphanedTempFiles: debris of atomic writes interrupted by
// a crash (".tmp-*") is removed at Open and counted for /stats.
func TestOpenSweepsOrphanedTempFiles(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.Close()
	orphans := []string{
		filepath.Join(dir, "results", ".tmp-123"),
		filepath.Join(dir, "cache", ".tmp-999"),
		filepath.Join(dir, "journal", ".tmp-1"),
	}
	for _, p := range orphans {
		if err := os.WriteFile(p, []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// A real blob must survive the sweep.
	keep := filepath.Join(dir, "results", "job.json")
	if err := os.WriteFile(keep, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.OrphansSwept(); got != len(orphans) {
		t.Fatalf("OrphansSwept=%d, want %d", got, len(orphans))
	}
	for _, p := range orphans {
		if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("orphan %s survived the sweep (err=%v)", p, err)
		}
	}
	if _, err := os.Stat(keep); err != nil {
		t.Fatalf("sweep removed a real blob: %v", err)
	}
}

// TestStoreRetriesTransientAndCountsThem wires the production FS stack
// (RetryFS over a fault injector) through Open and proves a transient
// EINTR is absorbed invisibly — the operation succeeds and the retry is
// visible on Stats().IORetries.
func TestStoreRetriesTransientAndCountsThem(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.NewFaultFS(faultfs.OS, 1)
	var slept int
	retry := faultfs.WithRetry(ffs, faultfs.RetryPolicy{
		Attempts: 3,
		Sleep:    func(time.Duration) { slept++ }, // injected: tests never sleep real time
	})
	st, err := Open(dir, Options{FS: retry})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ffs.Arm(faultfs.Rule{Op: faultfs.OpSync, Path: walFileName, Err: syscall.EINTR})
	if err := st.Journal.Submit(submitRec("job-1", 1)); err != nil {
		t.Fatalf("transient fault leaked through the retry layer: %v", err)
	}
	if got := st.Stats().IORetries; got != 1 {
		t.Fatalf("io_retries=%d, want 1", got)
	}
	if slept != 1 {
		t.Fatalf("backoff slept %d times, want 1", slept)
	}
}

// TestStorePermanentFaultFailsFast: the retry layer must not mask a
// permanent error — EIO surfaces on the first attempt with no retries.
func TestStorePermanentFaultFailsFast(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.NewFaultFS(faultfs.OS, 1)
	retry := faultfs.WithRetry(ffs, faultfs.RetryPolicy{
		Attempts: 3,
		Sleep:    func(time.Duration) { t.Fatal("permanent errors must not back off") },
	})
	st, err := Open(dir, Options{FS: retry})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ffs.Arm(faultfs.Rule{Op: faultfs.OpSync, Path: walFileName, Err: syscall.EIO})
	if err := st.Journal.Submit(submitRec("job-1", 1)); !errors.Is(err, syscall.EIO) {
		t.Fatalf("err=%v, want EIO surfaced immediately", err)
	}
	if got := st.Stats().IORetries; got != 0 {
		t.Fatalf("io_retries=%d, want 0 for a permanent fault", got)
	}
}

// TestProbeWriteDetectsAndClearsFault: ProbeWrite is the degraded-mode
// re-arm check; it must fail while the data dir cannot take durable
// writes and succeed (cleaning up its sentinel) once it can.
func TestProbeWriteDetectsAndClearsFault(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.NewFaultFS(faultfs.OS, 1)
	st, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	ffs.Arm(faultfs.Rule{Op: faultfs.OpRename, Path: ".probe", Err: syscall.EIO, Count: -1})
	if err := st.ProbeWrite(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("probe with broken rename: err=%v, want EIO", err)
	}
	ffs.Clear()
	if err := st.ProbeWrite(); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".probe")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("probe sentinel left behind (err=%v)", err)
	}
}

// TestNoBareTimeSleepInStore is the flaky-guard lint: every wait in the
// store's fault/retry machinery must go through an injectable clock, so
// fault tests run at full speed. A bare time.Sleep in this package is a
// regression.
func TestNoBareTimeSleepInStore(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Contains(string(data), "time.Sleep") {
			t.Errorf("%s calls time.Sleep directly; route waits through an injectable Sleep (see faultfs.RetryPolicy)", name)
		}
	}
}
