package store

import (
	"bytes"
	"encoding/json"
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/faultfs"
)

// DatasetMeta is the cheap-to-read description of one stored dataset,
// kept in a sidecar file so booting a registry over a large data
// directory does not decode every blob.
type DatasetMeta struct {
	ID      string `json:"dataset_ref"`
	Attrs   int    `json:"attrs"`
	Records int    `json:"records"`
	// Bytes is the dataset's approximate in-RAM size (dataset.ApproxBytes),
	// the cost the registry LRU accounts with — not the blob's disk size.
	Bytes int64 `json:"bytes"`
}

// DatasetStore persists registry datasets as content-addressed blobs:
// <fingerprint>.json holds the dataset in the same JSON format the HTTP
// API speaks, <fingerprint>.meta the sidecar. Load verifies that the
// decoded dataset's fingerprint matches its file name, so a corrupt or
// tampered blob can never impersonate a dataset_ref.
type DatasetStore struct {
	blobs *BlobDir
	metas *BlobDir
}

// NewDatasetStore creates dir if needed.
func NewDatasetStore(dir string) (*DatasetStore, error) {
	return newDatasetStore(faultfs.OS, newDiag(nil), dir)
}

// newDatasetStore is NewDatasetStore over an explicit filesystem seam and
// shared diagnostics — the constructor Store.Open wires.
func newDatasetStore(fsys faultfs.FS, d *diag, dir string) (*DatasetStore, error) {
	blobs, err := newBlobDir(fsys, d, dir, ".json")
	if err != nil {
		return nil, err
	}
	metas, err := newBlobDir(fsys, d, dir, ".meta")
	if err != nil {
		return nil, err
	}
	return &DatasetStore{blobs: blobs, metas: metas}, nil
}

// Save durably writes ds under id (its content fingerprint). The blob is
// written before the meta sidecar, so a crash between the two leaves a
// valid blob whose meta List regenerates.
func (s *DatasetStore) Save(id string, ds *dataset.Dataset) error {
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		return fmt.Errorf("store: encoding dataset %q: %w", id, err)
	}
	if err := s.blobs.Put(id, buf.Bytes()); err != nil {
		return err
	}
	return s.writeMeta(id, ds)
}

func (s *DatasetStore) writeMeta(id string, ds *dataset.Dataset) error {
	meta := DatasetMeta{ID: id, Attrs: len(ds.Attrs), Records: len(ds.Records), Bytes: ds.ApproxBytes()}
	data, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("store: encoding dataset meta %q: %w", id, err)
	}
	return s.metas.Put(id, data)
}

// Load reads and decodes the dataset under id, verifying its content
// fingerprint against the name it was stored under.
func (s *DatasetStore) Load(id string) (*dataset.Dataset, error) {
	data, err := s.blobs.Get(id)
	if err != nil {
		return nil, err
	}
	ds, err := dataset.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("store: decoding dataset %q: %w", id, err)
	}
	if got := ds.Fingerprint(); got != id {
		return nil, fmt.Errorf("store: dataset blob %q is corrupt: content fingerprint is %q", id, got)
	}
	return ds, nil
}

// Delete removes the blob and its meta sidecar; missing files are fine.
// A blob that fails to delete counts as a trim error (trim_errors on
// /stats) — the retention sweeper skips stuck files rather than wedging,
// and the counter is how an operator notices them.
func (s *DatasetStore) Delete(id string) error {
	if err := s.blobs.Delete(id); err != nil {
		s.blobs.diag.trimError(s.blobs.dir, err)
		return err
	}
	return s.metas.Delete(id)
}

// List describes every stored dataset. A blob whose meta sidecar is
// missing (crash between the two writes, or an older layout) is decoded
// once to regenerate it; a blob that fails to decode is skipped — one
// corrupt upload must not take the whole index down.
func (s *DatasetStore) List() ([]DatasetMeta, error) {
	names, err := s.blobs.Names()
	if err != nil {
		return nil, err
	}
	out := make([]DatasetMeta, 0, len(names))
	for _, id := range names {
		if data, err := s.metas.Get(id); err == nil {
			var meta DatasetMeta
			if json.Unmarshal(data, &meta) == nil && meta.ID == id {
				out = append(out, meta)
				continue
			}
		}
		ds, err := s.Load(id)
		if err != nil {
			continue
		}
		// Rewriting the sidecar is an optimization for the next List; a
		// failure (read-only disk) must not veto the index — we already
		// have the meta in hand.
		_ = s.writeMeta(id, ds)
		out = append(out, DatasetMeta{ID: id, Attrs: len(ds.Attrs), Records: len(ds.Records), Bytes: ds.ApproxBytes()})
	}
	return out, nil
}

// Stats reports blob-file occupancy (disk bytes, not ApproxBytes).
func (s *DatasetStore) Stats() BlobStats { return s.blobs.Stats() }
