// Package policy implements the privacy and utility policies of
// constraint-based transaction anonymization (COAT, Loukides et al. KAIS
// 2011; PCTA, Gkoulalas-Divanis & Loukides TDP 2012), together with the
// automatic generation strategies SECRETA's Policy Specification Module
// offers. A privacy constraint is an itemset whose support must be at
// least k (or zero, after protection); a utility constraint is the maximal
// group of items that may be generalized together.
package policy

import (
	"fmt"
	"sort"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
	"secreta/internal/privacy"
)

// PrivacyConstraint is an itemset that must be protected: after
// anonymization its support must be >= k or 0.
type PrivacyConstraint struct {
	Items []string
}

func (p PrivacyConstraint) String() string { return strings.Join(p.Items, " ") }

// UtilityConstraint is a labeled maximal generalization group: items inside
// the same constraint may be merged into one generalized item; items from
// different constraints may not.
type UtilityConstraint struct {
	Label string
	Items []string
}

func (u UtilityConstraint) String() string {
	return u.Label + ": " + strings.Join(u.Items, " ")
}

// Policy bundles the privacy and utility constraints given to COAT/PCTA.
type Policy struct {
	Privacy []PrivacyConstraint
	Utility []UtilityConstraint
}

// UtilityIndex maps each item to the index of its utility constraint;
// items outside every constraint are absent (they can only be kept intact
// or suppressed).
func (p *Policy) UtilityIndex() map[string]int {
	idx := make(map[string]int)
	for i, u := range p.Utility {
		for _, it := range u.Items {
			idx[it] = i
		}
	}
	return idx
}

// Validate checks that privacy constraints are non-empty, sorted and
// duplicate-free, and that no item belongs to two utility constraints.
func (p *Policy) Validate() error {
	for i, pc := range p.Privacy {
		if len(pc.Items) == 0 {
			return fmt.Errorf("policy: privacy constraint %d is empty", i)
		}
		if !sort.StringsAreSorted(pc.Items) {
			return fmt.Errorf("policy: privacy constraint %d is not sorted", i)
		}
		for j := 1; j < len(pc.Items); j++ {
			if pc.Items[j] == pc.Items[j-1] {
				return fmt.Errorf("policy: privacy constraint %d has duplicate item %q", i, pc.Items[j])
			}
		}
	}
	seen := make(map[string]string)
	labels := make(map[string]bool)
	for _, u := range p.Utility {
		if u.Label == "" {
			return fmt.Errorf("policy: utility constraint with empty label")
		}
		if labels[u.Label] {
			return fmt.Errorf("policy: duplicate utility label %q", u.Label)
		}
		labels[u.Label] = true
		if len(u.Items) == 0 {
			return fmt.Errorf("policy: utility constraint %q is empty", u.Label)
		}
		for _, it := range u.Items {
			if prev, dup := seen[it]; dup {
				return fmt.Errorf("policy: item %q in utility constraints %q and %q", it, prev, u.Label)
			}
			seen[it] = u.Label
		}
	}
	return nil
}

// normalize sorts and deduplicates an itemset.
func normalize(items []string) []string {
	out := append([]string(nil), items...)
	sort.Strings(out)
	w := 0
	for i, it := range out {
		if it == "" || (i > 0 && out[i-1] == it) {
			continue
		}
		out[w] = it
		w++
	}
	return out[:w]
}

// --- Generation strategies (Policy Specification Module) ---

// PrivacyAllItems protects every single item: one constraint per item in
// the dataset's item domain — the strictest of COAT's strategies.
func PrivacyAllItems(ds *dataset.Dataset) []PrivacyConstraint {
	dom := ds.ItemDomain()
	out := make([]PrivacyConstraint, len(dom))
	for i, it := range dom {
		out[i] = PrivacyConstraint{Items: []string{it}}
	}
	return out
}

// PrivacyFrequent protects every itemset of size 1..maxSize whose support
// is at least minSupport — modeling an attacker who knows combinations
// that actually occur.
func PrivacyFrequent(ds *dataset.Dataset, minSupport, maxSize int) []PrivacyConstraint {
	if maxSize < 1 {
		maxSize = 1
	}
	if minSupport < 1 {
		minSupport = 1
	}
	trs := privacy.Transactions(ds, nil)
	support := make(map[string]int)
	for size := 1; size <= maxSize; size++ {
		for _, tr := range trs {
			forEachSubset(tr, size, func(sub []string) {
				support[strings.Join(sub, "\x00")]++
			})
		}
	}
	keys := make([]string, 0, len(support))
	for k, s := range support {
		if s >= minSupport {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		ni, nj := strings.Count(keys[i], "\x00"), strings.Count(keys[j], "\x00")
		if ni != nj {
			return ni < nj
		}
		return keys[i] < keys[j]
	})
	out := make([]PrivacyConstraint, len(keys))
	for i, k := range keys {
		out[i] = PrivacyConstraint{Items: strings.Split(k, "\x00")}
	}
	return out
}

func forEachSubset(items []string, k int, fn func([]string)) {
	n := len(items)
	if k > n || k <= 0 {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sub := make([]string, k)
	for {
		for i, j := range idx {
			sub[i] = items[j]
		}
		fn(sub)
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// UtilityFromHierarchy derives utility constraints from an item hierarchy:
// each node at the given depth (from the root) becomes one constraint
// containing its leaves. Depth 0 yields a single all-items constraint; the
// deeper the level, the stricter the policy.
func UtilityFromHierarchy(h *hierarchy.Hierarchy, depth int) []UtilityConstraint {
	var out []UtilityConstraint
	var walk func(n *hierarchy.Node)
	walk = func(n *hierarchy.Node) {
		if n.Depth() == depth || n.IsLeaf() {
			out = append(out, UtilityConstraint{Label: n.Value, Items: normalize(n.Leaves())})
			return
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(h.Root)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// UtilityTop allows any generalization: one constraint covering the whole
// item domain — the most permissive policy.
func UtilityTop(ds *dataset.Dataset) []UtilityConstraint {
	dom := ds.ItemDomain()
	if len(dom) == 0 {
		return nil
	}
	return []UtilityConstraint{{Label: "ALL", Items: dom}}
}

// UtilitySingletons forbids all generalization: each item alone. Under
// this policy COAT can only keep or suppress items.
func UtilitySingletons(ds *dataset.Dataset) []UtilityConstraint {
	dom := ds.ItemDomain()
	out := make([]UtilityConstraint, len(dom))
	for i, it := range dom {
		out[i] = UtilityConstraint{Label: it, Items: []string{it}}
	}
	return out
}
