package policy

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// File formats (Configuration Editor uploads):
//
// Privacy policy: one constraint per line, items separated by spaces:
//
//	flu diabetes
//	hypertension
//
// Utility policy: one constraint per line, "label: item item ...":
//
//	respiratory: flu asthma
//	metabolic: diabetes obesity

// ReadPrivacy parses a privacy policy file.
func ReadPrivacy(r io.Reader) ([]PrivacyConstraint, error) {
	var out []PrivacyConstraint
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		items := normalize(strings.Fields(line))
		if len(items) == 0 {
			return nil, fmt.Errorf("policy: line %d: empty constraint", lineNo)
		}
		out = append(out, PrivacyConstraint{Items: items})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("policy: empty privacy policy")
	}
	return out, nil
}

// WritePrivacy serializes a privacy policy.
func WritePrivacy(w io.Writer, cs []PrivacyConstraint) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs {
		if _, err := bw.WriteString(c.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadUtility parses a utility policy file.
func ReadUtility(r io.Reader) ([]UtilityConstraint, error) {
	var out []UtilityConstraint
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		label, rhs, found := strings.Cut(line, ":")
		if !found {
			return nil, fmt.Errorf("policy: line %d: missing ':'", lineNo)
		}
		label = strings.TrimSpace(label)
		items := normalize(strings.Fields(rhs))
		if label == "" || len(items) == 0 {
			return nil, fmt.Errorf("policy: line %d: malformed utility constraint", lineNo)
		}
		out = append(out, UtilityConstraint{Label: label, Items: items})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("policy: empty utility policy")
	}
	return out, nil
}

// WriteUtility serializes a utility policy.
func WriteUtility(w io.Writer, cs []UtilityConstraint) error {
	bw := bufio.NewWriter(w)
	for _, c := range cs {
		if _, err := bw.WriteString(c.String() + "\n"); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadPrivacyFile reads a privacy policy from disk.
func LoadPrivacyFile(path string) ([]PrivacyConstraint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadPrivacy(f)
}

// LoadUtilityFile reads a utility policy from disk.
func LoadUtilityFile(path string) ([]UtilityConstraint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadUtility(f)
}
