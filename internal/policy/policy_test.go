package policy

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
)

func data(t testing.TB) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{{Name: "A"}}, "T")
	for _, items := range [][]string{
		{"a", "b"}, {"a", "b"}, {"a", "c"}, {"d"},
	} {
		if err := ds.AddRecord(dataset.Record{Values: []string{"x"}, Items: items}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestValidate(t *testing.T) {
	p := &Policy{
		Privacy: []PrivacyConstraint{{Items: []string{"a", "b"}}},
		Utility: []UtilityConstraint{{Label: "u1", Items: []string{"a", "b"}}, {Label: "u2", Items: []string{"c"}}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Policy{Privacy: []PrivacyConstraint{{}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty privacy constraint accepted")
	}
	bad = &Policy{Privacy: []PrivacyConstraint{{Items: []string{"b", "a"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted constraint accepted")
	}
	bad = &Policy{Privacy: []PrivacyConstraint{{Items: []string{"a", "a"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate item accepted")
	}
	bad = &Policy{Utility: []UtilityConstraint{{Label: "u", Items: []string{"a"}}, {Label: "v", Items: []string{"a"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("overlapping utility constraints accepted")
	}
	bad = &Policy{Utility: []UtilityConstraint{{Label: "u", Items: []string{"a"}}, {Label: "u", Items: []string{"b"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("duplicate utility label accepted")
	}
	bad = &Policy{Utility: []UtilityConstraint{{Label: "", Items: []string{"a"}}}}
	if err := bad.Validate(); err == nil {
		t.Error("empty label accepted")
	}
}

func TestUtilityIndex(t *testing.T) {
	p := &Policy{Utility: []UtilityConstraint{
		{Label: "u1", Items: []string{"a", "b"}},
		{Label: "u2", Items: []string{"c"}},
	}}
	idx := p.UtilityIndex()
	if idx["a"] != 0 || idx["b"] != 0 || idx["c"] != 1 {
		t.Errorf("index = %v", idx)
	}
	if _, ok := idx["z"]; ok {
		t.Error("uncovered item indexed")
	}
}

func TestPrivacyAllItems(t *testing.T) {
	ds := data(t)
	cs := PrivacyAllItems(ds)
	if len(cs) != 4 {
		t.Fatalf("constraints = %v", cs)
	}
	if cs[0].Items[0] != "a" {
		t.Errorf("first = %v", cs[0])
	}
}

func TestPrivacyFrequent(t *testing.T) {
	ds := data(t)
	cs := PrivacyFrequent(ds, 2, 2)
	// Supports: a=3,b=2,c=1,d=1; {a,b}=2,{a,c}=1.
	want := [][]string{{"a"}, {"b"}, {"a", "b"}}
	if len(cs) != len(want) {
		t.Fatalf("constraints = %v", cs)
	}
	for i := range want {
		if !reflect.DeepEqual(cs[i].Items, want[i]) {
			t.Errorf("constraint %d = %v, want %v", i, cs[i].Items, want[i])
		}
	}
	// Defaults clamp bad parameters.
	if got := PrivacyFrequent(ds, 0, 0); len(got) == 0 {
		t.Error("clamped parameters yield nothing")
	}
}

func TestUtilityFromHierarchy(t *testing.T) {
	h, err := hierarchy.NewBuilder("T").
		Add("All", "ab").Add("All", "cd").
		Add("ab", "a").Add("ab", "b").
		Add("cd", "c").Add("cd", "d").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	top := UtilityFromHierarchy(h, 0)
	if len(top) != 1 || len(top[0].Items) != 4 {
		t.Errorf("depth 0 = %v", top)
	}
	mid := UtilityFromHierarchy(h, 1)
	if len(mid) != 2 || !reflect.DeepEqual(mid[0].Items, []string{"a", "b"}) {
		t.Errorf("depth 1 = %v", mid)
	}
	leaf := UtilityFromHierarchy(h, 2)
	if len(leaf) != 4 {
		t.Errorf("depth 2 = %v", leaf)
	}
	p := &Policy{Utility: mid}
	if err := p.Validate(); err != nil {
		t.Errorf("hierarchy-derived policy invalid: %v", err)
	}
}

func TestUtilityTopAndSingletons(t *testing.T) {
	ds := data(t)
	top := UtilityTop(ds)
	if len(top) != 1 || len(top[0].Items) != 4 {
		t.Errorf("top = %v", top)
	}
	singles := UtilitySingletons(ds)
	if len(singles) != 4 || singles[0].Label != "a" {
		t.Errorf("singletons = %v", singles)
	}
	empty := dataset.New([]dataset.Attribute{{Name: "A"}}, "")
	if UtilityTop(empty) != nil {
		t.Error("top policy for itemless dataset")
	}
}

func TestPrivacyIO(t *testing.T) {
	in := "# attacker knowledge\nflu diabetes\nhypertension\n"
	cs, err := ReadPrivacy(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || !reflect.DeepEqual(cs[0].Items, []string{"diabetes", "flu"}) {
		t.Errorf("parsed = %v", cs)
	}
	var buf bytes.Buffer
	if err := WritePrivacy(&buf, cs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadPrivacy(&buf)
	if err != nil || !reflect.DeepEqual(back, cs) {
		t.Errorf("round-trip = %v, %v", back, err)
	}
	if _, err := ReadPrivacy(strings.NewReader("")); err == nil {
		t.Error("empty privacy policy accepted")
	}
}

func TestUtilityIO(t *testing.T) {
	in := "respiratory: flu asthma\nmetabolic: diabetes\n"
	cs, err := ReadUtility(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || cs[0].Label != "respiratory" {
		t.Errorf("parsed = %v", cs)
	}
	var buf bytes.Buffer
	if err := WriteUtility(&buf, cs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadUtility(&buf)
	if err != nil || !reflect.DeepEqual(back, cs) {
		t.Errorf("round-trip = %v, %v", back, err)
	}
	for _, bad := range []string{"", "no colon here\n", ": items\n", "label:\n"} {
		if _, err := ReadUtility(strings.NewReader(bad)); err == nil {
			t.Errorf("ReadUtility(%q) accepted", bad)
		}
	}
}
