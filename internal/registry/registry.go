// Package registry provides the concurrent storage subsystem of the
// anonymization service: a content-addressed dataset store and a generic
// size-bounded LRU cache, both with explicit eviction and sharing
// semantics.
//
// The Registry stores decoded datasets keyed by their content fingerprint,
// so a dataset is uploaded once and referenced by ID from any number of
// jobs instead of being resubmitted inline with each request. References
// are ref-counted pins: a dataset pinned by a running job cannot be
// evicted or deleted until every pin is released, while unpinned datasets
// age out least-recently-used under configurable entry and byte caps. The
// same LRU primitive backs the engine's result cache, giving the service
// one bounded-memory story across both layers.
//
// A Registry may additionally be backed by a durable Backing (the
// server's on-disk blob store): every upload is written through to disk
// before it is acknowledged, RAM eviction then only drops the cached
// copy, and a later Pin transparently reloads the dataset from disk. With
// a backing, the registry is a pin-aware RAM cache over the durable
// store rather than the sole copy, and datasets survive process
// restarts.
package registry

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"secreta/internal/dataset"
)

// ErrPinned is returned by Remove when the dataset is held by a running
// job.
var ErrPinned = errors.New("registry: dataset is pinned by a running job")

// ErrNotFound is returned when no dataset with the given ID is available —
// either it was never uploaded, or it has been evicted (memory-only
// registry) or deleted.
var ErrNotFound = errors.New("registry: no such dataset")

// ErrTooLarge is returned by Add when a single dataset exceeds the
// registry's byte cap and could therefore never be resident.
var ErrTooLarge = errors.New("registry: dataset exceeds the registry byte cap")

// ErrStore is returned when the durable backing fails (I/O error, corrupt
// blob). It is distinct from ErrNotFound so callers can answer 500, not
// 404.
var ErrStore = errors.New("registry: dataset store failure")

// Backing is the durable side of a disk-backed registry. Save must be
// atomic and durable before returning; Load must verify integrity
// (content fingerprint) and fail rather than hand back a corrupt
// dataset. Implemented by internal/store's DatasetStore via a thin
// adapter in the server.
type Backing interface {
	Save(id string, ds *dataset.Dataset) error
	Load(id string) (*dataset.Dataset, error)
	Delete(id string) error
	List() ([]BackedDataset, error)
}

// BackedDataset describes one dataset resident in the durable backing.
type BackedDataset struct {
	ID      string
	Attrs   int
	Records int
	// Bytes is the approximate in-RAM size (the LRU's cost unit).
	Bytes int64
}

// Registry is a content-addressed store of decoded datasets. The ID of a
// dataset is its content fingerprint: uploading identical bytes twice
// yields the same ID and one resident copy. Safe for concurrent use.
type Registry struct {
	lru      *LRU
	maxBytes int64

	// mu guards the durable index, the per-ID I/O gate and the lazy-pin
	// reservation counts. Disk I/O is never done under mu — a slow load of
	// one dataset must not stall operations on every other; busy
	// serializes disk operations per ID instead (and doubles as
	// single-flight for concurrent pin-misses).
	mu      sync.Mutex
	backing Backing
	meta    map[string]BackedDataset
	busy    map[string]*sync.WaitGroup
	// refs counts lazy-pin reservations (PinLazy): the dataset's index
	// entry is held — Remove fails — but its bytes need not be resident.
	refs map[string]int
}

// New builds a memory-only registry bounded by maxDatasets entries and
// maxBytes of approximate in-memory dataset size. A cap <= 0 disables
// that bound.
func New(maxDatasets int, maxBytes int64) *Registry {
	return &Registry{lru: NewLRU(maxDatasets, maxBytes), maxBytes: maxBytes}
}

// NewBacked builds a registry whose datasets are written through to b and
// reloaded from it on demand; the entry/byte caps bound only the RAM
// cache, not the durable population. The backing's existing datasets are
// indexed immediately (this is the dataset half of crash recovery), but
// their bytes stay on disk until a job pins them.
func NewBacked(maxDatasets int, maxBytes int64, b Backing) (*Registry, error) {
	r := New(maxDatasets, maxBytes)
	r.backing = b
	r.meta = make(map[string]BackedDataset)
	r.busy = make(map[string]*sync.WaitGroup)
	r.refs = make(map[string]int)
	list, err := b.List()
	if err != nil {
		return nil, fmt.Errorf("%w: indexing datasets: %v", ErrStore, err)
	}
	for _, m := range list {
		r.meta[m.ID] = m
	}
	return r, nil
}

// beginIO claims the disk-I/O gate for id, waiting out any operation
// already in flight on it, and returns the release func. Per-ID: I/O on
// different datasets proceeds concurrently. Callers must not hold r.mu.
func (r *Registry) beginIO(id string) func() {
	r.mu.Lock()
	for {
		wg, inFlight := r.busy[id]
		if !inFlight {
			break
		}
		r.mu.Unlock()
		wg.Wait()
		r.mu.Lock()
	}
	wg := new(sync.WaitGroup)
	wg.Add(1)
	r.busy[id] = wg
	r.mu.Unlock()
	return func() {
		r.mu.Lock()
		delete(r.busy, id)
		r.mu.Unlock()
		wg.Done()
	}
}

// Info describes one known dataset. Resident reports whether a decoded
// copy is currently in RAM; a disk-backed registry lists non-resident
// datasets too (Pins is necessarily 0 for those).
type Info struct {
	ID       string `json:"dataset_ref"`
	Attrs    int    `json:"attrs"`
	Records  int    `json:"records"`
	Bytes    int64  `json:"bytes"`
	Pins     int    `json:"pins"`
	Resident bool   `json:"resident"`
}

// Add stores ds under its content fingerprint and returns the ID. Adding
// a dataset that is already known refreshes its recency and reports
// created=false; the stored copy is kept, so callers must treat stored
// datasets as immutable. With a durable backing the dataset is written to
// disk before it is acknowledged. Unpinned datasets may be evicted from
// RAM to make room; when every resident is pinned the registry overshoots
// its caps rather than bouncing the newcomer, and only a dataset larger
// than the whole byte cap is refused (ErrTooLarge).
func (r *Registry) Add(ds *dataset.Dataset) (id string, created bool, err error) {
	id = ds.Fingerprint()
	if _, ok := r.lru.Get(id); ok {
		return id, false, nil
	}
	if r.backing == nil {
		if !r.lru.Put(id, ds, ds.ApproxBytes()) {
			return "", false, fmt.Errorf("%w (%d bytes)", ErrTooLarge, ds.ApproxBytes())
		}
		return id, true, nil
	}
	cost := ds.ApproxBytes()
	if r.maxBytes > 0 && cost > r.maxBytes {
		return "", false, fmt.Errorf("%w (%d bytes)", ErrTooLarge, cost)
	}
	end := r.beginIO(id)
	defer end()
	r.mu.Lock()
	_, known := r.meta[id]
	if !known {
		// Claim the index entry before the (slow) disk write, off-lock;
		// a concurrent identical upload sees the claim and answers
		// created=false with its own decoded copy. The index is RAM-only
		// (rebuilt from disk at boot), so a crash mid-save leaves no
		// trace of either.
		r.meta[id] = BackedDataset{ID: id, Attrs: len(ds.Attrs), Records: len(ds.Records), Bytes: cost}
	}
	r.mu.Unlock()
	if !known {
		if err := r.backing.Save(id, ds); err != nil {
			r.mu.Lock()
			delete(r.meta, id)
			r.mu.Unlock()
			return "", false, fmt.Errorf("%w: saving %q: %v", ErrStore, id, err)
		}
	}
	// Warm the RAM cache either way — the uploader is about to use it.
	// The size precheck above makes Put's only failure mode impossible.
	r.lru.Put(id, ds, cost)
	return id, !known, nil
}

// get returns the dataset stored under id without pinning it. The result
// may be evicted at any time after the call, which is why this is not
// exported: jobs must use Pin.
func (r *Registry) get(id string) (*dataset.Dataset, error) {
	v, ok := r.lru.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return v.(*dataset.Dataset), nil
}

// Pin returns the dataset stored under id and a release func. Until
// release is called the dataset cannot be evicted or removed, so a running
// job's input is guaranteed resident for the job's whole lifetime. With a
// durable backing, a dataset evicted from RAM is transparently reloaded
// from disk (and verified) here. release is idempotent and safe to defer
// unconditionally.
func (r *Registry) Pin(id string) (*dataset.Dataset, func(), error) {
	if v, ok := r.lru.Pin(id); ok {
		return v.(*dataset.Dataset), r.releaseFunc(id), nil
	}
	if r.backing == nil {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	end := r.beginIO(id)
	defer end()
	// Re-check behind the gate: a concurrent Pin holding it before us may
	// have just loaded the dataset — the gate doubles as single-flight.
	if v, ok := r.lru.Pin(id); ok {
		return v.(*dataset.Dataset), r.releaseFunc(id), nil
	}
	r.mu.Lock()
	_, known := r.meta[id]
	r.mu.Unlock()
	if !known {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	ds, err := r.backing.Load(id)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: loading %q: %v", ErrStore, id, err)
	}
	// Re-insert under mu so a concurrent Remove cannot slip between the
	// index check and the Put and leave a deleted dataset resident.
	r.mu.Lock()
	if _, still := r.meta[id]; !still {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	ok := r.lru.Put(id, ds, ds.ApproxBytes())
	if ok {
		r.lru.Pin(id)
	}
	r.mu.Unlock()
	if !ok {
		// Only reachable when the byte cap shrank across a restart below
		// this dataset's size.
		return nil, nil, fmt.Errorf("%w (%d bytes)", ErrTooLarge, ds.ApproxBytes())
	}
	return ds, r.releaseFunc(id), nil
}

// PinLazy reserves the dataset under id now but defers the byte load:
// until release is called the dataset cannot be removed, yet its bytes
// need not be resident — resolve loads (and RAM-pins) them on first call.
// A queue of submitted jobs therefore holds index entries, not memory;
// pinned RAM scales with the number of *running* jobs. On a memory-only
// registry there is no durable copy to reload from, so PinLazy degrades
// to an eager Pin (reserving only the index would let eviction drop the
// sole copy while the job waits). release is idempotent and releases the
// resolve pin too.
func (r *Registry) PinLazy(id string) (resolve func() (*dataset.Dataset, error), release func(), err error) {
	if r.backing == nil {
		ds, rel, err := r.Pin(id)
		if err != nil {
			return nil, nil, err
		}
		return func() (*dataset.Dataset, error) { return ds, nil }, rel, nil
	}
	// Existence check and reservation in one critical section: a Remove
	// racing between them could delete a dataset this call just promised
	// to hold (Remove checks refs under the same mu).
	r.mu.Lock()
	_, known := r.meta[id]
	if !known && !r.lru.Contains(id) {
		r.mu.Unlock()
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	r.refs[id]++
	r.mu.Unlock()

	var mu sync.Mutex
	var inner func() // release of the resolve-time Pin
	released := false
	resolve = func() (*dataset.Dataset, error) {
		ds, rel, err := r.Pin(id)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		if released {
			// The job was torn down before (or while) the load finished;
			// don't leak the fresh pin.
			mu.Unlock()
			rel()
			return nil, fmt.Errorf("%w: %q (reservation released)", ErrNotFound, id)
		}
		if inner != nil {
			// Double resolve: keep one pin.
			mu.Unlock()
			rel()
			return ds, nil
		}
		inner = rel
		mu.Unlock()
		return ds, nil
	}
	release = func() {
		mu.Lock()
		if released {
			mu.Unlock()
			return
		}
		released = true
		rel := inner
		mu.Unlock()
		if rel != nil {
			rel()
		}
		r.mu.Lock()
		if r.refs[id] <= 1 {
			delete(r.refs, id)
		} else {
			r.refs[id]--
		}
		r.mu.Unlock()
	}
	return resolve, release, nil
}

// releaseFunc builds the idempotent unpin closure Pin hands out.
func (r *Registry) releaseFunc(id string) func() {
	released := false
	return func() {
		if !released {
			released = true
			r.lru.Unpin(id)
		}
	}
}

// Remove deletes the dataset under id — from RAM and, when backed, from
// disk. Removing a pinned dataset fails with ErrPinned; removing an
// unknown one fails with ErrNotFound.
func (r *Registry) Remove(id string) error {
	if r.backing == nil {
		if !r.lru.Contains(id) {
			return fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		if !r.lru.Remove(id) {
			return fmt.Errorf("%w: %q", ErrPinned, id)
		}
		return nil
	}
	end := r.beginIO(id)
	defer end()
	r.mu.Lock()
	meta, known := r.meta[id]
	if !known && !r.lru.Contains(id) {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if r.refs[id] > 0 {
		// Lazily pinned by a queued job: the bytes may not be resident,
		// but the dataset is spoken for all the same.
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPinned, id)
	}
	if !r.lru.Remove(id) {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrPinned, id)
	}
	delete(r.meta, id)
	r.mu.Unlock()
	if known {
		if err := r.backing.Delete(id); err != nil {
			// The RAM copy is gone but the blob survived; restore the
			// index entry so the dataset is not orphaned on disk.
			r.mu.Lock()
			r.meta[id] = meta
			r.mu.Unlock()
			return fmt.Errorf("%w: deleting %q: %v", ErrStore, id, err)
		}
	}
	return nil
}

// residency snapshots the RAM cache: id -> pin count.
func (r *Registry) residency() map[string]int {
	out := make(map[string]int)
	r.lru.Range(func(key string, _ any, _ int64, pins int) bool {
		out[key] = pins
		return true
	})
	return out
}

// Describe returns the Info of one known dataset without touching its
// recency — an info probe must not keep a dataset alive in RAM.
func (r *Registry) Describe(id string) (Info, error) {
	var out Info
	found := false
	r.lru.Range(func(key string, value any, cost int64, pins int) bool {
		if key != id {
			return true
		}
		ds := value.(*dataset.Dataset)
		out = Info{ID: key, Attrs: len(ds.Attrs), Records: len(ds.Records), Bytes: cost, Pins: pins, Resident: true}
		found = true
		return false
	})
	if r.backing == nil {
		if !found {
			return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
		}
		return out, nil
	}
	// Backed: the durable index is authoritative for existence; the LRU
	// walk above only contributed residency and pins.
	r.mu.Lock()
	m, known := r.meta[id]
	r.mu.Unlock()
	if !known {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !found {
		out = Info{ID: m.ID, Attrs: m.Attrs, Records: m.Records, Bytes: m.Bytes}
	}
	return out, nil
}

// List describes every known dataset — resident or (when backed)
// disk-only — sorted by ID for determinism.
func (r *Registry) List() []Info {
	var out []Info
	if r.backing == nil {
		r.lru.Range(func(key string, value any, cost int64, pins int) bool {
			ds := value.(*dataset.Dataset)
			out = append(out, Info{
				ID:       key,
				Attrs:    len(ds.Attrs),
				Records:  len(ds.Records),
				Bytes:    cost,
				Pins:     pins,
				Resident: true,
			})
			return true
		})
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		return out
	}
	r.mu.Lock()
	metas := make([]BackedDataset, 0, len(r.meta))
	for _, m := range r.meta {
		metas = append(metas, m)
	}
	r.mu.Unlock()
	resident := r.residency()
	for _, m := range metas {
		pins, res := resident[m.ID]
		out = append(out, Info{
			ID:       m.ID,
			Attrs:    m.Attrs,
			Records:  m.Records,
			Bytes:    m.Bytes,
			Pins:     pins,
			Resident: res,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the RAM cache's occupancy and eviction counters.
func (r *Registry) Stats() Stats { return r.lru.Stats() }
