// Package registry provides the concurrent storage subsystem of the
// anonymization service: a content-addressed dataset store and a generic
// size-bounded LRU cache, both with explicit eviction and sharing
// semantics.
//
// The Registry stores decoded datasets keyed by their content fingerprint,
// so a dataset is uploaded once and referenced by ID from any number of
// jobs instead of being resubmitted inline with each request. References
// are ref-counted pins: a dataset pinned by a running job cannot be
// evicted or deleted until every pin is released, while unpinned datasets
// age out least-recently-used under configurable entry and byte caps. The
// same LRU primitive backs the engine's result cache, giving the service
// one bounded-memory story across both layers.
package registry

import (
	"errors"
	"fmt"
	"sort"

	"secreta/internal/dataset"
)

// ErrPinned is returned by Remove when the dataset is held by a running
// job.
var ErrPinned = errors.New("registry: dataset is pinned by a running job")

// ErrNotFound is returned when no dataset with the given ID is resident —
// either it was never uploaded or it has been evicted.
var ErrNotFound = errors.New("registry: no such dataset")

// ErrTooLarge is returned by Add when a single dataset exceeds the
// registry's byte cap and could therefore never be resident.
var ErrTooLarge = errors.New("registry: dataset exceeds the registry byte cap")

// Registry is a content-addressed store of decoded datasets. The ID of a
// dataset is its content fingerprint: uploading identical bytes twice
// yields the same ID and one resident copy. Safe for concurrent use.
type Registry struct {
	lru *LRU
}

// New builds a registry bounded by maxDatasets entries and maxBytes of
// approximate in-memory dataset size. A cap <= 0 disables that bound.
func New(maxDatasets int, maxBytes int64) *Registry {
	return &Registry{lru: NewLRU(maxDatasets, maxBytes)}
}

// Info describes one resident dataset.
type Info struct {
	ID      string `json:"dataset_ref"`
	Attrs   int    `json:"attrs"`
	Records int    `json:"records"`
	Bytes   int64  `json:"bytes"`
	Pins    int    `json:"pins"`
}

// Add stores ds under its content fingerprint and returns the ID. Adding
// a dataset that is already resident refreshes its recency and reports
// created=false; the resident copy is kept, so callers must treat stored
// datasets as immutable. Unpinned datasets may be evicted to make room;
// when every resident is pinned the registry overshoots its caps rather
// than bouncing the newcomer, and only a dataset larger than the whole
// byte cap is refused (ErrTooLarge).
func (r *Registry) Add(ds *dataset.Dataset) (id string, created bool, err error) {
	id = ds.Fingerprint()
	if _, ok := r.lru.Get(id); ok {
		return id, false, nil
	}
	if !r.lru.Put(id, ds, ds.ApproxBytes()) {
		return "", false, fmt.Errorf("%w (%d bytes)", ErrTooLarge, ds.ApproxBytes())
	}
	return id, true, nil
}

// get returns the dataset stored under id without pinning it. The result
// may be evicted at any time after the call, which is why this is not
// exported: jobs must use Pin.
func (r *Registry) get(id string) (*dataset.Dataset, error) {
	v, ok := r.lru.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return v.(*dataset.Dataset), nil
}

// Pin returns the dataset stored under id and a release func. Until
// release is called the dataset cannot be evicted or removed, so a running
// job's input is guaranteed resident for the job's whole lifetime.
// release is idempotent and safe to defer unconditionally.
func (r *Registry) Pin(id string) (*dataset.Dataset, func(), error) {
	v, ok := r.lru.Pin(id)
	if !ok {
		return nil, nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	released := false
	release := func() {
		if !released {
			released = true
			r.lru.Unpin(id)
		}
	}
	return v.(*dataset.Dataset), release, nil
}

// Remove deletes the dataset under id. Removing a pinned dataset fails
// with ErrPinned; removing an absent one fails with ErrNotFound.
func (r *Registry) Remove(id string) error {
	if !r.lru.Contains(id) {
		return fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if !r.lru.Remove(id) {
		return fmt.Errorf("%w: %q", ErrPinned, id)
	}
	return nil
}

// Describe returns the Info of one resident dataset without touching its
// recency — an info probe must not keep a dataset alive.
func (r *Registry) Describe(id string) (Info, error) {
	var out Info
	found := false
	r.lru.Range(func(key string, value any, cost int64, pins int) bool {
		if key != id {
			return true
		}
		ds := value.(*dataset.Dataset)
		out = Info{ID: key, Attrs: len(ds.Attrs), Records: len(ds.Records), Bytes: cost, Pins: pins}
		found = true
		return false
	})
	if !found {
		return Info{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return out, nil
}

// List describes every resident dataset, sorted by ID for determinism.
func (r *Registry) List() []Info {
	var out []Info
	r.lru.Range(func(key string, value any, cost int64, pins int) bool {
		ds := value.(*dataset.Dataset)
		out = append(out, Info{
			ID:      key,
			Attrs:   len(ds.Attrs),
			Records: len(ds.Records),
			Bytes:   cost,
			Pins:    pins,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Stats snapshots the registry's occupancy and eviction counters.
func (r *Registry) Stats() Stats { return r.lru.Stats() }
