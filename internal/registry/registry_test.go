package registry

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"secreta/internal/dataset"
)

// testDataset builds a small dataset whose content (and therefore its
// fingerprint) is derived from seed, so distinct seeds give distinct IDs.
func testDataset(t testing.TB, seed int) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "age", Kind: dataset.Categorical},
		{Name: "zip", Kind: dataset.Categorical},
	}, "")
	for i := 0; i < 5; i++ {
		err := ds.AddRecord(dataset.Record{Values: []string{
			fmt.Sprintf("a%d-%d", seed, i),
			fmt.Sprintf("z%d-%d", seed, i),
		}})
		if err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

func TestLRUEvictionOrder(t *testing.T) {
	l := NewLRU(3, 0)
	for _, k := range []string{"a", "b", "c"} {
		l.Put(k, k, 1)
	}
	// Touch "a" so "b" becomes the least recently used.
	if _, ok := l.Get("a"); !ok {
		t.Fatal("a missing")
	}
	l.Put("d", "d", 1)
	if got, want := l.Keys(), []string{"d", "a", "c"}; !reflect.DeepEqual(got, want) {
		t.Fatalf("keys after eviction = %v, want %v", got, want)
	}
	if l.Contains("b") {
		t.Fatal("b should have been evicted as least recently used")
	}
	if s := l.Stats(); s.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", s.Evictions)
	}
}

func TestLRUByteCap(t *testing.T) {
	l := NewLRU(0, 100)
	for i := 0; i < 50; i++ {
		l.Put(fmt.Sprintf("k%d", i), i, 30)
		if s := l.Stats(); s.Bytes > 100 {
			t.Fatalf("bytes %d exceed cap 100 after put %d", s.Bytes, i)
		}
	}
	s := l.Stats()
	if s.Entries != 3 || s.Bytes != 90 {
		t.Fatalf("stats = %+v, want 3 entries / 90 bytes", s)
	}
	// An entry larger than the whole cap must be rejected, not admitted
	// by evicting everything else.
	if l.Put("huge", 0, 101) {
		t.Fatal("oversized entry was admitted")
	}
	if l.Stats().Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", l.Stats().Rejected)
	}
	if s := l.Stats(); s.Entries != 3 {
		t.Fatalf("rejection disturbed residents: %+v", s)
	}
}

func TestLRUPinBlocksEviction(t *testing.T) {
	l := NewLRU(2, 0)
	l.Put("a", "a", 1)
	l.Put("b", "b", 1)
	if _, ok := l.Pin("a"); !ok {
		t.Fatal("pin a")
	}
	if _, ok := l.Pin("b"); !ok {
		t.Fatal("pin b")
	}
	// Both residents pinned: the insert overshoots the entry cap.
	l.Put("c", "c", 1)
	if !l.Contains("a") || !l.Contains("b") {
		t.Fatal("pinned entry was evicted")
	}
	if l.Remove("a") {
		t.Fatal("Remove succeeded on a pinned entry")
	}
	// Releasing the pins lets the cache settle back under its cap.
	l.Unpin("a")
	l.Unpin("b")
	if got := l.ll.Len(); got > 2 {
		t.Fatalf("cache still over cap after unpin: %d entries", got)
	}
}

func TestRegistryContentAddressing(t *testing.T) {
	r := New(8, 0)
	ds := testDataset(t, 1)
	id1, created, err := r.Add(ds)
	if err != nil || !created {
		t.Fatalf("first Add: id=%q created=%v err=%v", id1, created, err)
	}
	// Same content (fresh decode) → same ref, no new entry.
	id2, created, err := r.Add(testDataset(t, 1))
	if err != nil || created || id2 != id1 {
		t.Fatalf("re-Add: id=%q created=%v err=%v, want %q/false/nil", id2, created, err, id1)
	}
	if n := len(r.List()); n != 1 {
		t.Fatalf("registry has %d datasets, want 1", n)
	}
	got, err := r.get(id1)
	if err != nil || got.Fingerprint() != id1 {
		t.Fatalf("Get returned wrong dataset (err=%v)", err)
	}
	info, err := r.Describe(id1)
	if err != nil || info.Records != 5 || info.Attrs != 2 {
		t.Fatalf("Describe = %+v, %v", info, err)
	}
	if _, err := r.get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get(nope) = %v, want ErrNotFound", err)
	}
}

func TestRegistryPinBlocksRemoveAndEviction(t *testing.T) {
	r := New(2, 0)
	id1, _, _ := r.Add(testDataset(t, 1))
	ds, release, err := r.Pin(id1)
	if err != nil || ds == nil {
		t.Fatal(err)
	}
	if err := r.Remove(id1); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove(pinned) = %v, want ErrPinned", err)
	}
	// Fill past the cap: the pinned dataset must survive.
	r.Add(testDataset(t, 2))
	r.Add(testDataset(t, 3))
	r.Add(testDataset(t, 4))
	if _, err := r.get(id1); err != nil {
		t.Fatalf("pinned dataset evicted: %v", err)
	}
	release()
	release() // idempotent
	if err := r.Remove(id1); err != nil {
		t.Fatalf("Remove after release: %v", err)
	}
	if err := r.Remove(id1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Remove = %v, want ErrNotFound", err)
	}
}

// TestAddSucceedsWhenAllResidentsPinned pins the transient-full contract:
// when every resident dataset is pinned by running jobs, a new upload must
// still be admitted (overshooting the cap until pins release) — not
// bounced, and especially not misreported as "too large".
func TestAddSucceedsWhenAllResidentsPinned(t *testing.T) {
	r := New(2, 0)
	id1, _, _ := r.Add(testDataset(t, 1))
	_, rel1, err := r.Pin(id1)
	if err != nil {
		t.Fatal(err)
	}
	id2, _, _ := r.Add(testDataset(t, 2))
	_, rel2, err := r.Pin(id2)
	if err != nil {
		t.Fatal(err)
	}
	id3, created, err := r.Add(testDataset(t, 3))
	if err != nil || !created {
		t.Fatalf("Add with all residents pinned: created=%v err=%v", created, err)
	}
	if _, err := r.get(id3); err != nil {
		t.Fatalf("freshly admitted dataset bounced: %v", err)
	}
	rel1()
	rel2()
	if s := r.Stats(); s.Entries > 2 {
		t.Fatalf("registry did not settle under its cap after unpin: %d entries", s.Entries)
	}
}

// TestRegistryConcurrentChurn hammers Add/Pin/Get/Remove/List from many
// goroutines under -race. Beyond data races, it checks the invariants that
// survive churn: a pinned dataset is always readable until released, and
// the entry count respects the cap once everything is unpinned.
func TestRegistryConcurrentChurn(t *testing.T) {
	const (
		workers  = 8
		rounds   = 200
		distinct = 16
		maxDs    = 4
	)
	r := New(maxDs, 0)
	pool := make([]*dataset.Dataset, distinct)
	for i := range pool {
		pool[i] = testDataset(t, i)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				ds := pool[rng.Intn(distinct)]
				id, _, err := r.Add(ds)
				if err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				switch rng.Intn(3) {
				case 0:
					// Pin may race an eviction — losing is fine, but a won
					// pin must hand back the right dataset.
					if got, release, err := r.Pin(id); err == nil {
						if got.Fingerprint() != id {
							t.Errorf("pinned dataset has fingerprint %q, want %q", got.Fingerprint(), id)
						}
						release()
					}
				case 1:
					// Remove may hit ErrPinned or ErrNotFound under churn;
					// both are legal outcomes, panics/races are not.
					_ = r.Remove(id)
				default:
					r.List()
					r.Stats()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Stats()
	if s.Pinned != 0 {
		t.Fatalf("pins leaked: %d still held", s.Pinned)
	}
	if s.Entries > maxDs {
		t.Fatalf("registry over cap with no pins: %d > %d", s.Entries, maxDs)
	}
}
