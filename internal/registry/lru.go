package registry

import (
	"container/list"
	"sync"
)

// LRU is a size-bounded least-recently-used cache with per-entry byte
// costs and ref-counted pinning. It bounds both the entry count and the
// total byte cost; when either cap is exceeded the least recently used
// unpinned entries are evicted. Pinned entries (refcount > 0) are never
// evicted, so the caps can be temporarily exceeded while everything
// resident is in use — the overshoot drains as pins are released and the
// next Put evicts. An LRU with both caps <= 0 is unbounded.
//
// All methods are safe for concurrent use.
type LRU struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      int64
	pinned     int
	hits       uint64
	misses     uint64
	evictions  uint64
	rejected   uint64
}

// lruEntry is one resident cache entry.
type lruEntry struct {
	key   string
	value any
	cost  int64
	pins  int
}

// NewLRU builds an LRU bounded by maxEntries entries and maxBytes total
// cost. A cap <= 0 disables that bound.
func NewLRU(maxEntries int, maxBytes int64) *LRU {
	return &LRU{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// Get returns the value stored under key and marks it most recently used.
func (l *LRU) Get(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		return nil, false
	}
	l.hits++
	l.ll.MoveToFront(el)
	return el.Value.(*lruEntry).value, true
}

// Contains reports whether key is resident without touching recency or the
// hit/miss counters.
func (l *LRU) Contains(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, ok := l.items[key]
	return ok
}

// Put stores value under key with the given byte cost, replacing any
// previous entry (pins carry over on replace). Entries whose cost alone
// exceeds the byte cap are not stored — admitting one would immediately
// evict the entire cache to make room for an entry that still wouldn't
// fit; that is the only case in which Put reports false. The entry being
// inserted is itself exempt from the eviction pass, so when every other
// resident is pinned the cache overshoots its caps instead of bouncing
// the newcomer — the overshoot drains as pins release.
func (l *LRU) Put(key string, value any, cost int64) bool {
	if cost < 0 {
		cost = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.maxBytes > 0 && cost > l.maxBytes {
		if el, ok := l.items[key]; ok && el.Value.(*lruEntry).pins == 0 {
			l.removeElement(el)
			l.evictions++
		}
		l.rejected++
		return false
	}
	el, ok := l.items[key]
	if ok {
		e := el.Value.(*lruEntry)
		l.bytes += cost - e.cost
		e.value, e.cost = value, cost
		l.ll.MoveToFront(el)
	} else {
		el = l.ll.PushFront(&lruEntry{key: key, value: value, cost: cost})
		l.items[key] = el
		l.bytes += cost
	}
	l.evictLocked(el)
	return true
}

// Pin returns the value under key and increments its pin count; a pinned
// entry cannot be evicted or removed until every pin is released. Callers
// must pair each successful Pin with exactly one Unpin.
func (l *LRU) Pin(key string) (any, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		l.misses++
		return nil, false
	}
	e := el.Value.(*lruEntry)
	if e.pins == 0 {
		l.pinned++
	}
	e.pins++
	l.hits++
	l.ll.MoveToFront(el)
	return e.value, true
}

// Unpin releases one pin on key. Unpinning a missing or unpinned key is a
// no-op, so a release func can be deferred unconditionally.
func (l *LRU) Unpin(key string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return
	}
	e := el.Value.(*lruEntry)
	if e.pins == 0 {
		return
	}
	e.pins--
	if e.pins == 0 {
		l.pinned--
		// The entry may have been keeping the cache over its caps while
		// pinned; settle up now.
		l.evictLocked(nil)
	}
}

// Remove deletes the entry under key. It refuses (returning false) when
// the entry is pinned; a missing key reports true, as the postcondition
// "key is not resident" already holds.
func (l *LRU) Remove(key string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[key]
	if !ok {
		return true
	}
	if el.Value.(*lruEntry).pins > 0 {
		return false
	}
	l.removeElement(el)
	return true
}

// evictLocked drops least-recently-used unpinned entries until both caps
// hold, or only pinned entries (and keep, the entry being inserted by the
// caller, nil-able) remain — a freshly admitted entry must not be bounced
// straight back out just because everything older is pinned. Caller holds
// l.mu.
func (l *LRU) evictLocked(keep *list.Element) {
	over := func() bool {
		return (l.maxEntries > 0 && l.ll.Len() > l.maxEntries) ||
			(l.maxBytes > 0 && l.bytes > l.maxBytes)
	}
	el := l.ll.Back()
	for over() && el != nil {
		prev := el.Prev()
		if el != keep && el.Value.(*lruEntry).pins == 0 {
			l.removeElement(el)
			l.evictions++
		}
		el = prev
	}
}

func (l *LRU) removeElement(el *list.Element) {
	e := el.Value.(*lruEntry)
	l.ll.Remove(el)
	delete(l.items, e.key)
	l.bytes -= e.cost
}

// Keys lists the resident keys from most to least recently used.
func (l *LRU) Keys() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]string, 0, l.ll.Len())
	for el := l.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*lruEntry).key)
	}
	return out
}

// Range calls fn for every resident entry from most to least recently
// used, stopping early when fn returns false. The lock is held for the
// whole traversal: fn must not call back into the LRU.
func (l *LRU) Range(fn func(key string, value any, cost int64, pins int) bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for el := l.ll.Front(); el != nil; el = el.Next() {
		e := el.Value.(*lruEntry)
		if !fn(e.key, e.value, e.cost, e.pins) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of an LRU's occupancy and
// effectiveness counters.
type Stats struct {
	// Entries and Bytes are current occupancy; MaxEntries/MaxBytes are
	// the configured caps (0 = unbounded).
	Entries    int   `json:"entries"`
	Bytes      int64 `json:"bytes"`
	MaxEntries int   `json:"max_entries"`
	MaxBytes   int64 `json:"max_bytes"`
	// Pinned counts entries currently held by at least one pin.
	Pinned int `json:"pinned"`
	// Hits and Misses count Get/Pin lookups; Evictions counts entries
	// dropped by the caps (not explicit Removes); Rejected counts Puts
	// refused because a single entry exceeded the byte cap.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Rejected  uint64 `json:"rejected"`
}

// Stats snapshots the cache counters.
func (l *LRU) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Entries:    l.ll.Len(),
		Bytes:      l.bytes,
		MaxEntries: l.maxEntries,
		MaxBytes:   l.maxBytes,
		Pinned:     l.pinned,
		Hits:       l.hits,
		Misses:     l.misses,
		Evictions:  l.evictions,
		Rejected:   l.rejected,
	}
}
