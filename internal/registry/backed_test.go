package registry

import (
	"errors"
	"sync"
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/store"
)

// storeBacking adapts store.DatasetStore to the Backing interface the
// same way the server does.
type storeBacking struct{ ds *store.DatasetStore }

func (b storeBacking) Save(id string, d *dataset.Dataset) error { return b.ds.Save(id, d) }
func (b storeBacking) Load(id string) (*dataset.Dataset, error) { return b.ds.Load(id) }
func (b storeBacking) Delete(id string) error                   { return b.ds.Delete(id) }
func (b storeBacking) List() ([]BackedDataset, error) {
	metas, err := b.ds.List()
	if err != nil {
		return nil, err
	}
	out := make([]BackedDataset, len(metas))
	for i, m := range metas {
		out[i] = BackedDataset{ID: m.ID, Attrs: m.Attrs, Records: m.Records, Bytes: m.Bytes}
	}
	return out, nil
}

func newBackedRegistry(t *testing.T, dir string, maxDatasets int, maxBytes int64) *Registry {
	t.Helper()
	ds, err := store.NewDatasetStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewBacked(maxDatasets, maxBytes, storeBacking{ds})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func backedSample(t *testing.T, rows int, tag string) *dataset.Dataset {
	t.Helper()
	ds := dataset.New([]dataset.Attribute{
		{Name: "Age", Kind: dataset.Numeric},
		{Name: "Tag", Kind: dataset.Categorical},
	}, "")
	for i := 0; i < rows; i++ {
		if err := ds.AddRecord(dataset.Record{Values: []string{"25", tag}}); err != nil {
			t.Fatal(err)
		}
	}
	return ds
}

// TestBackedPinReloadsEvicted is the core cache-over-disk property: RAM
// eviction no longer loses a dataset, Pin reloads it from the blob store.
func TestBackedPinReloadsEvicted(t *testing.T) {
	dir := t.TempDir()
	r := newBackedRegistry(t, dir, 1, 0) // RAM holds one dataset at a time
	dsA, dsB := backedSample(t, 3, "a"), backedSample(t, 3, "b")
	idA, created, err := r.Add(dsA)
	if err != nil || !created {
		t.Fatalf("Add a: created=%v err=%v", created, err)
	}
	idB, _, err := r.Add(dsB)
	if err != nil {
		t.Fatal(err)
	}
	// Adding B evicted A from RAM (cap 1) — but not from disk.
	if got := r.Stats().Entries; got != 1 {
		t.Fatalf("RAM entries=%d want 1", got)
	}
	got, release, err := r.Pin(idA)
	if err != nil {
		t.Fatalf("Pin after eviction: %v", err)
	}
	defer release()
	if got.Fingerprint() != idA {
		t.Fatal("reloaded dataset mismatch")
	}
	// Both are still listed; exactly one more than the RAM cap is
	// resident now (A was re-inserted pinned while B aged out or stayed;
	// the durable index must show both regardless).
	infos := r.List()
	if len(infos) != 2 {
		t.Fatalf("List: %d datasets, want 2", len(infos))
	}
	for _, info := range infos {
		if info.ID == idB && info.Pins != 0 {
			t.Fatalf("B pinned: %+v", info)
		}
	}
}

// TestBackedSurvivesRestart rebuilds a registry over the same directory
// and expects the full index (and pinnable bytes) back.
func TestBackedSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	r := newBackedRegistry(t, dir, 8, 0)
	ds := backedSample(t, 4, "x")
	id, _, err := r.Add(ds)
	if err != nil {
		t.Fatal(err)
	}

	r2 := newBackedRegistry(t, dir, 8, 0)
	infos := r2.List()
	if len(infos) != 1 || infos[0].ID != id || infos[0].Records != 4 {
		t.Fatalf("restarted index: %+v", infos)
	}
	if infos[0].Resident {
		t.Fatal("restart should leave datasets on disk, not decode them into RAM")
	}
	got, release, err := r2.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if got.Fingerprint() != id {
		t.Fatal("restarted Pin returned wrong dataset")
	}
	// Re-upload of known content over a restart: created=false.
	if _, created, err := r2.Add(backedSample(t, 4, "x")); err != nil || created {
		t.Fatalf("re-upload: created=%v err=%v", created, err)
	}
}

func TestBackedRemoveDeletesDisk(t *testing.T) {
	dir := t.TempDir()
	r := newBackedRegistry(t, dir, 8, 0)
	ds := backedSample(t, 2, "y")
	id, _, err := r.Add(ds)
	if err != nil {
		t.Fatal(err)
	}
	_, release, err := r.Pin(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(id); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove while pinned: %v", err)
	}
	release()
	if err := r.Remove(id); err != nil {
		t.Fatal(err)
	}
	if err := r.Remove(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Remove: %v", err)
	}
	// Gone durably: a fresh registry over the same dir knows nothing.
	r2 := newBackedRegistry(t, dir, 8, 0)
	if got := len(r2.List()); got != 0 {
		t.Fatalf("removed dataset resurfaced: %d listed", got)
	}
	if _, _, err := r2.Pin(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Pin of removed: %v", err)
	}
}

func TestBackedTooLargeRefused(t *testing.T) {
	r := newBackedRegistry(t, t.TempDir(), 8, 64) // tiny byte cap
	big := backedSample(t, 100, "big")
	if _, _, err := r.Add(big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized Add: %v", err)
	}
	if got := len(r.List()); got != 0 {
		t.Fatalf("refused dataset still indexed: %d", got)
	}
}

// TestBackedConcurrentPinMisses hammers the per-ID I/O gate: many
// goroutines pinning the same evicted dataset must converge on one disk
// load (single-flight) without racing Remove on another ID.
func TestBackedConcurrentPinMisses(t *testing.T) {
	dir := t.TempDir()
	r := newBackedRegistry(t, dir, 1, 0)
	dsA, dsB := backedSample(t, 3, "a"), backedSample(t, 3, "b")
	idA, _, err := r.Add(dsA)
	if err != nil {
		t.Fatal(err)
	}
	idB, _, err := r.Add(dsB) // evicts A from RAM
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ds, release, err := r.Pin(idA)
			if err != nil {
				t.Errorf("Pin: %v", err)
				return
			}
			if ds.Fingerprint() != idA {
				t.Error("wrong dataset")
			}
			release()
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Concurrent Remove of the *other* dataset must not interfere.
		if err := r.Remove(idB); err != nil && !errors.Is(err, ErrNotFound) {
			t.Errorf("Remove b: %v", err)
		}
	}()
	wg.Wait()
}

// TestBackedRemoveDuringPinLoad: removing a dataset must not let an
// in-flight Pin resurrect it into RAM afterwards.
func TestBackedRemoveWins(t *testing.T) {
	dir := t.TempDir()
	r := newBackedRegistry(t, dir, 1, 0)
	ds := backedSample(t, 3, "z")
	id, _, err := r.Add(ds)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Add(backedSample(t, 3, "other")); err != nil { // evict z from RAM
		t.Fatal(err)
	}
	if err := r.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.Pin(id); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Pin after Remove: %v", err)
	}
}
