package registry

import (
	"errors"
	"testing"
)

// TestPinLazyReservesWithoutResidency is the lazy-pin contract on a
// backed registry: the reservation blocks Remove while the bytes stay on
// disk, resolve loads them on demand (surviving eviction in between), and
// release frees both the reservation and the resolve-time pin.
func TestPinLazyReservesWithoutResidency(t *testing.T) {
	r := newBackedRegistry(t, t.TempDir(), 1, 0)
	idA, _, err := r.Add(backedSample(t, 4, "a"))
	if err != nil {
		t.Fatal(err)
	}
	resolve, release, err := r.PinLazy(idA)
	if err != nil {
		t.Fatal(err)
	}
	// Evict A's bytes by adding another dataset (entry cap 1): the
	// reservation must not keep the RAM copy alive.
	idB, _, err := r.Add(backedSample(t, 4, "b"))
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Describe(idA)
	if err != nil {
		t.Fatal(err)
	}
	if info.Resident {
		t.Fatal("reserved dataset still resident after eviction pressure")
	}
	// Reserved: cannot be removed, resident or not.
	if err := r.Remove(idA); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove of reserved dataset: %v, want ErrPinned", err)
	}
	// Resolve loads from disk and pins.
	ds, err := resolve()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Records); got != 4 {
		t.Fatalf("resolved dataset has %d records, want 4", got)
	}
	if err := r.Remove(idA); !errors.Is(err, ErrPinned) {
		t.Fatalf("Remove of resolved dataset: %v, want ErrPinned", err)
	}
	// Release drops reservation and pin; Remove now succeeds.
	release()
	release() // idempotent
	if err := r.Remove(idA); err != nil {
		t.Fatalf("Remove after release: %v", err)
	}
	if err := r.Remove(idB); err != nil {
		t.Fatal(err)
	}
}

func TestPinLazyUnknownID(t *testing.T) {
	r := newBackedRegistry(t, t.TempDir(), 4, 0)
	if _, _, err := r.PinLazy("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PinLazy of unknown id: %v, want ErrNotFound", err)
	}
}

// TestPinLazyReleaseBeforeResolve pins the teardown race: a job cancelled
// while queued releases its reservation before ever loading; a late
// resolve must not hand out (or leak a pin on) the dataset.
func TestPinLazyReleaseBeforeResolve(t *testing.T) {
	r := newBackedRegistry(t, t.TempDir(), 2, 0)
	id, _, err := r.Add(backedSample(t, 2, "x"))
	if err != nil {
		t.Fatal(err)
	}
	resolve, release, err := r.PinLazy(id)
	if err != nil {
		t.Fatal(err)
	}
	release()
	if _, err := resolve(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("resolve after release: %v, want ErrNotFound", err)
	}
	// No pin may linger: the dataset is deletable.
	if err := r.Remove(id); err != nil {
		t.Fatalf("Remove after released resolve: %v", err)
	}
}

// TestPinLazyMemoryOnlyIsEager pins the fallback: without a durable copy
// the reservation must hold the bytes themselves, or eviction would lose
// the only copy while the job waits in the queue.
func TestPinLazyMemoryOnlyIsEager(t *testing.T) {
	r := New(1, 0)
	id, _, err := r.Add(backedSample(t, 3, "m"))
	if err != nil {
		t.Fatal(err)
	}
	resolve, release, err := r.PinLazy(id)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// Eviction pressure: the pinned dataset must survive (the newcomer
	// overshoots the cap instead).
	if _, _, err := r.Add(backedSample(t, 3, "other")); err != nil {
		t.Fatal(err)
	}
	ds, err := resolve()
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Records) != 3 {
		t.Fatalf("resolved %d records, want 3", len(ds.Records))
	}
}
