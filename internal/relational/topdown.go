package relational

import (
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// TopDown implements top-down specialization (Fung et al., ICDE 2005). It
// starts from the fully generalized dataset (every QI at its hierarchy
// root) and repeatedly performs the best valid specialization: replacing
// one cut value with its children. A specialization is valid when the
// dataset stays k-anonymous; the score is the information (NCP) gained per
// unit of anonymity headroom consumed, following the paper's
// InfoGain/AnonyLoss trade-off.
func TopDown(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	qis, hh, err := opts.validate(ds)
	if err != nil {
		return nil, err
	}
	n := len(ds.Records)

	cuts := make([]*hierarchy.Cut, len(qis))
	for i := range qis {
		cuts[i] = hierarchy.NewCut(hh[i])
	}
	sw.Mark("setup")

	// The root cut puts everything in one class; if even that is not
	// k-anonymous the instance is infeasible.
	if n < opts.K {
		return nil, fmt.Errorf("topdown: dataset has %d records, fewer than k=%d", n, opts.K)
	}

	// Count value frequencies per attribute once; candidate scoring uses
	// them to weight NCP gains by affected records.
	freq := make([]map[string]int, len(qis))
	for i, q := range qis {
		freq[i] = make(map[string]int)
		for r := range ds.Records {
			freq[i][ds.Records[r].Values[q]]++
		}
	}

	for {
		// One specialization round re-partitions the dataset per trial;
		// polling here keeps cancellation delay to one round.
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		type candidate struct {
			attr  int
			value string
			score float64
		}
		best := candidate{attr: -1}
		for i := range cuts {
			for _, node := range cuts[i].Nodes() {
				if node.IsLeaf() {
					continue
				}
				// Information gain: NCP drop weighted by the records
				// carrying leaves under this node.
				records := 0
				for _, leaf := range node.Leaves() {
					records += freq[i][leaf]
				}
				if records == 0 {
					// No data under this node; specialize for free.
					records = 1
				}
				parentNCP, err := hh[i].NCP(node.Value)
				if err != nil {
					return nil, err
				}
				childNCP := 0.0
				for _, c := range node.Children {
					ncp, err := hh[i].NCP(c.Value)
					if err != nil {
						return nil, err
					}
					leaves := 0
					for _, leaf := range c.Leaves() {
						leaves += freq[i][leaf]
					}
					if records > 0 {
						childNCP += ncp * float64(leaves) / float64(records)
					}
				}
				gain := (parentNCP - childNCP) * float64(records)
				if gain <= 0 {
					continue
				}
				// Validity + anonymity loss: min class size after the
				// trial specialization.
				trial := cuts[i].Clone()
				if err := trial.Specialize(node.Value); err != nil {
					return nil, err
				}
				trialCuts := append([]*hierarchy.Cut(nil), cuts...)
				trialCuts[i] = trial
				mcs := minClassSize(n, cutProjector(ds, qis, trialCuts))
				if mcs < opts.K {
					continue
				}
				// AnonyLoss: headroom consumed relative to current.
				cur := minClassSize(n, cutProjector(ds, qis, cuts))
				loss := float64(cur - mcs)
				if loss < 1 {
					loss = 1
				}
				score := gain / loss
				if best.attr < 0 || score > best.score {
					best = candidate{attr: i, value: node.Value, score: score}
				}
			}
		}
		if best.attr < 0 {
			break
		}
		if err := cuts[best.attr].Specialize(best.value); err != nil {
			return nil, err
		}
	}
	sw.Mark("specialize")

	cutMap := make(map[string]*hierarchy.Cut, len(qis))
	for i, q := range qis {
		cutMap[ds.Attrs[q].Name] = cuts[i]
	}
	anon, err := generalize.ApplyCuts(ds, cutMap, qis)
	if err != nil {
		return nil, err
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases()}, nil
}
