package relational

import (
	"context"
	"errors"
	"testing"
)

// TestCancelledContextAbortsEveryAlgorithm runs each relational algorithm
// with an already-cancelled context and expects the context error back:
// the hot loops (lattice expansion, cluster absorption, specialization and
// generalization rounds) must poll Options.Ctx.
func TestCancelledContextAbortsEveryAlgorithm(t *testing.T) {
	ds, hs := smallData(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, a := range algos {
		if _, err := a.run(ds, Options{Ctx: ctx, K: 5, Hierarchies: hs}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s with cancelled context returned %v, want context.Canceled", a.name, err)
		}
	}
}
