// Package relational implements the four relational anonymization
// algorithms SECRETA integrates: Incognito (LeFevre et al., SIGMOD 2005),
// Top-down specialization (Fung et al., ICDE 2005), full-subtree bottom-up
// generalization, and Cluster, the greedy local-recoding clustering of
// Poulis et al. (ECML/PKDD 2013). All four enforce k-anonymity over a set
// of quasi-identifier attributes using generalization hierarchies.
package relational

import (
	"context"
	"fmt"
	"strings"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// Options configures a relational algorithm run.
type Options struct {
	// Ctx, when non-nil, is polled inside the algorithm's long-running
	// loops (cluster absorption, lattice expansion, specialization
	// rounds); once cancelled the run aborts promptly with the context's
	// error. Nil means the run cannot be cancelled.
	Ctx context.Context
	// K is the anonymity parameter (k >= 2 to have any effect).
	K int
	// QIs names the quasi-identifier attributes; empty means all
	// relational attributes.
	QIs []string
	// Hierarchies supplies a hierarchy per QI attribute.
	Hierarchies generalize.Set
	// MaxSuppression is the fraction of records (0..1) Incognito may
	// suppress instead of generalizing: a lattice node qualifies when the
	// records in classes smaller than k sum to at most this fraction, and
	// those records are suppressed in the output. 0 (the default) is
	// plain k-anonymity. Other algorithms currently ignore it.
	MaxSuppression float64
}

// Result is the outcome of a relational algorithm run.
type Result struct {
	// Anonymized is the k-anonymous dataset (records aligned with the
	// input).
	Anonymized *dataset.Dataset
	// Phases is the phase timing breakdown.
	Phases []timing.Phase
	// Levels reports the chosen generalization levels for full-domain
	// schemes (nil otherwise).
	Levels []int
	// Clusters reports the number of clusters for clustering schemes.
	Clusters int
	// NodesChecked counts lattice nodes whose k-anonymity was tested
	// (Incognito diagnostics).
	NodesChecked int
}

func (o *Options) validate(ds *dataset.Dataset) ([]int, []*hierarchy.Hierarchy, error) {
	if o.K < 1 {
		return nil, nil, fmt.Errorf("relational: k must be >= 1, got %d", o.K)
	}
	if o.MaxSuppression < 0 || o.MaxSuppression >= 1 {
		return nil, nil, fmt.Errorf("relational: max suppression must be in [0,1), got %v", o.MaxSuppression)
	}
	qis, err := ds.QIIndices(o.QIs)
	if err != nil {
		return nil, nil, err
	}
	if len(qis) == 0 {
		return nil, nil, fmt.Errorf("relational: no quasi-identifier attributes")
	}
	hh, err := o.Hierarchies.ForQIs(ds, qis)
	if err != nil {
		return nil, nil, err
	}
	// Every data value must be known to its hierarchy.
	for i, q := range qis {
		for _, v := range ds.Domain(q) {
			if !hh[i].Contains(v) {
				return nil, nil, fmt.Errorf("relational: hierarchy %q misses value %q", ds.Attrs[q].Name, v)
			}
		}
	}
	return qis, hh, nil
}

// interrupted returns the options context's error, nil when no context
// was supplied. Algorithms poll it at the top of their expensive loops so
// cancellation takes effect mid-run with bounded delay.
func (o *Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// projector maps a record index to its (generalized) QI signature.
type projector func(r int) string

// levelProjector builds a projector that generalizes each QI to the given
// level, memoizing value translations.
func levelProjector(ds *dataset.Dataset, qis []int, hh []*hierarchy.Hierarchy, levels []int) (projector, error) {
	memo := make([]map[string]string, len(qis))
	for i := range memo {
		memo[i] = make(map[string]string)
	}
	var sb strings.Builder
	return func(r int) string {
		sb.Reset()
		for i, q := range qis {
			v := ds.Records[r].Values[q]
			g, ok := memo[i][v]
			if !ok {
				var err error
				g, err = hh[i].GeneralizeLevels(v, levels[i])
				if err != nil {
					// validate() guarantees all values are known.
					g = v
				}
				memo[i][v] = g
			}
			sb.WriteString(g)
			sb.WriteByte('\x00')
		}
		return sb.String()
	}, nil
}

// cutProjector builds a projector that maps each QI through its cut.
func cutProjector(ds *dataset.Dataset, qis []int, cuts []*hierarchy.Cut) projector {
	memo := make([]map[string]string, len(qis))
	for i := range memo {
		memo[i] = make(map[string]string)
	}
	var sb strings.Builder
	return func(r int) string {
		sb.Reset()
		for i, q := range qis {
			v := ds.Records[r].Values[q]
			g, ok := memo[i][v]
			if !ok {
				var err error
				g, err = cuts[i].Map(v)
				if err != nil {
					g = v
				}
				memo[i][v] = g
			}
			sb.WriteString(g)
			sb.WriteByte('\x00')
		}
		return sb.String()
	}
}

// suppressionNeeded counts the records falling in equivalence classes
// smaller than k under the projector — the records that would have to be
// suppressed to make the node k-anonymous. Refining the projection (less
// generalization) can only split classes, so the count is monotone under
// specialization, which keeps Incognito's prunings valid with a
// suppression budget.
func suppressionNeeded(n, k int, proj projector) int {
	if n == 0 {
		return 0
	}
	counts := make(map[string]int)
	for r := 0; r < n; r++ {
		counts[proj(r)]++
	}
	needed := 0
	for _, c := range counts {
		if c < k {
			needed += c
		}
	}
	return needed
}

// minClassSize computes the smallest equivalence class size under the
// projector over n records. Returns 0 for empty data.
func minClassSize(n int, proj projector) int {
	if n == 0 {
		return 0
	}
	counts := make(map[string]int)
	for r := 0; r < n; r++ {
		counts[proj(r)]++
	}
	min := n
	for _, c := range counts {
		if c < min {
			min = c
		}
	}
	return min
}
