// Package relational implements the four relational anonymization
// algorithms SECRETA integrates: Incognito (LeFevre et al., SIGMOD 2005),
// Top-down specialization (Fung et al., ICDE 2005), full-subtree bottom-up
// generalization, and Cluster, the greedy local-recoding clustering of
// Poulis et al. (ECML/PKDD 2013). All four enforce k-anonymity over a set
// of quasi-identifier attributes using generalization hierarchies.
package relational

import (
	"context"
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// Options configures a relational algorithm run.
type Options struct {
	// Ctx, when non-nil, is polled inside the algorithm's long-running
	// loops (cluster absorption, lattice expansion, specialization
	// rounds); once cancelled the run aborts promptly with the context's
	// error. Nil means the run cannot be cancelled.
	Ctx context.Context
	// K is the anonymity parameter (k >= 2 to have any effect).
	K int
	// QIs names the quasi-identifier attributes; empty means all
	// relational attributes.
	QIs []string
	// Hierarchies supplies a hierarchy per QI attribute.
	Hierarchies generalize.Set
	// MaxSuppression is the fraction of records (0..1) Incognito may
	// suppress instead of generalizing: a lattice node qualifies when the
	// records in classes smaller than k sum to at most this fraction, and
	// those records are suppressed in the output. 0 (the default) is
	// plain k-anonymity. Other algorithms currently ignore it.
	MaxSuppression float64
	// Interned, when non-nil, is the columnar interning of the input
	// dataset (dataset.Intern(ds)). Validation reads per-column domains
	// from its dictionaries instead of re-scanning every record, and batch
	// callers share one interning across all configurations of a batch.
	Interned *dataset.Indexed
}

// Result is the outcome of a relational algorithm run.
type Result struct {
	// Anonymized is the k-anonymous dataset (records aligned with the
	// input).
	Anonymized *dataset.Dataset
	// Phases is the phase timing breakdown.
	Phases []timing.Phase
	// Levels reports the chosen generalization levels for full-domain
	// schemes (nil otherwise).
	Levels []int
	// Clusters reports the number of clusters for clustering schemes.
	Clusters int
	// NodesChecked counts lattice nodes whose k-anonymity was tested
	// (Incognito diagnostics).
	NodesChecked int
}

func (o *Options) validate(ds *dataset.Dataset) ([]int, []*hierarchy.Hierarchy, error) {
	if o.K < 1 {
		return nil, nil, fmt.Errorf("relational: k must be >= 1, got %d", o.K)
	}
	if o.MaxSuppression < 0 || o.MaxSuppression >= 1 {
		return nil, nil, fmt.Errorf("relational: max suppression must be in [0,1), got %v", o.MaxSuppression)
	}
	qis, err := ds.QIIndices(o.QIs)
	if err != nil {
		return nil, nil, err
	}
	if len(qis) == 0 {
		return nil, nil, fmt.Errorf("relational: no quasi-identifier attributes")
	}
	hh, err := o.Hierarchies.ForQIs(ds, qis)
	if err != nil {
		return nil, nil, err
	}
	// Every data value must be known to its hierarchy. With a shared
	// interning the per-column domain is already materialized in the
	// dictionaries; otherwise Domain scans the records.
	domain := ds.Domain
	if ix := o.Interned; ix != nil && ix.N == len(ds.Records) && len(ix.Dicts) == len(ds.Attrs) {
		domain = func(q int) []string { return ix.Dicts[q].Values() }
	}
	for i, q := range qis {
		for _, v := range domain(q) {
			if !hh[i].Contains(v) {
				return nil, nil, fmt.Errorf("relational: hierarchy %q misses value %q", ds.Attrs[q].Name, v)
			}
		}
	}
	return qis, hh, nil
}

// interrupted returns the options context's error, nil when no context
// was supplied. Algorithms poll it at the top of their expensive loops so
// cancellation takes effect mid-run with bounded delay.
func (o *Options) interrupted() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

// projector maps a record index to a packed, injective key of its
// (generalized) QI signature. The returned slice is reused across calls:
// callers must consume it (hash it, compare it) before the next call.
// Keys are tuples of dense per-column IDs interned as generalized values
// are first seen — no per-record string building, no per-record
// allocation.
type projector func(r int) []byte

// columnMemo interns one column's value -> generalized-value translations
// to dense IDs: the translation runs once per distinct original value,
// and records carry 4-byte IDs from then on.
type columnMemo struct {
	ids  map[string]uint32 // original value -> dense generalized ID
	gids map[string]uint32 // generalized value -> dense ID (dedup across originals)
}

func newColumnMemo() *columnMemo {
	return &columnMemo{ids: make(map[string]uint32), gids: make(map[string]uint32)}
}

// id resolves an original value through translate, memoized.
func (m *columnMemo) id(v string, translate func(string) string) uint32 {
	if id, ok := m.ids[v]; ok {
		return id
	}
	g := translate(v)
	id, ok := m.gids[g]
	if !ok {
		id = uint32(len(m.gids))
		m.gids[g] = id
	}
	m.ids[v] = id
	return id
}

// keyProjector assembles a projector from per-column translators.
func keyProjector(ds *dataset.Dataset, qis []int, translate []func(string) string) projector {
	memos := make([]*columnMemo, len(qis))
	for i := range memos {
		memos[i] = newColumnMemo()
	}
	buf := make([]byte, 4*len(qis))
	return func(r int) []byte {
		for i, q := range qis {
			id := memos[i].id(ds.Records[r].Values[q], translate[i])
			buf[4*i] = byte(id >> 24)
			buf[4*i+1] = byte(id >> 16)
			buf[4*i+2] = byte(id >> 8)
			buf[4*i+3] = byte(id)
		}
		return buf
	}
}

// levelProjector builds a projector that generalizes each QI to the given
// level, memoizing value translations.
func levelProjector(ds *dataset.Dataset, qis []int, hh []*hierarchy.Hierarchy, levels []int) (projector, error) {
	translate := make([]func(string) string, len(qis))
	for i := range qis {
		h, lvl := hh[i], levels[i]
		translate[i] = func(v string) string {
			g, err := h.GeneralizeLevels(v, lvl)
			if err != nil {
				// validate() guarantees all values are known.
				return v
			}
			return g
		}
	}
	return keyProjector(ds, qis, translate), nil
}

// cutProjector builds a projector that maps each QI through its cut.
func cutProjector(ds *dataset.Dataset, qis []int, cuts []*hierarchy.Cut) projector {
	translate := make([]func(string) string, len(qis))
	for i := range qis {
		c := cuts[i]
		translate[i] = func(v string) string {
			g, err := c.Map(v)
			if err != nil {
				return v
			}
			return g
		}
	}
	return keyProjector(ds, qis, translate)
}

// classCounts tallies equivalence-class sizes under the projector: a
// two-step map lookup keeps the per-record path allocation-free (keys are
// copied only when a new class appears).
func classCounts(n int, proj projector) []int {
	index := make(map[string]int)
	var counts []int
	for r := 0; r < n; r++ {
		key := proj(r)
		if i, ok := index[string(key)]; ok {
			counts[i]++
		} else {
			index[string(key)] = len(counts)
			counts = append(counts, 1)
		}
	}
	return counts
}

// suppressionNeeded counts the records falling in equivalence classes
// smaller than k under the projector — the records that would have to be
// suppressed to make the node k-anonymous. Refining the projection (less
// generalization) can only split classes, so the count is monotone under
// specialization, which keeps Incognito's prunings valid with a
// suppression budget.
func suppressionNeeded(n, k int, proj projector) int {
	needed := 0
	for _, c := range classCounts(n, proj) {
		if c < k {
			needed += c
		}
	}
	return needed
}

// minClassSize computes the smallest equivalence class size under the
// projector over n records. Returns 0 for empty data.
func minClassSize(n int, proj projector) int {
	if n == 0 {
		return 0
	}
	min := n
	for _, c := range classCounts(n, proj) {
		if c < min {
			min = c
		}
	}
	return min
}
