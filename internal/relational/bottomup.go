package relational

import (
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// BottomUp implements full-subtree bottom-up generalization: it starts from
// the original (leaf-level) data and greedily applies the cheapest
// full-subtree generalization — replacing all cut nodes under some parent
// with the parent — until the dataset is k-anonymous. Cost is the weighted
// NCP increase over the records affected, so the algorithm prefers
// generalizing rare, low-impact values first.
func BottomUp(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	qis, hh, err := opts.validate(ds)
	if err != nil {
		return nil, err
	}
	n := len(ds.Records)
	if n > 0 && n < opts.K {
		return nil, fmt.Errorf("bottomup: dataset has %d records, fewer than k=%d", n, opts.K)
	}

	cuts := make([]*hierarchy.Cut, len(qis))
	for i := range qis {
		cuts[i] = hierarchy.NewLeafCut(hh[i])
	}
	freq := make([]map[string]int, len(qis))
	for i, q := range qis {
		freq[i] = make(map[string]int)
		for r := range ds.Records {
			freq[i][ds.Records[r].Values[q]]++
		}
	}
	sw.Mark("setup")

	for minClassSize(n, cutProjector(ds, qis, cuts)) < opts.K {
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		// Candidates: generalize the children of some parent whose
		// subtree currently intersects the cut.
		type candidate struct {
			attr   int
			parent *hierarchy.Node
			cost   float64
		}
		best := candidate{attr: -1}
		for i := range cuts {
			seen := make(map[*hierarchy.Node]bool)
			for _, node := range cuts[i].Nodes() {
				p := node.Parent
				if p == nil || seen[p] {
					continue
				}
				seen[p] = true
				parentNCP, err := hh[i].NCP(p.Value)
				if err != nil {
					return nil, err
				}
				// Cost: records under p gain (parentNCP - currentNCP).
				cost := 0.0
				for _, leaf := range p.Leaves() {
					cnt := freq[i][leaf]
					if cnt == 0 {
						continue
					}
					cur, err := cuts[i].Map(leaf)
					if err != nil {
						return nil, err
					}
					curNCP, err := hh[i].NCP(cur)
					if err != nil {
						return nil, err
					}
					cost += (parentNCP - curNCP) * float64(cnt)
				}
				if best.attr < 0 || cost < best.cost {
					best = candidate{attr: i, parent: p, cost: cost}
				}
			}
		}
		if best.attr < 0 {
			// Everything is at the root and still not k-anonymous: the
			// single remaining class has n records, so this can only
			// happen for n < k, which was rejected above — or n == 0.
			break
		}
		// Generalize one child on the cut up to the parent (Generalize
		// sweeps all cut nodes under the parent).
		child := ""
		for _, c := range best.parent.Children {
			if cuts[best.attr].Contains(c.Value) {
				child = c.Value
				break
			}
		}
		if child == "" {
			// The cut sits deeper; find any cut descendant of the parent.
			for _, v := range cuts[best.attr].Values() {
				if hh[best.attr].Covers(best.parent.Value, v) {
					child = v
					break
				}
			}
		}
		if child == "" {
			return nil, fmt.Errorf("bottomup: internal error: no cut node under %q", best.parent.Value)
		}
		if err := cuts[best.attr].Generalize(child); err != nil {
			return nil, err
		}
	}
	sw.Mark("generalize")

	cutMap := make(map[string]*hierarchy.Cut, len(qis))
	for i, q := range qis {
		cutMap[ds.Attrs[q].Name] = cuts[i]
	}
	anon, err := generalize.ApplyCuts(ds, cutMap, qis)
	if err != nil {
		return nil, err
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases()}, nil
}
