package relational

import (
	"testing"

	"secreta/internal/generalize"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
)

func TestIncognitoSuppressionBudgetLowersGCP(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	k := 10
	plain, err := Incognito(ds, Options{K: k, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	withSupp, err := Incognito(ds, Options{K: k, Hierarchies: hs, MaxSuppression: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	gPlain, _ := metrics.GCP(plain.Anonymized, hs, qis)
	gSupp, _ := metrics.GCP(withSupp.Anonymized, hs, qis)
	// Suppression budget can only widen the candidate set, so the chosen
	// node's GCP (with suppression charged at full loss) never worsens.
	if gSupp > gPlain+1e-9 {
		t.Errorf("GCP with suppression %.4f > plain %.4f", gSupp, gPlain)
	}
	// The budget must be respected.
	suppressed := 0
	for r := range withSupp.Anonymized.Records {
		if generalize.IsSuppressed(withSupp.Anonymized, qis, r) {
			suppressed++
		}
	}
	if max := ds.Len() / 10; suppressed > max {
		t.Errorf("suppressed %d records, budget %d", suppressed, max)
	}
	// Remaining records are k-anonymous (suppressed ones are excluded by
	// the privacy checker).
	if !privacy.IsKAnonymous(withSupp.Anonymized, qis, k) {
		t.Error("unsuppressed part not k-anonymous")
	}
}

func TestIncognitoSuppressionValidation(t *testing.T) {
	ds, hs := smallData(t)
	if _, err := Incognito(ds, Options{K: 2, Hierarchies: hs, MaxSuppression: -0.1}); err == nil {
		t.Error("negative suppression accepted")
	}
	if _, err := Incognito(ds, Options{K: 2, Hierarchies: hs, MaxSuppression: 1.0}); err == nil {
		t.Error("suppression = 1 accepted")
	}
}

func TestIncognitoZeroBudgetMatchesPlain(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	a, err := Incognito(ds, Options{K: 5, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Incognito(ds, Options{K: 5, Hierarchies: hs, MaxSuppression: 0})
	if err != nil {
		t.Fatal(err)
	}
	ga, _ := metrics.GCP(a.Anonymized, hs, qis)
	gb, _ := metrics.GCP(b.Anonymized, hs, qis)
	if ga != gb {
		t.Errorf("explicit zero budget changed the result: %.4f vs %.4f", ga, gb)
	}
}

func TestSuppressionNeededMonotone(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	hh, err := hs.ForQIs(ds, qis)
	if err != nil {
		t.Fatal(err)
	}
	n := ds.Len()
	k := 8
	// Along any chain bottom -> top, suppressionNeeded must be
	// non-increasing (the monotonicity Incognito's prunings rely on).
	levels := make([]int, len(qis))
	prev := -1
	for step := 0; ; step++ {
		proj, err := levelProjector(ds, qis, hh, levels)
		if err != nil {
			t.Fatal(err)
		}
		cur := suppressionNeeded(n, k, proj)
		if prev >= 0 && cur > prev {
			t.Fatalf("suppressionNeeded grew along generalization chain: %d -> %d at %v", prev, cur, levels)
		}
		prev = cur
		// Generalize the first attribute not yet at its root.
		advanced := false
		for i := range levels {
			if levels[i] < hh[i].Height() {
				levels[i]++
				advanced = true
				break
			}
		}
		if !advanced {
			break
		}
	}
	if prev != 0 {
		t.Errorf("top node still needs %d suppressions", prev)
	}
}
