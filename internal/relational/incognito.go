package relational

import (
	"fmt"
	"sort"

	"secreta/internal/dataset"
	"secreta/internal/generalize"
	"secreta/internal/hierarchy"
	"secreta/internal/lattice"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
	"secreta/internal/timing"
)

// metricsGCP is a local alias keeping the algorithm body readable.
func metricsGCP(ds *dataset.Dataset, hs generalize.Set, qis []int) (float64, error) {
	return metrics.GCP(ds, hs, qis)
}

// Incognito implements full-domain k-anonymity (LeFevre et al., SIGMOD
// 2005). It searches the lattice of per-attribute generalization levels for
// all minimal k-anonymous nodes, using the two prunings of the original
// algorithm:
//
//   - subset pruning: a node can only be k-anonymous if the projection of
//     its level vector onto every proper attribute subset is k-anonymous,
//     checked by processing subsets in increasing size (the candidate-graph
//     join of the paper, expressed as a filter);
//   - roll-up (generalization) pruning: once a node is k-anonymous, all its
//     dominating nodes are k-anonymous and need no checks.
//
// Among the minimal k-anonymous full-dimension nodes it returns the one
// with the lowest GCP.
func Incognito(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	qis, hh, err := opts.validate(ds)
	if err != nil {
		return nil, err
	}
	heights := make([]int, len(qis))
	for i, h := range hh {
		heights[i] = h.Height()
	}
	sw.Mark("setup")

	// anon[subsetKey][nodeKey] records k-anonymous level vectors per
	// attribute subset (vectors indexed by subset position).
	anon := make(map[string]map[string]bool)
	checked := 0

	n := len(ds.Records)
	budget := int(opts.MaxSuppression * float64(n))
	subsets := enumerateSubsets(len(qis))
	for _, sub := range subsets {
		subKey := subsetKey(sub)
		anon[subKey] = make(map[string]bool)
		subHeights := make([]int, len(sub))
		subQIs := make([]int, len(sub))
		subHH := make([]*hierarchy.Hierarchy, len(sub))
		for i, a := range sub {
			subHeights[i] = heights[a]
			subQIs[i] = qis[a]
			subHH[i] = hh[a]
		}
		lat, err := lattice.New(subHeights)
		if err != nil {
			return nil, err
		}
		// WalkCtx polls the context between lattice nodes, so a cancelled
		// job stops mid-expansion instead of finishing the subset.
		if err := lat.WalkCtx(opts.Ctx, func(node []int) bool {
			key := lattice.Key(node)
			// Roll-up pruning: a specialization already k-anonymous
			// implies this node is too.
			for _, pred := range lat.Predecessors(node) {
				if anon[subKey][lattice.Key(pred)] {
					anon[subKey][key] = true
					return true
				}
			}
			// Subset pruning: every (size-1) projection must be
			// k-anonymous.
			if !subsetProjectionsAnonymous(anon, sub, node) {
				return true
			}
			proj, err := levelProjector(ds, subQIs, subHH, node)
			if err != nil {
				return true
			}
			checked++
			if suppressionNeeded(n, opts.K, proj) <= budget {
				anon[subKey][key] = true
			}
			return true
		}); err != nil {
			return nil, err
		}
	}
	sw.Mark("lattice search")

	fullKey := subsetKey(subsets[len(subsets)-1])
	var candidates [][]int
	for key := range anon[fullKey] {
		candidates = append(candidates, parseKey(key))
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("incognito: no k-anonymous generalization exists for k=%d (dataset has %d records)", opts.K, n)
	}
	minimal := lattice.MinimalNodes(candidates)

	// Pick the minimal node with the lowest GCP.
	bestIdx := -1
	bestGCP := 2.0
	var bestDS *dataset.Dataset
	for i, node := range minimal {
		cand, err := generalize.FullDomain(ds, opts.Hierarchies, qis, node)
		if err != nil {
			return nil, err
		}
		if budget > 0 {
			suppressSmallClasses(cand, qis, opts.K)
		}
		g, err := metricsGCP(cand, opts.Hierarchies, qis)
		if err != nil {
			return nil, err
		}
		if g < bestGCP {
			bestGCP = g
			bestIdx = i
			bestDS = cand
		}
	}
	sw.Mark("recode")
	return &Result{
		Anonymized:   bestDS,
		Phases:       sw.Phases(),
		Levels:       minimal[bestIdx],
		NodesChecked: checked,
	}, nil
}

// suppressSmallClasses suppresses every record whose equivalence class is
// smaller than k — the suppression half of "k-anonymity with suppression".
func suppressSmallClasses(ds *dataset.Dataset, qis []int, k int) {
	for _, cl := range privacy.Partition(ds, qis) {
		if len(cl.Records) >= k {
			continue
		}
		for _, r := range cl.Records {
			generalize.SuppressRecord(ds, qis, r)
		}
	}
}

// subsetProjectionsAnonymous checks that every proper (size-1) subset
// projection of node is marked k-anonymous.
func subsetProjectionsAnonymous(anon map[string]map[string]bool, sub []int, node []int) bool {
	if len(sub) == 1 {
		return true
	}
	projSub := make([]int, 0, len(sub)-1)
	projNode := make([]int, 0, len(sub)-1)
	for drop := range sub {
		projSub = projSub[:0]
		projNode = projNode[:0]
		for i := range sub {
			if i == drop {
				continue
			}
			projSub = append(projSub, sub[i])
			projNode = append(projNode, node[i])
		}
		if !anon[subsetKey(projSub)][lattice.Key(projNode)] {
			return false
		}
	}
	return true
}

// enumerateSubsets lists all non-empty subsets of {0..n-1} ordered by size
// (Incognito's iteration order), each subset sorted ascending.
func enumerateSubsets(n int) [][]int {
	var out [][]int
	for mask := 1; mask < 1<<uint(n); mask++ {
		var s []int
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				s = append(s, i)
			}
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i]) < len(out[j]) })
	return out
}

func subsetKey(sub []int) string { return lattice.Key(sub) }

func parseKey(key string) []int {
	var out []int
	v := 0
	seen := false
	for i := 0; i <= len(key); i++ {
		if i == len(key) || key[i] == ',' {
			if seen {
				out = append(out, v)
			}
			v = 0
			seen = false
			continue
		}
		v = v*10 + int(key[i]-'0')
		seen = true
	}
	return out
}
