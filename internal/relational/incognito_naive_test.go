package relational

import (
	"testing"

	"secreta/internal/generalize"
	"secreta/internal/lattice"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
)

// naiveFullDomain finds the best (min-GCP) minimal k-anonymous full-domain
// node by scanning the whole lattice without any pruning — the reference
// Incognito's prunings must agree with.
func naiveFullDomain(t *testing.T, dsQIs []int, heights []int, check func(node []int) bool, gcp func(node []int) float64) ([]int, float64) {
	t.Helper()
	lat, err := lattice.New(heights)
	if err != nil {
		t.Fatal(err)
	}
	var anonymous [][]int
	lat.Walk(func(node []int) bool {
		if check(node) {
			anonymous = append(anonymous, append([]int(nil), node...))
		}
		return true
	})
	if len(anonymous) == 0 {
		t.Fatal("naive scan found no k-anonymous node")
	}
	minimal := lattice.MinimalNodes(anonymous)
	best := minimal[0]
	bestGCP := gcp(best)
	for _, node := range minimal[1:] {
		if g := gcp(node); g < bestGCP {
			best, bestGCP = node, g
		}
	}
	return best, bestGCP
}

// TestIncognitoMatchesNaive is the ablation cross-check: subset + roll-up
// pruning must return a node with the same (minimal) GCP as the exhaustive
// lattice scan.
func TestIncognitoMatchesNaive(t *testing.T) {
	ds, hs := smallData(t)
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	hh, err := hs.ForQIs(ds, qis)
	if err != nil {
		t.Fatal(err)
	}
	heights := make([]int, len(qis))
	for i, h := range hh {
		heights[i] = h.Height()
	}
	for _, k := range []int{2, 5, 15} {
		res, err := Incognito(ds, Options{K: k, Hierarchies: hs})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		gIncognito, err := metrics.GCP(res.Anonymized, hs, qis)
		if err != nil {
			t.Fatal(err)
		}
		check := func(node []int) bool {
			cand, err := generalize.FullDomain(ds, hs, qis, node)
			if err != nil {
				t.Fatal(err)
			}
			return privacy.IsKAnonymous(cand, qis, k)
		}
		gcp := func(node []int) float64 {
			cand, err := generalize.FullDomain(ds, hs, qis, node)
			if err != nil {
				t.Fatal(err)
			}
			g, err := metrics.GCP(cand, hs, qis)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}
		_, gNaive := naiveFullDomain(t, qis, heights, check, gcp)
		if gIncognito != gNaive {
			t.Errorf("k=%d: Incognito GCP %.6f != naive %.6f", k, gIncognito, gNaive)
		}
	}
}
