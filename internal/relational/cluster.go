package relational

import (
	"fmt"

	"secreta/internal/dataset"
	"secreta/internal/hierarchy"
	"secreta/internal/timing"
)

// Cluster implements the greedy clustering-based k-anonymization of Poulis
// et al. (ECML/PKDD 2013): records are grouped into clusters of at least k
// by repeatedly seeding a cluster and absorbing the records whose addition
// increases the cluster's generalization cost (per-attribute LCA NCP) the
// least; leftover records join their cheapest cluster. Each cluster is then
// locally recoded to its per-attribute least common ancestors, so different
// clusters can use different generalization granularities (local recoding),
// which typically preserves far more utility than full-domain schemes.
func Cluster(ds *dataset.Dataset, opts Options) (*Result, error) {
	sw := timing.Start()
	qis, hh, err := opts.validate(ds)
	if err != nil {
		return nil, err
	}
	n := len(ds.Records)
	if n > 0 && n < opts.K {
		return nil, fmt.Errorf("cluster: dataset has %d records, fewer than k=%d", n, opts.K)
	}
	sw.Mark("setup")

	clusters, err := buildClusters(ds, qis, hh, opts)
	if err != nil {
		return nil, err
	}
	sw.Mark("cluster")

	anon := ds.Clone()
	for _, cl := range clusters {
		for i, q := range qis {
			for _, r := range cl.members {
				anon.Records[r].Values[q] = cl.lca[i].Value
			}
		}
	}
	sw.Mark("recode")
	return &Result{Anonymized: anon, Phases: sw.Phases(), Clusters: len(clusters)}, nil
}

// clusterState tracks one cluster's members and its running per-attribute
// LCA nodes.
type clusterState struct {
	members []int
	lca     []*hierarchy.Node
}

// recordNodes resolves every record's QI values to hierarchy nodes once,
// so the O(n^2) absorption scans below run on pointers instead of map
// lookups.
func recordNodes(ds *dataset.Dataset, qis []int, hh []*hierarchy.Hierarchy) ([][]*hierarchy.Node, error) {
	out := make([][]*hierarchy.Node, len(ds.Records))
	memo := make([]map[string]*hierarchy.Node, len(qis))
	for i := range memo {
		memo[i] = make(map[string]*hierarchy.Node)
	}
	for r := range ds.Records {
		nodes := make([]*hierarchy.Node, len(qis))
		for i, q := range qis {
			v := ds.Records[r].Values[q]
			node, ok := memo[i][v]
			if !ok {
				node = hh[i].Node(v)
				if node == nil {
					return nil, fmt.Errorf("cluster: hierarchy %q misses value %q", ds.Attrs[q].Name, v)
				}
				memo[i][v] = node
			}
			nodes[i] = node
		}
		out[r] = nodes
	}
	return out, nil
}

// costOfAdding computes the NCP increase of extending the cluster's LCAs to
// cover record r, summed over attributes, writing the new LCA nodes into
// lca (len(cl.lca), caller-owned scratch). The scan is pure node
// arithmetic: LCA walks and O(1) NCP reads — the absorption loops run it
// O(n^2) times, so it must not allocate.
func costOfAdding(recNodes [][]*hierarchy.Node, hh []*hierarchy.Hierarchy, cl *clusterState, r int, lca []*hierarchy.Node) float64 {
	delta := 0.0
	for i := range cl.lca {
		node := hierarchy.LCANodes(cl.lca[i], recNodes[r][i])
		lca[i] = node
		delta += hh[i].NCPNode(node) - hh[i].NCPNode(cl.lca[i])
	}
	return delta
}

func buildClusters(ds *dataset.Dataset, qis []int, hh []*hierarchy.Hierarchy, opts Options) ([]*clusterState, error) {
	k := opts.K
	n := len(ds.Records)
	recNodes, err := recordNodes(ds, qis, hh)
	if err != nil {
		return nil, err
	}
	unassigned := make([]bool, n)
	remaining := n
	for i := range unassigned {
		unassigned[i] = true
	}
	newCluster := func(seed int) *clusterState {
		return &clusterState{
			members: []int{seed},
			lca:     append([]*hierarchy.Node(nil), recNodes[seed]...),
		}
	}

	// Two reusable LCA buffers serve every cost scan: cand receives each
	// candidate's nodes, best keeps the running winner's. The winner is
	// committed by copying into the cluster's own slice, so the O(n^2·k)
	// scans allocate nothing.
	cand := make([]*hierarchy.Node, len(qis))
	best := make([]*hierarchy.Node, len(qis))

	var clusters []*clusterState
	next := 0
	for remaining >= k {
		for !unassigned[next] {
			next++
		}
		seed := next
		cl := newCluster(seed)
		unassigned[seed] = false
		remaining--
		for len(cl.members) < k {
			// Each absorption scans every unassigned record; polling here
			// bounds cancellation delay to one scan.
			if err := opts.interrupted(); err != nil {
				return nil, err
			}
			bestR := -1
			bestCost := 0.0
			for r := 0; r < n; r++ {
				if !unassigned[r] {
					continue
				}
				cost := costOfAdding(recNodes, hh, cl, r, cand)
				if bestR < 0 || cost < bestCost {
					bestR, bestCost = r, cost
					best, cand = cand, best
					if cost == 0 {
						break // cannot do better than free
					}
				}
			}
			if bestR < 0 {
				break
			}
			cl.members = append(cl.members, bestR)
			copy(cl.lca, best)
			unassigned[bestR] = false
			remaining--
		}
		clusters = append(clusters, cl)
	}
	// Leftovers: attach each to the cluster whose LCAs grow the least.
	for r := 0; r < n; r++ {
		if !unassigned[r] {
			continue
		}
		if err := opts.interrupted(); err != nil {
			return nil, err
		}
		bestC := -1
		bestCost := 0.0
		for ci, cl := range clusters {
			cost := costOfAdding(recNodes, hh, cl, r, cand)
			if bestC < 0 || cost < bestCost {
				bestC, bestCost = ci, cost
				best, cand = cand, best
			}
		}
		if bestC < 0 {
			// No cluster exists (n < k was rejected; n == 0 cannot reach
			// here). Defensive: make a singleton cluster.
			clusters = append(clusters, newCluster(r))
			unassigned[r] = false
			continue
		}
		clusters[bestC].members = append(clusters[bestC].members, r)
		copy(clusters[bestC].lca, best)
		unassigned[r] = false
	}
	return clusters, nil
}
