package relational

import (
	"testing"

	"secreta/internal/dataset"
	"secreta/internal/gen"
	"secreta/internal/generalize"
	"secreta/internal/metrics"
	"secreta/internal/privacy"
)

type algo struct {
	name string
	run  func(*dataset.Dataset, Options) (*Result, error)
}

var algos = []algo{
	{"Incognito", Incognito},
	{"TopDown", TopDown},
	{"BottomUp", BottomUp},
	{"Cluster", Cluster},
}

func smallData(t testing.TB) (*dataset.Dataset, generalize.Set) {
	t.Helper()
	ds := gen.Census(gen.Config{Records: 120, Items: 0, Seed: 9})
	hs, err := gen.Hierarchies(ds, 3)
	if err != nil {
		t.Fatal(err)
	}
	return ds, hs
}

func TestAllAlgorithmsEnforceKAnonymity(t *testing.T) {
	ds, hs := smallData(t)
	qis, err := ds.QIIndices(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range algos {
		for _, k := range []int{2, 5, 10, 25} {
			res, err := a.run(ds, Options{K: k, Hierarchies: hs})
			if err != nil {
				t.Fatalf("%s k=%d: %v", a.name, k, err)
			}
			if res.Anonymized.Len() != ds.Len() {
				t.Fatalf("%s k=%d: record count changed (%d vs %d)", a.name, k, res.Anonymized.Len(), ds.Len())
			}
			if !privacy.IsKAnonymous(res.Anonymized, qis, k) {
				t.Errorf("%s k=%d: output not k-anonymous (min class %d)",
					a.name, k, privacy.MinClassSize(res.Anonymized, qis))
			}
			if len(res.Phases) == 0 {
				t.Errorf("%s: no phase timings", a.name)
			}
		}
	}
}

func TestOutputsAreGeneralizationsOfInput(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	for _, a := range algos {
		res, err := a.run(ds, Options{K: 5, Hierarchies: hs})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		for r := range ds.Records {
			for _, q := range qis {
				orig := ds.Records[r].Values[q]
				got := res.Anonymized.Records[r].Values[q]
				h := hs[ds.Attrs[q].Name]
				if !h.Covers(got, orig) {
					t.Fatalf("%s: record %d attr %s: %q does not cover %q",
						a.name, r, ds.Attrs[q].Name, got, orig)
				}
			}
		}
	}
}

func TestInputNeverMutated(t *testing.T) {
	ds, hs := smallData(t)
	before := ds.Clone()
	for _, a := range algos {
		if _, err := a.run(ds, Options{K: 5, Hierarchies: hs}); err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		for r := range ds.Records {
			for i := range ds.Records[r].Values {
				if ds.Records[r].Values[i] != before.Records[r].Values[i] {
					t.Fatalf("%s mutated the input dataset", a.name)
				}
			}
		}
	}
}

func TestUtilityOrderingLocalVsFullDomain(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	k := 10
	inc, err := Incognito(ds, Options{K: k, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	clu, err := Cluster(ds, Options{K: k, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	gInc, _ := metrics.GCP(inc.Anonymized, hs, qis)
	gClu, _ := metrics.GCP(clu.Anonymized, hs, qis)
	// Local recoding should not lose (noticeably) more information than
	// full-domain recoding — the paper's headline comparison shape.
	if gClu > gInc+0.05 {
		t.Errorf("Cluster GCP %.4f worse than Incognito %.4f", gClu, gInc)
	}
}

func TestGCPGrowsWithK(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	for _, a := range algos {
		g2 := 0.0
		g40 := 0.0
		for _, k := range []int{2, 40} {
			res, err := a.run(ds, Options{K: k, Hierarchies: hs})
			if err != nil {
				t.Fatalf("%s k=%d: %v", a.name, k, err)
			}
			g, err := metrics.GCP(res.Anonymized, hs, qis)
			if err != nil {
				t.Fatal(err)
			}
			if k == 2 {
				g2 = g
			} else {
				g40 = g
			}
		}
		if g40+1e-9 < g2 {
			t.Errorf("%s: GCP dropped from %.4f (k=2) to %.4f (k=40)", a.name, g2, g40)
		}
	}
}

func TestSubsetOfQIs(t *testing.T) {
	ds, hs := smallData(t)
	for _, a := range algos {
		res, err := a.run(ds, Options{K: 5, QIs: []string{"Age", "Gender"}, Hierarchies: hs})
		if err != nil {
			t.Fatalf("%s: %v", a.name, err)
		}
		qis, _ := ds.QIIndices([]string{"Age", "Gender"})
		if !privacy.IsKAnonymous(res.Anonymized, qis, 5) {
			t.Errorf("%s: not 5-anonymous on QI subset", a.name)
		}
		// Non-QI attributes untouched.
		zi := ds.AttrIndex("Zip")
		for r := range ds.Records {
			if res.Anonymized.Records[r].Values[zi] != ds.Records[r].Values[zi] {
				t.Fatalf("%s: non-QI attribute modified", a.name)
			}
		}
	}
}

func TestOptionErrors(t *testing.T) {
	ds, hs := smallData(t)
	for _, a := range algos {
		if _, err := a.run(ds, Options{K: 0, Hierarchies: hs}); err == nil {
			t.Errorf("%s: k=0 accepted", a.name)
		}
		if _, err := a.run(ds, Options{K: 2, QIs: []string{"Nope"}, Hierarchies: hs}); err == nil {
			t.Errorf("%s: unknown QI accepted", a.name)
		}
		if _, err := a.run(ds, Options{K: 2, Hierarchies: generalize.Set{}}); err == nil {
			t.Errorf("%s: missing hierarchies accepted", a.name)
		}
		if _, err := a.run(ds, Options{K: ds.Len() + 1, Hierarchies: hs}); err == nil {
			t.Errorf("%s: k > n accepted", a.name)
		}
	}
}

func TestHierarchyMissingValue(t *testing.T) {
	ds, hs := smallData(t)
	bad := ds.Clone()
	bad.Records[0].Values[0] = "unknown-age"
	for _, a := range algos {
		if _, err := a.run(bad, Options{K: 2, Hierarchies: hs}); err == nil {
			t.Errorf("%s: value missing from hierarchy accepted", a.name)
		}
	}
}

func TestIncognitoDiagnostics(t *testing.T) {
	ds, hs := smallData(t)
	res, err := Incognito(ds, Options{K: 5, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Levels == nil {
		t.Error("Incognito returned no level vector")
	}
	if res.NodesChecked <= 0 {
		t.Error("Incognito checked no nodes")
	}
	qis, _ := ds.QIIndices(nil)
	if len(res.Levels) != len(qis) {
		t.Errorf("levels arity = %d", len(res.Levels))
	}
}

func TestIncognitoMinimality(t *testing.T) {
	ds, hs := smallData(t)
	qis, _ := ds.QIIndices(nil)
	res, err := Incognito(ds, Options{K: 5, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	// Specializing any single attribute one level must break k-anonymity
	// (the chosen node is minimal).
	for i := range res.Levels {
		if res.Levels[i] == 0 {
			continue
		}
		trial := append([]int(nil), res.Levels...)
		trial[i]--
		cand, err := generalize.FullDomain(ds, hs, qis, trial)
		if err != nil {
			t.Fatal(err)
		}
		if privacy.IsKAnonymous(cand, qis, 5) {
			t.Errorf("level vector %v is not minimal: %v also k-anonymous", res.Levels, trial)
		}
	}
}

func TestClusterCountsAndSizes(t *testing.T) {
	ds, hs := smallData(t)
	k := 7
	res, err := Cluster(ds, Options{K: k, Hierarchies: hs})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clusters <= 0 || res.Clusters > ds.Len()/k {
		t.Errorf("clusters = %d for n=%d k=%d", res.Clusters, ds.Len(), k)
	}
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, node := range [][]int{{0}, {1, 2, 3}, {10, 0, 7}} {
		got := parseKey(keyOf(node))
		if len(got) != len(node) {
			t.Fatalf("parseKey arity: %v vs %v", got, node)
		}
		for i := range node {
			if got[i] != node[i] {
				t.Fatalf("parseKey(%v) = %v", node, got)
			}
		}
	}
}

func keyOf(node []int) string { return subsetKey(node) }

func TestEnumerateSubsetsOrder(t *testing.T) {
	subs := enumerateSubsets(3)
	if len(subs) != 7 {
		t.Fatalf("subsets = %v", subs)
	}
	for i := 1; i < len(subs); i++ {
		if len(subs[i]) < len(subs[i-1]) {
			t.Fatalf("subsets not size-ordered: %v", subs)
		}
	}
	if len(subs[len(subs)-1]) != 3 {
		t.Fatalf("last subset not full: %v", subs)
	}
}
