package harness

import (
	"fmt"
	"io"
	"sort"
)

// Default regression-gate thresholds (fractions of the baseline). The
// wall-clock threshold is loose because timing is noisy even on an idle
// box; the allocation threshold is tight because allocs/op is nearly
// deterministic — an alloc regression is real code, not scheduling luck.
const (
	DefaultNsTolerance    = 0.20
	DefaultAllocTolerance = 0.10
	// DefaultMinGateRepeats is how many fresh repeats a wall-clock
	// verdict needs before it is allowed to fail the build: a single
	// noisy run must not gate.
	DefaultMinGateRepeats = 3
)

// Tolerance is a per-benchmark threshold override.
type Tolerance struct {
	Ns    float64
	Alloc float64
}

// CompareOptions configures a comparison.
type CompareOptions struct {
	// NsTolerance / AllocTolerance are the default thresholds; zero
	// selects the package defaults.
	NsTolerance    float64
	AllocTolerance float64
	// MinGateRepeats gates wall-clock verdicts (zero: default 3).
	MinGateRepeats int
	// Gate restricts gating to these benchmark names. Nil gates every
	// benchmark present on both sides (the offline/self-test mode);
	// an empty non-nil map gates nothing.
	Gate map[string]bool
	// Overrides supplies per-benchmark tolerances (from the grid).
	Overrides map[string]Tolerance
}

func (o *CompareOptions) fill() {
	if o.NsTolerance == 0 {
		o.NsTolerance = DefaultNsTolerance
	}
	if o.AllocTolerance == 0 {
		o.AllocTolerance = DefaultAllocTolerance
	}
	if o.MinGateRepeats == 0 {
		o.MinGateRepeats = DefaultMinGateRepeats
	}
}

// DeltaStatus classifies one benchmark's comparison outcome.
type DeltaStatus string

const (
	StatusOK       DeltaStatus = "ok"
	StatusRegress  DeltaStatus = "regression"
	StatusImproved DeltaStatus = "improved"
	// StatusMissing: in the baseline but not measured now (and not
	// recorded as skipped) — suspicious, but not a perf regression.
	StatusMissing DeltaStatus = "missing"
	// StatusSkipped: not measured now because the benchmark skipped
	// itself (e.g. workers > GOMAXPROCS on a small box).
	StatusSkipped DeltaStatus = "skipped"
	// StatusNew: measured now but absent from the baseline.
	StatusNew DeltaStatus = "new"
)

// Delta is one benchmark's baseline-vs-current verdict.
type Delta struct {
	Name   string      `json:"name"`
	Status DeltaStatus `json:"status"`
	Gated  bool        `json:"gated"`
	// Wall clock: best-of-repeats on both sides (min is the least noisy
	// location estimator for benchmark timings), the ratio, and the
	// effective limit after noise widening.
	NsBase, NsCur, NsRatio, NsLimit float64
	// Allocations: mean-of-repeats (allocs are near-deterministic).
	AllocBase, AllocCur, AllocRatio, AllocLimit float64
	HasAlloc                                    bool
	// Notes carries human context ("low repeats: wall-clock not gating").
	Notes []string `json:"notes,omitempty"`
}

// Compare diffs current against baseline benchmark by benchmark. The
// thresholds are noise-aware: each side's coefficient of variation widens
// the limit, so a benchmark whose baseline wobbles ±8% is not failed for
// wobbling ±8% again. Wall-clock verdicts additionally require
// MinGateRepeats fresh repeats; allocation verdicts gate from a single
// repeat because allocs/op does not wobble.
func Compare(baseline, current *Baseline, opts CompareOptions) []Delta {
	opts.fill()
	baseBy := baseline.ByName()
	curBy := current.ByName()
	curSkipped := current.SkippedSet()

	names := make([]string, 0, len(baseBy)+len(curBy))
	for n := range baseBy {
		names = append(names, n)
	}
	for n := range curBy {
		if _, ok := baseBy[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	gated := func(name string) bool {
		if opts.Gate == nil {
			return true
		}
		return opts.Gate[name]
	}
	tol := func(name string) Tolerance {
		t := Tolerance{Ns: opts.NsTolerance, Alloc: opts.AllocTolerance}
		if ov, ok := opts.Overrides[name]; ok {
			if ov.Ns > 0 {
				t.Ns = ov.Ns
			}
			if ov.Alloc > 0 {
				t.Alloc = ov.Alloc
			}
		}
		return t
	}

	var out []Delta
	for _, name := range names {
		base, inBase := baseBy[name]
		cur, inCur := curBy[name]
		if inBase && !inCur && !curSkipped[name] && opts.Gate != nil && !opts.Gate[name] {
			// A gated comparison measures only the gate set; baseline
			// entries outside it are out of scope, not "missing".
			continue
		}
		d := Delta{Name: name, Gated: gated(name) && inBase && inCur}
		switch {
		case !inCur && curSkipped[name]:
			d.Status = StatusSkipped
			d.Notes = append(d.Notes, "benchmark skipped itself on this box; baseline entry not checked")
		case !inCur:
			d.Status = StatusMissing
			d.Notes = append(d.Notes, "in the baseline but produced no measurement (renamed? deleted?)")
		case !inBase:
			d.Status = StatusNew
		default:
			compareOne(&d, base, cur, tol(name), opts.MinGateRepeats)
		}
		out = append(out, d)
	}
	return out
}

// compareOne fills the numeric verdict for a benchmark measured on both
// sides.
func compareOne(d *Delta, base, cur Summary, t Tolerance, minReps int) {
	d.NsBase, d.NsCur = base.NsOp.Min, cur.NsOp.Min
	d.NsLimit = t.Ns + base.NsOp.CV + cur.NsOp.CV
	if d.NsBase > 0 {
		d.NsRatio = d.NsCur / d.NsBase
	}
	nsGates := cur.Repeats >= minReps
	if !nsGates {
		d.Notes = append(d.Notes,
			fmt.Sprintf("only %d repeat(s) (<%d): wall-clock verdict informational", cur.Repeats, minReps))
	}

	d.HasAlloc = base.HasMem && cur.HasMem
	allocRegress := false
	if d.HasAlloc {
		d.AllocBase, d.AllocCur = base.AllocsOp.Mean, cur.AllocsOp.Mean
		d.AllocLimit = t.Alloc + base.AllocsOp.CV + cur.AllocsOp.CV
		if d.AllocBase > 0 {
			d.AllocRatio = d.AllocCur / d.AllocBase
		}
		allocRegress = d.AllocBase > 0 && d.AllocRatio > 1+d.AllocLimit
	}
	nsRegress := nsGates && d.NsBase > 0 && d.NsRatio > 1+d.NsLimit

	switch {
	case nsRegress || allocRegress:
		d.Status = StatusRegress
		if nsRegress {
			d.Notes = append(d.Notes, fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%, limit +%.1f%%)",
				d.NsBase, d.NsCur, 100*(d.NsRatio-1), 100*d.NsLimit))
		}
		if allocRegress {
			d.Notes = append(d.Notes, fmt.Sprintf("allocs/op %.0f -> %.0f (%+.1f%%, limit +%.1f%%)",
				d.AllocBase, d.AllocCur, 100*(d.AllocRatio-1), 100*d.AllocLimit))
		}
	case d.NsBase > 0 && d.NsRatio < 1/(1+d.NsLimit),
		d.HasAlloc && d.AllocBase > 0 && d.AllocRatio < 1/(1+d.AllocLimit):
		d.Status = StatusImproved
	default:
		d.Status = StatusOK
	}
}

// ScaleBaseline returns a copy of b with every benchmark's wall-clock
// and allocation statistics multiplied by the given factors. It exists
// for the gate's self-test: scaling a tracked baseline by 1.25 fabricates
// the "25% slowdown" fixture the gate must demonstrably fail on, without
// committing numbers that go stale when the baseline moves.
func ScaleBaseline(b *Baseline, nsFactor, allocFactor float64) *Baseline {
	out := *b
	out.Summaries = make([]Summary, len(b.Summaries))
	for i, s := range b.Summaries {
		s.NsOp = scaleStat(s.NsOp, nsFactor)
		s.AllocsOp = scaleStat(s.AllocsOp, allocFactor)
		s.BOp = scaleStat(s.BOp, allocFactor)
		out.Summaries[i] = s
	}
	return &out
}

func scaleStat(s Stat, f float64) Stat {
	s.Mean *= f
	s.Std *= f
	s.Min *= f
	s.Max *= f
	return s
}

// Failures returns the gated regressions — the deltas that should fail a
// CI build.
func Failures(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Gated && d.Status == StatusRegress {
			out = append(out, d)
		}
	}
	return out
}

// WriteReport renders the comparison as a fixed-width table plus notes.
func WriteReport(w io.Writer, deltas []Delta) {
	fmt.Fprintf(w, "%-58s %10s %10s %8s %8s  %s\n",
		"benchmark", "ns/op", "allocs", "Δns", "Δallocs", "status")
	for _, d := range deltas {
		mark := ""
		if d.Gated {
			mark = " [gate]"
		}
		switch d.Status {
		case StatusMissing, StatusSkipped, StatusNew:
			fmt.Fprintf(w, "%-58s %10s %10s %8s %8s  %s%s\n", d.Name, "—", "—", "—", "—", d.Status, mark)
		default:
			allocs, dAllocs := "—", "—"
			if d.HasAlloc {
				allocs = fmt.Sprintf("%.0f", d.AllocCur)
				dAllocs = fmt.Sprintf("%+.1f%%", 100*(d.AllocRatio-1))
			}
			fmt.Fprintf(w, "%-58s %10.0f %10s %7.1f%% %8s  %s%s\n",
				d.Name, d.NsCur, allocs, 100*(d.NsRatio-1), dAllocs, d.Status, mark)
		}
		for _, n := range d.Notes {
			fmt.Fprintf(w, "    %s\n", n)
		}
	}
}
