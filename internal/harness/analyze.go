package harness

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
)

// Summarize groups per-repeat results by benchmark name into mean/std/CV
// summaries, sorted by name. Benchmarks absent from some repeats (a
// flaking skip) are summarized over the repeats that produced them —
// Repeats records how many did, so the comparator can refuse to gate on
// thin evidence.
func Summarize(reps []*Parsed) []Summary {
	byName := make(map[string][]Result)
	for _, rep := range reps {
		if rep == nil {
			continue
		}
		for _, r := range rep.Results {
			byName[r.Name] = append(byName[r.Name], r)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]Summary, 0, len(names))
	for _, n := range names {
		rs := byName[n]
		s := Summary{Name: n, Repeats: len(rs), HasMem: true}
		ns := make([]float64, len(rs))
		var bs, as []float64
		for i, r := range rs {
			ns[i] = r.NsOp
			b, okB := deref(r.BOp)
			a, okA := deref(r.AllocsOp)
			if !okB || !okA {
				s.HasMem = false
				continue
			}
			bs, as = append(bs, b), append(as, a)
		}
		s.NsOp = stat(ns)
		if s.HasMem && len(bs) > 0 {
			s.BOp, s.AllocsOp = stat(bs), stat(as)
		} else {
			s.HasMem = false
		}
		out = append(out, s)
	}
	return out
}

// stat computes the summary statistics of one metric's samples. Std is
// the sample standard deviation (n-1), zero for a single repeat.
func stat(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	s := Stat{Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	if s.Mean != 0 {
		s.CV = s.Std / s.Mean
	}
	return s
}

// Baseline is the machine-readable analysis a run folder tracks
// (analysis/baseline.json): everything the comparator needs to act as an
// oracle — per-benchmark statistics with their noise figures, plus the
// measurement protocol and the box's parallelism, so a baseline recorded
// on a 1-CPU container can be recognized for what it is.
type Baseline struct {
	Label      string    `json:"label,omitempty"`
	CreatedAt  string    `json:"created_at,omitempty"`
	Benchtime  string    `json:"benchtime,omitempty"`
	Repeats    int       `json:"repeats"`
	GoMaxProcs int       `json:"gomaxprocs,omitempty"`
	Summaries  []Summary `json:"benchmarks"`
	Skipped    []Skip    `json:"skipped,omitempty"`
}

// WriteBaseline writes the baseline document.
func WriteBaseline(w io.Writer, b *Baseline) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// LoadBaseline reads either format a tracked baseline comes in:
//
//   - a harness baseline.json (object form, full statistics), or
//   - a flat BENCH_n.json (array form, the historical scripts/bench.sh
//     output): each entry becomes a single-repeat summary with zero
//     spread, which is exactly what those recordings were.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: reading baseline: %w", err)
	}
	return ParseBaseline(data, path)
}

// ParseBaseline decodes baseline bytes (see LoadBaseline); name is used
// in errors only.
func ParseBaseline(data []byte, name string) (*Baseline, error) {
	trimmed := firstNonSpace(data)
	switch trimmed {
	case '[':
		var flat []Result
		if err := json.Unmarshal(data, &flat); err != nil {
			return nil, fmt.Errorf("harness: parsing flat baseline %s: %w", name, err)
		}
		b := &Baseline{Repeats: 1, Label: name}
		for _, r := range flat {
			s := Summary{Name: r.Name, Repeats: 1, NsOp: point(r.NsOp)}
			if bv, ok := deref(r.BOp); ok {
				if av, ok2 := deref(r.AllocsOp); ok2 {
					s.BOp, s.AllocsOp, s.HasMem = point(bv), point(av), true
				}
			}
			b.Summaries = append(b.Summaries, s)
		}
		return b, nil
	case '{':
		var b Baseline
		if err := json.Unmarshal(data, &b); err != nil {
			return nil, fmt.Errorf("harness: parsing baseline %s: %w", name, err)
		}
		return &b, nil
	}
	return nil, fmt.Errorf("harness: baseline %s is neither a JSON array nor an object", name)
}

func firstNonSpace(data []byte) byte {
	for _, c := range data {
		switch c {
		case ' ', '\t', '\n', '\r':
			continue
		}
		return c
	}
	return 0
}

func point(v float64) Stat { return Stat{Mean: v, Min: v, Max: v} }

// ByName indexes the baseline's summaries.
func (b *Baseline) ByName() map[string]Summary {
	out := make(map[string]Summary, len(b.Summaries))
	for _, s := range b.Summaries {
		out[s.Name] = s
	}
	return out
}

// SkippedSet returns the names recorded as skipped.
func (b *Baseline) SkippedSet() map[string]bool {
	out := make(map[string]bool, len(b.Skipped))
	for _, s := range b.Skipped {
		out[s.Name] = true
	}
	return out
}

// WriteSummaryCSV writes the grouped table: one row per benchmark with
// mean/std/CV for every metric.
func WriteSummaryCSV(w io.Writer, sums []Summary) error {
	cw := csv.NewWriter(w)
	header := []string{
		"benchmark", "repeats",
		"ns_op_mean", "ns_op_std", "ns_op_cv", "ns_op_min", "ns_op_max",
		"b_op_mean", "allocs_op_mean",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range sums {
		row := []string{
			s.Name, strconv.Itoa(s.Repeats),
			f(s.NsOp.Mean), f(s.NsOp.Std), f(s.NsOp.CV), f(s.NsOp.Min), f(s.NsOp.Max),
			f(s.BOp.Mean), f(s.AllocsOp.Mean),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteSummaryMarkdown writes the human table (analysis/summary.md): the
// grouped statistics plus any skips, flagging benchmarks whose CV exceeds
// the noisy threshold so a shaky baseline is visibly shaky.
func WriteSummaryMarkdown(w io.Writer, b *Baseline) error {
	fmt.Fprintf(w, "# Benchmark summary\n\n")
	if b.Label != "" {
		fmt.Fprintf(w, "Run: `%s`", b.Label)
		if b.CreatedAt != "" {
			fmt.Fprintf(w, " (%s)", b.CreatedAt)
		}
		fmt.Fprintf(w, "\n\n")
	}
	fmt.Fprintf(w, "Protocol: %d repeats, benchtime %s, GOMAXPROCS %d.\n\n",
		b.Repeats, orDash(b.Benchtime), b.GoMaxProcs)
	fmt.Fprintln(w, "| benchmark | repeats | ns/op (mean) | ±std | CV | B/op | allocs/op |")
	fmt.Fprintln(w, "|---|---:|---:|---:|---:|---:|---:|")
	for _, s := range b.Summaries {
		cv := fmt.Sprintf("%.1f%%", 100*s.NsOp.CV)
		if s.NsOp.CV > NoisyCV {
			cv += " ⚠"
		}
		mem, allocs := "—", "—"
		if s.HasMem {
			mem = fmt.Sprintf("%.0f", s.BOp.Mean)
			allocs = fmt.Sprintf("%.0f", s.AllocsOp.Mean)
		}
		fmt.Fprintf(w, "| %s | %d | %.0f | %.0f | %s | %s | %s |\n",
			s.Name, s.Repeats, s.NsOp.Mean, s.NsOp.Std, cv, mem, allocs)
	}
	if len(b.Skipped) > 0 {
		fmt.Fprintf(w, "\n## Skipped\n\n")
		for _, sk := range b.Skipped {
			fmt.Fprintf(w, "- `%s`: %s\n", sk.Name, orDash(sk.Reason))
		}
	}
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

// NoisyCV is the coefficient of variation beyond which a benchmark's
// wall-clock statistics are flagged as noisy in summaries — and beyond
// which a regression gate verdict on it deserves suspicion.
const NoisyCV = 0.10
