package harness

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseBench parses `go test -bench` output into package-qualified
// results. A benchmark line looks like:
//
//	BenchmarkPartition-8  100  11905132 ns/op  4477032 B/op  85333 allocs/op
//
// preceded somewhere above by a `pkg: secreta/internal/privacy` header
// line that qualifies the names. Skipped benchmarks ("--- SKIP:
// BenchmarkX" followed by an indented reason line) are captured so a
// comparison can tell "skipped on this box" from "vanished". A duplicate
// qualified name is an error — a silent duplicate would make baseline
// joins pick an arbitrary record.
func ParseBench(r io.Reader) (*Parsed, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	out := &Parsed{}
	seen := make(map[string]bool)
	pkg := ""
	lastLog := "" // most recent indented b.Skipf/b.Logf line
	var pendingSkip *Skip
	for sc.Scan() {
		line := sc.Text()
		// Under -v the reason precedes the SKIP header as an indented
		// "file.go:NN: reason" log line; in other layouts it follows the
		// header. Accept both: remember the last log line seen, and let a
		// trailing one overwrite an empty reason.
		if pendingSkip != nil {
			if trimmed := strings.TrimSpace(line); pendingSkip.Reason == "" &&
				strings.HasPrefix(line, " ") && trimmed != "" {
				pendingSkip.Reason = stripLogSite(trimmed)
			}
			out.Skips = append(out.Skips, *pendingSkip)
			pendingSkip = nil
		}
		if trimmed := strings.TrimSpace(line); strings.HasPrefix(line, " ") && trimmed != "" {
			lastLog = stripLogSite(trimmed)
		}
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
		case strings.HasPrefix(line, "--- SKIP: Benchmark"):
			name := strings.TrimSpace(strings.TrimPrefix(line, "--- SKIP:"))
			if i := strings.IndexByte(name, ' '); i >= 0 {
				name = name[:i]
			}
			pendingSkip = &Skip{Name: qualify(pkg, name), Reason: lastLog}
			lastLog = ""
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseBenchLine(pkg, line)
			if err != nil {
				return nil, err
			}
			if !ok {
				continue
			}
			if seen[res.Name] {
				return nil, fmt.Errorf("harness: duplicate benchmark name %s — output would be ambiguous", res.Name)
			}
			seen[res.Name] = true
			out.Results = append(out.Results, res)
		}
	}
	if pendingSkip != nil {
		out.Skips = append(out.Skips, *pendingSkip)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("harness: reading bench output: %w", err)
	}
	return out, nil
}

// stripLogSite drops the "file_test.go:123: " prefix testing prepends to
// b.Skipf output, leaving just the reason text.
func stripLogSite(s string) string {
	if i := strings.Index(s, ".go:"); i >= 0 {
		rest := s[i+len(".go:"):]
		if j := strings.Index(rest, ": "); j >= 0 {
			if _, err := strconv.Atoi(rest[:j]); err == nil {
				return rest[j+2:]
			}
		}
	}
	return s
}

func qualify(pkg, name string) string {
	if pkg == "" {
		return name
	}
	return pkg + "." + name
}

// parseBenchLine parses one result line. ok is false for lines that start
// with "Benchmark" but are not result lines (e.g. a bare name printed
// before the measurement on its own line at wide terminal widths).
func parseBenchLine(pkg, line string) (Result, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false, nil
	}
	name := fields[0]
	// Trim the -GOMAXPROCS suffix go test appends to the leaf name.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	res := Result{Name: qualify(pkg, name)}
	gotNs := false
	// Fields after the iteration count come in value-unit pairs; extra
	// b.ReportMetric pairs (ARE@maxdelta, ...) are ignored.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("harness: malformed bench line %q: %v", line, err)
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsOp, gotNs = v, true
		case "B/op":
			res.BOp = fptr(v)
		case "allocs/op":
			res.AllocsOp = fptr(v)
		}
	}
	if !gotNs {
		return Result{}, false, nil
	}
	return res, true, nil
}

// WriteFlatJSON writes results in the flat BENCH_n.json format the old
// awk parser emitted (and that the jq comparison recipes in
// scripts/bench.sh consume): a JSON array of {name, ns_op, b_op,
// allocs_op} records, two-space indented, null for missing memory stats.
func WriteFlatJSON(w io.Writer, results []Result) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("[\n")
	for i, r := range results {
		if i > 0 {
			bw.WriteString(",\n")
		}
		fmt.Fprintf(bw, "  {\"name\": %q, \"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}",
			r.Name, formatNum(r.NsOp), formatOpt(r.BOp), formatOpt(r.AllocsOp))
	}
	bw.WriteString("\n]\n")
	return bw.Flush()
}

// formatNum renders a measurement the way `go test` printed it: integers
// without a fractional part, sub-nanosecond timings with their decimals.
func formatNum(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatOpt(p *float64) string {
	if p == nil {
		return "null"
	}
	return formatNum(*p)
}
