package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"secreta/internal/plot"
)

// plotSamples collects the per-repeat wall-clock measurements a run
// gathers, keyed experiment → benchmark → ns/op in repeat order. It is
// the data behind analysis/summary_<experiment>.svg.
type plotSamples map[string]map[string][]float64

func (p plotSamples) add(expID, bench string, nsOp float64) {
	if p[expID] == nil {
		p[expID] = make(map[string][]float64)
	}
	p[expID][bench] = append(p[expID][bench], nsOp)
}

// experimentChart renders one experiment's repeat-by-repeat ns/op curves,
// one series per benchmark, each wrapped in its mean±std band so a noisy
// benchmark is visibly noisy (the same spread the summary table reports
// as CV).
func experimentChart(expID string, benches map[string][]float64, byName map[string]Summary) *plot.Chart {
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	series := make([]plot.Series, 0, len(names))
	for _, n := range names {
		ns := benches[n]
		xs := make([]float64, len(ns))
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		s := plot.Series{Label: shortBench(n), Xs: xs, Ys: ns}
		if sum, ok := byName[n]; ok && sum.NsOp.Std > 0 {
			lo := make([]float64, len(ns))
			hi := make([]float64, len(ns))
			for i := range ns {
				lo[i] = sum.NsOp.Mean - sum.NsOp.Std
				hi[i] = sum.NsOp.Mean + sum.NsOp.Std
			}
			s.Lo, s.Hi = lo, hi
		}
		series = append(series, s)
	}
	title := fmt.Sprintf("%s: ns/op across repeats (band: mean±std)", expID)
	return plot.NewLine(title, "repeat", "ns/op", series...)
}

// shortBench trims the package qualifier from a parsed benchmark name
// ("secreta/internal/privacy.BenchmarkPartition" → "BenchmarkPartition")
// so chart legends stay readable.
func shortBench(name string) string {
	if i := strings.LastIndexByte(name, '.'); i >= 0 && i+1 < len(name) {
		return name[i+1:]
	}
	return name
}

// plotFileName maps an experiment ID to its SVG filename, replacing any
// path-hostile characters.
func plotFileName(expID string) string {
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, expID)
	return "summary_" + safe + ".svg"
}

// writePlots renders one SVG per experiment into dir/analysis and returns
// the (expID, filename) pairs in experiment order for the summary.md
// plot index.
func writePlots(dir string, samples plotSamples, base *Baseline) ([][2]string, error) {
	ids := make([]string, 0, len(samples))
	for id := range samples {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	byName := base.ByName()
	out := make([][2]string, 0, len(ids))
	for _, id := range ids {
		name := plotFileName(id)
		svg := experimentChart(id, samples[id], byName).SVG(720, 360)
		if err := os.WriteFile(filepath.Join(dir, "analysis", name), []byte(svg), 0o644); err != nil {
			return nil, fmt.Errorf("harness: writing %s: %w", name, err)
		}
		out = append(out, [2]string{id, name})
	}
	return out, nil
}
