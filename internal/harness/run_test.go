package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// stubGrid is a two-experiment grid whose Exec seam returns canned
// `go test -bench` output with slight per-repeat wobble, so the folder
// layout, CSV rows, grouped statistics and skip bookkeeping are all
// exercised without invoking the real toolchain.
func stubGrid() *Grid {
	return &Grid{
		Benchtime: "1x",
		Repeats:   3,
		Warmup:    1,
		Experiments: []Experiment{
			{ID: "micro", Packages: []string{"./internal/privacy"}, Pattern: "BenchmarkPartition$", Gate: true},
			{ID: "e2e", Packages: []string{"."}, Pattern: "BenchmarkE8Workers", NsTolerance: 0.5},
		},
	}
}

func stubExec(t *testing.T) (exec func(Experiment, string) ([]byte, error), calls *[]string) {
	t.Helper()
	var log []string
	rep := map[string]int{}
	exec = func(exp Experiment, benchtime string) ([]byte, error) {
		rep[exp.ID]++
		log = append(log, fmt.Sprintf("%s@%s", exp.ID, benchtime))
		switch exp.ID {
		case "micro":
			// ns wobbles ±2% across invocations; allocs constant.
			ns := 1_000_000 + 20_000*(rep[exp.ID]%3)
			return []byte(fmt.Sprintf("pkg: secreta/internal/privacy\nBenchmarkPartition-8 100 %d ns/op 288360 B/op 1424 allocs/op\nPASS\n", ns)), nil
		case "e2e":
			return []byte("pkg: secreta\n" +
				"BenchmarkE8Workers/workers=1-8 10 37218171 ns/op 9562656 B/op 69132 allocs/op\n" +
				"--- SKIP: BenchmarkE8Workers/workers=8\n" +
				"    bench_test.go:1: GOMAXPROCS=1 < workers=8\nPASS\n"), nil
		}
		return nil, fmt.Errorf("unknown experiment %s", exp.ID)
	}
	return exec, &log
}

func TestRunnerRunFolder(t *testing.T) {
	dir := t.TempDir()
	exec, calls := stubExec(t)
	r := &Runner{Grid: stubGrid(), OutDir: dir, Label: "test-run", Log: io.Discard, Exec: exec}
	out, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 2 experiments × (1 warmup + 3 repeats) invocations.
	if len(*calls) != 8 {
		t.Fatalf("exec calls = %d (%v), want 8", len(*calls), *calls)
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("run parent dir: %v entries, err %v", len(entries), err)
	}
	for _, want := range []string{
		"csv/results.csv",
		"logs/micro_rep1.log", "logs/micro_rep3.log", "logs/e2e_rep2.log",
		"analysis/baseline.json", "analysis/summary.csv", "analysis/summary.md",
		"analysis/summary_micro.svg", "analysis/summary_e2e.svg",
	} {
		if _, err := os.Stat(filepath.Join(out.Dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}

	csvData, err := os.ReadFile(filepath.Join(out.Dir, "csv", "results.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvData)), "\n")
	// Header + 3 repeats × 2 measured benchmarks.
	if len(lines) != 7 {
		t.Fatalf("results.csv has %d lines:\n%s", len(lines), csvData)
	}
	if lines[0] != "experiment,repeat,benchmark,ns_op,b_op,allocs_op" {
		t.Fatalf("csv header = %q", lines[0])
	}

	raw, err := os.ReadFile(filepath.Join(out.Dir, "analysis", "baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	var b Baseline
	if err := json.Unmarshal(raw, &b); err != nil {
		t.Fatal(err)
	}
	if b.Label != "test-run" || b.Repeats != 3 || b.GoMaxProcs < 1 {
		t.Fatalf("baseline header: %+v", b)
	}
	if len(b.Summaries) != 2 {
		t.Fatalf("summaries = %+v, want 2", b.Summaries)
	}
	part := b.Summaries[1]
	if !strings.HasSuffix(part.Name, "BenchmarkPartition") {
		part = b.Summaries[0]
	}
	if part.Repeats != 3 || part.NsOp.Std == 0 || part.NsOp.CV == 0 {
		t.Fatalf("partition summary lacks spread: %+v", part)
	}
	if part.AllocsOp.Mean != 1424 || part.AllocsOp.Std != 0 {
		t.Fatalf("partition allocs: %+v", part.AllocsOp)
	}
	if len(b.Skipped) != 1 || b.Skipped[0].Name != "secreta.BenchmarkE8Workers/workers=8" {
		t.Fatalf("skipped = %+v", b.Skipped)
	}

	// The summary markdown carries the table and the skip.
	md, err := os.ReadFile(filepath.Join(out.Dir, "analysis", "summary.md"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"BenchmarkPartition", "## Skipped", "workers=8",
		"## Plots", "summary_micro.svg", "summary_e2e.svg"} {
		if !strings.Contains(string(md), want) {
			t.Errorf("summary.md lacks %q:\n%s", want, md)
		}
	}

	// The per-experiment plot is a real SVG with a band for the wobbling
	// benchmark: micro's ns/op has nonzero std, so its series carries the
	// translucent mean±std polygon.
	svg, err := os.ReadFile(filepath.Join(out.Dir, "analysis", "summary_micro.svg"))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<svg", "BenchmarkPartition", "polygon", "ns/op across repeats"} {
		if !strings.Contains(string(svg), want) {
			t.Errorf("summary_micro.svg lacks %q", want)
		}
	}

	// Per-experiment name mapping feeds the gate spec.
	gate, overrides := GateSpec(r.Grid, out.PerExperiment)
	if !gate["secreta/internal/privacy.BenchmarkPartition"] {
		t.Errorf("gate set = %v, want partition gated", gate)
	}
	if gate["secreta.BenchmarkE8Workers/workers=1"] {
		t.Errorf("ungated experiment leaked into gate set: %v", gate)
	}
	if tol := overrides["secreta.BenchmarkE8Workers/workers=1"]; tol.Ns != 0.5 {
		t.Errorf("overrides = %v, want e2e ns tolerance 0.5", overrides)
	}
}

func TestRunnerMeasureGateOnly(t *testing.T) {
	exec, calls := stubExec(t)
	r := &Runner{Grid: stubGrid(), GateOnly: true, Repeats: 2, Warmup: 1, Log: io.Discard, Exec: exec}
	out, err := r.Measure()
	if err != nil {
		t.Fatal(err)
	}
	if out.Dir != "" {
		t.Fatalf("Measure wrote a folder: %q", out.Dir)
	}
	// Only the gated experiment runs: 1 warmup + 2 repeats.
	if len(*calls) != 3 {
		t.Fatalf("exec calls = %v, want 3 micro runs", *calls)
	}
	if len(out.Baseline.Summaries) != 1 || out.Baseline.Repeats != 2 {
		t.Fatalf("baseline = %+v", out.Baseline)
	}
}

func TestRunnerEmptyPatternFails(t *testing.T) {
	g := &Grid{Repeats: 1, Experiments: []Experiment{
		{ID: "none", Packages: []string{"."}, Pattern: "BenchmarkNothing$"},
	}}
	r := &Runner{Grid: g, Log: io.Discard, Exec: func(Experiment, string) ([]byte, error) {
		return []byte("pkg: p\nPASS\nok p 0.01s\n"), nil
	}}
	if _, err := r.Measure(); err == nil || !strings.Contains(err.Error(), "no benchmark results") {
		t.Fatalf("err = %v, want 'no benchmark results'", err)
	}
}

func TestGridValidate(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Grid)
		want string
	}{
		{"ok", func(g *Grid) {}, ""},
		{"zero repeats", func(g *Grid) { g.Repeats = 0 }, "repeats"},
		{"bad benchtime", func(g *Grid) { g.Benchtime = "fast" }, "benchtime"},
		{"iteration benchtime ok", func(g *Grid) { g.Benchtime = "100x" }, ""},
		{"dup id", func(g *Grid) { g.Experiments = append(g.Experiments, g.Experiments[0]) }, "duplicate"},
		{"no pattern", func(g *Grid) { g.Experiments[0].Pattern = "" }, "no pattern"},
		{"negative tolerance", func(g *Grid) { g.Experiments[0].NsTolerance = -1 }, "negative tolerance"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := stubGrid()
			tc.mut(g)
			err := g.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}
