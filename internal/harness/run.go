package harness

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Runner executes an experiment grid and materializes run folders. The
// zero value is not usable; set Grid at least. Exec is a seam for tests:
// it runs one `go test -bench` invocation and returns its combined
// output (nil uses the real go toolchain).
type Runner struct {
	Grid *Grid
	// RootDir is the repository root go test runs from ("" = cwd).
	RootDir string
	// OutDir is the parent of timestamped run folders (default
	// "paper_runs", resolved under RootDir when relative).
	OutDir string
	// Label annotates the emitted baseline ("pr7-candidate").
	Label string
	// Repeats/Warmup/Benchtime override the grid when non-zero/non-empty.
	Repeats   int
	Warmup    int
	Benchtime string
	// GateOnly restricts execution to gated experiments — the fast
	// hot-path subset the CI regression gate measures.
	GateOnly bool
	// Log receives progress lines (default os.Stderr).
	Log  io.Writer
	Exec func(exp Experiment, benchtime string) ([]byte, error)
}

// RunOutput is what a grid execution produced.
type RunOutput struct {
	// Dir is the run folder ("" for folderless measurements).
	Dir      string
	Baseline *Baseline
	// PerExperiment maps experiment ID to the benchmark names it
	// measured, so per-experiment tolerances can be applied per
	// benchmark.
	PerExperiment map[string][]string
}

func (r *Runner) log(format string, args ...any) {
	w := r.Log
	if w == nil {
		w = os.Stderr
	}
	fmt.Fprintf(w, format+"\n", args...)
}

func (r *Runner) exec(exp Experiment, benchtime string) ([]byte, error) {
	if r.Exec != nil {
		return r.Exec(exp, benchtime)
	}
	// -v so skipped sub-benchmarks surface as "--- SKIP" lines; without
	// it a benchmark that skips itself (E8 on a small box) is
	// indistinguishable from one that vanished.
	args := []string{"test", "-run", "^$", "-bench", exp.Pattern, "-benchmem", "-benchtime", benchtime, "-v"}
	args = append(args, exp.Packages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = r.RootDir
	return cmd.CombinedOutput()
}

func (r *Runner) experiments() []Experiment {
	if r.GateOnly {
		return r.Grid.Gated()
	}
	return r.Grid.Experiments
}

func (r *Runner) protocol() (repeats, warmup int, benchtime string) {
	repeats, warmup, benchtime = r.Grid.Repeats, r.Grid.Warmup, r.Grid.Benchtime
	if r.Repeats > 0 {
		repeats = r.Repeats
	}
	if r.Warmup > 0 {
		warmup = r.Warmup
	}
	if r.Benchtime != "" {
		benchtime = r.Benchtime
	}
	if benchtime == "" {
		benchtime = "1s"
	}
	return
}

// Measure runs the grid without writing a run folder — the comparator's
// path: fresh numbers in, verdict out, nothing on disk.
func (r *Runner) Measure() (*RunOutput, error) {
	return r.run("")
}

// Run executes the grid into a fresh timestamped run folder:
//
//	<OutDir>/<ts>/csv/results.csv        one row per (repeat, benchmark)
//	<OutDir>/<ts>/logs/<exp>_rep<k>.log  raw go test output
//	<OutDir>/<ts>/analysis/baseline.json machine-readable statistics
//	<OutDir>/<ts>/analysis/summary.csv   grouped mean/std/CV table
//	<OutDir>/<ts>/analysis/summary.md    the same, for humans
//	<OutDir>/<ts>/analysis/summary_<exp>.svg  per-experiment repeat plot
func (r *Runner) Run() (*RunOutput, error) {
	out := r.OutDir
	if out == "" {
		out = "paper_runs"
	}
	if !filepath.IsAbs(out) {
		out = filepath.Join(r.RootDir, out)
	}
	dir := filepath.Join(out, time.Now().Format("2006-01-02_150405"))
	for _, sub := range []string{"csv", "logs", "analysis"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("harness: creating run folder: %w", err)
		}
	}
	return r.run(dir)
}

// run is the shared execution loop. Repeats are interleaved across
// experiments (rep 1 of everything, then rep 2, ...) so slow drift on the
// box — thermal state, background load — decorrelates from any single
// benchmark instead of biasing all of its repeats the same way.
func (r *Runner) run(dir string) (*RunOutput, error) {
	exps := r.experiments()
	if len(exps) == 0 {
		return nil, fmt.Errorf("harness: no experiments to run (GateOnly with an ungated grid?)")
	}
	repeats, warmup, benchtime := r.protocol()
	bt := func(e Experiment) string {
		if e.Benchtime != "" {
			return e.Benchtime
		}
		return benchtime
	}

	for w := 1; w <= warmup; w++ {
		for _, exp := range exps {
			r.log("harness: warmup %d/%d: %s", w, warmup, exp.ID)
			out, err := r.exec(exp, bt(exp))
			if err != nil {
				return nil, execErr(exp, out, err)
			}
		}
	}

	perRepeat := make([]*Parsed, repeats)
	perExp := make(map[string][]string)
	expSeen := make(map[string]map[string]bool)
	samples := make(plotSamples)
	var csvRows [][]string
	for rep := 1; rep <= repeats; rep++ {
		merged := &Parsed{}
		seen := make(map[string]bool)
		for _, exp := range exps {
			r.log("harness: repeat %d/%d: %s", rep, repeats, exp.ID)
			raw, err := r.exec(exp, bt(exp))
			if dir != "" {
				name := filepath.Join(dir, "logs", fmt.Sprintf("%s_rep%d.log", exp.ID, rep))
				if werr := os.WriteFile(name, raw, 0o644); werr != nil {
					return nil, fmt.Errorf("harness: writing log: %w", werr)
				}
			}
			if err != nil {
				return nil, execErr(exp, raw, err)
			}
			parsed, err := ParseBench(bytes.NewReader(raw))
			if err != nil {
				return nil, fmt.Errorf("harness: experiment %s: %w", exp.ID, err)
			}
			if len(parsed.Results) == 0 && len(parsed.Skips) == 0 {
				return nil, fmt.Errorf("harness: experiment %s produced no benchmark results (pattern %q matched nothing?)", exp.ID, exp.Pattern)
			}
			for _, res := range parsed.Results {
				if seen[res.Name] {
					return nil, fmt.Errorf("harness: benchmark %s measured by more than one experiment in the grid", res.Name)
				}
				seen[res.Name] = true
				if expSeen[exp.ID] == nil {
					expSeen[exp.ID] = make(map[string]bool)
				}
				if !expSeen[exp.ID][res.Name] {
					expSeen[exp.ID][res.Name] = true
					perExp[exp.ID] = append(perExp[exp.ID], res.Name)
				}
				samples.add(exp.ID, res.Name, res.NsOp)
				b, _ := deref(res.BOp)
				a, _ := deref(res.AllocsOp)
				csvRows = append(csvRows, []string{
					exp.ID, strconv.Itoa(rep), res.Name,
					f(res.NsOp), f(b), f(a),
				})
			}
			merged.Results = append(merged.Results, parsed.Results...)
			merged.Skips = append(merged.Skips, parsed.Skips...)
		}
		perRepeat[rep-1] = merged
	}

	sums := Summarize(perRepeat)
	base := &Baseline{
		Label:      r.Label,
		CreatedAt:  time.Now().UTC().Format(time.RFC3339),
		Benchtime:  benchtime,
		Repeats:    repeats,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Summaries:  sums,
		Skipped:    persistentSkips(perRepeat, sums),
	}
	if dir != "" {
		if err := writeRunFolder(dir, csvRows, samples, base); err != nil {
			return nil, err
		}
	}
	for id := range perExp {
		sort.Strings(perExp[id])
	}
	return &RunOutput{Dir: dir, Baseline: base, PerExperiment: perExp}, nil
}

// persistentSkips returns skips (deduped by name) for benchmarks that
// produced no measurement in any repeat — a bench that skipped once but
// measured elsewhere is summarized normally.
func persistentSkips(reps []*Parsed, sums []Summary) []Skip {
	measured := make(map[string]bool, len(sums))
	for _, s := range sums {
		measured[s.Name] = true
	}
	seen := make(map[string]bool)
	var out []Skip
	for _, rep := range reps {
		for _, sk := range rep.Skips {
			if measured[sk.Name] || seen[sk.Name] {
				continue
			}
			seen[sk.Name] = true
			out = append(out, sk)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func writeRunFolder(dir string, csvRows [][]string, samples plotSamples, base *Baseline) error {
	var buf bytes.Buffer
	buf.WriteString("experiment,repeat,benchmark,ns_op,b_op,allocs_op\n")
	for _, row := range csvRows {
		for i, cell := range row {
			if i > 0 {
				buf.WriteByte(',')
			}
			buf.WriteString(cell)
		}
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "csv", "results.csv"), buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing results.csv: %w", err)
	}

	var bj bytes.Buffer
	if err := WriteBaseline(&bj, base); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "analysis", "baseline.json"), bj.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing baseline.json: %w", err)
	}

	var sc bytes.Buffer
	if err := WriteSummaryCSV(&sc, base.Summaries); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "analysis", "summary.csv"), sc.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing summary.csv: %w", err)
	}

	plots, err := writePlots(dir, samples, base)
	if err != nil {
		return err
	}

	var md bytes.Buffer
	if err := WriteSummaryMarkdown(&md, base); err != nil {
		return err
	}
	if len(plots) > 0 {
		md.WriteString("\n## Plots\n\n")
		md.WriteString("Per-experiment ns/op across repeats with mean±std bands:\n\n")
		for _, p := range plots {
			fmt.Fprintf(&md, "- `%s`: [%s](%s)\n", p[0], p[1], p[1])
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "analysis", "summary.md"), md.Bytes(), 0o644); err != nil {
		return fmt.Errorf("harness: writing summary.md: %w", err)
	}
	return nil
}

func execErr(exp Experiment, out []byte, err error) error {
	tail := out
	if len(tail) > 4096 {
		tail = tail[len(tail)-4096:]
	}
	return fmt.Errorf("harness: experiment %s: go test failed: %v\n%s", exp.ID, err, tail)
}

// GateSpec builds the comparator inputs for a grid measurement: the set
// of gated benchmark names and their per-benchmark tolerance overrides.
func GateSpec(grid *Grid, perExp map[string][]string) (gate map[string]bool, overrides map[string]Tolerance) {
	gate = make(map[string]bool)
	overrides = make(map[string]Tolerance)
	for _, exp := range grid.Experiments {
		for _, name := range perExp[exp.ID] {
			if exp.Gate {
				gate[name] = true
			}
			if exp.NsTolerance > 0 || exp.AllocTolerance > 0 {
				overrides[name] = Tolerance{Ns: exp.NsTolerance, Alloc: exp.AllocTolerance}
			}
		}
	}
	return gate, overrides
}
