package harness

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: secreta/internal/privacy
cpu: AMD EPYC 7B13
BenchmarkPartition-8   	    1726	    734543 ns/op	  288360 B/op	    1424 allocs/op
BenchmarkKMViolationsM2-8   	    2000	    592178 ns/op	  218072 B/op	    2419 allocs/op
PASS
ok  	secreta/internal/privacy	4.1s
pkg: secreta/internal/transaction
BenchmarkApriori-8   	     244	   4885893 ns/op	 1247692 B/op	   11443 allocs/op
PASS
ok  	secreta/internal/transaction	3.0s
pkg: secreta
BenchmarkE2AREvsDelta-8   	       7	 170577177 ns/op	         0.1931 ARE@maxdelta	160890504 B/op	  507707 allocs/op
BenchmarkE8Workers/workers=1-8         	      31	  37218171 ns/op	 9562656 B/op	   69132 allocs/op
--- SKIP: BenchmarkE8Workers/workers=8
    bench_test.go:199: GOMAXPROCS=1 < workers=8: parallel scaling would not be exercised
PASS
ok  	secreta	9.2s
`

func TestParseBench(t *testing.T) {
	p, err := ParseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct {
		ns     float64
		allocs float64
	}{
		"secreta/internal/privacy.BenchmarkPartition":      {734543, 1424},
		"secreta/internal/privacy.BenchmarkKMViolationsM2": {592178, 2419},
		"secreta/internal/transaction.BenchmarkApriori":    {4885893, 11443},
		"secreta.BenchmarkE2AREvsDelta":                    {170577177, 507707},
		"secreta.BenchmarkE8Workers/workers=1":             {37218171, 69132},
	}
	if len(p.Results) != len(want) {
		t.Fatalf("parsed %d results, want %d: %+v", len(p.Results), len(want), p.Results)
	}
	for _, r := range p.Results {
		w, ok := want[r.Name]
		if !ok {
			t.Errorf("unexpected result %q", r.Name)
			continue
		}
		if r.NsOp != w.ns {
			t.Errorf("%s ns_op = %v, want %v", r.Name, r.NsOp, w.ns)
		}
		if a, ok := deref(r.AllocsOp); !ok || a != w.allocs {
			t.Errorf("%s allocs_op = %v, want %v", r.Name, r.AllocsOp, w.allocs)
		}
	}
	if len(p.Skips) != 1 {
		t.Fatalf("skips = %+v, want exactly one", p.Skips)
	}
	sk := p.Skips[0]
	if sk.Name != "secreta.BenchmarkE8Workers/workers=8" {
		t.Errorf("skip name = %q", sk.Name)
	}
	if !strings.Contains(sk.Reason, "GOMAXPROCS=1") {
		t.Errorf("skip reason = %q, want the GOMAXPROCS diagnostic", sk.Reason)
	}
}

func TestParseBenchTable(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		results int
		skips   int
		wantErr string
	}{
		{name: "empty", in: "", results: 0},
		{name: "no pkg header keeps bare name", in: "BenchmarkX-4 10 100 ns/op\n", results: 1},
		{name: "without benchmem", in: "pkg: p\nBenchmarkX-4 10 100 ns/op\n", results: 1},
		{name: "fractional ns", in: "pkg: p\nBenchmarkY-4 1000000000 0.5021 ns/op\n", results: 1},
		{
			name:    "duplicate names fail loudly",
			in:      "pkg: p\nBenchmarkX-4 10 100 ns/op\nBenchmarkX-4 10 100 ns/op\n",
			wantErr: "duplicate benchmark name p.BenchmarkX",
		},
		{
			name:    "same leaf name in two packages is fine",
			in:      "pkg: p1\nBenchmarkX-4 10 100 ns/op\npkg: p2\nBenchmarkX-4 10 100 ns/op\n",
			results: 2,
		},
		{name: "malformed value errors", in: "pkg: p\nBenchmarkX-4 10 abc ns/op\n", wantErr: "malformed bench line"},
		{name: "skip without reason", in: "pkg: p\n--- SKIP: BenchmarkZ/w=8\nPASS\n", skips: 1},
		{
			// go test -v prints the b.Skipf log line BEFORE the SKIP header.
			name: "verbose skip reason precedes header",
			in: "pkg: p\nBenchmarkZ/w=8\n    bench_test.go:200: GOMAXPROCS=1 < workers=8: nope\n" +
				"--- SKIP: BenchmarkZ/w=8\nPASS\n",
			skips: 1,
		},
		{name: "bare Benchmark line ignored", in: "pkg: p\nBenchmarkLongName\n", results: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := ParseBench(strings.NewReader(tc.in))
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want containing %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(p.Results) != tc.results {
				t.Errorf("results = %d, want %d (%+v)", len(p.Results), tc.results, p.Results)
			}
			if len(p.Skips) != tc.skips {
				t.Errorf("skips = %d, want %d (%+v)", len(p.Skips), tc.skips, p.Skips)
			}
		})
	}
}

// TestWriteFlatJSON pins the BENCH_n.json wire format the awk parser
// produced, so the jq recipes and tracked baselines keep working.
func TestWriteFlatJSON(t *testing.T) {
	results := []Result{
		{Name: "p.BenchmarkX", NsOp: 734543, BOp: fptr(288360), AllocsOp: fptr(1424)},
		{Name: "p.BenchmarkY", NsOp: 0.5021},
	}
	var buf bytes.Buffer
	if err := WriteFlatJSON(&buf, results); err != nil {
		t.Fatal(err)
	}
	want := `[
  {"name": "p.BenchmarkX", "ns_op": 734543, "b_op": 288360, "allocs_op": 1424},
  {"name": "p.BenchmarkY", "ns_op": 0.5021, "b_op": null, "allocs_op": null}
]
`
	if buf.String() != want {
		t.Fatalf("flat JSON:\n%s\nwant:\n%s", buf.String(), want)
	}
	// The flat form must round-trip through the baseline loader.
	b, err := ParseBaseline(buf.Bytes(), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Summaries) != 2 || b.Summaries[0].NsOp.Mean != 734543 || !b.Summaries[0].HasMem || b.Summaries[1].HasMem {
		t.Fatalf("round-tripped baseline: %+v", b.Summaries)
	}
}

// TestParseVerboseSkipReason pins the -v layout: the b.Skipf log line
// precedes the SKIP header, and the "file.go:NN: " log site is stripped.
func TestParseVerboseSkipReason(t *testing.T) {
	in := "pkg: secreta\nBenchmarkE8Workers/workers=1-8 \t 31 \t 37218171 ns/op\n" +
		"BenchmarkE8Workers/workers=8\n" +
		"    bench_test.go:200: GOMAXPROCS=1 < workers=8: scaling not measurable on this box\n" +
		"--- SKIP: BenchmarkE8Workers/workers=8\nPASS\n"
	p, err := ParseBench(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Skips) != 1 {
		t.Fatalf("skips = %d, want 1", len(p.Skips))
	}
	want := "GOMAXPROCS=1 < workers=8: scaling not measurable on this box"
	if p.Skips[0].Reason != want {
		t.Errorf("reason = %q, want %q (log site stripped)", p.Skips[0].Reason, want)
	}
	if p.Skips[0].Name != "secreta.BenchmarkE8Workers/workers=8" {
		t.Errorf("name = %q", p.Skips[0].Name)
	}
}
