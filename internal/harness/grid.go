package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Experiment is one row of the grid: a benchmark pattern over a set of
// packages, plus its regression-gate posture.
type Experiment struct {
	// ID names the experiment in logs, CSV rows and run folders.
	ID string `json:"id"`
	// Packages are `go test` package patterns (e.g. "./internal/privacy").
	Packages []string `json:"packages"`
	// Pattern is the -bench regexp.
	Pattern string `json:"pattern"`
	// Gate marks hot-path experiments the CI regression gate fails on.
	// Ungated experiments still run and are summarized, but a regression
	// in them only warns.
	Gate bool `json:"gate,omitempty"`
	// NsTolerance/AllocTolerance override the comparator's default
	// per-benchmark thresholds (fractions: 0.20 = fail beyond +20%).
	// Zero means "use the default".
	NsTolerance    float64 `json:"ns_tolerance,omitempty"`
	AllocTolerance float64 `json:"alloc_tolerance,omitempty"`
	// Benchtime overrides the grid-level benchtime for this experiment
	// (the long end-to-end suites run fewer iterations than the micro
	// benchmarks).
	Benchtime string `json:"benchtime,omitempty"`
}

// Grid is the experiments.json schema: the full benchmark grid plus the
// measurement protocol (repeats, warmup, benchtime).
type Grid struct {
	// Benchtime is the default -benchtime per invocation.
	Benchtime string `json:"benchtime"`
	// Repeats is how many independent measured invocations each
	// experiment gets; the analyzer groups across them. The regression
	// gate needs >= MinGateRepeats to trust a wall-clock verdict.
	Repeats int `json:"repeats"`
	// Warmup is how many unmeasured invocations precede the repeats
	// (page cache, CPU frequency, JIT-less but still: first-run effects).
	Warmup      int          `json:"warmup"`
	Experiments []Experiment `json:"experiments"`
}

// LoadGrid reads and validates an experiments.json.
func LoadGrid(path string) (*Grid, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("harness: reading grid: %w", err)
	}
	var g Grid
	if err := json.Unmarshal(data, &g); err != nil {
		return nil, fmt.Errorf("harness: parsing grid %s: %w", path, err)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("harness: grid %s: %w", path, err)
	}
	return &g, nil
}

// Validate checks the grid is runnable.
func (g *Grid) Validate() error {
	if g.Repeats < 1 {
		return fmt.Errorf("repeats must be >= 1, got %d", g.Repeats)
	}
	if g.Warmup < 0 {
		return fmt.Errorf("warmup must be >= 0, got %d", g.Warmup)
	}
	if g.Benchtime != "" {
		if err := validBenchtime(g.Benchtime); err != nil {
			return err
		}
	}
	if len(g.Experiments) == 0 {
		return fmt.Errorf("grid has no experiments")
	}
	seen := make(map[string]bool)
	for i, e := range g.Experiments {
		if e.ID == "" {
			return fmt.Errorf("experiment %d has no id", i)
		}
		if seen[e.ID] {
			return fmt.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		if len(e.Packages) == 0 {
			return fmt.Errorf("experiment %s has no packages", e.ID)
		}
		if e.Pattern == "" {
			return fmt.Errorf("experiment %s has no pattern", e.ID)
		}
		if e.NsTolerance < 0 || e.AllocTolerance < 0 {
			return fmt.Errorf("experiment %s has a negative tolerance", e.ID)
		}
		if e.Benchtime != "" {
			if err := validBenchtime(e.Benchtime); err != nil {
				return fmt.Errorf("experiment %s: %w", e.ID, err)
			}
		}
	}
	return nil
}

// Gated returns the experiments the regression gate runs.
func (g *Grid) Gated() []Experiment {
	var out []Experiment
	for _, e := range g.Experiments {
		if e.Gate {
			out = append(out, e)
		}
	}
	return out
}

// validBenchtime accepts go test's -benchtime grammar: a duration
// ("2s", "100ms") or an iteration count ("1x", "100x").
func validBenchtime(s string) error {
	if n := len(s); n > 1 && s[n-1] == 'x' {
		for _, c := range s[:n-1] {
			if c < '0' || c > '9' {
				return fmt.Errorf("invalid benchtime %q", s)
			}
		}
		return nil
	}
	if _, err := time.ParseDuration(s); err != nil {
		return fmt.Errorf("invalid benchtime %q", s)
	}
	return nil
}
