// Package harness is the paper-grade experiment harness: it turns the
// ad-hoc bench workflow (scripts/bench.sh, hand-committed BENCH_n.json,
// reviewer-eyeball comparisons) into tested Go code. It has four parts:
//
//   - a parser for `go test -bench` output (parse.go) — the replacement
//     for the old awk pipeline, with the same package-qualified names and
//     loud duplicate detection, plus skip capture so a benchmark that
//     refuses to run on a small box (e.g. E8 workers > GOMAXPROCS) is
//     recorded as skipped rather than silently absent;
//   - an experiment grid (grid.go) loaded from scripts/paper/
//     experiments.json: which benchmarks to run, how many repeats, how
//     much warmup, and per-benchmark regression tolerances;
//   - a runner + analyzer (run.go, analyze.go) that executes the grid
//     into a timestamped run folder (paper_runs/<ts>/{csv,logs,analysis})
//     and emits grouped mean/std/CV tables as CSV + markdown plus a
//     machine-readable baseline.json;
//   - a comparator (compare.go) that diffs a fresh measurement against a
//     tracked baseline (either a flat BENCH_*.json or a harness
//     baseline.json) with noise-aware thresholds, and is wired into CI as
//     a gating step.
//
// The design treats the tracked baseline as an oracle that CI checks
// mechanically — the black-box-checking stance — instead of trusting a
// reviewer to notice a 25% slowdown in a wall of benchmark output.
package harness

import "fmt"

// Result is one parsed benchmark measurement. Name is package-qualified
// ("secreta/internal/privacy.BenchmarkPartition") so identically named
// benchmarks in different packages stay distinct records. BOp and
// AllocsOp are nil when the benchmark ran without -benchmem.
type Result struct {
	Name     string   `json:"name"`
	NsOp     float64  `json:"ns_op"`
	BOp      *float64 `json:"b_op"`
	AllocsOp *float64 `json:"allocs_op"`
}

// Skip records a benchmark that declined to run, with the reason it
// printed. Skips matter to comparisons: a benchmark missing from a fresh
// run because it skipped (GOMAXPROCS too small, fixture absent) must not
// be confused with a benchmark that silently disappeared.
type Skip struct {
	Name   string `json:"name"`
	Reason string `json:"reason,omitempty"`
}

// Parsed is the outcome of one `go test -bench` invocation.
type Parsed struct {
	Results []Result `json:"results"`
	Skips   []Skip   `json:"skips,omitempty"`
}

// bop/aop return the measured value or NaN-free sentinels for printing.
func deref(p *float64) (float64, bool) {
	if p == nil {
		return 0, false
	}
	return *p, true
}

func fptr(v float64) *float64 { return &v }

// Stat is the summary of one metric across repeats.
type Stat struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// CV is the coefficient of variation (Std/Mean, 0 when Mean is 0) —
	// the noise figure the comparator widens its thresholds by.
	CV  float64 `json:"cv"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Summary aggregates one benchmark's repeats.
type Summary struct {
	Name    string `json:"name"`
	Repeats int    `json:"repeats"`
	NsOp    Stat   `json:"ns_op"`
	// BOp/AllocsOp are zero-valued when the runs lacked -benchmem.
	BOp      Stat `json:"b_op"`
	AllocsOp Stat `json:"allocs_op"`
	HasMem   bool `json:"has_mem"`
}

func (s Summary) String() string {
	return fmt.Sprintf("%s: %.0f ns/op ±%.1f%% over %d repeats", s.Name, s.NsOp.Mean, 100*s.NsOp.CV, s.Repeats)
}
